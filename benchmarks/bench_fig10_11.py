"""Fig. 10/11: scalability with the number of tenant VMs (1..5).

Paper claims: SPML's and EPML's impact on Tracker and Tracked with
Boehm + Phoenix-histogram (Large) stays essentially constant as the VM
count grows — each VM has a dedicated CPU and its own PML state.
"""

from collections import defaultdict

from conftest import run_and_print


def _parse_range(cell: str) -> tuple[float, float]:
    lo, hi = str(cell).split("..")
    return float(lo.replace(",", "")), float(hi.replace(",", ""))


def test_fig10_11(benchmark, quick):
    out = run_and_print(benchmark, "fig10_11", quick)
    gc_by_tech = defaultdict(list)
    ovh_by_tech = defaultdict(list)
    for n_vms, tech, gc_range, ovh_range in out.rows:
        gc_by_tech[tech].append(_parse_range(gc_range))
        ovh_by_tech[tech].append(_parse_range(ovh_range))
    for tech in ("spml", "epml"):
        assert len(gc_by_tech[tech]) == 5  # VM counts 1..5
        # Constant across VM counts (Fig. 10): spread within 10%.
        highs = [hi for _, hi in gc_by_tech[tech]]
        assert max(highs) <= 1.1 * min(highs) + 1.0
        # Within a run, per-VM numbers are tight too.
        for lo, hi in gc_by_tech[tech]:
            assert hi <= 1.1 * lo + 1.0
    # EPML stays better than SPML at every VM count (Fig. 11).
    for (s_lo, _), (e_lo, _) in zip(ovh_by_tech["spml"], ovh_by_tech["epml"]):
        assert e_lo <= s_lo
