"""Ablation: GC trigger threshold and periodic full collections.

The paper observes 2..23 GC cycles depending on allocation intensity
(§VI-E).  The threshold is the knob behind that count: halving it roughly
doubles cycles while shrinking each cycle's dirty set.  ``full_every``
trades minor-cycle cheapness against old-generation garbage retention.
"""

import pytest
from conftest import QUICK

from repro.core.tracking import Technique
from repro.experiments.harness import run_boehm
from repro.trackers.boehm import GcParams

SCALE = 0.005 if QUICK else 0.02
THRESHOLDS = [512 * 1024, 1024 * 1024, 4 * 1024 * 1024]


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_ablation_gc_threshold(benchmark, threshold):
    r = benchmark.pedantic(
        run_boehm,
        args=("gcbench", "small", Technique.EPML),
        kwargs={"scale": SCALE,
                "gc_params": GcParams(threshold_bytes=threshold)},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["cycles"] = len(r.cycles)
    print(f"\nthreshold={threshold >> 10}KiB: cycles={len(r.cycles)}, "
          f"GC={r.gc_us / 1000:.1f}ms")


def test_ablation_gc_threshold_drives_cycle_count(benchmark):
    runs = benchmark.pedantic(
        lambda: {
            t: run_boehm("gcbench", "small", Technique.EPML, scale=SCALE,
                         gc_params=GcParams(threshold_bytes=t))
            for t in THRESHOLDS
        },
        rounds=1, iterations=1,
    )
    cycles = [len(runs[t].cycles) for t in THRESHOLDS]
    # Smaller threshold => more cycles, monotonically.
    assert cycles[0] > cycles[1] > cycles[2] >= 1
    # More cycles => smaller average dirty set per cycle.
    avg_dirty = [
        sum(c.n_dirty_pages for c in runs[t].cycles) / max(1, len(runs[t].cycles))
        for t in THRESHOLDS
    ]
    assert avg_dirty[0] < avg_dirty[2]


def test_ablation_gc_full_every_reclaims_old_garbage(benchmark):
    """Minor-only collection retains dead old objects; periodic full
    cycles reclaim them."""
    def run(full_every):
        return run_boehm(
            "gcbench", "small", Technique.ORACLE, scale=SCALE,
            gc_params=GcParams(threshold_bytes=512 * 1024,
                               full_every=full_every),
        )

    minor_only = benchmark.pedantic(run, args=(0,), rounds=1, iterations=1)
    periodic = run(4)
    live_minor = minor_only.cycles[-1].live_after
    live_periodic = periodic.cycles[-1].live_after
    assert live_periodic <= live_minor
    # Full cycles visit much more than minors do.
    kinds = [c.kind for c in periodic.cycles]
    assert kinds.count("full") >= 2
