"""Evaluation question 3: "to what extent are SPML and EPML able to
efficiently capture all dirty pages?"

Each technique is run against the oracle's ground truth; we report the
capture rate and the ring-buffer drop counters.  At default sizing every
technique captures 100%; shrinking the ring below the working set makes
SPML/EPML lossy in a measurable, surfaced way (total_dropped) — the
failure mode a deployment must size against.
"""

import numpy as np
import pytest
from conftest import QUICK

from repro.core.ooh import OohLib, OohModule
from repro.core.tracking import Technique, make_tracker
from repro.experiments.harness import build_stack

N_PAGES = 4096 if QUICK else 32768


def _ground_truth_run(technique: Technique, ring_capacity: int | None = None):
    stack = build_stack(vm_mb=N_PAGES / 256 * 1.5 + 64)
    proc = stack.kernel.spawn("app", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    stack.kernel.access(proc, np.arange(N_PAGES), True)

    oracle = make_tracker(Technique.ORACLE, stack.kernel, proc)
    if ring_capacity is not None and technique in (
        Technique.SPML, Technique.EPML
    ):
        lib = OohLib(OohModule(stack.kernel, ring_capacity=ring_capacity))
        tech = make_tracker(technique, stack.kernel, proc, ooh_lib=lib)
    else:
        tech = make_tracker(technique, stack.kernel, proc)
    oracle.start()
    tech.start()
    oracle.collect()
    rng = np.random.default_rng(3)
    for _ in range(8):
        stack.kernel.access(proc, rng.integers(0, N_PAGES, size=N_PAGES // 4),
                            True)
    got = set(int(v) for v in tech.collect())
    truth = set(int(v) for v in oracle.collect())
    stats = getattr(tech, "last_stats", None)
    tech.stop()
    oracle.stop()
    return got, truth, stats


@pytest.mark.parametrize(
    "technique",
    [Technique.PROC, Technique.UFD, Technique.SPML, Technique.EPML],
)
def test_completeness_full_capture_at_default_sizing(benchmark, technique):
    got, truth, stats = benchmark.pedantic(
        _ground_truth_run, args=(technique,), rounds=1, iterations=1
    )
    capture = len(got & truth) / max(1, len(truth))
    benchmark.extra_info["capture_rate"] = capture
    print(f"\n{technique.value}: capture rate = {capture:.4f} "
          f"({len(truth)} dirty pages)")
    assert got == truth  # nothing missed, nothing invented


def test_completeness_undersized_ring_loses_and_reports(benchmark):
    got, truth, stats = benchmark.pedantic(
        _ground_truth_run,
        args=(Technique.SPML,),
        kwargs={"ring_capacity": N_PAGES // 8},
        rounds=1, iterations=1,
    )
    assert len(got) < len(truth)  # loss happened...
    assert stats is not None and stats.dropped > 0  # ...and was surfaced
    print(
        f"\nundersized ring: captured {len(got)}/{len(truth)}, "
        f"dropped counter = {stats.dropped}"
    )
