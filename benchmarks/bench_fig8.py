"""Fig. 8: CRIU complete checkpoint time, MD phase highlighted.

Paper claims: complete checkpointing is up to ~5x *slower* with SPML than
/proc (reverse mapping dominates its MD phase, >= ~66% of MD); EPML
brings up to ~4x speedup vs /proc and up to ~13x vs SPML.
"""

from collections import defaultdict

from conftest import run_and_print


def test_fig8(benchmark, quick):
    out = run_and_print(benchmark, "fig8", quick)
    per = defaultdict(dict)
    for app, tech, md, mw, total in out.rows:
        per[app][tech] = {
            "md": float(str(md).replace(",", "")),
            "mw": float(str(mw).replace(",", "")),
            "total": float(str(total).replace(",", "")),
        }
    spml_slowdowns, epml_speedups_proc, epml_speedups_spml = [], [], []
    for app, techs in per.items():
        # EPML fastest wherever checkpointing does real work; when the
        # dirty set is nearly empty, totals are dominated by fixed init
        # costs (EPML's M3+M10 ~ 11.5 ms) and ordering is a wash.
        if techs["proc"]["total"] > 100.0:
            assert techs["epml"]["total"] <= techs["proc"]["total"], app
        assert techs["epml"]["total"] <= techs["spml"]["total"] + 12.0, app
        # SPML's MD dominated by reverse mapping -> biggest total
        # (whenever any dirty pages were collected at all).
        if techs["spml"]["md"] > 0:
            assert techs["spml"]["md"] > techs["epml"]["md"]
        spml_slowdowns.append(techs["spml"]["total"] / techs["proc"]["total"])
        epml_speedups_proc.append(techs["proc"]["total"] / techs["epml"]["total"])
        epml_speedups_spml.append(techs["spml"]["total"] / techs["epml"]["total"])
    # SPML slower than /proc on most apps, by a multiple somewhere.
    assert max(spml_slowdowns) > 1.5
    # EPML speedups in the paper's ballpark (4x vs proc, 13x vs SPML).
    assert max(epml_speedups_proc) > 2.0
    assert max(epml_speedups_spml) > 5.0
