"""Extension bench: use-after-free mitigation across techniques.

The paper's intro lists UAF mitigation among the userspace dirty-tracking
consumers (§I).  Its reclamation scan has the same incremental structure
as the Boehm mark phase, so the technique ranking should carry over:
EPML's collection is a ring drain, /proc pays a pagemap walk per cycle,
SPML pays the first-cycle reverse mapping.
"""

import numpy as np
import pytest
from conftest import QUICK

from repro.core.tracking import Technique
from repro.experiments.harness import build_stack
from repro.trackers.boehm import GcHeap
from repro.trackers.uaf import UafMitigator

N_OBJS = 2_000 if QUICK else 20_000
CYCLES = 6


def run_uaf(technique: Technique):
    stack = build_stack(vm_mb=512)
    proc = stack.kernel.spawn("app", n_pages=60_000)
    heap = GcHeap(stack.kernel, proc, heap_pages=50_000)
    m = UafMitigator(stack.kernel, heap, technique)
    rng = np.random.default_rng(5)
    with m:
        live = heap.alloc(N_OBJS, 64)
        heap.write_objs(live)
        t0 = stack.clock.now_us
        for _ in range(CYCLES):
            fresh = heap.alloc(N_OBJS // 10, 64)
            heap.write_objs(fresh)
            m.qfree(rng.permutation(fresh))
            m.collect()
        total_us = stack.clock.now_us - t0
    released = sum(c.n_released for c in m.cycles)
    return m, total_us, released


@pytest.mark.parametrize("technique",
                         [Technique.PROC, Technique.SPML, Technique.EPML])
def test_uaf_mitigation_cost(benchmark, technique):
    m, total_us, released = benchmark.pedantic(
        run_uaf, args=(technique,), rounds=1, iterations=1
    )
    benchmark.extra_info["mitigation_ms"] = total_us / 1000
    print(f"\n{technique.value}: mitigation = {total_us / 1000:,.1f} ms, "
          f"released {released:,} objects")
    # Everything freed was eventually reclaimed (no referrers existed).
    assert released == CYCLES * (N_OBJS // 10)
    assert m.quarantine_size == 0


def test_uaf_technique_ranking(benchmark):
    results = benchmark.pedantic(
        lambda: {t: run_uaf(t)[1] for t in
                 (Technique.PROC, Technique.SPML, Technique.EPML)},
        rounds=1, iterations=1,
    )
    # The Boehm ranking carries over: EPML cheapest, /proc worst or close.
    assert results[Technique.EPML] < results[Technique.PROC]
    assert results[Technique.EPML] < results[Technique.SPML]
