"""Fault matrix: dirty-page capture completeness under injected faults.

Robustness claim: whatever the fault rate, no dirty page is lost
silently — with ``resync_on_loss`` (and the fallback chain) the capture
rate stays at 100%, losses show up in surfaced counters, and recovery
activity (resyncs/retries) scales with the fault rate.
"""

from conftest import run_and_print


def test_fault_matrix(benchmark, quick):
    out = run_and_print(benchmark, "fault_matrix", quick)
    by_rate: dict[float, list[dict]] = {}
    for cell in out.extra["cells"]:
        assert not cell["silent_loss"], cell
        assert cell["capture_rate"] == 1.0, cell
        by_rate.setdefault(cell["rate"], []).append(cell)
    # Fault-free cells are perfectly clean; faulted cells show recovery.
    for cell in by_rate[0.0]:
        assert cell["resyncs"] == 0 and cell["surfaced_drops"] == 0
    hot = max(by_rate)
    assert any(
        c["resyncs"] > 0 or c["retries"] > 0 for c in by_rate[hot]
    ), by_rate[hot]
