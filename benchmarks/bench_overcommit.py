"""Bench: the overcommit frontier's cost side (memory-economics layer).

Extends ``bench_colocation.py``'s colocation story up one level: instead
of two processes in one VM, whole VMs share a host past its physical
capacity.  The bench runs the ``overcommit`` scenario across ratios and
checks the frontier's shape — refault volume monotonically non-decreasing
in the ratio, zero at 1.0 (the balloon never installed), per-round
latency growing with the refault rate — while pytest-benchmark records
what the reclaim/refault machinery costs in wall-clock terms.
"""

import pytest
from conftest import QUICK

from repro.fleet.economics.experiment import run_overcommit_scenario

RATIOS = [1.0, 1.5, 2.0] if QUICK else [1.0, 1.5, 2.0, 3.0]
SEED = 11


def run_ratio(ratio: float):
    return run_overcommit_scenario(ratio, seed=SEED, quick=QUICK)


@pytest.mark.parametrize("ratio", RATIOS)
def test_overcommit_ratio_point(benchmark, ratio):
    result = benchmark.pedantic(run_ratio, args=(ratio,), rounds=1, iterations=1)
    benchmark.extra_info["admitted"] = result.admitted
    benchmark.extra_info["refaults_per_1k"] = round(
        result.refaults_per_1k_accesses, 2
    )
    if ratio == 1.0:
        # Control point: no economics object, no balloon, no refaults.
        assert result.reclaimed_pages == 0
        assert result.refault_pages == 0
    else:
        assert result.admitted >= RATIOS.index(ratio) and result.reclaimed_pages > 0
    print(f"\nratio {ratio}: admitted={result.admitted} "
          f"refault/1k={result.refaults_per_1k_accesses:.1f} "
          f"round_us={result.mean_round_us:.1f}")


def test_overcommit_frontier_monotone(benchmark):
    results = benchmark.pedantic(
        lambda: [run_ratio(r) for r in RATIOS], rounds=1, iterations=1
    )
    rates = [r.refaults_per_1k_accesses for r in results]
    admitted = [r.admitted for r in results]
    # More overcommit admits at least as many tenants and refaults at
    # least as often — the frontier the experiment table renders.
    assert admitted == sorted(admitted)
    assert rates == sorted(rates)
    assert results[0].refault_pages == 0
    assert results[-1].refault_pages > 0
    # Latency follows the refault rate: the thrashiest point pays the
    # most per round.
    assert results[-1].mean_round_us > results[0].mean_round_us
