"""Fleet-layer benchmarks: orchestration overhead + contended throughput.

Unlike the paper-artifact benches, this measures the *fleet extension*:

* **orchestrator overhead** — wall-clock of a degenerate orchestrated
  migration (infinite bandwidth, fixed destination) vs the stock
  ``LiveMigration`` loop on an identical workload.  The adaptive
  controller, transport, and generator plumbing — plus the destination
  materialisation the stock path never does — must stay a small constant
  factor, not change the asymptotics;
* **migration throughput under contention** — two concurrent migrations
  sharing one backbone vs the same two run solo: fair-share contention
  must make the *simulated* per-page cost strictly worse, while the
  host-side wall-clock stays in the same ballpark (the interleaver adds
  bookkeeping, not work).
"""

from __future__ import annotations

import time

from conftest import QUICK

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.fleet.host import Host, VmSpec
from repro.fleet.orchestrator import MigrationOrchestrator, MigrationPolicy
from repro.hypervisor.migration import LiveMigration
from repro.net.link import Link
from repro.net.transport import Transport

N_PAGES = 512 if QUICK else 2048
MEM_MB = N_PAGES / 256.0
HOST_MB = MEM_MB * 4 + 8


def _spec(name: str, writes: int, seed: int) -> VmSpec:
    return VmSpec(
        name=name,
        mem_mb=MEM_MB,
        workload_pages=N_PAGES,
        writes_per_round=writes,
        write_fraction=0.8,
        compute_us_per_round=300.0,
        seed=seed,
    )


def _fleet(n_hosts: int, link: Link, policy: MigrationPolicy):
    clock = SimClock()
    costs = CostModel()
    hosts = [
        Host(f"h{i}", clock, costs, mem_mb=HOST_MB) for i in range(n_hosts)
    ]
    orch = MigrationOrchestrator(hosts, Transport(clock, costs), link, policy)
    return clock, hosts, orch


def _policy() -> MigrationPolicy:
    return MigrationPolicy(
        downtime_slo_us=5000.0, stop_threshold_pages=64, wss_intervals=0
    )


def _run_pair(concurrent: bool):
    """Two migrations off h0 over one backbone, together or one-by-one."""
    link = Link("backbone", us_per_page=2.0, latency_us=20.0)
    clock, hosts, orch = _fleet(3, link, _policy())
    a = hosts[0].place(_spec("vmA", writes=N_PAGES // 4, seed=3))
    b = hosts[0].place(_spec("vmB", writes=N_PAGES // 6, seed=4))
    t0 = time.perf_counter()
    if concurrent:
        reports = orch.migrate_many([(a, hosts[1]), (b, hosts[2])])
    else:
        reports = [orch.migrate(a, hosts[1]), orch.migrate(b, hosts[2])]
    wall_s = time.perf_counter() - t0
    assert all(r.integrity_ok for r in reports)
    sim_us_per_page = sum(r.total_us for r in reports) / sum(
        r.total_pages_sent for r in reports
    )
    return wall_s, sim_us_per_page, reports


def test_migration_throughput_under_contention(benchmark):
    wall_c, us_pp_c, reports = benchmark.pedantic(
        _run_pair, args=(True,), rounds=1, iterations=1
    )
    wall_s, us_pp_s, _ = _run_pair(False)
    slowdown = us_pp_c / us_pp_s
    pages = sum(r.total_pages_sent for r in reports)
    benchmark.extra_info.update(
        contended_wall_s=wall_c, solo_wall_s=wall_s,
        contended_sim_us_per_page=us_pp_c, solo_sim_us_per_page=us_pp_s,
        contention_slowdown=slowdown,
        wall_pages_per_s=pages / wall_c,
    )
    print(f"\nfleet contention: {pages} pages, "
          f"sim {us_pp_c:.2f} us/page contended vs {us_pp_s:.2f} solo "
          f"({slowdown:.2f}x), wall {wall_c * 1e3:.1f}ms "
          f"({pages / wall_c / 1e3:.0f}K pages/s)")
    # Fair share on one link must make concurrent transfers strictly
    # more expensive in simulated time (2x at full overlap; the tail
    # after the faster flow closes dilutes it below that).
    assert slowdown > 1.1


def test_orchestrator_overhead(benchmark):
    def orchestrated() -> float:
        link = Link("inf", us_per_page=0.0, latency_us=0.0)
        _, hosts, orch = _fleet(2, link, _policy())
        fvm = hosts[0].place(_spec("vm0", writes=N_PAGES // 4, seed=7))
        t0 = time.perf_counter()
        report = orch.migrate(fvm, dst=hosts[1])
        s = time.perf_counter() - t0
        assert report.integrity_ok and report.mode == "precopy"
        return s

    def plain() -> float:
        """The same migration by hand: stock loop + manual destination
        copy, so the ratio isolates the orchestration machinery."""
        clock, costs = SimClock(), CostModel()
        src = Host("h0", clock, costs, mem_mb=HOST_MB)
        dst = Host("h1", clock, costs, mem_mb=HOST_MB)
        spec = _spec("vm0", writes=N_PAGES // 4, seed=7)
        fvm = src.place(spec)
        mig = LiveMigration(src.hypervisor, fvm.vm, page_send_us=0.0)
        t0 = time.perf_counter()
        report = mig.migrate(fvm.run_round)
        fvm.kernel.stop_process(fvm.proc)
        vpns = fvm.proc.space.mapped_vpns()
        vpns = vpns[fvm.proc.space.pt.present_mask(vpns)]
        tokens = fvm.vm.mmu.read_page_contents(fvm.proc.space.pt, vpns)
        _vm, kernel, proc = dst.create_shell(spec)
        kernel.access(proc, vpns, True)
        kernel.vm.mmu.write_page_contents(proc.space.pt, vpns, tokens)
        s = time.perf_counter() - t0
        assert report.converged
        return s

    orch_s = benchmark.pedantic(orchestrated, rounds=1, iterations=1)
    # Best-of-3 both sides: single runs are milliseconds, noise-dominated.
    orch_s = min(orch_s, orchestrated(), orchestrated())
    plain_s = min(plain() for _ in range(3))
    overhead = orch_s / plain_s
    benchmark.extra_info.update(
        orchestrated_s=orch_s, plain_s=plain_s, overhead=overhead,
    )
    print(f"\norchestrator overhead: orchestrated {orch_s * 1e3:.2f}ms vs "
          f"hand-rolled migration {plain_s * 1e3:.2f}ms ({overhead:.2f}x)")
    # The orchestrated run still does more (transport, controller,
    # per-page token bookkeeping for post-copy readiness, integrity
    # sweep), but against a baseline doing the same copy it must stay a
    # small constant factor, independent of VM size.
    assert overhead < 8.0
