"""Fig. 4: tracking-technique overhead on the micro-benchmark.

Paper claims: SPML incurs the greatest slowdown at large sizes (up to
~66x, reverse-mapping bound); ufd is the worst *below* ~250 MB (userspace
fault handling bound); EPML's overhead is negligible (~0.6%) at every
size.
"""

from conftest import run_and_print


def _series(out):
    return out.extra["series"]  # technique -> [slowdown per size]


def test_fig4(benchmark, quick):
    out = run_and_print(benchmark, "fig4", quick)
    s = _series(out)

    # EPML negligible at every size (paper: <= ~0.6% overhead).
    assert max(s["epml"]) < 1.10

    # ufd worst among techniques at the smallest size.
    assert s["ufd"][0] > s["proc"][0]
    assert s["ufd"][0] > s["epml"][0]

    if not quick:
        # SPML worst at 1 GB; a ufd/SPML crossover exists in between.
        assert s["spml"][-1] > s["ufd"][-1] > s["proc"][-1] > s["epml"][-1]
        assert s["ufd"][1] > s["spml"][1]  # 10 MB: ufd still worse
        # Rough factors: SPML tens-of-x, ufd ~15-20x, proc ~3-4x @1GB.
        assert s["spml"][-1] > 10
        assert 5 < s["ufd"][-1] < 60
        assert 1.5 < s["proc"][-1] < 15
