"""Fig. 6: Boehm GC's impact on the tracked application.

Paper claims: EPML significantly reduces Boehm's overhead compared to
/proc and SPML for all applications (by ~62% on string-match); SPML's
first-cycle reverse mapping makes it worse than /proc on most apps.
"""

from collections import defaultdict

from conftest import run_and_print


def test_fig6(benchmark, quick):
    out = run_and_print(benchmark, "fig6", quick)
    per = defaultdict(dict)
    for app, config, tech, ovh in out.rows:
        per[(app, config)][tech] = float(str(ovh).replace(",", ""))
    n = len(per)
    # EPML lowest overhead everywhere (paper: all applications).  Short
    # apps (well under the paper's multi-second runs) do not amortise
    # EPML's fixed VMCS-shadowing init (~17 ms), so allow a tie band of
    # 2 points or 50% relative on such cells (EXPERIMENTS.md, deviations).
    def epml_ok(t: dict) -> bool:
        limit_proc = max(t["proc"] + 2, t["proc"] * 1.5)
        limit_spml = max(t["spml"] + 2, t["spml"] * 1.5)
        return t["epml"] <= limit_proc and t["epml"] <= limit_spml

    epml_best = sum(1 for t in per.values() if epml_ok(t))
    assert epml_best >= n - 1
    # EPML's advantage is substantial on at least one app (paper: 62%).
    gains = [
        (t["proc"] - t["epml"]) / max(t["proc"], 1e-9) for t in per.values()
    ]
    assert max(gains) > 0.4
