"""Fig. 5: Boehm GC execution time under /proc, SPML and EPML.

Paper claims: ignoring the first cycle (where SPML performs the reverse
mapping), SPML outperforms /proc; EPML is the best technique, up to ~2x
faster than /proc and ~6x faster than SPML.
"""

from collections import defaultdict

from conftest import run_and_print


def test_fig5(benchmark, quick):
    out = run_and_print(benchmark, "fig5", quick)
    # Index rows: app/config -> technique -> (first, rest, total).
    per = defaultdict(dict)
    for app, config, tech, cycles, first, rest, total in out.rows:
        per[(app, config)][tech] = (
            float(str(first).replace(",", "")),
            float(str(rest).replace(",", "")),
            float(str(total).replace(",", "")),
        )
    n_epml_best = 0
    n_spml_beats_proc_after_first = 0
    n_multi = 0
    for key, techs in per.items():
        assert set(techs) == {"proc", "spml", "epml"}
        if techs["epml"][2] <= techs["proc"][2] and (
            techs["epml"][2] <= techs["spml"][2]
        ):
            n_epml_best += 1
        # Rest-of-cycles comparison only meaningful with >1 cycle.
        if techs["spml"][1] > 0:
            n_multi += 1
            if techs["spml"][1] <= techs["proc"][1]:
                n_spml_beats_proc_after_first += 1
    # EPML is the best technique on (almost) every app/config.
    assert n_epml_best >= len(per) - 1
    # Ignoring the first cycle, SPML outperforms /proc (paper §VI-E.a).
    if n_multi:
        assert n_spml_beats_proc_after_first >= max(1, n_multi - 1)
