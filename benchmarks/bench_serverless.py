"""Serverless churn benchmark: tracker cost under instance churn.

The serverless workload inverts the paper's assumptions: instead of one
long-lived process tracked across many intervals, thousands of
short-lived instances each attach a tracker, run for one interval, and
tear down.  Per-interval collection cost — where OoH shines — stops
mattering; per-instance *attach* cost dominates, so the OoH techniques
(SPML/EPML pay hypercalls + shadow-buffer setup per attach) land far
behind /proc-style trackers that attach for free.  The merged snapshot
must nonetheless be byte-identical across every technique and across
repeat runs: tracking choice is a performance knob, never a correctness
one.

Run directly (no experiment cache — the determinism claim needs two
genuinely independent runs):

    REPRO_BENCH_QUICK=1 PYTHONPATH=src python -m pytest benchmarks/bench_serverless.py
"""

from __future__ import annotations

import time

from conftest import QUICK

from repro.experiments.harness import build_stack
from repro.serverless.driver import ServerlessConfig, run_serverless

N_INSTANCES = 250 if QUICK else 1000
MODES = ("oracle", "proc", "spml", "epml")

CFG = ServerlessConfig(
    n_instances=N_INSTANCES,
    n_tenants=4,
    region_pages=64,
    seed=1234,
)


def _run(mode: str):
    """One full churn run on a fresh stack (nothing cached or shared)."""
    stack = build_stack(vm_mb=64, n_vcpus=1)
    return run_serverless(stack.kernel, mode, CFG)


def test_churn_cost_and_determinism(benchmark):
    t0 = time.perf_counter()
    results = {mode: _run(mode) for mode in MODES}
    wall_s = time.perf_counter() - t0
    # The benchmark fixture measures one representative re-run; the
    # sweep above is what the assertions consume.
    benchmark.pedantic(_run, args=(MODES[0],), rounds=1, iterations=1)

    print(f"\nserverless churn: {N_INSTANCES} instances x {len(MODES)} modes, "
          f"wall {wall_s:.2f}s")
    print(f"{'mode':8s} {'tracker ms':>11s} {'total ms':>10s} "
          f"{'us/instance':>12s}")
    for mode, r in results.items():
        per_inst = r.tracker_us / r.n_instances
        print(f"{mode:8s} {r.tracker_us / 1e3:11.1f} {r.total_us / 1e3:10.1f} "
              f"{per_inst:12.1f}")
        benchmark.extra_info[f"{mode}_tracker_us"] = r.tracker_us
        assert r.n_instances == N_INSTANCES

    # Correctness: the merged snapshots are byte-identical across every
    # technique — tracking choice must never change the merged bytes.
    digests = {r.combined_digest for r in results.values()}
    assert len(digests) == 1, f"techniques disagree on merged bytes: {digests}"

    # Determinism: an independent repeat run (fresh stack, same seed)
    # reproduces the merged snapshot byte for byte.
    for mode in ("oracle", "epml"):
        assert _run(mode).combined_digest == results[mode].combined_digest

    # Shape: under churn, per-instance attach cost rules.  The OoH
    # techniques pay shadow-buffer setup hypercalls per attach and fall
    # far behind /proc; the oracle (free attach, free collect) floors.
    oracle, proc = results["oracle"], results["proc"]
    for mode in MODES:
        assert oracle.tracker_us <= results[mode].tracker_us
    for ooh_mode in ("spml", "epml"):
        assert results[ooh_mode].tracker_us > 5.0 * proc.tracker_us, (
            f"{ooh_mode} should pay heavily for per-instance attach at churn"
        )
