"""Table I: overhead of ufd- and /proc-based tracking vs memory size.

Paper values (1 GB): ufd up to ~15x on Tracked and ~14x on Tracker;
/proc up to ~4x on Tracked and ~2.5x on Tracker; both grow with the
tracked memory size.
"""

from conftest import run_and_print

from repro.core.tracking import Technique
from repro.experiments.harness import run_microbench


def test_table1(benchmark, quick):
    out = run_and_print(benchmark, "table1", quick)
    assert len(out.rows) == 4  # tracked/tracker x ufd/proc


def test_table1_shape_ufd_worse_than_proc_on_tracked(benchmark, quick):
    mb = 100 if quick else 1024
    ufd = benchmark.pedantic(run_microbench, args=(Technique.UFD,),
                             kwargs={"mem_mb": mb}, rounds=1, iterations=1)
    proc = run_microbench(Technique.PROC, mem_mb=mb)
    # ufd's userspace fault handling dwarfs /proc's kernel path (~4.4x in
    # the paper at 1 GB).
    assert ufd.overhead_tracked_pct > 2 * proc.overhead_tracked_pct
    assert ufd.overhead_tracker_pct > 2 * proc.overhead_tracker_pct


def test_table1_shape_overhead_grows_with_memory(benchmark, quick):
    sizes = (1, 100) if quick else (1, 1024)

    def sweep():
        return {
            tech: (run_microbench(tech, mem_mb=sizes[0]),
                   run_microbench(tech, mem_mb=sizes[1]))
            for tech in (Technique.UFD, Technique.PROC)
        }

    for lo, hi in benchmark.pedantic(sweep, rounds=1, iterations=1).values():
        assert hi.overhead_tracked_pct > lo.overhead_tracked_pct


def test_table1_shape_order_of_magnitude(benchmark, quick):
    """Paper @1GB: ufd ~1463%, /proc ~335% on Tracked."""
    if quick:
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        return
    ufd = benchmark.pedantic(run_microbench, args=(Technique.UFD,),
                             kwargs={"mem_mb": 1024}, rounds=1, iterations=1)
    proc = run_microbench(Technique.PROC, mem_mb=1024)
    assert 500 < ufd.overhead_tracked_pct < 6000
    assert 80 < proc.overhead_tracked_pct < 1200
