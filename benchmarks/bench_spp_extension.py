"""Extension bench: OoH-SPP secure-heap guard waste (paper §III-D).

The paper's announced next OoH application: "By relying on Intel SPP, we
intend to reduce that overhead [guard-page memory waste] by a factor of
32 according to the number of sub-pages allowed by Intel SPP within a
memory page."
"""

import pytest
from conftest import QUICK

from repro.core.oohspp import OohSpp
from repro.experiments.harness import build_stack
from repro.hw.spp import SUBPAGE_BYTES
from repro.trackers.secureheap import GuardMode, OverflowDetected, SecureHeap

N_ALLOCS = 200 if QUICK else 2000


def _build(mode: GuardMode, sizes):
    stack = build_stack(vm_mb=256)
    spp = OohSpp(stack.kernel)
    spp.init()
    proc = stack.kernel.spawn("alloc-app", n_pages=40_000)
    heap = SecureHeap(stack.kernel, proc, spp, mode, heap_pages=32_000)
    for s in sizes:
        heap.alloc(int(s))
    return heap


def _sizes():
    import numpy as np

    rng = np.random.default_rng(7)
    # Small-object workload: the regime where guard pages hurt most.
    return rng.integers(16, 512, size=N_ALLOCS)


@pytest.mark.parametrize("mode", [GuardMode.PAGE, GuardMode.SUBPAGE])
def test_spp_guard_waste(benchmark, mode):
    sizes = _sizes()
    heap = benchmark.pedantic(_build, args=(mode, sizes), rounds=1, iterations=1)
    benchmark.extra_info["guard_waste_bytes"] = heap.guard_waste_bytes
    benchmark.extra_info["waste_ratio"] = heap.waste_ratio
    print(
        f"\n{mode.value}: payload={heap.payload_bytes:,} B, "
        f"guard waste={heap.guard_waste_bytes:,} B "
        f"(ratio {heap.waste_ratio:.2f})"
    )


def test_spp_waste_reduction_factor(benchmark):
    sizes = _sizes()
    page_heap = benchmark.pedantic(
        _build, args=(GuardMode.PAGE, sizes), rounds=1, iterations=1
    )
    sub_heap = _build(GuardMode.SUBPAGE, sizes)
    # Pure guard bytes: one page vs one sub-page per allocation = 32x.
    pure_guard_page = N_ALLOCS * 4096
    pure_guard_sub = N_ALLOCS * SUBPAGE_BYTES
    assert pure_guard_page / pure_guard_sub == 32
    # End-to-end waste (guards + rounding): well over an order of
    # magnitude for small objects.
    factor = page_heap.guard_waste_bytes / sub_heap.guard_waste_bytes
    print(f"\nend-to-end waste reduction: {factor:.1f}x")
    assert factor > 10


def test_spp_detection_parity_on_page_crossers(benchmark):
    """Both guards catch page-crossing overflows; only SPP catches
    sub-page ones — detection is never weaker under SPP."""
    def run():
        heap = _build(GuardMode.SUBPAGE, [256])
        alloc = list(heap._allocs.values())[0]
        try:
            heap.write(alloc, 0, 4097)
        except OverflowDetected:
            return heap
        raise AssertionError("overflow escaped")

    heap = benchmark.pedantic(run, rounds=1, iterations=1)
    assert heap.overflows_detected == 1
