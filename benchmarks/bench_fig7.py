"""Fig. 7: CRIU memory-write (MW) time per technique.

Paper claims: SPML and EPML improve the MW phase by up to ~26x vs /proc
(which interleaves the pagemap walk with writing), and their MW time is
almost constant across applications while /proc's grows to several
seconds.
"""

from collections import defaultdict

from conftest import run_and_print


def test_fig7(benchmark, quick):
    out = run_and_print(benchmark, "fig7", quick)
    per = defaultdict(dict)
    for app, tech, mw in out.rows:
        per[app][tech] = float(str(mw).replace(",", ""))
    improvements = []
    for app, techs in per.items():
        assert techs["epml"] <= techs["proc"]
        assert techs["spml"] <= techs["proc"] * 1.05
        if techs["epml"] > 0:
            improvements.append(techs["proc"] / techs["epml"])
    # At least one app shows a large (>5x) MW improvement.
    assert improvements and max(improvements) > 5.0
    # SPML and EPML MW are (nearly) identical: both write one batch of
    # exactly the dirty pages.
    for techs in per.values():
        assert abs(techs["spml"] - techs["epml"]) <= max(
            1.0, 0.1 * max(techs["spml"], techs["epml"])
        )
