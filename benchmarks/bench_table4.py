"""Table IV: validation of the estimation formulas (paper §VI-B).

The paper reports average accuracies of 96.34% (tracker) and 99%
(tracked) when comparing Formula 1-4 estimates against measurements of
CRIU checkpointing tkrzw-baby.  We reproduce the procedure against the
simulator's measured per-world times.
"""

from conftest import run_and_print


def test_table4(benchmark, quick):
    out = run_and_print(benchmark, "table4", quick)
    # Rows: [technique, meas_tker, est_tker, acc_tker, meas_tked,
    #        est_tked, acc_tked]
    for row in out.rows:
        acc_tker = float(row[3])
        acc_tked = float(row[6])
        assert acc_tker > 90.0, f"{row[0]}: tracker accuracy {acc_tker}"
        assert acc_tked > 90.0, f"{row[0]}: tracked accuracy {acc_tked}"
