"""Fig. 3: SPML dirty-address collection breakdown.

Paper claim: reverse mapping is the bottleneck of SPML collection,
representing on average more than 68% of the total collection time, with
the userspace page-table walk second and the ring-buffer copy negligible.
"""

from conftest import run_and_print


def test_fig3(benchmark, quick):
    out = run_and_print(benchmark, "fig3", quick)
    assert out.extra["mean_revmap_share_pct"] > 60.0
    for row in out.rows:
        rev = float(row[1].replace(",", ""))
        walk = float(row[2].replace(",", ""))
        copy = float(row[3].replace(",", ""))
        assert rev > walk > copy
