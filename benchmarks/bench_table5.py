"""Table V: basic costs of the internal metrics.

Table Va's size-agnostic costs are calibration inputs (asserted to match
the paper exactly); Table Vb's size-dependent costs are *measured* from
micro-benchmark runs and compared against the published curves.
"""

import pytest
from conftest import run_and_print

from repro.core import calibration
from repro.core.costs import CostModel


def test_table5(benchmark, quick):
    out = run_and_print(benchmark, "table5", quick)
    assert len(out.rows) == 6  # M5, M6, M15, M16, M17, M18


def test_table5a_constants_match_paper(benchmark):
    cm = benchmark.pedantic(CostModel, rounds=1, iterations=1)
    assert cm.params.context_switch_us == pytest.approx(0.315)
    assert cm.params.vmread_us == pytest.approx(0.936)
    assert cm.params.vmwrite_us == pytest.approx(0.801)
    assert cm.params.hc_init_pml_us == pytest.approx(5495)
    assert cm.params.hc_init_pml_shadow_us == pytest.approx(5878)
    assert cm.params.enable_logging_us == pytest.approx(0.3)


def test_table5b_measured_totals_track_published_curves(benchmark, quick):
    """A full-array sweep's charges equal the published totals."""
    from repro.experiments.harness import run_microbench

    mb = 100
    pages = calibration.mb_to_pages(mb)
    cm = CostModel()
    r = benchmark.pedantic(run_microbench, args=("proc",),
                           kwargs={"mem_mb": mb}, rounds=1, iterations=1)
    # Two passes -> two full sets of soft-dirty faults (M5).
    expected_m5 = 2 * cm.pf_kernel_unit_us(pages) * pages
    assert r.event_us["pf_kernel"] == pytest.approx(expected_m5, rel=0.05)
    # Each collection performs one pagemap parse (M16).
    n_walks = r.events["pt_walk_user"]
    assert r.event_us["pt_walk_user"] == pytest.approx(
        n_walks * cm.pt_walk_user_us(pages + 16), rel=0.05
    )
