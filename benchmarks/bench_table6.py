"""Table VI: which internal metrics each technique involves.

Reproduced empirically: run the micro-benchmark under every technique and
record which events fire.  The paper's associations (e.g. reverse mapping
is SPML-only; vmread/vmwrite are EPML-only; clear_refs is /proc-only)
must hold.
"""

from conftest import run_and_print


def _col(out, event):
    for row in out.rows:
        if row[0] == event:
            return {t: bool(v) for t, v in zip(("proc", "ufd", "spml", "epml"),
                                               row[1:])}
    raise KeyError(event)


def test_table6(benchmark, quick):
    out = run_and_print(benchmark, "table6", quick)
    assert _col(out, "reverse_map") == {
        "proc": False, "ufd": False, "spml": True, "epml": False}
    assert _col(out, "clear_refs") == {
        "proc": True, "ufd": False, "spml": False, "epml": False}
    assert _col(out, "pf_user") == {
        "proc": False, "ufd": True, "spml": False, "epml": False}
    assert _col(out, "pf_kernel") == {
        "proc": True, "ufd": False, "spml": False, "epml": False}
    vm = _col(out, "vmwrite")
    assert vm["epml"] and not vm["proc"] and not vm["ufd"]
    # Ring-buffer copies belong to both PML techniques.
    rb = _col(out, "rb_copy")
    assert rb["spml"] and rb["epml"] and not rb["proc"] and not rb["ufd"]
    # The paper's context switches (M1) appear everywhere faults or
    # scheduling occur.
    assert _col(out, "context_switch")["proc"]
    assert _col(out, "context_switch")["ufd"]
