"""Fig. 9: CRIU's overhead on the checkpointed application.

Paper claims: /proc up to ~102% (pca); SPML higher than /proc, up to
~114%; EPML never above ~14% with a ~3% average.
"""

from collections import defaultdict

import numpy as np
from conftest import run_and_print


def test_fig9(benchmark, quick):
    out = run_and_print(benchmark, "fig9", quick)
    per = defaultdict(dict)
    for app, tech, ovh in out.rows:
        per[app][tech] = float(str(ovh).replace(",", ""))
    epml = [t["epml"] for t in per.values()]
    proc = [t["proc"] for t in per.values()]
    spml = [t["spml"] for t in per.values()]
    # EPML lowest overhead on every app and small in absolute terms.
    for techs in per.values():
        assert techs["epml"] <= techs["proc"]
        assert techs["epml"] <= techs["spml"]
    assert float(np.mean(epml)) < 15.0
    # SPML's worst case exceeds /proc's worst case (paper: 114% vs 102%).
    assert max(spml) >= max(proc)
