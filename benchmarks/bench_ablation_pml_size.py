"""Ablation: PML buffer size (DESIGN.md §4).

Intel fixed the PML buffer at 512 entries (one 4 KiB page).  Sweeping the
size shows the tradeoff it embodies: smaller buffers raise the PML-full
event rate (vmexits for SPML, self-IPIs for EPML) roughly inversely with
capacity, while the total logged-address volume stays constant.
"""

import pytest
from conftest import QUICK

from repro.experiments.harness import run_microbench

SIZES = [64, 128, 512, 2048]
MEM_MB = 50 if QUICK else 250


@pytest.mark.parametrize("entries", SIZES)
def test_ablation_pml_size(benchmark, entries):
    result = benchmark.pedantic(
        run_microbench,
        args=("epml", MEM_MB),
        kwargs={"pml_buffer_entries": entries},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["self_ipis"] = result.events.get("self_ipi", 0)
    benchmark.extra_info["overhead_tracked_pct"] = result.overhead_tracked_pct
    print(
        f"\nEPML pml_entries={entries}: self-IPIs="
        f"{result.events.get('self_ipi', 0)}, "
        f"tracked overhead={result.overhead_tracked_pct:.2f}%"
    )


def test_ablation_pml_size_event_rate_scales_inversely(benchmark):
    runs = benchmark.pedantic(
        lambda: {
            n: run_microbench("epml", MEM_MB, pml_buffer_entries=n)
            for n in SIZES
        },
        rounds=1, iterations=1,
    )
    ipis = {n: runs[n].events.get("self_ipi", 0) for n in SIZES}
    # Quadrupling capacity divides the full-event count by ~4.
    assert ipis[128] == pytest.approx(ipis[512] * 4, rel=0.1)
    assert ipis[512] == pytest.approx(ipis[2048] * 4, rel=0.15)
    # Nothing is lost at any size.
    dirty = {n: runs[n].n_dirty for n in SIZES}
    assert len(set(dirty.values())) == 1


def test_ablation_pml_size_spml_vmexits(benchmark):
    small = benchmark.pedantic(run_microbench, args=("spml", MEM_MB),
                               kwargs={"pml_buffer_entries": 64},
                               rounds=1, iterations=1)
    large = run_microbench("spml", MEM_MB, pml_buffer_entries=2048)
    assert small.events["pml_full_vmexit"] > 8 * large.events["pml_full_vmexit"]
    # More vmexits -> more tracked-side interference.
    assert small.tracked_us >= large.tracked_us
