"""Bench: OoH process checkpoint vs the §III-C dedicate-a-VM alternative.

The paper rejects whole-VM checkpointing because colocation (the FaaS
norm) makes the VM image carry every tenant: this bench quantifies that
with one target process plus colocated tenants in a single VM.
"""

import numpy as np
import pytest
from conftest import QUICK

from repro.core.tracking import Technique
from repro.experiments.harness import build_stack
from repro.hypervisor.vm_checkpoint import checkpoint_vm
from repro.trackers.criu import Criu

TENANTS = 3 if QUICK else 7
TENANT_PAGES = 2048 if QUICK else 8192
TARGET_PAGES = 1024 if QUICK else 4096


def _stack_with_tenants():
    stack = build_stack(vm_mb=(TENANTS * TENANT_PAGES + TARGET_PAGES) / 256 + 64)
    target = stack.kernel.spawn("target", n_pages=TARGET_PAGES)
    target.space.add_vma(TARGET_PAGES)
    stack.kernel.access(target, np.arange(TARGET_PAGES), True)
    for i in range(TENANTS):
        t = stack.kernel.spawn(f"tenant{i}", n_pages=TENANT_PAGES)
        t.space.add_vma(TENANT_PAGES)
        stack.kernel.access(t, np.arange(TENANT_PAGES), True)
    return stack, target


def test_alternative_vm_checkpoint(benchmark):
    stack, target = _stack_with_tenants()
    image, report = benchmark.pedantic(
        checkpoint_vm, args=(stack.hv, stack.vm), rounds=1, iterations=1
    )
    benchmark.extra_info["pages"] = image.total_pages_dumped
    print(
        f"\nVM-level checkpoint: {image.total_pages_dumped:,} pages, "
        f"{report.total_us / 1000:,.1f} ms"
    )


def test_alternative_process_checkpoint(benchmark):
    stack, target = _stack_with_tenants()
    criu = Criu(stack.kernel, Technique.EPML)
    image, report = benchmark.pedantic(
        criu.checkpoint, args=(target,), rounds=1, iterations=1
    )
    benchmark.extra_info["pages"] = report.pages_dumped
    print(
        f"\nOoH process checkpoint: {report.pages_dumped:,} pages, "
        f"{report.phases.total_us / 1000:,.1f} ms"
    )


def test_alternative_colocation_penalty(benchmark):
    """The VM image scales with tenants; the process image does not."""
    def run():
        stack, target = _stack_with_tenants()
        vm_image, vm_report = checkpoint_vm(stack.hv, stack.vm)
        p_image, p_report = Criu(stack.kernel, Technique.EPML).checkpoint(
            target
        )
        return vm_image, vm_report, p_report

    vm_image, vm_report, p_report = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    expected_ratio = (TENANTS * TENANT_PAGES + TARGET_PAGES) / TARGET_PAGES
    ratio = vm_image.total_pages_dumped / p_report.pages_dumped
    print(f"\nimage-size penalty: {ratio:.1f}x (tenant ratio {expected_ratio:.1f}x)")
    assert ratio == pytest.approx(expected_ratio, rel=0.1)
    # Memory-write work scales with the image (fixed init costs aside).
    assert vm_report.total_us > p_report.phases.mw_us
