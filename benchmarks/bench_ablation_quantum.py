"""Ablation: scheduler switch interval (the paper's N; DESIGN.md §4).

SPML pays a disable_logging/enable_logging hypercall pair at every
schedule-out/in of the tracked process, while EPML pays two vmwrites
(Formula 4: I(SPML) includes vmexits; I(EPML) = N x vmread/vmwrite).
Shrinking the switch interval inflates N and should hurt SPML far more
than EPML.
"""

import pytest
from conftest import QUICK

from repro.experiments.harness import run_microbench

INTERVALS_US = [10_000.0, 100_000.0, 1_000_000.0, 3_500_000.0]
MEM_MB = 50 if QUICK else 250


@pytest.mark.parametrize("interval_us", INTERVALS_US)
def test_ablation_quantum(benchmark, interval_us):
    spml = benchmark.pedantic(
        run_microbench,
        args=("spml", MEM_MB),
        kwargs={"switch_interval_us": interval_us},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["n_switches"] = spml.events.get("sched_switch", 0)
    print(
        f"\nSPML interval={interval_us / 1e3:.0f}ms: N="
        f"{spml.events.get('sched_switch', 0)}, "
        f"hypercalls={spml.events.get('hypercall', 0)}"
    )


def test_ablation_quantum_n_drives_spml_hypercalls(benchmark):
    fast = benchmark.pedantic(run_microbench, args=("spml", MEM_MB),
                              kwargs={"switch_interval_us": 10_000.0},
                              rounds=1, iterations=1)
    slow = run_microbench("spml", MEM_MB, switch_interval_us=3_500_000.0)
    assert fast.events["sched_switch"] > slow.events.get("sched_switch", 0)
    # Every extra switch pair costs two extra hypercalls under SPML.
    extra_switches = fast.events["sched_switch"] - slow.events.get(
        "sched_switch", 0
    )
    extra_hypercalls = fast.events["hypercall"] - slow.events["hypercall"]
    assert extra_hypercalls == pytest.approx(2 * extra_switches, abs=2)


def test_ablation_quantum_epml_insensitive(benchmark):
    fast = benchmark.pedantic(run_microbench, args=("epml", MEM_MB),
                              kwargs={"switch_interval_us": 10_000.0},
                              rounds=1, iterations=1)
    slow = run_microbench("epml", MEM_MB, switch_interval_us=3_500_000.0)
    # EPML's toggles are vmwrites: no new vmexits however small the
    # quantum gets.
    assert fast.events.get("vmexit", 0) == slow.events.get("vmexit", 0)
    # And the overhead moves by well under a percentage point.
    assert abs(
        fast.overhead_tracked_pct - slow.overhead_tracked_pct
    ) < 1.0
