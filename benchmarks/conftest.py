"""Benchmark-suite configuration.

Each ``bench_*.py`` regenerates one of the paper's evaluation artifacts
(tables and figures) inside a pytest-benchmark measurement, prints the
paper-style table, and asserts the *shape* claims the paper makes (who
wins, by roughly what factor, where crossovers fall).  Absolute simulated
times are calibration-dependent and are recorded, not asserted.

Set ``REPRO_BENCH_QUICK=1`` to shrink sweeps for a fast smoke run.
"""

import os

import pytest

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


@pytest.fixture(scope="session")
def quick() -> bool:
    return QUICK


def run_and_print(benchmark, name: str, quick: bool):
    """Run one registry experiment under the benchmark fixture."""
    from repro.experiments.runner import run_experiment

    out = benchmark.pedantic(
        run_experiment, args=(name,), kwargs={"quick": quick},
        rounds=1, iterations=1,
    )
    print("\n" + out.text)
    benchmark.extra_info["experiment"] = name
    return out
