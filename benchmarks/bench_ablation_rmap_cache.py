"""Ablation: SPML's reverse-map cache (DESIGN.md §4).

The paper's Boehm integration reuses the GPA->GVA translations collected
during the first GC cycle (§VI-E footnote).  Disabling that cache makes
*every* cycle pay the pagemap-scan reverse mapping, isolating how much of
EPML's advantage comes from avoiding reverse mapping versus avoiding
hypercalls.
"""

from types import SimpleNamespace

import numpy as np
import pytest
from conftest import QUICK

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.core.tracking import Technique
from repro.guest.kernel import GuestKernel
from repro.hypervisor.hypervisor import Hypervisor
from repro.trackers.boehm import BoehmGc, GcHeap, GcParams

N_OBJS = 2_000 if QUICK else 20_000
N_CYCLES = 5


def _run(reverse_map_cache: bool) -> SimpleNamespace:
    clock = SimClock()
    hv = Hypervisor(clock, CostModel(), host_mem_mb=512)
    vm = hv.create_vm("vm0", mem_mb=256)
    kernel = GuestKernel(vm)
    proc = kernel.spawn("app", n_pages=40_000)
    heap = GcHeap(kernel, proc, heap_pages=30_000)
    ids = heap.alloc(N_OBJS, 64)
    heap.set_refs(ids[:-1], ids[1:])
    heap.add_roots(ids[:1])
    gc = BoehmGc(
        kernel, heap, Technique.SPML, GcParams(),
        technique_kwargs={"reverse_map_cache": reverse_map_cache},
    )
    with gc:
        heap.write_objs(ids)
        gc.collect()
        for i in range(N_CYCLES - 1):
            heap.write_objs(ids[i::4])  # mutate known pages: cache hits
            gc.collect()
    return SimpleNamespace(gc=gc, clock=clock)


@pytest.mark.parametrize("cache", [True, False], ids=["cached", "uncached"])
def test_ablation_rmap_cache(benchmark, cache):
    out = benchmark.pedantic(_run, args=(cache,), rounds=1, iterations=1)
    total = sum(c.pause_us for c in out.gc.cycles)
    benchmark.extra_info["total_gc_ms"] = total / 1000.0
    print(f"\nSPML reverse-map cache={cache}: total GC = {total / 1e3:.1f} ms")


def test_ablation_rmap_cache_amortises_reverse_mapping(benchmark):
    cached = benchmark.pedantic(_run, args=(True,), rounds=1, iterations=1)
    uncached = _run(False)
    later_cached = sum(c.pause_us for c in cached.gc.cycles[1:])
    later_uncached = sum(c.pause_us for c in uncached.gc.cycles[1:])
    # Later cycles are the ones the cache helps; expect a big multiple.
    assert later_uncached > 3 * later_cached
    # First cycles pay the same reverse-mapping bill either way.
    first_ratio = (
        cached.gc.cycles[0].pause_us / uncached.gc.cycles[0].pause_us
    )
    assert 0.8 < first_ratio < 1.2
    # Correctness unaffected: same survivors.
    assert np.array_equal(
        cached.gc.cycles[-1].live_after, uncached.gc.cycles[-1].live_after
    )
