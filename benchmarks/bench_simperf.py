"""Simulator performance: fused MMU walk, reverse-map index, runner engine.

Unlike the other benches (which regenerate paper artifacts), this file
measures the *simulator's own* wall-clock — the three-layer performance
pass that keeps the full non-quick sweep tractable:

* ``Mmu.access`` batch throughput, fused walk + TLB fast path vs the
  multipass reference (target: >= 2x on a 1M-access workload);
* ``PageTable.reverse_lookup`` with the cached GPFN->VPN index vs a
  cold index per lookup;
* ``runner all --quick`` end to end, optimized (fused + memo-cache +
  ``--jobs 4``) vs the pre-optimization configuration
  (``REPRO_FUSED_MMU=0 REPRO_EXPERIMENT_CACHE=0``, serial);
* the observability tax: the same fused hot loop with an active
  ``TraceSession`` vs the guard-only disabled path.

Simulated costs and results are bit-identical across all configurations
(see tests/integration/test_differential_mmu.py); only host wall-clock
changes.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import numpy as np
from conftest import QUICK

from repro.hw import vmcs
from repro.hw.ept import Ept
from repro.obs import trace as otr
from repro.hw.memory import PhysicalMemory
from repro.hw.mmu import Mmu
from repro.hw.pagetable import PTE_SOFT_DIRTY, PTE_UFD_WP, PTE_WRITABLE, PageTable
from repro.hw.pml import PmlCircuit
from repro.hw.tlb import Tlb

N_PAGES = 16384 if QUICK else 65536
BATCH = 16384
TARGET_ACCESSES = 200_000 if QUICK else 1_000_000


class _Handlers:
    """Minimal guest-kernel fault plumbing (identity-ish mappings)."""

    def __init__(self, pt: PageTable, ept: Ept, host: PhysicalMemory) -> None:
        self.pt = pt
        self.ept = ept
        self.host = host
        self._next_gpfn = 0

    def handle_minor_fault(self, vpns, write_mask=None) -> None:
        gpfns = np.arange(self._next_gpfn, self._next_gpfn + len(vpns))
        self._next_gpfn += len(vpns)
        self.ept.map(gpfns, self.host.alloc(len(vpns)))
        self.pt.map(vpns, gpfns)

    def handle_ufd_miss_fault(self, vpns, write_mask=None):
        return np.empty(0, dtype=np.int64)

    def handle_wp_fault(self, vpns, ufd_mask) -> None:
        self.pt.set_flags(vpns, PTE_WRITABLE | PTE_SOFT_DIRTY)
        self.pt.clear_flags(vpns, PTE_UFD_WP)


def _drive(
    fused: bool,
    walk_cache: bool = False,
    warm_rounds: int = 0,
    target: int | None = None,
) -> float:
    """Seconds to push ``target`` accesses through Mmu.access,
    microbench-style (sorted 16K-page write batches over a pre-faulted
    working set).  ``walk_cache`` defaults off so the fused-vs-multipass
    comparison keeps measuring the walks themselves; the steady-state
    bench turns it on and uses ``warm_rounds`` to reach replay before
    the clock starts."""
    host = PhysicalMemory(N_PAGES + 64)
    ept = Ept(N_PAGES + 64)
    pml = PmlCircuit(vmcs.Vmcs(), capacity=512)
    mmu = Mmu(ept, host, pml, fused=fused, walk_cache=walk_cache)
    pt = PageTable(N_PAGES)
    tlb = Tlb(N_PAGES)
    h = _Handlers(pt, ept, host)
    batches = [
        np.arange(lo, min(lo + BATCH, N_PAGES), dtype=np.int64)
        for lo in range(0, N_PAGES, BATCH)
    ]
    for b in batches:  # pre-fault (mlockall), outside the measurement
        mmu.access(pt, tlb, b, True, h)
    for _ in range(warm_rounds):
        for b in batches:
            mmu.access(pt, tlb, b, True, h)
    done = 0
    t0 = time.perf_counter()
    while done < (target or TARGET_ACCESSES):
        for b in batches:
            mmu.access(pt, tlb, b, True, h)
            done += b.size
    return time.perf_counter() - t0


def test_mmu_access_throughput(benchmark):
    fused_s = benchmark.pedantic(_drive, args=(True,), rounds=1, iterations=1)
    multi_s = _drive(False)
    speedup = multi_s / fused_s
    fused_mps = TARGET_ACCESSES / fused_s / 1e6
    benchmark.extra_info.update(
        fused_s=fused_s, multipass_s=multi_s, speedup=speedup,
        fused_maccesses_per_s=fused_mps,
    )
    print(f"\nMmu.access {TARGET_ACCESSES} accesses: "
          f"fused {fused_s:.3f}s ({fused_mps:.1f} M/s), "
          f"multipass {multi_s:.3f}s, speedup {speedup:.2f}x")
    assert speedup >= 2.0


def test_steady_state_replay(benchmark):
    """Walk cache in steady state: the same write batches repeated
    unchanged must replay from the memoized outcome >= 5x faster than
    re-running the fused walk + TLB fast path every time.  Both legs are
    warmed past the walk->fast-path->memoize ramp so the measurement is
    pure steady state."""
    target = 8 * TARGET_ACCESSES
    cached_s = benchmark.pedantic(
        _drive, args=(True, True, 2, target), rounds=1, iterations=1
    )
    # Best-of-3 on both sides: at QUICK sizes the cached loop is
    # milliseconds, so single rounds are noise-dominated.
    cached_s = min(cached_s, _drive(True, True, 2, target),
                   _drive(True, True, 2, target))
    uncached_s = min(_drive(True, False, 2, target) for _ in range(3))
    speedup = uncached_s / cached_s
    cached_mps = target / cached_s / 1e6
    benchmark.extra_info.update(
        cached_s=cached_s, uncached_s=uncached_s, speedup=speedup,
        cached_maccesses_per_s=cached_mps,
    )
    print(f"\nsteady-state replay {target} accesses: "
          f"cached {cached_s:.3f}s ({cached_mps:.1f} M/s), "
          f"uncached fused {uncached_s:.3f}s, speedup {speedup:.2f}x")
    assert speedup >= 5.0


def test_access_plan_throughput(benchmark):
    """Access-plan submission vs per-batch kernel calls: one
    ``access_plan`` per phase amortizes the per-call kernel/scheduler/
    dispatch overhead (and, frozen, replays whole segments), so the same
    op stream must run >= 1.5x faster than the batch-at-a-time API."""
    from repro.experiments.harness import build_stack
    from repro.guest.plan import PlanBuilder

    n_pages = 8192
    batch = 2048
    batches = [np.arange(lo, lo + batch, dtype=np.int64)
               for lo in range(0, n_pages, batch)]
    rounds = max(1, 4 * TARGET_ACCESSES // n_pages)

    def make_leg():
        stack = build_stack(vm_mb=64)
        kernel = stack.kernel
        proc = kernel.spawn("bench", n_pages=n_pages)
        proc.space.add_vma(n_pages)
        kernel.access(proc, np.arange(n_pages, dtype=np.int64), True)
        return kernel, proc

    kernel_p, proc_p = make_leg()
    b = PlanBuilder()
    for vpns in batches:
        b.write(vpns)
    plan = b.build()
    for _ in range(2):  # warm to segment replay
        kernel_p.access_plan(proc_p, plan)

    def drive_plan() -> float:
        t0 = time.perf_counter()
        for _ in range(rounds):
            kernel_p.access_plan(proc_p, plan)
        return time.perf_counter() - t0

    kernel_b, proc_b = make_leg()
    for _ in range(2):  # warm to per-batch replay
        for vpns in batches:
            kernel_b.access(proc_b, vpns, True)

    def drive_batches() -> float:
        t0 = time.perf_counter()
        for _ in range(rounds):
            for vpns in batches:
                kernel_b.access(proc_b, vpns, True)
        return time.perf_counter() - t0

    plan_s = benchmark.pedantic(drive_plan, rounds=1, iterations=1)
    plan_s = min(plan_s, drive_plan(), drive_plan())
    batch_s = min(drive_batches() for _ in range(3))
    speedup = batch_s / plan_s
    benchmark.extra_info.update(
        plan_s=plan_s, per_batch_s=batch_s, speedup=speedup,
    )
    print(f"\naccess_plan {rounds}x{len(batches)} batches: "
          f"plan {plan_s:.3f}s, per-batch {batch_s:.3f}s, "
          f"speedup {speedup:.2f}x")
    assert speedup >= 1.5


def test_reverse_lookup_index_reuse(benchmark):
    n = N_PAGES
    pt = PageTable(n)
    pt.map(np.arange(n, dtype=np.int64),
           np.random.default_rng(7).permutation(n).astype(np.int64))
    queries = [np.random.default_rng(i).integers(0, n, 256) for i in range(64)]

    def warm() -> float:
        t0 = time.perf_counter()
        for q in queries:
            pt.reverse_lookup(q)
        return time.perf_counter() - t0

    warm_s = benchmark.pedantic(warm, rounds=1, iterations=1)

    cold_s = 0.0
    for q in queries:
        pt._rev_index = None  # simulate the pre-index per-call rebuild
        t0 = time.perf_counter()
        pt.reverse_lookup(q)
        cold_s += time.perf_counter() - t0
    speedup = cold_s / warm_s
    benchmark.extra_info.update(warm_s=warm_s, cold_s=cold_s, speedup=speedup)
    print(f"\nreverse_lookup x{len(queries)}: warm index {warm_s * 1e3:.2f}ms, "
          f"cold index {cold_s * 1e3:.2f}ms, speedup {speedup:.1f}x")
    assert speedup > 1.0


def test_tracing_overhead(benchmark):
    """Observability tax on the hot MMU loop: an active ``detail=False``
    session (the long-run/CI configuration) vs tracing off.  Disabled
    tracing is a guard-only check; enabled tracing emits one WRITE event
    per batch, so the overhead must stay a small constant factor."""
    off_s = benchmark.pedantic(_drive, args=(True,), rounds=3, iterations=1)
    session = otr.TraceSession(
        capacity=otr.ENV_SESSION_CAPACITY, detail=False
    )
    on_runs = []
    with session.active():
        for _ in range(3):
            on_runs.append(_drive(True))
    # Best-of-3 on both sides: the QUICK loop is milliseconds, so single
    # rounds are noise-dominated.
    off_s = min(off_s, _drive(True), _drive(True))
    on_s = min(on_runs)
    overhead = on_s / off_s
    benchmark.extra_info.update(
        tracing_off_s=off_s, tracing_on_s=on_s, overhead=overhead,
        events_emitted=session.n_emitted,
    )
    print(f"\nMmu.access tracing overhead: off {off_s:.3f}s, "
          f"on {on_s:.3f}s ({session.n_emitted} events), "
          f"{overhead:.2f}x")
    assert session.n_emitted > 0
    assert session.metrics.counter("mmu.writes") >= TARGET_ACCESSES
    # Generous bound: the tax is per-batch, not per-access, so even noisy
    # CI machines should land nowhere near it.
    assert overhead < 2.0


def test_smp_overhead_at_one_vcpu(benchmark):
    """SMP tax on the single-vCPU hot path: ``kernel.access`` routes
    through the scheduler's vCPU lookup and per-vCPU TLB/PML selection;
    at ``n_vcpus=1`` that plumbing must cost <= 1.05x of the
    seed-equivalent inline body (state checks + ``Mmu.access`` against
    the process's only TLB and the BSP's PML buffer)."""
    from repro.experiments.harness import build_stack
    from repro.guest.process import ProcessState

    n_pages = 8192
    stack = build_stack(vm_mb=64, n_vcpus=1)
    kernel = stack.kernel
    proc = kernel.spawn("bench", n_pages=n_pages)
    proc.space.add_vma(n_pages)
    batch = np.arange(n_pages, dtype=np.int64)
    kernel.access(proc, batch, True)  # pre-fault outside the measurement
    # 4x the usual access target: the per-call SMP tax is nanoseconds,
    # so the loop must be long enough for the ratio to beat timer noise.
    rounds = max(1, 4 * TARGET_ACCESSES // n_pages)

    def drive_smp() -> float:
        t0 = time.perf_counter()
        for _ in range(rounds):
            kernel.access(proc, batch, True)
        return time.perf_counter() - t0

    def seed_access(process, vpns, write):
        # The pre-SMP kernel.access body: no vcpu_of lookup, no per-vCPU
        # indexing — the process's single TLB and the BSP's PML circuit.
        if process.state is ProcessState.DEAD:
            raise RuntimeError
        if process.state is ProcessState.STOPPED:
            raise RuntimeError
        handler = kernel._fault_handlers[process.pid]
        result = kernel.vm.mmu.access(
            process.space.pt, process.space.tlb, vpns, write, handler
        )
        for listener in kernel._access_listeners:
            listener(process, result)
        return result

    def drive_seed() -> float:
        t0 = time.perf_counter()
        for _ in range(rounds):
            seed_access(proc, batch, True)
        return time.perf_counter() - t0

    drive_smp(), drive_seed()  # warm both paths
    # Median of per-pair ratios, alternating which side runs first in
    # each pair: equal work on both sides, so the ratio cancels the
    # machine's speed and the alternation cancels ordering bias; the
    # median strips scheduling-noise outliers.
    smp_runs = [benchmark.pedantic(drive_smp, rounds=1, iterations=1)]
    seed_runs = [drive_seed()]
    for i in range(8):
        if i % 2:
            smp_runs.append(drive_smp())
            seed_runs.append(drive_seed())
        else:
            seed_runs.append(drive_seed())
            smp_runs.append(drive_smp())
    ratios = sorted(s / e for s, e in zip(smp_runs, seed_runs))
    overhead = ratios[len(ratios) // 2]
    smp_s, seed_s = min(smp_runs), min(seed_runs)
    benchmark.extra_info.update(
        smp_s=smp_s, seed_equiv_s=seed_s, overhead=overhead,
    )
    print(f"\nkernel.access SMP tax @ n_vcpus=1: smp {smp_s:.3f}s, "
          f"seed-equivalent {seed_s:.3f}s, overhead {overhead:.3f}x")
    assert overhead <= 1.05


def _runner_wallclock(extra_args: list[str], env_overrides: dict) -> float:
    env = dict(os.environ, **env_overrides)
    env.setdefault("PYTHONPATH", "src")
    t0 = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner", "all", "--quick",
         *extra_args],
        check=True, capture_output=True, env=env,
    )
    return time.perf_counter() - t0


def test_runner_all_quick_wallclock(benchmark):
    """End-to-end: optimized `runner all --quick --jobs 4` vs the
    pre-optimization configuration (multipass walk, no memo-cache)."""
    opt_s = benchmark.pedantic(
        _runner_wallclock, args=(["--jobs", "4"], {}), rounds=1, iterations=1
    )
    base_s = _runner_wallclock(
        [], {"REPRO_FUSED_MMU": "0", "REPRO_EXPERIMENT_CACHE": "0"}
    )
    speedup = base_s / opt_s
    benchmark.extra_info.update(opt_s=opt_s, baseline_s=base_s, speedup=speedup)
    print(f"\nrunner all --quick: optimized --jobs 4 {opt_s:.2f}s, "
          f"baseline {base_s:.2f}s, speedup {speedup:.2f}x")
    assert speedup >= 2.0
