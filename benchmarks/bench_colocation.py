"""Bench: per-process tracking under colocation (challenge C2).

The paper's motivation (§III-C) leans on FaaS-style colocation: many
functions share one VM, so dirty tracking must work at *process*
granularity.  This bench runs a tracked process next to an increasingly
noisy co-tenant and checks that (1) the collected dirty set never
contains the tenant's pages, and (2) the tracked process's collection
cost scales with ITS dirty set, not the tenant's.
"""

import numpy as np
import pytest
from conftest import QUICK

from repro.core.tracking import Technique, make_tracker
from repro.experiments.harness import build_stack
from repro.hw.pagetable import PTE_DIRTY

PAGES = 2048 if QUICK else 8192
NOISE_LEVELS = [0, 4, 16]  # tenant writes as a multiple of tracked writes


def run_colocated(technique: Technique, noise: int):
    stack = build_stack(vm_mb=PAGES * 2 * (max(NOISE_LEVELS) + 2) / 256 + 64)
    tracked = stack.kernel.spawn("tracked", n_pages=PAGES)
    tracked.space.add_vma(PAGES)
    tenant = stack.kernel.spawn("tenant", n_pages=PAGES * max(1, noise))
    tenant.space.add_vma(PAGES * max(1, noise))
    stack.kernel.access(tracked, np.arange(PAGES), True)
    stack.kernel.access(tenant, np.arange(PAGES * max(1, noise)), True)

    tracker = make_tracker(technique, stack.kernel, tracked)
    tracker.start()
    t0 = stack.clock.now_us
    # Interleaved slices: the tenant writes `noise`x the tracked volume.
    for round_ in range(4):
        stack.kernel.access(tracked, np.arange(PAGES // 4), True)
        if noise:
            # Tracked is descheduled while the tenant runs: logging is
            # off (the OoH module's schedule hooks), so the tenant's
            # writes are never logged.
            stack.kernel.scheduler.deschedule(tracked)
            stack.kernel.access(
                tenant,
                np.arange(round_ * PAGES, (round_ + noise // 4 + 1) * PAGES)
                % (PAGES * noise),
                True,
            )
            stack.kernel.scheduler.schedule(tracked)
    c0 = stack.clock.now_us
    dirty = tracker.collect()
    collect_us = stack.clock.now_us - c0
    tracker.stop()
    # Both address spaces number their VPNs from zero, so "no leakage"
    # only means something in machine-frame terms: the GPFNs behind the
    # tenant's PTE-dirty pages vs the GPFNs behind the collected set.
    tenant_dirty_vpns = tenant.space.pt.vpns_with_flag(PTE_DIRTY)
    tenant_gpfns = set(
        int(g) for g in tenant.space.pt.translate(tenant_dirty_vpns)
    )
    dirty_gpfns = set(
        int(g) for g in tracked.space.pt.translate(np.asarray(dirty))
    ) if len(dirty) else set()
    return dirty, collect_us, tenant_gpfns, dirty_gpfns


@pytest.mark.parametrize("technique", [Technique.SPML, Technique.EPML])
@pytest.mark.parametrize("noise", NOISE_LEVELS)
def test_colocation_no_leakage(benchmark, technique, noise):
    dirty, collect_us, tenant_gpfns, dirty_gpfns = benchmark.pedantic(
        run_colocated, args=(technique, noise), rounds=1, iterations=1
    )
    benchmark.extra_info["collect_ms"] = collect_us / 1000
    # The tracked process wrote pages [0, PAGES/4) each round.
    assert set(int(v) for v in dirty) == set(range(PAGES // 4))
    # No leakage, for real: the tenant dirtied plenty of machine frames
    # (when noisy), and none of them may appear behind the collection.
    if noise:
        assert len(tenant_gpfns) >= PAGES
    assert not (dirty_gpfns & tenant_gpfns)
    print(f"\n{technique.value} noise={noise}x: "
          f"dirty={dirty.size}, collect={collect_us / 1000:.1f} ms")


@pytest.mark.parametrize("technique", [Technique.SPML, Technique.EPML])
def test_colocation_collect_cost_insensitive_to_noise(benchmark, technique):
    results = benchmark.pedantic(
        lambda: {n: run_colocated(technique, n) for n in NOISE_LEVELS},
        rounds=1, iterations=1,
    )
    costs = {n: results[n][1] for n in NOISE_LEVELS}
    # A 16x-noisier tenant must not blow up the tracked collection cost
    # (per-process logging means the tenant's writes are never logged).
    assert costs[16] < costs[0] * 1.5 + 1000
