"""Satellite 3: deterministic contention + the degenerate differential.

Two guarantees pin the fleet layer to the pre-fleet code path:

1. **Determinism** — two concurrent migrations sharing one link
   interleave *identically* for a fixed seed: same rounds, same page
   budgets, same simulated timestamps, same destination memory.
2. **Degenerate identity** — with an infinitely fast link and a single
   VM, the orchestrated migration reproduces the existing
   ``LiveMigration`` report (rounds, pages_per_round, converged, ...)
   bit-for-bit: the adaptive controller must be a no-op when there is
   nothing to adapt to.
"""

import numpy as np

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.fleet.host import Host, VmSpec
from repro.fleet.orchestrator import MigrationOrchestrator, MigrationPolicy
from repro.hypervisor.migration import LiveMigration
from repro.net.link import Link
from repro.net.transport import Transport
from repro.obs import trace as otr
from repro.obs.events import EventKind
from tests.smp.helpers import process_memory_state

N_PAGES = 512


def _spec(name: str, writes: int = 160, seed: int = 7) -> VmSpec:
    return VmSpec(
        name=name,
        mem_mb=2.0,
        workload_pages=N_PAGES,
        writes_per_round=writes,
        write_fraction=0.8,
        compute_us_per_round=300.0,
        seed=seed,
    )


def _fleet(n_hosts: int, link: Link, policy: MigrationPolicy):
    clock = SimClock()
    costs = CostModel()
    hosts = [Host(f"h{i}", clock, costs, mem_mb=16.0) for i in range(n_hosts)]
    transport = Transport(clock, costs)
    orch = MigrationOrchestrator(hosts, transport, link, policy)
    return clock, hosts, orch


def _fingerprint(clock, reports, fvms) -> tuple:
    mem = []
    for fvm in fvms:
        vpns, tokens = process_memory_state(fvm.kernel, fvm.proc)
        mem.append((vpns.tolist(), tokens.tolist()))
    return (
        clock.now_us,
        [
            (
                r.vm_name,
                f"{r.src_host}->{r.dst_host}",
                r.mode,
                r.rounds,
                r.precopy.pages_per_round,
                r.precopy.converged,
                r.precopy.aborted_reason,
                r.total_pages_sent,
                r.downtime_us,
                r.total_us,
                r.throttle_peak,
                r.integrity_ok,
            )
            for r in reports
        ],
        mem,
    )


def _run_concurrent_pair() -> tuple:
    """Two migrations off h0, sharing one backbone, captured in full."""
    link = Link("backbone", us_per_page=2.0, latency_us=20.0)
    policy = MigrationPolicy(downtime_slo_us=4000.0, stop_threshold_pages=64)
    clock, hosts, orch = _fleet(3, link, policy)
    fvms = [
        hosts[0].place(_spec("vmA", writes=200, seed=3)),
        hosts[0].place(_spec("vmB", writes=120, seed=4)),
    ]
    with otr.TraceSession().active() as session:
        reports = orch.migrate_many(
            [(fvms[0], hosts[1]), (fvms[1], hosts[2])]
        )
    sends = session.trace.by_kind(EventKind.NET_SEND)
    return _fingerprint(clock, reports, fvms), reports, sends


def test_concurrent_migrations_interleave_deterministically():
    fp_a, reports, sends = _run_concurrent_pair()
    fp_b, _, _ = _run_concurrent_pair()
    assert fp_a == fp_b
    for r in reports:
        assert r.integrity_ok
    # The two flows really did contend: transfers overlapped on the link.
    assert any(e.fields["n_flows"] == 2 for e in sends)
    # ...and the tail ran uncontended once the faster flow closed.
    assert any(e.fields["n_flows"] == 1 for e in sends)


def test_contention_charges_more_than_solo():
    """The same pair of migrations, run one-at-a-time, finishes its
    transfers cheaper per page than the contended run (fair share)."""
    _, contended, _ = _run_concurrent_pair()

    link = Link("backbone", us_per_page=2.0, latency_us=20.0)
    policy = MigrationPolicy(downtime_slo_us=4000.0, stop_threshold_pages=64)
    _, hosts, orch = _fleet(3, link, policy)
    a = hosts[0].place(_spec("vmA", writes=200, seed=3))
    b = hosts[0].place(_spec("vmB", writes=120, seed=4))
    solo = [orch.migrate(a, hosts[1]), orch.migrate(b, hosts[2])]
    assert all(r.integrity_ok for r in solo)

    def us_per_sent_page(rs):
        return sum(r.total_us for r in rs) / sum(
            r.total_pages_sent for r in rs
        )

    assert us_per_sent_page(contended) > us_per_sent_page(solo)


def test_degenerate_single_vm_matches_plain_live_migration():
    """Infinite bandwidth + one VM: the orchestrated pre-copy must equal
    the stock ``LiveMigration`` run field for field, and both sides'
    final memory must agree token for token."""
    spec = _spec("vm0")

    # Fleet side: one migration over a zero-cost link, fixed destination.
    link = Link("inf", us_per_page=0.0, latency_us=0.0)
    policy = MigrationPolicy(downtime_slo_us=1000.0, wss_intervals=0)
    fleet_clock, hosts, orch = _fleet(2, link, policy)
    fvm = hosts[0].place(spec)
    fleet_report = orch.migrate(fvm, dst=hosts[1], destroy_source=False)

    # Plain side: the pre-fleet code path — stock LiveMigration with the
    # historical flat sender at the same (zero) rate, same workload.
    plain_clock = SimClock()
    host = Host("h0", plain_clock, CostModel(), mem_mb=16.0)
    ref = host.place(spec)
    mig = LiveMigration(host.hypervisor, ref.vm, page_send_us=0.0)
    plain_report = mig.migrate(ref.run_round)

    pre = fleet_report.precopy
    assert pre.rounds == plain_report.rounds
    assert pre.pages_per_round == plain_report.pages_per_round
    assert pre.converged == plain_report.converged
    assert pre.aborted_reason == plain_report.aborted_reason
    assert pre.total_pages_sent == plain_report.total_pages_sent
    assert pre.downtime_us == plain_report.downtime_us
    assert pre.total_us == plain_report.total_us
    assert fleet_report.mode == "precopy"
    assert fleet_report.throttle_peak == 0.0  # controller stayed silent
    assert fleet_report.integrity_ok

    # The clocks agree through the end of pre-copy (``total_us`` above);
    # past that the fleet side also materialises a real destination VM,
    # which the stock single-stack run never does — so only the delta
    # beyond pre-copy may differ, never the migration itself.
    assert fleet_clock.now_us >= plain_clock.now_us
    # The migrated destination holds exactly the memory the reference
    # guest (same seed, same rounds) ended up with.
    dst_vpns, dst_tokens = process_memory_state(fvm.kernel, fvm.proc)
    ref_vpns, ref_tokens = process_memory_state(ref.kernel, ref.proc)
    assert np.array_equal(dst_vpns, ref_vpns)
    assert np.array_equal(dst_tokens, ref_tokens)
