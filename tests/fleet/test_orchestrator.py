"""Orchestrator unit tests: WSS-driven placement, capacity, validation."""

import numpy as np
import pytest

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.errors import ConfigurationError
from repro.fleet.host import FleetVm, Host, VmSpec
from repro.fleet.orchestrator import MigrationOrchestrator, MigrationPolicy
from repro.net.link import Link
from repro.net.transport import Transport
from repro.obs import trace as otr
from repro.obs.events import EventKind


def _spec(name: str, writes: int = 100, pages: int = 256) -> VmSpec:
    return VmSpec(
        name=name,
        mem_mb=1.0,
        workload_pages=pages,
        writes_per_round=writes,
        seed=21,
    )


def _fleet(n_hosts: int = 3, mem_mb: float = 8.0, policy=None):
    clock = SimClock()
    costs = CostModel()
    hosts = [
        Host(f"h{i}", clock, costs, mem_mb=mem_mb) for i in range(n_hosts)
    ]
    orch = MigrationOrchestrator(
        hosts, Transport(clock, costs), Link("l"), policy
    )
    return hosts, orch


def test_estimate_wss_samples_the_live_working_set():
    hosts, orch = _fleet()
    fvm = hosts[0].place(_spec("vm0", writes=40, pages=256))
    assert fvm.last_wss_pages == 256  # pessimistic until sampled
    wss = orch.estimate_wss(fvm)
    assert wss == fvm.last_wss_pages
    # ~40 random touches over 256 pages: far below the footprint, and
    # never more than one round's access count.
    assert 0 < wss <= 40


def test_wss_intervals_zero_skips_sampling():
    hosts, orch = _fleet(policy=MigrationPolicy(wss_intervals=0))
    fvm = hosts[0].place(_spec("vm0"))
    before = fvm.n_rounds
    assert orch.estimate_wss(fvm) == fvm.spec.workload_pages
    assert fvm.n_rounds == before  # the guest never ran


def test_placement_prefers_host_with_least_wss_pressure():
    """Equal free frames: the host whose residents have the smaller
    working sets wins (WSS pressure, not just capacity)."""
    hosts, orch = _fleet(3)
    mover = hosts[0].place(_spec("mover"))
    # Same committed footprint on h1 and h2, very different heat.
    hot = hosts[1].place(_spec("hot", writes=200))
    cold = hosts[2].place(_spec("cold", writes=200))
    hot.last_wss_pages = 250
    cold.last_wss_pages = 10
    assert orch.select_destination(mover) is hosts[2]
    # Flip the heat: the choice flips with it.
    hot.last_wss_pages, cold.last_wss_pages = 10, 250
    assert orch.select_destination(mover) is hosts[1]


def test_placement_skips_hosts_without_capacity():
    hosts, orch = _fleet(3, mem_mb=8.0)
    mover = hosts[0].place(_spec("mover"))
    # h1 is idle but fully reserved by an in-flight migration; h2 busy.
    hosts[1].reserved_pages = hosts[1].free_pages
    hosts[2].place(_spec("other"))
    assert orch.select_destination(mover) is hosts[2]


def test_no_feasible_destination_raises():
    hosts, orch = _fleet(2)
    mover = hosts[0].place(_spec("mover"))
    hosts[1].reserved_pages = hosts[1].free_pages
    with pytest.raises(ConfigurationError):
        orch.select_destination(mover)


def test_explicit_destination_checked_for_capacity():
    hosts, orch = _fleet(2)
    mover = hosts[0].place(_spec("mover"))
    hosts[1].reserved_pages = hosts[1].free_pages
    with pytest.raises(ConfigurationError):
        orch.migrate(mover, dst=hosts[1])


def test_concurrent_placements_spread_via_reservations():
    """Two concurrent auto-placed migrations must not pile onto one
    host: the first claim reserves frames the second decision sees."""
    hosts, orch = _fleet(3, policy=MigrationPolicy(wss_intervals=0))
    a = hosts[0].place(_spec("a"))
    b = hosts[0].place(_spec("b"))
    reports = orch.migrate_many([(a, None), (b, None)])
    assert {r.dst_host for r in reports} == {"h1", "h2"}
    assert all(r.integrity_ok for r in reports)
    for host in hosts[1:]:
        assert host.reserved_pages == 0  # claims fully converted


def test_placement_emits_event_and_metric():
    hosts, orch = _fleet(3)
    mover = hosts[0].place(_spec("mover"))
    with otr.TraceSession().active() as session:
        dst = orch.select_destination(mover)
    events = session.trace.by_kind(EventKind.FLEET_PLACEMENT)
    assert len(events) == 1
    assert events[0].fields["vm"] == "mover"
    assert events[0].fields["host_id"] == dst.host_id
    counters = session.metrics.snapshot()["counters"]
    assert counters[f"fleet.host.{dst.host_id}.placements"] == 1


def test_orchestrator_validates_fleet():
    clock, costs = SimClock(), CostModel()
    transport, link = Transport(clock, costs), Link("l")
    with pytest.raises(ConfigurationError):
        MigrationOrchestrator([], transport, link)
    dup = [Host("h0", clock, costs, 8.0), Host("h0", clock, costs, 8.0)]
    with pytest.raises(ConfigurationError):
        MigrationOrchestrator(dup, transport, link)


def test_migrating_an_unplaced_vm_rejected():
    hosts, orch = _fleet(2)
    with pytest.raises(ConfigurationError):
        orch.migrate(FleetVm(_spec("ghost")))


def test_unbound_fleet_vm_cannot_run():
    with pytest.raises(ConfigurationError):
        FleetVm(_spec("ghost")).run_round()


def test_vmspec_validation():
    with pytest.raises(ConfigurationError):
        VmSpec("x", mem_mb=1.0, workload_pages=0, writes_per_round=1)
    with pytest.raises(ConfigurationError):
        VmSpec("x", mem_mb=1.0, workload_pages=999, writes_per_round=1)
    with pytest.raises(ConfigurationError):
        VmSpec("x", mem_mb=1.0, workload_pages=16, writes_per_round=0)
    with pytest.raises(ConfigurationError):
        VmSpec(
            "x", mem_mb=1.0, workload_pages=16, writes_per_round=1,
            write_fraction=1.5,
        )


def test_workload_rng_survives_rebinding():
    """The workload stream belongs to the FleetVm, not the host: the
    post-migration rounds continue the same random sequence instead of
    rewinding to a fresh one."""
    spec = _spec("vm0")
    hosts, orch = _fleet(2, policy=MigrationPolicy(wss_intervals=0))
    fvm = hosts[0].place(spec)
    rng = fvm._rng
    orch.migrate(fvm, dst=hosts[1])
    assert fvm.host is hosts[1]
    assert fvm._rng is rng  # same stream object across the rebind...
    fresh = FleetVm(spec)
    # ...and its position reflects the rounds already run: the next
    # draw differs from a fresh VM's first draw.
    assert not np.array_equal(
        fvm._rng.integers(0, 10**9, 8), fresh._rng.integers(0, 10**9, 8)
    )


def test_host_capacity_accounting():
    clock, costs = SimClock(), CostModel()
    host = Host("h0", clock, costs, mem_mb=4.0)
    cap = host.capacity_pages
    assert host.free_pages == cap
    fvm = host.place(_spec("vm0"))
    assert host.committed_pages == fvm.spec.mem_pages
    assert host.hot_pages == fvm.last_wss_pages
    host.reserved_pages = 100
    assert host.available_pages == host.free_pages - 100
    assert host.fits(host.available_pages)
    assert not host.fits(host.available_pages + 1)
    host.reserved_pages = 0
    host.evict(fvm)
    assert host.free_pages == cap and not host.vms
