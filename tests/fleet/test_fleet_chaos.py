"""Satellite 5 (chaos): fleet migrations under injected network faults.

Three guarantees:

* the chaos plan really arms the new network fault sites (so the CI
  chaos leg exercises them alongside the tracking faults);
* a migration under drop/spike/partition faults still completes with
  destination integrity, surfaces its retransmissions, and is
  bit-deterministic for a fixed ``REPRO_CHAOS_SEED``;
* a dirty-page tracker audited by the :class:`CompletenessAuditor`
  through a whole orchestrated migration under full chaos never loses a
  page silently.
"""

import os

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.core.tracking import Technique, make_tracker
from repro.experiments.faultmatrix import chaos_plan
from repro.faults.auditor import CompletenessAuditor
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.fleet.host import Host, VmSpec
from repro.fleet.orchestrator import MigrationOrchestrator, MigrationPolicy
from repro.net.link import Link
from repro.net.transport import Transport

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1234"))

SPEC = VmSpec(
    name="vm0",
    mem_mb=4.0,
    workload_pages=1024,
    writes_per_round=600,
    write_fraction=0.9,
    compute_us_per_round=250.0,
    seed=CHAOS_SEED,
)


def _net_plan() -> FaultPlan:
    return FaultPlan(
        [
            FaultSpec(FaultSite.NET_DROP, 0.05),
            FaultSpec(FaultSite.NET_LATENCY_SPIKE, 0.05),
            FaultSpec(FaultSite.NET_PARTITION, 0.05),
        ],
        seed=CHAOS_SEED,
    )


def _migrate_under(plan: FaultPlan | None, spec: VmSpec = SPEC):
    clock = SimClock()
    costs = CostModel()
    hosts = [Host(f"h{i}", clock, costs, mem_mb=16.0) for i in range(2)]
    orch = MigrationOrchestrator(
        hosts,
        Transport(clock, costs),
        Link("backbone"),
        MigrationPolicy(downtime_slo_us=3000.0, wss_intervals=0),
    )
    fvm = hosts[0].place(spec)
    if plan is None:
        report = orch.migrate(fvm, dst=hosts[1])
    else:
        with plan.active():
            report = orch.migrate(fvm, dst=hosts[1])
    return clock, report


def test_chaos_plan_arms_network_sites():
    armed = {spec.site for spec in chaos_plan(0.1).specs}
    assert {
        FaultSite.NET_DROP,
        FaultSite.NET_LATENCY_SPIKE,
        FaultSite.NET_PARTITION,
    } <= armed


def test_migration_survives_net_chaos_with_integrity():
    clean_clock, clean = _migrate_under(None)
    clock, chaotic = _migrate_under(_net_plan())
    assert chaotic.integrity_ok
    # Losses cost time and are surfaced, never silent.
    assert chaotic.retransmitted_pages > 0
    assert clock.now_us > clean_clock.now_us
    assert chaotic.total_pages_sent >= clean.total_pages_sent


def test_net_chaos_outcome_is_seed_deterministic():
    def fingerprint():
        clock, r = _migrate_under(_net_plan())
        return (
            clock.now_us,
            r.mode,
            r.rounds,
            r.precopy.pages_per_round,
            r.total_pages_sent,
            r.retransmitted_pages,
            r.downtime_us,
            r.total_us,
            r.integrity_ok,
        )

    assert fingerprint() == fingerprint()


def test_audited_tracker_clean_through_migration_under_full_chaos():
    """An EPML tracker audited across a whole migration under the full
    chaos plan (tracking + network sites armed): every missed page must
    be surfaced by a counter — silent loss raises at ``stop()``."""
    clock = SimClock()
    costs = CostModel()
    hosts = [Host(f"h{i}", clock, costs, mem_mb=16.0) for i in range(2)]
    orch = MigrationOrchestrator(
        hosts,
        Transport(clock, costs),
        Link("backbone"),
        # Converging pre-copy: the audited process survives on the source
        # (stopped, not destroyed) so the final audit can still collect.
        MigrationPolicy(downtime_slo_us=None, wss_intervals=0),
    )
    spec = VmSpec(
        name="vm0",
        # Half-full footprint: the EPML guest buffer and the auditor's
        # oracle both allocate guest frames beyond the workload's 1024.
        mem_mb=8.0,
        workload_pages=1024,
        writes_per_round=200,
        compute_us_per_round=400.0,
        seed=CHAOS_SEED,
    )
    fvm = hosts[0].place(spec)
    tracker = make_tracker(Technique.EPML, fvm.kernel, fvm.proc)
    auditor = CompletenessAuditor(fvm.kernel, fvm.proc, tracker)
    auditor.start()
    fvm.add_round_hook(auditor.collect)

    with chaos_plan(0.05, seed=CHAOS_SEED).active():
        report = orch.migrate(fvm, dst=hosts[1], destroy_source=False)

    audit = auditor.stop()  # raises CompletenessViolation on silent loss
    assert not audit.silent_loss
    assert audit.n_truth > 0  # the audit actually saw migration rounds
    assert report.integrity_ok
