"""Tests for the overcommit experiment: frontier shape + determinism."""

from dataclasses import asdict

import pytest

from repro.errors import ConfigurationError
from repro.fleet.economics.experiment import (
    overcommit_specs,
    run_overcommit_scenario,
)

RATIOS = [1.0, 1.5, 2.0]


@pytest.fixture(scope="module")
def sweep():
    return [run_overcommit_scenario(r, quick=True) for r in RATIOS]


def test_specs_leave_guest_frame_float():
    for quick in (False, True):
        for s in overcommit_specs(4, seed=1, quick=quick):
            assert s.mem_pages - s.workload_pages >= s.writes_per_round
            assert s.hot_fraction < 1.0  # cold tail exists to reclaim


def test_ratio_one_is_the_idle_control(sweep):
    base = sweep[0]
    assert base.ratio == 1.0
    assert base.reclaimed_pages == 0
    assert base.refault_pages == 0
    assert base.pressure_events == 0
    assert base.rejected > 0  # the offered load genuinely oversubscribes


def test_frontier_monotone_non_decreasing(sweep):
    admitted = [r.admitted for r in sweep]
    rates = [r.refaults_per_1k_accesses for r in sweep]
    assert admitted == sorted(admitted)
    assert rates == sorted(rates)
    assert rates[-1] > 0.0


def test_overcommit_admits_more_than_physical(sweep):
    over = sweep[-1]
    assert sum(over.nominal_pages.values()) > over.capacity_pages
    assert over.admitted > sweep[0].admitted


def test_latency_follows_refaults(sweep):
    assert sweep[-1].mean_round_us > sweep[0].mean_round_us


def test_scenario_deterministic():
    a = asdict(run_overcommit_scenario(1.5, quick=True))
    b = asdict(run_overcommit_scenario(1.5, quick=True))
    assert a == b


def test_admission_ramp_opens_with_sampling(sweep):
    """Early waves admit on pessimistic whole-workload estimates; once
    sampling shrinks the residents' histories, later waves fit more."""
    over = sweep[-1]
    ramp = over.admitted_by_epoch
    assert ramp[-1] > ramp[0]
    assert ramp == sorted(ramp)


def test_scenario_validation():
    with pytest.raises(ConfigurationError):
        run_overcommit_scenario(1.5, n_hosts=0, quick=True)


def test_registered_in_runner():
    from repro.experiments.runner import EXPERIMENT_FAMILIES, EXPERIMENTS

    assert "overcommit" in EXPERIMENTS
    assert ["overcommit"] in EXPERIMENT_FAMILIES


def test_exp_overcommit_renders_frontier(monkeypatch):
    monkeypatch.setenv("REPRO_OVERCOMMIT_RATIOS", "1.0,2.0")
    from repro.fleet.economics.experiment import exp_overcommit

    out = exp_overcommit(quick=True)
    assert out.experiment == "overcommit"
    assert [row[0] for row in out.rows] == ["1.0", "2.0"]
    assert "refault/1k" in out.headers
    rates = out.extra["refaults_per_1k"]
    assert rates["1.0"] == 0.0
    assert rates["2.0"] > 0.0
