"""Chaos: no dirty page lost across reclaim/refault cycles.

The acceptance bar for the balloon: an audited dirty-page tracker run
*through* balloon inflate/deflate churn — with every fault site armed —
must stay complete (every missed page surfaced by a counter, none lost
silently), and guest memory contents must survive every cycle.
"""

import os

import numpy as np
import pytest

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.core.tracking import Technique, make_tracker
from repro.errors import OutOfFramesError
from repro.experiments.faultmatrix import chaos_plan
from repro.faults.auditor import CompletenessAuditor
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.fleet.host import Host, VmSpec

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1234"))


def build(ratio: float = 2.0):
    host = Host("h0", SimClock(), CostModel(), mem_mb=16.0,
                overcommit_ratio=ratio)
    specs = [
        VmSpec(name=f"vm{i}", mem_mb=4.0, workload_pages=768,
               writes_per_round=96, write_fraction=0.9,
               compute_us_per_round=200.0, hot_fraction=0.25,
               seed=CHAOS_SEED + i)
        for i in range(4)
    ]
    return host, specs


def churn(host, fvms, rounds: int = 6) -> None:
    """Workload rounds with periodic reclaim pressure."""
    eco = host.economics
    for r in range(rounds):
        for fvm in fvms:
            fvm.run_round()
        # Alternate squeezing and letting refaults win frames back.
        if r % 2 == 0:
            try:
                eco.ensure_free(host.free_pages + 128)
            except OutOfFramesError:
                pass
        else:
            eco.rebalance()


def test_audited_tracker_clean_through_balloon_churn_under_chaos():
    host, specs = build()
    fvms = [host.place(s) for s in specs[:3]]
    for fvm in fvms:
        for _ in range(4):
            fvm.wss.record(200)
        fvm.wss.refresh_planning(4)
    audited = fvms[0]
    tracker = make_tracker(Technique.EPML, audited.kernel, audited.proc,
                           resync_on_loss=True)
    auditor = CompletenessAuditor(audited.kernel, audited.proc, tracker)
    auditor.start()
    audited.add_round_hook(auditor.collect)

    with chaos_plan(0.05, seed=CHAOS_SEED).active():
        host.place(specs[3])  # admission forces reclaim mid-chaos
        churn(host, fvms + [host.vms["vm3"]])

    audit = auditor.stop()  # raises CompletenessViolation on silent loss
    assert not audit.silent_loss
    assert audit.n_truth > 0
    assert host.economics.reclaimed_pages > 0
    assert host.economics.refault_pages > 0


def test_contents_survive_reclaim_refault_cycles_under_chaos():
    host, specs = build()
    fvm = host.place(specs[0])
    pt = fvm.proc.space.pt
    vpns = np.arange(specs[0].workload_pages, dtype=np.int64)
    driver = host.economics.drivers[fvm.name]

    plan = FaultPlan(
        [
            FaultSpec(FaultSite.HYPERCALL_TRANSIENT, 0.2),
            FaultSpec(FaultSite.FRAME_EXHAUSTION, 0.1),
        ],
        seed=CHAOS_SEED,
    )
    # Refault batches must respect the guest-frame float (mem - workload
    # = 256 pages here), just like real access rounds do.
    with plan.active():
        for _ in range(4):
            before = fvm.vm.mmu.read_page_contents(pt, vpns).copy()
            driver.inflate(200)
            missing = vpns[~pt.present_mask(vpns)]
            assert missing.size > 0
            fvm.kernel.access(fvm.proc, missing, False)  # refault by read
            after = fvm.vm.mmu.read_page_contents(pt, vpns)
            assert np.array_equal(before, after)
    # The armed transient faults really fired and were retried.
    assert driver._retrier.n_retries > 0
    assert driver._retrier.n_exhausted == 0


def test_balloon_churn_is_chaos_seed_deterministic():
    def fingerprint():
        host, specs = build()
        fvms = [host.place(s) for s in specs[:3]]
        for fvm in fvms:
            for _ in range(4):
                fvm.wss.record(200)
            fvm.wss.refresh_planning(4)
        with chaos_plan(0.05, seed=CHAOS_SEED).active():
            host.place(specs[3])
            churn(host, fvms + [host.vms["vm3"]])
        eco = host.economics
        return (
            host.clock.now_us,
            eco.reclaimed_pages,
            eco.refault_pages,
            eco.refault_faults,
            eco.n_pressure_events,
            {n: d.ballooned_pages for n, d in sorted(eco.drivers.items())},
        )

    assert fingerprint() == fingerprint()


def test_uffd_tracker_cannot_share_the_balloon_fd():
    """The UFD technique owns the process userfaultfd; on an overcommit
    host the balloon already holds it — the conflict must be loud."""
    from repro.errors import TrackingError

    host, specs = build()
    fvm = host.place(specs[0])
    tracker = make_tracker(Technique.UFD, fvm.kernel, fvm.proc)
    with pytest.raises(TrackingError):
        tracker.start()
