"""Tests for the per-VM working-set time series (WssHistory)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet.economics.wss_history import WssConfig, WssHistory


def test_config_validation():
    with pytest.raises(ConfigurationError):
        WssConfig(alpha=0.0)
    with pytest.raises(ConfigurationError):
        WssConfig(alpha=1.5)
    with pytest.raises(ConfigurationError):
        WssConfig(percentile=101.0)
    with pytest.raises(ConfigurationError):
        WssConfig(hysteresis=-0.1)
    with pytest.raises(ConfigurationError):
        WssConfig(window=0)
    with pytest.raises(ConfigurationError):
        WssHistory(initial_pages=0)


def test_starts_pessimistic_at_initial_pages():
    h = WssHistory(initial_pages=512)
    assert h.planning_pages == 512
    assert h.ewma_pages == 512
    assert h.peak_pages == 512
    assert h.percentile_pages() == 512
    assert h.target_pages == 512
    assert h.n_recorded == 0


def test_record_updates_estimators():
    h = WssHistory(initial_pages=1000, config=WssConfig(alpha=0.5))
    h.record(100)
    assert h.ewma_pages == 100  # first sample seeds the EWMA
    h.record(200)
    assert h.ewma_pages == 150  # 0.5*200 + 0.5*100
    assert h.peak_pages == 200
    with pytest.raises(ConfigurationError):
        h.record(-1)


def test_record_estimate_keeps_pr5_assignment_semantics():
    """``fvm.last_wss_pages = n`` must still publish n as the planning
    value (the PR 5 path) while feeding the smoothed estimators."""
    h = WssHistory(initial_pages=512)
    h.record_estimate(37)
    assert h.planning_pages == 37
    assert list(h.samples) == [37]
    assert h.n_recorded == 1


def test_refresh_planning_matches_estimator_arithmetic():
    """ceil(mean of last k samples) — bit-for-bit what
    ``WssEstimator.estimate_pages`` computes, so the fleet placement
    value is unchanged by the history refactor."""
    h = WssHistory(initial_pages=512)
    samples = [3, 4, 10, 7]
    for s in samples:
        h.record(s)
    for k in (1, 2, 4):
        want = int(np.ceil(float(np.mean(samples[-k:]))))
        assert h.refresh_planning(k) == want
    with pytest.raises(ConfigurationError):
        h.refresh_planning(0)


def test_refresh_planning_without_samples_keeps_planning():
    h = WssHistory(initial_pages=512)
    assert h.refresh_planning(3) == 512


def test_target_hysteresis_gates_small_moves():
    cfg = WssConfig(alpha=1.0, percentile=100.0, hysteresis=0.15)
    h = WssHistory(initial_pages=100, config=cfg)
    h.record(100)
    assert h.target_pages == 100
    # Window still contains the 100 sample, so the max-backed candidate
    # stays at 100: the target must not flap on a small dip.
    h.record(95)
    assert h.target_pages == 100
    # A large sustained rise (>15% relative) moves it.
    h.record(200)
    assert h.target_pages == 200


def test_target_tracks_large_shrink():
    cfg = WssConfig(alpha=1.0, percentile=50.0, hysteresis=0.15, window=2)
    h = WssHistory(initial_pages=1536, config=cfg)
    h.record(90)
    h.record(96)
    # Candidate collapsed from 1536 to ~96 — far past the gate.
    assert h.target_pages <= 100
    assert h.target_pages >= 1


def test_window_bounds_samples():
    h = WssHistory(initial_pages=10, config=WssConfig(window=4))
    for i in range(10):
        h.record(i)
    assert list(h.samples) == [6, 7, 8, 9]
    assert h.peak_pages == 9
    assert h.n_recorded == 10


def test_bookkeeping_is_pure():
    """No clock, no RNG: recording samples is free and repeatable —
    required for the ratio-1.0 bit-identity guarantee."""
    a = WssHistory(initial_pages=64)
    b = WssHistory(initial_pages=64)
    for s in (10, 20, 15):
        a.record(s)
        b.record(s)
    assert a.planning_pages == b.planning_pages
    assert a.target_pages == b.target_pages
    assert a.ewma_pages == b.ewma_pages
