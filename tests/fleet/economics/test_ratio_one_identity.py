"""Ratio 1.0 differential: overcommit disabled must be the PR 5 fleet.

``overcommit_ratio=1.0`` constructs no economics object, installs no
balloon, registers no userfaultfd, and the WSS-history bookkeeping is
pure (no clock charges, no RNG draws) — so every machine-visible bit of
a fleet run must be identical to a run on stock hosts.  This pins the
acceptance criterion that the new subsystem is pay-for-what-you-use.
"""

import numpy as np

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.fleet.host import Host, VmSpec
from repro.fleet.orchestrator import MigrationOrchestrator, MigrationPolicy
from repro.hypervisor.wss import WssEstimator
from repro.net.link import Link
from repro.net.transport import Transport
from tests.smp.helpers import full_state

SPEC = VmSpec(
    name="vm0",
    mem_mb=4.0,
    workload_pages=768,
    writes_per_round=120,
    write_fraction=0.9,
    compute_us_per_round=250.0,
    seed=21,
)


def run_fleet(ratio_kwargs: dict) -> tuple:
    clock = SimClock()
    costs = CostModel()
    hosts = [
        Host(f"h{i}", clock, costs, mem_mb=16.0, **ratio_kwargs)
        for i in range(2)
    ]
    orch = MigrationOrchestrator(
        hosts,
        Transport(clock, costs),
        Link("backbone"),
        MigrationPolicy(downtime_slo_us=2500.0, wss_intervals=2),
    )
    fvm = hosts[0].place(SPEC)
    for _ in range(4):
        fvm.run_round()
    orch.estimate_wss(fvm)
    report = orch.migrate(fvm)  # placement + estimate + the whole protocol
    for _ in range(2):
        fvm.run_round()
    return (
        full_state(fvm.vm, clock, fvm.proc),
        fvm.last_wss_pages,
        report.mode,
        report.total_pages_sent,
        report.downtime_us,
    )


def test_ratio_one_is_bit_identical_to_stock_fleet():
    assert run_fleet({}) == run_fleet({"overcommit_ratio": 1.0})


def test_estimate_wss_value_unchanged_by_history_refactor():
    """The published planning value must equal what the PR 5 code
    computed: ``WssEstimator.estimate_pages`` over the same intervals."""
    clock = SimClock()
    costs = CostModel()
    host = Host("h0", clock, costs, mem_mb=16.0)
    orch = MigrationOrchestrator(
        [host, Host("h1", clock, costs, mem_mb=16.0)],
        Transport(clock, costs),
        Link("l"),
        MigrationPolicy(wss_intervals=3),
    )
    fvm = host.place(SPEC)
    got = orch.estimate_wss(fvm)
    # Recompute from the recorded samples with the estimator arithmetic.
    recent = list(fvm.wss.samples)[-3:]
    assert got == int(np.ceil(float(np.mean(recent))))
    assert fvm.last_wss_pages == got


def test_last_wss_pages_setter_still_works():
    """PR 5 call sites assign the scalar directly; the property setter
    must keep that working on top of the history."""
    clock, costs = SimClock(), CostModel()
    host = Host("h0", clock, costs, mem_mb=16.0)
    fvm = host.place(SPEC)
    est = WssEstimator(fvm.vm)
    fvm.last_wss_pages = est.estimate_pages(fvm.run_round, 2)
    assert fvm.last_wss_pages == fvm.wss.planning_pages
    assert fvm.wss.n_recorded == 1
