"""Tests for the balloon driver: inflate, refault, content preservation."""

import numpy as np
import pytest

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.errors import ConfigurationError, TrackingError
from repro.fleet.economics.balloon import BalloonDriver
from repro.fleet.host import Host, VmSpec


def make_host(ratio: float = 2.0, mem_mb: float = 16.0) -> Host:
    return Host("h0", SimClock(), CostModel(), mem_mb=mem_mb,
                overcommit_ratio=ratio)


def spec(name: str = "vm0", workload: int = 512, writes: int = 64) -> VmSpec:
    # 4 MiB footprint = 1024 pages; float = 1024 - workload.
    return VmSpec(name=name, mem_mb=4.0, workload_pages=workload,
                  writes_per_round=writes, seed=3)


def test_place_on_overcommit_host_installs_balloon():
    host = make_host()
    fvm = host.place(spec())
    driver = host.economics.drivers[fvm.name]
    assert driver.ballooned_pages == 0
    assert driver.resident_pages == 512


def test_inflate_frees_host_frames_and_holds_guest_frames():
    host = make_host()
    fvm = host.place(spec())
    driver = host.economics.drivers[fvm.name]
    free0 = host.free_pages
    guest_free0 = fvm.vm.guest_frames.n_free
    got = driver.inflate(100)
    assert got == 100
    assert host.free_pages == free0 + 100
    assert driver.ballooned_pages == 100
    assert driver.resident_pages == 412
    # Held guest frames stay OUT of the guest allocator: the guest can
    # never allocate an EPT-unbacked frame.
    assert fvm.vm.guest_frames.n_free == guest_free0


def test_inflate_zero_or_empty():
    host = make_host()
    fvm = host.place(spec())
    driver = host.economics.drivers[fvm.name]
    assert driver.inflate(0) == 0
    assert driver.inflate(-5) == 0


def test_refault_restores_exact_content():
    host = make_host()
    fvm = host.place(spec())
    driver = host.economics.drivers[fvm.name]
    pt = fvm.proc.space.pt
    vpns = np.arange(512, dtype=np.int64)
    before = fvm.vm.mmu.read_page_contents(pt, vpns).copy()

    got = driver.inflate(200)
    assert got == 200
    reclaimed = vpns[~pt.present_mask(vpns)]
    assert reclaimed.size == 200
    # Touch every reclaimed page with a *read*: MISSING faults fire, the
    # resolver deflates and reinstalls the saved tokens.
    fvm.kernel.access(fvm.proc, reclaimed, False)
    after = fvm.vm.mmu.read_page_contents(pt, vpns)
    assert np.array_equal(before, after)
    assert driver.ballooned_pages == 0
    assert not driver._swap
    assert driver.refault_pages == 200


def test_refaulted_write_goes_through_and_sticks():
    host = make_host()
    fvm = host.place(spec())
    driver = host.economics.drivers[fvm.name]
    pt = fvm.proc.space.pt
    driver.inflate(50)
    reclaimed = np.arange(512, dtype=np.int64)[~pt.present_mask(
        np.arange(512, dtype=np.int64))]
    before = {int(v): None for v in reclaimed}
    # Write the reclaimed pages: the refault must reinstall the old token
    # first (UFFDIO_COPY ordering), then the triggering write lands.
    fvm.kernel.access(fvm.proc, reclaimed, True)
    after = fvm.vm.mmu.read_page_contents(pt, reclaimed)
    assert len(set(int(t) for t in after)) == len(before)  # all rewritten


def test_cold_pages_are_victimized_first():
    host = make_host()
    fvm = host.place(spec())
    driver = host.economics.drivers[fvm.name]
    # Clear accessed bits, then touch a hot subset.
    fvm.vm.ept.clear_accessed()
    hot = np.arange(100, dtype=np.int64)
    fvm.kernel.access(fvm.proc, hot, False)
    driver.inflate(412 - 100)  # exactly the cold population
    pt = fvm.proc.space.pt
    # Every hot page must still be present.
    assert bool(pt.present_mask(hot).all())


def test_balloon_guards():
    host = make_host()
    from repro.fleet.host import FleetVm

    unbound = FleetVm(spec("loose"))
    with pytest.raises(ConfigurationError):
        BalloonDriver(unbound, host.economics)

    fvm = host.place(spec("vm1"))
    # The balloon already owns the process's userfaultfd; a second one
    # (or a UFD tracker) cannot share it.
    with pytest.raises(TrackingError):
        BalloonDriver(fvm, host.economics)


def test_tight_float_spec_is_rejected_on_overcommit_host():
    host = make_host()
    tight = VmSpec(name="tight", mem_mb=2.0, workload_pages=512,
                   writes_per_round=64, seed=3)  # footprint == workload
    with pytest.raises(ConfigurationError):
        host.place(tight)
    # The same spec is fine on a stock host.
    stock = Host("h1", SimClock(), CostModel(), mem_mb=16.0)
    stock.place(tight)


def test_close_detaches_refault_path():
    host = make_host()
    fvm = host.place(spec("vm2"))
    host.economics.detach(fvm.name)
    assert fvm.name not in host.economics.drivers
    assert fvm.proc.uffd is None


def test_balloon_charges_simulated_time():
    host = make_host()
    fvm = host.place(spec())
    driver = host.economics.drivers[fvm.name]
    t0 = host.clock.now_us
    driver.inflate(64)
    assert host.clock.now_us > t0  # copies + hypercall + shootdown cost


def test_deflate_all_restores_everything_exactly():
    host = make_host()
    fvm = host.place(spec())
    driver = host.economics.drivers[fvm.name]
    pt = fvm.proc.space.pt
    vpns = np.arange(512, dtype=np.int64)
    before = fvm.vm.mmu.read_page_contents(pt, vpns).copy()
    guest_free0 = fvm.vm.guest_frames.n_free
    driver.inflate(300)
    assert driver.deflate_all() == 300
    assert driver.ballooned_pages == 0
    assert not driver._swap
    assert bool(pt.present_mask(vpns).all())
    after = fvm.vm.mmu.read_page_contents(pt, vpns)
    assert np.array_equal(before, after)
    assert fvm.vm.guest_frames.n_free == guest_free0
    # Idempotent when empty.
    assert driver.deflate_all() == 0


def test_migrating_a_ballooned_vm_carries_swapped_pages():
    """The page sender only reads present pages; ``_begin`` must make
    the source image whole (deflate_all) or swapped tokens are silently
    dropped.  An absent workload page at the destination is exactly
    that loss."""
    from repro.fleet.orchestrator import MigrationOrchestrator, MigrationPolicy
    from repro.net.link import Link
    from repro.net.transport import Transport

    clock, costs = SimClock(), CostModel()
    hosts = [
        Host(f"h{i}", clock, costs, mem_mb=16.0, overcommit_ratio=2.0)
        for i in range(2)
    ]
    orch = MigrationOrchestrator(
        hosts, Transport(clock, costs), Link("l"),
        MigrationPolicy(downtime_slo_us=1e9, wss_intervals=2),
    )
    fvm = hosts[0].place(spec())
    driver = hosts[0].economics.drivers[fvm.name]
    driver.inflate(200)
    assert driver.ballooned_pages == 200

    report = orch.migrate(fvm, hosts[1])
    assert report.integrity_ok
    assert fvm.host is hosts[1]
    vpns = np.arange(512, dtype=np.int64)
    assert bool(fvm.proc.space.pt.present_mask(vpns).all())
    # Fresh, empty balloon on the destination; the source driver is gone.
    assert hosts[1].economics.drivers[fvm.name].ballooned_pages == 0
    assert fvm.name not in hosts[0].economics.drivers
