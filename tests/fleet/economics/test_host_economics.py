"""Tests for overcommit accounting, admission, and the reclaim controller."""

import numpy as np
import pytest

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.errors import ConfigurationError, OutOfFramesError
from repro.fleet.economics.placement import choose_host, pack, wss_headroom_pages
from repro.fleet.economics.reclaim import OvercommitPolicy
from repro.fleet.host import Host, VmSpec


def make_host(ratio: float, name: str = "h0", mem_mb: float = 16.0) -> Host:
    return Host(name, SimClock(), CostModel(), mem_mb=mem_mb,
                overcommit_ratio=ratio)


def spec(name: str, mem_mb: float = 4.0, workload: int = 512,
         writes: int = 64) -> VmSpec:
    return VmSpec(name=name, mem_mb=mem_mb, workload_pages=workload,
                  writes_per_round=writes, seed=5)


def shrink(fvm, pages: int) -> None:
    """Drive the VM's WSS history down to ``pages`` (past hysteresis)."""
    for _ in range(4):
        fvm.wss.record(pages)
    fvm.wss.refresh_planning(4)


def test_ratio_validation_and_gating():
    with pytest.raises(ConfigurationError):
        make_host(0.5)
    assert make_host(1.0).economics is None
    assert make_host(1.5).economics is not None


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        OvercommitPolicy(headroom=-0.1)
    with pytest.raises(ConfigurationError):
        OvercommitPolicy(slack_pages=-1)
    with pytest.raises(ConfigurationError):
        OvercommitPolicy(min_resident_pages=0)
    with pytest.raises(ConfigurationError):
        OvercommitPolicy(max_batch_pages=0)


def test_stock_host_admit_is_fits():
    host = make_host(1.0)  # 4096 frames
    s = spec("a")  # 1024-page footprint
    assert host.admit(s) == host.fits(s.mem_pages)
    for i in range(4):
        host.place(spec(f"vm{i}"))
    assert not host.admit(spec("one-more"))


def test_overcommit_admit_uses_commit_limit_and_wss():
    host = make_host(1.5)  # commit limit 6144 nominal over 4096 physical
    for i in range(4):
        fvm = host.place(spec(f"vm{i}"))
        shrink(fvm, 64)
    assert host.nominal_pages == 4096
    # Nominal 5120 <= 6144 and hot (4*64) + need is tiny: admitted.
    assert host.admit(spec("fifth"), wss_pages=64)
    host.place(spec("fifth"))
    assert host.nominal_pages == 5120 > host.capacity_pages
    # A sixth would push nominal to 6144 == limit: still admitted;
    # a seventh breaks the commit limit.
    host.place(spec("sixth"))
    assert not host.admit(spec("seventh"), wss_pages=64)


def test_admit_rejects_when_hot_demand_exceeds_physical():
    host = make_host(4.0)  # commit limit far away
    for i in range(3):
        host.place(spec(f"vm{i}"))  # estimates stay at workload: 512 each
    # hot = 1536; candidate wss 3000 * 1.1 headroom > 4096 - 1536.
    assert not host.admit(spec("big", mem_mb=16.0, workload=3000), 3000)
    assert host.admit(spec("small"), 64)


def test_place_balloons_residents_down_boot_big_balloon_down():
    host = make_host(2.0)
    residents = [host.place(spec(f"vm{i}")) for i in range(4)]
    # The fourth placement already had to reclaim to keep the slack.
    assert host.free_pages == host.economics.policy.slack_pages
    for fvm in residents:
        shrink(fvm, 64)
    fifth = host.place(spec("fifth"))
    eco = host.economics
    assert eco.reclaimed_pages >= 1024  # the new footprint came from reclaim
    assert fifth.name in eco.drivers
    assert host.nominal_pages == 5120
    assert host.free_pages >= eco.policy.slack_pages


def test_evict_detaches_driver():
    host = make_host(2.0)
    fvm = host.place(spec("vm0"))
    assert "vm0" in host.economics.drivers
    host.evict(fvm)
    assert "vm0" not in host.economics.drivers
    assert host.vms == {}


def test_ensure_free_prefers_biggest_excess_name_tiebreak():
    host = make_host(2.0)
    a = host.place(spec("aaa"))
    b = host.place(spec("bbb"))
    shrink(a, 64)   # excess ~448
    shrink(b, 400)  # excess ~112
    freed = host.economics.ensure_free(host.free_pages + 100)
    assert freed == 100
    da, db = host.economics.drivers["aaa"], host.economics.drivers["bbb"]
    assert da.ballooned_pages == 100  # a had the bigger voluntary excess
    assert db.ballooned_pages == 0


def test_ensure_free_forced_pass_and_exhaustion():
    host = make_host(8.0, mem_mb=8.0)  # 2048 frames
    a = host.place(spec("vm0"))  # 1024 pages, estimates stay pessimistic
    # Voluntary reclaimable is 0 (resident == target); the forced pass
    # still squeezes down to min_resident_pages.
    freed = host.economics.ensure_free(host.free_pages + 200)
    assert freed == 200
    # Demanding more than forced reclaim can give raises.
    with pytest.raises(OutOfFramesError):
        host.economics.ensure_free(host.capacity_pages * 2)
    assert host.economics.drivers["vm0"].resident_pages >= \
        host.economics.policy.min_resident_pages


def test_reclaim_is_deterministic():
    def run():
        host = make_host(2.0)
        vms = [host.place(spec(f"vm{i}")) for i in range(4)]
        for fvm in vms:
            shrink(fvm, 96)
        host.place(spec("fifth"))
        eco = host.economics
        return (
            host.clock.now_us,
            eco.reclaimed_pages,
            {n: d.ballooned_pages for n, d in eco.drivers.items()},
        )

    assert run() == run()


def test_pressure_signal():
    host = make_host(2.0)
    assert host.pressure == 0.0
    host.place(spec("vm0"))
    assert host.pressure == pytest.approx(512 / 4096)
    host.reserved_pages += 1024
    assert host.pressure == pytest.approx((512 + 1024) / 4096)


def test_rebalance_restores_slack():
    host = make_host(2.0)
    vms = [host.place(spec(f"vm{i}")) for i in range(4)]
    for fvm in vms:
        shrink(fvm, 64)
    host.place(spec("fifth"))
    # Consume the slack via refaults, then rebalance.
    eco = host.economics
    target = eco.policy.slack_pages
    assert host.free_pages >= target
    eco.rebalance()
    assert host.free_pages >= target


# -- placement ---------------------------------------------------------
def test_choose_host_best_fit_and_tiebreak():
    clock, costs = SimClock(), CostModel()
    small = Host("h-small", clock, costs, mem_mb=8.0)
    big = Host("h-big", clock, costs, mem_mb=32.0)
    s = spec("vm0")
    # Best fit: the host left with the least WSS headroom wins.
    assert choose_host([big, small], s) is small
    # Ties break on host_id.
    twin_a = Host("a", clock, costs, mem_mb=8.0)
    twin_b = Host("b", clock, costs, mem_mb=8.0)
    assert choose_host([twin_b, twin_a], s) is twin_a


def test_pack_first_fit_decreasing():
    clock, costs = SimClock(), CostModel()
    hosts = [Host(f"h{i}", clock, costs, mem_mb=8.0) for i in range(2)]
    specs = [spec("small", workload=128), spec("large", workload=1500,
                                               mem_mb=8.0)]
    placed, rejected = pack(hosts, specs)
    # Descending estimated WSS: "large" placed first.
    assert [f.name for f in placed] == ["large", "small"]
    assert rejected == []
    assert wss_headroom_pages(hosts[0]) < hosts[0].capacity_pages


def test_pack_returns_rejects():
    clock, costs = SimClock(), CostModel()
    hosts = [Host("h0", clock, costs, mem_mb=8.0)]  # 2048 frames
    specs = [spec(f"vm{i}") for i in range(3)]  # 3 x 1024 pages
    placed, rejected = pack(hosts, specs)
    assert len(placed) == 2
    assert [s.name for s in rejected] == ["vm2"]


def test_reservations_count_against_admission():
    host = make_host(1.0)
    host.reserved_pages = host.capacity_pages - 512
    assert not host.admit(spec("vm0"))  # needs 1024, only 512 available
    over = make_host(1.5)
    over.reserved_pages = over.capacity_pages - 100
    assert not over.admit(spec("vm0"), wss_pages=512)
