"""Satellite 4: post-copy fallback under a dirty rate the link can't beat.

A guest whose dirty rate exceeds the link bandwidth can never converge
under pre-copy: the orchestrator must max out auto-converge throttling,
trip the downtime SLO, switch to post-copy — and the destination must end
up with *exactly* the source's final memory (full-state differential via
:mod:`tests.smp.helpers`), modulo only pages the destination guest itself
wrote after the switchover.
"""

import numpy as np

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.fleet.host import Host, VmSpec
from repro.fleet.orchestrator import MigrationOrchestrator, MigrationPolicy
from repro.net.link import Link
from repro.net.transport import Transport
from tests.smp.helpers import process_memory_state

N_PAGES = 2048

#: Dirty rate far beyond the default link's ~1 page / 3.3 us: ~1200
#: unique pages per 200 us round can never drain within an 800 us SLO.
HOT = VmSpec(
    name="hot",
    mem_mb=8.0,
    workload_pages=N_PAGES,
    writes_per_round=1800,
    write_fraction=1.0,
    compute_us_per_round=200.0,
    seed=13,
)


def _fleet(policy: MigrationPolicy):
    clock = SimClock()
    costs = CostModel()
    hosts = [Host(f"h{i}", clock, costs, mem_mb=24.0) for i in range(2)]
    orch = MigrationOrchestrator(
        hosts, Transport(clock, costs), Link("backbone"), policy
    )
    return clock, hosts, orch


def test_slo_trip_switches_to_postcopy_with_source_memory_intact():
    """Pure push drain (no destination rounds): after the migration the
    destination memory equals the paused source's bit for bit."""
    policy = MigrationPolicy(
        downtime_slo_us=800.0, wss_intervals=0, postcopy_dest_rounds=0
    )
    costs_params_downtime = CostModel().params.postcopy_state_us
    _, hosts, orch = _fleet(policy)
    fvm = hosts[0].place(HOT)
    src_kernel, src_proc = fvm.kernel, fvm.proc

    report = orch.migrate(fvm, dst=hosts[1], destroy_source=False)

    assert report.mode == "postcopy"
    assert report.precopy.aborted_reason == "postcopy_slo"
    assert report.precopy.converged is False
    assert report.throttle_peak == policy.throttle_max  # ramp maxed out
    assert report.downtime_us == costs_params_downtime
    assert report.downtime_us <= policy.downtime_slo_us  # SLO honoured
    post = report.postcopy
    assert post is not None
    assert post.missing_pages > 0  # residual dirty set rode the wire
    assert post.pulled_pages == 0  # the dest guest never ran...
    assert post.pushed_pages == post.missing_pages  # ...all pushed
    assert report.integrity_ok

    # Full-state differential: the destination *is* the paused source.
    src_vpns, src_tokens = process_memory_state(src_kernel, src_proc)
    dst_vpns, dst_tokens = process_memory_state(fvm.kernel, fvm.proc)
    assert np.array_equal(src_vpns, dst_vpns)
    assert np.array_equal(src_tokens, dst_tokens)
    # The VM actually moved.
    assert fvm.host is hosts[1]
    assert fvm.name in hosts[1].vms and fvm.name not in hosts[0].vms


def test_destination_guest_pulls_missing_pages_on_fault():
    """With the destination guest running during the drain, hot pages
    materialise by demand pull (uffd MISSING) and the rest by push —
    every on-the-wire page moves exactly once."""
    policy = MigrationPolicy(downtime_slo_us=800.0, wss_intervals=0)
    _, hosts, orch = _fleet(policy)
    fvm = hosts[0].place(HOT)

    report = orch.migrate(fvm, dst=hosts[1])

    assert report.mode == "postcopy"
    post = report.postcopy
    assert post.pull_faults > 0
    assert post.pulled_pages > 0
    assert post.pulled_pages + post.pushed_pages == post.missing_pages
    # Destination progress is excluded, everything else matches the
    # source: the orchestrator's own differential came back clean.
    assert report.integrity_ok
    assert fvm.throttle == 0.0  # post-copy guests run unthrottled
    # Source half was torn down (destroy_source defaults to True).
    assert HOT.name not in hosts[0].hypervisor.vms


def test_without_slo_precopy_never_falls_back():
    """No SLO: the hot guest still can't converge, but the failure mode
    is the stock no-progress stop-and-copy, never post-copy."""
    policy = MigrationPolicy(downtime_slo_us=None, wss_intervals=0)
    _, hosts, orch = _fleet(policy)
    fvm = hosts[0].place(HOT)

    report = orch.migrate(fvm, dst=hosts[1], destroy_source=False)

    assert report.mode == "precopy"
    assert report.postcopy is None
    assert report.precopy.aborted_reason == "no_progress"
    assert report.integrity_ok
