"""Canonical small runs whose event streams are frozen as golden traces.

One fixed scenario per technique: a 16 MiB VM, a 128-page process, three
rounds of seeded random writes, a collect per round.  The PML buffer is
shrunk to 32 entries so buffer-full events (and their vmexit / self-IPI
consequences) appear in even these tiny traces.

The prefault pass runs *inside* the session on purpose: demand paging and
the initial dirty sweep are part of the frozen contract, and the WRITE
events it emits make the written-set invariant checkable from the trace
alone.
"""

import numpy as np

from repro.core.tracking import make_tracker
from repro.experiments.harness import build_stack
from repro.obs import trace as otr

GOLDEN_TECHNIQUES = ("spml", "epml", "oracle")
N_PAGES = 128
ROUNDS = 3
SEED = 7


def canonical_run(technique: str) -> otr.TraceSession:
    """Run the frozen scenario for ``technique``; return its session."""
    stack = build_stack(vm_mb=16, pml_buffer_entries=32)
    proc = stack.kernel.spawn("app", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    rng = np.random.default_rng(SEED)
    session = otr.TraceSession()
    with session.active():
        stack.kernel.access(proc, np.arange(N_PAGES), True)
        tracker = make_tracker(technique, stack.kernel, proc)
        tracker.start()
        for _ in range(ROUNDS):
            vpns = rng.integers(0, N_PAGES, size=3 * N_PAGES // 4)
            stack.kernel.access(proc, vpns, True)
            tracker.collect()
        tracker.stop()
    return session
