"""Canonical small runs whose event streams are frozen as golden traces.

One fixed scenario per technique: a 16 MiB VM, a 128-page process, three
rounds of seeded random writes, a collect per round.  The PML buffer is
shrunk to 32 entries so buffer-full events (and their vmexit / self-IPI
consequences) appear in even these tiny traces.

The prefault pass runs *inside* the session on purpose: demand paging and
the initial dirty sweep are part of the frozen contract, and the WRITE
events it emits make the written-set invariant checkable from the trace
alone.

The vCPU count is pinned explicitly (never inherited from ``REPRO_VCPUS``)
so the frozen byte streams survive the SMP CI matrix leg.  The 2-vCPU
variant migrates the process between rounds, exercising per-vCPU PML
buffers, the EPML schedule hooks, and cross-vCPU TLB shootdowns in the
frozen contract.
"""

import numpy as np

from repro.core.tracking import make_tracker
from repro.experiments.harness import build_stack
from repro.obs import trace as otr

GOLDEN_TECHNIQUES = ("spml", "epml", "oracle")
#: Techniques with a 2-vCPU golden variant (``<technique>-smp2.jsonl``).
GOLDEN_SMP_TECHNIQUES = ("spml", "epml")
N_PAGES = 128
ROUNDS = 3
SEED = 7


def canonical_run(technique: str, n_vcpus: int = 1) -> otr.TraceSession:
    """Run the frozen scenario for ``technique``; return its session."""
    stack = build_stack(vm_mb=16, pml_buffer_entries=32, n_vcpus=n_vcpus)
    proc = stack.kernel.spawn("app", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    rng = np.random.default_rng(SEED)
    session = otr.TraceSession()
    with session.active():
        stack.kernel.access(proc, np.arange(N_PAGES), True)
        tracker = make_tracker(technique, stack.kernel, proc)
        tracker.start()
        for r in range(ROUNDS):
            if n_vcpus > 1:
                # Bounce the process across vCPUs so every round logs
                # into a different per-vCPU PML buffer.
                stack.kernel.scheduler.migrate(proc, r % n_vcpus)
            vpns = rng.integers(0, N_PAGES, size=3 * N_PAGES // 4)
            stack.kernel.access(proc, vpns, True)
            if n_vcpus > 1:
                # Collect from a vCPU other than the writer: the dirty
                # translations still sit in the writer's TLB, so EPML's
                # re-arm must issue a genuine cross-vCPU shootdown.
                stack.kernel.scheduler.migrate(proc, (r + 1) % n_vcpus)
            tracker.collect()
        tracker.stop()
    return session
