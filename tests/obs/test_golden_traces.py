"""Golden-trace regression tests.

Each canonical run (see :mod:`tests.obs.golden_runs`) must serialize to a
JSONL stream *byte-identical* to the checked-in file under ``golden/``.
Any change to instrumentation seams, event fields, serialization, or the
simulated control flow itself shows up as a diff here.

Regenerating after an intentional change::

    REPRO_REGOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_golden_traces.py

then review the golden-file diff like any other code change.
"""

import os
from pathlib import Path

import pytest

from repro.obs.trace import TraceBuffer

from .golden_runs import GOLDEN_SMP_TECHNIQUES, GOLDEN_TECHNIQUES, canonical_run

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (technique, n_vcpus) scenarios frozen under ``golden/``.
GOLDEN_SCENARIOS = (
    [(t, 1) for t in GOLDEN_TECHNIQUES]
    + [(t, 2) for t in GOLDEN_SMP_TECHNIQUES]
)


def _golden_path(technique: str, n_vcpus: int) -> Path:
    suffix = "" if n_vcpus == 1 else f"-smp{n_vcpus}"
    return GOLDEN_DIR / f"{technique}{suffix}.jsonl"


def _regolden() -> bool:
    return os.environ.get("REPRO_REGOLDEN") == "1"


@pytest.mark.parametrize("technique,n_vcpus", GOLDEN_SCENARIOS)
def test_trace_matches_golden(technique, n_vcpus):
    session = canonical_run(technique, n_vcpus=n_vcpus)
    got = session.trace.to_jsonl()
    assert got, f"canonical {technique} run emitted no events"
    path = _golden_path(technique, n_vcpus)
    if _regolden():
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(got)
        pytest.skip(f"regenerated {path}")
    assert path.is_file(), (
        f"missing golden trace {path}; regenerate with REPRO_REGOLDEN=1"
    )
    assert got == path.read_text()


@pytest.mark.parametrize("technique,n_vcpus", GOLDEN_SCENARIOS)
def test_replay_is_deterministic(technique, n_vcpus):
    """Two identical runs serialize byte-identically (no hidden state)."""
    a = canonical_run(technique, n_vcpus=n_vcpus).trace.to_jsonl()
    b = canonical_run(technique, n_vcpus=n_vcpus).trace.to_jsonl()
    assert a == b


@pytest.mark.parametrize("technique,n_vcpus", GOLDEN_SCENARIOS)
def test_golden_roundtrips_through_parser(technique, n_vcpus):
    """read_jsonl(write_jsonl(x)) preserves every event exactly."""
    if _regolden():
        pytest.skip("regolden pass")
    path = _golden_path(technique, n_vcpus)
    buf = TraceBuffer.read_jsonl(path)
    assert buf.to_jsonl() == path.read_text()
    assert len(buf) > 0


def test_golden_traces_are_nontrivial():
    """The frozen scenarios exercise the interesting seams: buffer-full
    consequences differ per technique (SPML: pml_full vmexits; EPML:
    self-IPIs with no pml_full vmexit)."""
    if _regolden():
        pytest.skip("regolden pass")
    spml = TraceBuffer.read_jsonl(GOLDEN_DIR / "spml.jsonl")
    epml = TraceBuffer.read_jsonl(GOLDEN_DIR / "epml.jsonl")
    spml_counts = spml.kind_counts()
    epml_counts = epml.kind_counts()
    assert spml_counts.get("pml_full", 0) > 0
    assert spml_counts.get("vmexit", 0) > 0
    assert spml_counts.get("hypercall", 0) > 0
    assert epml_counts.get("self_ipi", 0) > 0
    assert epml_counts.get("collect", 0) > 0


def test_smp_goldens_span_vcpus():
    """The 2-vCPU frozen scenarios genuinely run on both vCPUs: events
    carry both vcpu_id values, and — for EPML, whose re-arm invalidates
    guest TLBs — the collect-after-migration triggers cross-vCPU TLB
    shootdowns.  (SPML logs at EPT level and never touches guest TLBs,
    so it legitimately has none.)"""
    if _regolden():
        pytest.skip("regolden pass")
    for technique in GOLDEN_SMP_TECHNIQUES:
        buf = TraceBuffer.read_jsonl(_golden_path(technique, 2))
        vcpu_ids = {
            e.fields["vcpu_id"] for e in buf.events if "vcpu_id" in e.fields
        }
        assert vcpu_ids == {0, 1}, (
            f"{technique}-smp2 golden only touches vCPUs {vcpu_ids}"
        )
    epml = TraceBuffer.read_jsonl(_golden_path("epml", 2))
    assert epml.kind_counts().get("tlb_shootdown", 0) > 0, (
        "epml-smp2 golden has no cross-vCPU shootdowns"
    )
