"""Golden-trace regression tests.

Each canonical run (see :mod:`tests.obs.golden_runs`) must serialize to a
JSONL stream *byte-identical* to the checked-in file under ``golden/``.
Any change to instrumentation seams, event fields, serialization, or the
simulated control flow itself shows up as a diff here.

Regenerating after an intentional change::

    REPRO_REGOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_golden_traces.py

then review the golden-file diff like any other code change.
"""

import os
from pathlib import Path

import pytest

from repro.obs.trace import TraceBuffer

from .golden_runs import GOLDEN_TECHNIQUES, canonical_run

GOLDEN_DIR = Path(__file__).parent / "golden"


def _regolden() -> bool:
    return os.environ.get("REPRO_REGOLDEN") == "1"


@pytest.mark.parametrize("technique", GOLDEN_TECHNIQUES)
def test_trace_matches_golden(technique):
    session = canonical_run(technique)
    got = session.trace.to_jsonl()
    assert got, f"canonical {technique} run emitted no events"
    path = GOLDEN_DIR / f"{technique}.jsonl"
    if _regolden():
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(got)
        pytest.skip(f"regenerated {path}")
    assert path.is_file(), (
        f"missing golden trace {path}; regenerate with REPRO_REGOLDEN=1"
    )
    assert got == path.read_text()


@pytest.mark.parametrize("technique", GOLDEN_TECHNIQUES)
def test_replay_is_deterministic(technique):
    """Two identical runs serialize byte-identically (no hidden state)."""
    a = canonical_run(technique).trace.to_jsonl()
    b = canonical_run(technique).trace.to_jsonl()
    assert a == b


@pytest.mark.parametrize("technique", GOLDEN_TECHNIQUES)
def test_golden_roundtrips_through_parser(technique):
    """read_jsonl(write_jsonl(x)) preserves every event exactly."""
    if _regolden():
        pytest.skip("regolden pass")
    path = GOLDEN_DIR / f"{technique}.jsonl"
    buf = TraceBuffer.read_jsonl(path)
    assert buf.to_jsonl() == path.read_text()
    assert len(buf) > 0


def test_golden_traces_are_nontrivial():
    """The frozen scenarios exercise the interesting seams: buffer-full
    consequences differ per technique (SPML: pml_full vmexits; EPML:
    self-IPIs with no pml_full vmexit)."""
    if _regolden():
        pytest.skip("regolden pass")
    spml = TraceBuffer.read_jsonl(GOLDEN_DIR / "spml.jsonl")
    epml = TraceBuffer.read_jsonl(GOLDEN_DIR / "epml.jsonl")
    spml_counts = spml.kind_counts()
    epml_counts = epml.kind_counts()
    assert spml_counts.get("pml_full", 0) > 0
    assert spml_counts.get("vmexit", 0) > 0
    assert spml_counts.get("hypercall", 0) > 0
    assert epml_counts.get("self_ipi", 0) > 0
    assert epml_counts.get("collect", 0) > 0
