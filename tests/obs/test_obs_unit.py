"""Unit tests for the observability primitives themselves."""

import json

import pytest

from repro.obs.events import EventKind, TraceEvent
from repro.obs.metrics import DEFAULT_BOUNDS, Histogram, MetricsRegistry
from repro.obs.trace import TraceBuffer, TraceSession


# ---------------------------------------------------------------------
# TraceEvent serialization
# ---------------------------------------------------------------------
def test_event_json_is_canonical():
    e = TraceEvent(seq=3, kind=EventKind.WRITE, fields={"b": 2, "a": 1})
    line = e.to_json()
    assert line == '{"a":1,"b":2,"kind":"write","seq":3}'
    assert TraceEvent.from_json(line) == e


def test_event_json_has_no_whitespace_or_unsorted_keys():
    e = TraceEvent(
        seq=0, kind=EventKind.COLLECT, fields={"vpns": [3, 1], "n_vpns": 2}
    )
    line = e.to_json()
    assert " " not in line
    keys = list(json.loads(line))
    assert keys == sorted(keys)


# ---------------------------------------------------------------------
# TraceBuffer
# ---------------------------------------------------------------------
def _ev(seq):
    return TraceEvent(seq=seq, kind=EventKind.RETRY, fields={"attempt": seq})


def test_buffer_keeps_prefix_and_counts_drops():
    buf = TraceBuffer(capacity=2)
    for seq in range(5):
        buf.append(_ev(seq))
    assert len(buf) == 2
    assert [e.seq for e in buf.events] == [0, 1]
    assert buf.n_dropped == 3


def test_buffer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        TraceBuffer(capacity=0)


def test_buffer_jsonl_roundtrip(tmp_path):
    buf = TraceBuffer()
    buf.append(_ev(0))
    buf.append(_ev(1))
    path = buf.write_jsonl(tmp_path / "sub" / "trace.jsonl")
    again = TraceBuffer.read_jsonl(path)
    assert again.to_jsonl() == buf.to_jsonl()
    assert [e.seq for e in again.events] == [0, 1]


def test_buffer_kind_helpers():
    buf = TraceBuffer()
    buf.append(_ev(0))
    buf.append(TraceEvent(seq=1, kind=EventKind.VMEXIT, fields={"reason": "x"}))
    assert len(buf.by_kind(EventKind.RETRY)) == 1
    assert buf.kind_counts() == {"retry": 1, "vmexit": 1}


# ---------------------------------------------------------------------
# TraceSession
# ---------------------------------------------------------------------
def test_session_seq_is_monotonic_and_dense():
    s = TraceSession()
    for _ in range(4):
        s.emit(EventKind.TLB_FLUSH, n_cached=0)
    assert [e.seq for e in s.trace.events] == [0, 1, 2, 3]
    assert s.n_emitted == 4


def test_session_counts_emissions_past_capacity():
    s = TraceSession(capacity=2)
    for _ in range(5):
        s.emit(EventKind.TLB_FLUSH, n_cached=0)
    assert s.n_emitted == 5
    assert len(s.trace) == 2
    assert s.trace.n_dropped == 3


# ---------------------------------------------------------------------
# Histogram / MetricsRegistry
# ---------------------------------------------------------------------
def test_histogram_bucketing_and_overflow():
    h = Histogram(bounds=(1, 4, 16))
    for v in (0, 1, 2, 4, 100):
        h.observe(v)
    assert h.count == 5
    assert h.total == 107
    snap = h.snapshot()
    # bisect_left: value == bound lands in that bound's bucket.
    assert snap["buckets"] == {"1": 2, "4": 2, "+inf": 1}


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=(4, 1))


def test_registry_counters_and_snapshot_are_sorted():
    m = MetricsRegistry()
    m.inc("z.late")
    m.inc("a.early", 3)
    m.observe("occupancy", 7)
    snap = m.snapshot()
    assert list(snap["counters"]) == ["a.early", "z.late"]
    assert m.counter("a.early") == 3
    assert m.counter("missing") == 0
    assert m.counters_with_prefix("a.") == {"a.early": 3}
    assert snap["histograms"]["occupancy"]["count"] == 1


def test_registry_render_mentions_everything():
    m = MetricsRegistry()
    m.inc("vmexit.pml_full", 2)
    m.observe("pml.occupancy_at_flush", 512, bounds=DEFAULT_BOUNDS)
    text = m.render("T")
    assert "vmexit.pml_full" in text
    assert "pml.occupancy_at_flush" in text
    assert MetricsRegistry().render("T").endswith("(empty)")
