"""Zero-overhead contract for tracing, mirroring the fault subsystem's
``tests/faults/test_differential_disabled.py``: with no session active —
or even *with* one — simulated results are bit-identical to a run without
the observability subsystem in the loop (same clocks, same event stream,
same collected pages).  Emission is pure observation."""

import numpy as np

from repro.core.tracking import Technique, make_tracker
from repro.experiments.harness import build_stack
from repro.obs import trace as otr

N_PAGES = 512
ROUNDS = 4


def _run(technique, with_session=False):
    stack = build_stack(vm_mb=64)
    proc = stack.kernel.spawn("app", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    stack.kernel.access(proc, np.arange(N_PAGES), True)
    tracker = make_tracker(technique, stack.kernel, proc)
    rng = np.random.default_rng(21)

    def body():
        tracker.start()
        collected = []
        for _ in range(ROUNDS):
            stack.kernel.access(
                proc, rng.integers(0, N_PAGES, size=N_PAGES // 4), True
            )
            collected.append(tracker.collect())
        tracker.stop()
        return collected

    if with_session:
        session = otr.TraceSession()
        with session.active():
            collected = body()
    else:
        session = None
        collected = body()
    return stack.clock.snapshot(), collected, session


def test_active_session_is_bit_identical():
    """Tracing on vs off: every simulated observable matches exactly."""
    for technique in (Technique.SPML, Technique.EPML):
        base_snap, base_out, _ = _run(technique)
        traced_snap, traced_out, session = _run(technique, with_session=True)
        assert session is not None and session.n_emitted > 0
        assert traced_snap.now_us == base_snap.now_us
        assert traced_snap.world_us == base_snap.world_us
        assert traced_snap.event_us == base_snap.event_us
        assert traced_snap.event_count == base_snap.event_count
        assert len(base_out) == len(traced_out)
        for a, b in zip(base_out, traced_out):
            assert np.array_equal(a, b)


def test_no_session_emits_nothing():
    """Without activation the module global stays None (unless the
    REPRO_TRACE env leg armed a process-wide session at import)."""
    if otr.trace_enabled_by_env():
        assert otr.ACTIVE is not None
    else:
        assert otr.ACTIVE is None


def test_session_nesting_restores_previous():
    outer = otr.TraceSession()
    inner = otr.TraceSession()
    prev = otr.ACTIVE
    with outer.active():
        assert otr.ACTIVE is outer
        with inner.active():
            assert otr.ACTIVE is inner
        assert otr.ACTIVE is outer
    assert otr.ACTIVE is prev
