"""Property-based trace invariants over randomized runs (fixed seeds).

Scenario shapes (page count, round count, write sets, technique) come
from ``random.Random`` with fixed seeds, so the "random" runs are fully
reproducible; each run is checked against three invariants that hold for
*any* fault-free execution:

1. every ``pml_full`` event is immediately followed by its consequence —
   a ``pml_full`` vmexit (hypervisor level) or a self-IPI (guest level)
   — *on the same vCPU* (PML buffers are per-logical-processor);
2. every ``collect`` reports a VPN set that is a subset of the pages
   written (per preceding ``write`` events) since tracking started;
3. the vmexit counters in the metrics registry agree exactly with the
   vmexit events in the trace, per exit reason.

Runs randomly alternate between 1- and 2-vCPU VMs (with seeded random
migrations) so the invariants are exercised across the SMP seams too.
"""

import random

import numpy as np
import pytest

from repro.core.tracking import make_tracker
from repro.experiments.harness import build_stack
from repro.obs import trace as otr
from repro.obs.events import EventKind

SEEDS = range(6)


def _random_run(seed: int) -> otr.TraceSession:
    py = random.Random(seed)
    n_pages = py.choice([64, 96, 128, 192])
    rounds = py.randint(2, 5)
    technique = py.choice(["spml", "epml"])
    n_vcpus = py.choice([1, 2])
    stack = build_stack(
        vm_mb=16, pml_buffer_entries=py.choice([16, 32, 64]),
        n_vcpus=n_vcpus,
    )
    proc = stack.kernel.spawn("app", n_pages=n_pages)
    proc.space.add_vma(n_pages)
    session = otr.TraceSession()
    with session.active():
        # Prefault inside the session: the initial full-range write is
        # part of the observed history invariant 2 checks against.
        stack.kernel.access(proc, np.arange(n_pages), True)
        tracker = make_tracker(technique, stack.kernel, proc)
        tracker.start()
        for _ in range(rounds):
            if n_vcpus > 1 and py.random() < 0.5:
                stack.kernel.scheduler.migrate(proc, py.randrange(n_vcpus))
            k = py.randint(1, n_pages)
            vpns = np.array(py.sample(range(n_pages), k), dtype=np.int64)
            stack.kernel.access(proc, vpns, True)
            tracker.collect()
        tracker.stop()
    return session


@pytest.mark.parametrize("seed", SEEDS)
def test_pml_full_is_followed_by_its_consequence(seed):
    events = _random_run(seed).trace.events
    for i, e in enumerate(events):
        if e.kind is not EventKind.PML_FULL:
            continue
        assert i + 1 < len(events), "trace ends on an unresolved pml_full"
        nxt = events[i + 1]
        if e.fields["level"] == "hyp":
            assert nxt.kind is EventKind.VMEXIT
            assert nxt.fields["reason"] == "pml_full"
        else:
            assert nxt.kind is EventKind.SELF_IPI
            assert nxt.fields["outcome"] == "delivered"
        # SMP: the consequence lands on the vCPU whose buffer filled.
        assert nxt.fields["vcpu_id"] == e.fields["vcpu_id"]


@pytest.mark.parametrize("seed", SEEDS)
def test_collected_pages_were_written(seed):
    events = _random_run(seed).trace.events
    written: set[int] = set()
    n_collects = 0
    for e in events:
        if e.kind is EventKind.WRITE:
            written.update(e.fields["vpns"])
        elif e.kind is EventKind.COLLECT:
            n_collects += 1
            reported = set(e.fields["vpns"])
            assert reported <= written, (
                f"collect reported pages never written: {reported - written}"
            )
    assert n_collects >= 2


@pytest.mark.parametrize("seed", SEEDS)
def test_vmexit_metrics_match_trace(seed):
    session = _random_run(seed)
    by_reason: dict[str, int] = {}
    for e in session.trace.by_kind(EventKind.VMEXIT):
        reason = e.fields["reason"]
        by_reason[reason] = by_reason.get(reason, 0) + 1
    counters = session.metrics.counters_with_prefix("vmexit.")
    assert counters == {
        f"vmexit.{reason}": n for reason, n in by_reason.items()
    }
    assert sum(by_reason.values()) > 0
