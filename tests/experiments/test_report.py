"""Tests for the automated report generator."""

from repro.experiments.report import PAPER_NOTES, main
from repro.experiments.runner import EXPERIMENTS


def test_paper_notes_cover_every_experiment():
    assert set(PAPER_NOTES) == set(EXPERIMENTS)


def test_main_writes_report(tmp_path, monkeypatch):
    # Keep it fast: shrink the registry to two cheap experiments.
    import repro.experiments.report as report_mod

    subset = {k: EXPERIMENTS[k] for k in ("table6", "fig3")}
    monkeypatch.setattr(report_mod, "EXPERIMENTS", subset)
    out = tmp_path / "r.md"
    assert main(["--quick", "-o", str(out)]) == 0
    text = out.read_text()
    assert "# Reproduction report" in text
    assert "## table6" in text
    assert "## fig3" in text
    assert "Fig. 3: SPML collection breakdown" in text


def test_main_metrics_appends_blocks(tmp_path, monkeypatch):
    import repro.experiments.report as report_mod

    subset = {k: report_mod.EXPERIMENTS[k] for k in ("table6",)}
    monkeypatch.setattr(report_mod, "EXPERIMENTS", subset)
    out = tmp_path / "r.md"
    assert main(["--quick", "--metrics", "-o", str(out)]) == 0
    text = out.read_text()
    assert "Metrics: table6" in text
    # The per-experiment block is populated, not an empty placeholder.
    assert "(empty)" not in text
