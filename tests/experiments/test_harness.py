"""Tests for the experiment harness (micro/CRIU/Boehm runners)."""

import pytest

from repro.core.tracking import Technique
from repro.experiments.harness import (
    build_stack,
    run_boehm,
    run_criu,
    run_microbench,
)
from repro.trackers.boehm import GcParams


def test_build_stack_defaults():
    stack = build_stack(vm_mb=64)
    assert stack.vm.mem_pages == 64 * 256
    assert stack.kernel.vm is stack.vm


def test_microbench_oracle_has_zero_overhead():
    r = run_microbench(Technique.ORACLE, mem_mb=2)
    assert r.overhead_tracked_pct == pytest.approx(0.0, abs=0.01)
    assert r.tracker_us == 0.0
    assert r.n_dirty == 2 * 512  # two passes over 512 pages


def test_microbench_counts_full_dirty_set():
    for tech in ("proc", "ufd", "spml", "epml"):
        r = run_microbench(tech, mem_mb=2)
        assert r.n_dirty == 2 * 512, tech


def test_microbench_result_properties():
    r = run_microbench("proc", mem_mb=2)
    assert r.slowdown_tracked == pytest.approx(
        r.tracked_us / r.ideal_us
    )
    assert r.overhead_tracked_pct == pytest.approx(
        (r.slowdown_tracked - 1) * 100
    )
    assert r.events["clear_refs"] >= 2  # init + per-collect re-arm


def test_microbench_passes_validation():
    with pytest.raises(ValueError):
        run_microbench("proc", mem_mb=2, passes=0)


def test_criu_runner_produces_dump(technique=Technique.EPML):
    r = run_criu("baby", "small", technique, scale=0.002)
    assert len(r.dumps) == 1
    assert r.dumps[0].pages_dumped > 0
    assert r.tracked_us > r.ideal_us
    assert r.overhead_tracked_pct > 0


def test_criu_runner_ideal_cached_and_consistent():
    a = run_criu("baby", "small", "proc", scale=0.002)
    b = run_criu("baby", "small", "epml", scale=0.002)
    assert a.ideal_us == b.ideal_us  # same cached baseline
    assert b.overhead_tracked_pct < a.overhead_tracked_pct


def test_boehm_runner_collects_cycles():
    r = run_boehm(
        "gcbench", "small", "epml", scale=0.002,
        gc_params=GcParams(threshold_bytes=256 * 1024),
    )
    assert len(r.cycles) >= 1
    assert r.gc_us > 0
    assert r.ideal_us > 0


def test_boehm_oracle_is_the_baseline():
    params = GcParams(threshold_bytes=256 * 1024)
    o = run_boehm("gcbench", "small", "oracle", scale=0.002, gc_params=params)
    assert o.ideal_us == o.tracked_us
    p = run_boehm("gcbench", "small", "proc", scale=0.002, gc_params=params)
    assert p.tracked_us > p.ideal_us
