"""Tests for the shared experiment memo-cache."""

import numpy as np

from repro.experiments.cache import EXPERIMENT_CACHE, MemoCache
from repro.experiments.harness import run_boehm, run_criu, run_microbench


def test_memocache_hit_miss_accounting():
    cache = MemoCache(enabled=True)
    calls = []

    def fn():
        calls.append(1)
        return {"x": [1, 2]}

    a = cache.get_or_run("k", fn)
    b = cache.get_or_run("k", fn)
    assert len(calls) == 1
    assert cache.hits == 1 and cache.misses == 1
    assert a == b
    assert len(cache) == 1 and "k" in cache


def test_memocache_deepcopy_isolation():
    cache = MemoCache(enabled=True)
    first = cache.get_or_run("k", lambda: {"arr": np.arange(3)})
    first["arr"][0] = 99  # mutating the first return must not leak
    second = cache.get_or_run("k", lambda: None)
    assert second["arr"][0] == 0
    second["arr"][1] = 77  # nor mutating a hit
    third = cache.get_or_run("k", lambda: None)
    assert third["arr"][1] == 1


def test_memocache_disabled_runs_every_time():
    cache = MemoCache(enabled=False)
    calls = []
    for _ in range(3):
        cache.get_or_run("k", lambda: calls.append(1))
    assert len(calls) == 3
    assert len(cache) == 0


def test_memocache_env_toggle(monkeypatch):
    cache = MemoCache()
    monkeypatch.setenv("REPRO_EXPERIMENT_CACHE", "0")
    assert not cache.enabled
    monkeypatch.delenv("REPRO_EXPERIMENT_CACHE")
    assert cache.enabled


def test_memocache_clear():
    cache = MemoCache(enabled=True)
    cache.get_or_run("k", lambda: 1)
    cache.get_or_run("k", lambda: 1)
    cache.clear()
    assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0


def test_run_microbench_memoized():
    hits0 = EXPERIMENT_CACHE.hits
    a = run_microbench("proc", mem_mb=1)
    b = run_microbench("proc", mem_mb=1)
    assert EXPERIMENT_CACHE.hits > hits0
    assert a is not b  # deep copies, never the same object
    assert (a.tracked_us, a.tracker_us, a.events) == (
        b.tracked_us, b.tracker_us, b.events
    )


def test_run_criu_memoized_and_baseline_shared():
    a = run_criu("baby", "large", "proc", scale=0.002)
    before = EXPERIMENT_CACHE.misses
    b = run_criu("baby", "large", "spml", scale=0.002)
    # The spml run reuses the (app, config, scale) ideal baseline: only
    # the technique run itself is a miss.
    assert EXPERIMENT_CACHE.misses == before + 1
    assert a.ideal_us == b.ideal_us
    c = run_criu("baby", "large", "spml", scale=0.002)
    assert (c.tracked_us, c.tracker_us) == (b.tracked_us, b.tracker_us)


def test_run_boehm_memoized_with_oracle_baseline():
    a = run_boehm("gcbench", "small", "proc", scale=0.002)
    b = run_boehm("gcbench", "small", "oracle", scale=0.002)
    # proc's ideal baseline IS the oracle run's tracked time.
    assert a.ideal_us == b.tracked_us == b.ideal_us
    c = run_boehm("gcbench", "small", "proc", scale=0.002)
    assert (c.tracked_us, c.ideal_us) == (a.tracked_us, a.ideal_us)
