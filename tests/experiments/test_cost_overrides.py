"""Tests that cost-parameter overrides flow through the harness
(the mechanism the ablation benchmarks rely on)."""

import pytest

from repro.core.costs import CostParams
from repro.experiments.harness import build_stack, run_microbench


def test_build_stack_accepts_cost_params():
    params = CostParams().with_overrides(vmexit_roundtrip_us=50.0)
    stack = build_stack(vm_mb=16, cost_params=params)
    assert stack.costs.params.vmexit_roundtrip_us == 50.0


def test_vmexit_cost_override_changes_spml_results():
    cheap = run_microbench("spml", mem_mb=10)
    dear = run_microbench(
        "spml", mem_mb=10,
        cost_params=CostParams().with_overrides(vmexit_roundtrip_us=500.0),
    )
    # Same mechanism counts, different cost: events equal, time higher.
    assert dear.events["vmexit"] == cheap.events["vmexit"]
    assert dear.tracked_us > cheap.tracked_us


def test_disk_cost_override_changes_nothing_in_microbench():
    """The microbench has no disk writes; an unrelated override must not
    perturb results (guards against accidental coupling)."""
    base = run_microbench("proc", mem_mb=10)
    tweaked = run_microbench(
        "proc", mem_mb=10,
        cost_params=CostParams().with_overrides(disk_write_us_per_page=99.0),
    )
    assert tweaked.tracked_us == pytest.approx(base.tracked_us)
    assert tweaked.tracker_us == pytest.approx(base.tracker_us)


def test_pml_buffer_entries_override_changes_full_events():
    small = run_microbench("epml", mem_mb=10, pml_buffer_entries=64)
    large = run_microbench("epml", mem_mb=10, pml_buffer_entries=4096)
    assert small.events.get("self_ipi", 0) > large.events.get("self_ipi", 0)
    assert small.n_dirty == large.n_dirty  # no loss either way
