"""Quick-mode integration checks for the matrix-based experiments."""

import pytest

from repro.experiments.runner import run_experiment


@pytest.fixture(scope="module")
def fig5():
    return run_experiment("fig5", quick=True)


@pytest.fixture(scope="module")
def fig8():
    return run_experiment("fig8", quick=True)


def test_fig5_structure(fig5):
    # quick mode: 2 apps x 1 config x 3 techniques.
    assert len(fig5.rows) == 6
    techniques = {row[2] for row in fig5.rows}
    assert techniques == {"proc", "spml", "epml"}
    for row in fig5.rows:
        assert int(row[3]) >= 1  # at least one GC cycle everywhere


def test_fig6_reuses_fig5_matrix_cache(fig5):
    import time

    t0 = time.time()
    out = run_experiment("fig6", quick=True)
    assert time.time() - t0 < 5.0  # cache hit, no re-simulation
    assert len(out.rows) == 6


def test_fig7_fig9_share_criu_matrix(fig8):
    out7 = run_experiment("fig7", quick=True)
    out9 = run_experiment("fig9", quick=True)
    apps7 = {row[0] for row in out7.rows}
    apps9 = {row[0] for row in out9.rows}
    assert apps7 == apps9 == {"baby", "histogram"}


def test_fig8_md_mw_sum_below_total(fig8):
    for app, tech, md, mw, total in fig8.rows:
        md_v = float(str(md).replace(",", ""))
        mw_v = float(str(mw).replace(",", ""))
        total_v = float(str(total).replace(",", ""))
        assert md_v + mw_v <= total_v + 1e-6


def test_fig10_11_quick_structure():
    out = run_experiment("fig10_11", quick=True)
    assert len(out.rows) == 10  # 5 VM counts x 2 techniques
    assert [row[0] for row in out.rows] == [1, 1, 2, 2, 3, 3, 4, 4, 5, 5]
