"""Tests for the experiment registry (quick mode)."""

import pytest

from repro.experiments.runner import (
    EXPERIMENT_FAMILIES,
    EXPERIMENTS,
    ExperimentOutput,
    main,
    run_experiment,
)
from repro.experiments.tables import fmt_ms, fmt_pct, render_table


def test_registry_covers_every_table_and_figure():
    assert set(EXPERIMENTS) == {
        "table1", "table4", "table5", "table6",
        "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10_11",
        "fault_matrix", "fleet", "serverless", "overcommit",
    }


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiment("table99")


@pytest.mark.parametrize("name", ["table1", "table6", "fig3", "fig4"])
def test_quick_experiments_produce_tables(name):
    out = run_experiment(name, quick=True)
    assert isinstance(out, ExperimentOutput)
    assert out.rows
    assert out.headers
    assert name in out.experiment
    assert out.text.count("\n") >= len(out.rows)


def test_table4_accuracy_in_quick_mode():
    out = run_experiment("table4", quick=True)
    for row in out.rows:
        assert float(row[3]) > 90.0
        assert float(row[6]) > 90.0


def test_table5_pinned_quick_values():
    """Pin the quick-mode Table Vb rows: the per-metric normalization must
    not drift (guards the dead-code cleanup and the fused MMU rewrite)."""
    out = run_experiment("table5", quick=True)
    assert out.rows == [
        ["m15_clear_refs", "0.0", "0.1", "0.3", "2.234"],
        ["m16_pt_walk_user", "2.0", "14.5", "82.3", "594.187"],
        ["m5_pf_kernel", "0.0", "0.3", "3.3", "33.580"],
        ["m6_pf_user", "2.5", "27.3", "347.1", "3,483.000"],
        ["m18_rb_copy", "0.0", "0.0", "0.0", "0.671"],
        ["m17_reverse_map", "5.9", "24.6", "255.7", "15,738.000"],
    ]


def test_cli_main_runs_one(capsys):
    assert main(["table6", "--quick"]) == 0
    captured = capsys.readouterr()
    assert "Table VI" in captured.out


def test_experiment_families_partition_registry():
    flat = [n for family in EXPERIMENT_FAMILIES for n in family]
    assert sorted(flat) == sorted(EXPERIMENTS)
    assert len(flat) == len(set(flat))


def test_cli_jobs_output_matches_serial(capsys):
    """--jobs must not change output content or ordering."""
    assert main(["all", "--quick"]) == 0
    serial = capsys.readouterr().out
    assert main(["all", "--quick", "--jobs", "4"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == serial


def test_cli_rejects_bad_jobs():
    with pytest.raises(SystemExit):
        main(["table6", "--jobs", "0"])


def test_cli_metrics_prints_registry(capsys):
    assert main(["table6", "--quick", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "Observability metrics" in out
    assert "Table VI" in out


def test_cli_metrics_tables_match_plain(capsys):
    """--metrics observes; it must not change the experiment tables."""
    assert main(["table6", "--quick"]) == 0
    plain = capsys.readouterr().out
    assert main(["table6", "--quick", "--metrics"]) == 0
    with_metrics = capsys.readouterr().out
    assert with_metrics.startswith(plain.rstrip("\n"))


def test_cli_metrics_trace_out(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    assert main(["table6", "--quick", "--metrics",
                 "--trace-out", str(out)]) == 0
    capsys.readouterr()
    from repro.obs.trace import TraceBuffer

    buf = TraceBuffer.read_jsonl(out)
    assert buf.to_jsonl() == out.read_text()


def test_cli_trace_out_requires_metrics():
    with pytest.raises(SystemExit):
        main(["table6", "--quick", "--trace-out", "/tmp/x.jsonl"])


def test_render_table_alignment():
    text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], "T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert all(len(line) == len(lines[1]) for line in lines[1:])


def test_formatters():
    assert fmt_ms(1500.0) == "1.5"
    assert fmt_pct(42.4) == "42"
