"""Tests for the experiment registry (quick mode)."""

import pytest

from repro.experiments.runner import (
    EXPERIMENTS,
    ExperimentOutput,
    main,
    run_experiment,
)
from repro.experiments.tables import fmt_ms, fmt_pct, render_table


def test_registry_covers_every_table_and_figure():
    assert set(EXPERIMENTS) == {
        "table1", "table4", "table5", "table6",
        "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10_11",
    }


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiment("table99")


@pytest.mark.parametrize("name", ["table1", "table6", "fig3", "fig4"])
def test_quick_experiments_produce_tables(name):
    out = run_experiment(name, quick=True)
    assert isinstance(out, ExperimentOutput)
    assert out.rows
    assert out.headers
    assert name in out.experiment
    assert out.text.count("\n") >= len(out.rows)


def test_table4_accuracy_in_quick_mode():
    out = run_experiment("table4", quick=True)
    for row in out.rows:
        assert float(row[3]) > 90.0
        assert float(row[6]) > 90.0


def test_cli_main_runs_one(capsys):
    assert main(["table6", "--quick"]) == 0
    captured = capsys.readouterr()
    assert "Table VI" in captured.out


def test_render_table_alignment():
    text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], "T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert all(len(line) == len(lines[1]) for line in lines[1:])


def test_formatters():
    assert fmt_ms(1500.0) == "1.5"
    assert fmt_pct(42.4) == "42"
