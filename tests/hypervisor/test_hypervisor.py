"""Tests for the hypervisor: VM lifecycle, PML handling, hypercalls."""

import numpy as np
import pytest

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.errors import ConfigurationError, HypercallError
from repro.hw import vmcs as vmcsf
from repro.hypervisor import hypercalls as hc
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.vm import Vm


def test_create_vm_populates_ept_and_guest_frames(stack):
    vm = stack.vm
    assert vm.mem_pages == Vm.mb(32)
    assert np.all(vm.ept.hpfn[: vm.mem_pages] >= 0)
    assert vm.guest_frames.n_free == vm.mem_pages


def test_duplicate_vm_name_rejected(stack):
    with pytest.raises(ConfigurationError):
        stack.hv.create_vm("vm0", mem_mb=1)


def test_destroy_vm_returns_host_frames(stack):
    free_before = stack.hv.host_mem.allocator.n_free
    vm1 = stack.hv.create_vm("vm1", mem_mb=8)
    stack.hv.destroy_vm("vm1")
    assert stack.hv.host_mem.allocator.n_free == free_before


def test_multiple_vms_get_disjoint_host_frames():
    hv = Hypervisor(SimClock(), CostModel(), host_mem_mb=64)
    a = hv.create_vm("a", mem_mb=16)
    b = hv.create_vm("b", mem_mb=16)
    ha = set(int(x) for x in a.ept.hpfn)
    hb = set(int(x) for x in b.ept.hpfn)
    assert not ha & hb


def test_spml_init_hypercall_sets_flag_and_ring(stack):
    vm = stack.vm
    ring = vm.vcpu.hypercall(hc.HC_OOH_INIT_PML)
    assert vm.enabled_by_guest
    assert vm.spml_ring is ring
    with pytest.raises(HypercallError):
        vm.vcpu.hypercall(hc.HC_OOH_INIT_PML)  # double init


def test_enable_logging_requires_init(stack):
    with pytest.raises(HypercallError):
        stack.vm.vcpu.hypercall(hc.HC_OOH_ENABLE_LOGGING)


def test_pml_full_vmexit_copies_to_ring_when_guest_enabled(stack):
    vm = stack.vm
    vm.vcpu.hypercall(hc.HC_OOH_INIT_PML)
    vm.vcpu.hypercall(hc.HC_OOH_ENABLE_LOGGING)
    n = vm.pml_buffer_entries
    vm.vcpu.pml.log_gpas(np.arange(n + 5, dtype=np.uint64))
    assert vm.vcpu.n_vmexits >= 1  # buffer-full trap
    assert len(vm.spml_ring) == n  # one full buffer copied
    # Residual entries flushed by disable_logging.
    vm.vcpu.hypercall(hc.HC_OOH_DISABLE_LOGGING)
    assert len(vm.spml_ring) == n + 5


def test_pml_not_delivered_without_guest_flag(stack):
    """The coordination flags suppress useless copies (paper §IV-C)."""
    vm = stack.vm
    stack.hv.enable_vm_dirty_logging(vm)  # hypervisor use only
    vm.vcpu.pml.log_gpas(np.arange(vm.pml_buffer_entries, dtype=np.uint64))
    assert vm.spml_ring is None
    assert len(vm.hyp_dirty_log) == 1  # went to the hypervisor log


def test_both_users_receive_entries(stack):
    vm = stack.vm
    stack.hv.enable_vm_dirty_logging(vm)
    vm.vcpu.hypercall(hc.HC_OOH_INIT_PML)
    vm.vcpu.hypercall(hc.HC_OOH_ENABLE_LOGGING)
    vm.vcpu.pml.log_gpas(np.arange(vm.pml_buffer_entries, dtype=np.uint64))
    assert len(vm.spml_ring) == vm.pml_buffer_entries
    assert len(vm.hyp_dirty_log) == 1


def test_guest_deact_keeps_pml_if_hypervisor_uses_it(stack):
    vm = stack.vm
    stack.hv.enable_vm_dirty_logging(vm)
    vm.vcpu.hypercall(hc.HC_OOH_INIT_PML)
    vm.vcpu.hypercall(hc.HC_OOH_DEACT_PML)
    assert vm.vcpu.vmcs.read(vmcsf.F_CTRL_ENABLE_PML) == 1
    stack.hv.disable_vm_dirty_logging(vm)
    assert vm.vcpu.vmcs.read(vmcsf.F_CTRL_ENABLE_PML) == 0


def test_hyp_deact_keeps_pml_if_guest_uses_it(stack):
    vm = stack.vm
    vm.vcpu.hypercall(hc.HC_OOH_INIT_PML)
    vm.vcpu.hypercall(hc.HC_OOH_ENABLE_LOGGING)
    stack.hv.enable_vm_dirty_logging(vm)
    stack.hv.disable_vm_dirty_logging(vm)
    assert vm.vcpu.vmcs.read(vmcsf.F_CTRL_ENABLE_PML) == 1


def test_epml_init_shadow_exposes_fields(stack):
    vm = stack.vm
    vm.vcpu.hypercall(hc.HC_OOH_INIT_PML_SHADOW)
    assert vm.vcpu.vmcs.shadowing_enabled()
    assert vmcsf.F_CTRL_ENABLE_GUEST_PML in vm.vcpu.vmcs.shadow_write_fields
    # Guest can now toggle guest-PML without a vmexit.
    exits_before = vm.vcpu.n_vmexits
    vm.vcpu.vmwrite(vmcsf.F_CTRL_ENABLE_GUEST_PML, 1)
    assert vm.vcpu.n_vmexits == exits_before


def test_epml_deact_shadow(stack):
    vm = stack.vm
    vm.vcpu.hypercall(hc.HC_OOH_INIT_PML_SHADOW)
    vm.vcpu.vmwrite(vmcsf.F_CTRL_ENABLE_GUEST_PML, 1)
    vm.vcpu.hypercall(hc.HC_OOH_DEACT_PML_SHADOW)
    assert not vm.vcpu.vmcs.shadowing_enabled()
    assert vm.vcpu.vmcs.link.read(vmcsf.F_CTRL_ENABLE_GUEST_PML) == 0


def test_reset_dirty_hypercall_rearms(stack):
    vm = stack.vm
    vm.ept.touch(np.array([0, 1, 2]), np.array([True, True, True]))
    n = vm.vcpu.hypercall(hc.HC_OOH_RESET_DIRTY, np.array([0, 1]))
    assert n == 2
    assert list(vm.ept.dirty_gpfns()) == [2]


def test_unknown_hypercall_rejected(stack):
    with pytest.raises(HypercallError):
        stack.vm.vcpu.hypercall(0x9999)


def test_harvest_vm_dirty_unique_and_rearmed(stack):
    vm = stack.vm
    stack.hv.enable_vm_dirty_logging(vm)
    vm.ept.clear_dirty()
    vm.vcpu.pml.log_gpas(np.array([7, 7, 8], dtype=np.uint64))
    vm.ept.touch(np.array([7, 8]), np.array([True, True]))
    dirty = stack.hv.harvest_vm_dirty(vm)
    assert set(int(x) for x in dirty) == {7, 8}
    assert vm.ept.dirty_gpfns().size == 0
