"""Tests for PML-driven pre-copy live migration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hypervisor.migration import LiveMigration


def make_workload(stack, n_pages=64, writes_per_round=4):
    proc = stack.kernel.spawn("app", n_pages=n_pages)
    proc.space.add_vma(n_pages)
    stack.kernel.access(proc, np.arange(n_pages), True)  # populate

    state = {"i": 0}

    def round_() -> None:
        lo = state["i"] % n_pages
        stack.kernel.access(
            proc, np.arange(lo, min(lo + writes_per_round, n_pages)), True
        )
        state["i"] += writes_per_round

    return proc, round_


def test_migration_converges_with_small_dirty_rate(stack):
    _, workload = make_workload(stack, n_pages=64, writes_per_round=4)
    mig = LiveMigration(stack.hv, stack.vm, stop_threshold_pages=8)
    report = mig.migrate(workload)
    assert report.converged
    assert report.pages_per_round[0] == stack.vm.mem_pages
    # Later rounds shrink to the workload's write rate.
    assert report.pages_per_round[-1] <= 8
    assert report.downtime_us <= 8 * mig.page_send_us
    assert report.total_pages_sent == sum(report.pages_per_round)


def test_migration_gives_up_after_max_rounds(stack):
    n = 64
    proc = stack.kernel.spawn("hot", n_pages=n)
    proc.space.add_vma(n)
    stack.kernel.access(proc, np.arange(n), True)

    def hot_round() -> None:  # rewrites everything every round
        stack.kernel.access(proc, np.arange(n), True)

    mig = LiveMigration(stack.hv, stack.vm, max_rounds=3, stop_threshold_pages=1)
    report = mig.migrate(hot_round)
    assert not report.converged
    assert report.rounds == 3
    assert report.downtime_us > 0


def test_migration_disables_hypervisor_logging_after(stack):
    _, workload = make_workload(stack)
    LiveMigration(stack.hv, stack.vm, stop_threshold_pages=8).migrate(workload)
    assert not stack.vm.enabled_by_hyp


def test_migration_charges_send_time(stack):
    _, workload = make_workload(stack)
    t0 = stack.clock.now_us
    report = LiveMigration(stack.hv, stack.vm, stop_threshold_pages=8).migrate(
        workload
    )
    assert report.total_us == pytest.approx(stack.clock.now_us - t0)
    assert report.total_us > 0


def test_bad_max_rounds():
    with pytest.raises(ConfigurationError):
        LiveMigration(None, None, max_rounds=0)
