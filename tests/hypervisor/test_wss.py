"""Tests for accessed-bit working-set-size estimation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hypervisor.wss import WssEstimator


def test_wss_counts_touched_pages(stack):
    proc = stack.kernel.spawn("app", n_pages=256)
    proc.space.add_vma(256)
    stack.kernel.access(proc, np.arange(256), True)  # populate
    est = WssEstimator(stack.vm)

    def interval():
        stack.kernel.access(proc, np.arange(64), False)  # reads count too

    s = est.sample(interval)
    assert s.accessed_pages == 64
    assert s.accessed_mb == pytest.approx(64 * 4096 / 2**20)


def test_wss_tracks_shrinking_working_set(stack):
    proc = stack.kernel.spawn("app", n_pages=256)
    proc.space.add_vma(256)
    stack.kernel.access(proc, np.arange(256), True)
    est = WssEstimator(stack.vm)
    sizes = iter([128, 64, 32])

    def interval():
        stack.kernel.access(proc, np.arange(next(sizes)), False)

    counts = [est.sample(interval).accessed_pages for _ in range(3)]
    assert counts == [128, 64, 32]


def test_wss_estimate_averages(stack):
    proc = stack.kernel.spawn("app", n_pages=64)
    proc.space.add_vma(64)
    stack.kernel.access(proc, np.arange(64), True)
    est = WssEstimator(stack.vm)
    avg = est.estimate(lambda: stack.kernel.access(proc, np.arange(16), False),
                       intervals=4)
    assert avg == pytest.approx(16.0)
    assert len(est.samples) == 4


def test_wss_estimate_pages_matches_constant_working_set(stack):
    proc = stack.kernel.spawn("app", n_pages=64)
    proc.space.add_vma(64)
    stack.kernel.access(proc, np.arange(64), True)
    est = WssEstimator(stack.vm)
    pages = est.estimate_pages(
        lambda: stack.kernel.access(proc, np.arange(16), False), intervals=3
    )
    assert pages == 16
    assert isinstance(pages, int)


def test_wss_estimate_pages_rounds_up(stack):
    """The fleet placement consumer budgets whole frames: a fractional
    average working set must round *up*, never down."""
    proc = stack.kernel.spawn("app", n_pages=64)
    proc.space.add_vma(64)
    stack.kernel.access(proc, np.arange(64), True)
    est = WssEstimator(stack.vm)
    sizes = iter([3, 4])  # mean 3.5 -> 4 pages

    def interval():
        stack.kernel.access(proc, np.arange(next(sizes)), False)

    assert est.estimate_pages(interval, intervals=2) == 4


def test_wss_validation(stack):
    est = WssEstimator(stack.vm)
    with pytest.raises(ConfigurationError):
        est.estimate(lambda: None, intervals=0)


def test_wss_does_not_break_pml_tracking(stack):
    """Accessed-bit sampling must not disturb dirty-bit logging."""
    from repro.core.tracking import Technique, make_tracker

    proc = stack.kernel.spawn("app", n_pages=64)
    proc.space.add_vma(64)
    stack.kernel.access(proc, np.arange(64), True)
    tracker = make_tracker(Technique.EPML, stack.kernel, proc)
    tracker.start()
    est = WssEstimator(stack.vm)
    est.sample(lambda: stack.kernel.access(proc, [1, 2], True))
    dirty = set(int(v) for v in tracker.collect())
    tracker.stop()
    assert dirty == {1, 2}
