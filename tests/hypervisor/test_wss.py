"""Tests for accessed-bit working-set-size estimation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hypervisor.wss import WssEstimator


def test_wss_counts_touched_pages(stack):
    proc = stack.kernel.spawn("app", n_pages=256)
    proc.space.add_vma(256)
    stack.kernel.access(proc, np.arange(256), True)  # populate
    est = WssEstimator(stack.vm)

    def interval():
        stack.kernel.access(proc, np.arange(64), False)  # reads count too

    s = est.sample(interval)
    assert s.accessed_pages == 64
    assert s.accessed_mb == pytest.approx(64 * 4096 / 2**20)


def test_wss_tracks_shrinking_working_set(stack):
    proc = stack.kernel.spawn("app", n_pages=256)
    proc.space.add_vma(256)
    stack.kernel.access(proc, np.arange(256), True)
    est = WssEstimator(stack.vm)
    sizes = iter([128, 64, 32])

    def interval():
        stack.kernel.access(proc, np.arange(next(sizes)), False)

    counts = [est.sample(interval).accessed_pages for _ in range(3)]
    assert counts == [128, 64, 32]


def test_wss_estimate_averages(stack):
    proc = stack.kernel.spawn("app", n_pages=64)
    proc.space.add_vma(64)
    stack.kernel.access(proc, np.arange(64), True)
    est = WssEstimator(stack.vm)
    avg = est.estimate(lambda: stack.kernel.access(proc, np.arange(16), False),
                       intervals=4)
    assert avg == pytest.approx(16.0)
    assert len(est.samples) == 4


def test_wss_estimate_pages_matches_constant_working_set(stack):
    proc = stack.kernel.spawn("app", n_pages=64)
    proc.space.add_vma(64)
    stack.kernel.access(proc, np.arange(64), True)
    est = WssEstimator(stack.vm)
    pages = est.estimate_pages(
        lambda: stack.kernel.access(proc, np.arange(16), False), intervals=3
    )
    assert pages == 16
    assert isinstance(pages, int)


def test_wss_estimate_pages_rounds_up(stack):
    """The fleet placement consumer budgets whole frames: a fractional
    average working set must round *up*, never down."""
    proc = stack.kernel.spawn("app", n_pages=64)
    proc.space.add_vma(64)
    stack.kernel.access(proc, np.arange(64), True)
    est = WssEstimator(stack.vm)
    sizes = iter([3, 4])  # mean 3.5 -> 4 pages

    def interval():
        stack.kernel.access(proc, np.arange(next(sizes)), False)

    assert est.estimate_pages(interval, intervals=2) == 4


def test_wss_validation(stack):
    est = WssEstimator(stack.vm)
    with pytest.raises(ConfigurationError):
        est.estimate(lambda: None, intervals=0)


def test_wss_zero_access_interval(stack):
    """An interval in which the VM touches nothing samples zero pages and
    the estimate stays at zero — idle VMs must not inflate placement."""
    proc = stack.kernel.spawn("app", n_pages=64)
    proc.space.add_vma(64)
    stack.kernel.access(proc, np.arange(64), True)
    est = WssEstimator(stack.vm)
    s = est.sample(lambda: None)
    assert s.accessed_pages == 0
    assert est.estimate(lambda: None, intervals=2) == pytest.approx(0.0)
    assert est.estimate_pages(lambda: None, intervals=1) == 0


def test_wss_single_interval_is_that_sample(stack):
    proc = stack.kernel.spawn("app", n_pages=64)
    proc.space.add_vma(64)
    stack.kernel.access(proc, np.arange(64), True)
    est = WssEstimator(stack.vm)
    pages = est.estimate_pages(
        lambda: stack.kernel.access(proc, np.arange(23), False), intervals=1
    )
    assert pages == 23
    assert est.samples[-1].accessed_pages == 23


def test_wss_multi_vcpu_sampling_under_rotation():
    """SMP: quantum expiry rotates the process across vCPUs mid-interval;
    accessed bits are per-EPT (not per-vCPU), so the sample must still
    count every touched page exactly once."""
    from repro.experiments.harness import build_stack

    stack = build_stack(vm_mb=8, n_vcpus=4, switch_interval_us=50.0)
    proc = stack.kernel.spawn("app", n_pages=256)
    proc.space.add_vma(256)
    stack.kernel.access(proc, np.arange(256), True)
    est = WssEstimator(stack.vm)

    def interval():
        # Several small batches with compute between them, so the
        # scheduler rotates the process across all four vCPUs.
        for i in range(8):
            stack.kernel.access(proc, np.arange(i * 16, (i + 1) * 16), True)
            stack.kernel.compute(proc, 60.0)

    s = est.sample(interval)
    assert s.accessed_pages == 128


def test_wss_estimate_stable_across_repeat_runs():
    """Same seed, same workload, fresh stacks: the estimate is the same
    number — the fleet's placement decisions are reproducible."""
    from repro.experiments.harness import build_stack

    def one_run() -> int:
        stack = build_stack(vm_mb=8)
        proc = stack.kernel.spawn("app", n_pages=512)
        proc.space.add_vma(512)
        stack.kernel.access(proc, np.arange(512), True)
        rng = np.random.default_rng(42)
        est = WssEstimator(stack.vm)
        return est.estimate_pages(
            lambda: stack.kernel.access(proc, rng.integers(0, 512, 96), True),
            intervals=3,
        )

    assert one_run() == one_run()


def test_wss_sample_correct_with_warm_walk_cache():
    """Regression: ``_clear_accessed`` must invalidate the walk cache.

    Repeating one identical batch memoizes it; if clearing the accessed
    bits left ``Ept.generation`` unchanged, the next interval would
    *replay* the batch without re-setting accessed bits and the sample
    would read 0 instead of the working set."""
    from repro.experiments.harness import build_stack

    stack = build_stack(vm_mb=8)
    stack.vm.mmu._cache = {}  # force the walk cache on for this test
    proc = stack.kernel.spawn("app", n_pages=128)
    proc.space.add_vma(128)
    stack.kernel.access(proc, np.arange(128), True)
    batch = np.arange(32, dtype=np.int64)
    for _ in range(4):  # memoize the batch (fast path + replay warm)
        stack.kernel.access(proc, batch, True)
    assert stack.vm.mmu.n_replay_batches > 0
    est = WssEstimator(stack.vm)
    for _ in range(3):
        s = est.sample(lambda: stack.kernel.access(proc, batch, True))
        assert s.accessed_pages == 32


def test_wss_does_not_break_pml_tracking(stack):
    """Accessed-bit sampling must not disturb dirty-bit logging."""
    from repro.core.tracking import Technique, make_tracker

    proc = stack.kernel.spawn("app", n_pages=64)
    proc.space.add_vma(64)
    stack.kernel.access(proc, np.arange(64), True)
    tracker = make_tracker(Technique.EPML, stack.kernel, proc)
    tracker.start()
    est = WssEstimator(stack.vm)
    est.sample(lambda: stack.kernel.access(proc, [1, 2], True))
    dirty = set(int(v) for v in tracker.collect())
    tracker.stop()
    assert dirty == {1, 2}
