"""Regression tests: hypervisor and guest PML users coexisting.

Guards the VMCS-routing bug where linking a shadow VMCS (EPML) silently
re-routed the hypervisor-owned ``ENABLE_PML`` control to the shadow,
disabling hypervisor-level dirty logging during live migration.
"""

import numpy as np

from repro.core.tracking import Technique, make_tracker
from repro.hw import vmcs as vmcsf
from repro.hypervisor.migration import LiveMigration


def test_hyp_logging_survives_epml_shadow_link(stack):
    vm = stack.vm
    proc = stack.kernel.spawn("app", n_pages=64)
    proc.space.add_vma(64)
    stack.kernel.access(proc, np.arange(64), True)

    tracker = make_tracker(Technique.EPML, stack.kernel, proc)
    tracker.start()  # links a shadow VMCS
    assert vm.vcpu.vmcs.link is not None

    stack.hv.enable_vm_dirty_logging(vm)
    assert vm.vcpu.pml.hyp_enabled()  # ordinary-VMCS control, not shadow
    vm.ept.clear_dirty()
    stack.kernel.access(proc, [1, 2, 3], True)
    dirty = stack.hv.harvest_vm_dirty(vm)
    assert dirty.size == 3  # hypervisor saw the writes

    # And the guest-side EPML tracker saw them too.
    assert set(int(v) for v in tracker.collect()) >= {1, 2, 3}
    tracker.stop()
    stack.hv.disable_vm_dirty_logging(vm)


def test_migration_with_concurrent_epml_tracker(stack):
    proc = stack.kernel.spawn("db", n_pages=256)
    proc.space.add_vma(256)
    stack.kernel.access(proc, np.arange(256), True)
    tracker = make_tracker(Technique.EPML, stack.kernel, proc)
    tracker.start()

    state = {"i": 0}

    def round_():
        lo = (state["i"] * 16) % 240
        stack.kernel.access(proc, np.arange(lo, lo + 16), True)
        state["i"] += 1

    report = LiveMigration(
        stack.hv, stack.vm, stop_threshold_pages=32, max_rounds=10
    ).migrate(round_)
    assert report.converged
    # The stop-and-copy round carried the workload's dirty pages.
    assert report.pages_per_round[-1] > 0
    assert tracker.collect().size > 0
    tracker.stop()


def test_spml_guest_flag_does_not_leak_into_hypervisor_log(stack):
    """Without enabled_by_hyp, PML-full content must not reach the
    hypervisor's migration log."""
    vm = stack.vm
    proc = stack.kernel.spawn("app", n_pages=2048)
    proc.space.add_vma(2048)
    tracker = make_tracker(Technique.SPML, stack.kernel, proc)
    tracker.start()
    stack.kernel.access(proc, np.arange(1500), True)  # > one PML buffer
    assert vm.vcpu.pml.n_hyp_full_events >= 1
    assert vm.hyp_dirty_log == []  # enabled_by_hyp never set
    tracker.stop()


def test_shadow_vmcs_index_fields_separate(stack):
    """Guest PML index lives in the shadow; hypervisor index in the
    ordinary VMCS."""
    vm = stack.vm
    proc = stack.kernel.spawn("app", n_pages=64)
    proc.space.add_vma(64)
    tracker = make_tracker(Technique.EPML, stack.kernel, proc)
    tracker.start()
    stack.kernel.access(proc, np.arange(10), True)
    shadow = vm.vcpu.vmcs.link
    assert shadow is not None
    assert shadow.read(vmcsf.F_GUEST_PML_INDEX) == 511 - 10
    # Ordinary hypervisor-level index untouched (hyp logging off).
    assert vm.vcpu.vmcs.read(vmcsf.F_PML_INDEX) == 511
    tracker.stop()
