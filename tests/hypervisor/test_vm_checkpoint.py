"""Tests for whole-VM checkpointing (the paper's §III-C alternative)."""

import numpy as np
import pytest

from repro.core.tracking import Technique
from repro.errors import CheckpointError
from repro.hypervisor.vm_checkpoint import checkpoint_vm
from repro.trackers.criu import Criu


def populate(stack, name, n_pages):
    proc = stack.kernel.spawn(name, n_pages=n_pages)
    proc.space.add_vma(n_pages)
    stack.kernel.access(proc, np.arange(n_pages), True)
    return proc


def test_vm_checkpoint_captures_all_allocated_frames(stack):
    populate(stack, "a", 64)
    populate(stack, "b", 64)
    image, report = checkpoint_vm(stack.hv, stack.vm)
    assert report.rounds == 2  # bulk + final
    assert image.total_pages_dumped >= 128


def test_vm_predump_rounds_capture_mutations(stack):
    proc = populate(stack, "a", 64)

    def round_():
        stack.kernel.access(proc, [1, 2], True)

    image, report = checkpoint_vm(stack.hv, stack.vm, round_, predump_rounds=2)
    assert report.rounds == 4
    # Later rounds shrink to the write rate.
    assert report.pages_per_round[1] <= 3
    flat = image.flatten()
    gpfn1 = int(proc.space.pt.translate([1])[0])
    hpfn1 = int(stack.vm.ept.translate([gpfn1])[0])
    assert flat[gpfn1] == int(stack.hv.host_mem.read([hpfn1])[0])


def test_vm_checkpoint_validation(stack):
    with pytest.raises(CheckpointError):
        checkpoint_vm(stack.hv, stack.vm, predump_rounds=1)
    with pytest.raises(CheckpointError):
        checkpoint_vm(stack.hv, stack.vm, predump_rounds=-1)


def test_vm_checkpoint_dumps_colocated_processes_too(stack):
    """The §III-C objection, quantified: with colocated tenants, the VM
    image dwarfs the OoH process checkpoint of the one target process."""
    target = populate(stack, "target", 64)
    for i in range(4):  # colocated functions (the FaaS scenario)
        populate(stack, f"tenant{i}", 256)

    image_vm, _ = checkpoint_vm(stack.hv, stack.vm)
    image_proc, report_proc = Criu(stack.kernel, Technique.EPML).checkpoint(
        target
    )
    assert report_proc.pages_dumped <= 64 + 1
    assert image_vm.total_pages_dumped > 10 * report_proc.pages_dumped


def test_vm_checkpoint_leaves_logging_off(stack):
    populate(stack, "a", 16)
    checkpoint_vm(stack.hv, stack.vm)
    assert not stack.vm.enabled_by_hyp
