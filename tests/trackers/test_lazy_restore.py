"""Tests for CRIU lazy restore (lazy-pages over userfaultfd MISSING)."""

import numpy as np
import pytest

from repro.core.tracking import Technique
from repro.errors import CheckpointError
from repro.trackers.criu import Criu
from repro.trackers.criu.images import CheckpointImage
from repro.trackers.criu.lazy import lazy_restore


def checkpointed_app(stack, n_pages=64):
    proc = stack.kernel.spawn("app", n_pages=n_pages)
    proc.space.add_vma(n_pages, "heap")
    stack.kernel.access(proc, np.arange(n_pages), True)
    image, _ = Criu(stack.kernel, Technique.EPML).checkpoint(proc)
    return proc, image


def test_lazy_restore_contents_materialise_on_touch(stack):
    proc, image = checkpointed_app(stack)
    lazy = lazy_restore(stack.kernel, image)
    # Touch three pages: contents must match the original.
    stack.kernel.access(lazy.process, [3, 7, 11], False)
    got = stack.kernel.vm.mmu.read_page_contents(
        lazy.process.space.pt, np.array([3, 7, 11])
    )
    want = stack.kernel.vm.mmu.read_page_contents(
        proc.space.pt, np.array([3, 7, 11])
    )
    assert np.array_equal(got, want)
    assert lazy.stats.pages_fetched == 3


def test_untouched_pages_never_fetched(stack):
    proc, image = checkpointed_app(stack)
    lazy = lazy_restore(stack.kernel, image)
    stack.kernel.access(lazy.process, np.arange(8), True)
    assert lazy.stats.pages_fetched == 8
    assert lazy.stats.image_pages == 64
    assert lazy.stats.fetch_fraction == pytest.approx(8 / 64)
    # Unvisited pages remain unmapped — no frames consumed for them.
    assert lazy.process.space.rss_pages == 8


def test_lazy_restore_writes_land_on_image_contents(stack):
    proc, image = checkpointed_app(stack)
    lazy = lazy_restore(stack.kernel, image)
    # A write-first touch still fetches, then overwrites.
    stack.kernel.access(lazy.process, [5], True)
    got = stack.kernel.vm.mmu.read_page_contents(
        lazy.process.space.pt, np.array([5])
    )[0]
    # Content differs from the image now (the new write), but the page
    # was fetched first.
    assert lazy.stats.pages_fetched == 1
    assert int(got) != 0


def test_full_walk_equals_eager_restore(stack):
    proc, image = checkpointed_app(stack)
    lazy = lazy_restore(stack.kernel, image)
    stack.kernel.access(lazy.process, np.arange(64), False)
    got = stack.kernel.vm.mmu.read_page_contents(
        lazy.process.space.pt, np.arange(64)
    )
    want = stack.kernel.vm.mmu.read_page_contents(
        proc.space.pt, np.arange(64)
    )
    assert np.array_equal(got, want)
    assert lazy.stats.fetch_fraction == 1.0


def test_finish_detaches_daemon(stack):
    proc, image = checkpointed_app(stack)
    lazy = lazy_restore(stack.kernel, image)
    stack.kernel.access(lazy.process, [0], False)
    lazy.finish()
    # Later touches demand-zero instead of fetching.
    stack.kernel.access(lazy.process, [1], False)
    assert lazy.stats.pages_fetched == 1


def test_lazy_restore_validation(stack):
    with pytest.raises(CheckpointError):
        lazy_restore(stack.kernel, CheckpointImage(pid=1, name="x",
                                                   space_pages=8))


def test_lazy_restore_cheaper_upfront_than_eager(stack):
    """The point of lazy-pages: restore-to-runnable time excludes the
    image copy."""
    from repro.trackers.criu import restore

    proc, image = checkpointed_app(stack, n_pages=512)
    t0 = stack.clock.now_us
    lazy = lazy_restore(stack.kernel, image)
    lazy_up = stack.clock.now_us - t0
    t0 = stack.clock.now_us
    restore(stack.kernel, image)
    eager_up = stack.clock.now_us - t0
    assert lazy_up < eager_up / 5
