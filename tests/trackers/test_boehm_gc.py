"""Tests for the Boehm-style collector (full + minor cycles)."""

import pytest

from repro.core.tracking import Technique
from repro.errors import GcError
from repro.trackers.boehm import BoehmGc, GcHeap, GcParams

TECHS = [Technique.PROC, Technique.UFD, Technique.SPML, Technique.EPML,
         Technique.ORACLE]


@pytest.fixture()
def env(stack):
    proc = stack.kernel.spawn("app", n_pages=1024)
    heap = GcHeap(stack.kernel, proc, heap_pages=512)
    return stack, heap


def build_list(heap, n, size=256):
    """Allocate a linked list rooted at its head; returns ids."""
    ids = heap.alloc(n, size)
    heap.set_refs(ids[:-1], ids[1:])
    heap.add_roots(ids[:1])
    return ids


@pytest.mark.parametrize("technique", TECHS)
def test_full_collect_frees_unreachable(env, technique):
    stack, heap = env
    keep = build_list(heap, 10)
    garbage = heap.alloc(20, 256)  # never rooted
    gc = BoehmGc(stack.kernel, heap, technique)
    with gc:
        report = gc.collect()
    assert report.kind == "full"
    assert report.n_freed == 20
    assert heap.n_live == 10
    assert heap.alive[keep].all()
    assert not heap.alive[garbage].any()


@pytest.mark.parametrize("technique", TECHS)
def test_minor_collect_frees_young_garbage_only(env, technique):
    stack, heap = env
    build_list(heap, 10)
    gc = BoehmGc(stack.kernel, heap, technique)
    with gc:
        gc.collect()  # full: promotes survivors to old
        young_garbage = heap.alloc(15, 256)
        young_kept = heap.alloc(5, 256)
        heap.add_roots(young_kept[:1])
        heap.set_refs(young_kept[:-1], young_kept[1:])
        report = gc.collect()
        assert report.kind == "minor"
        assert report.n_freed == 15
        assert heap.alive[young_kept].all()
        assert not heap.alive[young_garbage].any()
        assert heap.n_live == 15


@pytest.mark.parametrize("technique", TECHS)
def test_minor_collect_sees_old_to_young_references(env, technique):
    """The write-barrier invariant: a young object kept alive only by an
    old object must survive a minor cycle (the old page is dirty)."""
    stack, heap = env
    old = build_list(heap, 4)
    gc = BoehmGc(stack.kernel, heap, technique)
    with gc:
        gc.collect()  # old generation established
        young = heap.alloc(3, 256)
        heap.set_refs(young[:-1], young[1:])
        # Only reference: from an old object (dirties the old page).
        heap.set_refs(old[-1:], young[:1])
        report = gc.collect()
        assert heap.alive[young].all(), "young chain wrongly collected"
        assert report.n_freed == 0


def test_minor_cycle_scans_far_less_than_full(env):
    stack, heap = env
    build_list(heap, 2000, size=64)
    gc = BoehmGc(stack.kernel, heap, Technique.ORACLE)
    with gc:
        full = gc.collect()
        heap.alloc(10, 64)
        minor = gc.collect()
    assert minor.n_visited < full.n_visited / 10
    assert minor.n_scanned_pages < full.n_scanned_pages


def test_threshold_trigger(env):
    stack, heap = env
    build_list(heap, 4)
    gc = BoehmGc(
        stack.kernel, heap, Technique.ORACLE,
        GcParams(threshold_bytes=16 * 1024),
    )
    with gc:
        assert gc.maybe_collect() is None or heap.allocated_bytes_since_gc == 0
        heap.alloc(100, 256)  # 25 KiB > threshold
        report = gc.maybe_collect()
        assert report is not None
        assert heap.allocated_bytes_since_gc == 0


def test_full_every_forces_periodic_full(env):
    stack, heap = env
    build_list(heap, 4)
    gc = BoehmGc(
        stack.kernel, heap, Technique.ORACLE, GcParams(full_every=2)
    )
    with gc:
        kinds = [gc.collect().kind for _ in range(4)]
    assert kinds == ["full", "minor", "full", "minor"]


def test_collect_before_start_rejected(env):
    stack, heap = env
    gc = BoehmGc(stack.kernel, heap)
    with pytest.raises(GcError):
        gc.collect()
    gc.start()
    with pytest.raises(GcError):
        gc.start()
    gc.stop()


def test_pause_times_recorded(env):
    stack, heap = env
    build_list(heap, 100)
    gc = BoehmGc(stack.kernel, heap, Technique.PROC)
    with gc:
        gc.collect()
        heap.alloc(10, 256)
        gc.collect()
    assert len(gc.cycles) == 2
    assert all(c.pause_us > 0 for c in gc.cycles)
    assert gc.total_gc_us == pytest.approx(sum(c.pause_us for c in gc.cycles))


def test_spml_first_cycle_dominates_later_cycles(env):
    """Fig. 5's mechanism: SPML pays reverse mapping in the first cycle,
    then reuses the cached translations."""
    stack, heap = env
    ids = build_list(heap, 3000, size=64)
    gc = BoehmGc(stack.kernel, heap, Technique.SPML)
    with gc:
        # The app dirties its working set after tracking begins (as in
        # the paper: Boehm tracks from application start).
        heap.write_objs(ids)
        first = gc.collect()
        for i in range(3):
            # Mutate existing objects: their GPA -> GVA translations are
            # already cached, so later cycles skip the reverse mapping
            # (the paper's "reuses the addresses collected during the
            # first cycle").
            heap.write_objs(ids[i::3])
            gc.collect()
    later_max = max(c.pause_us for c in gc.cycles[1:])
    assert first.n_dirty_pages > 40
    assert first.pause_us > 3 * later_max


def test_memory_returns_to_heap_after_collect(env):
    stack, heap = env
    build_list(heap, 8, size=4096)
    garbage = heap.alloc(64, 4096)
    pages_before = heap._next_heap_vpn
    gc = BoehmGc(stack.kernel, heap, Technique.ORACLE)
    with gc:
        gc.collect()
    # Freed pages are reusable without growing the heap.
    heap.alloc(64, 4096)
    assert heap._next_heap_vpn == pages_before


def test_gc_cycle_reports_live_after(env):
    stack, heap = env
    build_list(heap, 10)
    heap.alloc(5, 256)
    gc = BoehmGc(stack.kernel, heap, Technique.ORACLE)
    with gc:
        report = gc.collect()
    assert report.live_after == 10 == heap.n_live
