"""Tests for the GC heap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.errors import GcError
from repro.guest.kernel import GuestKernel
from repro.hypervisor.hypervisor import Hypervisor
from repro.trackers.boehm.heap import GcHeap


@pytest.fixture()
def heap(stack):
    proc = stack.kernel.spawn("app", n_pages=512)
    return GcHeap(stack.kernel, proc, heap_pages=256)


def test_alloc_packs_small_objects(heap):
    ids = heap.alloc(10, 512)  # 8 per page
    pages = heap.obj_page[ids]
    assert len(np.unique(pages)) == 2
    assert heap.n_live == 10
    assert heap.total_allocated_objects == 10


def test_alloc_continues_partial_page(heap):
    a = heap.alloc(3, 1024)  # 4 per page -> 1 slot left
    b = heap.alloc(1, 1024)
    assert heap.obj_page[b[0]] == heap.obj_page[a[0]]
    c = heap.alloc(1, 1024)  # new page
    assert heap.obj_page[c[0]] != heap.obj_page[a[0]]


def test_alloc_large_objects_span_pages(heap):
    ids = heap.alloc(2, 8192)  # 2 pages each
    assert heap.obj_span[ids[0]] == 2
    assert heap.obj_page[ids[1]] - heap.obj_page[ids[0]] == 2


def test_alloc_dirty_pages_visible_to_tracking(stack, heap):
    from repro.core.tracking import Technique, make_tracker

    tracker = make_tracker(Technique.ORACLE, stack.kernel, heap.process)
    with tracker:
        ids = heap.alloc(4, 2048)
        dirty = set(int(v) for v in tracker.collect())
    assert set(int(p) for p in heap.obj_page[ids]) <= dirty


def test_set_refs_and_neighbors(heap):
    ids = heap.alloc(4, 256)
    heap.set_refs([ids[0], ids[0], ids[1]], [ids[1], ids[2], ids[3]])
    out = set(int(x) for x in heap.out_neighbors(ids[:1]))
    assert out == {int(ids[1]), int(ids[2])}
    assert heap.n_edges == 3


def test_set_refs_validation(heap):
    ids = heap.alloc(2, 256)
    with pytest.raises(GcError):
        heap.set_refs([ids[0]], [ids[0], ids[1]])
    heap.free_objects(ids[1:])
    with pytest.raises(GcError):
        heap.set_refs([ids[0]], [ids[1]])


def test_objects_on_pages(heap):
    a = heap.alloc(8, 512)  # one page
    b = heap.alloc(8, 512)  # next page
    page_a = int(heap.obj_page[a[0]])
    got = set(int(x) for x in heap.objects_on_pages(np.array([page_a])))
    assert got == set(int(x) for x in a)


def test_free_releases_empty_pages_and_reuses(stack, heap):
    ids = heap.alloc(8, 512)  # exactly one page
    page = int(heap.obj_page[ids[0]])
    free_frames = stack.vm.guest_frames.n_free
    heap.free_objects(ids)
    assert heap.page_live[page] == 0
    assert not heap.process.space.pt.present_mask([page]).any()
    assert stack.vm.guest_frames.n_free == free_frames + 1
    # Page and ids get reused.
    again = heap.alloc(8, 512)
    assert int(heap.obj_page[again[0]]) == page
    assert set(int(x) for x in again) == set(int(x) for x in ids)


def test_partial_free_keeps_page(heap):
    ids = heap.alloc(8, 512)
    page = int(heap.obj_page[ids[0]])
    heap.free_objects(ids[:4])
    assert heap.page_live[page] == 4
    assert heap.process.space.pt.present_mask([page]).all()


def test_double_free_rejected(heap):
    ids = heap.alloc(2, 256)
    heap.free_objects(ids)
    with pytest.raises(GcError):
        heap.free_objects(ids)


def test_free_large_object_releases_all_span_pages(stack, heap):
    ids = heap.alloc(1, 3 * 4096)
    free_frames = stack.vm.guest_frames.n_free
    heap.free_objects(ids)
    assert stack.vm.guest_frames.n_free == free_frames + 3


def test_roots_validation(heap):
    ids = heap.alloc(2, 256)
    heap.add_roots(ids[:1])
    assert int(ids[0]) in heap.roots
    heap.remove_roots(ids[:1])
    heap.free_objects(ids[1:])
    with pytest.raises(GcError):
        heap.add_roots(ids[1:])


def test_compact_edges_drops_dead(heap):
    ids = heap.alloc(3, 256)
    heap.set_refs([ids[0], ids[1]], [ids[1], ids[2]])
    heap.free_objects(ids[1:2])
    heap.compact_edges()
    assert heap.n_edges == 0  # both edges touched the dead object


def test_heap_exhaustion(stack):
    proc = stack.kernel.spawn("small", n_pages=32)
    heap = GcHeap(stack.kernel, proc, heap_pages=2)
    heap.alloc(2, 4096)
    with pytest.raises(GcError):
        heap.alloc(1, 4096)


def test_alloc_charges_tracked_compute(stack, heap):
    from repro.core.clock import World

    before = stack.clock.world_us(World.TRACKED)
    heap.alloc(100, 64)
    assert stack.clock.world_us(World.TRACKED) > before


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=50),
            st.sampled_from([64, 256, 1024, 4096]),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_property_page_live_matches_objects(sizes):
    clock = SimClock()
    hv = Hypervisor(clock, CostModel(), host_mem_mb=64)
    vm = hv.create_vm("vm", mem_mb=16)
    kernel = GuestKernel(vm)
    proc = kernel.spawn("p", n_pages=2048)
    heap = GcHeap(kernel, proc, heap_pages=1024)
    all_ids = []
    for n, s in sizes:
        all_ids.append(heap.alloc(n, s))
    # page_live sums to the number of (object, page) incidences.
    ids = np.concatenate(all_ids)
    expected = int(heap.obj_span[ids].sum())
    assert int(heap.page_live.sum()) == expected
    # Free everything: all counts return to zero.
    heap.free_objects(ids)
    assert int(heap.page_live.sum()) == 0
    assert heap.n_live == 0


def test_replace_ref_swaps_pointer_cell(heap):
    ids = heap.alloc(3, 256)
    heap.set_refs(ids[:1], ids[1:2])
    heap.replace_ref(int(ids[0]), int(ids[1]), int(ids[2]))
    out = set(int(x) for x in heap.out_neighbors(ids[:1]))
    assert out == {int(ids[2])}
    assert heap.n_edges == 1
    # Clearing to NULL drops the edge entirely.
    heap.replace_ref(int(ids[0]), int(ids[2]), None)
    assert heap.out_neighbors(ids[:1]).size == 0


def test_replace_ref_validation(heap):
    ids = heap.alloc(2, 256)
    with pytest.raises(GcError):
        heap.replace_ref(int(ids[0]), int(ids[1]), None)  # no such edge
    heap.set_refs(ids[:1], ids[1:2])
    heap.free_objects(ids[:1])
    with pytest.raises(GcError):
        heap.replace_ref(int(ids[0]), int(ids[1]), None)  # dead source
