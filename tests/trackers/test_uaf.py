"""Tests for the use-after-free mitigator."""

import pytest

from repro.core.tracking import Technique
from repro.errors import GcError
from repro.trackers.boehm import GcHeap
from repro.trackers.uaf import UafMitigator

TECHS = [Technique.PROC, Technique.SPML, Technique.EPML, Technique.ORACLE]


@pytest.fixture()
def heap(stack):
    proc = stack.kernel.spawn("app", n_pages=2048)
    return GcHeap(stack.kernel, proc, heap_pages=1024)


@pytest.mark.parametrize("technique", TECHS)
def test_unreferenced_quarantine_released_after_scan(stack, heap, technique):
    m = UafMitigator(stack.kernel, heap, technique)
    with m:
        ids = heap.alloc(10, 128)
        m.qfree(ids)  # nobody points at them
        report = m.collect()
    assert report.n_released == 10
    assert m.quarantine_size == 0
    assert heap.n_live == 0


@pytest.mark.parametrize("technique", TECHS)
def test_referenced_quarantine_retained(stack, heap, technique):
    """The mitigation property: memory with dangling pointers into it is
    never recycled, so the dangling dereference stays benign."""
    m = UafMitigator(stack.kernel, heap, technique)
    with m:
        holder = heap.alloc(1, 128)
        victim = heap.alloc(1, 128)
        heap.set_refs(holder, victim)  # a pointer the app forgets about
        m.qfree(victim)  # buggy free: holder still points at victim
        report = m.collect()
        assert report.n_released == 0
        assert m.is_quarantined(int(victim[0]))
        assert heap.alive[victim].all()  # memory still valid: UAF benign


@pytest.mark.parametrize("technique", TECHS)
def test_release_once_dangling_pointer_overwritten(stack, heap, technique):
    m = UafMitigator(stack.kernel, heap, technique)
    with m:
        holder = heap.alloc(1, 128)
        victim = heap.alloc(1, 128)
        other = heap.alloc(1, 128)
        heap.set_refs(holder, victim)
        m.qfree(victim)
        m.collect()
        assert m.quarantine_size == 1
        # The app overwrites the pointer cell (dirties holder's page).
        heap.replace_ref(int(holder[0]), int(victim[0]), int(other[0]))
        report = m.collect()
    assert report.n_released == 1
    assert m.quarantine_size == 0


def test_incremental_scan_touches_only_dirty_pages(stack, heap):
    m = UafMitigator(stack.kernel, heap, Technique.ORACLE)
    with m:
        ids = heap.alloc(2000, 64)
        heap.add_roots(ids[:1])
        full = m.collect()
        assert full.kind == "full"
        heap.write_objs(ids[:32])  # one page's worth of mutation
        inc = m.collect()
        assert inc.kind == "incremental"
        assert inc.n_scanned < full.n_scanned / 10


def test_qfree_validation(stack, heap):
    m = UafMitigator(stack.kernel, heap, Technique.ORACLE)
    ids = heap.alloc(2, 128)
    m.qfree(ids[:1])
    with pytest.raises(GcError):
        m.qfree(ids[:1])  # double free caught at the allocator
    heap.free_objects(ids[1:])
    with pytest.raises(GcError):
        m.qfree(ids[1:])  # free of dead object
    with pytest.raises(GcError):
        m.collect()  # before start


def test_quarantine_pressure_drops_over_cycles(stack, heap):
    """An alloc/free-heavy loop: quarantine drains as scans prove safety."""
    m = UafMitigator(stack.kernel, heap, Technique.EPML)
    with m:
        for _ in range(5):
            ids = heap.alloc(200, 64)
            heap.write_objs(ids)
            m.qfree(ids)
            m.collect()
        assert m.quarantine_size == 0
        total_released = sum(c.n_released for c in m.cycles)
        assert total_released == 1000
