"""Tests for the CriuSession monitored-dump API."""

import numpy as np
import pytest

from repro.core.tracking import Technique
from repro.errors import CheckpointError
from repro.trackers.criu import Criu, restore


def make_app(stack, n_pages=64):
    proc = stack.kernel.spawn("app", n_pages=n_pages)
    proc.space.add_vma(n_pages)
    stack.kernel.access(proc, np.arange(n_pages), True)
    return proc


def test_session_full_dump_then_incremental(stack):
    proc = make_app(stack)
    session = Criu(stack.kernel, Technique.EPML).begin(proc)
    r1 = session.dump(full=True)
    assert r1.pages_dumped == 64
    stack.kernel.access(proc, [3, 4], True)
    r2 = session.dump()
    assert r2.pages_dumped == 2
    image = session.finish()
    clone = restore(stack.kernel, image)
    got = stack.kernel.vm.mmu.read_page_contents(
        clone.space.pt, clone.space.mapped_vpns()
    )
    want = stack.kernel.vm.mmu.read_page_contents(
        proc.space.pt, proc.space.mapped_vpns()
    )
    assert np.array_equal(got, want)


def test_session_full_dump_resets_interval(stack):
    proc = make_app(stack)
    session = Criu(stack.kernel, Technique.PROC).begin(proc)
    session.dump(full=True)
    # Nothing dirtied since the full dump: incremental dump is empty.
    r = session.dump()
    assert r.pages_dumped == 0
    session.finish()


def test_session_dump_after_finish_rejected(stack):
    proc = make_app(stack)
    session = Criu(stack.kernel, Technique.ORACLE).begin(proc)
    session.dump()
    session.finish()
    with pytest.raises(CheckpointError):
        session.dump()


def test_session_init_cost_charged_once(stack):
    proc = make_app(stack)
    session = Criu(stack.kernel, Technique.EPML).begin(proc)
    r1 = session.dump()
    r2 = session.dump()
    assert r1.phases.init_us > 0
    assert r2.phases.init_us == 0.0
    session.finish()


def test_session_process_resumes_after_each_dump(stack):
    proc = make_app(stack)
    session = Criu(stack.kernel, Technique.EPML).begin(proc)
    session.dump()
    stack.kernel.access(proc, [0], True)  # still runnable
    session.dump()
    session.finish()


def test_custom_disk_write_cost(stack):
    proc = make_app(stack)
    slow = Criu(stack.kernel, Technique.ORACLE, disk_write_us_per_page=100.0)
    _, report = slow.checkpoint(proc)
    assert report.phases.mw_us >= 64 * 100.0
