"""Tests for checkpoint-image persistence and cross-VM restore."""

import numpy as np
import pytest

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.core.tracking import Technique
from repro.errors import CheckpointError
from repro.guest.kernel import GuestKernel
from repro.hypervisor.hypervisor import Hypervisor
from repro.trackers.criu import CheckpointImage, Criu, restore


def make_app(stack, n_pages=64):
    proc = stack.kernel.spawn("app", n_pages=n_pages)
    proc.space.add_vma(n_pages, "heap")
    stack.kernel.access(proc, np.arange(n_pages), True)
    return proc


def test_image_save_load_roundtrip(stack, tmp_path):
    proc = make_app(stack)
    image, _ = Criu(stack.kernel, Technique.EPML).checkpoint(proc)
    path = tmp_path / "app.img.npz"
    image.save(path)
    loaded = CheckpointImage.load(path)
    assert loaded.pid == image.pid
    assert loaded.name == image.name
    assert loaded.space_pages == image.space_pages
    assert [(v.start_vpn, v.n_pages, v.name) for v in loaded.vmas] == [
        (v.start_vpn, v.n_pages, v.name) for v in image.vmas
    ]
    assert len(loaded.memory) == len(image.memory)
    for a, b in zip(loaded.memory, image.memory):
        assert np.array_equal(a.vpns, b.vpns)
        assert np.array_equal(a.tokens, b.tokens)


def test_restore_from_disk_matches_original(stack, tmp_path):
    proc = make_app(stack)
    expected = stack.kernel.vm.mmu.read_page_contents(
        proc.space.pt, proc.space.mapped_vpns()
    )
    image, _ = Criu(stack.kernel, Technique.PROC).checkpoint(proc)
    path = tmp_path / "app.img.npz"
    image.save(path)
    clone = restore(stack.kernel, CheckpointImage.load(path))
    got = stack.kernel.vm.mmu.read_page_contents(
        clone.space.pt, clone.space.mapped_vpns()
    )
    assert np.array_equal(got, expected)


def test_cross_vm_restore(stack, tmp_path):
    """A checkpoint taken in one VM restores into another (process
     'migration' via image file)."""
    proc = make_app(stack)
    expected = stack.kernel.vm.mmu.read_page_contents(
        proc.space.pt, proc.space.mapped_vpns()
    )
    image, _ = Criu(stack.kernel, Technique.EPML).checkpoint(proc)
    path = tmp_path / "app.img.npz"
    image.save(path)

    # An entirely separate host + VM.
    clock2 = SimClock()
    hv2 = Hypervisor(clock2, CostModel(), host_mem_mb=64)
    vm2 = hv2.create_vm("dst", mem_mb=16)
    kernel2 = GuestKernel(vm2)
    clone = restore(kernel2, CheckpointImage.load(path))
    got = kernel2.vm.mmu.read_page_contents(
        clone.space.pt, clone.space.mapped_vpns()
    )
    assert np.array_equal(got, expected)
    # And the restored process is runnable in its new home.
    kernel2.access(clone, [0, 1], True)


def test_load_corrupt_image_rejected(tmp_path):
    path = tmp_path / "bad.npz"
    np.savez_compressed(path, junk=np.arange(4))
    with pytest.raises(CheckpointError):
        CheckpointImage.load(path)


def test_empty_image_roundtrip(tmp_path):
    image = CheckpointImage(pid=9, name="x", space_pages=16)
    path = tmp_path / "empty.npz"
    image.save(path)
    loaded = CheckpointImage.load(path)
    assert loaded.memory == []
    assert loaded.space_pages == 16
