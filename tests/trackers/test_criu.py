"""Tests for CRIU checkpoint/restore."""

import numpy as np
import pytest

from repro.core.tracking import Technique
from repro.errors import CheckpointError
from repro.trackers.criu import Criu, iterative_predump, restore

TECHS = [Technique.PROC, Technique.UFD, Technique.SPML, Technique.EPML,
         Technique.ORACLE]


def spawn_app(stack, n_pages=64):
    proc = stack.kernel.spawn("app", n_pages=n_pages)
    proc.space.add_vma(n_pages, "heap")
    stack.kernel.access(proc, np.arange(n_pages), True)
    return proc


@pytest.mark.parametrize("technique", TECHS)
def test_checkpoint_restore_roundtrip(stack, technique):
    proc = spawn_app(stack)
    expected = stack.kernel.vm.mmu.read_page_contents(
        proc.space.pt, proc.space.mapped_vpns()
    )
    criu = Criu(stack.kernel, technique)
    image, report = criu.checkpoint(proc)
    clone = restore(stack.kernel, image)
    got = stack.kernel.vm.mmu.read_page_contents(
        clone.space.pt, clone.space.mapped_vpns()
    )
    assert np.array_equal(got, expected)
    assert report.pages_dumped >= 64
    assert report.phases.total_us > 0


@pytest.mark.parametrize("technique", TECHS)
def test_predump_rounds_capture_mutations(stack, technique):
    proc = spawn_app(stack)
    criu = Criu(stack.kernel, technique)

    def mutate():
        stack.kernel.access(proc, [1, 2, 3], True)

    image, report = criu.checkpoint(proc, predump_rounds=2,
                                    run_between_rounds=mutate)
    # Rounds: full dump + 2 pre-dumps + final.
    assert report.rounds == 4
    # Restored contents equal the final state.
    expected = stack.kernel.vm.mmu.read_page_contents(
        proc.space.pt, proc.space.mapped_vpns()
    )
    clone = restore(stack.kernel, image)
    got = stack.kernel.vm.mmu.read_page_contents(
        clone.space.pt, clone.space.mapped_vpns()
    )
    assert np.array_equal(got, expected)


def test_checkpoint_resumes_process(stack):
    proc = spawn_app(stack)
    Criu(stack.kernel, Technique.EPML).checkpoint(proc)
    # Process can keep running after the checkpoint.
    stack.kernel.access(proc, [0], True)


def test_predump_requires_runner(stack):
    proc = spawn_app(stack)
    with pytest.raises(CheckpointError):
        Criu(stack.kernel).checkpoint(proc, predump_rounds=1)
    with pytest.raises(CheckpointError):
        Criu(stack.kernel).checkpoint(proc, predump_rounds=-1)


def test_md_phase_dominated_by_reverse_mapping_for_spml(stack):
    """SPML's checkpoint MD >> EPML's (Fig. 8's mechanism)."""
    md = {}
    for technique in (Technique.SPML, Technique.EPML):
        proc = spawn_app(stack, n_pages=256)
        criu = Criu(stack.kernel, technique)

        def mutate(p=proc):
            stack.kernel.access(p, np.arange(200), True)

        _, report = criu.checkpoint(proc, predump_rounds=1,
                                    run_between_rounds=mutate)
        md[technique] = report.phases.md_us
    assert md[Technique.SPML] > 10 * md[Technique.EPML]


def test_mw_phase_cheaper_with_ring_buffer_techniques(stack):
    """/proc's MW includes the pagemap walk (Fig. 7's mechanism)."""
    mw = {}
    for technique in (Technique.PROC, Technique.EPML):
        proc = spawn_app(stack, n_pages=256)
        criu = Criu(stack.kernel, technique)

        def mutate(p=proc):
            stack.kernel.access(p, np.arange(50), True)

        _, report = criu.checkpoint(proc, predump_rounds=1,
                                    run_between_rounds=mutate)
        # Compare only the incremental rounds: subtract the full dump,
        # which is identical across techniques (present-page writes).
        full_dump = 256 * criu.disk_write_us_per_page
        mw[technique] = report.phases.mw_us - full_dump
    assert mw[Technique.EPML] < mw[Technique.PROC]


def test_final_freeze_dumps_residue(stack):
    proc = spawn_app(stack)
    criu = Criu(stack.kernel, Technique.EPML)

    def mutate():
        stack.kernel.access(proc, [7], True)

    image, report = criu.checkpoint(proc, predump_rounds=1,
                                    run_between_rounds=mutate)
    # Mutation happened before the final round; dirty residue captured
    # either in the pre-dump or in the freeze round.
    assert report.pages_dumped >= 64 + 1


def test_iterative_predump_converges(stack):
    proc = spawn_app(stack, n_pages=128)

    def run_round():
        stack.kernel.access(proc, np.arange(8), True)

    image, report = iterative_predump(
        stack.kernel, proc, Technique.EPML, run_round,
        max_rounds=10, threshold_pages=16,
    )
    assert report.converged
    assert report.pages_per_round[0] == 128
    assert report.downtime_us < report.total_us
    clone = restore(stack.kernel, image)
    expected = stack.kernel.vm.mmu.read_page_contents(
        proc.space.pt, proc.space.mapped_vpns()
    )
    got = stack.kernel.vm.mmu.read_page_contents(
        clone.space.pt, clone.space.mapped_vpns()
    )
    assert np.array_equal(got, expected)


def test_iterative_predump_nonconvergent_still_correct(stack):
    proc = spawn_app(stack, n_pages=64)

    def hot_round():
        stack.kernel.access(proc, np.arange(64), True)

    image, report = iterative_predump(
        stack.kernel, proc, Technique.ORACLE, hot_round,
        max_rounds=3, threshold_pages=1,
    )
    assert not report.converged
    clone = restore(stack.kernel, image)
    expected = stack.kernel.vm.mmu.read_page_contents(
        proc.space.pt, proc.space.mapped_vpns()
    )
    got = stack.kernel.vm.mmu.read_page_contents(
        clone.space.pt, clone.space.mapped_vpns()
    )
    assert np.array_equal(got, expected)


def test_restore_empty_image_rejected(stack):
    from repro.trackers.criu.images import CheckpointImage

    with pytest.raises(CheckpointError):
        restore(stack.kernel, CheckpointImage(pid=1, name="x", space_pages=4))


def test_image_flatten_keeps_latest_version(stack):
    proc = spawn_app(stack, n_pages=8)
    criu = Criu(stack.kernel, Technique.ORACLE)

    def mutate():
        stack.kernel.access(proc, [0], True)  # page 0 changes every round

    image, _ = criu.checkpoint(proc, predump_rounds=2,
                               run_between_rounds=mutate)
    flat = image.flatten()
    # Page 0 appears once, with its latest token.
    assert int((flat.vpns == 0).sum()) == 1
    current = stack.kernel.vm.mmu.read_page_contents(
        proc.space.pt, np.array([0])
    )[0]
    assert flat.tokens[flat.vpns == 0][0] == current
