"""Tests for OoH-SPP and the guarded secure heap (paper §III-D)."""

import pytest

from repro.core.oohspp import OohSpp
from repro.errors import GcError, TrackingError
from repro.hw.spp import SUBPAGE_BYTES
from repro.trackers.secureheap import GuardMode, OverflowDetected, SecureHeap


@pytest.fixture()
def spp(stack):
    module = OohSpp(stack.kernel)
    module.init()
    return module


def make_heap(stack, spp, mode):
    proc = stack.kernel.spawn("app", n_pages=4096)
    return SecureHeap(stack.kernel, proc, spp, mode, heap_pages=2048)


# ---------------------------------------------------------------------
# OoH-SPP module
# ---------------------------------------------------------------------
def test_spp_init_once(stack, spp):
    with pytest.raises(TrackingError):
        spp.init()


def test_spp_protect_requires_init(stack):
    module = OohSpp(stack.kernel)
    proc = stack.kernel.spawn("p", n_pages=8)
    proc.space.add_vma(8)
    with pytest.raises(TrackingError):
        module.protect_page(proc, 0, 0)


def test_guard_subpages_blocks_exactly_those(stack, spp):
    proc = stack.kernel.spawn("p", n_pages=8)
    proc.space.add_vma(8)
    spp.guard_subpages(proc, 0, [5, 7])
    assert stack.kernel.access_subpage(proc, 0, 4, True)
    assert not stack.kernel.access_subpage(proc, 0, 5, True)
    assert stack.kernel.access_subpage(proc, 0, 6, True)
    assert not stack.kernel.access_subpage(proc, 0, 7, True)


def test_violation_delivered_to_guest_handler(stack, spp):
    proc = stack.kernel.spawn("p", n_pages=8)
    proc.space.add_vma(8)
    seen = []
    spp.add_violation_handler(lambda pid, vpn, sub: seen.append((pid, vpn, sub)))
    spp.guard_subpages(proc, 2, [9])
    stack.kernel.access_subpage(proc, 2, 9, True)
    assert seen == [(proc.pid, 2, 9)]
    assert spp.n_violations_delivered == 1


def test_violation_costs_a_vmexit(stack, spp):
    proc = stack.kernel.spawn("p", n_pages=8)
    proc.space.add_vma(8)
    spp.guard_subpages(proc, 0, [0])
    exits = stack.vm.vcpu.n_vmexits
    stack.kernel.access_subpage(proc, 0, 0, True)
    assert stack.vm.vcpu.n_vmexits == exits + 1


def test_reads_never_violate(stack, spp):
    proc = stack.kernel.spawn("p", n_pages=8)
    proc.space.add_vma(8)
    spp.guard_subpages(proc, 0, list(range(32)))
    assert stack.kernel.access_subpage(proc, 0, 3, write=False)


# ---------------------------------------------------------------------
# secure heap
# ---------------------------------------------------------------------
@pytest.mark.parametrize("mode", [GuardMode.PAGE, GuardMode.SUBPAGE])
def test_in_bounds_writes_succeed(stack, spp, mode):
    heap = make_heap(stack, spp, mode)
    a = heap.alloc(300)
    heap.write(a, 0, 300)  # full object write
    assert heap.overflows_detected == 0


def test_overflow_detected_synchronously_subpage(stack, spp):
    heap = make_heap(stack, spp, GuardMode.SUBPAGE)
    a = heap.alloc(300)  # 3 sub-pages usable (384 bytes)
    with pytest.raises(OverflowDetected):
        heap.write(a, 0, a.usable_subpages * SUBPAGE_BYTES + 1)
    assert heap.overflows_detected == 1


def test_page_guards_miss_intra_page_overruns_but_catch_page_crossers(
    stack, spp
):
    """The weakness that motivates SPP: a guard *page* only fires when
    the overrun crosses the page boundary; SPP's sub-page guard fires on
    the very first out-of-bounds sub-page."""
    heap = make_heap(stack, spp, GuardMode.PAGE)
    a = heap.alloc(300)
    # Intra-page overrun: undetected by page-granular guards.
    heap.write(a, 0, 2000)
    assert heap.overflows_detected == 0
    # Crossing into the guard page: detected.
    with pytest.raises(OverflowDetected):
        heap.write(a, 0, 4096 + 1)
    assert heap.overflows_detected == 1


def test_subpage_guard_detects_small_overrun(stack, spp):
    """A one-byte overrun past the rounded-up object hits the guard
    sub-page immediately — the 'synchronous detection' property."""
    heap = make_heap(stack, spp, GuardMode.SUBPAGE)
    a = heap.alloc(SUBPAGE_BYTES)  # exactly one sub-page
    heap.write(a, 0, SUBPAGE_BYTES)
    with pytest.raises(OverflowDetected) as exc:
        heap.write(a, SUBPAGE_BYTES, 1)
    assert exc.value.alloc_id == a.alloc_id


def test_neighbours_unaffected_by_guards(stack, spp):
    heap = make_heap(stack, spp, GuardMode.SUBPAGE)
    a = heap.alloc(SUBPAGE_BYTES)
    b = heap.alloc(SUBPAGE_BYTES)
    assert b.vpn == a.vpn  # packed into the same page
    heap.write(b, 0, SUBPAGE_BYTES)
    heap.write(a, 0, SUBPAGE_BYTES)


def test_waste_reduction_factor_about_32(stack, spp):
    """§III-D: SPP cuts guard waste by ~ the 32 sub-pages per page."""
    page_heap = make_heap(stack, spp, GuardMode.PAGE)
    sub_heap = make_heap(stack, spp, GuardMode.SUBPAGE)
    for _ in range(64):
        page_heap.alloc(SUBPAGE_BYTES)
        sub_heap.alloc(SUBPAGE_BYTES)
    # Pure guard bytes: 4096 vs 128 per allocation = exactly 32x.
    assert page_heap.guard_waste_bytes / sub_heap.guard_waste_bytes >= 32


def test_alloc_validation(stack, spp):
    heap = make_heap(stack, spp, GuardMode.SUBPAGE)
    with pytest.raises(GcError):
        heap.alloc(0)
    with pytest.raises(GcError):
        heap.alloc(5000)


def test_heap_exhaustion(stack, spp):
    proc = stack.kernel.spawn("p", n_pages=64)
    heap = SecureHeap(stack.kernel, proc, spp, GuardMode.PAGE, heap_pages=4)
    heap.alloc(100)  # 2 pages (object + guard)
    heap.alloc(100)  # 2 more
    with pytest.raises(GcError):
        heap.alloc(100)


def test_unprotect_page_restores_writes(stack, spp):
    proc = stack.kernel.spawn("p", n_pages=8)
    proc.space.add_vma(8)
    spp.guard_subpages(proc, 1, [4])
    assert not stack.kernel.access_subpage(proc, 1, 4, True)
    spp.unprotect_page(proc, 1)
    assert stack.kernel.access_subpage(proc, 1, 4, True)


def test_spp_close_unregisters_handler(stack, spp):
    proc = stack.kernel.spawn("p", n_pages=8)
    proc.space.add_vma(8)
    seen = []
    spp.add_violation_handler(lambda *a: seen.append(a))
    spp.close()
    with pytest.raises(TrackingError):
        spp.protect_page(proc, 0, 0)
    # Re-init works after close.
    spp2 = OohSpp(stack.kernel)
    spp2.init()
    spp2.close()
