"""Property-based tests for the GC: safety under random heap histories."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.core.tracking import Technique
from repro.guest.kernel import GuestKernel
from repro.hypervisor.hypervisor import Hypervisor
from repro.trackers.boehm import BoehmGc, GcHeap, GcParams


def fresh_heap():
    clock = SimClock()
    hv = Hypervisor(clock, CostModel(), host_mem_mb=64)
    vm = hv.create_vm("vm0", mem_mb=16)
    kernel = GuestKernel(vm)
    proc = kernel.spawn("app", n_pages=2048)
    heap = GcHeap(kernel, proc, heap_pages=1024)
    return kernel, heap


def test_alloc_after_collect_grows_adjacency():
    """Regression: a collect caches the CSR adjacency; allocating
    afterwards grows the id space without adding edges, and marking must
    not index the stale (shorter) indptr with the new ids."""
    kernel, heap = fresh_heap()
    gc = BoehmGc(kernel, heap, Technique.ORACLE,
                 GcParams(threshold_bytes=1 << 30))
    gc.start()
    (a,) = heap.alloc(1, 64)
    heap.add_roots([int(a)])
    gc.collect()  # builds the CSR over a single object
    ids = heap.alloc(2, 64)
    heap.add_roots([int(ids[-1])])
    gc._did_full = False  # force a full cycle (full_mark walks the CSR)
    gc.collect()
    assert {int(a), int(ids[-1])} <= {int(i) for i in heap.live_ids()}
    gc.stop()


# One step of heap history.
step = st.one_of(
    st.tuples(st.just("alloc"), st.integers(1, 30),
              st.sampled_from([64, 256, 1024])),
    st.tuples(st.just("link"), st.integers(0, 10_000), st.integers(0, 10_000)),
    st.tuples(st.just("root"), st.integers(0, 10_000), st.just(0)),
    st.tuples(st.just("unroot"), st.integers(0, 10_000), st.just(0)),
    st.tuples(st.just("collect"), st.just(0), st.just(0)),
)


def reachable_from_roots(heap) -> set[int]:
    """Independent reachability computation (pure Python BFS)."""
    edges: dict[int, list[int]] = {}
    for s_arr, d_arr in zip(heap._edge_src, heap._edge_dst):
        for s, d in zip(s_arr, d_arr):
            edges.setdefault(int(s), []).append(int(d))
    seen = set()
    frontier = [r for r in heap.roots if heap.alive[r]]
    seen.update(frontier)
    while frontier:
        nxt = []
        for n in frontier:
            for d in edges.get(n, []):
                if d not in seen and heap.alive[d]:
                    seen.add(d)
                    nxt.append(d)
        frontier = nxt
    return seen


@settings(max_examples=30, deadline=None)
@given(steps=st.lists(step, min_size=1, max_size=40))
def test_property_rooted_objects_always_survive(steps):
    kernel, heap = fresh_heap()
    gc = BoehmGc(kernel, heap, Technique.ORACLE,
                 GcParams(threshold_bytes=1 << 30))
    gc.start()
    live_ids: list[int] = []
    try:
        for kind, a, b in steps:
            if kind == "alloc":
                ids = heap.alloc(a, b)
                live_ids.extend(int(i) for i in ids)
            elif kind == "link" and live_ids:
                src = live_ids[a % len(live_ids)]
                dst = live_ids[b % len(live_ids)]
                heap.set_refs([src], [dst])
            elif kind == "root" and live_ids:
                heap.add_roots([live_ids[a % len(live_ids)]])
            elif kind == "unroot" and live_ids:
                heap.remove_roots([live_ids[a % len(live_ids)]])
            elif kind == "collect":
                expected = reachable_from_roots(heap)
                gc.collect()
                survivors = set(int(i) for i in heap.live_ids())
                # Safety: everything reachable survived.
                assert expected <= survivors
                live_ids = [i for i in live_ids if heap.alive[i]]
        # Final full collection must be exact for full cycles.
        expected = reachable_from_roots(heap)
        gc._did_full = False  # force a full cycle
        gc.collect()
        survivors = set(int(i) for i in heap.live_ids())
        assert survivors == expected
    finally:
        gc.stop()


@settings(max_examples=30, deadline=None)
@given(steps=st.lists(step, min_size=1, max_size=40))
def test_property_page_live_consistency(steps):
    """page_live always equals the live (object, page) incidences."""
    kernel, heap = fresh_heap()
    gc = BoehmGc(kernel, heap, Technique.ORACLE,
                 GcParams(threshold_bytes=1 << 30))
    gc.start()
    live_ids: list[int] = []
    try:
        for kind, a, b in steps:
            if kind == "alloc":
                live_ids.extend(int(i) for i in heap.alloc(a, b))
            elif kind == "link" and live_ids:
                heap.set_refs([live_ids[a % len(live_ids)]],
                              [live_ids[b % len(live_ids)]])
            elif kind == "root" and live_ids:
                heap.add_roots([live_ids[a % len(live_ids)]])
            elif kind == "collect":
                gc.collect()
                live_ids = [i for i in live_ids if heap.alive[i]]
            live = heap.live_ids()
            assert int(heap.page_live.sum()) == int(heap.obj_span[live].sum())
    finally:
        gc.stop()
