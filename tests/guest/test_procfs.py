"""Tests for the /proc soft-dirty interface."""

import pytest

from repro.core.clock import World
from repro.core.costs import EV_CLEAR_REFS, EV_PF_KERNEL, EV_PT_WALK_USER


def setup_proc(stack, n_pages=32):
    proc = stack.kernel.spawn("tracked", n_pages=n_pages)
    proc.space.add_vma(n_pages)
    return proc


def test_fresh_pages_are_soft_dirty(stack):
    proc = setup_proc(stack)
    stack.kernel.access(proc, [0, 1], True)
    dirty = stack.kernel.procfs.pagemap_soft_dirty(proc)
    assert set(dirty) == {0, 1}


def test_clear_refs_resets_and_write_protects(stack):
    proc = setup_proc(stack)
    stack.kernel.access(proc, [0, 1, 2], True)
    n = stack.kernel.procfs.clear_refs(proc)
    assert n == 3
    assert stack.kernel.procfs.pagemap_soft_dirty(proc).size == 0
    # A write now faults (M5 kernel path) and re-sets soft-dirty.
    r = stack.kernel.access(proc, [1], True)
    assert r.n_wp_faults == 1
    assert list(stack.kernel.procfs.pagemap_soft_dirty(proc)) == [1]
    assert stack.clock.event_count(EV_PF_KERNEL) == 1


def test_untouched_pages_not_reported(stack):
    proc = setup_proc(stack)
    stack.kernel.access(proc, [0, 1, 2, 3], True)
    stack.kernel.procfs.clear_refs(proc)
    stack.kernel.access(proc, [2], True)
    stack.kernel.access(proc, [3], False)  # read only
    assert list(stack.kernel.procfs.pagemap_soft_dirty(proc)) == [2]


def test_clear_refs_flushes_tlb(stack):
    proc = setup_proc(stack)
    stack.kernel.access(proc, [0], True)
    flushes = proc.space.tlb.n_flushes
    stack.kernel.procfs.clear_refs(proc)
    assert proc.space.tlb.n_flushes == flushes + 1


def test_costs_charged_to_tracker(stack):
    proc = setup_proc(stack)
    stack.kernel.access(proc, [0], True)
    before = stack.clock.world_us(World.TRACKER)
    stack.kernel.procfs.clear_refs(proc)
    stack.kernel.procfs.pagemap_soft_dirty(proc)
    assert stack.clock.world_us(World.TRACKER) > before
    assert stack.clock.event_count(EV_CLEAR_REFS) == 1
    assert stack.clock.event_count(EV_PT_WALK_USER) == 1
    n = proc.space.n_pages
    assert stack.clock.event_us(EV_CLEAR_REFS) == pytest.approx(
        stack.costs.clear_refs_us(n)
    )


def test_pagemap_pfns_translates(stack):
    proc = setup_proc(stack)
    stack.kernel.access(proc, [0, 1], True)
    pfns = stack.kernel.procfs.pagemap_pfns(proc, proc.space.mapped_vpns())
    assert len(pfns) == 2
    assert len(set(int(x) for x in pfns)) == 2
