"""Multi-process guest behaviour: scheduling, isolation, accounting."""

import numpy as np
import pytest

from repro.core.clock import World


def test_round_robin_interleaving_fires_hooks_per_process(stack):
    a = stack.kernel.spawn("a", n_pages=8)
    b = stack.kernel.spawn("b", n_pages=8)
    order = []
    stack.kernel.scheduler.add_sched_out_hook(lambda p: order.append(p.name))
    # 50 ms interval (conftest): alternate compute slices.
    for _ in range(3):
        stack.kernel.compute(a, 30_000.0)
        stack.kernel.compute(b, 30_000.0)
    # 90 ms each -> one switch per process.
    assert order.count("a") == 1
    assert order.count("b") == 1


def test_compute_world_attribution_by_process(stack):
    a = stack.kernel.spawn("a", n_pages=8)
    b = stack.kernel.spawn("b", n_pages=8)
    stack.kernel.compute(a, 1000.0, world=World.TRACKED)
    stack.kernel.compute(b, 500.0, world=World.OTHER)
    assert stack.clock.world_us(World.TRACKED) == pytest.approx(1000.0)
    assert stack.clock.world_us(World.OTHER) == pytest.approx(500.0)


def test_address_spaces_fully_isolated(stack):
    a = stack.kernel.spawn("a", n_pages=16)
    a.space.add_vma(16)
    b = stack.kernel.spawn("b", n_pages=16)
    b.space.add_vma(16)
    stack.kernel.access(a, np.arange(16), True)
    stack.kernel.access(b, np.arange(16), True)
    # Same VPNs map to disjoint guest frames.
    ga = set(int(g) for g in a.space.pt.translate(np.arange(16)))
    gb = set(int(g) for g in b.space.pt.translate(np.arange(16)))
    assert not ga & gb
    # Contents are independent.
    ta = stack.kernel.vm.mmu.read_page_contents(a.space.pt, np.arange(16))
    tb = stack.kernel.vm.mmu.read_page_contents(b.space.pt, np.arange(16))
    assert not set(int(x) for x in ta) & set(int(x) for x in tb)


def test_many_processes_share_guest_memory_until_exhaustion(stack):
    procs = []
    per_proc = 1024
    spawned = 0
    while True:
        p = stack.kernel.spawn(f"p{spawned}", n_pages=per_proc)
        p.space.add_vma(per_proc)
        try:
            stack.kernel.access(p, np.arange(per_proc), True)
        except Exception:
            break
        procs.append(p)
        spawned += 1
        if spawned > 64:
            break
    # 32 MiB VM = 8192 frames -> about 8 such processes fit.
    assert 6 <= len(procs) <= 9
    # Freeing one lets another in.
    stack.kernel.exit_process(procs.pop())
    q = stack.kernel.spawn("late", n_pages=per_proc)
    q.space.add_vma(per_proc)
    stack.kernel.access(q, np.arange(per_proc), True)
