"""Tests for the interval scheduler (source of the paper's N)."""

import pytest

from repro.core.clock import SimClock
from repro.core.costs import EV_CONTEXT_SWITCH, CostModel
from repro.errors import ConfigurationError
from repro.guest.process import AddressSpace, Process
from repro.guest.scheduler import Scheduler


def make(interval=100.0):
    clock = SimClock()
    sched = Scheduler(clock, CostModel(), switch_interval_us=interval)
    proc = Process(pid=1, name="p", space=AddressSpace(4))
    return clock, sched, proc


def test_no_switch_below_interval():
    _, sched, proc = make(100.0)
    assert sched.notify_runtime(proc, 99.0) == 0
    assert sched.n_switches == 0


def test_switch_fires_at_interval_and_carries_remainder():
    _, sched, proc = make(100.0)
    assert sched.notify_runtime(proc, 150.0) == 1
    assert sched.notify_runtime(proc, 49.0) == 0
    assert sched.notify_runtime(proc, 1.0) == 1
    assert sched.n_switches == 2


def test_long_charge_fires_multiple_switches():
    _, sched, proc = make(100.0)
    assert sched.notify_runtime(proc, 1000.0) == 10


def test_hooks_called_out_then_in():
    _, sched, proc = make(10.0)
    order = []
    sched.add_sched_out_hook(lambda p: order.append(("out", p.pid)))
    sched.add_sched_in_hook(lambda p: order.append(("in", p.pid)))
    sched.notify_runtime(proc, 10.0)
    assert order == [("out", 1), ("in", 1)]
    assert proc.n_scheduled_out == 1
    assert proc.n_scheduled_in == 1


def test_remove_hooks():
    _, sched, proc = make(10.0)
    calls = []
    hook = lambda p: calls.append(p.pid)  # noqa: E731
    sched.add_sched_out_hook(hook)
    sched.remove_hooks(hook)
    sched.notify_runtime(proc, 20.0)
    assert calls == []


def test_context_switch_cost_charged():
    clock, sched, proc = make(10.0)
    sched.notify_runtime(proc, 10.0)
    # One pair = two M1 transitions at 0.315 us each.
    assert clock.event_count(EV_CONTEXT_SWITCH) == 2
    assert clock.event_us(EV_CONTEXT_SWITCH) == pytest.approx(0.63)


def test_per_process_accumulators_independent():
    _, sched, p1 = make(100.0)
    p2 = Process(pid=2, name="q", space=AddressSpace(4))
    sched.notify_runtime(p1, 60.0)
    sched.notify_runtime(p2, 60.0)
    assert sched.n_switches == 0
    assert sched.notify_runtime(p1, 40.0) == 1


def test_invalid_interval():
    with pytest.raises(ConfigurationError):
        Scheduler(SimClock(), CostModel(), switch_interval_us=0)


def test_deschedule_schedule_split():
    """deschedule/schedule fire out/in hooks independently (colocation
    modelling: the tracked process stays off-CPU while a tenant runs)."""
    _, sched, proc = make(1000.0)
    events = []
    sched.add_sched_out_hook(lambda p: events.append("out"))
    sched.add_sched_in_hook(lambda p: events.append("in"))
    sched.deschedule(proc)
    assert events == ["out"]
    assert proc.n_scheduled_out == 1
    assert proc.n_scheduled_in == 0
    sched.schedule(proc)
    assert events == ["out", "in"]
    assert proc.n_scheduled_in == 1


def test_switch_equals_deschedule_plus_schedule():
    clock, sched, proc = make(1000.0)
    sched.switch(proc)
    assert proc.n_scheduled_out == proc.n_scheduled_in == 1
    assert clock.event_count("context_switch") == 2
