"""Access-plan engine: batched submission must equal per-call driving.

``GuestKernel.access_plan`` amortizes per-call overhead but promises
*semantic identity* with the per-batch API: same MMU outcomes, same
clock totals and event counts, same scheduler switches and vCPU
rotation, same listener notifications.  These tests run the same op
streams both ways — including on a 2-vCPU stack with a switch interval
small enough to rotate the process mid-plan — and compare full state.
"""

import numpy as np
import pytest

from repro.errors import GuestError, WorkloadError
from repro.experiments.harness import build_stack
from repro.guest.plan import AccessPlan, PlanBuilder
from repro.workloads import FlatContext
from repro.workloads.base import GcContext

N_PAGES = 96


def _stack(add_vma=True, **kw):
    stack = build_stack(vm_mb=8, **kw)
    proc = stack.kernel.spawn("app", n_pages=N_PAGES)
    if add_vma:
        proc.space.add_vma(N_PAGES)
    return stack, proc


def _ops(rng):
    """A mixed op stream: writes, reads, masked batches, computes."""
    ops = []
    for i in range(12):
        vpns = np.sort(rng.choice(N_PAGES, size=16, replace=False))
        if i % 3 == 0:
            ops.append(("a", vpns, True))
        elif i % 3 == 1:
            ops.append(("a", vpns, False))
        else:
            mask = rng.random(16) < 0.5
            ops.append(("a", vpns, mask))
        ops.append(("c", float(rng.integers(10, 2000))))
    return ops


def _state(stack, proc, results):
    return (
        [
            (r.n_accesses, r.n_writes, r.n_minor_faults, r.n_wp_faults,
             r.newly_pte_dirty.tolist(), r.newly_ept_dirty.tolist())
            for r in results
        ],
        stack.clock.now_us,
        dict(stack.clock.snapshot().event_count),
        stack.kernel.scheduler.n_switches,
        stack.kernel.scheduler.vcpu_of(proc),
        proc.space.pt.flags.tolist(),
        stack.vm.mmu.host_mem._content.tolist(),
    )


@pytest.mark.parametrize("n_vcpus,interval", [(1, 3_500_000.0), (2, 900.0)])
def test_plan_equals_per_call_driving(n_vcpus, interval):
    """Full-state equivalence; the (2, 900us) leg rotates the process
    across vCPUs mid-plan, so the executor's vCPU refresh is exercised."""
    ops = _ops(np.random.default_rng(3))

    stack_a, proc_a = _stack(n_vcpus=n_vcpus, switch_interval_us=interval)
    results_a = []
    for op in ops:
        if op[0] == "a":
            results_a.append(stack_a.kernel.access(proc_a, op[1], op[2]))
        else:
            stack_a.kernel.compute(proc_a, op[1])

    stack_b, proc_b = _stack(n_vcpus=n_vcpus, switch_interval_us=interval)
    b = PlanBuilder()
    for op in ops:
        if op[0] == "a":
            b.access(op[1], op[2])
        else:
            b.compute(op[1])
    results_b = stack_b.kernel.access_plan(proc_b, b.build())

    if n_vcpus > 1:
        assert stack_a.kernel.scheduler.n_switches > 0  # rotation happened
    assert _state(stack_a, proc_a, results_a) == _state(
        stack_b, proc_b, results_b
    )


def test_plan_repeated_execution_stays_identical():
    """A frozen plan executed repeatedly (segment replay in steady state)
    matches per-call driving executed the same number of times."""
    vpns = np.arange(0, 64, dtype=np.int64)

    stack_a, proc_a = _stack()
    results_a = []
    for _ in range(4):
        results_a.append(stack_a.kernel.access(proc_a, vpns, True))
        stack_a.kernel.compute(proc_a, 100.0)

    stack_b, proc_b = _stack()
    plan = PlanBuilder().write(vpns).compute(100.0).build()
    results_b = []
    for _ in range(4):
        results_b.extend(stack_b.kernel.access_plan(proc_b, plan))

    assert _state(stack_a, proc_a, results_a) == _state(
        stack_b, proc_b, results_b
    )


def test_multi_batch_segment_replays():
    """A plan whose segment holds several batches replays wholesale."""
    stack, proc = _stack()
    mmu = stack.vm.mmu
    mmu._cache = {}
    b = PlanBuilder()
    for lo in range(0, 64, 16):
        b.write(np.arange(lo, lo + 16, dtype=np.int64))
    plan = b.build()
    assert plan.n_batches == 4 and len(plan.items) == 1
    for _ in range(3):
        stack.kernel.access_plan(proc, plan)
    assert mmu.n_segment_replays >= 1
    # Dirty-bit re-arm must bust the segment entry too.
    from repro.hw.pagetable import PTE_DIRTY

    proc.space.pt.clear_flags(np.arange(64), PTE_DIRTY)
    proc.space.invalidate_all(np.arange(64))
    before = mmu.n_segment_replays
    rs = stack.kernel.access_plan(proc, plan)
    assert mmu.n_segment_replays == before
    assert sum(r.newly_pte_dirty.size for r in rs) == 64


def test_listeners_observe_every_batch_in_order():
    stack, proc = _stack()
    seen = []
    stack.kernel.add_access_listener(
        lambda p, r: seen.append((p.pid, r.n_accesses, r.n_writes))
    )
    plan = (
        PlanBuilder()
        .write(np.arange(10))
        .compute(5.0)
        .read(np.arange(20))
        .build()
    )
    stack.kernel.access_plan(proc, plan)
    assert seen == [(proc.pid, 10, 10), (proc.pid, 20, 0)]


def test_plain_batch_list_accepted():
    stack, proc = _stack()
    rs = stack.kernel.access_plan(
        proc, [(np.arange(8), True), (np.arange(8, 16), False)]
    )
    assert [(r.n_accesses, r.n_writes) for r in rs] == [(8, 8), (8, 0)]


def test_plan_builder_validation():
    with pytest.raises(GuestError):
        PlanBuilder().compute(-1.0)
    with pytest.raises(GuestError):
        PlanBuilder().access(np.arange(4), np.array([True, False]))
    # Empty batches are dropped, mirroring FlatContext.write/read.
    plan = PlanBuilder().write(np.empty(0, dtype=np.int64)).build()
    assert plan.items == [] and plan.n_batches == 0


def test_plan_counts():
    plan = (
        PlanBuilder()
        .write(np.arange(10))
        .compute(7.0)
        .access(np.arange(4), np.array([True, False, True, False]))
        .build()
    )
    assert plan.n_batches == 2
    assert plan.n_accesses == 14
    assert plan.n_writes == 12
    assert plan.compute_us == 7.0


def test_frozen_plans_are_immune_to_caller_mutation():
    stack, proc = _stack()
    vpns = np.arange(0, 32, dtype=np.int64)
    plan = PlanBuilder().write(vpns).build()
    vpns[:] = 0  # caller scribbles over its buffer
    rs = stack.kernel.access_plan(proc, plan)
    assert rs[0].n_accesses == 32
    assert rs[0].newly_pte_dirty.tolist() == list(range(32))


def test_transient_plans_have_no_segment_uid():
    plan = AccessPlan.from_batches([(np.arange(4), True)])
    assert plan.items[0].uid is None
    frozen = PlanBuilder().write(np.arange(4)).build()
    assert frozen.items[0].uid is not None


def test_dead_and_stopped_processes_rejected():
    stack, proc = _stack()
    plan = PlanBuilder().write(np.arange(4)).build()
    stack.kernel.stop_process(proc)
    with pytest.raises(GuestError):
        stack.kernel.access_plan(proc, plan)
    stack.kernel.resume_process(proc)
    stack.kernel.exit_process(proc)
    with pytest.raises(GuestError):
        stack.kernel.access_plan(proc, plan)


def test_write_many_equals_write_loop():
    offsets = [np.arange(0, 16), np.arange(16, 32), np.empty(0, dtype=np.int64)]

    stack_a, proc_a = _stack(add_vma=False)
    ctx_a = FlatContext(stack_a.kernel, proc_a)
    region_a = ctx_a.alloc_region(64, "r")
    for o in offsets:
        ctx_a.write(region_a, o)
    for o in offsets:
        ctx_a.read(region_a, o)

    stack_b, proc_b = _stack(add_vma=False)
    ctx_b = FlatContext(stack_b.kernel, proc_b)
    region_b = ctx_b.alloc_region(64, "r")
    ctx_b.write_many(region_b, offsets)
    ctx_b.read_many(region_b, offsets)

    assert _state(stack_a, proc_a, []) == _state(stack_b, proc_b, [])


def test_gc_context_declines_plans():
    stack, proc = _stack()
    assert FlatContext(stack.kernel, proc).supports_plans is True
    assert GcContext.supports_plans is False
    gc_ctx = GcContext(stack.kernel, proc, heap=None, gc=None)
    with pytest.raises(WorkloadError):
        gc_ctx.run_plan(PlanBuilder().write(np.arange(4)).build())
