"""Tests for processes, VMAs, address spaces."""

import pytest

from repro.errors import ConfigurationError, InvalidAddressError
from repro.guest.process import AddressSpace, Vma


def test_vma_validation():
    with pytest.raises(ConfigurationError):
        Vma(start_vpn=-1, n_pages=4)
    with pytest.raises(ConfigurationError):
        Vma(start_vpn=0, n_pages=0)


def test_add_vma_packs_sequentially():
    space = AddressSpace(100)
    a = space.add_vma(10, "heap")
    b = space.add_vma(20, "arena")
    assert (a.start_vpn, a.end_vpn) == (0, 10)
    assert (b.start_vpn, b.end_vpn) == (10, 30)
    assert list(a.vpns()) == list(range(10))


def test_add_vma_exhaustion():
    space = AddressSpace(16)
    space.add_vma(16)
    with pytest.raises(InvalidAddressError):
        space.add_vma(1)


def test_vma_containing():
    space = AddressSpace(32)
    space.add_vma(8, "a")
    b = space.add_vma(8, "b")
    assert space.vma_containing(12) is b
    with pytest.raises(InvalidAddressError):
        space.vma_containing(30)


def test_rss_counts_present_pages(stack):
    proc = stack.kernel.spawn("p", n_pages=64)
    assert proc.space.rss_pages == 0
    proc.space.add_vma(8)
    stack.kernel.access(proc, [0, 1, 2], True)
    assert proc.space.rss_pages == 3
