"""Tests for the guest fault paths: minor, zero-page/COW, soft-dirty."""

import numpy as np

from repro.core.costs import EV_PF_KERNEL, EV_PF_MINOR
from repro.hw.pagetable import PTE_SOFT_DIRTY, PTE_WRITABLE, PTE_ZERO


def spawn(stack, n_pages=32):
    proc = stack.kernel.spawn("p", n_pages=n_pages)
    proc.space.add_vma(n_pages)
    return proc


def test_write_fault_installs_writable_soft_dirty_mapping(stack):
    proc = spawn(stack)
    r = stack.kernel.access(proc, [0], True)
    assert r.n_minor_faults == 1
    pt = proc.space.pt
    assert pt.flag_mask([0], PTE_WRITABLE).all()
    assert pt.flag_mask([0], PTE_SOFT_DIRTY).all()
    assert not pt.flag_mask([0], PTE_ZERO).any()


def test_read_fault_installs_clean_zero_page(stack):
    """Linux semantics: reading untouched anon memory maps the zero page;
    the page is NOT dirty for any tracking technique."""
    proc = spawn(stack)
    r = stack.kernel.access(proc, [0], False)
    assert r.n_minor_faults == 1
    pt = proc.space.pt
    assert not pt.flag_mask([0], PTE_WRITABLE).any()
    assert not pt.flag_mask([0], PTE_SOFT_DIRTY).any()
    assert pt.flag_mask([0], PTE_ZERO).all()
    # /proc does not report it dirty.
    assert 0 not in set(stack.kernel.procfs.pagemap_soft_dirty(proc))


def test_cow_break_on_write_after_read(stack):
    proc = spawn(stack)
    stack.kernel.access(proc, [0], False)  # zero page
    r = stack.kernel.access(proc, [0], True)  # COW break
    assert r.n_wp_faults == 1
    # Charged as a minor-fault-class event, NOT a soft-dirty M5 fault —
    # the COW path is identical under every technique.
    assert stack.clock.event_count(EV_PF_KERNEL) == 0
    assert stack.clock.event_count(EV_PF_MINOR) == 2  # map + COW
    pt = proc.space.pt
    assert pt.flag_mask([0], PTE_WRITABLE).all()
    assert pt.flag_mask([0], PTE_SOFT_DIRTY).all()
    assert not pt.flag_mask([0], PTE_ZERO).any()


def test_read_only_pages_invisible_to_all_techniques(stack):
    """Evaluation question 3 hinges on not over-reporting: pages only
    read must not appear in any technique's dirty set."""
    from repro.core.tracking import Technique, make_tracker

    for technique in Technique:
        proc = spawn(stack)
        tracker = make_tracker(technique, stack.kernel, proc)
        with tracker:
            stack.kernel.access(proc, [1, 2, 3], False)  # reads only
            dirty = tracker.collect()
        assert dirty.size == 0, technique


def test_mixed_batch_splits_read_and_write_mappings(stack):
    proc = spawn(stack)
    stack.kernel.access(proc, [0, 1, 2, 3], [True, False, True, False])
    pt = proc.space.pt
    assert list(pt.flag_mask(np.arange(4), PTE_WRITABLE)) == [
        True, False, True, False]


def test_soft_dirty_fault_still_charged_for_tracked_pages(stack):
    proc = spawn(stack)
    stack.kernel.access(proc, [0], True)
    stack.kernel.procfs.clear_refs(proc)
    stack.kernel.access(proc, [0], True)
    assert stack.clock.event_count(EV_PF_KERNEL) == 1
