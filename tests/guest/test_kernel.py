"""Tests for the guest kernel: spawn/exit, access, compute, listeners."""

import numpy as np
import pytest

from repro.core.clock import World
from repro.core.costs import EV_COMPUTE
from repro.errors import GuestError


def test_spawn_assigns_unique_pids(stack):
    a = stack.kernel.spawn("a", n_pages=8)
    b = stack.kernel.spawn("b", n_pages=8)
    assert a.pid != b.pid
    assert stack.kernel.process_by_pid(a.pid) is a


def test_spawn_argument_validation(stack):
    with pytest.raises(GuestError):
        stack.kernel.spawn("x")
    with pytest.raises(GuestError):
        stack.kernel.spawn("x", mem_mb=1, n_pages=8)


def test_spawn_by_mem_mb(stack):
    p = stack.kernel.spawn("x", mem_mb=1)
    assert p.space.n_pages == 256


def test_access_demand_pages_and_consumes_guest_frames(stack):
    p = stack.kernel.spawn("p", n_pages=16)
    p.space.add_vma(16)
    free_before = stack.vm.guest_frames.n_free
    stack.kernel.access(p, np.arange(10), True)
    assert stack.vm.guest_frames.n_free == free_before - 10


def test_exit_process_frees_guest_frames(stack):
    p = stack.kernel.spawn("p", n_pages=16)
    p.space.add_vma(16)
    free_before = stack.vm.guest_frames.n_free
    stack.kernel.access(p, np.arange(10), True)
    stack.kernel.exit_process(p)
    assert stack.vm.guest_frames.n_free == free_before
    with pytest.raises(GuestError):
        stack.kernel.process_by_pid(p.pid)
    with pytest.raises(GuestError):
        stack.kernel.access(p, [0], True)


def test_compute_charges_tracked_world_and_drives_scheduler(stack):
    p = stack.kernel.spawn("p", n_pages=8)
    stack.kernel.compute(p, 60_000.0)  # above the 50 ms test interval
    assert stack.clock.world_us(World.TRACKED) == pytest.approx(60_000.0)
    assert stack.clock.event_count(EV_COMPUTE) == 1
    assert stack.kernel.scheduler.n_switches == 1


def test_compute_rejects_negative(stack):
    p = stack.kernel.spawn("p", n_pages=8)
    with pytest.raises(GuestError):
        stack.kernel.compute(p, -1.0)


def test_stopped_process_cannot_access(stack):
    p = stack.kernel.spawn("p", n_pages=8)
    p.space.add_vma(8)
    stack.kernel.stop_process(p)
    with pytest.raises(GuestError):
        stack.kernel.access(p, [0], True)
    stack.kernel.resume_process(p)
    stack.kernel.access(p, [0], True)


def test_resume_requires_stopped(stack):
    p = stack.kernel.spawn("p", n_pages=8)
    with pytest.raises(GuestError):
        stack.kernel.resume_process(p)


def test_access_listener_sees_results_zero_cost(stack):
    p = stack.kernel.spawn("p", n_pages=8)
    p.space.add_vma(8)
    seen = []
    listener = lambda proc, res: seen.append((proc.pid, res.n_writes))  # noqa: E731
    stack.kernel.add_access_listener(listener)
    t0 = stack.clock.now_us
    stack.kernel.access(p, [0, 1], True)
    assert seen and seen[0][0] == p.pid
    stack.kernel.remove_access_listener(listener)
    stack.kernel.access(p, [2], True)
    assert len(seen) == 1
    # The listener itself added no cost beyond the access path
    # (faults charge; compare with an identical second batch).
    assert stack.clock.now_us > t0
