"""TLB invalidation discipline across the tracking stack.

The MMU's fused fast path trusts TLB-cached translations only together
with the actual PTE/EPT flags, but the *discipline* the Tlb docstring
promises — every path that downgrades a cached translation invalidates
it — must hold regardless.  These tests pin each invalidation site.
"""

import numpy as np

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.core.tracking import Technique, make_tracker
from repro.guest.kernel import GuestKernel
from repro.hypervisor.hypervisor import Hypervisor


def _stack(vm_mb=8, n_pages=256):
    clock = SimClock()
    hv = Hypervisor(clock, CostModel(), host_mem_mb=vm_mb * 4)
    vm = hv.create_vm("vm0", mem_mb=vm_mb)
    kernel = GuestKernel(vm)
    proc = kernel.spawn("app", n_pages=n_pages)
    proc.space.add_vma(n_pages // 2)
    return kernel, proc


def test_access_fills_tlb():
    kernel, proc = _stack()
    vpns = np.arange(0, 16, dtype=np.int64)
    kernel.access(proc, vpns, True)
    assert proc.space.tlb.cached_mask(vpns).all()


def test_oracle_start_and_collect_invalidate():
    kernel, proc = _stack()
    vpns = np.arange(0, 16, dtype=np.int64)
    kernel.access(proc, vpns, True)
    tracker = make_tracker(Technique.ORACLE, kernel, proc)
    tracker.start()  # clears PTE dirty on mapped pages -> must invalidate
    assert not proc.space.tlb.cached_mask(vpns).any()
    kernel.access(proc, vpns, True)
    assert proc.space.tlb.cached_mask(vpns).all()
    dirty = tracker.collect()  # re-arms dirty bits -> must invalidate
    assert set(vpns.tolist()) <= set(dirty.tolist())
    assert not proc.space.tlb.cached_mask(vpns).any()
    tracker.stop()


def test_epml_attach_and_collect_invalidate():
    kernel, proc = _stack()
    vpns = np.arange(0, 16, dtype=np.int64)
    kernel.access(proc, vpns, True)
    tracker = make_tracker(Technique.EPML, kernel, proc)
    tracker.start()  # attach clears dirty bits on mapped pages
    assert not proc.space.tlb.cached_mask(vpns).any()
    kernel.access(proc, vpns, True)
    dirty = tracker.collect()  # collection re-arms the collected VPNs
    assert set(vpns.tolist()) <= set(dirty.tolist())
    assert not proc.space.tlb.cached_mask(vpns).any()
    tracker.stop()


def test_exit_process_flushes():
    kernel, proc = _stack()
    kernel.access(proc, np.arange(0, 8, dtype=np.int64), True)
    flushes = proc.space.tlb.n_flushes
    kernel.exit_process(proc)
    assert proc.space.tlb.n_flushes == flushes + 1
    assert proc.space.tlb.n_cached == 0


def test_heap_unmap_invalidates():
    from repro.trackers.boehm import GcHeap

    kernel, proc = _stack(vm_mb=16, n_pages=2048)
    heap = GcHeap(kernel, proc, heap_pages=1024)
    # Fill pages with objects, then free them all: empty pages are
    # unmapped and their cached translations must go.
    ids = heap.alloc(64, 4096)  # one object per page
    pages = np.unique(heap.obj_page[ids])
    assert proc.space.tlb.cached_mask(pages).all()
    inval0 = proc.space.tlb.n_invalidations
    heap.free_objects(ids)
    assert proc.space.tlb.n_invalidations > inval0
    assert not proc.space.tlb.cached_mask(pages).any()
