"""Tests for the userfaultfd emulation."""

import numpy as np
import pytest

from repro.core.clock import World
from repro.core.costs import EV_PF_USER
from repro.errors import TrackingError
from repro.guest.uffd import UfdMode


def setup_proc(stack, n_pages=32):
    proc = stack.kernel.spawn("tracked", n_pages=n_pages)
    vma = proc.space.add_vma(n_pages)
    return proc, vma


def test_register_and_write_protect_faults_on_write(stack):
    proc, vma = setup_proc(stack)
    stack.kernel.access(proc, [0, 1, 2], True)  # populate
    uffd = stack.kernel.create_uffd(proc)
    uffd.register(vma, UfdMode.WRITE_PROTECT)
    uffd.write_protect()
    r = stack.kernel.access(proc, [0, 1], True)
    assert r.n_ufd_faults == 2
    assert set(uffd.read_dirty()) == {0, 1}
    assert uffd.n_faults == 2


def test_no_fault_after_unprotect(stack):
    proc, vma = setup_proc(stack)
    stack.kernel.access(proc, [0], True)
    uffd = stack.kernel.create_uffd(proc)
    uffd.register(vma, UfdMode.WRITE_PROTECT)
    uffd.write_protect()
    stack.kernel.access(proc, [0], True)  # faults, gets unprotected
    r = stack.kernel.access(proc, [0], True)
    assert r.n_ufd_faults == 0


def test_reads_do_not_fault(stack):
    proc, vma = setup_proc(stack)
    stack.kernel.access(proc, [0], True)
    uffd = stack.kernel.create_uffd(proc)
    uffd.register(vma, UfdMode.WRITE_PROTECT)
    uffd.write_protect()
    r = stack.kernel.access(proc, [0], False)
    assert r.n_ufd_faults == 0
    assert uffd.read_dirty().size == 0


def test_missing_mode_delivers_first_touch(stack):
    proc, vma = setup_proc(stack)
    uffd = stack.kernel.create_uffd(proc)
    uffd.register(vma, UfdMode.MISSING)
    r = stack.kernel.access(proc, [3, 4], True)
    assert r.n_ufd_faults == 2
    assert r.n_minor_faults == 0
    assert set(uffd.read_dirty()) == {3, 4}


def test_write_protect_requires_mode(stack):
    proc, vma = setup_proc(stack)
    uffd = stack.kernel.create_uffd(proc)
    uffd.register(vma, UfdMode.MISSING)
    with pytest.raises(TrackingError):
        uffd.write_protect()


def test_write_protect_outside_registration_rejected(stack):
    proc, _ = setup_proc(stack, n_pages=32)
    vma_small = proc.space.vmas[0]
    uffd = stack.kernel.create_uffd(proc)
    uffd.register(vma_small, UfdMode.WRITE_PROTECT)
    # All 32 pages are in the single VMA, so protect a bogus subset
    # by forging an unregistered range.
    uffd._registered[10:] = False
    with pytest.raises(TrackingError):
        uffd.write_protect(np.arange(8, 12))


def test_double_uffd_rejected(stack):
    proc, _ = setup_proc(stack)
    stack.kernel.create_uffd(proc)
    with pytest.raises(TrackingError):
        stack.kernel.create_uffd(proc)


def test_close_releases_protection_and_slot(stack):
    proc, vma = setup_proc(stack)
    stack.kernel.access(proc, [0], True)
    uffd = stack.kernel.create_uffd(proc)
    uffd.register(vma, UfdMode.WRITE_PROTECT)
    uffd.write_protect()
    uffd.close()
    r = stack.kernel.access(proc, [0], True)
    assert r.n_ufd_faults == 0
    stack.kernel.create_uffd(proc)  # slot free again


def test_fault_costs_split_kernel_and_tracker(stack):
    proc, vma = setup_proc(stack)
    stack.kernel.access(proc, [0], True)
    uffd = stack.kernel.create_uffd(proc)
    uffd.register(vma, UfdMode.WRITE_PROTECT)
    uffd.write_protect()
    tracker_before = stack.clock.world_us(World.TRACKER)
    kernel_before = stack.clock.world_us(World.KERNEL)
    stack.kernel.access(proc, [0], True)
    assert stack.clock.world_us(World.TRACKER) > tracker_before
    assert stack.clock.world_us(World.KERNEL) > kernel_before
    assert stack.clock.event_count(EV_PF_USER) == 1
    # Userspace handling dominates (paper §III-A).
    n = proc.space.n_pages
    total = stack.costs.pf_user_unit_us(n)
    assert stack.clock.event_us(EV_PF_USER) == pytest.approx(total)
