"""Completeness auditing: losses must be recovered or surfaced — a silent
loss is the one outcome the auditor never lets pass."""

import numpy as np
import pytest

from repro.core.ooh import OohLib, OohModule
from repro.core.techniques.epml import EpmlTracker
from repro.core.techniques.spml import SpmlTracker
from repro.core.tracking import Technique, make_tracker
from repro.faults.auditor import CompletenessAuditor, CompletenessViolation


def _spawn(stack, n_pages=1024):
    proc = stack.kernel.spawn("app", n_pages=n_pages)
    proc.space.add_vma(n_pages)
    stack.kernel.access(proc, np.arange(n_pages), True)
    return proc


def _workload(stack, proc, auditor, rounds=4, n_pages=1024):
    rng = np.random.default_rng(11)
    for _ in range(rounds):
        stack.kernel.access(
            proc, rng.integers(0, n_pages, size=n_pages // 4), True
        )
        auditor.collect()


def test_clean_run_is_complete(stack):
    proc = _spawn(stack)
    tracker = make_tracker(Technique.EPML, stack.kernel, proc)
    auditor = CompletenessAuditor(stack.kernel, proc, tracker)
    auditor.start()
    _workload(stack, proc, auditor)
    report = auditor.stop()
    assert report.capture_rate == 1.0 and report.n_missed == 0
    assert not report.silent_loss
    assert report.total_surfaced == 0


def test_undersized_ring_loss_is_loud_not_silent(stack):
    proc = _spawn(stack)
    lib = OohLib(OohModule(stack.kernel, ring_capacity=64))
    tracker = SpmlTracker(stack.kernel, proc, ooh_lib=lib)  # resync off
    auditor = CompletenessAuditor(stack.kernel, proc, tracker)
    auditor.start()
    _workload(stack, proc, auditor)
    report = auditor.stop()  # must NOT raise: the drop counter moved
    assert report.n_missed > 0 and report.capture_rate < 1.0
    assert report.surfaced["tracker_dropped"] > 0
    assert not report.silent_loss


class _SilentlyLossyTracker(EpmlTracker):
    """A buggy tracker: discards half of each collection, counters clean."""

    def _do_collect(self):
        out = super()._do_collect()
        return out[::2]


def test_silent_loss_raises(stack):
    proc = _spawn(stack)
    tracker = _SilentlyLossyTracker(stack.kernel, proc)
    auditor = CompletenessAuditor(stack.kernel, proc, tracker)
    auditor.start()
    _workload(stack, proc, auditor)
    with pytest.raises(CompletenessViolation):
        auditor.stop()


def test_silent_loss_report_mode(stack):
    proc = _spawn(stack)
    tracker = _SilentlyLossyTracker(stack.kernel, proc)
    auditor = CompletenessAuditor(
        stack.kernel, proc, tracker, raise_on_silent_loss=False
    )
    auditor.start()
    _workload(stack, proc, auditor)
    report = auditor.stop()
    assert report.silent_loss
    assert report.n_missed > 0
    assert report.missed_vpns.size == report.n_missed
    assert report.total_surfaced == 0
