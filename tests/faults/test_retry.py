"""Shared retry policy: classification, backoff charging, exhaustion."""

import pytest

from repro.core.clock import SimClock, World
from repro.errors import HypercallError, TransientError
from repro.retry import (
    DEFAULT_RETRY_POLICY,
    EV_RETRY_BACKOFF,
    Retrier,
    RetryPolicy,
    is_transient,
)


def test_hypercall_error_code_attribute():
    e = HypercallError("boom")
    assert e.code == "EINVAL" and not e.transient
    assert HypercallError("busy", code="EBUSY").transient


def test_is_transient_classification():
    assert is_transient(TransientError("x"))
    assert is_transient(HypercallError("x", code="EAGAIN"))
    assert not is_transient(HypercallError("x"))
    assert not is_transient(ValueError("x"))


def test_policy_validation_and_cap():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    p = RetryPolicy(max_attempts=20, base_backoff_us=10.0, multiplier=10.0,
                    max_backoff_us=500.0)
    assert p.backoff_us(1) == 10.0
    assert p.backoff_us(2) == 100.0
    assert p.backoff_us(5) == 500.0  # capped


def test_retrier_succeeds_and_charges_simulated_backoff():
    clock = SimClock()
    r = Retrier(clock, World.KERNEL)
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise TransientError("flaky")
        return 42

    assert r.call(flaky) == 42
    assert r.n_retries == 2 and r.n_exhausted == 0
    expected = (
        DEFAULT_RETRY_POLICY.backoff_us(1) + DEFAULT_RETRY_POLICY.backoff_us(2)
    )
    assert clock.event_us(EV_RETRY_BACKOFF) == pytest.approx(expected)
    assert clock.world_us(World.KERNEL) == pytest.approx(expected)


def test_retrier_exhausts_and_reraises():
    clock = SimClock()
    r = Retrier(clock)

    def always():
        raise TransientError("always")

    with pytest.raises(TransientError):
        r.call(always)
    assert r.n_exhausted == 1
    assert r.n_retries == DEFAULT_RETRY_POLICY.max_attempts - 1


def test_permanent_error_not_retried():
    clock = SimClock()
    r = Retrier(clock)

    def perm():
        raise ValueError("perm")

    with pytest.raises(ValueError):
        r.call(perm)
    assert r.n_retries == 0
    assert clock.now_us == 0.0
