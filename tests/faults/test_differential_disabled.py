"""Zero-overhead contract: with no plan active — or a rate-0.0 plan —
simulated results are bit-identical to a run without the fault subsystem
in the loop (same clocks, same event stream, same collected pages)."""

import numpy as np

from repro.core.tracking import Technique, make_tracker
from repro.experiments.faultmatrix import chaos_plan
from repro.experiments.harness import build_stack

N_PAGES = 512
ROUNDS = 4


def _run(technique, plan=None):
    stack = build_stack(vm_mb=64)
    proc = stack.kernel.spawn("app", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    stack.kernel.access(proc, np.arange(N_PAGES), True)
    tracker = make_tracker(technique, stack.kernel, proc)
    rng = np.random.default_rng(21)

    def body():
        tracker.start()
        collected = []
        for _ in range(ROUNDS):
            stack.kernel.access(
                proc, rng.integers(0, N_PAGES, size=N_PAGES // 4), True
            )
            collected.append(tracker.collect())
        tracker.stop()
        return collected

    if plan is None:
        collected = body()
    else:
        with plan.active():
            collected = body()
    return stack.clock.snapshot(), collected


def test_rate_zero_plan_is_bit_identical():
    for technique in (Technique.SPML, Technique.EPML):
        base_snap, base_out = _run(technique)
        plan_snap, plan_out = _run(technique, chaos_plan(0.0))
        assert plan_snap.now_us == base_snap.now_us
        assert plan_snap.world_us == base_snap.world_us
        assert plan_snap.event_us == base_snap.event_us
        assert plan_snap.event_count == base_snap.event_count
        assert len(base_out) == len(plan_out)
        for a, b in zip(base_out, plan_out):
            assert np.array_equal(a, b)
