"""End-to-end recovery: the OoH module heals injected faults and reports
how (retries, resyncs, recovered IPIs, surfaced loss counters)."""

import numpy as np

from repro.core.ooh import OohKind, OohLib, OohModule
from repro.core.tracking import Technique, make_tracker
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec


def _plan(site, rate=1.0, **kw):
    return FaultPlan([FaultSpec(site, rate, **kw)])


def _spawn(stack, n_pages=1024):
    proc = stack.kernel.spawn("app", n_pages=n_pages)
    proc.space.add_vma(n_pages)
    stack.kernel.access(proc, np.arange(n_pages), True)  # prefault
    return proc


def test_epml_lost_ipi_batches_swept_at_collect(stack):
    proc = _spawn(stack)
    tracker = make_tracker(Technique.EPML, stack.kernel, proc)
    tracker.start()
    # 1024 writes fill the 512-entry guest buffer twice; both buffer-full
    # self-IPIs are lost, so the batches pile up undelivered.
    with _plan(FaultSite.LOST_SELF_IPI).active():
        stack.kernel.access(proc, np.arange(1024), True)
    assert stack.vm.vcpu.interrupts.n_lost == 2
    got = tracker.collect()
    stats = tracker.last_stats
    assert stats.n_recovered_ipis == 2
    assert set(got.tolist()) == set(range(1024))  # nothing lost
    tracker.stop()


def test_epml_delayed_ipi_flushed_at_collect(stack):
    proc = _spawn(stack)
    tracker = make_tracker(Technique.EPML, stack.kernel, proc)
    tracker.start()
    with _plan(FaultSite.DELAYED_SELF_IPI).active():
        stack.kernel.access(proc, np.arange(1024), True)
    assert stack.vm.vcpu.interrupts.n_delayed == 2
    got = tracker.collect()
    assert set(got.tolist()) == set(range(1024))
    tracker.stop()


def test_spml_transient_hypercalls_retried(stack):
    proc = _spawn(stack, n_pages=256)
    tracker = make_tracker(Technique.SPML, stack.kernel, proc)
    tracker.start()
    stack.kernel.access(proc, np.arange(64), True)
    # The collect path's first hypercall (disable_logging) bounces twice
    # with EAGAIN; the module's retrier absorbs both.
    with _plan(FaultSite.HYPERCALL_TRANSIENT, max_fires=2).active():
        got = tracker.collect()
    stats = tracker.last_stats
    assert stats.n_retries == 2
    assert set(got.tolist()) == set(range(64))
    tracker.stop()


def test_spml_undersized_ring_conservative_resync(stack):
    proc = _spawn(stack)
    module = OohModule(stack.kernel, ring_capacity=64)
    lib = OohLib(module)
    att = lib.attach(proc, OohKind.SPML, resync_on_loss=True)
    stack.kernel.access(proc, np.arange(1024), True)  # overflows the ring
    got = lib.fetch(att)
    stats = att.last_stats
    assert stats.dropped > 0
    assert stats.n_resyncs == 1 and stats.resynced
    # The conservative resync folds in every mapped page: complete capture.
    assert set(range(1024)) <= set(got.tolist())
    lib.detach(att)


def test_spml_dropped_vmexit_surfaced_and_resynced(stack):
    proc = _spawn(stack)
    tracker = make_tracker(
        Technique.SPML, stack.kernel, proc, resync_on_loss=True
    )
    tracker.start()
    # One PML-full vmexit is swallowed: its 512-entry batch vanishes
    # before reaching the ring.
    with _plan(FaultSite.VMEXIT_DROP, max_fires=1).active():
        stack.kernel.access(proc, np.arange(1024), True)
    got = tracker.collect()
    stats = tracker.last_stats
    assert stats.n_lost_vmexits == 1
    assert stats.n_resyncs == 1
    assert set(range(1024)) <= set(got.tolist())
    tracker.stop()


def test_demand_paging_retries_transient_frame_exhaustion(stack):
    proc = stack.kernel.spawn("app", n_pages=256)
    proc.space.add_vma(256)
    with _plan(FaultSite.FRAME_EXHAUSTION, max_fires=1).active():
        stack.kernel.access(proc, np.arange(16), True)
    handler = stack.kernel.fault_handler(proc)
    assert handler.n_alloc_retries >= 1
    assert proc.space.pt.mapped_vpns().size == 16
