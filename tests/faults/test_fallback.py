"""Graceful degradation: the fallback chain falls forward through
techniques and keeps reporting conservatively while a mechanism is down."""

import numpy as np
import pytest

from repro.core.ooh import OohModule
from repro.core.tracking import Technique, make_tracker
from repro.core.techniques.fallback import FallbackTracker
from repro.errors import ResyncRequired, TrackerDetachedError, TrackingError
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.obs import trace as otr
from repro.obs.events import EventKind

HC_DOWN = FaultPlan([FaultSpec(FaultSite.HYPERCALL_TRANSIENT, 1.0)])


def _assert_transitions_traced(session, tracker):
    """Each degradation step appears exactly once in the trace, in order,
    matching the tracker's own history."""
    events = session.trace.by_kind(EventKind.FALLBACK_TRANSITION)
    assert [
        (e.fields["from"], e.fields["to"]) for e in events
    ] == [(old, new) for old, new, _ in tracker.fallback_history]
    assert len(events) == tracker.n_fallbacks
    assert session.metrics.counter("fallback.transitions") == tracker.n_fallbacks


def _spawn(stack, n_pages=256):
    proc = stack.kernel.spawn("app", n_pages=n_pages)
    proc.space.add_vma(n_pages)
    stack.kernel.access(proc, np.arange(n_pages), True)
    return proc


def test_registered_and_validated(stack):
    proc = _spawn(stack)
    tracker = make_tracker(Technique.FALLBACK, stack.kernel, proc)
    assert isinstance(tracker, FallbackTracker)
    assert tracker.current_technique is Technique.EPML  # default chain head
    with pytest.raises(TrackingError):
        FallbackTracker(stack.kernel, proc, chain=())
    with pytest.raises(TrackingError):
        FallbackTracker(stack.kernel, proc, failure_threshold=0)


def test_start_falls_forward_when_hypercalls_are_down(stack):
    proc = _spawn(stack)
    tracker = FallbackTracker(
        stack.kernel, proc, chain=(Technique.SPML, Technique.PROC)
    )
    # SPML attach needs hypercalls; with them permanently bouncing the
    # retrier exhausts and the chain degrades to /proc at start.
    with otr.TraceSession().active() as session, HC_DOWN.active():
        tracker.start()
    assert tracker.current_technique is Technique.PROC
    assert tracker.n_fallbacks == 1
    _assert_transitions_traced(session, tracker)
    stack.kernel.access(proc, np.arange(32), True)
    assert set(tracker.collect().tolist()) == set(range(32))
    tracker.stop()


def test_collect_failures_degrade_after_threshold(stack):
    proc = _spawn(stack)
    tracker = FallbackTracker(
        stack.kernel, proc,
        chain=(Technique.SPML, Technique.PROC),
        failure_threshold=2,
    )
    tracker.start()  # SPML attaches fine while hypercalls work
    assert tracker.current_technique is Technique.SPML
    stack.kernel.access(proc, np.arange(64), True)
    with otr.TraceSession().active() as session, HC_DOWN.active():
        # Failure 1: conservative interval (every mapped page) — the
        # failed interval's writes are still covered.
        got1 = tracker.collect()
        assert set(range(64)) <= set(got1.tolist())
        assert tracker.current_technique is Technique.SPML
        # Failure 2 hits the threshold: fall forward to /proc.  The
        # orderly SPML detach also fails, exercising force_detach.
        got2 = tracker.collect()
        assert set(got2.tolist()) == set(proc.space.pt.mapped_vpns().tolist())
    assert tracker.current_technique is Technique.PROC
    assert tracker.n_fallbacks == 1
    old, new, reason = tracker.fallback_history[0]
    assert (old, new) == ("spml", "proc") and "collect failures" in reason
    _assert_transitions_traced(session, tracker)
    [transition] = session.trace.by_kind(EventKind.FALLBACK_TRANSITION)
    assert "collect failures" in transition.fields["reason"]
    # The replacement technique works without hypercalls.
    stack.kernel.access(proc, [3, 5], True)
    assert {3, 5} <= set(tracker.collect().tolist())
    tracker.stop()


def test_single_blip_does_not_degrade(stack):
    proc = _spawn(stack)
    tracker = FallbackTracker(
        stack.kernel, proc,
        chain=(Technique.SPML, Technique.PROC),
        failure_threshold=2,
    )
    tracker.start()
    with otr.TraceSession().active() as session:
        for _ in range(3):
            stack.kernel.access(proc, np.arange(16), True)
            with HC_DOWN.active():
                tracker.collect()  # one failure...
            tracker.collect()  # ...then a success resets the streak
    assert tracker.current_technique is Technique.SPML
    assert tracker.n_fallbacks == 0
    assert session.trace.by_kind(EventKind.FALLBACK_TRANSITION) == []
    tracker.stop()


def test_detached_collect_raises_resync_required(stack):
    """A collect racing a crash-only force-detach is a *loss* condition:
    it must surface as ResyncRequired (recoverable), never as plain
    TrackingError misuse, for both OoH kinds."""
    proc = _spawn(stack)
    for technique in (Technique.SPML, Technique.EPML):
        tracker = make_tracker(technique, stack.kernel, proc)
        tracker.start()
        stack.kernel.access(proc, np.arange(8), True)
        OohModule.shared(stack.kernel).force_detach()
        with pytest.raises(TrackerDetachedError) as exc_info:
            tracker.collect()
        assert isinstance(exc_info.value, ResyncRequired)
        tracker.abort()  # crash-only: the module state is already gone


def test_force_detach_mid_interval_keeps_coverage(stack):
    """A force-detach between writes and the collect loses the logged
    entries — the chain must return a conservative interval covering the
    writes and fall forward to a technique that does not need the module."""
    proc = _spawn(stack)
    tracker = FallbackTracker(
        stack.kernel, proc,
        chain=(Technique.SPML, Technique.PROC),
        failure_threshold=1,
    )
    tracker.start()
    assert tracker.current_technique is Technique.SPML
    written = np.arange(48, dtype=np.int64)
    stack.kernel.access(proc, written, True)
    with otr.TraceSession().active() as session:
        OohModule.shared(stack.kernel).force_detach()
        got = tracker.collect()
    # The detach-lost interval is covered conservatively...
    assert set(written.tolist()) <= set(got.tolist())
    # ...and the chain abandoned the detached mechanism.
    assert tracker.current_technique is Technique.PROC
    assert tracker.n_fallbacks == 1
    old, new, reason = tracker.fallback_history[0]
    assert (old, new) == ("spml", "proc")
    assert "detached" in reason
    _assert_transitions_traced(session, tracker)
    # The replacement tracks subsequent writes without the module.
    stack.kernel.access(proc, [3, 5], True)
    assert {3, 5} <= set(tracker.collect().tolist())
    tracker.stop()


def test_exhausted_chain_restarts_last_entry(stack):
    proc = _spawn(stack)
    tracker = FallbackTracker(
        stack.kernel, proc, chain=(Technique.PROC,), failure_threshold=1
    )
    tracker.start()

    from repro.errors import TransientError

    inner = tracker._inner
    inner._do_collect = lambda: (_ for _ in ()).throw(TransientError("x"))
    got = tracker.collect()  # fails -> conservative + restart of PROC
    assert got.size == proc.space.pt.mapped_vpns().size
    assert tracker.current_technique is Technique.PROC
    assert tracker.n_fallbacks == 0  # nowhere to go
    stack.kernel.access(proc, [7], True)
    assert 7 in set(tracker.collect().tolist())
    tracker.stop()
