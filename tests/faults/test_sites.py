"""Per-seam injection behaviour: each hooked site fires, is surfaced in a
counter, and leaves the component consistent."""

import numpy as np
import pytest

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.core.ringbuffer import RingBuffer
from repro.errors import HypercallError, TransientError
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.hw import vmcs as vm
from repro.hw.cpu import ExitReason, Vcpu
from repro.hw.interrupts import InterruptController
from repro.hw.memory import FrameAllocator
from repro.hw.pml import PmlCircuit
from repro.hypervisor.hypercalls import HypercallTable


def _plan(site, rate=1.0, **kw):
    return FaultPlan([FaultSpec(site, rate, **kw)])


# ----------------------------------------------------------------------
# ring buffer
# ----------------------------------------------------------------------
def test_ring_overflow_drops_oldest_and_counts():
    ring = RingBuffer(16)
    with _plan(FaultSite.RING_OVERFLOW, max_fires=4).active():
        dropped = ring.push(np.arange(8))
    assert dropped == 4
    assert ring.total_dropped == 4
    # Oldest entries are the ones lost; the survivors stay in order.
    assert ring.pop_all().tolist() == [4, 5, 6, 7]


def test_ring_without_plan_is_lossless():
    ring = RingBuffer(16)
    assert ring.push(np.arange(8)) == 0
    assert ring.total_dropped == 0


# ----------------------------------------------------------------------
# frame allocator
# ----------------------------------------------------------------------
def test_frame_exhaustion_is_transient():
    alloc = FrameAllocator(64)
    with _plan(FaultSite.FRAME_EXHAUSTION, max_fires=1).active():
        with pytest.raises(TransientError):
            alloc.alloc(4)
        frames = alloc.alloc(4)  # budget spent: next attempt succeeds
    assert frames.size == 4
    assert alloc.n_allocated == 4


def test_frame_exhaustion_skips_zero_count():
    alloc = FrameAllocator(64)
    with _plan(FaultSite.FRAME_EXHAUSTION).active() as inj:
        assert alloc.alloc(0).size == 0
    assert inj.total_fires() == 0


# ----------------------------------------------------------------------
# hypercall table
# ----------------------------------------------------------------------
def test_hypercall_transient_bounces_with_eagain():
    table = HypercallTable()
    table.register(0x10, lambda x: x + 1)
    with _plan(FaultSite.HYPERCALL_TRANSIENT, max_fires=1).active():
        with pytest.raises(HypercallError) as ei:
            table.dispatch(0x10, (1,))
        assert ei.value.code == "EAGAIN" and ei.value.transient
        assert table.dispatch(0x10, (1,)) == 2


# ----------------------------------------------------------------------
# interrupt controller
# ----------------------------------------------------------------------
def _controller():
    clock = SimClock()
    ic = InterruptController(clock, CostModel())
    delivered = []
    ic.register(0xEC, delivered.append)
    return clock, ic, delivered


def test_lost_self_ipi_is_swallowed_and_counted():
    clock, ic, delivered = _controller()
    with _plan(FaultSite.LOST_SELF_IPI, max_fires=1).active():
        assert ic.post(0xEC) is False
        assert ic.post(0xEC) is True
    assert ic.n_lost == 1
    assert delivered == [0xEC]


def test_delayed_self_ipi_delivered_on_next_post():
    clock, ic, delivered = _controller()
    with _plan(FaultSite.DELAYED_SELF_IPI, max_fires=1).active():
        assert ic.post(0xEC) is False
        assert delivered == []
        # The next post flushes the deferred vector first.
        assert ic.post(0xEC) is True
    assert ic.n_delayed == 1
    assert delivered == [0xEC, 0xEC]


def test_flush_delayed_explicitly():
    clock, ic, delivered = _controller()
    with _plan(FaultSite.DELAYED_SELF_IPI, max_fires=1).active():
        ic.post(0xEC)
        assert ic.flush_delayed() == 1
    assert delivered == [0xEC]
    assert ic.flush_delayed() == 0


# ----------------------------------------------------------------------
# PML circuit
# ----------------------------------------------------------------------
def test_pml_entry_drop_counted_per_buffer():
    vmcs = vm.Vmcs()
    circuit = PmlCircuit(vmcs, capacity=512)
    circuit.configure_hyp_buffer()
    vmcs.write(vm.F_CTRL_ENABLE_PML, 1)
    with _plan(FaultSite.PML_ENTRY_DROP, max_fires=3).active():
        circuit.log_gpas(np.arange(8, dtype=np.uint64))
    assert circuit.n_hyp_injected_drops == 3
    assert circuit.n_hyp_logged == 5
    assert circuit.hyp_buffer.n_logged == 5


# ----------------------------------------------------------------------
# vmexit delivery
# ----------------------------------------------------------------------
def test_vmexit_drop_swallows_pml_full_only():
    clock = SimClock()
    vcpu = Vcpu(0, clock, CostModel())
    seen = []
    vcpu.install_exit_handler(
        ExitReason.PML_FULL, lambda v, payload: seen.append(payload)
    )
    vcpu.install_exit_handler(
        ExitReason.HYPERCALL, lambda v, payload: "handled"
    )
    with _plan(FaultSite.VMEXIT_DROP, max_fires=1).active():
        assert vcpu.vmexit(ExitReason.PML_FULL, "batch0") is None
        # No root-mode transition: no vmexit counted, no cost charged.
        assert vcpu.n_vmexits == 0
        assert clock.now_us == 0.0
        # Other exit reasons are never dropped.
        assert vcpu.vmexit(ExitReason.HYPERCALL, None) == "handled"
    assert vcpu.n_dropped_vmexits == 1
    vcpu.vmexit(ExitReason.PML_FULL, "batch1")
    assert seen == ["batch1"]
