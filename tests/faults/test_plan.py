"""Fault plans: validation, determinism, firing caps, activation scoping."""

import numpy as np
import pytest

from repro.faults import injector as finj
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec, site_seed


def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(FaultSite.RING_OVERFLOW, 1.5)
    with pytest.raises(ValueError):
        FaultSpec(FaultSite.RING_OVERFLOW, -0.1)
    with pytest.raises(ValueError):
        FaultSpec(FaultSite.RING_OVERFLOW, 0.5, max_fires=-1)
    with pytest.raises(ValueError):
        FaultSpec(FaultSite.RING_OVERFLOW, 0.5, skip_first=-1)


def test_duplicate_site_rejected():
    with pytest.raises(ValueError):
        FaultPlan([
            FaultSpec(FaultSite.RING_OVERFLOW, 0.1),
            FaultSpec(FaultSite.RING_OVERFLOW, 0.2),
        ])


def test_site_seed_is_stable_and_distinct():
    seeds = {site_seed(1234, s) for s in FaultSite}
    assert len(seeds) == len(list(FaultSite))  # independent streams
    assert site_seed(1234, FaultSite.RING_OVERFLOW) == site_seed(
        1234, FaultSite.RING_OVERFLOW
    )


def test_deterministic_replay():
    site = FaultSite.HYPERCALL_TRANSIENT
    plan = FaultPlan([FaultSpec(site, 0.3)], seed=7)
    seq1 = [plan.build().should_fire(site) for _ in range(1)]  # warm check
    inj1, inj2 = plan.build(), plan.build()
    seq1 = [inj1.should_fire(site) for _ in range(200)]
    seq2 = [inj2.should_fire(site) for _ in range(200)]
    assert seq1 == seq2
    assert any(seq1) and not all(seq1)


def test_site_streams_independent_of_other_sites():
    """A site's fault sequence must not shift when other sites join the
    plan (each site owns its own seeded stream)."""
    site = FaultSite.PML_ENTRY_DROP
    solo = FaultPlan([FaultSpec(site, 0.4)], seed=9).build()
    combo = FaultPlan(
        [FaultSpec(site, 0.4), FaultSpec(FaultSite.RING_OVERFLOW, 0.4)],
        seed=9,
    ).build()
    a = [solo.should_fire(site) for _ in range(100)]
    b = [combo.should_fire(site) for _ in range(100)]
    assert a == b


def test_skip_first_and_max_fires():
    site = FaultSite.LOST_SELF_IPI
    plan = FaultPlan([FaultSpec(site, 1.0, max_fires=3, skip_first=2)])
    inj = plan.build()
    fires = [inj.should_fire(site) for _ in range(8)]
    assert fires == [False, False, True, True, True, False, False, False]
    assert inj.fires(site) == 3
    assert inj.total_fires() == 3


def test_drop_count_capped_by_max_fires():
    site = FaultSite.RING_OVERFLOW
    inj = FaultPlan([FaultSpec(site, 1.0, max_fires=4)]).build()
    assert inj.drop_count(site, 10) == 4
    assert inj.drop_count(site, 10) == 0  # budget spent


def test_drop_entries_removes_deterministic_subset():
    site = FaultSite.PML_ENTRY_DROP
    values = np.arange(32, dtype=np.uint64)
    plan = FaultPlan([FaultSpec(site, 0.5)], seed=3)
    kept1 = plan.build().drop_entries(site, values)
    kept2 = plan.build().drop_entries(site, values)
    assert np.array_equal(kept1, kept2)
    assert 0 < kept1.size < values.size
    assert set(kept1.tolist()) <= set(values.tolist())


def test_unarmed_site_never_fires():
    inj = FaultPlan([FaultSpec(FaultSite.RING_OVERFLOW, 1.0)]).build()
    assert not inj.should_fire(FaultSite.VMEXIT_DROP)
    assert inj.fires(FaultSite.VMEXIT_DROP) == 0


def test_activation_nesting_restores_previous():
    assert finj.ACTIVE is None
    p1 = FaultPlan([FaultSpec(FaultSite.RING_OVERFLOW, 0.1)])
    p2 = FaultPlan([FaultSpec(FaultSite.VMEXIT_DROP, 0.1)])
    with p1.active() as a:
        assert finj.ACTIVE is a
        with p2.active() as b:
            assert finj.ACTIVE is b
        assert finj.ACTIVE is a
    assert finj.ACTIVE is None


def test_stats_shape():
    site = FaultSite.FRAME_EXHAUSTION
    inj = FaultPlan([FaultSpec(site, 1.0, max_fires=1)]).build()
    inj.should_fire(site)
    inj.should_fire(site)
    assert inj.stats() == {
        "frame_exhaustion": {"opportunities": 2, "fires": 1}
    }
