"""Shared fixtures: a small hypervisor/VM/guest-kernel stack."""

from types import SimpleNamespace

import pytest

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.guest.kernel import GuestKernel
from repro.hypervisor.hypervisor import Hypervisor


@pytest.fixture()
def stack():
    """A 32 MiB VM inside a 128 MiB host, with a guest kernel."""
    clock = SimClock()
    costs = CostModel()
    hv = Hypervisor(clock, costs, host_mem_mb=128, ring_capacity=4096)
    vm = hv.create_vm("vm0", mem_mb=32)
    kernel = GuestKernel(vm, switch_interval_us=50_000.0)
    return SimpleNamespace(clock=clock, costs=costs, hv=hv, vm=vm, kernel=kernel)
