"""Tests for the cost model."""

import pytest

from repro.core.calibration import mb_to_pages
from repro.core.costs import CostModel, CostParams


@pytest.fixture()
def cm() -> CostModel:
    return CostModel()


def test_params_defaults_from_table_va(cm: CostModel):
    assert cm.params.context_switch_us == pytest.approx(0.315)
    assert cm.params.hc_init_pml_us == pytest.approx(5495.0)
    assert cm.params.hc_init_pml_shadow_us == pytest.approx(5878.0)
    assert cm.params.ioctl_init_pml_us == pytest.approx(5651.0)


def test_with_overrides_returns_new_params(cm: CostModel):
    p2 = cm.params.with_overrides(vmexit_roundtrip_us=10.0)
    assert p2.vmexit_roundtrip_us == 10.0
    assert cm.params.vmexit_roundtrip_us == 2.0  # original untouched
    assert p2.context_switch_us == cm.params.context_switch_us


def test_pf_unit_costs_scale_with_memory(cm: CostModel):
    # ufd userspace fault handling is far more expensive than the kernel
    # soft-dirty path at every size (paper Table Vb M6 vs M5).
    for mb in (1, 10, 100, 1024):
        n = mb_to_pages(mb)
        assert cm.pf_user_unit_us(n) > cm.pf_kernel_unit_us(n)


def test_clear_refs_and_pt_walk_totals(cm: CostModel):
    n = mb_to_pages(1024)
    assert cm.clear_refs_us(n) == pytest.approx(2234.0)
    assert cm.pt_walk_user_us(n) == pytest.approx(594187.0)


def test_reverse_map_scales_with_addresses_and_space(cm: CostModel):
    n = mb_to_pages(1024)
    one = cm.reverse_map_us(1, n)
    many = cm.reverse_map_us(1000, n)
    assert many == pytest.approx(one * 1000)
    # Larger address space means costlier per-address lookups.
    assert cm.reverse_map_us(100, mb_to_pages(1024)) > cm.reverse_map_us(
        100, mb_to_pages(10)
    )
    assert cm.reverse_map_us(0, n) == 0.0


def test_rb_copy_cost(cm: CostModel):
    n = mb_to_pages(1024)
    # Full sweep of the space equals the published total (0.671 ms).
    assert cm.rb_copy_us(n, n) == pytest.approx(671.0)
    assert cm.rb_copy_us(0, n) == 0.0


def test_disable_logging_spread_over_calls(cm: CostModel):
    n = mb_to_pages(1024)
    total = cm.curve("m14_disable_logging").total(n)
    assert cm.disable_logging_us(n, 10) == pytest.approx(float(total) / 10)
    assert cm.disable_logging_us(n, 0) == 0.0


def test_ufd_write_protect_reuses_clear_refs_curve(cm: CostModel):
    n = mb_to_pages(250)
    assert cm.ufd_write_protect_us(n) == pytest.approx(cm.clear_refs_us(n))


def test_cost_params_frozen():
    p = CostParams()
    with pytest.raises(AttributeError):
        p.vmread_us = 1.0  # type: ignore[misc]
