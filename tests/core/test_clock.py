"""Unit tests for the simulated clock and per-world accounting."""

import pytest

from repro.core.clock import SimClock, StopWatch, World


def test_charge_advances_time_and_attributes_world():
    clk = SimClock()
    clk.charge(5.0, World.TRACKED, "compute")
    clk.charge(2.5, World.TRACKER, "pt_walk_user")
    assert clk.now_us == pytest.approx(7.5)
    assert clk.world_us(World.TRACKED) == pytest.approx(5.0)
    assert clk.world_us(World.TRACKER) == pytest.approx(2.5)
    assert clk.world_us(World.KERNEL) == 0.0


def test_event_ledger_counts_and_times():
    clk = SimClock()
    clk.charge(1.0, World.KERNEL, "pf_kernel", count=4)
    clk.charge(0.5, World.KERNEL, "pf_kernel", count=1)
    assert clk.event_count("pf_kernel") == 5
    assert clk.event_us("pf_kernel") == pytest.approx(1.5)


def test_count_only_records_without_time():
    clk = SimClock()
    clk.count_only("pml_log", 512)
    assert clk.event_count("pml_log") == 512
    assert clk.now_us == 0.0


def test_negative_charge_rejected():
    clk = SimClock()
    with pytest.raises(ValueError):
        clk.charge(-1.0, World.TRACKED, "compute")
    with pytest.raises(ValueError):
        clk.charge(1.0, World.TRACKED, "compute", count=-1)
    with pytest.raises(ValueError):
        clk.count_only("x", -2)


def test_snapshot_and_since_isolate_an_interval():
    clk = SimClock()
    clk.charge(10.0, World.TRACKED, "compute", count=2)
    snap = clk.snapshot()
    clk.charge(3.0, World.HYPERVISOR, "vmexit", count=3)
    delta = clk.since(snap)
    assert delta.now_us == pytest.approx(3.0)
    assert delta.world_us["hypervisor"] == pytest.approx(3.0)
    assert delta.world_us["tracked"] == pytest.approx(0.0)
    assert delta.event_count["vmexit"] == 3
    # events only present before the snapshot show a zero delta
    assert delta.event_count["compute"] == 0


def test_stopwatch_measures_elapsed():
    clk = SimClock()
    clk.charge(1.0, World.TRACKED, "compute")
    sw = StopWatch(clk)
    clk.charge(4.0, World.TRACKER, "reverse_map")
    assert sw.elapsed().now_us == pytest.approx(4.0)
    assert sw.elapsed().world_us["tracker"] == pytest.approx(4.0)


def test_unseen_event_reads_as_zero():
    clk = SimClock()
    assert clk.event_count("nothing") == 0
    assert clk.event_us("nothing") == 0.0
