"""Tests for the paper-derived calibration data and size curves."""

import numpy as np
import pytest

from repro.core import calibration
from repro.core.calibration import (
    PAGES_PER_MB,
    SizeCurve,
    mb_to_pages,
    size_curves,
)
from repro.errors import ConfigurationError


def test_pages_per_mb():
    assert PAGES_PER_MB == 256
    assert mb_to_pages(1) == 256
    assert mb_to_pages(1024) == 262144


def test_all_table_vb_metrics_have_seven_points():
    for name, vals in calibration.TABLE_VB_MS.items():
        assert len(vals) == len(calibration.TABLE_VB_SIZES_MB), name


def test_curves_match_published_points_exactly():
    curves = size_curves()
    # M16 at 1 GB is 594.187 ms (paper Table Vb)
    got = curves["m16_pt_walk_user"].total(mb_to_pages(1024))
    assert got == pytest.approx(594.187 * 1000.0)
    # M17 at 250 MB is 1211 ms
    got = curves["m17_reverse_map"].total(mb_to_pages(250))
    assert got == pytest.approx(1211.0 * 1000.0)


def test_curve_interpolates_between_points():
    curves = size_curves()
    c = curves["m5_pf_kernel"]
    lo = c.total(mb_to_pages(500))
    hi = c.total(mb_to_pages(1024))
    mid = c.total(mb_to_pages(700))
    assert lo < mid < hi


def test_curve_extrapolates_below_range_proportionally():
    c = size_curves()["m6_pf_user"]
    half = c.total(mb_to_pages(1) // 2)
    full = c.total(mb_to_pages(1))
    assert half == pytest.approx(full / 2)


def test_curve_extrapolates_above_range_with_last_slope():
    c = size_curves()["m16_pt_walk_user"]
    at_1g = c.total(mb_to_pages(1024))
    at_2g = c.total(mb_to_pages(2048))
    slope = (c.total_us[-1] - c.total_us[-2]) / (c.pages[-1] - c.pages[-2])
    expected = at_1g + slope * (mb_to_pages(2048) - mb_to_pages(1024))
    assert at_2g == pytest.approx(expected)


def test_curve_vectorised_evaluation():
    c = size_curves()["m15_clear_refs"]
    xs = np.array([mb_to_pages(1), mb_to_pages(10), mb_to_pages(1024)])
    out = c.total(xs)
    assert isinstance(out, np.ndarray)
    assert out[0] == pytest.approx(32.0)  # 0.032 ms in us
    assert out[2] == pytest.approx(2234.0)


def test_unit_cost_divides_total():
    c = size_curves()["m18_rb_copy"]
    n = mb_to_pages(100)
    assert c.unit(n) == pytest.approx(float(c.total(n)) / n)
    assert c.unit(0) == 0.0


def test_reverse_map_is_superlinear():
    """The paper's M17 grows super-linearly (pagemap scan per address)."""
    c = size_curves()["m17_reverse_map"]
    assert c.unit(mb_to_pages(1024)) > 2 * c.unit(mb_to_pages(1))


def test_size_curve_validation():
    with pytest.raises(ConfigurationError):
        SizeCurve("bad", np.array([1.0]), np.array([1.0]))
    with pytest.raises(ConfigurationError):
        SizeCurve("bad", np.array([2.0, 1.0]), np.array([1.0, 2.0]))


def test_table_va_values():
    assert calibration.TABLE_VA_US["m1_context_switch"] == pytest.approx(0.315)
    assert calibration.TABLE_VA_US["m7_vmread"] == pytest.approx(0.936)
    assert calibration.TABLE_VA_US["m8_vmwrite"] == pytest.approx(0.801)
    assert calibration.PML_BUFFER_ENTRIES == 512
