"""Tests for the unified tracking API across all five techniques."""

import numpy as np
import pytest

from repro.core.clock import World
from repro.core.tracking import (
    DirtyPageTracker,
    Technique,
    make_tracker,
    register_technique,
)
from repro.errors import TrackingError

ALL = [Technique.PROC, Technique.UFD, Technique.SPML, Technique.EPML, Technique.ORACLE]


def spawn(stack, n_pages=64):
    proc = stack.kernel.spawn("tracked", n_pages=n_pages)
    proc.space.add_vma(n_pages)
    # Populate before tracking so demand-paging noise is identical.
    stack.kernel.access(proc, np.arange(n_pages), True)
    return proc


@pytest.mark.parametrize("technique", ALL)
def test_collect_reports_exactly_the_written_pages(stack, technique):
    proc = spawn(stack)
    tracker = make_tracker(technique, stack.kernel, proc)
    with tracker:
        stack.kernel.access(proc, [3, 7, 11], True)
        stack.kernel.access(proc, [20, 21], False)  # reads don't count
        dirty = tracker.collect()
    assert set(int(v) for v in dirty) == {3, 7, 11}


@pytest.mark.parametrize("technique", ALL)
def test_collect_intervals_are_disjoint(stack, technique):
    proc = spawn(stack)
    tracker = make_tracker(technique, stack.kernel, proc)
    with tracker:
        stack.kernel.access(proc, [1, 2], True)
        first = set(int(v) for v in tracker.collect())
        stack.kernel.access(proc, [2, 3], True)
        second = set(int(v) for v in tracker.collect())
    assert first == {1, 2}
    assert second == {2, 3}


@pytest.mark.parametrize("technique", ALL)
def test_empty_interval_collects_nothing(stack, technique):
    proc = spawn(stack)
    tracker = make_tracker(technique, stack.kernel, proc)
    with tracker:
        tracker.collect()  # drain initial state
        assert tracker.collect().size == 0


@pytest.mark.parametrize(
    "technique", [Technique.PROC, Technique.UFD, Technique.SPML, Technique.EPML]
)
def test_all_techniques_agree_with_oracle(stack, technique):
    """Completeness (evaluation question 3): nothing missed vs. oracle."""
    proc = spawn(stack, n_pages=256)
    rng = np.random.default_rng(42)
    oracle = make_tracker(Technique.ORACLE, stack.kernel, proc)
    tech = make_tracker(technique, stack.kernel, proc)
    oracle.start()
    tech.start()
    oracle.collect()  # reset oracle over the same window
    for _ in range(5):
        vpns = rng.integers(0, 256, size=40)
        stack.kernel.access(proc, vpns, True)
    got = set(int(v) for v in tech.collect())
    expected = set(int(v) for v in oracle.collect())
    tech.stop()
    oracle.stop()
    assert got == expected


def test_collect_before_start_rejected(stack):
    proc = spawn(stack)
    tracker = make_tracker(Technique.PROC, stack.kernel, proc)
    with pytest.raises(TrackingError):
        tracker.collect()


def test_double_start_rejected(stack):
    proc = spawn(stack)
    tracker = make_tracker(Technique.ORACLE, stack.kernel, proc)
    tracker.start()
    with pytest.raises(TrackingError):
        tracker.start()
    tracker.stop()


def test_stop_is_idempotent(stack):
    proc = spawn(stack)
    tracker = make_tracker(Technique.PROC, stack.kernel, proc)
    tracker.start()
    tracker.stop()
    tracker.stop()


def test_make_tracker_by_name(stack):
    proc = spawn(stack)
    tracker = make_tracker("epml", stack.kernel, proc)
    assert tracker.technique is Technique.EPML


def test_register_technique_requires_attribute():
    with pytest.raises(TrackingError):

        @register_technique
        class Bad(DirtyPageTracker):  # no technique attribute
            def _do_start(self):
                pass

            def _do_collect(self):
                return np.empty(0)

            def _do_stop(self):
                pass


def test_oracle_is_free(stack):
    proc = spawn(stack)
    t0 = stack.clock.now_us
    tracker = make_tracker(Technique.ORACLE, stack.kernel, proc)
    with tracker:
        tracker.collect()
    assert stack.clock.now_us == t0


def test_cost_ordering_on_collection_heavy_run(stack):
    """Tracker-side cost ordering: EPML < PROC < SPML (the paper's
    collection-phase ranking; ufd pays during monitoring instead)."""
    tracker_cost = {}
    for technique in [Technique.PROC, Technique.SPML, Technique.EPML]:
        proc = spawn(stack, n_pages=256)
        tracker = make_tracker(technique, stack.kernel, proc)
        before = stack.clock.world_us(World.TRACKER)
        with tracker:
            after_init = stack.clock.world_us(World.TRACKER)
            stack.kernel.access(proc, np.arange(256), True)
            tracker.collect()
            # Exclude start/stop constants: measure collection only.
            tracker_cost[technique] = (
                stack.clock.world_us(World.TRACKER) - after_init
            )
    assert tracker_cost[Technique.EPML] < tracker_cost[Technique.PROC]
    assert tracker_cost[Technique.PROC] < tracker_cost[Technique.SPML]


def test_proc_stop_restores_writability(stack):
    proc = spawn(stack)
    tracker = make_tracker(Technique.PROC, stack.kernel, proc)
    with tracker:
        tracker.collect()  # leaves pages write-protected (re-armed)
    r = stack.kernel.access(proc, [5], True)
    assert r.n_wp_faults == 0  # no stray tracking faults after stop
