"""Tests for the Formula 1-4 estimators (paper §VI-B)."""

import numpy as np
import pytest

from repro.core.formulas import accuracy_pct, estimate
from repro.core.tracking import Technique, make_tracker


def run_tracked(stack, technique, n_pages=256, rounds=3):
    """Run a small tracked workload; return (snapshot delta, proc)."""
    proc = stack.kernel.spawn("tracked", n_pages=n_pages)
    proc.space.add_vma(n_pages)
    stack.kernel.access(proc, np.arange(n_pages), True)
    start = stack.clock.snapshot()
    tracker = make_tracker(technique, stack.kernel, proc)
    with tracker:
        for _ in range(rounds):
            stack.kernel.access(proc, np.arange(n_pages), True)
            stack.kernel.compute(proc, 10_000.0)
            tracker.collect()
    snap = stack.clock.since(start)
    return snap, proc


@pytest.mark.parametrize(
    "technique",
    [Technique.PROC, Technique.UFD, Technique.SPML, Technique.EPML],
)
def test_formula_matches_measured_tracker_time(stack, technique):
    """Reproduces the paper's validation: estimates within a few % of
    measurement (they report 96.34% / 99% average accuracy)."""
    snap, proc = run_tracked(stack, technique)
    est = estimate(
        technique,
        snap,
        stack.costs,
        proc.space.n_pages,
        tracked_ideal_us=snap.event_us.get("compute", 0.0),
    )
    measured_tracker = snap.world_us["tracker"]
    assert accuracy_pct(est.tracker_us, measured_tracker) > 90.0


@pytest.mark.parametrize(
    "technique",
    [Technique.PROC, Technique.UFD, Technique.SPML, Technique.EPML],
)
def test_formula_matches_measured_tracked_time(stack, technique):
    snap, proc = run_tracked(stack, technique)
    est = estimate(
        technique,
        snap,
        stack.costs,
        proc.space.n_pages,
        tracked_ideal_us=snap.event_us.get("compute", 0.0),
    )
    measured_wall = snap.now_us
    assert accuracy_pct(est.tracked_us, measured_wall) > 90.0


def test_oracle_estimates_zero_overhead(stack):
    snap, proc = run_tracked(stack, Technique.ORACLE)
    est = estimate(Technique.ORACLE, snap, stack.costs, proc.space.n_pages, 100.0)
    assert est.technique_us == 0.0
    assert est.interference_us == 0.0
    assert est.tracked_us == pytest.approx(100.0)


def test_epml_interference_far_below_spml(stack):
    """Formula 4's punchline: I(EPML) = N x vmrw; I(SPML) adds vmexits."""
    snap_s, proc_s = run_tracked(stack, Technique.SPML)
    est_s = estimate(Technique.SPML, snap_s, stack.costs, proc_s.space.n_pages, 0.0)
    snap_e, proc_e = run_tracked(stack, Technique.EPML)
    est_e = estimate(Technique.EPML, snap_e, stack.costs, proc_e.space.n_pages, 0.0)
    assert est_e.interference_us < est_s.interference_us
    assert est_e.technique_us < est_s.technique_us


def test_routine_time_included_in_tracker(stack):
    snap, proc = run_tracked(stack, Technique.PROC)
    est = estimate(
        Technique.PROC, snap, stack.costs, proc.space.n_pages, 0.0, routine_us=500.0
    )
    assert est.tracker_us == pytest.approx(est.technique_us + 500.0)


def test_accuracy_pct_edges():
    assert accuracy_pct(100.0, 100.0) == pytest.approx(100.0)
    assert accuracy_pct(90.0, 100.0) == pytest.approx(90.0)
    assert accuracy_pct(0.0, 0.0) == 100.0
    assert accuracy_pct(1.0, 0.0) == 0.0
