"""Tests for the OoH module/lib: SPML and EPML attachments."""

import numpy as np
import pytest

from repro.core.clock import World
from repro.core.costs import (
    EV_HC_INIT_PML,
    EV_HC_INIT_PML_SHADOW,
    EV_REVERSE_MAP,
    EV_SELF_IPI,
    EV_VMWRITE,
)
from repro.core.ooh import OohKind, OohLib, OohModule
from repro.errors import TrackingError


@pytest.fixture()
def ooh(stack):
    module = OohModule(stack.kernel, ring_capacity=4096)
    return OohLib(module)


def spawn_tracked(stack, n_pages=64):
    proc = stack.kernel.spawn("tracked", n_pages=n_pages)
    proc.space.add_vma(n_pages)
    return proc


def test_spml_attach_collect_detach(stack, ooh):
    proc = spawn_tracked(stack)
    att = ooh.attach(proc, OohKind.SPML)
    assert stack.clock.event_count(EV_HC_INIT_PML) == 1
    stack.kernel.access(proc, np.arange(10), True)
    vpns = ooh.fetch(att)
    assert set(int(v) for v in vpns) == set(range(10))
    assert stack.clock.event_count(EV_REVERSE_MAP) == 10
    ooh.detach(att)
    with pytest.raises(TrackingError):
        ooh.fetch(att)


def test_spml_rearms_between_collections(stack, ooh):
    proc = spawn_tracked(stack)
    att = ooh.attach(proc, OohKind.SPML)
    stack.kernel.access(proc, [0, 1], True)
    first = ooh.fetch(att)
    assert set(first) == {0, 1}
    # No new writes: nothing to report.
    assert ooh.fetch(att).size == 0
    # Rewriting the same pages logs them again (EPT dirty bits re-armed).
    stack.kernel.access(proc, [1], True)
    assert set(ooh.fetch(att)) == {1}


def test_spml_sched_switch_costs_hypercalls(stack, ooh):
    proc = spawn_tracked(stack)
    att = ooh.attach(proc, OohKind.SPML)
    exits_before = stack.vm.vcpu.n_vmexits
    stack.kernel.compute(proc, 50_000.0)  # exactly one switch pair
    # disable_logging + enable_logging hypercalls = 2 vmexits.
    assert stack.vm.vcpu.n_vmexits == exits_before + 2
    ooh.detach(att)


def test_epml_sched_switch_uses_vmwrites_not_vmexits(stack, ooh):
    proc = spawn_tracked(stack)
    att = ooh.attach(proc, OohKind.EPML)
    exits_before = stack.vm.vcpu.n_vmexits
    writes_before = stack.clock.event_count(EV_VMWRITE)
    stack.kernel.compute(proc, 50_000.0)
    assert stack.vm.vcpu.n_vmexits == exits_before  # zero vmexits
    assert stack.clock.event_count(EV_VMWRITE) == writes_before + 2
    ooh.detach(att)


def test_epml_attach_collect(stack, ooh):
    proc = spawn_tracked(stack)
    att = ooh.attach(proc, OohKind.EPML)
    assert stack.clock.event_count(EV_HC_INIT_PML_SHADOW) == 1
    stack.kernel.access(proc, np.arange(12), True)
    vpns = ooh.fetch(att)
    assert set(int(v) for v in vpns) == set(range(12))
    # EPML logs GVAs: no reverse mapping happened.
    assert stack.clock.event_count(EV_REVERSE_MAP) == 0
    ooh.detach(att)


def test_epml_rearms_via_pte_dirty(stack, ooh):
    proc = spawn_tracked(stack)
    att = ooh.attach(proc, OohKind.EPML)
    stack.kernel.access(proc, [3], True)
    assert set(ooh.fetch(att)) == {3}
    assert ooh.fetch(att).size == 0
    stack.kernel.access(proc, [3], True)
    assert set(ooh.fetch(att)) == {3}
    ooh.detach(att)


def test_epml_buffer_full_raises_self_ipi(stack, ooh):
    proc = spawn_tracked(stack, n_pages=2048)
    att = ooh.attach(proc, OohKind.EPML)
    # More writes than the 512-entry guest PML buffer.
    stack.kernel.access(proc, np.arange(1200), True)
    assert stack.clock.event_count(EV_SELF_IPI) >= 2
    assert stack.vm.vcpu.pml.n_guest_full_events >= 2
    vpns = ooh.fetch(att)
    assert vpns.size == 1200  # nothing lost
    assert att.last_stats.dropped == 0
    ooh.detach(att)


def test_epml_no_vmexits_during_monitoring(stack, ooh):
    """EPML's headline property: the hypervisor is off the critical path."""
    proc = spawn_tracked(stack, n_pages=2048)
    att = ooh.attach(proc, OohKind.EPML)
    exits_before = stack.vm.vcpu.n_vmexits
    stack.kernel.access(proc, np.arange(1200), True)
    ooh.fetch(att)
    assert stack.vm.vcpu.n_vmexits == exits_before
    ooh.detach(att)


def test_single_attachment_at_a_time(stack, ooh):
    a = spawn_tracked(stack)
    b = stack.kernel.spawn("other", n_pages=8)
    att = ooh.attach(a, OohKind.SPML)
    with pytest.raises(TrackingError):
        ooh.attach(b, OohKind.EPML)
    ooh.detach(att)
    b.space.add_vma(8)
    att2 = ooh.attach(b, OohKind.EPML)
    ooh.detach(att2)


def test_attach_unknown_process_rejected(stack, ooh):
    proc = spawn_tracked(stack)
    stack.kernel.exit_process(proc)
    with pytest.raises(TrackingError):
        ooh.attach(proc, OohKind.SPML)


def test_spml_only_logs_while_tracked_scheduled(stack, ooh):
    """Logging is disabled while other processes run (per-process
    granularity via the schedule hooks, challenge C2)."""
    tracked = spawn_tracked(stack)
    other = stack.kernel.spawn("other", n_pages=32)
    other.space.add_vma(32)
    att = ooh.attach(tracked, OohKind.SPML)
    # Simulate tracked being descheduled: fire its sched-out hook.
    stack.kernel.scheduler.switch(tracked)  # out+in; logging re-enabled
    # Manually disable via a forged sched-out-only situation:
    ooh.module._spml_disable(tracked)
    stack.kernel.access(other, np.arange(5), True)
    ooh.module._spml_enable(tracked)
    stack.kernel.access(tracked, [7], True)
    vpns = ooh.fetch(att)
    assert set(int(v) for v in vpns) == {7}
    ooh.detach(att)


def test_tracker_world_charged_for_init(stack, ooh):
    proc = spawn_tracked(stack)
    before = stack.clock.world_us(World.TRACKER)
    att = ooh.attach(proc, OohKind.SPML)
    # ioctl M3 (5651 us) + hypercall M9 (5495 us) at least.
    assert stack.clock.world_us(World.TRACKER) - before >= 11_000
    ooh.detach(att)
