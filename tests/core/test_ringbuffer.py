"""Unit + property tests for the shared ring buffer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ringbuffer import RingBuffer
from repro.errors import ConfigurationError


def test_push_and_pop_fifo_order():
    rb = RingBuffer(8)
    rb.push([1, 2, 3])
    rb.push([4])
    assert list(rb.pop_all()) == [1, 2, 3, 4]
    assert len(rb) == 0


def test_peek_does_not_consume():
    rb = RingBuffer(4)
    rb.push([7, 8])
    assert list(rb.peek_all()) == [7, 8]
    assert list(rb.pop_all()) == [7, 8]


def test_wraparound():
    rb = RingBuffer(4)
    rb.push([1, 2, 3])
    rb.pop_all()
    rb.push([4, 5, 6])  # wraps around the end of the backing array
    assert list(rb.pop_all()) == [4, 5, 6]


def test_overflow_drops_oldest_and_counts():
    rb = RingBuffer(4)
    rb.push([1, 2, 3, 4])
    dropped = rb.push([5, 6])
    assert dropped == 2
    assert rb.total_dropped == 2
    assert list(rb.pop_all()) == [3, 4, 5, 6]


def test_push_larger_than_capacity_keeps_newest():
    rb = RingBuffer(4)
    rb.push([0])
    dropped = rb.push(np.arange(10))
    assert dropped == 7  # the pre-existing entry plus 6 overflowed new ones
    assert list(rb.pop_all()) == [6, 7, 8, 9]


def test_total_pushed_counts_everything():
    rb = RingBuffer(4)
    rb.push([1, 2])
    rb.push(np.arange(10))
    assert rb.total_pushed == 12


def test_zero_capacity_rejected():
    with pytest.raises(ConfigurationError):
        RingBuffer(0)


def test_empty_push_and_pop():
    rb = RingBuffer(4)
    assert rb.push([]) == 0
    assert rb.pop_all().size == 0


def test_clear():
    rb = RingBuffer(4)
    rb.push([1, 2, 3])
    rb.clear()
    assert len(rb) == 0
    assert rb.pop_all().size == 0


@settings(max_examples=200, deadline=None)
@given(
    cap=st.integers(min_value=1, max_value=64),
    chunks=st.lists(
        st.lists(st.integers(min_value=0, max_value=2**63 - 1), max_size=100),
        max_size=20,
    ),
)
def test_property_suffix_preserved(cap, chunks):
    """After any push sequence the buffer holds exactly the newest
    min(capacity, total) entries in order, and pushed == retained + dropped."""
    rb = RingBuffer(cap)
    reference: list[int] = []
    for chunk in chunks:
        rb.push(chunk)
        reference.extend(chunk)
    expected = reference[-cap:] if reference else []
    got = [int(x) for x in rb.peek_all()]
    assert got == expected[-len(got):] if got else expected == []
    assert got == reference[len(reference) - len(got):]
    assert rb.total_pushed == len(reference)
    assert rb.total_pushed == len(rb) + rb.total_dropped
