"""Differential validation: the SMP-capable simulator at ``n_vcpus=1``.

The SMP refactor threads per-vCPU PML buffers, TLBs, and IPI paths through
every layer, but a single-vCPU VM must behave *bit-identically* to the
pre-SMP simulator: same collected dirty sets, same clock totals, same
event counts, same page-table/EPT/host-memory state.  Two witnesses:

1. Construction-path equivalence — a stack built with an explicit
   ``n_vcpus=1`` equals one built through the ``REPRO_VCPUS`` environment
   default, full state, for every technique (randomized workloads).
2. Degenerate SMP paths — the kernel's shootdown/flush-all entry points
   at ``n_vcpus=1`` collapse to the plain single-TLB primitives: zero
   IPIs, zero shootdown events, zero clock charge beyond the local op.

A third check pins the *semantic* invariant across counts: the same
workload on a 4-vCPU VM whose only process never migrates collects the
exact same dirty sets as the 1-vCPU run (tracker-visible equivalence).
"""

import os
from unittest import mock

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tracking import make_tracker
from repro.experiments.harness import build_stack
from tests.smp.helpers import full_state

TECHNIQUES = ("spml", "epml", "oracle", "proc", "ufd")
N_PAGES = 96
ROUNDS_MAX = 6


class SmpHarness:
    """Production stack + one tracked process, wired for state capture."""

    def __init__(self, n_vcpus: int | None = 1) -> None:
        self.stack = build_stack(
            vm_mb=16, pml_buffer_entries=32, n_vcpus=n_vcpus
        )
        self.kernel = self.stack.kernel
        self.proc = self.kernel.spawn("app", n_pages=N_PAGES)
        self.proc.space.add_vma(N_PAGES)
        self.collected: list[list[int]] = []

    def drive(self, technique: str, batches: list[list[tuple[int, bool]]]):
        self.kernel.access(self.proc, np.arange(N_PAGES), True)
        tracker = make_tracker(technique, self.kernel, self.proc)
        tracker.start()
        for batch in batches:
            vpns = np.array([v for v, _ in batch], dtype=np.int64)
            writes = np.array([w for _, w in batch], dtype=bool)
            self.kernel.access(self.proc, vpns, writes)
            self.collected.append(sorted(int(v) for v in tracker.collect()))
        tracker.stop()
        return self

    def state(self) -> tuple:
        return full_state(
            self.stack.vm, self.stack.clock, self.proc, self.collected
        )


BATCHES = st.lists(
    st.lists(
        st.tuples(st.integers(0, N_PAGES - 1), st.booleans()),
        min_size=1,
        max_size=40,
    ),
    min_size=1,
    max_size=ROUNDS_MAX,
)


def test_default_stack_is_single_vcpu(monkeypatch):
    monkeypatch.delenv("REPRO_VCPUS", raising=False)
    stack = build_stack(vm_mb=16)
    assert stack.vm.n_vcpus == 1
    assert len(stack.vm.vcpus) == 1
    assert stack.vm.vcpu is stack.vm.vcpus[0]


@pytest.mark.parametrize("technique", TECHNIQUES)
@settings(max_examples=15, deadline=None)
@given(batches=BATCHES)
def test_explicit_equals_env_default(technique, batches):
    """Full-state bit-identity between the two n_vcpus=1 construction
    paths, per technique, over randomized write/collect schedules."""
    with mock.patch.dict(os.environ, {"REPRO_VCPUS": "1"}):
        explicit = SmpHarness(n_vcpus=1).drive(technique, batches)
        from_env = SmpHarness(n_vcpus=None).drive(technique, batches)
    assert explicit.state() == from_env.state()


@pytest.mark.parametrize("technique", TECHNIQUES)
@settings(max_examples=10, deadline=None)
@given(batches=BATCHES)
def test_pinned_smp_collects_identically(technique, batches):
    """A 4-vCPU VM whose sole process never migrates must report the
    same dirty sets per round as the 1-vCPU run — vCPU count alone can
    never change tracking semantics."""
    uni = SmpHarness(n_vcpus=1).drive(technique, batches)
    smp = SmpHarness(n_vcpus=4).drive(technique, batches)
    assert smp.kernel.scheduler.vcpu_of(smp.proc) == 0
    assert uni.collected == smp.collected


def test_shootdown_degenerates_at_nvcpus1():
    """kernel.tlb_shootdown with one vCPU == plain tlb.invalidate: no
    IPIs, no clock charge, no pending work."""
    h = SmpHarness(n_vcpus=1)
    h.kernel.access(h.proc, np.arange(N_PAGES), True)
    tlb = h.proc.space.tlb
    assert tlb.n_cached == N_PAGES
    before_us = h.stack.clock.now_us
    before_ipis = h.stack.vm.vcpu.interrupts.n_posted
    n = h.kernel.tlb_shootdown(h.proc, np.arange(10))
    assert n == 0
    assert tlb.cached_any(np.arange(10)) is False
    assert tlb.n_cached == N_PAGES - 10
    assert h.stack.clock.now_us == before_us
    assert h.stack.vm.vcpu.interrupts.n_posted == before_ipis
    assert all(not q for q in h.kernel._pending_shootdowns)


def test_flush_all_degenerates_at_nvcpus1():
    """kernel.tlb_flush_all with one vCPU == plain tlb.flush."""
    h = SmpHarness(n_vcpus=1)
    h.kernel.access(h.proc, np.arange(N_PAGES), True)
    before_ipis = h.stack.vm.vcpu.interrupts.n_posted
    n = h.kernel.tlb_flush_all(h.proc)
    assert n == 0
    assert h.proc.space.tlb.n_cached == 0
    assert h.proc.space.tlb.n_flushes == 1
    assert h.stack.vm.vcpu.interrupts.n_posted == before_ipis
