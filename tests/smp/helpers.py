"""State-capture helpers shared by the SMP and fleet differential tests.

Two witnesses of "nothing changed that shouldn't have":

* :func:`full_state` — the entire simulator state as one comparable
  tuple (page tables, EPT, host memory contents, clock ledger, per-vCPU
  PML/vmexit counters, TLB stats).  Bit-identity of two runs through
  this tuple is the SMP differential's equality notion.
* :func:`process_memory_state` — just a process's (mapped vpns, content
  tokens), the memory-equality witness the migration differentials use
  to prove a destination ended up with exactly the source's bytes.
"""

import numpy as np


def full_state(vm, clock, proc, collected=()) -> tuple:
    """Full simulator state for bit-identity comparisons."""
    snap = clock.snapshot()
    return (
        list(collected),
        proc.space.pt.flags.tolist(),
        proc.space.pt.gpfn.tolist(),
        vm.ept.flags.tolist(),
        vm.mmu.host_mem._content.tolist(),
        clock.now_us,
        dict(snap.event_count),
        [vc.pml.n_hyp_full_events for vc in vm.vcpus],
        [vc.pml.n_guest_full_events for vc in vm.vcpus],
        [vc.n_vmexits for vc in vm.vcpus],
        [t.n_flushes for t in proc.space.tlbs],
        [t.n_invalidations for t in proc.space.tlbs],
    )


def process_memory_state(kernel, proc) -> tuple[np.ndarray, np.ndarray]:
    """(mapped vpns, content tokens) of a process's present pages."""
    vpns = proc.space.mapped_vpns()
    vpns = vpns[proc.space.pt.present_mask(vpns)]
    tokens = kernel.vm.mmu.read_page_contents(proc.space.pt, vpns)
    return vpns, tokens
