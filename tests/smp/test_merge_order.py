"""Deterministic merge of per-vCPU PML logs (SMP).

Each vCPU fills its own PML buffer; the hypervisor (SPML) or the OoH
module (EPML) merges them into one ring.  The merge must be (a) complete
— entries from every vCPU the process wrote on arrive, tagged with their
source — and (b) deterministic — residual buffers always drain in
ascending vCPU id, so replaying a schedule reproduces the exact stream.
``RingBuffer.pushed_by_source`` provides the per-source accounting.
"""

import numpy as np

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.core.tracking import Technique, make_tracker
from repro.guest.kernel import GuestKernel
from repro.hypervisor.hypervisor import Hypervisor

N_PAGES = 128
PML_ENTRIES = 16  # small buffer => every round overflows into the ring


def _stack(n_vcpus=2):
    clock = SimClock()
    hv = Hypervisor(clock, CostModel(), host_mem_mb=64)
    vm = hv.create_vm(
        "vm0", mem_mb=8, pml_buffer_entries=PML_ENTRIES, n_vcpus=n_vcpus
    )
    kernel = GuestKernel(vm)
    proc = kernel.spawn("app", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    return hv, kernel, proc


def _write_on_each_vcpu(kernel, proc):
    """One write burst per vCPU (explicit migrations between bursts)."""
    n = kernel.vm.n_vcpus
    bounds = np.linspace(0, N_PAGES, n + 1, dtype=np.int64)
    for k in range(n):
        kernel.scheduler.migrate(proc, k)
        kernel.access(proc, np.arange(bounds[k], bounds[k + 1]), True)


def test_spml_ring_sees_every_source():
    hv, kernel, proc = _stack(n_vcpus=2)
    kernel.access(proc, np.arange(N_PAGES), True)
    tracker = make_tracker(Technique.SPML, kernel, proc)
    tracker.start()
    _write_on_each_vcpu(kernel, proc)
    dirty = tracker.collect()
    assert set(range(N_PAGES)) <= set(int(v) for v in dirty)
    ring = kernel.vm.spml_ring
    assert sorted(ring.pushed_by_source) == [0, 1]
    assert sum(ring.pushed_by_source.values()) == ring.total_pushed
    tracker.stop()


def test_epml_ring_sees_every_source():
    hv, kernel, proc = _stack(n_vcpus=2)
    kernel.access(proc, np.arange(N_PAGES), True)
    tracker = make_tracker(Technique.EPML, kernel, proc)
    tracker.start()
    _write_on_each_vcpu(kernel, proc)
    dirty = tracker.collect()
    assert set(range(N_PAGES)) <= set(int(v) for v in dirty)
    ring = tracker._att.ring
    assert sorted(ring.pushed_by_source) == [0, 1]
    assert sum(ring.pushed_by_source.values()) == ring.total_pushed
    tracker.stop()


def test_hypervisor_harvest_merges_all_vcpus():
    """Whole-VM dirty logging (live migration's harvest): residual
    per-vCPU buffers drain in ascending id and the harvest covers every
    page written, regardless of which vCPU wrote it."""
    hv, kernel, proc = _stack(n_vcpus=3)
    kernel.access(proc, np.arange(N_PAGES), True)
    hv.enable_vm_dirty_logging(kernel.vm)
    kernel.vm.ept.clear_dirty()  # arm 0->1 logging (pre-copy start)
    _write_on_each_vcpu(kernel, proc)
    dirty_gpfns = hv.harvest_vm_dirty(kernel.vm)
    written_gpfns = set(
        int(g) for g in proc.space.pt.translate(np.arange(N_PAGES))
    )
    assert written_gpfns <= set(int(g) for g in dirty_gpfns)
    hv.disable_vm_dirty_logging(kernel.vm)


def test_merge_stream_is_replay_identical():
    """Same schedule, two runs: the merged ring receives entries in the
    identical order (ascending-vCPU-id residual drains are the only tie
    break, and they are fixed)."""

    def run():
        hv, kernel, proc = _stack(n_vcpus=2)
        kernel.access(proc, np.arange(N_PAGES), True)
        tracker = make_tracker(Technique.EPML, kernel, proc)
        tracker.start()
        _write_on_each_vcpu(kernel, proc)
        ring = tracker._att.ring
        stream = [int(v) for v in ring.peek_all()]
        by_source = dict(ring.pushed_by_source)
        tracker.collect()
        tracker.stop()
        return stream, by_source

    assert run() == run()
