"""Schedule-fuzz: dirty tracking is schedule-independent (SMP).

Seeded random vCPU interleavings — explicit migrations, quantum-expiry
round-robin rotations driven through ``compute``, writes split across
the resulting placements — must never change *what* a tracker collects:
for any schedule, the collected dirty set equals the oracle's (ground
truth read straight from PTE dirty bits) round for round.

52 distinct schedules (26 seeds x n_vcpus in {2, 4}) drive SPML and
EPML against the oracle on identically-scheduled stacks.  The same
schedule replayed twice must also be bit-reproducible (same clock, same
event counts) — the interleavings are deterministic by construction.
"""

import random

import numpy as np
import pytest

from repro.core.tracking import make_tracker
from repro.experiments.harness import build_stack

SEEDS = range(26)
VCPU_COUNTS = (2, 4)
SWITCH_INTERVAL_US = 200.0


def _make_schedule(seed: int, n_vcpus: int):
    """A deterministic random schedule: per-round op lists."""
    py = random.Random(seed * 7919 + n_vcpus)
    n_pages = py.choice([64, 96, 128])
    rounds = py.randint(2, 4)
    schedule = []
    for _ in range(rounds):
        ops = []
        for _ in range(py.randint(1, 6)):
            r = py.random()
            if r < 0.3:
                ops.append(("migrate", py.randrange(n_vcpus)))
            elif r < 0.5:
                # Enough runtime to cross quantum boundaries: the
                # scheduler's round-robin rotation moves the process to
                # the next vCPU mid-round.
                ops.append(("compute", py.uniform(50.0, 600.0)))
            else:
                k = py.randint(1, n_pages)
                ops.append(
                    ("write", py.sample(range(n_pages), k))
                )
        schedule.append(ops)
    return n_pages, schedule


def _run(technique: str, n_pages: int, n_vcpus: int, schedule) -> dict:
    stack = build_stack(
        vm_mb=16,
        pml_buffer_entries=32,
        switch_interval_us=SWITCH_INTERVAL_US,
        n_vcpus=n_vcpus,
    )
    proc = stack.kernel.spawn("app", n_pages=n_pages)
    proc.space.add_vma(n_pages)
    stack.kernel.access(proc, np.arange(n_pages), True)
    tracker = make_tracker(technique, stack.kernel, proc)
    tracker.start()
    collected = []
    vcpus_seen = set()
    for ops in schedule:
        for op, arg in ops:
            if op == "migrate":
                stack.kernel.scheduler.migrate(proc, arg)
            elif op == "compute":
                stack.kernel.compute(proc, arg)
            else:
                stack.kernel.access(
                    proc, np.array(arg, dtype=np.int64), True
                )
            vcpus_seen.add(stack.kernel.scheduler.vcpu_of(proc))
        collected.append(sorted(int(v) for v in tracker.collect()))
    tracker.stop()
    return {
        "collected": collected,
        "vcpus_seen": vcpus_seen,
        "clock_us": stack.clock.now_us,
        "event_count": dict(stack.clock.snapshot().event_count),
        "pml_fulls": [vc.pml.n_hyp_full_events for vc in stack.vm.vcpus],
        "n_migrations": stack.kernel.scheduler.n_migrations,
        "n_switches": stack.kernel.scheduler.n_switches,
    }


@pytest.mark.parametrize("n_vcpus", VCPU_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_collected_set_matches_oracle_under_any_schedule(seed, n_vcpus):
    n_pages, schedule = _make_schedule(seed, n_vcpus)
    oracle = _run("oracle", n_pages, n_vcpus, schedule)
    for technique in ("spml", "epml"):
        got = _run(technique, n_pages, n_vcpus, schedule)
        assert got["collected"] == oracle["collected"], (
            f"{technique} diverged from oracle under schedule "
            f"(seed={seed}, n_vcpus={n_vcpus})"
        )


@pytest.mark.parametrize("seed", [0, 5, 7])
def test_schedules_actually_interleave(seed):
    """The fuzzer is not vacuous: schedules genuinely bounce the process
    across vCPUs (migrations and quantum rotations both occur)."""
    n_pages, schedule = _make_schedule(seed, 2)
    r = _run("spml", n_pages, 2, schedule)
    assert len(r["vcpus_seen"]) > 1
    assert r["n_migrations"] + r["n_switches"] > 0


@pytest.mark.parametrize("technique", ("spml", "epml"))
@pytest.mark.parametrize("seed", [3, 11])
def test_same_schedule_is_bit_reproducible(technique, seed):
    """Replaying one schedule gives identical clocks, event counts, and
    per-vCPU buffer-full tallies — interleaving is deterministic."""
    n_pages, schedule = _make_schedule(seed, 4)
    a = _run(technique, n_pages, 4, schedule)
    b = _run(technique, n_pages, 4, schedule)
    assert a == b
