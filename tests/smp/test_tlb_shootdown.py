"""Cross-vCPU TLB shootdown discipline (SMP).

The single-vCPU discipline (``tests/guest/test_tlb_discipline.py``) says:
every path that downgrades a cached translation must invalidate it.  On
SMP the translation may be cached on a *different* vCPU than the one the
downgrade runs on — the classic lost-write hazard: a tracker re-arms
dirty logging while the process sits on vCPU B, but vCPU A still holds a
writable dirty translation; a later write on vCPU A would then dodge the
logging circuit entirely.  These tests pin the shootdown at every
downgrade site: a write on vCPU A after a permission change initiated
from vCPU B must never be lost.
"""

import numpy as np

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.core.tracking import Technique, make_tracker
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.guest.kernel import GuestKernel
from repro.hypervisor.hypervisor import Hypervisor

N_PAGES = 128


def _stack(n_vcpus=2, vm_mb=8):
    clock = SimClock()
    hv = Hypervisor(clock, CostModel(), host_mem_mb=vm_mb * 4)
    vm = hv.create_vm("vm0", mem_mb=vm_mb, n_vcpus=n_vcpus)
    kernel = GuestKernel(vm)
    proc = kernel.spawn("app", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    return kernel, proc


def test_shootdown_reaches_remote_tlb():
    """Translations cached while running on vCPU 0 are invalidated by a
    shootdown initiated after migrating to vCPU 1."""
    kernel, proc = _stack()
    vpns = np.arange(0, 16, dtype=np.int64)
    kernel.access(proc, vpns, True)  # fills tlbs[0]
    assert proc.space.tlbs[0].cached_mask(vpns).all()
    kernel.scheduler.migrate(proc, 1)
    n = kernel.tlb_shootdown(proc, vpns)
    assert n == 1  # exactly one remote vCPU held the translations
    assert not proc.space.tlbs[0].cached_mask(vpns).any()
    # Delivery is synchronous: nothing left pending.
    assert all(not q for q in kernel._pending_shootdowns)


def test_shootdown_skips_clean_vcpus():
    """A remote vCPU caching none of the VPNs gets no IPI (mm_cpumask
    filtering): at 4 vCPUs with the process only ever on vCPU 0, a
    shootdown from vCPU 1 targets exactly vCPU 0."""
    kernel, proc = _stack(n_vcpus=4)
    vpns = np.arange(0, 16, dtype=np.int64)
    kernel.access(proc, vpns, True)
    kernel.scheduler.migrate(proc, 1)
    ipis_before = [vc.interrupts.n_posted for vc in kernel.vm.vcpus]
    assert kernel.tlb_shootdown(proc, vpns) == 1
    delta = [
        vc.interrupts.n_posted - b
        for vc, b in zip(kernel.vm.vcpus, ipis_before)
    ]
    assert delta == [1, 0, 0, 0]


def test_flush_all_reaches_every_dirty_tlb():
    kernel, proc = _stack(n_vcpus=3)
    kernel.access(proc, np.arange(0, 8), True)        # vCPU 0
    kernel.scheduler.migrate(proc, 1)
    kernel.access(proc, np.arange(8, 16), True)       # vCPU 1
    kernel.scheduler.migrate(proc, 2)
    assert kernel.tlb_flush_all(proc) == 2
    assert all(t.n_cached == 0 for t in proc.space.tlbs)


def test_epml_write_after_remote_rearm_not_lost():
    """The ISSUE scenario for EPML: collect re-arms (clears PTE dirty)
    from vCPU 1 while vCPU 0 caches the dirty translations; a subsequent
    write back on vCPU 0 must re-walk and be collected, not lost."""
    kernel, proc = _stack()
    vpns = np.arange(0, 32, dtype=np.int64)
    kernel.access(proc, vpns, True)
    tracker = make_tracker(Technique.EPML, kernel, proc)
    tracker.start()
    kernel.access(proc, vpns, True)            # dirty on vCPU 0
    kernel.scheduler.migrate(proc, 1)
    first = tracker.collect()                  # re-arm initiated on vCPU 1
    assert set(vpns.tolist()) <= set(int(v) for v in first)
    assert not proc.space.tlbs[0].cached_mask(vpns).any()
    kernel.scheduler.migrate(proc, 0)
    kernel.access(proc, vpns, True)            # write again on vCPU 0
    second = tracker.collect()
    assert set(vpns.tolist()) <= set(int(v) for v in second)
    tracker.stop()


def test_oracle_write_after_remote_rearm_not_lost():
    kernel, proc = _stack()
    vpns = np.arange(0, 32, dtype=np.int64)
    kernel.access(proc, vpns, True)
    tracker = make_tracker(Technique.ORACLE, kernel, proc)
    tracker.start()
    kernel.access(proc, vpns, True)
    kernel.scheduler.migrate(proc, 1)
    first = tracker.collect()
    assert set(vpns.tolist()) <= set(int(v) for v in first)
    kernel.scheduler.migrate(proc, 0)
    kernel.access(proc, vpns, True)
    second = tracker.collect()
    assert set(vpns.tolist()) <= set(int(v) for v in second)
    tracker.stop()


def test_proc_clear_refs_flushes_remote_tlbs():
    """/proc soft-dirty: clear_refs from vCPU 1 must flush vCPU 0's TLB
    (the real-Linux bug class the flush discipline exists to prevent)."""
    kernel, proc = _stack()
    vpns = np.arange(0, 32, dtype=np.int64)
    kernel.access(proc, vpns, True)
    tracker = make_tracker(Technique.PROC, kernel, proc)
    kernel.scheduler.migrate(proc, 1)
    tracker.start()                            # clear_refs on vCPU 1
    assert proc.space.tlbs[0].n_cached == 0
    kernel.scheduler.migrate(proc, 0)
    kernel.access(proc, vpns, True)
    dirty = tracker.collect()
    assert set(vpns.tolist()) <= set(int(v) for v in dirty)
    tracker.stop()


def test_ufd_write_protect_shoots_down_remote():
    """userfaultfd write-protect armed from vCPU 1 must invalidate the
    writable translations vCPU 0 still caches."""
    kernel, proc = _stack()
    vpns = np.arange(0, 32, dtype=np.int64)
    kernel.access(proc, vpns, True)
    assert proc.space.tlbs[0].cached_mask(vpns).all()
    kernel.scheduler.migrate(proc, 1)
    tracker = make_tracker(Technique.UFD, kernel, proc)
    tracker.start()
    assert not proc.space.tlbs[0].cached_mask(vpns).any()
    kernel.scheduler.migrate(proc, 0)
    kernel.access(proc, vpns, True)
    dirty = tracker.collect()
    assert set(vpns.tolist()) <= set(int(v) for v in dirty)
    tracker.stop()


def test_shootdown_ipis_survive_ipi_fault_injection():
    """Shootdown IPIs are reliable (the initiator spins for the ack) —
    the LOST_SELF_IPI fault site must not drop them, or a stale remote
    translation would silently leak writes."""
    kernel, proc = _stack()
    vpns = np.arange(0, 16, dtype=np.int64)
    kernel.access(proc, vpns, True)
    kernel.scheduler.migrate(proc, 1)
    plan = FaultPlan([FaultSpec(FaultSite.LOST_SELF_IPI, 1.0)])
    with plan.active():
        assert kernel.tlb_shootdown(proc, vpns) == 1
    assert not proc.space.tlbs[0].cached_mask(vpns).any()
