"""Tests for guest page tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, InvalidAddressError
from repro.hw.pagetable import (
    PTE_DIRTY,
    PTE_SOFT_DIRTY,
    PTE_UFD_WP,
    PTE_WRITABLE,
    PageTable,
)


def test_map_sets_present_writable_softdirty():
    pt = PageTable(16)
    pt.map([0, 3, 5], [10, 11, 12])
    assert pt.present_mask([0, 3, 5]).all()
    assert pt.flag_mask([0, 3, 5], PTE_WRITABLE).all()
    # New anonymous mappings are born soft-dirty (Linux semantics).
    assert pt.flag_mask([0, 3, 5], PTE_SOFT_DIRTY).all()
    assert not pt.present_mask([1]).any()


def test_translate_and_unmap():
    pt = PageTable(8)
    pt.map([2, 4], [20, 40])
    assert list(pt.translate([4, 2])) == [40, 20]
    freed = pt.unmap([2])
    assert list(freed) == [20]
    with pytest.raises(InvalidAddressError):
        pt.translate([2])


def test_flag_set_clear():
    pt = PageTable(8)
    pt.map([1], [5])
    pt.clear_flags([1], PTE_SOFT_DIRTY | PTE_WRITABLE)
    assert not pt.flag_mask([1], PTE_SOFT_DIRTY).any()
    assert not pt.flag_mask([1], PTE_WRITABLE).any()
    assert pt.present_mask([1]).all()
    pt.set_flags([1], PTE_DIRTY)
    assert pt.flag_mask([1], PTE_DIRTY).all()


def test_vpns_with_flag():
    pt = PageTable(8)
    pt.map([0, 1, 2], [5, 6, 7])
    pt.clear_flags([0, 1, 2], PTE_SOFT_DIRTY)
    pt.set_flags([1], PTE_SOFT_DIRTY)
    assert list(pt.vpns_with_flag(PTE_SOFT_DIRTY)) == [1]
    assert list(pt.mapped_vpns()) == [0, 1, 2]


def test_ufd_wp_flag_roundtrip():
    pt = PageTable(4)
    pt.map([0], [1])
    pt.set_flags([0], PTE_UFD_WP)
    assert pt.flag_mask([0], PTE_UFD_WP).all()


def test_out_of_range_vpn_rejected():
    pt = PageTable(4)
    with pytest.raises(InvalidAddressError):
        pt.map([4], [0])
    with pytest.raises(InvalidAddressError):
        pt.present_mask([-1])


def test_length_mismatch_rejected():
    pt = PageTable(4)
    with pytest.raises(ValueError):
        pt.map([0, 1], [5])


def test_zero_pages_rejected():
    with pytest.raises(ConfigurationError):
        PageTable(0)


def test_reverse_lookup_finds_vpns():
    pt = PageTable(16)
    vpns = np.array([1, 5, 9, 12])
    gpfns = np.array([40, 10, 30, 20])
    pt.map(vpns, gpfns)
    out = pt.reverse_lookup([30, 40, 999])
    assert list(out) == [9, 1, -1]


def test_reverse_lookup_empty_table():
    pt = PageTable(4)
    out = pt.reverse_lookup([1, 2])
    assert list(out) == [-1, -1]


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=255), min_size=1, max_size=64, unique=True
    )
)
def test_property_reverse_lookup_inverts_translate(vpns):
    """reverse_lookup(translate(v)) == v for any injective mapping."""
    pt = PageTable(256)
    vp = np.asarray(vpns, dtype=np.int64)
    gp = vp * 7 + 3  # injective GPFNs
    pt.map(vp, gp)
    back = pt.reverse_lookup(pt.translate(vp))
    assert np.array_equal(back, vp)
