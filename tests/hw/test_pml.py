"""Tests for the PML circuit (original + EPML extension)."""

import numpy as np
import pytest

from repro.errors import PmlError
from repro.hw import vmcs as vm
from repro.hw.pml import PmlBuffer, PmlCircuit


def make_circuit(capacity=8) -> tuple[PmlCircuit, list, list]:
    v = vm.Vmcs()
    c = PmlCircuit(v, capacity=capacity)
    hyp_drains: list[np.ndarray] = []
    guest_drains: list[np.ndarray] = []
    c.on_hyp_full = hyp_drains.append
    c.on_guest_full = guest_drains.append
    return c, hyp_drains, guest_drains


def test_buffer_index_counts_down_from_top():
    b = PmlBuffer(8)
    assert b.index == 7
    b.append(np.array([1, 2, 3], dtype=np.uint64))
    assert b.index == 4
    assert b.n_logged == 3


def test_buffer_drain_returns_logging_order():
    b = PmlBuffer(8)
    b.append(np.array([10, 20, 30], dtype=np.uint64))
    assert list(b.drain()) == [10, 20, 30]
    assert b.index == 7  # reset


def test_disabled_circuit_logs_nothing():
    c, hyp, _ = make_circuit()
    c.configure_hyp_buffer()
    c.log_gpas(np.array([1, 2, 3]))
    assert c.n_hyp_logged == 0
    assert c.drain_hyp().size == 0


def test_enabled_circuit_logs_and_updates_vmcs_index():
    c, hyp, _ = make_circuit()
    c.configure_hyp_buffer()
    c.vmcs.write(vm.F_CTRL_ENABLE_PML, 1)
    c.log_gpas(np.array([5, 6]))
    assert c.n_hyp_logged == 2
    assert c.vmcs.read(vm.F_PML_INDEX) == 8 - 1 - 2
    assert list(c.drain_hyp()) == [5, 6]
    assert c.vmcs.read(vm.F_PML_INDEX) == 7


def test_buffer_full_raises_vmexit_callback():
    c, hyp, _ = make_circuit(capacity=4)
    c.configure_hyp_buffer()
    c.vmcs.write(vm.F_CTRL_ENABLE_PML, 1)
    c.log_gpas(np.arange(10))
    # 10 entries through a 4-slot buffer: full events at 4 and 8.
    assert c.n_hyp_full_events == 2
    assert [list(d) for d in hyp] == [[0, 1, 2, 3], [4, 5, 6, 7]]
    assert list(c.drain_hyp()) == [8, 9]


def test_exactly_full_buffer_drains_once():
    c, hyp, _ = make_circuit(capacity=4)
    c.configure_hyp_buffer()
    c.vmcs.write(vm.F_CTRL_ENABLE_PML, 1)
    c.log_gpas(np.arange(4))
    assert c.n_hyp_full_events == 1
    assert c.drain_hyp().size == 0


def test_guest_buffer_independent_of_hyp_buffer():
    c, hyp, guest = make_circuit(capacity=4)
    c.configure_hyp_buffer()
    c.configure_guest_buffer()
    c.vmcs.write(vm.F_CTRL_ENABLE_GUEST_PML, 1)  # only guest-level enabled
    c.log_gpas(np.arange(6))
    c.log_gvas(np.arange(100, 106))
    assert c.n_hyp_logged == 0
    assert c.n_guest_logged == 6
    assert c.n_guest_full_events == 1
    assert [list(d) for d in guest] == [[100, 101, 102, 103]]
    assert list(c.drain_guest()) == [104, 105]


def test_epml_controls_read_from_shadow_vmcs():
    """With a linked shadow VMCS, enables live in the shadow (EPML)."""
    ordinary = vm.Vmcs()
    shadow = vm.Vmcs(is_shadow=True)
    ordinary.link_shadow(shadow)
    c = PmlCircuit(ordinary, capacity=4)
    c.configure_guest_buffer()
    assert not c.guest_enabled()
    shadow.write(vm.F_CTRL_ENABLE_GUEST_PML, 1)
    assert c.guest_enabled()


def test_enabled_without_buffer_raises():
    c, _, _ = make_circuit()
    c.vmcs.write(vm.F_CTRL_ENABLE_PML, 1)
    with pytest.raises(PmlError):
        c.log_gpas(np.array([1]))


def test_full_without_handler_drops_atomically():
    """A full event with no handler must not abort the batch mid-way:
    the buffer wraps, the loss is counted, and later entries still land."""
    v = vm.Vmcs()
    c = PmlCircuit(v, capacity=2)
    c.configure_hyp_buffer()
    v.write(vm.F_CTRL_ENABLE_PML, 1)
    c.log_gpas(np.arange(3))
    assert c.n_hyp_full_events == 1
    assert c.n_hyp_dropped == 2
    assert c.n_hyp_logged == 3
    assert c.hyp_buffer is not None and c.hyp_buffer.n_logged == 1
    assert c.stats()["n_hyp_dropped"] == 2


def test_no_loss_across_many_batches():
    """Everything logged is either drained via full events or residual."""
    c, hyp, _ = make_circuit(capacity=16)
    c.configure_hyp_buffer()
    c.vmcs.write(vm.F_CTRL_ENABLE_PML, 1)
    rng = np.random.default_rng(0)
    sent: list[int] = []
    for _ in range(20):
        batch = rng.integers(0, 1 << 40, size=rng.integers(0, 50))
        c.log_gpas(batch.astype(np.uint64))
        sent.extend(int(x) for x in batch)
    got = [int(x) for d in hyp for x in d] + [int(x) for x in c.drain_hyp()]
    assert got == sent
