"""Generation counters and walk-cache invalidation.

The walk cache's safety argument is entirely carried by three counters:
any mutation of mappings, flag bits, or cached translations must bump
the matching generation, and any bump must force the next occurrence of
a memoized batch back through the real walk.  These tests pin both
halves — the bump discipline per structure, and (property-based) that
every mutation kind a tracker can perform invalidates steady-state
replay so dirty 0->1 transitions are never swallowed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.harness import build_stack
from repro.hw.ept import Ept
from repro.hw.pagetable import PTE_DIRTY, PTE_SOFT_DIRTY, PageTable
from repro.hw.tlb import Tlb

N_PAGES = 48


# ---------------------------------------------------------------------
# bump discipline, per structure
# ---------------------------------------------------------------------
def test_pagetable_mutations_bump_generation():
    pt = PageTable(16)
    g = pt.generation
    pt.map([1, 2], [10, 11])
    assert pt.generation > g
    g = pt.generation
    pt.set_flags([1], PTE_DIRTY)
    assert pt.generation > g
    g = pt.generation
    pt.clear_flags([1], PTE_DIRTY)
    assert pt.generation > g
    g = pt.generation
    pt.unmap([2])
    assert pt.generation > g


def test_pagetable_reads_leave_generation_alone():
    pt = PageTable(16)
    pt.map([1, 2], [10, 11])
    g = pt.generation
    pt.present_mask([1, 2])
    pt.flag_mask([1], PTE_SOFT_DIRTY)
    pt.translate([1])
    pt.mapped_vpns()
    assert pt.generation == g


def test_ept_mutations_bump_generation():
    ept = Ept(16)
    g = ept.generation
    ept.map([0, 1], [5, 6])
    assert ept.generation > g
    g = ept.generation
    ept.touch(np.array([0, 1]), np.array([True, False]))
    assert ept.generation > g
    g = ept.generation
    ept.clear_dirty()
    assert ept.generation > g
    g = ept.generation
    ept.clear_dirty([0])
    assert ept.generation > g


def test_tlb_invalidations_bump_generation_fills_do_not():
    tlb = Tlb(16)
    g = tlb.generation
    # Fills only *add* cached translations: a memoized all-cached batch
    # stays all-cached, so fills must not invalidate replay.
    tlb.fill(np.array([1, 2, 3]))
    assert tlb.generation == g
    tlb.invalidate(np.array([2]))
    assert tlb.generation > g
    g = tlb.generation
    tlb.flush()
    assert tlb.generation > g


def test_uids_are_never_reused():
    assert PageTable(4).uid != PageTable(4).uid
    assert Tlb(4).uid != Tlb(4).uid


# ---------------------------------------------------------------------
# replay invalidation, property-based over mutation kinds
# ---------------------------------------------------------------------
def _steady_stack():
    """A stack replaying a steady-state write batch."""
    stack = build_stack(vm_mb=8)
    mmu = stack.vm.mmu
    mmu._cache = {}  # force the walk cache on regardless of env
    proc = stack.kernel.spawn("app", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    vpns = np.arange(N_PAGES, dtype=np.int64)
    for _ in range(3):
        stack.kernel.access(proc, vpns, True)
    assert mmu.n_replay_batches >= 1  # walk -> fast path -> replay
    return stack, proc, vpns


MUTATIONS = st.sampled_from(
    [
        "clear_pte_dirty",
        "set_pte_flags",
        "remap",
        "unmap",
        "clear_ept_dirty",
        "ept_remap",
        "tlb_invalidate",
        "tlb_flush",
    ]
)


@settings(max_examples=24, deadline=None)
@given(op=MUTATIONS)
def test_any_mutation_invalidates_replay(op):
    """After *any* PTE/EPT/TLB mutation the next occurrence of a memoized
    batch must take a real walk (replay counter frozen), and a cleared
    dirty bit must be re-observed as a fresh 0->1 transition."""
    stack, proc, vpns = _steady_stack()
    mmu = stack.vm.mmu
    pt = proc.space.pt
    tlb = proc.space.tlb
    sub = vpns[: N_PAGES // 2]
    if op == "clear_pte_dirty":
        pt.clear_flags(sub, PTE_DIRTY)
        tlb.invalidate(sub)
    elif op == "set_pte_flags":
        pt.set_flags(sub, PTE_SOFT_DIRTY)
    elif op == "remap":
        gpfns = pt.gpfn[sub].copy()
        pt.map(sub, gpfns)
        tlb.invalidate(sub)
    elif op == "unmap":
        freed = pt.unmap(sub[:1])
        tlb.invalidate(sub[:1])
        pt.map(sub[:1], freed)
    elif op == "clear_ept_dirty":
        stack.vm.ept.clear_dirty()
    elif op == "ept_remap":
        g = int(pt.gpfn[0])
        stack.vm.ept.map([g], [int(stack.vm.ept.hpfn[g])])
    elif op == "tlb_invalidate":
        tlb.invalidate(sub)
    elif op == "tlb_flush":
        tlb.flush()
    before = mmu.n_replay_batches
    r = stack.kernel.access(proc, vpns, True)
    assert mmu.n_replay_batches == before, op
    if op == "clear_pte_dirty":
        assert set(int(v) for v in r.newly_pte_dirty) == set(int(v) for v in sub)
    if op == "clear_ept_dirty":
        assert r.newly_ept_dirty.size == vpns.size


def test_replay_resumes_after_invalidation():
    """Invalidation is one-shot: the batch re-memoizes and replays again."""
    stack, proc, vpns = _steady_stack()
    mmu = stack.vm.mmu
    proc.space.pt.clear_flags(vpns, PTE_DIRTY)
    proc.space.tlb.invalidate(vpns)
    stack.kernel.access(proc, vpns, True)  # full walk (re-dirty)
    stack.kernel.access(proc, vpns, True)  # fast path (re-memoize)
    before = mmu.n_replay_batches
    stack.kernel.access(proc, vpns, True)  # replay again
    assert mmu.n_replay_batches == before + 1


def test_replay_is_exact_about_batch_content():
    """Two batches that collide on the cache key's cheap discriminator
    (same endpoints, size, mask kind) must not replay each other."""
    stack = build_stack(vm_mb=8)
    mmu = stack.vm.mmu
    mmu._cache = {}
    proc = stack.kernel.spawn("app", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    a = np.array([0, 10, 20, 30], dtype=np.int64)
    b = np.array([0, 11, 21, 30], dtype=np.int64)  # same key shape as a
    for _ in range(3):
        stack.kernel.access(proc, a, True)
        stack.kernel.access(proc, np.union1d(a, b), True)
    stack.kernel.access(proc, a, True)
    before_b = stack.vm.mmu.read_page_contents(proc.space.pt, b)
    stack.kernel.access(proc, b, True)
    after_b = stack.vm.mmu.read_page_contents(proc.space.pt, b)
    # If b had replayed a's memoized HPFNs, pages 11 and 21 would have
    # kept their old tokens; a correct resolution rewrites all four.
    assert bool((after_b != before_b).all())


def test_walk_cache_env_gate(monkeypatch):
    from repro.hw.mmu import Mmu, _walk_cache_default

    monkeypatch.setenv("REPRO_WALK_CACHE", "0")
    assert _walk_cache_default() is False
    stack = build_stack(vm_mb=8)
    assert stack.vm.mmu._cache is None
    monkeypatch.setenv("REPRO_WALK_CACHE", "1")
    stack = build_stack(vm_mb=8)
    assert stack.vm.mmu._cache is not None
    # Constructor override beats the environment.
    mmu = Mmu(stack.vm.ept, stack.vm.mmu.host_mem, stack.vm.vcpu.pml,
              walk_cache=False)
    assert mmu._cache is None


def test_disabled_cache_never_replays():
    stack = build_stack(vm_mb=8)
    stack.vm.mmu._cache = None
    proc = stack.kernel.spawn("app", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    vpns = np.arange(N_PAGES, dtype=np.int64)
    for _ in range(5):
        stack.kernel.access(proc, vpns, True)
    assert stack.vm.mmu.n_replay_batches == 0
    assert stack.vm.mmu.n_fast_batches >= 3  # fast path still fires
