"""Tests for the vCPU: modes, vmexits, hypercalls, shadow vmread/vmwrite."""

import pytest

from repro.core.clock import SimClock, World
from repro.core.costs import EV_VMEXIT, EV_VMREAD, EV_VMWRITE, CostModel
from repro.errors import VmcsError
from repro.hw import vmcs as vm
from repro.hw.cpu import CpuMode, ExitReason, Vcpu
from repro.hw.ept import Ept
from repro.hw.interrupts import VECTOR_OOH_PML_FULL


@pytest.fixture()
def vcpu() -> Vcpu:
    return Vcpu(0, SimClock(), CostModel())


def test_starts_in_non_root_mode(vcpu: Vcpu):
    assert vcpu.mode is CpuMode.VMX_NON_ROOT


def test_vmexit_runs_handler_in_root_mode_and_restores(vcpu: Vcpu):
    seen = []

    def handler(cpu, payload):
        seen.append((cpu.mode, payload))
        return "handled"

    vcpu.install_exit_handler(ExitReason.PML_FULL, handler)
    out = vcpu.vmexit(ExitReason.PML_FULL, payload=123)
    assert out == "handled"
    assert seen == [(CpuMode.VMX_ROOT, 123)]
    assert vcpu.mode is CpuMode.VMX_NON_ROOT
    assert vcpu.n_vmexits == 1
    assert vcpu.clock.event_count(EV_VMEXIT) == 1
    assert vcpu.clock.world_us(World.HYPERVISOR) > 0


def test_vmexit_without_handler_raises(vcpu: Vcpu):
    with pytest.raises(VmcsError):
        vcpu.vmexit(ExitReason.EPT_VIOLATION)


def test_hypercall_dispatches_with_number(vcpu: Vcpu):
    calls = []
    vcpu.install_exit_handler(
        ExitReason.HYPERCALL, lambda cpu, p: calls.append(p) or "ok"
    )
    assert vcpu.hypercall(7, "a", "b") == "ok"
    assert calls == [(7, ("a", "b"))]


def test_root_mode_vmread_vmwrite_hit_ordinary_vmcs(vcpu: Vcpu):
    vcpu.mode = CpuMode.VMX_ROOT
    vcpu.vmwrite(vm.F_PML_ADDRESS, 99)
    assert vcpu.vmread(vm.F_PML_ADDRESS) == 99
    assert vcpu.clock.event_count(EV_VMREAD) == 1
    assert vcpu.clock.event_count(EV_VMWRITE) == 1


def test_non_root_vmaccess_requires_shadowing(vcpu: Vcpu):
    with pytest.raises(VmcsError):
        vcpu.vmread(vm.F_PML_INDEX)
    with pytest.raises(VmcsError):
        vcpu.vmwrite(vm.F_CTRL_ENABLE_GUEST_PML, 1)


def _enable_shadowing(vcpu: Vcpu) -> vm.Vmcs:
    shadow = vm.Vmcs(name="shadow", is_shadow=True)
    vcpu.vmcs.link_shadow(shadow)
    vcpu.vmcs.write(vm.F_CTRL_ENABLE_VMCS_SHADOWING, 1)
    vcpu.vmcs.expose_to_guest(
        {vm.F_CTRL_ENABLE_GUEST_PML, vm.F_GUEST_PML_INDEX, vm.F_GUEST_PML_ADDRESS}
    )
    return shadow


def test_non_root_vmaccess_hits_shadow_when_exposed(vcpu: Vcpu):
    shadow = _enable_shadowing(vcpu)
    vcpu.vmwrite(vm.F_CTRL_ENABLE_GUEST_PML, 1)
    assert shadow.read(vm.F_CTRL_ENABLE_GUEST_PML) == 1
    assert vcpu.vmcs.read(vm.F_CTRL_ENABLE_GUEST_PML) == 0  # ordinary untouched
    assert vcpu.vmread(vm.F_CTRL_ENABLE_GUEST_PML) == 1
    assert vcpu.n_vmexits == 0  # the whole point: no vmexit


def test_non_root_vmaccess_to_unexposed_field_rejected(vcpu: Vcpu):
    _enable_shadowing(vcpu)
    with pytest.raises(VmcsError):
        vcpu.vmwrite(vm.F_PML_ADDRESS, 1)


def test_epml_guest_pml_address_translated_through_ept(vcpu: Vcpu):
    """The EPML ISA extension: GPA -> HPA translation on vmwrite."""
    _enable_shadowing(vcpu)
    ept = Ept(16)
    ept.map([3], [12])
    vcpu.ept = ept
    vcpu.vmwrite(vm.F_GUEST_PML_ADDRESS, 3)  # guest writes a GPFN
    assert vcpu.vmcs.link.read(vm.F_GUEST_PML_ADDRESS) == 12  # stored as HPFN


def test_epml_vmwrite_without_ept_rejected(vcpu: Vcpu):
    _enable_shadowing(vcpu)
    with pytest.raises(VmcsError):
        vcpu.vmwrite(vm.F_GUEST_PML_ADDRESS, 3)


def test_interrupt_posting_reaches_registered_handler(vcpu: Vcpu):
    got = []
    vcpu.interrupts.register(VECTOR_OOH_PML_FULL, got.append)
    assert vcpu.interrupts.post(VECTOR_OOH_PML_FULL)
    assert got == [VECTOR_OOH_PML_FULL]
    assert vcpu.interrupts.n_posted == 1
    assert not vcpu.interrupts.post(0x33)  # unregistered vector
