"""Tests for the MMU batch page-walk and fault routing."""

import numpy as np
import pytest

from repro.errors import ProtectionFault
from repro.hw import vmcs as vm
from repro.hw.ept import Ept
from repro.hw.memory import PhysicalMemory
from repro.hw.mmu import Mmu
from repro.hw.pagetable import (
    PTE_DIRTY,
    PTE_SOFT_DIRTY,
    PTE_UFD_WP,
    PTE_WRITABLE,
    PageTable,
)
from repro.hw.pml import PmlCircuit
from repro.hw.tlb import Tlb


class Handlers:
    """Fault handlers mimicking a minimal guest kernel."""

    def __init__(self, pt: PageTable, ept: Ept, host: PhysicalMemory) -> None:
        self.pt = pt
        self.ept = ept
        self.host = host
        self.minor: list[np.ndarray] = []
        self.wp: list[tuple[np.ndarray, np.ndarray]] = []
        self.ufd_miss_handles: set[int] = set()
        self._next_gpfn = 0

    def handle_minor_fault(self, vpns: np.ndarray, write_mask=None) -> None:
        self.minor.append(vpns)
        gpfns = np.arange(self._next_gpfn, self._next_gpfn + len(vpns))
        self._next_gpfn += len(vpns)
        hpfns = self.host.alloc(len(vpns))
        self.ept.map(gpfns, hpfns)
        self.pt.map(vpns, gpfns)

    def handle_ufd_miss_fault(self, vpns: np.ndarray, write_mask=None) -> np.ndarray:
        handled = np.array(
            [v for v in vpns if int(v) in self.ufd_miss_handles], dtype=np.int64
        )
        if handled.size:
            self.handle_minor_fault(handled)
        return handled

    def handle_wp_fault(self, vpns: np.ndarray, ufd_mask: np.ndarray) -> None:
        self.wp.append((vpns, ufd_mask))
        self.pt.set_flags(vpns, PTE_WRITABLE | PTE_SOFT_DIRTY)
        self.pt.clear_flags(vpns, PTE_UFD_WP)


@pytest.fixture()
def env():
    host = PhysicalMemory(1024)
    ept = Ept(1024)
    pml = PmlCircuit(vm.Vmcs(), capacity=512)
    # Pin the fast path on: the suite must pass under REPRO_FUSED_MMU=0
    # (CI differential leg), and these tests exercise the fused pipeline.
    mmu = Mmu(ept, host, pml, fused=True)
    pt = PageTable(256)
    tlb = Tlb(256)
    handlers = Handlers(pt, ept, host)
    return mmu, pt, tlb, handlers, ept, host, pml


def test_first_touch_minor_faults_then_no_faults(env):
    mmu, pt, tlb, h, *_ = env
    r1 = mmu.access(pt, tlb, [0, 1, 2], True, h)
    assert r1.n_minor_faults == 3
    r2 = mmu.access(pt, tlb, [0, 1, 2], True, h)
    assert r2.n_minor_faults == 0


def test_write_sets_pte_and_ept_dirty(env):
    mmu, pt, tlb, h, ept, *_ = env
    r = mmu.access(pt, tlb, [0, 1], [True, False], h)
    assert list(r.newly_pte_dirty) == [0]
    assert pt.flag_mask([0], PTE_DIRTY).all()
    assert not pt.flag_mask([1], PTE_DIRTY).any()
    assert r.newly_ept_dirty.size == 1


def test_dirty_transition_only_once(env):
    mmu, pt, tlb, h, *_ = env
    r1 = mmu.access(pt, tlb, [0], True, h)
    r2 = mmu.access(pt, tlb, [0], True, h)
    assert r1.newly_pte_dirty.size == 1
    assert r2.newly_pte_dirty.size == 0
    assert r2.newly_ept_dirty.size == 0


def test_soft_dirty_wp_fault_path(env):
    """clear_refs-style WP: write to a clean, non-writable page faults."""
    mmu, pt, tlb, h, *_ = env
    mmu.access(pt, tlb, [0], True, h)
    pt.clear_flags([0], PTE_WRITABLE | PTE_SOFT_DIRTY | PTE_DIRTY)
    r = mmu.access(pt, tlb, [0], True, h)
    assert r.n_wp_faults == 1
    assert r.n_ufd_faults == 0
    assert pt.flag_mask([0], PTE_SOFT_DIRTY).all()
    assert pt.flag_mask([0], PTE_DIRTY).all()


def test_read_does_not_trigger_wp_fault(env):
    mmu, pt, tlb, h, *_ = env
    mmu.access(pt, tlb, [0], True, h)
    pt.clear_flags([0], PTE_WRITABLE)
    r = mmu.access(pt, tlb, [0], False, h)
    assert r.n_wp_faults == 0


def test_ufd_wp_fault_routed_with_mask(env):
    mmu, pt, tlb, h, *_ = env
    mmu.access(pt, tlb, [0, 1], True, h)
    pt.clear_flags([0, 1], PTE_WRITABLE)
    pt.set_flags([0], PTE_UFD_WP)
    r = mmu.access(pt, tlb, [0, 1], True, h)
    assert r.n_ufd_faults == 1
    assert r.n_wp_faults == 1
    (vpns, mask), = h.wp
    assert list(vpns) == [0, 1]
    assert list(mask) == [True, False]


def test_ufd_miss_fault_preempts_minor_fault(env):
    mmu, pt, tlb, h, *_ = env
    h.ufd_miss_handles = {1}
    r = mmu.access(pt, tlb, [0, 1], True, h)
    assert r.n_ufd_faults == 1
    assert r.n_minor_faults == 1


def test_content_tokens_change_on_write_only(env):
    mmu, pt, tlb, h, *_ = env
    mmu.access(pt, tlb, [0, 1], [True, False], h)
    t0 = mmu.read_page_contents(pt, np.array([0]))[0]
    t1 = mmu.read_page_contents(pt, np.array([1]))[0]
    assert t0 != 0
    assert t1 == 0  # never written
    mmu.access(pt, tlb, [0], False, h)
    assert mmu.read_page_contents(pt, np.array([0]))[0] == t0


def test_write_read_page_contents_roundtrip(env):
    mmu, pt, tlb, h, *_ = env
    mmu.access(pt, tlb, [0, 1, 2], True, h)
    toks = mmu.read_page_contents(pt, np.array([0, 1, 2]))
    mmu.access(pt, tlb, [5], True, h)
    mmu.write_page_contents(pt, np.array([5]), toks[:1])
    assert mmu.read_page_contents(pt, np.array([5]))[0] == toks[0]


def test_duplicate_vpns_in_batch(env):
    mmu, pt, tlb, h, *_ = env
    r = mmu.access(pt, tlb, [3, 3, 3, 4], [True, False, True, True], h)
    assert r.n_accesses == 4
    assert r.n_writes == 3
    assert set(r.newly_pte_dirty) == {3, 4}
    assert r.n_minor_faults == 2  # unique pages


def test_broken_handler_detected(env):
    mmu, pt, tlb, h, *_ = env

    class BadHandlers(Handlers):
        def handle_minor_fault(self, vpns, write_mask=None):  # leaves unmapped
            self.minor.append(vpns)

    bad = BadHandlers(pt, h.ept, h.host)
    with pytest.raises(ProtectionFault):
        mmu.access(pt, tlb, [0], True, bad)


def test_empty_batch(env):
    mmu, pt, tlb, h, *_ = env
    r = mmu.access(pt, tlb, [], True, h)
    assert r.n_accesses == 0


def test_tlb_filled_after_access(env):
    mmu, pt, tlb, h, *_ = env
    mmu.access(pt, tlb, [0, 7], True, h)
    assert tlb.cached_mask(np.array([0, 7])).all()


def test_fused_toggle_constructor_and_env(monkeypatch):
    host = PhysicalMemory(64)
    ept = Ept(64)
    pml = PmlCircuit(vm.Vmcs(), capacity=512)
    monkeypatch.delenv("REPRO_FUSED_MMU", raising=False)
    assert Mmu(ept, host, pml).fused is True
    assert Mmu(ept, host, pml, fused=False).fused is False
    monkeypatch.setenv("REPRO_FUSED_MMU", "0")
    assert Mmu(ept, host, pml).fused is False
    monkeypatch.setenv("REPRO_FUSED_MMU", "1")
    assert Mmu(ept, host, pml, fused=False).fused is False  # arg wins


def test_fast_path_counters_and_result(env):
    mmu, pt, tlb, h, *_ = env
    vpns = np.arange(10, 42, dtype=np.int64)
    mmu.access(pt, tlb, vpns, True, h)
    assert mmu.n_fast_batches == 0  # first touch faults: full walk
    r = mmu.access(pt, tlb, vpns, True, h)
    assert mmu.n_fast_batches == 1
    assert mmu.n_fast_accesses == vpns.size
    assert r.n_accesses == vpns.size
    assert r.newly_pte_dirty.size == 0 and r.newly_ept_dirty.size == 0
    # Content tokens still advance on the fast path.
    toks1 = mmu.read_page_contents(pt, vpns)
    mmu.access(pt, tlb, vpns, True, h)
    assert mmu.n_fast_batches == 2
    assert (mmu.read_page_contents(pt, vpns) != toks1).all()


def test_fast_path_requires_sorted_unique_batch(env):
    mmu, pt, tlb, h, *_ = env
    vpns = np.array([5, 3, 4], dtype=np.int64)
    mmu.access(pt, tlb, vpns, True, h)
    mmu.access(pt, tlb, vpns, True, h)
    assert mmu.n_fast_batches == 0  # unsorted: always the full walk


def test_fast_path_declines_when_tlb_cold(env):
    mmu, pt, tlb, h, *_ = env
    vpns = np.arange(0, 8, dtype=np.int64)
    mmu.access(pt, tlb, vpns, True, h)
    tlb.invalidate(vpns)
    mmu.access(pt, tlb, vpns, True, h)
    assert mmu.n_fast_batches == 0


def test_multipass_never_takes_fast_path(env):
    mmu, pt, tlb, h, *_ = env
    mmu.fused = False
    vpns = np.arange(0, 8, dtype=np.int64)
    mmu.access(pt, tlb, vpns, True, h)
    mmu.access(pt, tlb, vpns, True, h)
    assert mmu.n_fast_batches == 0
