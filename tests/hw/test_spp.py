"""Tests for the SPP sub-page permission table."""

import pytest

from repro.errors import ConfigurationError, InvalidAddressError
from repro.hw.spp import SUBPAGE_BYTES, SUBPAGES_PER_PAGE, SppTable


def test_geometry():
    assert SUBPAGES_PER_PAGE * SUBPAGE_BYTES == 4096


def test_unprotected_pages_allow_everything():
    t = SppTable(8)
    assert t.check_write(0, 0)
    assert t.check_write(7, 31)
    assert t.n_violations == 0


def test_protect_vector_semantics():
    t = SppTable(8)
    t.protect(3, 0b101)  # sub-pages 0 and 2 writable
    assert t.check_write(3, 0)
    assert not t.check_write(3, 1)
    assert t.check_write(3, 2)
    assert not t.check_write(3, 31)
    assert t.n_violations == 2


def test_unprotect_restores_full_access():
    t = SppTable(8)
    t.protect(1, 0)
    assert not t.check_write(1, 5)
    t.unprotect(1)
    assert t.check_write(1, 5)
    assert t.is_protected(1) is False


def test_vector_allowing_builder():
    vec = SppTable.vector_allowing([0, 3, 31])
    assert vec == (1 << 0) | (1 << 3) | (1 << 31)
    with pytest.raises(InvalidAddressError):
        SppTable.vector_allowing([32])


def test_bounds_checks():
    t = SppTable(4)
    with pytest.raises(InvalidAddressError):
        t.protect(4, 0)
    with pytest.raises(InvalidAddressError):
        t.check_write(0, 32)
    with pytest.raises(ConfigurationError):
        SppTable(0)
