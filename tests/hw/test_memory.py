"""Tests for physical memory and frame allocation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, InvalidAddressError, OutOfFramesError
from repro.hw.memory import FrameAllocator, PhysicalMemory


def test_alloc_free_roundtrip():
    fa = FrameAllocator(16)
    frames = fa.alloc(10)
    assert len(frames) == 10
    assert fa.n_free == 6
    assert len(np.unique(frames)) == 10
    fa.free(frames)
    assert fa.n_free == 16


def test_alloc_exhaustion():
    fa = FrameAllocator(4)
    fa.alloc(4)
    with pytest.raises(OutOfFramesError):
        fa.alloc(1)


def test_double_free_rejected():
    fa = FrameAllocator(4)
    f = fa.alloc(2)
    fa.free(f)
    with pytest.raises(InvalidAddressError):
        fa.free(f)


def test_free_out_of_range_rejected():
    fa = FrameAllocator(4)
    with pytest.raises(InvalidAddressError):
        fa.free([99])


def test_zero_frames_rejected():
    with pytest.raises(ConfigurationError):
        FrameAllocator(0)


def test_alloc_zero_is_empty():
    fa = FrameAllocator(4)
    assert fa.alloc(0).size == 0


def test_write_changes_content_tokens():
    pm = PhysicalMemory(8)
    frames = pm.alloc(3)
    before = pm.read(frames)
    assert np.all(before == 0)  # fresh frames are zeroed
    pm.write(frames)
    after = pm.read(frames)
    assert np.all(after != before)
    # Writing again produces yet different tokens.
    pm.write(frames[:1])
    assert pm.read(frames[:1])[0] != after[0]


def test_distinct_writes_get_distinct_tokens():
    pm = PhysicalMemory(8)
    frames = pm.alloc(4)
    pm.write(frames)
    toks = pm.read(frames)
    assert len(np.unique(toks)) == 4


def test_store_restores_exact_tokens():
    pm = PhysicalMemory(8)
    src = pm.alloc(3)
    pm.write(src)
    saved = pm.read(src)
    dst = pm.alloc(3)
    pm.store(dst, saved)
    assert np.array_equal(pm.read(dst), saved)


def test_store_length_mismatch():
    pm = PhysicalMemory(8)
    f = pm.alloc(2)
    with pytest.raises(ValueError):
        pm.store(f, np.array([1], dtype=np.uint64))


def test_realloc_zeroes_frames():
    pm = PhysicalMemory(4)
    f = pm.alloc(2)
    pm.write(f)
    pm.free(f)
    g = pm.alloc(2)
    assert np.all(pm.read(g) == 0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=8), max_size=10))
def test_property_allocator_never_hands_out_same_frame_twice(sizes):
    fa = FrameAllocator(128)
    held: set[int] = set()
    for n in sizes:
        if n > fa.n_free:
            break
        got = fa.alloc(n)
        for f in got:
            assert int(f) not in held
            held.add(int(f))
    assert fa.n_allocated == len(held)
