"""Tests for the EPT second-level translation and dirty-bit semantics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, InvalidAddressError
from repro.hw.ept import EPT_ACCESSED, EPT_DIRTY, Ept


def test_map_translate():
    ept = Ept(16)
    ept.map([0, 1, 2], [100, 101, 102])
    assert list(ept.translate([2, 0])) == [102, 100]


def test_translate_unmapped_raises():
    ept = Ept(4)
    with pytest.raises(InvalidAddressError):
        ept.translate([0])


def test_touch_sets_accessed_and_dirty():
    ept = Ept(8)
    ept.map([0, 1], [10, 11])
    newly = ept.touch(np.array([0, 1]), np.array([False, True]))
    assert list(newly) == [1]
    assert (ept.flags[0] & EPT_ACCESSED) != 0
    assert (ept.flags[0] & EPT_DIRTY) == 0
    assert (ept.flags[1] & EPT_DIRTY) != 0


def test_touch_only_logs_zero_to_one_transition():
    """PML's defining property: a page already dirty is not re-logged."""
    ept = Ept(8)
    ept.map([0], [10])
    first = ept.touch(np.array([0]), np.array([True]))
    second = ept.touch(np.array([0]), np.array([True]))
    assert list(first) == [0]
    assert list(second) == []


def test_touch_deduplicates_within_batch():
    ept = Ept(8)
    ept.map([3], [13])
    newly = ept.touch(np.array([3, 3, 3]), np.array([True, True, True]))
    assert list(newly) == [3]


def test_clear_dirty_rearms_logging():
    ept = Ept(8)
    ept.map([0, 1], [10, 11])
    ept.touch(np.array([0, 1]), np.array([True, True]))
    assert set(ept.dirty_gpfns()) == {0, 1}
    n = ept.clear_dirty([0])
    assert n == 1
    assert set(ept.dirty_gpfns()) == {1}
    # Re-armed page logs again on the next write.
    newly = ept.touch(np.array([0]), np.array([True]))
    assert list(newly) == [0]


def test_clear_dirty_all():
    ept = Ept(8)
    ept.map([0, 1, 2], [10, 11, 12])
    ept.touch(np.array([0, 1, 2]), np.array([True, True, False]))
    assert ept.clear_dirty() == 2
    assert ept.dirty_gpfns().size == 0


def test_out_of_range_gpfn():
    ept = Ept(4)
    with pytest.raises(InvalidAddressError):
        ept.map([4], [0])


def test_zero_frames_rejected():
    with pytest.raises(ConfigurationError):
        Ept(0)


def test_length_mismatch():
    ept = Ept(4)
    with pytest.raises(ValueError):
        ept.map([0, 1], [5])
    ept.map([0, 1], [5, 6])
    with pytest.raises(ValueError):
        ept.touch(np.array([0, 1]), np.array([True]))
