"""Tests for VMCS fields and shadowing."""

import pytest

from repro.errors import VmcsError
from repro.hw import vmcs as vm


def test_default_fields():
    v = vm.Vmcs()
    assert v.read(vm.F_PML_INDEX) == vm.PML_INDEX_START == 511
    assert v.read(vm.F_CTRL_ENABLE_PML) == 0


def test_read_write_roundtrip():
    v = vm.Vmcs()
    v.write(vm.F_PML_ADDRESS, 42)
    assert v.read(vm.F_PML_ADDRESS) == 42


def test_unknown_field_rejected():
    v = vm.Vmcs()
    with pytest.raises(VmcsError):
        v.read("no_such_field")
    with pytest.raises(VmcsError):
        v.write("no_such_field", 1)


def test_link_shadow():
    ordinary = vm.Vmcs(name="ord")
    shadow = vm.Vmcs(name="sh", is_shadow=True)
    ordinary.link_shadow(shadow)
    assert ordinary.link is shadow
    assert ordinary.read(vm.F_VMCS_LINK_POINTER) != 0
    assert not ordinary.shadowing_enabled()  # control bit still clear
    ordinary.write(vm.F_CTRL_ENABLE_VMCS_SHADOWING, 1)
    assert ordinary.shadowing_enabled()


def test_shadowing_requires_link():
    v = vm.Vmcs()
    v.write(vm.F_CTRL_ENABLE_VMCS_SHADOWING, 1)
    assert not v.shadowing_enabled()


def test_link_rules():
    ordinary = vm.Vmcs()
    not_shadow = vm.Vmcs()
    with pytest.raises(VmcsError):
        ordinary.link_shadow(not_shadow)
    shadow = vm.Vmcs(is_shadow=True)
    with pytest.raises(VmcsError):
        shadow.link_shadow(vm.Vmcs(is_shadow=True))


def test_expose_to_guest_bitmaps():
    v = vm.Vmcs()
    v.expose_to_guest({vm.F_GUEST_PML_ADDRESS}, readable=True, writable=True)
    v.expose_to_guest({vm.F_GUEST_PML_INDEX}, writable=False)
    assert vm.F_GUEST_PML_ADDRESS in v.shadow_read_fields
    assert vm.F_GUEST_PML_ADDRESS in v.shadow_write_fields
    assert vm.F_GUEST_PML_INDEX in v.shadow_read_fields
    assert vm.F_GUEST_PML_INDEX not in v.shadow_write_fields


def test_expose_unknown_field_rejected():
    v = vm.Vmcs()
    with pytest.raises(VmcsError):
        v.expose_to_guest({"bogus"})
