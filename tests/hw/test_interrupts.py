"""Tests for the interrupt controller."""

import pytest

from repro.core.clock import SimClock
from repro.core.costs import EV_SELF_IPI, CostModel
from repro.errors import ConfigurationError
from repro.hw.interrupts import InterruptController


@pytest.fixture()
def ic():
    return InterruptController(SimClock(), CostModel())


def test_register_and_post(ic):
    got = []
    ic.register(0x20, got.append)
    assert ic.post(0x20)
    assert got == [0x20]
    assert ic.n_posted == 1


def test_post_unregistered_returns_false_but_counts(ic):
    assert not ic.post(0x21)
    assert ic.n_posted == 1


def test_posted_interrupt_charged(ic):
    ic.register(0x20, lambda v: None)
    ic.post(0x20)
    assert ic._clock.event_count(EV_SELF_IPI) == 1
    assert ic._clock.now_us > 0


def test_virtual_injection_not_charged_as_self_ipi(ic):
    ic.register(0x30, lambda v: None)
    assert ic.inject_virtual(0x30)
    assert ic.n_virtual == 1
    assert ic._clock.event_count(EV_SELF_IPI) == 0


def test_unregister(ic):
    ic.register(0x20, lambda v: None)
    ic.unregister(0x20)
    assert not ic.post(0x20)


def test_vector_range_validated(ic):
    with pytest.raises(ConfigurationError):
        ic.register(0x100, lambda v: None)
    with pytest.raises(ConfigurationError):
        ic.register(-1, lambda v: None)


def test_handler_exceptions_propagate(ic):
    def boom(v):
        raise RuntimeError("handler failed")

    ic.register(0x20, boom)
    with pytest.raises(RuntimeError):
        ic.post(0x20)
