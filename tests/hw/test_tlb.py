"""Tests for the TLB model."""

import numpy as np

from repro.hw.tlb import Tlb


def test_fill_and_cached_mask():
    tlb = Tlb(8)
    tlb.fill(np.array([1, 3]))
    assert list(tlb.cached_mask(np.array([0, 1, 3]))) == [False, True, True]
    assert tlb.n_cached == 2
    assert tlb.n_fills == 2


def test_invalidate_selected():
    tlb = Tlb(8)
    tlb.fill(np.array([1, 2, 3]))
    tlb.invalidate(np.array([2]))
    assert list(tlb.cached_mask(np.array([1, 2, 3]))) == [True, False, True]


def test_flush_clears_everything_and_counts():
    tlb = Tlb(8)
    tlb.fill(np.array([0, 1, 2]))
    tlb.flush()
    tlb.flush()
    assert tlb.n_cached == 0
    assert tlb.n_flushes == 2
