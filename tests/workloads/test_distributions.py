"""Behavioural tests for the workload access distributions.

Each tkrzw engine and Phoenix app models a distinct page-write pattern
(DESIGN.md substitution table); these tests pin the properties the
tracking results depend on, so refactoring the generators cannot silently
change the evaluation's shape.
"""

import numpy as np
import pytest

from repro.workloads import make_workload
from repro.workloads.tkrzw.baby import Baby
from repro.workloads.tkrzw.cache import Cache
from repro.workloads.tkrzw.stdtree import StdTree
from repro.workloads.tkrzw.tiny import Tiny

N_PAGES = 50_000
N_OPS = 100_000


def targets(engine, op_index=0):
    rng = np.random.default_rng(1)
    return engine.target_pages(rng, op_index, N_OPS, N_PAGES)


def test_baby_has_recency_locality():
    """B-tree inserts concentrate on a recently-grown window."""
    baby = Baby(params={"n_iter": N_OPS})
    pages = targets(baby)
    window = int(N_PAGES * baby.window_frac)
    in_window = np.sum(pages < window)
    # ~70% of ops land in the 5% window at op_index 0.
    assert in_window / len(pages) > 0.5
    # The window slides with progress.
    later = targets(baby, op_index=5 * N_OPS)
    assert np.median(later[later < np.percentile(later, 80)]) != pytest.approx(
        np.median(pages[pages < np.percentile(pages, 80)])
    )


def test_cache_is_uniform():
    pages = targets(Cache(params={"n_iter": N_OPS}))
    hist, _ = np.histogram(pages, bins=10, range=(0, N_PAGES))
    assert hist.max() < hist.min() * 1.2  # near-uniform


def test_stdtree_adds_rotation_clusters():
    tree = StdTree(params={"n_iter": N_OPS})
    pages = targets(tree)
    # A quarter of ops add a rotation write near the primary target.
    assert len(pages) == N_OPS + N_OPS // 4
    assert pages.min() >= 0 and pages.max() < N_PAGES


def test_tiny_stripes_by_thread():
    tiny = Tiny(params={"n_iter": N_OPS, "threads": 4})
    pages = targets(tiny)
    stripe = N_PAGES // 4
    stripes = pages // stripe
    counts = np.bincount(np.minimum(stripes, 3), minlength=4)
    # Every thread stripe gets a similar share.
    assert counts.min() > N_OPS // 8


def test_engine_footprint_dirty_coverage():
    """A full small-config run dirties a large fraction of the arena for
    the uniform engines — the property CRIU dump sizes rest on."""
    
    from repro.core.clock import SimClock
    from repro.core.costs import CostModel
    from repro.core.tracking import Technique, make_tracker
    from repro.guest.kernel import GuestKernel
    from repro.hypervisor.hypervisor import Hypervisor
    from repro.workloads import FlatContext

    w = make_workload("stdhash", "small", scale=0.05)
    clock = SimClock()
    hv = Hypervisor(clock, CostModel(), host_mem_mb=1024)
    vm = hv.create_vm("vm", mem_mb=600)
    kernel = GuestKernel(vm)
    proc = kernel.spawn("kv", n_pages=w.footprint_pages + 64)
    tracker = make_tracker(Technique.ORACLE, kernel, proc)
    with tracker:
        w.run(FlatContext(kernel, proc))
        dirty = tracker.collect()
    assert dirty.size > w.footprint_pages * 0.5


@pytest.mark.parametrize("app", ["histogram", "string-match"])
def test_streaming_apps_read_everything_write_little(app):
    """Streaming Phoenix apps: RSS ~ footprint, dirty set tiny."""
    from repro.core.clock import SimClock
    from repro.core.costs import CostModel
    from repro.core.tracking import Technique, make_tracker
    from repro.guest.kernel import GuestKernel
    from repro.hypervisor.hypervisor import Hypervisor
    from repro.workloads import FlatContext

    w = make_workload(app, "small")
    clock = SimClock()
    hv = Hypervisor(clock, CostModel(), host_mem_mb=512)
    vm = hv.create_vm("vm", mem_mb=300)
    kernel = GuestKernel(vm)
    proc = kernel.spawn(app, n_pages=w.footprint_pages + 64)
    tracker = make_tracker(Technique.ORACLE, kernel, proc)
    with tracker:
        w.run(FlatContext(kernel, proc))
        dirty = tracker.collect()
    assert proc.space.rss_pages > w.footprint_pages * 0.8
    assert dirty.size < w.footprint_pages * 0.05
