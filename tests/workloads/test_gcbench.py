"""Tests for the GCBench port."""

import pytest
from types import SimpleNamespace

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.core.tracking import Technique
from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel
from repro.hypervisor.hypervisor import Hypervisor
from repro.trackers.boehm import BoehmGc, GcHeap, GcParams
from repro.workloads import FlatContext, GcContext, make_workload
from repro.workloads.gcbench import GcBench, build_trees_batch, num_iters, tree_size


def gc_stack(vm_mb=256, heap_mb=128, technique=Technique.ORACLE,
             threshold=64 * 1024):
    clock = SimClock()
    hv = Hypervisor(clock, CostModel(), host_mem_mb=2 * vm_mb)
    vm = hv.create_vm("vm0", mem_mb=vm_mb)
    kernel = GuestKernel(vm)
    proc = kernel.spawn("gcbench", n_pages=heap_mb * 256 + 64)
    heap = GcHeap(kernel, proc, heap_pages=heap_mb * 256)
    gc = BoehmGc(kernel, heap, technique, GcParams(threshold_bytes=threshold))
    ctx = GcContext(kernel, proc, heap, gc)
    return SimpleNamespace(clock=clock, kernel=kernel, proc=proc, heap=heap,
                           gc=gc, ctx=ctx)


def test_tree_size_and_num_iters():
    assert tree_size(2) == 7
    assert num_iters(18, 4) == 2 * tree_size(18) // 31


def test_build_trees_batch_shape():
    s = gc_stack()
    roots = build_trees_batch(s.heap, 3, 3)
    assert roots.size == 3
    assert s.heap.n_live == 3 * 15
    assert s.heap.n_edges == 3 * 14
    # Each root reaches exactly its own tree.
    out = s.heap.out_neighbors(roots[:1])
    assert out.size == 2


def test_gcbench_requires_gc_context():
    s = gc_stack()
    w = GcBench(array_size=1000, long_lived_depth=4, stretch_depth=6)
    with pytest.raises(WorkloadError):
        w.run(FlatContext(s.kernel, s.proc))


def test_gcbench_runs_and_collects():
    s = gc_stack()
    w = GcBench(array_size=10_000, long_lived_depth=8, stretch_depth=12,
                mem_mb=4, scale=0.2)
    with s.gc:
        w.run(s.ctx)
    assert len(s.gc.cycles) >= 2
    # Temp trees got collected: live set is bounded by long-lived data.
    long_lived_nodes = tree_size(8)
    array_pages = 10_000 * 8 // 4096
    # Allow the garbage allocated since the last cycle.
    assert s.heap.n_live < long_lived_nodes + array_pages + 50_000
    assert sum(c.n_freed for c in s.gc.cycles) > 0


def test_gcbench_scaled_config_factory():
    w = make_workload("gcbench", "small", scale=0.001)
    assert w.stretch_depth == 18
    assert w.array_size == 500_000


def test_gcbench_cycle_count_in_paper_range():
    """The paper observes 2..23 GC cycles depending on intensity."""
    s = gc_stack(threshold=128 * 1024)
    w = GcBench(array_size=20_000, long_lived_depth=8, stretch_depth=12,
                mem_mb=8, scale=0.2)
    with s.gc:
        w.run(s.ctx)
    assert 2 <= len(s.gc.cycles) <= 60


@pytest.mark.parametrize("technique",
                         [Technique.PROC, Technique.SPML, Technique.EPML])
def test_gcbench_under_each_technique(technique):
    s = gc_stack(technique=technique, threshold=32 * 1024)
    w = GcBench(array_size=5_000, long_lived_depth=6, stretch_depth=10,
                mem_mb=4, scale=0.2)
    with s.gc:
        w.run(s.ctx)
    kinds = [c.kind for c in s.gc.cycles]
    assert kinds[0] == "full"
    assert "minor" in kinds
