"""Per-app behavioural tests for the Phoenix models."""

import pytest
from types import SimpleNamespace

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.core.tracking import Technique, make_tracker
from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel
from repro.hypervisor.hypervisor import Hypervisor
from repro.workloads import FlatContext, make_workload
from repro.workloads.phoenix.common import PhoenixApp


def run_with_oracle(app, config="small", scale=1.0, vm_mb=400):
    w = make_workload(app, config, scale=scale)
    clock = SimClock()
    hv = Hypervisor(clock, CostModel(), host_mem_mb=vm_mb * 2)
    vm = hv.create_vm("vm", mem_mb=vm_mb)
    kernel = GuestKernel(vm)
    proc = kernel.spawn(app, n_pages=w.footprint_pages + 64)
    tracker = make_tracker(Technique.ORACLE, kernel, proc)
    with tracker:
        w.run(FlatContext(kernel, proc))
        dirty = tracker.collect()
    return SimpleNamespace(w=w, proc=proc, dirty=dirty, clock=clock)


def test_histogram_dirty_set_is_the_histograms():
    r = run_with_oracle("histogram")
    # Input file pages are read-populated; only the few histogram pages
    # (plus nothing else) are written.
    hist_vma = r.proc.space.vmas[1]
    assert hist_vma.name == "histograms"
    assert set(int(v) for v in r.dirty) <= set(int(v) for v in hist_vma.vpns())


def test_kmeans_means_rewritten_every_iteration():
    r = run_with_oracle("kmeans", scale=0.05)
    means_vma = r.proc.space.vmas[1]
    assert means_vma.name == "means"
    # Every means page dirtied at least once.
    assert set(int(v) for v in means_vma.vpns()) <= set(int(v) for v in r.dirty)


def test_matmul_writes_all_of_c():
    r = run_with_oracle("matrix-multiply")
    c_vma = r.proc.space.vmas[2]
    assert c_vma.name == "C"
    assert set(int(v) for v in c_vma.vpns()) <= set(int(v) for v in r.dirty)


def test_pca_cov_strip_writes_cover_output():
    r = run_with_oracle("pca")
    cov_vma = r.proc.space.vmas[1]
    assert cov_vma.name == "cov"
    written_cov = set(int(v) for v in r.dirty) & set(
        int(v) for v in cov_vma.vpns()
    )
    assert len(written_cov) > 0


def test_wordcount_hash_scatter_covers_wide_region():
    r = run_with_oracle("word-count")
    table_vma = r.proc.space.vmas[1]
    written = set(int(v) for v in r.dirty) & set(int(v) for v in table_vma.vpns())
    assert len(written) > table_vma.n_pages * 0.2


def test_phoenix_missing_param_rejected():
    class Broken(PhoenixApp):
        name = "broken"

        def _run(self, ctx):
            self._require("nonexistent_param")

    clock = SimClock()
    hv = Hypervisor(clock, CostModel(), host_mem_mb=32)
    vm = hv.create_vm("vm", mem_mb=8)
    kernel = GuestKernel(vm)
    w = Broken(mem_mb=1)
    proc = kernel.spawn("x", n_pages=w.footprint_pages + 8)
    with pytest.raises(WorkloadError):
        w.run(FlatContext(kernel, proc))


def test_scaled_runs_are_cheaper_but_same_footprint():
    full = run_with_oracle("kmeans", scale=0.2)
    tiny = run_with_oracle("kmeans", scale=0.02)
    assert tiny.clock.now_us < full.clock.now_us
    assert tiny.w.footprint_pages == full.w.footprint_pages
