"""Tests for the workload suite (configs, arrayparser, phoenix, tkrzw)."""

import pytest
from types import SimpleNamespace

from repro.core.clock import SimClock, World
from repro.core.costs import CostModel
from repro.core.tracking import Technique, make_tracker
from repro.errors import ConfigurationError, WorkloadError
from repro.guest.kernel import GuestKernel
from repro.hypervisor.hypervisor import Hypervisor
from repro.workloads import (
    CONFIG_NAMES,
    PHOENIX_APPS,
    TABLE_III,
    TKRZW_APPS,
    ArrayParser,
    FlatContext,
    get_config,
    make_workload,
)


def big_stack(host_mb=3072, vm_mb=1400):
    clock = SimClock()
    hv = Hypervisor(clock, CostModel(), host_mem_mb=host_mb)
    vm = hv.create_vm("vm0", mem_mb=vm_mb)
    kernel = GuestKernel(vm)
    return SimpleNamespace(clock=clock, hv=hv, vm=vm, kernel=kernel)


def run_flat(workload, stack=None):
    stack = stack or big_stack()
    proc = stack.kernel.spawn(workload.name,
                              n_pages=workload.footprint_pages + 64)
    ctx = FlatContext(stack.kernel, proc)
    tracker = make_tracker(Technique.ORACLE, stack.kernel, proc)
    with tracker:
        workload.run(ctx)
        dirty = tracker.collect()
    return stack, proc, dirty


# ---------------------------------------------------------------------
# configs
# ---------------------------------------------------------------------
def test_table_iii_complete():
    assert set(TABLE_III) >= set(PHOENIX_APPS) | set(TKRZW_APPS) | {"gcbench"}
    for app, configs in TABLE_III.items():
        assert set(configs) == set(CONFIG_NAMES), app
        for cfg in configs.values():
            assert cfg.mem_mb > 0


def test_footprints_match_table():
    assert get_config("baby", "large").mem_mb == pytest.approx(848.56)
    assert get_config("gcbench", "small").params["stretch_depth"] == 18
    assert get_config("pca", "medium").params["rows"] == 5000


def test_make_workload_validation():
    with pytest.raises(ConfigurationError):
        make_workload("nosuchapp")
    with pytest.raises(ConfigurationError):
        make_workload("baby", "small", scale=0)
    with pytest.raises(ConfigurationError):
        make_workload("baby", "small", scale=2)


@pytest.mark.parametrize("app", PHOENIX_APPS + TKRZW_APPS)
@pytest.mark.parametrize("config", CONFIG_NAMES)
def test_factory_builds_every_cell(app, config):
    w = make_workload(app, config, scale=0.01)
    assert w.footprint_pages == int(round(get_config(app, config).mem_mb * 256))
    assert w.config_name == config


# ---------------------------------------------------------------------
# arrayparser
# ---------------------------------------------------------------------
def test_arrayparser_touches_every_page_once_per_pass():
    w = ArrayParser(mem_mb=2, passes=1)
    stack, proc, dirty = run_flat(w, big_stack(host_mb=64, vm_mb=16))
    assert dirty.size == w.footprint_pages
    assert proc.space.rss_pages == w.footprint_pages


def test_arrayparser_passes_charge_compute():
    stack = big_stack(host_mb=64, vm_mb=16)
    proc = stack.kernel.spawn("ap", n_pages=600)
    w = ArrayParser(mem_mb=2, passes=3)
    before = stack.clock.world_us(World.TRACKED)
    w.run(FlatContext(stack.kernel, proc))
    tracked = stack.clock.world_us(World.TRACKED) - before
    assert tracked == pytest.approx(3 * 512 * w.us_per_page)


def test_arrayparser_validation():
    with pytest.raises(WorkloadError):
        ArrayParser(mem_mb=0)
    with pytest.raises(WorkloadError):
        ArrayParser(mem_mb=1, passes=0)


# ---------------------------------------------------------------------
# phoenix + tkrzw behaviour
# ---------------------------------------------------------------------
@pytest.mark.parametrize("app", PHOENIX_APPS)
def test_phoenix_small_runs_and_dirties_pages(app):
    w = make_workload(app, "small", scale=0.02)
    stack, proc, dirty = run_flat(w)
    assert dirty.size > 0
    assert proc.space.rss_pages <= w.footprint_pages + 64


@pytest.mark.parametrize("app", TKRZW_APPS)
def test_tkrzw_small_runs_and_dirties_pages(app):
    w = make_workload(app, "small", scale=0.005)
    stack, proc, dirty = run_flat(w)
    assert dirty.size > 0
    # Set storms write broadly across the arena.
    assert dirty.size > w.footprint_pages // 20


def test_stringmatch_writes_far_fewer_pages_than_histogram_reads():
    w = make_workload("string-match", "small")
    stack, proc, dirty = run_flat(w)
    # Streaming reads; writes confined to the small results buffer.
    assert dirty.size < 32


def test_wordcount_writes_scatter_across_hash_region():
    w = make_workload("word-count", "small", scale=1.0)
    stack, proc, dirty = run_flat(w)
    assert dirty.size > 1000


def test_kmeans_rewrites_means_every_iteration():
    w = make_workload("kmeans", "small", scale=0.05)
    stack, proc, dirty = run_flat(w)
    assert dirty.size > 0
    # Means pages rewritten repeatedly: PML would have logged once per
    # arming interval only; the oracle saw one transition per page.
    assert dirty.size <= w.footprint_pages


def test_tkrzw_scale_reduces_iterations():
    full = make_workload("baby", "small", scale=1.0)
    tiny = make_workload("baby", "small", scale=0.001)
    assert tiny.n_iter == max(1, int(full.n_iter * 0.001))


def test_workload_determinism():
    outs = []
    for _ in range(2):
        w = make_workload("stdhash", "small", scale=0.002)
        stack, proc, dirty = run_flat(w)
        outs.append((dirty.size, stack.clock.now_us))
    assert outs[0] == outs[1]


def test_matmul_compute_calibration():
    """n=500 runs ~51 ms untracked (paper §VI-E.b)."""
    w = make_workload("matrix-multiply", "small")
    stack, proc, dirty = run_flat(w)
    total_s = stack.clock.now_us / 1e6
    assert 0.02 < total_s < 0.3
