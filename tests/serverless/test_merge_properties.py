"""Property-based diff-merge battery (hypothesis).

Two layers:

* **pure merge properties** — hypothesis-generated interleaved instance
  writes drive :meth:`Snapshot.merge` directly: the merged image is
  independent of diff list order, idempotent on re-merge, and
  byte-identical to an oracle that applies writes in commit order.
* **simulator-backed battery, per technique** — generated write
  schedules (including seeded vCPU migrations on a 2-vCPU stack) run as
  real function-instance lifecycles under every registered tracking
  mode; the merged snapshot must equal the pure oracle prediction, which
  by construction depends only on the write sets and commit order —
  never on the SMP schedule, the technique, or tracker over-reporting.

Each per-technique battery runs 200+ generated schedules (the issue's
acceptance bar); stacks are built once per mode and reused, since an
instance lifecycle starts and ends with a dead process.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.tracking import available_modes
from repro.experiments.harness import build_stack
from repro.serverless.snapshot import Snapshot, SnapshotDiff, output_tokens
from repro.serverless.tracker import UnifiedDirtyTracker

REGION_PAGES = 16
MODES = available_modes()

# ---------------------------------------------------------------------
# pure merge properties
# ---------------------------------------------------------------------
_tokens = st.integers(min_value=1, max_value=2**64 - 1)
_writes = st.dictionaries(
    st.integers(min_value=0, max_value=REGION_PAGES - 1), _tokens,
    min_size=0, max_size=REGION_PAGES,
)
_schedules = st.lists(_writes, min_size=0, max_size=6)


def _as_diffs(schedule):
    diffs = []
    for seq, writes in enumerate(schedule):
        offsets = np.array(sorted(writes), dtype=np.int64)
        toks = np.array([writes[o] for o in sorted(writes)], dtype=np.uint64)
        diffs.append(SnapshotDiff(f"i{seq}", seq, offsets, toks))
    return diffs


def _oracle_apply(schedule):
    """Ground truth: writes applied one by one in commit order."""
    tokens = Snapshot.base("fn", REGION_PAGES).tokens
    for writes in schedule:
        for offset, tok in writes.items():
            tokens[offset] = np.uint64(tok)
    return tokens


@settings(max_examples=250, deadline=None)
@given(schedule=_schedules, data=st.data())
def test_merge_matches_oracle_and_is_order_independent(schedule, data):
    diffs = _as_diffs(schedule)
    expected = _oracle_apply(schedule)

    in_order = Snapshot.base("fn", REGION_PAGES)
    in_order.merge(diffs)
    np.testing.assert_array_equal(in_order.tokens, expected)

    # Any permutation of the diff list merges identically: commit_seq,
    # not list position, decides the winner.
    shuffled = data.draw(st.permutations(diffs))
    permuted = Snapshot.base("fn", REGION_PAGES)
    permuted.merge(shuffled)
    assert permuted.digest() == in_order.digest()

    # Re-merging the same diffs is idempotent on contents.
    before = in_order.digest()
    in_order.merge(diffs)
    assert in_order.digest() == before


@settings(max_examples=250, deadline=None)
@given(schedule=_schedules)
def test_incremental_merge_equals_batch_merge(schedule):
    """Merging burst-by-burst (freeze between) ends at the same image as
    one batch merge — the diff -> merge -> re-snapshot lifecycle loses
    nothing."""
    diffs = _as_diffs(schedule)
    batch = Snapshot.base("fn", REGION_PAGES)
    batch.merge(diffs)

    rolling = Snapshot.base("fn", REGION_PAGES)
    for diff in diffs:
        rolling.merge([diff])
        rolling = rolling.freeze()
    assert rolling.digest() == batch.digest()


# ---------------------------------------------------------------------
# simulator-backed battery, per technique
# ---------------------------------------------------------------------
_STACKS: dict[str, object] = {}


def _get_stack(mode: str):
    # One long-lived 2-vCPU stack per mode: instances are short-lived by
    # design, so examples cannot leak state into each other through it.
    if mode not in _STACKS:
        _STACKS[mode] = build_stack(vm_mb=16, pml_buffer_entries=32, n_vcpus=2)
    return _STACKS[mode]


_write_sets = st.sets(
    st.integers(min_value=0, max_value=REGION_PAGES - 1), min_size=1, max_size=8
)
_instances = st.lists(_write_sets, min_size=1, max_size=3)
#: Mid-run vCPU migration schedule (the SMP interleaving under test).
_migrations = st.lists(st.integers(min_value=0, max_value=1), max_size=3)


def _run_lifecycle(stack, mode, snapshot, request_id, write_set, migrations):
    """One instance lifecycle, with seeded vCPU migrations mid-run."""
    kernel = stack.kernel
    writes = np.array(sorted(write_set), dtype=np.int64)
    instance_id = f"t0/{request_id}"
    proc = kernel.spawn(instance_id, n_pages=REGION_PAGES)
    proc.space.add_vma(REGION_PAGES)
    kernel.access(proc, np.arange(REGION_PAGES), False)
    kwargs = {"resync_on_loss": True} if mode in ("spml", "epml") else {}
    facade = UnifiedDirtyTracker(kernel, proc, mode, **kwargs)
    region = facade.map_regions(snapshot)
    facade.start_tracking()
    try:
        chunks = np.array_split(writes, len(migrations) + 1)
        for idx, chunk in enumerate(chunks):
            if idx > 0:
                kernel.scheduler.migrate(proc, migrations[idx - 1])
            if chunk.size:
                kernel.access(proc, chunk, True)
        kernel.vm.mmu.write_page_contents(
            proc.space.pt, writes, output_tokens(instance_id, writes)
        )
        diff = facade.extract_diff(region, instance_id, commit_seq=request_id)
    finally:
        facade.stop_tracking()
        kernel.exit_process(proc)
    return diff


_REQUEST_BASE = {m: 0 for m in MODES}


def _battery(mode, instances, migrations):
    stack = _get_stack(mode)
    snapshot = Snapshot.base("fn", REGION_PAGES)
    # Unique request ids per example so output tokens never collide
    # between an example and its shrunk variants.
    base = _REQUEST_BASE[mode]
    _REQUEST_BASE[mode] += len(instances)
    diffs = []
    for k, write_set in enumerate(instances):
        writes = np.array(sorted(write_set), dtype=np.int64)
        request_id = base + k
        diff = _run_lifecycle(
            stack, mode, snapshot, request_id, write_set, migrations
        )
        # Byte-exactness: the diff claims exactly the written offsets,
        # whatever the technique reported (over-reports are trimmed).
        np.testing.assert_array_equal(diff.offsets, writes)
        np.testing.assert_array_equal(
            diff.tokens, output_tokens(f"t0/{request_id}", writes)
        )
        diffs.append(diff)
    snapshot.merge(diffs)
    # Oracle prediction: last writer wins in commit order; depends only
    # on write sets + ids, never on mode or the migration schedule.
    expected = Snapshot.base("fn", REGION_PAGES).tokens
    for k, write_set in enumerate(instances):
        writes = np.array(sorted(write_set), dtype=np.int64)
        expected[writes] = output_tokens(f"t0/{base + k}", writes)
    np.testing.assert_array_equal(snapshot.tokens, expected)


def _make_battery_test(mode):
    @settings(
        max_examples=200,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(instances=_instances, migrations=_migrations)
    def test(instances, migrations):
        _battery(mode, instances, migrations)

    test.__name__ = f"test_sim_merge_battery_{mode}"
    return test


for _mode in MODES:
    globals()[f"test_sim_merge_battery_{_mode}"] = _make_battery_test(_mode)
del _mode
