"""A function instance survives a mid-run tracker force-detach.

The serverless contract is byte-exactness end to end: even when the OoH
module force-detaches underneath a running instance (crash-only
teardown), the fallback chain's conservative resync plus the facade's
content filter must still produce a *complete* diff, and the merged
snapshot must be identical to an undisturbed run's.
"""

import numpy as np

from repro.core.ooh import OohModule
from repro.core.tracking import Technique
from repro.serverless.snapshot import Snapshot, output_tokens
from repro.serverless.tracker import UnifiedDirtyTracker

N_PAGES = 64


def _prefaulted(stack):
    proc = stack.kernel.spawn("fn", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    stack.kernel.access(proc, np.arange(N_PAGES), False)
    return proc


def test_instance_diff_complete_despite_force_detach(stack):
    proc = _prefaulted(stack)
    snap = Snapshot.base("fn", N_PAGES)
    facade = UnifiedDirtyTracker(
        stack.kernel, proc, "fallback",
        chain=(Technique.SPML, Technique.PROC), failure_threshold=1,
    )
    region = facade.map_regions(snap)
    facade.start_tracking()
    # First half of the instance's writes land in the SPML log...
    early = np.array([2, 7, 11], dtype=np.int64)
    stack.kernel.access(proc, early, True)
    # ...then the module crashes out from under the tracker...
    OohModule.shared(stack.kernel).force_detach()
    # ...and the instance keeps writing, now unlogged by any mechanism.
    late = np.array([11, 30, 55], dtype=np.int64)
    stack.kernel.access(proc, late, True)
    written = np.union1d(early, late)
    stack.kernel.vm.mmu.write_page_contents(
        proc.space.pt, written, output_tokens("fn/0", written)
    )
    diff = facade.extract_diff(region, "fn/0", commit_seq=0)
    facade.stop_tracking()
    # Conservative over-report trimmed to the byte-exact changed set:
    # nothing lost (the post-detach writes included), nothing extra.
    np.testing.assert_array_equal(diff.offsets, written)
    np.testing.assert_array_equal(diff.tokens, output_tokens("fn/0", written))
    assert facade.n_fallbacks == 1

    # The merged snapshot equals one from an undisturbed oracle run.
    snap.merge([diff])
    expected = Snapshot.base("fn", N_PAGES)
    expected.tokens[written] = output_tokens("fn/0", written)
    assert snap.digest() == expected.digest()
