"""Unit tests for the faabric-style UnifiedDirtyTracker facade."""

import numpy as np
import pytest

from repro.core.tracking import available_modes
from repro.errors import TrackingError
from repro.experiments.harness import build_stack
from repro.faults.auditor import CompletenessAuditor
from repro.obs import trace as otr
from repro.obs.events import EventKind
from repro.serverless.snapshot import Snapshot, output_tokens
from repro.serverless.tracker import UnifiedDirtyTracker

N_PAGES = 64


def _prefaulted(stack, n_pages=N_PAGES):
    proc = stack.kernel.spawn("fn", n_pages=n_pages)
    proc.space.add_vma(n_pages)
    stack.kernel.access(proc, np.arange(n_pages), False)
    return proc


def test_mode_selection_and_get_type(stack):
    proc = _prefaulted(stack)
    facade = UnifiedDirtyTracker(stack.kernel, proc, "oracle")
    assert facade.get_type() == "oracle"
    assert facade.technique.value == "oracle"
    with pytest.raises(TrackingError):
        UnifiedDirtyTracker(stack.kernel, proc, "no-such-mode")


def test_available_modes_cover_registry(stack):
    modes = available_modes()
    assert set(modes) >= {"proc", "ufd", "spml", "epml", "oracle", "fallback"}
    proc = _prefaulted(stack)
    # Every advertised mode constructs through the facade.
    for mode in modes:
        UnifiedDirtyTracker(stack.kernel, proc, mode)


def test_map_regions_lands_snapshot_contents(stack):
    proc = _prefaulted(stack)
    snap = Snapshot.base("fn", N_PAGES)
    facade = UnifiedDirtyTracker(stack.kernel, proc, "oracle")
    session = otr.TraceSession()
    with session.active():
        region = facade.map_regions(snap)
    got = stack.vm.mmu.read_page_contents(
        proc.space.pt, np.arange(N_PAGES, dtype=np.int64)
    )
    np.testing.assert_array_equal(got, snap.tokens)
    [event] = session.trace.by_kind(EventKind.SNAPSHOT_MAP)
    assert event.fields["n_pages"] == N_PAGES
    assert region.snapshot_version == snap.version
    # The mapping must not look like dirtying: tracking starts clean.
    facade.start_tracking()
    assert facade.collect_vpns().size == 0
    facade.stop_tracking()


def test_extract_diff_is_byte_exact(stack):
    proc = _prefaulted(stack)
    snap = Snapshot.base("fn", N_PAGES)
    facade = UnifiedDirtyTracker(stack.kernel, proc, "oracle")
    region = facade.map_regions(snap)
    facade.start_tracking()
    written = np.array([3, 9, 17, 40], dtype=np.int64)
    stack.kernel.access(proc, written, True)
    # Pages 17 and 40 get their original contents written back: they are
    # tracker-dirty but byte-identical, so the diff must exclude them.
    restored = np.array([17, 40], dtype=np.int64)
    stack.vm.mmu.write_page_contents(
        proc.space.pt, restored, region.base_tokens[restored]
    )
    changed = np.array([3, 9], dtype=np.int64)
    stack.vm.mmu.write_page_contents(
        proc.space.pt, changed, output_tokens("fn/0", changed)
    )
    diff = facade.extract_diff(region, "fn/0", commit_seq=0)
    facade.stop_tracking()
    np.testing.assert_array_equal(diff.offsets, changed)
    np.testing.assert_array_equal(diff.tokens, output_tokens("fn/0", changed))


def test_thread_local_contexts_attribute_by_vcpu():
    stack = build_stack(vm_mb=16, n_vcpus=2)
    proc = _prefaulted(stack)
    snap = Snapshot.base("fn", N_PAGES)
    facade = UnifiedDirtyTracker(stack.kernel, proc, "oracle")
    region = facade.map_regions(snap)
    facade.start_tracking()
    facade.start_thread_local_tracking(0)
    facade.start_thread_local_tracking(1)
    stack.kernel.scheduler.migrate(proc, 0)
    stack.kernel.access(proc, [1, 2], True)
    stack.kernel.scheduler.migrate(proc, 1)
    stack.kernel.access(proc, [2, 7], True)
    tl0 = facade.get_thread_local_dirty_offsets(0, region)
    tl1 = facade.get_thread_local_dirty_offsets(1, region)
    assert set(tl0.tolist()) == {1, 2}
    # Page 2's dirty bit was already set by vCPU 0's write; only the 0->1
    # transition is observable, so vCPU 1 legitimately records just 7.
    assert set(tl1.tolist()) == {7}
    both = facade.get_both_dirty_offsets(region)
    assert set(both.tolist()) == {1, 2, 7}
    facade.stop_thread_local_tracking(0)
    with pytest.raises(TrackingError):
        facade.get_thread_local_dirty_offsets(0, region)
    facade.stop_tracking()
    with pytest.raises(TrackingError):
        facade.start_thread_local_tracking(5)  # no such vCPU


def test_stop_tracking_removes_listener(stack):
    proc = _prefaulted(stack)
    facade = UnifiedDirtyTracker(stack.kernel, proc, "proc")
    facade.start_tracking()
    facade.start_thread_local_tracking(0)
    assert facade._tl_listener_installed
    facade.stop_tracking()
    assert not facade._tl_listener_installed
    assert facade._on_access not in stack.kernel._access_listeners


def test_clear_all_discards_pending_state(stack):
    proc = _prefaulted(stack)
    facade = UnifiedDirtyTracker(stack.kernel, proc, "oracle")
    facade.start_tracking()
    facade.start_thread_local_tracking(0)
    stack.kernel.access(proc, [4, 5], True)
    facade.clear_all()
    assert facade.collect_vpns().size == 0
    region = facade.map_regions(Snapshot.base("fn", N_PAGES))
    assert facade.get_thread_local_dirty_offsets(0, region).size == 0
    facade.stop_tracking()


def test_facade_is_auditable(stack):
    """The auditor drives the facade through the duck-typed tracker
    surface and sees the wrapped technique's identity."""
    proc = _prefaulted(stack)
    facade = UnifiedDirtyTracker(stack.kernel, proc, "epml")
    auditor = CompletenessAuditor(stack.kernel, proc, facade)
    auditor.start()
    stack.kernel.access(proc, np.arange(32), True)
    auditor.collect()
    report = auditor.stop()
    assert report.technique == "epml"
    assert not report.silent_loss
    assert report.capture_rate == 1.0
