"""Differential validation: the facade is a pure passthrough.

``UnifiedDirtyTracker(mode=X)`` must produce bit-identical dirty sets —
and leave the whole simulated machine in a bit-identical state — to
driving technique X directly, for every registered mode, with and
without the MMU walk cache, and under the chaos leg (fault injection
seeded by ``REPRO_CHAOS_SEED``).  Each scenario runs the same fixed
script twice on fresh stacks differing only in facade-vs-direct.
"""

import os

import numpy as np
import pytest

from repro.core.tracking import available_modes, make_tracker
from repro.experiments.harness import build_stack
from repro.faults.auditor import CompletenessAuditor
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.serverless.tracker import UnifiedDirtyTracker

N_PAGES = 128
ROUNDS = 3
MODES = available_modes()
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1234"))

CHAOS = [
    FaultSpec(FaultSite.PML_ENTRY_DROP, 0.25),
    FaultSpec(FaultSite.RING_OVERFLOW, 0.25),
    FaultSpec(FaultSite.LOST_SELF_IPI, 0.2),
]

#: spml/epml must resync on loss under chaos or the comparison would
#: (legitimately) show missing pages; passed to BOTH legs.
_CHAOS_KWARGS = {
    "spml": {"resync_on_loss": True},
    "epml": {"resync_on_loss": True},
}


def _run(mode: str, facade: bool, walk_cache: bool, chaos: bool = False):
    """One fixed scenario; returns (collects, machine-state tuple)."""
    stack = build_stack(vm_mb=16, pml_buffer_entries=32)
    mmu = stack.vm.mmu
    # Force the switch so both legs are meaningful under any
    # REPRO_WALK_CACHE CI matrix leg.
    mmu._cache = {} if walk_cache else None
    proc = stack.kernel.spawn("app", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    rng = np.random.default_rng(13)
    kwargs = _CHAOS_KWARGS.get(mode, {}) if chaos else {}
    injector = FaultPlan(CHAOS, seed=CHAOS_SEED).build() if chaos else None
    collects = []

    def body():
        stack.kernel.access(proc, np.arange(N_PAGES), True)  # prefault
        if facade:
            tracker = UnifiedDirtyTracker(stack.kernel, proc, mode, **kwargs)
            start, collect, stop = (
                tracker.start_tracking,
                tracker.collect_vpns,
                tracker.stop_tracking,
            )
        else:
            tracker = make_tracker(mode, stack.kernel, proc, **kwargs)
            start, collect, stop = tracker.start, tracker.collect, tracker.stop
        start()
        for _ in range(ROUNDS):
            vpns = rng.integers(0, N_PAGES, size=N_PAGES // 2)
            stack.kernel.access(proc, vpns, True)
            collects.append([int(v) for v in collect()])
        stop()

    if injector is not None:
        with injector.active():
            body()
    else:
        body()

    pml = stack.vm.vcpu.pml
    state = (
        collects,
        stack.clock.now_us,
        dict(stack.clock.snapshot().event_count),
        pml.n_hyp_full_events,
        pml.n_guest_full_events,
        pml.n_hyp_dropped,
        pml.n_guest_dropped,
        pml.n_hyp_injected_drops,
        pml.n_guest_injected_drops,
        proc.space.pt.flags.tolist(),
        stack.vm.ept.flags.tolist(),
        mmu.host_mem._content.tolist(),
    )
    return collects, state


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("walk_cache", [True, False])
def test_facade_bit_identical(mode, walk_cache):
    f_collects, f_state = _run(mode, facade=True, walk_cache=walk_cache)
    d_collects, d_state = _run(mode, facade=False, walk_cache=walk_cache)
    assert f_collects == d_collects
    assert f_state == d_state


@pytest.mark.parametrize("mode", MODES)
def test_facade_bit_identical_under_chaos(mode):
    """Fault-injection draws are positional: the facade must consume the
    exact same injector stream as the direct technique."""
    f_collects, f_state = _run(mode, facade=True, walk_cache=True, chaos=True)
    d_collects, d_state = _run(mode, facade=False, walk_cache=True, chaos=True)
    assert f_collects == d_collects
    assert f_state == d_state


@pytest.mark.parametrize("mode", MODES)
def test_facade_audited_clean_under_chaos(mode):
    """Under chaos, a facade-driven run must never lose a dirty page
    silently (CompletenessAuditor raises on silent loss)."""
    stack = build_stack(vm_mb=16, pml_buffer_entries=32)
    proc = stack.kernel.spawn("app", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    stack.kernel.access(proc, np.arange(N_PAGES), True)
    facade = UnifiedDirtyTracker(
        stack.kernel, proc, mode, **_CHAOS_KWARGS.get(mode, {})
    )
    auditor = CompletenessAuditor(stack.kernel, proc, facade)
    rng = np.random.default_rng(17)
    with FaultPlan(CHAOS, seed=CHAOS_SEED).build().active():
        auditor.start()
        for _ in range(ROUNDS):
            stack.kernel.access(proc, rng.integers(0, N_PAGES, size=64), True)
            auditor.collect()
        report = auditor.stop()
    assert not report.silent_loss
