"""Canonical small serverless runs frozen as golden traces.

One fixed scenario per tracking mode: a 16 MiB VM, two tenants, twelve
short-lived instances in seeded bursts over 32-page snapshot regions.
The PML buffer is shrunk to 4 entries so even the small per-instance
write sets (~8 pages) produce buffer-full events in the OoH-mode
traces, and the full session runs with ``detail=True`` so
SNAPSHOT_DIFF / SNAPSHOT_MERGE events carry their per-page offset lists
— that payload is part of the frozen contract and what the trace
invariants check.

The vCPU count is pinned explicitly (never inherited from
``REPRO_VCPUS``) so the frozen byte streams survive the SMP CI matrix
leg; the 2-vCPU variant exercises instances landing on different vCPUs
within one burst.
"""

from repro.experiments.harness import build_stack
from repro.obs import trace as otr
from repro.serverless.driver import ServerlessConfig, run_serverless

GOLDEN_MODES = ("oracle", "proc", "epml")
#: Modes with a 2-vCPU golden variant (``<mode>-smp2.jsonl``).
GOLDEN_SMP_MODES = ("epml",)

#: The frozen workload: small enough to diff by eye, large enough to
#: cross at least two burst boundaries (two merges per tenant region).
GOLDEN_CFG = ServerlessConfig(
    n_instances=12,
    n_tenants=2,
    region_pages=32,
    seed=7,
    mean_burst=4,
    plan_variants=2,
)


def canonical_run(mode: str, n_vcpus: int = 1) -> otr.TraceSession:
    """Run the frozen serverless scenario for ``mode``; return its session."""
    stack = build_stack(vm_mb=16, pml_buffer_entries=4, n_vcpus=n_vcpus)
    session = otr.TraceSession()
    with session.active():
        run_serverless(stack.kernel, mode, GOLDEN_CFG)
    return session
