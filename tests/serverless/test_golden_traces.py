"""Golden-trace regression for the serverless snapshot event kinds.

Each canonical run (see :mod:`tests.serverless.golden_runs`) must
serialize to a JSONL stream *byte-identical* to the checked-in file
under ``golden/``.  Any change to the snapshot instrumentation seams
(SNAPSHOT_MAP / SNAPSHOT_DIFF / SNAPSHOT_MERGE), their fields, or the
driver's simulated control flow shows up as a diff here.

Regenerating after an intentional change::

    REPRO_REGOLDEN=1 PYTHONPATH=src python -m pytest tests/serverless/test_golden_traces.py

then review the golden-file diff like any other code change.

The trace-*property* tests at the bottom check invariants that must hold
for any serverless run, frozen or not: a diff may only claim pages the
trace already logged written AND collected, and a merge may only touch
pages some prior diff claimed.
"""

import os
from pathlib import Path

import pytest

from repro.obs.events import EventKind
from repro.obs.trace import TraceBuffer

from .golden_runs import GOLDEN_CFG, GOLDEN_MODES, GOLDEN_SMP_MODES, canonical_run

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (mode, n_vcpus) scenarios frozen under ``golden/``.
GOLDEN_SCENARIOS = (
    [(m, 1) for m in GOLDEN_MODES] + [(m, 2) for m in GOLDEN_SMP_MODES]
)


def _golden_path(mode: str, n_vcpus: int) -> Path:
    suffix = "" if n_vcpus == 1 else f"-smp{n_vcpus}"
    return GOLDEN_DIR / f"{mode}{suffix}.jsonl"


def _regolden() -> bool:
    return os.environ.get("REPRO_REGOLDEN") == "1"


@pytest.mark.parametrize("mode,n_vcpus", GOLDEN_SCENARIOS)
def test_trace_matches_golden(mode, n_vcpus):
    session = canonical_run(mode, n_vcpus=n_vcpus)
    got = session.trace.to_jsonl()
    assert got, f"canonical serverless {mode} run emitted no events"
    path = _golden_path(mode, n_vcpus)
    if _regolden():
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(got)
        pytest.skip(f"regenerated {path}")
    assert path.is_file(), (
        f"missing golden trace {path}; regenerate with REPRO_REGOLDEN=1"
    )
    assert got == path.read_text()


@pytest.mark.parametrize("mode,n_vcpus", GOLDEN_SCENARIOS)
def test_replay_is_deterministic(mode, n_vcpus):
    """Two identical runs serialize byte-identically (no hidden state)."""
    a = canonical_run(mode, n_vcpus=n_vcpus).trace.to_jsonl()
    b = canonical_run(mode, n_vcpus=n_vcpus).trace.to_jsonl()
    assert a == b


@pytest.mark.parametrize("mode,n_vcpus", GOLDEN_SCENARIOS)
def test_golden_roundtrips_through_parser(mode, n_vcpus):
    """read_jsonl(write_jsonl(x)) preserves every event exactly."""
    if _regolden():
        pytest.skip("regolden pass")
    path = _golden_path(mode, n_vcpus)
    buf = TraceBuffer.read_jsonl(path)
    assert buf.to_jsonl() == path.read_text()
    assert len(buf) > 0


def test_golden_traces_are_nontrivial():
    """The frozen scenarios exercise the whole snapshot lifecycle: one
    map and one diff per instance, at least one merge per tenant, and —
    for the OoH mode — real PML traffic underneath."""
    if _regolden():
        pytest.skip("regolden pass")
    for mode in GOLDEN_MODES:
        counts = TraceBuffer.read_jsonl(_golden_path(mode, 1)).kind_counts()
        assert counts.get("snapshot_map", 0) == GOLDEN_CFG.n_instances
        assert counts.get("snapshot_diff", 0) == GOLDEN_CFG.n_instances
        assert counts.get("snapshot_merge", 0) >= GOLDEN_CFG.n_tenants
    epml = TraceBuffer.read_jsonl(_golden_path("epml", 1)).kind_counts()
    assert epml.get("pml_full", 0) > 0
    assert epml.get("self_ipi", 0) > 0


# ---------------------------------------------------------------------
# trace-property invariants (hold for any serverless run)
# ---------------------------------------------------------------------
def _check_snapshot_invariants(events):
    """Every merged page was first claimed by a diff; every diffed page
    was first logged written (WRITE) and reported dirty (COLLECT).

    The driver maps every region at vpn 0, so region-relative offsets
    and trace vpns coincide.  WRITE/COLLECT state resets at each
    SNAPSHOT_MAP: a map starts a fresh instance in a fresh process, so
    earlier instances' writes must not be needed to justify its diff.
    """
    written: set[int] = set()
    collected: set[int] = set()
    diffed: dict[str, set[int]] = {}
    n_diffs = n_merges = 0
    for e in events:
        if e.kind is EventKind.SNAPSHOT_MAP:
            written, collected = set(), set()
        elif e.kind is EventKind.WRITE and "vpns" in e.fields:
            written.update(e.fields["vpns"])
        elif e.kind is EventKind.COLLECT:
            collected.update(e.fields["vpns"])
        elif e.kind is EventKind.SNAPSHOT_DIFF:
            n_diffs += 1
            offsets = set(e.fields["offsets"])
            assert offsets <= written, (
                f"diff claims never-written pages: {offsets - written}"
            )
            assert offsets <= collected, (
                f"diff claims never-collected pages: {offsets - collected}"
            )
            diffed.setdefault(e.fields["snapshot"], set()).update(offsets)
        elif e.kind is EventKind.SNAPSHOT_MERGE:
            n_merges += 1
            offsets = set(e.fields["offsets"])
            claimed = diffed.get(e.fields["snapshot"], set())
            assert offsets <= claimed, (
                f"merge touches pages no diff claimed: {offsets - claimed}"
            )
    assert n_diffs > 0 and n_merges > 0


@pytest.mark.parametrize("mode,n_vcpus", GOLDEN_SCENARIOS)
def test_merged_pages_were_logged_dirty(mode, n_vcpus):
    session = canonical_run(mode, n_vcpus=n_vcpus)
    _check_snapshot_invariants(session.trace.events)
