"""Unit tests for the snapshot object: tokens, diffs, merge, lifecycle."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.obs import trace as otr
from repro.obs.events import EventKind
from repro.serverless.snapshot import (
    Snapshot,
    SnapshotDiff,
    output_tokens,
    stable_token,
)


def _diff(instance_id, commit_seq, pairs):
    offsets = np.array(sorted(pairs), dtype=np.int64)
    tokens = np.array([pairs[o] for o in sorted(pairs)], dtype=np.uint64)
    return SnapshotDiff(instance_id, commit_seq, offsets, tokens)


# ---------------------------------------------------------------------
# tokens
# ---------------------------------------------------------------------
def test_stable_token_deterministic_and_nonzero():
    assert stable_token("a", 1) == stable_token("a", 1)
    assert stable_token("a", 1) != stable_token("a", 2)
    assert stable_token("a", 1) != stable_token("b", 1)
    assert stable_token("x") != 0


def test_output_tokens_vectorised_and_namespaced():
    offs = np.arange(32)
    a = output_tokens("t0/1", offs)
    b = output_tokens("t0/1", offs)
    c = output_tokens("t0/2", offs)
    assert a.dtype == np.uint64
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)
    assert np.all(a != 0)
    # Distinct offsets get distinct tokens (splitmix is bijective).
    assert np.unique(a).size == offs.size


# ---------------------------------------------------------------------
# diffs
# ---------------------------------------------------------------------
def test_diff_validates_shape():
    with pytest.raises(WorkloadError):
        SnapshotDiff("i", 0, np.array([1, 2]), np.array([1], dtype=np.uint64))
    with pytest.raises(WorkloadError):  # not strictly ascending
        SnapshotDiff("i", 0, np.array([2, 1]), np.array([1, 2], dtype=np.uint64))
    with pytest.raises(WorkloadError):  # negative offset
        SnapshotDiff("i", 0, np.array([-1, 3]), np.array([1, 2], dtype=np.uint64))
    d = SnapshotDiff("i", 0, np.array([1, 3]), np.array([4, 5], dtype=np.uint64))
    assert d.n_pages == 2


# ---------------------------------------------------------------------
# snapshots
# ---------------------------------------------------------------------
def test_base_snapshot_deterministic():
    a, b = Snapshot.base("fn", 64), Snapshot.base("fn", 64)
    assert a.digest() == b.digest()
    assert a.version == 0
    assert Snapshot.base("other", 64).digest() != a.digest()


def test_merge_last_writer_wins_by_commit_seq():
    snap = Snapshot.base("fn", 16)
    early = _diff("a", 1, {3: 100, 5: 101})
    late = _diff("b", 2, {5: 200, 7: 201})
    # Apply in deliberately reversed list order: commit_seq must rule.
    stats = snap.merge([late, early])
    assert stats.applied_ids == ["a", "b"]
    assert stats.n_pages_applied == 4
    assert stats.n_pages_unique == 3
    assert snap.tokens[3] == 100
    assert snap.tokens[5] == 200  # the later commit wins
    assert snap.tokens[7] == 201
    assert snap.version == 1


def test_merge_rejects_duplicate_commit_seq_and_overflow():
    snap = Snapshot.base("fn", 8)
    with pytest.raises(WorkloadError):
        snap.merge([_diff("a", 1, {0: 1}), _diff("b", 1, {1: 2})])
    with pytest.raises(WorkloadError):
        snap.merge([_diff("a", 1, {8: 1})])  # offset beyond the region


def test_freeze_isolates_later_merges():
    snap = Snapshot.base("fn", 8)
    snap.merge([_diff("a", 1, {0: 11})])
    frozen = snap.freeze()
    snap.merge([_diff("b", 2, {0: 22})])
    assert frozen.tokens[0] == 11  # not 22: freeze() copies
    assert frozen.version == 1
    assert snap.version == 2


def test_merge_emits_event_with_detail_offsets():
    snap = Snapshot.base("fn", 8)
    session = otr.TraceSession()
    with session.active():
        snap.merge([_diff("a", 1, {2: 9, 6: 10})])
    [event] = session.trace.by_kind(EventKind.SNAPSHOT_MERGE)
    assert event.fields["n_diffs"] == 1
    assert event.fields["offsets"] == [2, 6]
    assert session.metrics.counter("snapshot.merges") == 1
