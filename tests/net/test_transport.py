"""Unit tests for the cost-charging transport and its fault sites."""

import pytest

from repro.core.clock import SimClock, World
from repro.core.costs import EV_MIGRATION_SEND, CostModel
from repro.errors import ConfigurationError, TransientError
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.net.link import Link
from repro.net.transport import Transport, TransportSender


@pytest.fixture()
def net():
    clock = SimClock()
    costs = CostModel()
    return clock, costs, Transport(clock, costs)


def test_send_charges_latency_plus_pages(net):
    clock, costs, transport = net
    link = Link("l", us_per_page=2.0, latency_us=30.0)
    flow = transport.open_flow(link, "f")
    us = transport.send(flow, 100)
    assert us == 30.0 + 100 * 2.0
    assert clock.now_us == us
    assert (flow.pages_sent, flow.n_sends) == (100, 1)
    assert flow.retransmitted_pages == 0


def test_send_routes_event_to_clock_ledger(net):
    clock, _, transport = net
    flow = transport.open_flow(Link("l"), "f")
    transport.send(flow, 64, world=World.HYPERVISOR, event=EV_MIGRATION_SEND)
    assert clock.snapshot().event_count[EV_MIGRATION_SEND] == 64


def test_contention_scales_per_page_cost_not_latency(net):
    _, _, transport = net
    link = Link("l", us_per_page=2.0, latency_us=30.0)
    a = transport.open_flow(link, "a")
    b = transport.open_flow(link, "b")
    us = transport.send(flow=a, n_pages=100)
    assert us == 30.0 + 100 * 2.0 * 2  # two flows share the link
    transport.close_flow(b)
    assert transport.send(a, 100) == 30.0 + 100 * 2.0  # back to full speed


def test_duplicate_flow_id_rejected(net):
    _, _, transport = net
    link = Link("l")
    transport.open_flow(link, "f")
    with pytest.raises(ConfigurationError):
        transport.open_flow(link, "f")


def test_send_on_closed_flow_rejected(net):
    _, _, transport = net
    flow = transport.open_flow(Link("l"), "f")
    transport.close_flow(flow)
    transport.close_flow(flow)  # idempotent
    with pytest.raises(ConfigurationError):
        transport.send(flow, 1)


def test_drops_retransmit_within_the_send(net):
    clock, _, transport = net
    link = Link("l", us_per_page=1.0, latency_us=0.0)
    flow = transport.open_flow(link, "f")
    with FaultPlan([FaultSpec(FaultSite.NET_DROP, 0.5)]).active():
        us = transport.send(flow, 1000)
    assert flow.retransmitted_pages > 0
    # Lost pages cost time, not correctness: the payload count is intact
    # and the charge covers payload + retransmissions.
    assert flow.pages_sent == 1000
    assert us == pytest.approx(1000 + flow.retransmitted_pages)
    assert clock.now_us == us


def test_latency_spike_multiplies_latency_only(net):
    _, costs, transport = net
    link = Link("l", us_per_page=1.0, latency_us=40.0)
    flow = transport.open_flow(link, "f")
    with FaultPlan([FaultSpec(FaultSite.NET_LATENCY_SPIKE, 1.0)]).active():
        us = transport.send(flow, 10)
    assert us == 40.0 * costs.params.net_spike_factor + 10 * 1.0
    assert flow.latency_spikes == 1


def test_partition_backs_off_then_raises_transient(net):
    clock, costs, transport = net
    flow = transport.open_flow(Link("l"), "f")
    limit = transport.partition_retry_limit
    with FaultPlan([FaultSpec(FaultSite.NET_PARTITION, 1.0)]).active():
        with pytest.raises(TransientError):
            transport.send(flow, 10)
    assert flow.partition_retries == limit
    assert flow.pages_sent == 0  # the transfer never went through
    # Linear backoff charged for every attempt before the budget ran out.
    expected = sum(
        costs.params.net_backoff_us * i for i in range(1, limit)
    )
    assert clock.now_us == pytest.approx(expected)


def test_partition_heals_within_retry_budget(net):
    clock, costs, transport = net
    flow = transport.open_flow(Link("l", us_per_page=1.0, latency_us=0.0), "f")
    plan = FaultPlan([FaultSpec(FaultSite.NET_PARTITION, 1.0, max_fires=3)])
    with plan.active():
        us = transport.send(flow, 10)
    assert flow.partition_retries == 3
    assert flow.pages_sent == 10
    assert us == 10.0  # the transfer itself, once the link came back
    # ...plus the three linear backoffs charged while it was down.
    backoff = costs.params.net_backoff_us
    assert clock.now_us == pytest.approx(10.0 + backoff * (1 + 2 + 3))


def test_faulted_sends_are_seed_deterministic():
    def run() -> tuple:
        clock = SimClock()
        transport = Transport(clock, CostModel())
        flow = transport.open_flow(Link("l", 1.0, 0.0), "f")
        plan = FaultPlan(
            [
                FaultSpec(FaultSite.NET_DROP, 0.2),
                FaultSpec(FaultSite.NET_LATENCY_SPIKE, 0.3),
            ],
            seed=11,
        )
        with plan.active():
            for _ in range(20):
                transport.send(flow, 200)
        return clock.now_us, flow.retransmitted_pages, flow.latency_spikes

    assert run() == run()


def test_transport_sender_adapts_flow_to_page_sender(net):
    clock, _, transport = net
    link = Link("l", us_per_page=2.0, latency_us=10.0)
    flow = transport.open_flow(link, "f")
    sender = TransportSender(transport, flow)
    assert sender.us_per_page == 2.0  # uncontended; contention at send time
    us = sender.send(50)
    assert us == 10.0 + 50 * 2.0
    assert clock.now_us == us
    transport.open_flow(link, "other")
    assert sender.us_per_page == 2.0  # property stays uncontended
    assert sender.send(50) == 10.0 + 50 * 2.0 * 2
