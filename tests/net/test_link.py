"""Unit tests for the simulated network link (fair-share contention)."""

import pytest

from repro.core.costs import CostParams
from repro.errors import ConfigurationError
from repro.net.link import Link


def test_bare_link_resolves_to_cost_model_defaults():
    params = CostParams()
    us_pp, latency = Link("backbone").resolve(params)
    assert us_pp == params.net_send_us_per_page
    assert latency == params.net_latency_us


def test_explicit_params_override_defaults():
    us_pp, latency = Link("fast", us_per_page=1.5, latency_us=10.0).resolve(
        CostParams()
    )
    assert (us_pp, latency) == (1.5, 10.0)


def test_zero_is_a_valid_override_not_a_default_fallthrough():
    """0.0 means an infinitely fast link (the differential degenerate
    case), not "use the CostParams default"."""
    us_pp, latency = Link("inf", us_per_page=0.0, latency_us=0.0).resolve(
        CostParams()
    )
    assert (us_pp, latency) == (0.0, 0.0)


@pytest.mark.parametrize("kwargs", [
    {"us_per_page": -0.1},
    {"latency_us": -1.0},
])
def test_negative_parameters_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        Link("bad", **kwargs)


def test_share_factor_tracks_attached_flows():
    link = Link("l")
    assert link.n_flows == 0
    assert link.share_factor == 1  # idle link is the uncontended baseline
    link.attach("a")
    assert link.share_factor == 1
    link.attach("b")
    assert (link.n_flows, link.share_factor) == (2, 2)
    link.detach("a")
    assert link.share_factor == 1
    link.detach("a")  # detach is idempotent
    assert link.n_flows == 1


def test_duplicate_attach_rejected():
    link = Link("l")
    link.attach("a")
    with pytest.raises(ConfigurationError):
        link.attach("a")
