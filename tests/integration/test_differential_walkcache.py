"""Differential validation: walk cache on vs off.

Steady-state replay (``Mmu`` walk cache, PR 6) must be invisible to
everything the simulation measures: identical collects, identical clock
totals and event counts, identical PML/ring drop counters, identical
memory content — for every tracking technique, with chaos (fault
injection) active, and under full-detail tracing.  Each scenario runs
twice on stacks that differ only in the cache switch; the cached leg
must actually replay batches (otherwise the comparison proves nothing).
"""

import numpy as np
import pytest

from repro.core.tracking import make_tracker
from repro.experiments.harness import build_stack
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.obs import trace as otr

N_PAGES = 128
ROUNDS = 3
STEADY_REPEATS = 3
TECHNIQUES = ("proc", "ufd", "spml", "epml", "oracle")

CHAOS = [
    FaultSpec(FaultSite.PML_ENTRY_DROP, 0.25),
    FaultSpec(FaultSite.RING_OVERFLOW, 0.25),
    FaultSpec(FaultSite.LOST_SELF_IPI, 0.2),
]


def _run(technique: str, walk_cache: bool, chaos: bool = False,
         trace: bool = False):
    """One fixed scenario; returns (state tuple, trace jsonl, mmu)."""
    stack = build_stack(vm_mb=16, pml_buffer_entries=32)
    mmu = stack.vm.mmu
    # Force the switch explicitly so both legs are meaningful regardless
    # of the REPRO_WALK_CACHE CI matrix leg this test runs under.
    mmu._cache = {} if walk_cache else None
    proc = stack.kernel.spawn("app", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    rng = np.random.default_rng(11)
    session = otr.TraceSession() if trace else None
    injector = FaultPlan(CHAOS, seed=5).build() if chaos else None
    collects = []

    def body():
        stack.kernel.access(proc, np.arange(N_PAGES), True)  # prefault
        tracker = make_tracker(technique, stack.kernel, proc)
        tracker.start()
        steady = np.arange(0, N_PAGES // 2, dtype=np.int64)
        for _ in range(ROUNDS):
            # Identical repeated batches: walk -> fast path -> replay.
            for _ in range(STEADY_REPEATS):
                stack.kernel.access(proc, steady, True)
            vpns = rng.integers(0, N_PAGES, size=N_PAGES // 2)
            stack.kernel.access(proc, vpns, True)
            collects.append([int(v) for v in tracker.collect()])
        tracker.stop()

    if trace and chaos:
        with session.active(), injector.active():
            body()
    elif trace:
        with session.active():
            body()
    elif chaos:
        with injector.active():
            body()
    else:
        body()

    pml = stack.vm.vcpu.pml
    state = (
        collects,
        stack.clock.now_us,
        dict(stack.clock.snapshot().event_count),
        pml.n_hyp_full_events,
        pml.n_guest_full_events,
        pml.n_hyp_dropped,
        pml.n_guest_dropped,
        pml.n_hyp_injected_drops,
        pml.n_guest_injected_drops,
        proc.space.pt.flags.tolist(),
        stack.vm.ept.flags.tolist(),
        mmu.host_mem._content.tolist(),
    )
    jsonl = session.trace.to_jsonl() if trace else None
    return state, jsonl, mmu


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_walk_cache_bit_identical_per_technique(technique):
    on_state, _, on_mmu = _run(technique, walk_cache=True)
    off_state, _, off_mmu = _run(technique, walk_cache=False)
    assert on_mmu.n_replay_batches > 0, "cached leg never replayed"
    assert off_mmu.n_replay_batches == 0
    assert on_state == off_state


@pytest.mark.parametrize("technique", ("spml", "epml"))
def test_walk_cache_bit_identical_under_chaos(technique):
    """Replay skips PML logging entirely; it must therefore consume zero
    draws from the injector streams, keeping every later fault decision
    aligned with the uncached leg."""
    on_state, _, on_mmu = _run(technique, walk_cache=True, chaos=True)
    off_state, _, off_mmu = _run(technique, walk_cache=False, chaos=True)
    assert on_mmu.n_replay_batches > 0
    assert on_state == off_state


@pytest.mark.parametrize("technique", ("epml", "oracle"))
def test_walk_cache_bit_identical_under_detailed_trace(technique):
    """Full-detail tracing: the replayed batches must emit byte-identical
    WRITE events (including per-page payloads) in the same order."""
    on_state, on_jsonl, on_mmu = _run(technique, walk_cache=True, trace=True)
    off_state, off_jsonl, _ = _run(technique, walk_cache=False, trace=True)
    assert on_mmu.n_replay_batches > 0
    assert on_state == off_state
    assert on_jsonl == off_jsonl
