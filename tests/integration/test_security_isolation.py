"""Security & isolation tests mapping the paper's §V claims."""

import numpy as np
import pytest

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.core.ooh import OohKind, OohLib, OohModule
from repro.core.tracking import Technique, make_tracker
from repro.errors import VmcsError
from repro.guest.kernel import GuestKernel
from repro.hw import vmcs as vmcsf
from repro.hypervisor.hypervisor import Hypervisor


def two_vm_stacks():
    clock = SimClock()
    hv = Hypervisor(clock, CostModel(), host_mem_mb=256)
    vms = [hv.create_vm(f"vm{i}", mem_mb=32) for i in range(2)]
    kernels = [GuestKernel(vm) for vm in vms]
    return hv, vms, kernels


def test_guest_never_sees_host_physical_addresses():
    """§V item 2: SPML logs GPAs and EPML logs GVAs; HPAs stay with the
    hypervisor.  The second VM's host frames are disjoint from its guest
    frame numbers, so leakage would be visible."""
    hv, vms, kernels = two_vm_stacks()
    vm, kernel = vms[1], kernels[1]
    proc = kernel.spawn("app", n_pages=64)
    proc.space.add_vma(64)
    kernel.access(proc, np.arange(64), True)

    module = OohModule(kernel)
    att = module.attach(proc, OohKind.SPML)
    kernel.access(proc, np.arange(16), True)
    module._spml_disable(proc)  # flush PML buffer into the ring
    entries = vm.spml_ring.peek_all().astype(np.int64)
    assert entries.size > 0
    # Every logged value is a guest frame number of THIS VM...
    assert entries.max() < vm.mem_pages
    gpfns = set(int(g) for g in proc.space.pt.translate(np.arange(16)))
    assert set(int(e) for e in entries) <= gpfns
    # ...and none equals the corresponding host frame (disjoint ranges).
    hpfns = set(int(h) for h in vm.ept.translate(entries))
    assert not (set(int(e) for e in entries) & hpfns)
    att.detach()


def test_per_guest_ring_isolation():
    """§V: 'a guest can only see logged addresses that belong to its
    address space' — each VM has its own ring."""
    hv, vms, kernels = two_vm_stacks()
    modules = [OohModule(k) for k in kernels]
    procs = []
    atts = []
    for i, (k, m) in enumerate(zip(kernels, modules)):
        p = k.spawn("app", n_pages=64)
        p.space.add_vma(64)
        procs.append(p)
        atts.append(m.attach(p, OohKind.SPML))
    kernels[0].access(procs[0], [1, 2, 3], True)
    kernels[1].access(procs[1], [40, 41], True)
    d0 = set(int(v) for v in atts[0].collect())
    d1 = set(int(v) for v in atts[1].collect())
    assert d0 == {1, 2, 3}
    assert d1 == {40, 41}
    assert vms[0].spml_ring is not vms[1].spml_ring
    for a in atts:
        a.detach()


def test_guest_cannot_touch_hypervisor_vmcs_fields(stack):
    """VMCS shadowing exposes only the guest-PML fields; the hypervisor's
    PML address/index and controls stay out of reach (§II/§V)."""
    proc = stack.kernel.spawn("app", n_pages=16)
    proc.space.add_vma(16)
    tracker = make_tracker(Technique.EPML, stack.kernel, proc)
    tracker.start()
    vcpu = stack.vm.vcpu
    for field in (vmcsf.F_PML_ADDRESS, vmcsf.F_PML_INDEX,
                  vmcsf.F_CTRL_ENABLE_PML,
                  vmcsf.F_CTRL_ENABLE_VMCS_SHADOWING):
        with pytest.raises(VmcsError):
            vcpu.vmwrite(field, 1)
    tracker.stop()


def test_per_process_ring_restricted_to_tracked_process(stack):
    """§V final paragraph: per-process ring buffers prevent a tracked
    process from learning a co-tenant's access pattern."""
    a = stack.kernel.spawn("a", n_pages=64)
    a.space.add_vma(64)
    b = stack.kernel.spawn("b", n_pages=64)
    b.space.add_vma(64)
    stack.kernel.access(a, np.arange(64), True)
    stack.kernel.access(b, np.arange(64), True)
    lib = OohLib(OohModule(stack.kernel))
    att = lib.attach(a, OohKind.EPML)
    # b runs while a is descheduled (hooks toggle logging off).
    stack.kernel.scheduler.switch(a)
    stack.vm.vcpu.vmwrite(vmcsf.F_CTRL_ENABLE_GUEST_PML, 0)
    stack.kernel.access(b, [10, 11, 12], True)
    stack.vm.vcpu.vmwrite(vmcsf.F_CTRL_ENABLE_GUEST_PML, 1)
    stack.kernel.access(a, [5], True)
    dirty = set(int(v) for v in lib.fetch(att))
    assert dirty == {5}  # none of b's pattern leaked
    lib.detach(att)


def test_trust_model_tracked_cannot_disable_tracking(stack):
    """The kernel module mediates the feature: a process has no path to
    the VMCS or hypercalls except through the module's API (structural:
    the only mutators live on OohModule / Hypervisor)."""
    proc = stack.kernel.spawn("app", n_pages=16)
    proc.space.add_vma(16)
    tracker = make_tracker(Technique.SPML, stack.kernel, proc)
    tracker.start()
    # The tracked process writing its own memory cannot clear the
    # enabled_by_guest coordination flag.
    stack.kernel.access(proc, np.arange(16), True)
    assert stack.vm.enabled_by_guest
    tracker.stop()
    assert not stack.vm.enabled_by_guest
