"""Property-based tests: technique equivalence under random workloads.

The load-bearing invariant of the whole reproduction: for ANY sequence of
page accesses and collection points, every technique reports exactly the
pages the oracle saw written in each interval — they differ only in cost.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import SimClock, World
from repro.core.costs import CostModel
from repro.core.tracking import Technique, make_tracker
from repro.guest.kernel import GuestKernel
from repro.hypervisor.hypervisor import Hypervisor

N_PAGES = 128


def fresh_stack():
    clock = SimClock()
    hv = Hypervisor(clock, CostModel(), host_mem_mb=64)
    vm = hv.create_vm("vm0", mem_mb=16)
    kernel = GuestKernel(vm)
    proc = kernel.spawn("app", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    kernel.access(proc, np.arange(N_PAGES), True)
    return kernel, proc


# A step is either an access batch (pages + write flag) or a collect.
step_strategy = st.one_of(
    st.tuples(
        st.just("access"),
        st.lists(st.integers(0, N_PAGES - 1), min_size=1, max_size=30),
        st.booleans(),
    ),
    st.tuples(st.just("collect"), st.just([]), st.just(False)),
)


@settings(max_examples=25, deadline=None)
@given(steps=st.lists(step_strategy, min_size=1, max_size=25))
@pytest.mark.parametrize(
    "technique",
    [Technique.PROC, Technique.UFD, Technique.SPML, Technique.EPML],
)
def test_property_interval_equivalence_with_oracle(technique, steps):
    kernel, proc = fresh_stack()
    oracle = make_tracker(Technique.ORACLE, kernel, proc)
    tech = make_tracker(technique, kernel, proc)
    oracle.start()
    tech.start()
    oracle.collect()  # align interval starts
    try:
        for kind, pages, write in steps:
            if kind == "access":
                kernel.access(proc, pages, write)
            else:
                got = set(int(v) for v in tech.collect())
                truth = set(int(v) for v in oracle.collect())
                assert got == truth
        # Final interval.
        got = set(int(v) for v in tech.collect())
        truth = set(int(v) for v in oracle.collect())
        assert got == truth
    finally:
        tech.stop()
        oracle.stop()


@settings(max_examples=20, deadline=None)
@given(
    pages=st.lists(st.integers(0, N_PAGES - 1), min_size=1, max_size=60),
)
def test_property_wall_time_ordering(pages):
    """For one write-heavy interval, tracked wall time orders
    oracle <= epml <= proc (the paper's cheap-to-expensive order for
    collection-light runs)."""
    walls = {}
    for technique in (Technique.ORACLE, Technique.EPML, Technique.PROC):
        kernel, proc = fresh_stack()
        tracker = make_tracker(technique, kernel, proc)
        tracker.start()
        t0 = kernel.clock.now_us
        kernel.access(proc, pages, True)
        kernel.compute(proc, 100.0)
        tracker.collect()
        walls[technique] = kernel.clock.now_us - t0
        tracker.stop()
    assert walls[Technique.ORACLE] <= walls[Technique.EPML] + 1e-9
    assert walls[Technique.EPML] <= walls[Technique.PROC] + 1e-9


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_batches=st.integers(1, 6),
)
def test_property_charges_are_nonnegative_and_partition(seed, n_batches):
    """Accounting safety under random load: time never decreases and the
    world breakdown always sums to the wall clock."""
    kernel, proc = fresh_stack()
    rng = np.random.default_rng(seed)
    tracker = make_tracker(Technique.SPML, kernel, proc)
    tracker.start()
    last = kernel.clock.now_us
    for _ in range(n_batches):
        kernel.access(proc, rng.integers(0, N_PAGES, size=20), True)
        assert kernel.clock.now_us >= last
        last = kernel.clock.now_us
    tracker.collect()
    tracker.stop()
    total = sum(kernel.clock.world_us(w) for w in World)
    assert total == pytest.approx(kernel.clock.now_us)
