"""Differential validation: fused MMU walk vs multipass vs reference.

The fused walk and its TLB fast path (``Mmu.access``) must be
bit-identical to the original multipass walk they replaced — same
:class:`MmuResult`, same PML buffer contents and full-event counts, same
PTE/EPT state, same physical-memory content tokens, same clock totals.
Randomized batch streams drive two production stacks that differ only in
``Mmu.fused``, plus the independent scalar reference model for the log
semantics.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.emu import RefMachine
from repro.guest.kernel import GuestKernel
from repro.hw import vmcs as vmcsf
from repro.hw.pagetable import PTE_DIRTY
from repro.hypervisor.hypervisor import Hypervisor

N_PAGES = 96
CAPACITY = 16  # small buffer => frequent full events


class Harness:
    """The production stack wired for raw log capture."""

    def __init__(self, fused: bool) -> None:
        self.clock = SimClock()
        hv = Hypervisor(self.clock, CostModel(), host_mem_mb=32)
        self.vm = hv.create_vm("vm0", mem_mb=8, pml_buffer_entries=CAPACITY)
        self.vm.mmu.fused = fused
        self.kernel = GuestKernel(self.vm)
        self.proc = self.kernel.spawn("app", n_pages=N_PAGES)
        self.proc.space.add_vma(N_PAGES)
        pml = self.vm.vcpu.pml
        pml.configure_hyp_buffer()
        pml.configure_guest_buffer()
        self.guest_chunks: list[np.ndarray] = []
        pml.on_guest_full = self.guest_chunks.append
        self.vm.enabled_by_hyp = True
        self.vm.vcpu.vmcs.write(vmcsf.F_CTRL_ENABLE_PML, 1)
        self.vm.vcpu.vmcs.write(vmcsf.F_CTRL_ENABLE_GUEST_PML, 1)
        self.results: list[tuple] = []

    def access(self, vpns, writes) -> None:
        r = self.kernel.access(self.proc, vpns, writes)
        self.results.append((
            r.n_accesses, r.n_writes, r.n_minor_faults, r.n_wp_faults,
            r.n_ufd_faults, r.newly_pte_dirty.tolist(),
            r.newly_ept_dirty.tolist(),
        ))

    # -- observation ------------------------------------------------------
    def guest_log(self) -> list[int]:
        pml = self.vm.vcpu.pml
        out = [int(v) for chunk in self.guest_chunks for v in chunk]
        out += [int(v) for v in pml.guest_buffer.drain()]
        return out

    def hyp_log(self) -> list[int]:
        pml = self.vm.vcpu.pml
        gpfns = [int(g) for chunk in self.vm.hyp_dirty_log for g in chunk]
        gpfns += [int(g) for g in pml.drain_hyp()]
        return gpfns

    def pte_dirty(self) -> set:
        return set(int(v) for v in self.proc.space.pt.vpns_with_flag(PTE_DIRTY))

    def state(self) -> tuple:
        pml = self.vm.vcpu.pml
        return (
            self.results,
            self.guest_log(),
            self.hyp_log(),
            pml.n_guest_full_events,
            pml.n_hyp_full_events,
            self.proc.space.pt.flags.tolist(),
            self.proc.space.pt.gpfn.tolist(),
            self.vm.ept.flags.tolist(),
            self.vm.mmu.host_mem._content.tolist(),
            self.clock.now_us,
            dict(self.clock.snapshot().event_count),
        )


BATCHES = st.lists(
    st.lists(
        st.tuples(st.integers(0, N_PAGES - 1), st.booleans()),
        min_size=1,
        max_size=40,
    ),
    min_size=1,
    max_size=12,
)


def drive(fused: bool, batches) -> Harness:
    h = Harness(fused=fused)
    for batch in batches:
        vpns = np.array([v for v, _ in batch], dtype=np.int64)
        writes = np.array([w for _, w in batch], dtype=bool)
        h.access(vpns, writes)
    return h


@settings(max_examples=60, deadline=None)
@given(batches=BATCHES)
def test_fused_equals_multipass(batches):
    """Full-state equivalence over randomized batch streams."""
    fused = drive(True, batches)
    multi = drive(False, batches)
    assert fused.state() == multi.state()


@settings(max_examples=40, deadline=None)
@given(batches=BATCHES)
def test_fused_equals_reference_model(batches):
    """Fused walk vs the independent scalar reference (log semantics)."""
    fused = drive(True, batches)
    ref = RefMachine(N_PAGES, capacity=CAPACITY)
    ref.hyp_enabled = True
    ref.guest_enabled = True
    for batch in batches:
        for vpn, write in batch:
            ref.access(vpn, write)
    # Scalar replay has no batch dedup, so compare per-page outcomes.
    assert set(fused.guest_log()) == set(ref.drain_guest())
    assert set(fused.pte_dirty()) == {v for v, d in ref.pte_dirty.items() if d}


def test_fast_path_fires_and_stays_identical():
    """Re-writing a sorted, already-dirty range takes the TLB fast path
    in fused mode — and still matches the multipass walk bit-for-bit."""
    vpns = np.arange(0, 64, dtype=np.int64)
    fused, multi = Harness(fused=True), Harness(fused=False)
    for h in (fused, multi):
        for _ in range(4):
            h.access(vpns, True)
    assert fused.vm.mmu.n_fast_batches >= 3
    assert fused.vm.mmu.n_fast_accesses >= 3 * vpns.size
    assert multi.vm.mmu.n_fast_batches == 0
    assert fused.state() == multi.state()


def test_fast_path_declines_after_dirty_clear():
    """Clearing PTE dirty bits (tracker re-arm) must push the next write
    back through the full walk so the 0->1 transition is logged."""
    vpns = np.arange(0, 32, dtype=np.int64)
    h = Harness(fused=True)
    h.access(vpns, True)
    h.access(vpns, True)  # fast path
    before = h.vm.mmu.n_fast_batches
    h.proc.space.pt.clear_flags(vpns, PTE_DIRTY)
    h.proc.space.tlb.invalidate(vpns)
    h.access(vpns, True)  # must re-log: full walk
    assert h.vm.mmu.n_fast_batches == before
    assert set(vpns.tolist()) <= set(h.guest_log())
