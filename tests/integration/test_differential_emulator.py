"""Differential validation: fast simulator vs reference emulator.

Plays the role of the paper's BOCHS cross-validation (§VI-B): identical
access streams must produce identical PML behaviour in the vectorised
simulator and the independent scalar reference model.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.emu import RefMachine
from repro.guest.kernel import GuestKernel
from repro.hw import vmcs as vmcsf
from repro.hw.pagetable import PTE_DIRTY
from repro.hypervisor.hypervisor import Hypervisor

N_PAGES = 96
CAPACITY = 16  # small buffer => frequent full events in the tests


class FastHarness:
    """The production stack wired for raw log capture."""

    def __init__(self) -> None:
        clock = SimClock()
        hv = Hypervisor(clock, CostModel(), host_mem_mb=32)
        self.vm = hv.create_vm("vm0", mem_mb=8,
                               pml_buffer_entries=CAPACITY)
        self.kernel = GuestKernel(self.vm)
        self.proc = self.kernel.spawn("app", n_pages=N_PAGES)
        self.proc.space.add_vma(N_PAGES)
        pml = self.vm.vcpu.pml
        pml.configure_hyp_buffer()
        pml.configure_guest_buffer()
        self.guest_chunks: list[np.ndarray] = []
        pml.on_guest_full = self.guest_chunks.append
        self.vm.enabled_by_hyp = True  # route hyp drains to the VM log
        self.vm.vcpu.vmcs.write(vmcsf.F_CTRL_ENABLE_PML, 1)
        self.vm.vcpu.vmcs.write(vmcsf.F_CTRL_ENABLE_GUEST_PML, 1)

    def access(self, vpn: int, write: bool) -> None:
        self.kernel.access(self.proc, [vpn], write)

    # -- observation ------------------------------------------------------
    def guest_log(self) -> list[int]:
        pml = self.vm.vcpu.pml
        out = [int(v) for chunk in self.guest_chunks for v in chunk]
        out += [int(v) for v in pml.guest_buffer.drain()]
        return out

    def hyp_log_as_vpns(self) -> list[int]:
        pml = self.vm.vcpu.pml
        gpfns = [int(g) for chunk in self.vm.hyp_dirty_log for g in chunk]
        gpfns += [int(g) for g in pml.drain_hyp()]
        back = self.proc.space.pt.reverse_lookup(
            np.asarray(gpfns, dtype=np.int64)
        )
        return [int(v) for v in back]

    def pte_dirty_set(self) -> set[int]:
        return set(
            int(v) for v in self.proc.space.pt.vpns_with_flag(PTE_DIRTY)
        )


def run_both(stream):
    fast = FastHarness()
    ref = RefMachine(N_PAGES, capacity=CAPACITY)
    ref.hyp_enabled = True
    ref.guest_enabled = True
    for vpn, write in stream:
        fast.access(vpn, write)
        ref.access(vpn, write)
    return fast, ref


@settings(max_examples=60, deadline=None)
@given(
    stream=st.lists(
        st.tuples(st.integers(0, N_PAGES - 1), st.booleans()),
        min_size=1,
        max_size=120,
    )
)
def test_differential_logs_and_dirty_bits(stream):
    fast, ref = run_both(stream)
    # Guest-level (EPML) log: exact sequence of VPNs.
    assert fast.guest_log() == ref.drain_guest()
    # Hypervisor-level log: same dirty-page sequence (compared as VPNs).
    assert fast.hyp_log_as_vpns() == [
        next(v for v, g in ref.gpfn_of.items() if g == gg)
        for gg in ref.drain_hyp()
    ]
    # PTE dirty-bit outcome.
    assert fast.pte_dirty_set() == {
        v for v, d in ref.pte_dirty.items() if d
    }


@settings(max_examples=40, deadline=None)
@given(
    stream=st.lists(
        st.tuples(st.integers(0, N_PAGES - 1), st.booleans()),
        min_size=1,
        max_size=200,
    )
)
def test_differential_full_event_counts(stream):
    fast, ref = run_both(stream)
    pml = fast.vm.vcpu.pml
    assert pml.n_guest_full_events == ref.guest_buffer.full_events
    assert pml.n_hyp_full_events == ref.hyp_buffer.full_events


def test_differential_batched_vs_scalar_equivalence():
    """The fast path's batching must not change outcomes: one batched
    call equals the same accesses issued one by one (duplicates included,
    first-instance-logs semantics)."""
    rng = np.random.default_rng(11)
    vpns = rng.integers(0, N_PAGES, size=300)
    writes = rng.random(300) < 0.7

    batched = FastHarness()
    batched.kernel.access(batched.proc, vpns, writes)

    scalar = FastHarness()
    for v, w in zip(vpns, writes):
        scalar.access(int(v), bool(w))

    assert set(batched.guest_log()) == set(scalar.guest_log())
    assert batched.pte_dirty_set() == scalar.pte_dirty_set()
    assert sorted(batched.hyp_log_as_vpns()) == sorted(scalar.hyp_log_as_vpns())


def test_reference_machine_bounds():
    ref = RefMachine(4)
    with pytest.raises(ValueError):
        ref.access(4, True)
