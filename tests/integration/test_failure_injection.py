"""Failure-injection tests: resource exhaustion and loss surfacing."""

import numpy as np
import pytest

from repro.core.ooh import OohKind, OohLib, OohModule
from repro.core.tracking import Technique, make_tracker
from repro.errors import GuestError, OutOfFramesError
from repro.experiments.harness import build_stack
from repro.trackers.criu import Criu


def test_guest_memory_exhaustion_raises_cleanly():
    stack = build_stack(vm_mb=1)  # 256 guest frames
    proc = stack.kernel.spawn("hog", n_pages=1024)
    proc.space.add_vma(1024)
    with pytest.raises(OutOfFramesError):
        stack.kernel.access(proc, np.arange(1024), True)


def test_host_memory_exhaustion_on_vm_creation():
    from repro.core.clock import SimClock
    from repro.core.costs import CostModel
    from repro.hypervisor.hypervisor import Hypervisor

    hv = Hypervisor(SimClock(), CostModel(), host_mem_mb=8)
    hv.create_vm("a", mem_mb=4)
    with pytest.raises(OutOfFramesError):
        hv.create_vm("b", mem_mb=16)


def test_criu_surfaces_ring_drops_so_image_can_be_discarded():
    """An undersized OoH ring silently losing addresses would corrupt
    incremental checkpoints; CRIU must surface the drop counter."""
    stack = build_stack(vm_mb=64)
    proc = stack.kernel.spawn("app", n_pages=4096)
    proc.space.add_vma(4096)
    stack.kernel.access(proc, np.arange(4096), True)
    lib = OohLib(OohModule(stack.kernel, ring_capacity=128))
    criu = Criu(stack.kernel, Technique.SPML)

    # Plumb the undersized lib through a session manually.
    from repro.core.techniques.spml import SpmlTracker
    from repro.trackers.criu.checkpoint import CriuSession

    tracker = SpmlTracker(stack.kernel, proc, ooh_lib=lib)
    tracker.start()
    session = CriuSession(criu=criu, process=proc, tracker=tracker, init_us=0.0)
    stack.kernel.access(proc, np.arange(4096), True)  # >> ring capacity
    report = session.dump()
    session.finish()
    assert report.tracking_drops > 0
    assert report.pages_dumped < 4096


def test_checkpoint_with_adequate_ring_reports_zero_drops():
    stack = build_stack(vm_mb=64)
    proc = stack.kernel.spawn("app", n_pages=2048)
    proc.space.add_vma(2048)
    stack.kernel.access(proc, np.arange(2048), True)
    criu = Criu(stack.kernel, Technique.SPML)
    session = criu.begin(proc)
    stack.kernel.access(proc, np.arange(2048), True)
    report = session.dump()
    session.finish()
    assert report.tracking_drops == 0
    assert report.pages_dumped == 2048


def test_tracker_stop_after_process_exit_is_safe():
    stack = build_stack(vm_mb=64)
    proc = stack.kernel.spawn("app", n_pages=64)
    proc.space.add_vma(64)
    stack.kernel.access(proc, np.arange(64), True)
    tracker = make_tracker(Technique.PROC, stack.kernel, proc)
    tracker.start()
    stack.kernel.exit_process(proc)
    tracker.stop()  # must not blow up on the gone process


def test_access_after_exit_rejected():
    stack = build_stack(vm_mb=64)
    proc = stack.kernel.spawn("app", n_pages=64)
    proc.space.add_vma(64)
    stack.kernel.exit_process(proc)
    with pytest.raises(GuestError):
        stack.kernel.access(proc, [0], True)
    with pytest.raises(GuestError):
        stack.kernel.compute(proc, 1.0)


def test_epml_ring_overflow_is_counted_not_fatal():
    stack = build_stack(vm_mb=64)
    proc = stack.kernel.spawn("app", n_pages=4096)
    proc.space.add_vma(4096)
    lib = OohLib(OohModule(stack.kernel, ring_capacity=64))
    att = lib.attach(proc, OohKind.EPML)
    stack.kernel.access(proc, np.arange(4096), True)
    vpns = lib.fetch(att)
    assert att.last_stats.dropped > 0
    assert vpns.size < 4096
    lib.detach(att)
