"""End-to-end integration tests across the full stack."""

import numpy as np
import pytest

from repro.core.clock import World
from repro.core.tracking import Technique, make_tracker
from repro.experiments.harness import build_stack
from repro.trackers.boehm import BoehmGc, GcHeap, GcParams
from repro.trackers.criu import Criu, restore
from repro.workloads import FlatContext, make_workload


def test_full_stack_checkpoint_of_running_workload():
    """Workload -> tracking -> incremental dump -> restore -> verify."""
    stack = build_stack(vm_mb=1024)
    workload = make_workload("stdhash", "small", scale=0.003)
    proc = stack.kernel.spawn("kv", n_pages=workload.footprint_pages + 64)
    ctx = FlatContext(stack.kernel, proc)

    criu = Criu(stack.kernel, Technique.EPML)
    session = criu.begin(proc)
    workload.run(ctx)
    session.dump()
    # More work after the first dump, then a second incremental dump.
    stack.kernel.access(proc, np.arange(100), True)
    report2 = session.dump()
    image = session.finish()
    assert report2.pages_dumped >= 100

    clone = restore(stack.kernel, image)
    a = stack.kernel.vm.mmu.read_page_contents(
        proc.space.pt, proc.space.mapped_vpns())
    b = stack.kernel.vm.mmu.read_page_contents(
        clone.space.pt, clone.space.mapped_vpns())
    assert np.array_equal(a, b)


def test_two_processes_one_tracked_one_noisy():
    """Per-process granularity (challenge C2): a noisy neighbour's writes
    never leak into the tracked process's dirty set."""
    stack = build_stack(vm_mb=128)
    tracked = stack.kernel.spawn("tracked", n_pages=64)
    tracked.space.add_vma(64)
    noisy = stack.kernel.spawn("noisy", n_pages=64)
    noisy.space.add_vma(64)
    stack.kernel.access(tracked, np.arange(64), True)
    stack.kernel.access(noisy, np.arange(64), True)

    for technique in (Technique.PROC, Technique.UFD, Technique.SPML,
                      Technique.EPML):
        tracker = make_tracker(technique, stack.kernel, tracked)
        with tracker:
            stack.kernel.access(noisy, np.arange(32), True)
            stack.kernel.access(tracked, [5], True)
            dirty = set(int(v) for v in tracker.collect())
        assert dirty == {5}, technique


def test_gc_and_criu_on_the_same_kernel():
    """Two tracker systems over different processes in one guest."""
    stack = build_stack(vm_mb=256)
    # Process A: GC-managed.
    proc_a = stack.kernel.spawn("gc-app", n_pages=4096)
    heap = GcHeap(stack.kernel, proc_a, heap_pages=2048)
    ids = heap.alloc(500, 128)
    heap.set_refs(ids[:-1], ids[1:])
    heap.add_roots(ids[:1])
    gc = BoehmGc(stack.kernel, heap, Technique.PROC,
                 GcParams(threshold_bytes=4096))
    # Process B: checkpointed.
    proc_b = stack.kernel.spawn("db", n_pages=256)
    proc_b.space.add_vma(256)
    stack.kernel.access(proc_b, np.arange(256), True)

    with gc:
        gc.collect()
        image, report = Criu(stack.kernel, Technique.PROC).checkpoint(proc_b)
        heap.write_objs(ids[:100])
        gc.collect()
    assert report.pages_dumped >= 256
    assert len(gc.cycles) == 2
    clone = restore(stack.kernel, image)
    assert clone.space.rss_pages == 256


def test_simulated_time_is_deterministic():
    outcomes = []
    for _ in range(2):
        stack = build_stack(vm_mb=512)
        workload = make_workload("cache", "small", scale=0.002)
        proc = stack.kernel.spawn("kv", n_pages=workload.footprint_pages + 64)
        tracker = make_tracker(Technique.SPML, stack.kernel, proc)
        tracker.start()
        workload.run(FlatContext(stack.kernel, proc))
        dirty = tracker.collect()
        tracker.stop()
        outcomes.append((stack.clock.now_us, int(dirty.size),
                         stack.clock.events().get("vmexit", 0)))
    assert outcomes[0] == outcomes[1]


def test_world_times_sum_to_wall_time():
    """Accounting invariant: per-world charges partition wall time."""
    stack = build_stack(vm_mb=512)
    workload = make_workload("tiny", "small", scale=0.002)
    proc = stack.kernel.spawn("kv", n_pages=workload.footprint_pages + 64)
    tracker = make_tracker(Technique.SPML, stack.kernel, proc)
    tracker.start()
    workload.run(FlatContext(stack.kernel, proc))
    tracker.collect()
    tracker.stop()
    total = sum(stack.clock.world_us(w) for w in World)
    assert total == pytest.approx(stack.clock.now_us)


def test_guest_frames_never_leak_across_checkpoint_cycles():
    stack = build_stack(vm_mb=128)
    free_start = stack.vm.guest_frames.n_free
    for _ in range(3):
        proc = stack.kernel.spawn("app", n_pages=64)
        proc.space.add_vma(64)
        stack.kernel.access(proc, np.arange(64), True)
        image, _ = Criu(stack.kernel, Technique.EPML).checkpoint(proc)
        clone = restore(stack.kernel, image)
        stack.kernel.exit_process(proc)
        stack.kernel.exit_process(clone)
    assert stack.vm.guest_frames.n_free == free_start
