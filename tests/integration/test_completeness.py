"""Tier-1 completeness guarantees (paper evaluation question 3).

The promoted undersized-ring scenario: when the shared ring is too small
for the write rate, entries are lost — but the loss is *surfaced* through
``CollectStats.dropped``, and turning on ``resync_on_loss`` recovers a
complete capture by folding in a conservative resync.  The auditor
confirms neither configuration ever loses a page silently.
"""

import numpy as np

from repro.core.ooh import OohLib, OohModule
from repro.core.techniques.spml import SpmlTracker
from repro.core.tracking import Technique, make_tracker
from repro.faults.auditor import CompletenessAuditor

N_PAGES = 2048
RING_CAPACITY = N_PAGES // 8
ROUNDS = 6


def _spawn(stack):
    proc = stack.kernel.spawn("writer", n_pages=N_PAGES)
    proc.space.add_vma(N_PAGES)
    stack.kernel.access(proc, np.arange(N_PAGES), True)  # prefault
    return proc


def _run(stack, proc, tracker):
    oracle = make_tracker(Technique.ORACLE, stack.kernel, proc)
    oracle.start()
    tracker.start()
    oracle.collect()  # flush start-up writes from the truth set
    truth: set[int] = set()
    got: set[int] = set()
    rng = np.random.default_rng(5)
    for _ in range(ROUNDS):
        stack.kernel.access(
            proc, rng.integers(0, N_PAGES, size=N_PAGES // 2), True
        )
        got.update(tracker.collect().tolist())
        truth.update(oracle.collect().tolist())
    stats = tracker.last_stats
    tracker.stop()
    oracle.stop()
    return truth, got, stats


def test_undersized_ring_losses_are_surfaced(stack):
    proc = _spawn(stack)
    lib = OohLib(OohModule(stack.kernel, ring_capacity=RING_CAPACITY))
    truth, got, stats = _run(stack, proc, SpmlTracker(stack.kernel, proc, ooh_lib=lib))
    assert len(got & truth) < len(truth)  # pages were lost...
    assert stats.dropped > 0  # ...but the counter says so


def test_resync_on_loss_restores_complete_capture(stack):
    proc = _spawn(stack)
    lib = OohLib(OohModule(stack.kernel, ring_capacity=RING_CAPACITY))
    truth, got, stats = _run(
        stack, proc,
        SpmlTracker(stack.kernel, proc, ooh_lib=lib, resync_on_loss=True),
    )
    assert truth <= got  # complete despite the overflowing ring
    assert stats.dropped > 0
    assert stats.n_resyncs >= 1


def test_auditor_passes_undersized_ring(stack):
    """Even the lossy configuration is loud, not silent: the auditor's
    silent-loss verdict stays clean."""
    proc = _spawn(stack)
    lib = OohLib(OohModule(stack.kernel, ring_capacity=RING_CAPACITY))
    tracker = SpmlTracker(stack.kernel, proc, ooh_lib=lib)
    auditor = CompletenessAuditor(stack.kernel, proc, tracker)
    auditor.start()
    rng = np.random.default_rng(5)
    for _ in range(ROUNDS):
        stack.kernel.access(
            proc, rng.integers(0, N_PAGES, size=N_PAGES // 2), True
        )
        auditor.collect()
    report = auditor.stop()  # raises CompletenessViolation on silent loss
    assert not report.silent_loss
    assert report.surfaced["tracker_dropped"] > 0
