"""Setup shim: enables `pip install -e . --no-use-pep517` on hosts without
the `wheel` package (this build environment is offline)."""

from setuptools import setup

setup()
