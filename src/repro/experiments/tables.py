"""Plain-text rendering of paper-style tables."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "fmt_ms", "fmt_pct", "fmt_x"]


def fmt_ms(us: float) -> str:
    return f"{us / 1000.0:,.1f}"


def fmt_pct(pct: float) -> str:
    return f"{pct:,.0f}"


def fmt_x(ratio: float) -> str:
    return f"{ratio:,.2f}x"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule, like the paper's tables."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
