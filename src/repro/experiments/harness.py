"""Experiment harness: build stacks, run Tracker over Tracked, measure.

Three runner families cover the paper's evaluation:

* :func:`run_microbench` — the array parser under one technique with one
  collection round (Table I, Table Vb, Fig. 3, Fig. 4);
* :func:`run_criu` — an application checkpointed while running, with the
  MD/MW phase split (Fig. 7, 8, 9, Table IV);
* :func:`run_boehm` — an application on the GC heap with per-cycle pause
  times (Fig. 5, 6, 10, 11).

Every runner first measures the workload's *ideal* execution time under
the zero-cost oracle, then re-runs it under the requested technique on a
fresh stack; overheads are reported the way the paper reports them
(§VI-B: the tracker's ideal time is the tracked application's ideal
time).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from types import SimpleNamespace

import numpy as np

from repro.core.clock import SimClock
from repro.core.costs import CostModel, CostParams
from repro.core.tracking import Technique, make_tracker
from repro.experiments.cache import EXPERIMENT_CACHE
from repro.guest.kernel import GuestKernel
from repro.guest.scheduler import DEFAULT_SWITCH_INTERVAL_US
from repro.hypervisor.hypervisor import Hypervisor
from repro.trackers.boehm import BoehmGc, GcCycleReport, GcHeap, GcParams
from repro.trackers.criu import Criu, CriuReport
from repro.workloads import ArrayParser, FlatContext, GcContext, make_workload
from repro.workloads.base import Workload

__all__ = [
    "build_stack",
    "MicrobenchResult",
    "run_microbench",
    "CriuRunResult",
    "run_criu",
    "BoehmRunResult",
    "run_boehm",
]


def _default_n_vcpus() -> int:
    """Experiment-level vCPU count: ``REPRO_VCPUS`` (default 1).

    Only :func:`build_stack` honours the environment variable — direct
    ``Hypervisor.create_vm`` callers (unit tests, golden-trace runs) pin
    their own count, so a CI matrix leg exporting ``REPRO_VCPUS=4`` scales
    the experiment stacks without perturbing exact-count tests.
    """
    return int(os.environ.get("REPRO_VCPUS", "1"))


def build_stack(
    vm_mb: float = 5 * 1024,
    host_mb: float | None = None,
    switch_interval_us: float = DEFAULT_SWITCH_INTERVAL_US,
    cost_params: CostParams | None = None,
    pml_buffer_entries: int = 512,
    n_vcpus: int | None = None,
) -> SimpleNamespace:
    """One host + one VM (the paper's setup: 1 dedicated vCPU, 5 GB).

    ``n_vcpus`` overrides the VM's vCPU count (SMP); when None it comes
    from ``REPRO_VCPUS`` (default 1, the paper's configuration).
    """
    clock = SimClock()
    costs = CostModel(params=cost_params) if cost_params else CostModel()
    hv = Hypervisor(clock, costs, host_mem_mb=host_mb or (vm_mb + 512))
    vm = hv.create_vm(
        "vm0",
        mem_mb=vm_mb,
        pml_buffer_entries=pml_buffer_entries,
        n_vcpus=n_vcpus if n_vcpus is not None else _default_n_vcpus(),
    )
    kernel = GuestKernel(vm, switch_interval_us=switch_interval_us)
    return SimpleNamespace(clock=clock, costs=costs, hv=hv, vm=vm, kernel=kernel)


# ---------------------------------------------------------------------
# micro-benchmark runner
# ---------------------------------------------------------------------
@dataclass
class MicrobenchResult:
    technique: Technique
    mem_mb: float
    ideal_us: float
    tracked_us: float  # wall time until the workload finished
    tracker_us: float  # TRACKER-world time (C_x + C_p)
    collect_us: float  # final collection phase alone
    n_dirty: int
    events: dict[str, int] = field(default_factory=dict)
    event_us: dict[str, float] = field(default_factory=dict)

    @property
    def overhead_tracked_pct(self) -> float:
        return (self.tracked_us - self.ideal_us) / self.ideal_us * 100.0

    @property
    def overhead_tracker_pct(self) -> float:
        return self.tracker_us / self.ideal_us * 100.0

    @property
    def slowdown_tracked(self) -> float:
        return self.tracked_us / self.ideal_us


def _write_pass(stack, proc, region_vpns: np.ndarray, us_per_page: float) -> None:
    """One pass of Listing 1: write one word into every page, in order."""
    batch = 16384
    for lo in range(0, region_vpns.size, batch):
        hi = min(lo + batch, region_vpns.size)
        stack.kernel.access(proc, region_vpns[lo:hi], True)
        stack.kernel.compute(proc, (hi - lo) * us_per_page)


#: Constant process-startup work (fork/exec, malloc, mlockall), us.  Keeps
#: small-memory overhead ratios finite, as in the paper's Table I.
STARTUP_US = 2500.0


def _microbench_setup(mem_mb, cost_params, pml_buffer_entries, switch_interval_us):
    stack = build_stack(
        vm_mb=max(64.0, mem_mb * 1.5),
        cost_params=cost_params,
        pml_buffer_entries=pml_buffer_entries,
        switch_interval_us=switch_interval_us,
    )
    w = ArrayParser(mem_mb=mem_mb, passes=1)
    proc = stack.kernel.spawn("tracked", n_pages=w.footprint_pages + 16)
    vma = proc.space.add_vma(w.footprint_pages, "array")
    vpns = vma.vpns()
    # mlockall(): the array is faulted in before monitoring begins
    # (Listing 1 pins its pages; the paper suspends Tracked during the
    # tracker's initialization phase, so pages exist when WP is armed).
    _write_pass(stack, proc, vpns, w.us_per_page)
    return stack, proc, vpns, w.us_per_page


def run_microbench(
    technique: Technique | str,
    mem_mb: float,
    passes: int = 2,
    cost_params: CostParams | None = None,
    pml_buffer_entries: int = 512,
    switch_interval_us: float = DEFAULT_SWITCH_INTERVAL_US,
) -> MicrobenchResult:
    """Array parser (Listing 1) under one monitoring round (Table I).

    Tracked loops over the (pre-faulted) array; the tracker initialises
    before the first monitored pass and collects between passes — tracker
    activity runs in the same thread as Tracked (paper §VI-B), so the
    collection delays Tracked, exactly as the measured overheads imply.
    A final collection after Tracked finishes only counts toward the
    tracker's own time.
    """
    technique = Technique(technique) if isinstance(technique, str) else technique
    if passes < 1:
        raise ValueError("passes must be >= 1")
    key = ("microbench", technique.value, mem_mb, passes, cost_params,
           pml_buffer_entries, switch_interval_us, _default_n_vcpus())
    return EXPERIMENT_CACHE.get_or_run(key, lambda: _run_microbench_uncached(
        technique, mem_mb, passes, cost_params, pml_buffer_entries,
        switch_interval_us,
    ))


def _run_microbench_uncached(
    technique: Technique,
    mem_mb: float,
    passes: int,
    cost_params: CostParams | None,
    pml_buffer_entries: int,
    switch_interval_us: float,
) -> MicrobenchResult:
    # Ideal run: no tracker.
    stack, proc, vpns, us_pp = _microbench_setup(
        mem_mb, cost_params, pml_buffer_entries, switch_interval_us
    )
    t0 = stack.clock.now_us
    stack.kernel.compute(proc, STARTUP_US)
    for _ in range(passes):
        _write_pass(stack, proc, vpns, us_pp)
    ideal_us = stack.clock.now_us - t0

    # Tracked run.  Tracked is suspended during the tracker's
    # initialization phase (paper §III), so its window starts afterwards;
    # the tracker's own time does include initialization.
    stack, proc, vpns, us_pp = _microbench_setup(
        mem_mb, cost_params, pml_buffer_entries, switch_interval_us
    )
    start = stack.clock.snapshot()
    tracker = make_tracker(technique, stack.kernel, proc)
    tracker.start()
    tracked_start = stack.clock.now_us
    stack.kernel.compute(proc, STARTUP_US)
    n_dirty = 0
    collect_us = 0.0
    for i in range(passes):
        _write_pass(stack, proc, vpns, us_pp)
        if i < passes - 1:
            # Mid-run collection: it shares the CPU with Tracked.
            c0 = stack.clock.now_us
            n_dirty += int(tracker.collect().size)
            collect_us += stack.clock.now_us - c0
    tracked_done = stack.clock.now_us - tracked_start
    c0 = stack.clock.now_us
    n_dirty += int(tracker.collect().size)
    collect_us += stack.clock.now_us - c0
    tracker.stop()
    delta = stack.clock.since(start)
    return MicrobenchResult(
        technique=technique,
        mem_mb=mem_mb,
        ideal_us=ideal_us,
        tracked_us=tracked_done,
        tracker_us=delta.world_us["tracker"],
        collect_us=collect_us,
        n_dirty=n_dirty,
        events=delta.event_count,
        event_us=delta.event_us,
    )


# ---------------------------------------------------------------------
# CRIU runner
# ---------------------------------------------------------------------
@dataclass
class CriuRunResult:
    app: str
    config: str
    technique: Technique
    ideal_us: float
    tracked_us: float  # application wall time including dumps
    dumps: list[CriuReport] = field(default_factory=list)
    events: dict[str, int] = field(default_factory=dict)
    tracker_us: float = 0.0

    @property
    def overhead_tracked_pct(self) -> float:
        return (self.tracked_us - self.ideal_us) / self.ideal_us * 100.0

    @property
    def md_us(self) -> float:
        return sum(d.phases.md_us for d in self.dumps)

    @property
    def mw_us(self) -> float:
        return sum(d.phases.mw_us for d in self.dumps)

    @property
    def checkpoint_us(self) -> float:
        return sum(d.phases.total_us for d in self.dumps)


class _OpportunityDriver:
    """Triggers CRIU actions at chosen checkpoint opportunities."""

    def __init__(self, ctx: FlatContext, actions: dict[int, callable]) -> None:
        self.ctx = ctx
        self.actions = actions
        self.count = 0
        ctx.checkpoint_opportunity = self._hook  # type: ignore[method-assign]

    def _hook(self) -> None:
        action = self.actions.get(self.count)
        self.count += 1
        if action is not None:
            action()


def _count_opportunities(workload: Workload, vm_mb: float) -> tuple[int, float]:
    stack = build_stack(vm_mb=vm_mb)
    proc = stack.kernel.spawn(workload.name, n_pages=workload.footprint_pages + 64)
    ctx = FlatContext(stack.kernel, proc)
    counter = {"n": 0}
    ctx.checkpoint_opportunity = lambda: counter.__setitem__("n", counter["n"] + 1)  # type: ignore[method-assign]
    workload.run(ctx)
    return counter["n"], stack.clock.now_us


def run_criu(
    app: str,
    config: str = "large",
    technique: Technique | str = Technique.PROC,
    scale: float = 1.0,
    dump_at_fraction: float = 0.6,
    track_from_fraction: float = 0.1,
) -> CriuRunResult:
    """Checkpoint a running application (the paper's §VI-F setup).

    Tracking starts at ``track_from_fraction`` of the run and an
    incremental dump happens at ``dump_at_fraction`` — so the dump
    captures the pages dirtied in between, exercising MD/MW per
    technique.
    """
    technique = Technique(technique) if isinstance(technique, str) else technique
    key = ("criu", app, config, technique.value, scale, dump_at_fraction,
           track_from_fraction, _default_n_vcpus())
    return EXPERIMENT_CACHE.get_or_run(key, lambda: _run_criu_uncached(
        app, config, technique, scale, dump_at_fraction, track_from_fraction,
    ))


def _run_criu_uncached(
    app: str,
    config: str,
    technique: Technique,
    scale: float,
    dump_at_fraction: float,
    track_from_fraction: float,
) -> CriuRunResult:
    workload = make_workload(app, config, scale=scale)
    vm_mb = workload.footprint_pages / 256 * 1.3 + 64
    # Untracked baseline: (n_opportunities, ideal_us), shared across the
    # technique sweep for one (app, config, scale).
    n_opps, ideal_us = EXPERIMENT_CACHE.get_or_run(
        ("criu_ideal", app, config, scale, _default_n_vcpus()),
        lambda: _count_opportunities(
            make_workload(app, config, scale=scale), vm_mb
        ),
    )

    stack = build_stack(vm_mb=vm_mb)
    proc = stack.kernel.spawn(workload.name, n_pages=workload.footprint_pages + 64)
    ctx = FlatContext(stack.kernel, proc)
    criu = Criu(stack.kernel, technique)
    state: dict = {"session": None}

    def begin() -> None:
        state["session"] = criu.begin(proc)

    def dump() -> None:
        state["session"].dump()

    start = stack.clock.snapshot()
    if n_opps < 2:
        # Workload exposes no safe points: bracket the whole run.
        begin()
        workload.run(ctx)
        dump()
    else:
        begin_at = min(n_opps - 2, max(0, int(n_opps * track_from_fraction)))
        dump_at = min(n_opps - 1, max(begin_at + 1, int(n_opps * dump_at_fraction)))
        _OpportunityDriver(ctx, {begin_at: begin, dump_at: dump})
        workload.run(ctx)
    tracked_us = stack.clock.now_us - start.now_us
    session = state["session"]
    dumps = list(session.dumps) if session is not None else []
    if session is not None:
        session.finish()
    delta = stack.clock.since(start)
    return CriuRunResult(
        app=app,
        config=config,
        technique=technique,
        ideal_us=ideal_us,
        tracked_us=tracked_us,
        dumps=dumps,
        events=delta.event_count,
        tracker_us=delta.world_us["tracker"],
    )


# ---------------------------------------------------------------------
# Boehm runner
# ---------------------------------------------------------------------
@dataclass
class BoehmRunResult:
    app: str
    config: str
    technique: Technique
    ideal_us: float
    tracked_us: float
    cycles: list[GcCycleReport] = field(default_factory=list)
    tracker_us: float = 0.0

    @property
    def overhead_tracked_pct(self) -> float:
        return (self.tracked_us - self.ideal_us) / self.ideal_us * 100.0

    @property
    def gc_us(self) -> float:
        return sum(c.pause_us for c in self.cycles)


def _boehm_once(
    app: str, config: str, technique: Technique, scale: float,
    gc_params: GcParams,
) -> tuple[SimpleNamespace, BoehmRunResult]:
    workload = make_workload(app, config, scale=scale)
    heap_pages = int(workload.footprint_pages * 1.6) + 512
    vm_mb = heap_pages / 256 * 1.3 + 64
    stack = build_stack(vm_mb=vm_mb)
    proc = stack.kernel.spawn(workload.name, n_pages=heap_pages + 64)
    heap = GcHeap(stack.kernel, proc, heap_pages=heap_pages)
    gc = BoehmGc(stack.kernel, heap, technique, gc_params)
    ctx = GcContext(stack.kernel, proc, heap, gc)
    start = stack.clock.snapshot()
    with gc:
        workload.run(ctx)
    tracked_us = stack.clock.now_us - start.now_us
    delta = stack.clock.since(start)
    result = BoehmRunResult(
        app=app,
        config=config,
        technique=technique,
        ideal_us=0.0,
        tracked_us=tracked_us,
        cycles=list(gc.cycles),
        tracker_us=delta.world_us["tracker"],
    )
    return stack, result


def run_boehm(
    app: str,
    config: str = "small",
    technique: Technique | str = Technique.PROC,
    scale: float = 1.0,
    gc_params: GcParams | None = None,
) -> BoehmRunResult:
    """Run an application on the GC heap under one technique (§VI-E).

    The ideal baseline is the same run under the oracle (GC still runs —
    the paper's baseline is the untracked application, so the overhead
    compares tracking techniques, with oracle as the floor).
    """
    technique = Technique(technique) if isinstance(technique, str) else technique
    params = gc_params if gc_params is not None else GcParams()
    key = ("boehm", app, config, technique.value, scale, params,
           _default_n_vcpus())
    return EXPERIMENT_CACHE.get_or_run(key, lambda: _run_boehm_uncached(
        app, config, technique, scale, params,
    ))


def _run_boehm_uncached(
    app: str,
    config: str,
    technique: Technique,
    scale: float,
    params: GcParams,
) -> BoehmRunResult:
    # Oracle baselines are deterministic per configuration: cache the
    # whole run so a technique sweep pays for each baseline once.
    oracle = EXPERIMENT_CACHE.get_or_run(
        ("boehm_oracle", app, config, scale, params, _default_n_vcpus()),
        lambda: _boehm_once(app, config, Technique.ORACLE, scale, params)[1],
    )
    if technique is Technique.ORACLE:
        oracle.ideal_us = oracle.tracked_us
        return oracle
    _, result = _boehm_once(app, config, technique, scale, params)
    result.ideal_us = oracle.tracked_us
    return result
