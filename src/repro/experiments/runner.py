"""Experiment registry: one entry per paper table/figure.

Each ``exp_*`` function regenerates one evaluation artifact and returns a
:class:`ExperimentOutput` with structured rows plus a rendered text table.
The benchmark suite (``benchmarks/``) wraps these; they can also be run
directly::

    python -m repro.experiments.runner table1 --quick
    python -m repro.experiments.runner all

``quick`` shrinks sizes/scales so everything completes in seconds; the
defaults reproduce the paper's configurations (Table III sizes, 1 MB-1 GB
sweeps).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core import formulas
from repro.core.calibration import TABLE_VB_MS, TABLE_VB_SIZES_MB, mb_to_pages
from repro.core.costs import CostModel
from repro.core.tracking import Technique
from repro.experiments.faultmatrix import exp_fault_matrix
from repro.experiments.harness import (
    run_boehm,
    run_criu,
    run_microbench,
)
from repro.experiments.tables import fmt_ms, fmt_pct, render_table
from repro.fleet.economics.experiment import exp_overcommit
from repro.fleet.experiment import exp_fleet
from repro.obs import trace as otr
from repro.serverless.experiment import exp_serverless
from repro.trackers.boehm import GcParams

__all__ = ["ExperimentOutput", "EXPERIMENTS", "run_experiment", "main"]

SIZES_MB = list(TABLE_VB_SIZES_MB)  # 1 .. 1024
QUICK_SIZES_MB = [1, 10, 100]

#: Paper reference values for EXPERIMENTS.md comparisons.
PAPER_TABLE1 = {
    # (row, size_mb) -> overhead %
    ("tracked-ufd", 1): 195, ("tracked-ufd", 1024): 1463,
    ("tracked-proc", 1): 104, ("tracked-proc", 1024): 335,
    ("tracker-ufd", 1): 93, ("tracker-ufd", 1024): 1349,
    ("tracker-proc", 1): 46, ("tracker-proc", 1024): 147,
}

CRIU_APPS = ["baby", "cache", "stdhash", "stdtree", "tiny",
             "histogram", "kmeans", "matrix-multiply", "pca",
             "string-match", "word-count"]
BOEHM_APPS = ["gcbench", "histogram", "kmeans", "matrix-multiply", "pca",
              "string-match", "word-count"]


@dataclass
class ExperimentOutput:
    experiment: str
    headers: list[str]
    rows: list[list[object]]
    text: str
    extra: dict = field(default_factory=dict)

    def print(self) -> None:  # noqa: A003 - mirrors the CLI verb
        print(self.text)


# ---------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------
def exp_table1(quick: bool = False) -> ExperimentOutput:
    """Table I: % overhead of ufd and /proc on Tracked and Tracker."""
    sizes = QUICK_SIZES_MB if quick else SIZES_MB
    results = {
        (t, mb): run_microbench(t, mem_mb=mb)
        for t in (Technique.UFD, Technique.PROC)
        for mb in sizes
    }
    headers = ["row"] + [f"{mb}MB" for mb in sizes]
    rows = []
    for side in ("tracked", "tracker"):
        for t in (Technique.UFD, Technique.PROC):
            vals = []
            for mb in sizes:
                r = results[(t, mb)]
                pct = (
                    r.overhead_tracked_pct if side == "tracked"
                    else r.overhead_tracker_pct
                )
                vals.append(fmt_pct(pct))
            rows.append([f"{side}-{t.value}"] + vals)
    text = render_table(headers, rows,
                        "Table I: overhead (%) of ufd/proc dirty tracking")
    return ExperimentOutput("table1", headers, rows, text,
                            extra={"paper": PAPER_TABLE1})


# ---------------------------------------------------------------------
# Table IV: formula validation
# ---------------------------------------------------------------------
def exp_table4(quick: bool = False) -> ExperimentOutput:
    """Table IV: estimated vs measured times for SPML and /proc (CRIU
    over tkrzw-baby), reproducing the §VI-B validation."""
    scale = 0.01 if quick else 0.05
    rows = []
    for technique in (Technique.SPML, Technique.PROC):
        r = run_criu("baby", "large", technique, scale=scale)
        snap_events = r.events
        cm = CostModel()
        mem_pages = mb_to_pages(848.56)  # baby Large footprint
        from repro.core.clock import ClockSnapshot

        snap = ClockSnapshot(0.0, {}, {}, snap_events)
        # C_p (the tracking routine) is the image writing alone; for
        # /proc the MW phase also contains the pagemap walk, which
        # belongs to C_x (Formula 2), so derive C_p from the disk events.
        routine_us = (
            snap_events.get("disk_write", 0) * cm.params.disk_write_us_per_page
        )
        est = formulas.estimate(
            technique, snap, cm, mem_pages,
            tracked_ideal_us=r.ideal_us, routine_us=routine_us,
        )
        acc_tker = formulas.accuracy_pct(est.tracker_us, r.tracker_us)
        acc_tked = formulas.accuracy_pct(est.tracked_us, r.tracked_us)
        rows.append([
            technique.value,
            fmt_ms(r.tracker_us), fmt_ms(est.tracker_us), f"{acc_tker:.1f}",
            fmt_ms(r.tracked_us), fmt_ms(est.tracked_us), f"{acc_tked:.1f}",
        ])
    headers = ["technique", "E(C_tker) meas ms", "est ms", "acc %",
               "E(C_tked_tker) meas ms", "est ms", "acc %"]
    text = render_table(headers, rows,
                        "Table IV: Formula 1-4 validation (CRIU over baby)")
    return ExperimentOutput("table4", headers, rows, text,
                            extra={"paper_accuracy": {"tracker": 96.34,
                                                      "tracked": 99.0}})


# ---------------------------------------------------------------------
# Table V: basic costs
# ---------------------------------------------------------------------
def exp_table5(quick: bool = False) -> ExperimentOutput:
    """Table Vb: memory-dependent metric costs, measured in-simulator vs
    the paper's published values."""
    sizes = QUICK_SIZES_MB if quick else SIZES_MB
    metric_events = {
        "m15_clear_refs": ("proc", "clear_refs"),
        "m16_pt_walk_user": ("proc", "pt_walk_user"),
        "m5_pf_kernel": ("proc", "pf_kernel"),
        "m6_pf_user": ("ufd", "pf_user"),
        "m18_rb_copy": ("epml", "rb_copy"),
        "m17_reverse_map": ("spml", "reverse_map"),
    }
    runs = {
        t: {mb: run_microbench(t, mem_mb=mb) for mb in sizes}
        for t in ("proc", "ufd", "spml", "epml")
    }
    headers = ["metric"] + [f"{mb}MB" for mb in sizes] + ["paper@1GB(ms)"]
    rows = []
    for metric, (tech, event) in metric_events.items():
        vals = []
        for mb in sizes:
            r = runs[tech][mb]
            # Mean per-event cost; fault-style metrics report one
            # full-array sweep's worth, walk-style metrics one call.
            per = r.event_us.get(event, 0.0) / max(1, r.events.get(event, 1))
            if metric in ("m15_clear_refs", "m16_pt_walk_user"):
                us = per
            else:
                us = per * mb_to_pages(mb)
            vals.append(fmt_ms(us))
        paper_1g = TABLE_VB_MS[metric][-1]
        rows.append([metric] + vals + [f"{paper_1g:,.3f}"])
    text = render_table(headers, rows,
                        "Table Vb: per-sweep metric costs (ms), measured")
    return ExperimentOutput("table5", headers, rows, text)


# ---------------------------------------------------------------------
# Table VI: metric classification (derived)
# ---------------------------------------------------------------------
def exp_table6(quick: bool = False) -> ExperimentOutput:
    """Table VI: which metrics each technique involves, measured by
    observing which events fire under each technique."""
    sizes_mb = 10
    rows = []
    interesting = [
        "context_switch", "pf_kernel", "pf_user", "clear_refs",
        "pt_walk_user", "reverse_map", "rb_copy", "vmread", "vmwrite",
        "hc_init_pml", "hc_init_pml_shadow", "enable_logging",
        "disable_logging", "ufd_write_protect", "ioctl_init_pml",
    ]
    results = {
        t: run_microbench(t, mem_mb=sizes_mb)
        for t in ("proc", "ufd", "spml", "epml")
    }
    for event in interesting:
        row = [event]
        for t in ("proc", "ufd", "spml", "epml"):
            row.append("x" if results[t].events.get(event, 0) > 0 else "")
        rows.append(row)
    headers = ["metric/event", "proc", "ufd", "spml", "epml"]
    text = render_table(headers, rows,
                        "Table VI: events observed per technique")
    return ExperimentOutput("table6", headers, rows, text)


# ---------------------------------------------------------------------
# Fig. 3: SPML collection breakdown
# ---------------------------------------------------------------------
def exp_fig3(quick: bool = False) -> ExperimentOutput:
    """Fig. 3: reverse mapping / PT walk / RB copy shares of SPML
    collection (reverse mapping is the bottleneck, >= ~68%)."""
    sizes = QUICK_SIZES_MB if quick else SIZES_MB
    headers = ["size", "reverse_map ms", "pt_walk ms", "rb_copy ms",
               "revmap share %"]
    rows = []
    shares = []
    for mb in sizes:
        r = run_microbench("spml", mem_mb=mb)
        rev = r.event_us.get("reverse_map", 0.0)
        walk = r.event_us.get("pt_walk_user", 0.0)
        copy = r.event_us.get("rb_copy", 0.0)
        total = rev + walk + copy
        share = rev / total * 100 if total else 0.0
        shares.append(share)
        rows.append([f"{mb}MB", fmt_ms(rev), fmt_ms(walk), fmt_ms(copy),
                     f"{share:.1f}"])
    text = render_table(headers, rows, "Fig. 3: SPML collection breakdown")
    return ExperimentOutput("fig3", headers, rows, text,
                            extra={"mean_revmap_share_pct": float(np.mean(shares))})


# ---------------------------------------------------------------------
# Fig. 4: micro-benchmark slowdowns
# ---------------------------------------------------------------------
def exp_fig4(quick: bool = False) -> ExperimentOutput:
    """Fig. 4: slowdown of each technique on the micro-benchmark."""
    sizes = QUICK_SIZES_MB if quick else SIZES_MB
    headers = ["size"] + [t.value for t in
                          (Technique.PROC, Technique.UFD, Technique.SPML,
                           Technique.EPML)]
    rows = []
    series: dict[str, list[float]] = {}
    for mb in sizes:
        row = [f"{mb}MB"]
        for t in ("proc", "ufd", "spml", "epml"):
            r = run_microbench(t, mem_mb=mb)
            row.append(f"{r.slowdown_tracked:.2f}x")
            series.setdefault(t, []).append(r.slowdown_tracked)
        rows.append(row)
    text = render_table(headers, rows,
                        "Fig. 4: tracked slowdown per technique")
    return ExperimentOutput("fig4", headers, rows, text, extra={"series": series})


# ---------------------------------------------------------------------
# Fig. 5 / Fig. 6: Boehm
# ---------------------------------------------------------------------
def _boehm_matrix(quick: bool, configs: tuple[str, ...]) -> dict:
    # No matrix-level cache: every run_boehm call below is memoized by
    # the shared EXPERIMENT_CACHE, so fig5/fig6 dedup through the same
    # mechanism as the benchmark suite.
    apps = ["gcbench", "matrix-multiply"] if quick else BOEHM_APPS
    gc_params = GcParams(threshold_bytes=1 * 1024 * 1024)

    def scale_for(app: str, config: str) -> float:
        if quick:
            return 0.002
        if app == "gcbench":
            # GCBench's allocation storm is iteration-bound; Phoenix apps
            # are footprint-bound and run at full scale.
            return {"small": 0.02, "medium": 0.005, "large": 0.002}[config]
        return 1.0

    out = {}
    for app in apps:
        for config in configs:
            for t in ("proc", "spml", "epml"):
                out[(app, config, t)] = run_boehm(
                    app, config, t, scale=scale_for(app, config),
                    gc_params=gc_params,
                )
    return out


def exp_fig5(quick: bool = False) -> ExperimentOutput:
    """Fig. 5: Boehm GC time per technique (first cycle highlighted)."""
    configs = ("small",) if quick else ("small", "medium", "large")
    results = _boehm_matrix(quick, configs)
    headers = ["app", "config", "technique", "cycles", "first ms",
               "rest ms", "total GC ms"]
    rows = []
    for (app, config, t), r in sorted(results.items()):
        first = r.cycles[0].pause_us if r.cycles else 0.0
        rest = sum(c.pause_us for c in r.cycles[1:])
        rows.append([app, config, t, len(r.cycles), fmt_ms(first),
                     fmt_ms(rest), fmt_ms(r.gc_us)])
    text = render_table(headers, rows, "Fig. 5: Boehm GC time per technique")
    return ExperimentOutput("fig5", headers, rows, text,
                            extra={"results": {
                                f"{a}/{c}/{t}": r.gc_us
                                for (a, c, t), r in results.items()}})


def exp_fig6(quick: bool = False) -> ExperimentOutput:
    """Fig. 6: Boehm's overhead on the tracked application."""
    configs = ("small",) if quick else ("small", "medium", "large")
    results = _boehm_matrix(quick, configs)
    headers = ["app", "config", "technique", "overhead on Tracked %"]
    rows = [
        [app, config, t, fmt_pct(r.overhead_tracked_pct)]
        for (app, config, t), r in sorted(results.items())
    ]
    text = render_table(headers, rows,
                        "Fig. 6: Boehm overhead on Tracked per technique")
    return ExperimentOutput("fig6", headers, rows, text)


# ---------------------------------------------------------------------
# Fig. 7 / 8 / 9: CRIU
# ---------------------------------------------------------------------
def _criu_matrix(quick: bool) -> dict:
    apps = ["baby", "histogram"] if quick else CRIU_APPS
    scale = 0.002 if quick else 0.02
    return {
        (app, t): run_criu(app, "large", t, scale=scale)
        for app in apps
        for t in ("proc", "spml", "epml")
    }


def exp_fig7(quick: bool = False) -> ExperimentOutput:
    """Fig. 7: CRIU memory-write (MW) time per technique."""
    results = _criu_matrix(quick)
    headers = ["app", "technique", "MW ms"]
    rows = [[app, t, fmt_ms(r.mw_us)] for (app, t), r in sorted(results.items())]
    text = render_table(headers, rows, "Fig. 7: CRIU memory-write time")
    return ExperimentOutput("fig7", headers, rows, text,
                            extra={"results": {
                                f"{a}/{t}": r.mw_us
                                for (a, t), r in results.items()}})


def exp_fig8(quick: bool = False) -> ExperimentOutput:
    """Fig. 8: CRIU total checkpoint time with the MD phase split out."""
    results = _criu_matrix(quick)
    headers = ["app", "technique", "MD ms", "MW ms", "total ckpt ms"]
    rows = [
        [app, t, fmt_ms(r.md_us), fmt_ms(r.mw_us), fmt_ms(r.checkpoint_us)]
        for (app, t), r in sorted(results.items())
    ]
    text = render_table(headers, rows, "Fig. 8: CRIU checkpoint time")
    return ExperimentOutput("fig8", headers, rows, text,
                            extra={"results": {
                                f"{a}/{t}": r.checkpoint_us
                                for (a, t), r in results.items()}})


def exp_fig9(quick: bool = False) -> ExperimentOutput:
    """Fig. 9: CRIU's overhead on the checkpointed application."""
    results = _criu_matrix(quick)
    headers = ["app", "technique", "overhead on Tracked %"]
    rows = [
        [app, t, fmt_pct(r.overhead_tracked_pct)]
        for (app, t), r in sorted(results.items())
    ]
    text = render_table(headers, rows, "Fig. 9: CRIU overhead on Tracked")
    return ExperimentOutput("fig9", headers, rows, text)


# ---------------------------------------------------------------------
# Fig. 10 / 11: scalability with #VMs
# ---------------------------------------------------------------------
def exp_fig10_11(quick: bool = False) -> ExperimentOutput:
    """Fig. 10/11: Boehm + histogram-Large while varying tenant VMs 1..5.

    Each VM has a dedicated CPU and its own PML state (the architectural
    reason the paper observes flat scalability); VMs are therefore
    independent simulator stacks and we report per-VM results.
    """
    scale = 0.002 if quick else 0.01
    config = "small" if quick else "large"
    headers = ["#VMs", "technique", "per-VM GC ms (min..max)",
               "per-VM overhead % (min..max)"]
    rows = []
    for n_vms in range(1, 6):
        for t in ("spml", "epml"):
            gcs, ovh = [], []
            for _ in range(n_vms):
                r = run_boehm("histogram", config, t, scale=scale,
                              gc_params=GcParams(threshold_bytes=1 << 20))
                gcs.append(r.gc_us)
                ovh.append(r.overhead_tracked_pct)
            rows.append([
                n_vms, t,
                f"{fmt_ms(min(gcs))}..{fmt_ms(max(gcs))}",
                f"{fmt_pct(min(ovh))}..{fmt_pct(max(ovh))}",
            ])
    text = render_table(headers, rows,
                        "Fig. 10/11: scalability with the number of VMs")
    return ExperimentOutput("fig10_11", headers, rows, text)


# ---------------------------------------------------------------------
# registry / CLI
# ---------------------------------------------------------------------
EXPERIMENTS: dict[str, Callable[[bool], ExperimentOutput]] = {
    "table1": exp_table1,
    "table4": exp_table4,
    "table5": exp_table5,
    "table6": exp_table6,
    "fig3": exp_fig3,
    "fig4": exp_fig4,
    "fig5": exp_fig5,
    "fig6": exp_fig6,
    "fig7": exp_fig7,
    "fig8": exp_fig8,
    "fig9": exp_fig9,
    "fig10_11": exp_fig10_11,
    "fault_matrix": exp_fault_matrix,
    "fleet": exp_fleet,
    "overcommit": exp_overcommit,
    "serverless": exp_serverless,
}


def run_experiment(name: str, quick: bool = False) -> ExperimentOutput:
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"choose from {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name](quick)


#: ``--jobs`` work partition.  Experiments in one family share memoized
#: harness runs (the microbench grid, the Boehm/CRIU matrices), so they
#: must run in the same worker to dedup; families are disjoint in their
#: cache footprint and VM stacks are independent (the architectural fact
#: Fig. 10/11 relies on), making the fan-out embarrassingly parallel.
EXPERIMENT_FAMILIES: list[list[str]] = [
    ["table1", "table5", "table6", "fig3", "fig4"],
    ["table4"],
    ["fig5", "fig6"],
    ["fig7", "fig8", "fig9"],
    ["fig10_11"],
    ["fault_matrix"],
    ["fleet"],
    ["overcommit"],
    ["serverless"],
]


def _run_family(names: list[str], quick: bool) -> list[tuple[str, str]]:
    """Worker entry point: run one family serially, return rendered text."""
    return [(name, run_experiment(name, quick=quick).text) for name in names]


def _run_parallel(names: list[str], quick: bool, jobs: int) -> dict[str, str]:
    from concurrent.futures import ProcessPoolExecutor

    wanted = set(names)
    families = [
        [n for n in family if n in wanted] for family in EXPERIMENT_FAMILIES
    ]
    families = [f for f in families if f]
    texts: dict[str, str] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(families))) as pool:
        for chunk in pool.map(_run_family, families, [quick] * len(families)):
            texts.update(chunk)
    return texts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument("--quick", action="store_true",
                        help="shrink sizes/scales for a fast run")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run experiment families in N worker processes "
                             "(VM stacks are independent; output order is "
                             "unchanged)")
    parser.add_argument("--vcpus", type=int, default=None, metavar="N",
                        help="run every experiment VM with N vCPUs "
                             "(sets REPRO_VCPUS, so --jobs workers inherit "
                             "it; default: 1, or the REPRO_VCPUS env var)")
    parser.add_argument("--hosts", type=int, default=None, metavar="N",
                        help="fleet experiment: number of hosts "
                             "(sets REPRO_FLEET_HOSTS)")
    parser.add_argument("--vms", type=int, default=None, metavar="N",
                        help="fleet experiment: number of VMs to drain "
                             "(sets REPRO_FLEET_VMS)")
    parser.add_argument("--instances", type=int, default=None, metavar="N",
                        help="serverless experiment: function instances to "
                             "run (sets REPRO_SERVERLESS_INSTANCES)")
    parser.add_argument("--overcommit-ratio", metavar="R[,R...]", default=None,
                        help="overcommit experiment: comma-separated ratios "
                             "to sweep (sets REPRO_OVERCOMMIT_RATIOS)")
    parser.add_argument("--metrics", action="store_true",
                        help="collect observability metrics during the runs "
                             "and print the registry afterwards (forces "
                             "--jobs 1: counters live in this process)")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="with --metrics: also write the event trace "
                             "as canonical JSONL to PATH")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.vcpus is not None:
        if args.vcpus < 1:
            parser.error("--vcpus must be >= 1")
        # Via the environment so ProcessPoolExecutor workers (and the
        # experiment cache keys) see the same vCPU count.
        import os

        os.environ["REPRO_VCPUS"] = str(args.vcpus)
    if args.hosts is not None or args.vms is not None:
        import os

        if args.hosts is not None:
            if args.hosts < 2:
                parser.error("--hosts must be >= 2 (need a migration target)")
            os.environ["REPRO_FLEET_HOSTS"] = str(args.hosts)
        if args.vms is not None:
            if args.vms < 1:
                parser.error("--vms must be >= 1")
            os.environ["REPRO_FLEET_VMS"] = str(args.vms)
    if args.instances is not None:
        import os

        if args.instances < 1:
            parser.error("--instances must be >= 1")
        os.environ["REPRO_SERVERLESS_INSTANCES"] = str(args.instances)
    if args.overcommit_ratio is not None:
        import os

        try:
            ratios = [float(t) for t in args.overcommit_ratio.split(",") if t.strip()]
        except ValueError:
            ratios = []
        if not ratios or any(r < 1.0 for r in ratios):
            parser.error("--overcommit-ratio needs comma-separated ratios >= 1.0")
        os.environ["REPRO_OVERCOMMIT_RATIOS"] = args.overcommit_ratio
    if args.trace_out and not args.metrics:
        parser.error("--trace-out requires --metrics")
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    session: otr.TraceSession | None = None
    if args.metrics:
        # Worker processes would accumulate into their own registries and
        # throw them away, so metrics runs are serial by construction.
        # detail=False keeps per-page payloads out of long sweeps.
        session = otr.TraceSession(
            capacity=otr.ENV_SESSION_CAPACITY, detail=False
        )
    if args.jobs > 1 and len(names) > 1 and session is None:
        texts = _run_parallel(names, args.quick, args.jobs)
    elif session is not None:
        # Nesting-safe activation: a REPRO_TRACE env session (or a
        # caller's) is restored afterwards, not clobbered.
        with session.active():
            texts = {n: run_experiment(n, quick=args.quick).text for n in names}
    else:
        texts = {n: run_experiment(n, quick=args.quick).text for n in names}
    for name in names:  # canonical order regardless of worker completion
        print(texts[name])
        print()
    if session is not None:
        print(session.metrics.render("Observability metrics"))
        if args.trace_out:
            from pathlib import Path

            session.trace.write_jsonl(Path(args.trace_out))
            print(f"wrote {args.trace_out} "
                  f"({len(session.trace.events)} events, "
                  f"{session.trace.n_dropped} dropped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
