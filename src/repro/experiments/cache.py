"""Keyed memo-cache for deterministic experiment runs.

Every harness runner (:func:`repro.experiments.harness.run_microbench`,
``run_criu``, ``run_boehm``) is a pure function of its arguments: stacks
are built fresh per run and workload RNGs are seeded from the workload
name, so identical configurations produce bit-identical results.  The
experiment registry exploits that heavily — table1, table5, table6, fig3
and fig4 all sweep the same (technique, size) microbench grid — so one
shared cache keyed on the full argument tuple dedups the work for
``runner all`` and the benchmark suite alike.

Results are deep-copied on both store and hit so callers can mutate what
they get back (e.g. ``run_boehm`` patches ``ideal_us``) without
corrupting the cache.  Set ``REPRO_EXPERIMENT_CACHE=0`` to disable
caching, e.g. when benchmarking cold-run wall-clock.
"""

from __future__ import annotations

import copy
import os
from typing import Any, Callable, Hashable

__all__ = ["MemoCache", "EXPERIMENT_CACHE"]


def _enabled_default() -> bool:
    return os.environ.get("REPRO_EXPERIMENT_CACHE", "1") not in (
        "0", "false", "no"
    )


class MemoCache:
    """Map from hashable key to deep-copied result, with hit accounting."""

    def __init__(self, enabled: bool | None = None) -> None:
        self._store: dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0
        self._enabled = enabled

    @property
    def enabled(self) -> bool:
        # Re-read the environment unless explicitly pinned, so tests and
        # benchmarks can toggle caching without rebuilding the cache.
        return self._enabled if self._enabled is not None else _enabled_default()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    def get_or_run(self, key: Hashable, fn: Callable[[], Any]) -> Any:
        """Return the cached result for ``key``, running ``fn`` on a miss.

        The store keeps a private deep copy, and hits hand out fresh deep
        copies, so no two callers ever share a mutable result object.
        """
        if not self.enabled:
            return fn()
        if key in self._store:
            self.hits += 1
            return copy.deepcopy(self._store[key])
        self.misses += 1
        value = fn()
        self._store[key] = copy.deepcopy(value)
        return value

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide cache shared by the harness runners and the experiment
#: registry (one mechanism, per the repo's "no parallel cache dicts" rule).
EXPERIMENT_CACHE = MemoCache()
