"""Fault-matrix experiment: capture completeness under injected faults.

Extends the paper's evaluation question 3 ("to what extent are the
techniques able to capture all dirty pages?") to a hostile environment:
every fault site fires at a swept rate while SPML, EPML (both with
``resync_on_loss``) and the fallback chain track a random-write workload,
each run audited against the oracle.  The claim under test is the
robustness contract: whatever the fault rate, **no dirty page is lost
silently** — capture dips are always accompanied by surfaced drop
counters, and the recovery machinery (retries, conservative resyncs,
lost-IPI sweeps, technique fallbacks) keeps the capture rate at 100%.

The chaos seed is deterministic (``REPRO_CHAOS_SEED``, default 1234), so
CI replays the exact same fault sequence.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.tracking import Technique, make_tracker
from repro.experiments.harness import build_stack
from repro.experiments.tables import render_table
from repro.faults.auditor import CompletenessAuditor
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec

__all__ = ["chaos_plan", "run_fault_cell", "exp_fault_matrix", "CHAOS_SEED"]

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1234"))

RATES = [0.0, 0.01, 0.05, 0.2]
QUICK_RATES = [0.0, 0.05]
TECHNIQUES = (Technique.SPML, Technique.EPML, Technique.FALLBACK)


def chaos_plan(rate: float, seed: int = CHAOS_SEED) -> FaultPlan:
    """Every fault site armed at the same per-opportunity rate."""
    return FaultPlan([FaultSpec(site, rate) for site in FaultSite], seed=seed)


def run_fault_cell(
    technique: Technique,
    rate: float,
    seed: int = CHAOS_SEED,
    n_pages: int = 4096,
    rounds: int = 8,
) -> dict:
    """One audited tracker run under one fault rate; returns cell metrics."""
    stack = build_stack(vm_mb=n_pages / 256 * 1.5 + 64)
    proc = stack.kernel.spawn("app", n_pages=n_pages)
    proc.space.add_vma(n_pages)
    # Prefault the whole VMA so demand paging happens up front; faults
    # then hit the steady-state tracking paths the matrix is probing.
    stack.kernel.access(proc, np.arange(n_pages), True)

    kwargs = {}
    if technique in (Technique.SPML, Technique.EPML):
        kwargs["resync_on_loss"] = True
    tracker = make_tracker(technique, stack.kernel, proc, **kwargs)
    auditor = CompletenessAuditor(stack.kernel, proc, tracker)
    rng = np.random.default_rng(seed)
    acc = {"n_resyncs": 0, "n_retries": 0, "n_recovered_ipis": 0}
    plan = chaos_plan(rate, seed)
    with plan.active() as inj:
        auditor.start()
        for _ in range(rounds):
            stack.kernel.access(
                proc, rng.integers(0, n_pages, size=n_pages // 4), True
            )
            auditor.collect()
            stats = getattr(tracker, "last_stats", None)
            for key in acc:
                acc[key] += int(getattr(stats, key, 0) or 0)
    # The final flush in stop() runs fault-free (the plan deactivated on
    # context exit), mirroring an operator draining after quiescing.
    report = auditor.stop()
    for key in acc:
        report.recovery[key] += acc[key]
    return {
        "technique": technique.value,
        "rate": rate,
        "capture_rate": report.capture_rate,
        "n_truth": report.n_truth,
        "n_missed": report.n_missed,
        "resyncs": report.recovery["n_resyncs"],
        "retries": report.recovery["n_retries"],
        "recovered_ipis": report.recovery["n_recovered_ipis"],
        "fallbacks": report.recovery["n_fallbacks"],
        "surfaced_drops": report.total_surfaced,
        "silent_loss": report.silent_loss,
        "injector_fires": inj.total_fires(),
    }


def exp_fault_matrix(quick: bool = False):
    """Fault rates x techniques; every cell must be silent-loss-free."""
    from repro.experiments.runner import ExperimentOutput

    rates = QUICK_RATES if quick else RATES
    n_pages = 1024 if quick else 4096
    rounds = 4 if quick else 8
    headers = ["rate", "technique", "capture %", "resyncs", "retries",
               "recovered IPIs", "fallbacks", "surfaced drops", "silent loss"]
    rows = []
    cells = []
    for rate in rates:
        for technique in TECHNIQUES:
            cell = run_fault_cell(
                technique, rate, n_pages=n_pages, rounds=rounds
            )
            cells.append(cell)
            rows.append([
                f"{rate:.2f}", cell["technique"],
                f"{cell['capture_rate'] * 100:.2f}",
                cell["resyncs"], cell["retries"], cell["recovered_ipis"],
                cell["fallbacks"], cell["surfaced_drops"],
                "YES" if cell["silent_loss"] else "no",
            ])
    text = render_table(
        headers, rows,
        f"Fault matrix: capture under injected faults (seed {CHAOS_SEED})",
    )
    return ExperimentOutput("fault_matrix", headers, rows, text,
                            extra={"cells": cells, "seed": CHAOS_SEED})
