"""Whole-VM checkpointing: the paper's §III-C *alternative* to OoH.

"A way to use PML for a process is to dedicate a VM to the latter, thus
exploiting PML as is only by the hypervisor ... to checkpoint the process
the user would checkpoint the corresponding VM."

This module implements that alternative faithfully — iterative pre-copy
dump of the *entire VM* driven by hypervisor-level PML — so the
benchmarks can quantify the paper's two objections:

1. it checkpoints every colocated process (and the guest kernel), not
   just the target, inflating image size and dump time; and
2. it is useless for in-guest runtime consumers like the GC, which needs
   per-process dirty data *inside* the guest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.clock import World
from repro.core.costs import EV_DISK_WRITE
from repro.errors import CheckpointError
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.vm import Vm

__all__ = ["VmImage", "VmCheckpointReport", "checkpoint_vm"]


@dataclass
class VmImage:
    """Captured guest-physical memory: (GPFN, content-token) rounds."""

    vm_name: str
    mem_pages: int
    rounds: list[tuple[np.ndarray, np.ndarray]] = field(default_factory=list)

    @property
    def total_pages_dumped(self) -> int:
        return sum(int(g.size) for g, _ in self.rounds)

    def flatten(self) -> dict[int, int]:
        latest: dict[int, int] = {}
        for gpfns, tokens in self.rounds:
            for g, t in zip(gpfns, tokens):
                latest[int(g)] = int(t)
        return latest


@dataclass
class VmCheckpointReport:
    rounds: int = 0
    pages_per_round: list[int] = field(default_factory=list)
    total_us: float = 0.0
    freeze_us: float = 0.0


def checkpoint_vm(
    hypervisor: Hypervisor,
    vm: Vm,
    run_round: Callable[[], None] | None = None,
    predump_rounds: int = 0,
    disk_write_us_per_page: float | None = None,
) -> tuple[VmImage, VmCheckpointReport]:
    """Checkpoint the whole VM using hypervisor-level PML pre-copy."""
    if predump_rounds < 0:
        raise CheckpointError("predump_rounds must be >= 0")
    if predump_rounds > 0 and run_round is None:
        raise CheckpointError("pre-dump requires run_round")
    clock = hypervisor.clock
    per_page = (
        disk_write_us_per_page
        if disk_write_us_per_page is not None
        else hypervisor.costs.params.disk_write_us_per_page
    )
    image = VmImage(vm_name=vm.name, mem_pages=vm.mem_pages)
    report = VmCheckpointReport()
    t_start = clock.now_us

    def dump(gpfns: np.ndarray) -> None:
        if gpfns.size == 0:
            report.pages_per_round.append(0)
            return
        hpfns = vm.ept.translate(gpfns)
        tokens = hypervisor.host_mem.read(hpfns)
        clock.charge(
            float(gpfns.size) * per_page, World.HYPERVISOR, EV_DISK_WRITE,
            int(gpfns.size),
        )
        image.rounds.append((gpfns.astype(np.int64), tokens))
        report.pages_per_round.append(int(gpfns.size))

    hypervisor.enable_vm_dirty_logging(vm)
    try:
        vm.ept.clear_dirty()
        # Round 0: every allocated guest frame — the whole VM, which is
        # exactly the §III-C objection.
        allocated = np.nonzero(vm.guest_frames._allocated)[0].astype(np.int64)
        dump(allocated)
        report.rounds = 1
        for _ in range(predump_rounds):
            run_round()
            dirty = hypervisor.harvest_vm_dirty(vm).astype(np.int64)
            dump(dirty)
            report.rounds += 1
        # Final freeze: the whole VM pauses while the residue is copied.
        t0 = clock.now_us
        dirty = hypervisor.harvest_vm_dirty(vm).astype(np.int64)
        dump(dirty)
        report.rounds += 1
        report.freeze_us = clock.now_us - t0
    finally:
        hypervisor.disable_vm_dirty_logging(vm)
    report.total_us = clock.now_us - t_start
    return image, report
