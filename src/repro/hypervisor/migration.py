"""Pre-copy live migration driven by hypervisor-level PML.

This is PML's *original* purpose (paper §II-B) and exists here for two
reasons: (1) it exercises the hypervisor's own PML consumer so the
guest/hypervisor coordination flags (``enabled_by_guest`` /
``enabled_by_hyp``) are tested against a real second user, and (2) it
gives the examples a realistic "hypervisor side" scenario.

The algorithm is the standard iterative pre-copy: send all pages, then
repeatedly send the pages dirtied during the previous send round (harvested
from PML), until the dirty set is small enough for a brief stop-and-copy.

Page transfers go through a :class:`PageSender`.  The default
:class:`DirectSender` charges the historical flat per-page cost
(``CostParams.net_send_us_per_page``); the fleet layer substitutes a
:class:`repro.net.transport.TransportSender` so concurrent migrations
contend for link bandwidth.  :meth:`LiveMigration.steps` exposes the round
loop as a generator so an orchestrator can interleave several migrations
deterministically; :meth:`LiveMigration._precopy_policy` is the seam where
a subclass abandons pre-copy (post-copy fallback) without forcing the
stop-and-copy send.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol

import numpy as np

from repro.core.clock import World
from repro.core.costs import EV_MIGRATION_SEND
from repro.errors import ConfigurationError
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.vm import Vm
from repro.obs import trace as otr
from repro.obs.events import EventKind
from repro.retry import is_transient

__all__ = [
    "MigrationReport",
    "LiveMigration",
    "PageSender",
    "DirectSender",
    "EV_MIGRATION_SEND",
]


class PageSender(Protocol):
    """Charges the simulated cost of moving ``n_pages`` to a destination."""

    #: Effective microseconds per page under current conditions.
    us_per_page: float

    def send(self, n_pages: int) -> float:
        """Charge the clock for ``n_pages`` and return the elapsed us."""
        ...


class DirectSender:
    """Flat-rate sender: the pre-fleet ``n_pages * page_send_us`` model."""

    def __init__(self, hypervisor: Hypervisor, us_per_page: float) -> None:
        self.hypervisor = hypervisor
        self.us_per_page = us_per_page

    def send(self, n_pages: int) -> float:
        us = n_pages * self.us_per_page
        self.hypervisor.clock.charge(
            us, World.HYPERVISOR, EV_MIGRATION_SEND, n_pages
        )
        return us


@dataclass
class MigrationReport:
    """Outcome of one live migration."""

    rounds: int = 0
    pages_per_round: list[int] = field(default_factory=list)
    total_pages_sent: int = 0
    downtime_us: float = 0.0
    total_us: float = 0.0
    converged: bool = False
    #: Why pre-copy was abandoned early (``None`` when it ran to
    #: convergence or the plain round budget).
    aborted_reason: str | None = None
    #: Transient harvest failures retried within the round budget.
    round_retries: int = 0
    #: PML-full vmexits that were never delivered during this migration;
    #: non-zero forces a conservative full resend at stop-and-copy.
    lost_pml_vmexits: int = 0
    #: GPFNs still dirty when a policy abandoned pre-copy (post-copy
    #: fallback); ``None`` on every other exit path.
    remaining_pages: np.ndarray | None = None


class LiveMigration:
    """Iterative pre-copy migration of one VM."""

    def __init__(
        self,
        hypervisor: Hypervisor,
        vm: Vm,
        page_send_us: float | None = None,
        max_rounds: int = 30,
        stop_threshold_pages: int = 512,
        round_retry_limit: int = 2,
        no_progress_limit: int = 3,
        sender: PageSender | None = None,
    ) -> None:
        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        if no_progress_limit < 1:
            raise ConfigurationError("no_progress_limit must be >= 1")
        self.hypervisor = hypervisor
        self.vm = vm
        if sender is None:
            if page_send_us is None:
                page_send_us = hypervisor.costs.params.net_send_us_per_page
            sender = DirectSender(hypervisor, page_send_us)
        elif page_send_us is None:
            page_send_us = getattr(
                sender, "us_per_page",
                hypervisor.costs.params.net_send_us_per_page,
            )
        self.sender = sender
        self.page_send_us = page_send_us
        self.max_rounds = max_rounds
        self.stop_threshold_pages = stop_threshold_pages
        self.round_retry_limit = round_retry_limit
        self.no_progress_limit = no_progress_limit

    def _send(self, n_pages: int) -> float:
        if otr.ACTIVE is not None:
            otr.ACTIVE.emit(EventKind.MIGRATION_ROUND, n_pages=int(n_pages))
            otr.ACTIVE.emit(EventKind.MIGRATION_PAGE_SEND, n_pages=int(n_pages))
            otr.ACTIVE.metrics.inc("migration.rounds")
            otr.ACTIVE.metrics.inc("migration.pages_sent", int(n_pages))
        return self.sender.send(int(n_pages))

    def _harvest(self, report: MigrationReport) -> np.ndarray:
        """Harvest with a bounded retry budget for transient failures."""
        attempt = 0
        while True:
            try:
                return self.hypervisor.harvest_vm_dirty(self.vm)
            except Exception as exc:
                if not is_transient(exc) or attempt >= self.round_retry_limit:
                    report.aborted_reason = "harvest_failed"
                    raise
                attempt += 1
                report.round_retries += 1

    def _final_pages(
        self, report: MigrationReport, dirty: np.ndarray, vmexit_mark: int
    ) -> np.ndarray:
        """Stop-and-copy page set, widened to *all* mapped pages if any
        PML-full vmexit was swallowed (the lost batch could hold anything)."""
        lost = sum(vc.n_dropped_vmexits for vc in self.vm.vcpus) - vmexit_mark
        if lost > 0:
            report.lost_pml_vmexits = lost
            return np.nonzero(self.vm.ept.hpfn >= 0)[0]
        return dirty

    def _precopy_policy(
        self, report: MigrationReport, dirty: np.ndarray
    ) -> str | None:
        """Per-round policy hook, called after the convergence check.

        A non-``None`` return abandons pre-copy *without* the forced
        stop-and-copy send: the caller owns what happens to the dirty set
        (recorded in ``report.remaining_pages``).  The base class never
        abandons.
        """
        return None

    def steps(
        self,
        workload_round: Callable[[], None],
        initial_pages: np.ndarray | None = None,
    ) -> Iterator[MigrationReport]:
        """The migration round loop as a generator.

        Yields the (mutating) report after the bulk round and after every
        iterative round — the orchestrator's interleaving points — and
        once more after the final state is settled.  Draining the
        generator is exactly :meth:`migrate`.
        """
        report = MigrationReport()
        clock = self.hypervisor.clock
        start = clock.now_us
        vmexit_mark = sum(vc.n_dropped_vmexits for vc in self.vm.vcpus)

        self.hypervisor.enable_vm_dirty_logging(self.vm)
        try:
            if initial_pages is None:
                initial_pages = np.nonzero(self.vm.ept.hpfn >= 0)[0]
            # Round 0: bulk copy of all pages while the guest keeps running.
            self.vm.ept.clear_dirty()
            workload_round()
            report.pages_per_round.append(int(initial_pages.size))
            report.total_pages_sent += int(initial_pages.size)
            self._send(int(initial_pages.size))
            report.rounds = 1
            yield report

            prev_dirty: int | None = None
            stalled = 0
            forced = False
            pending: np.ndarray | None = None
            while report.rounds < self.max_rounds:
                dirty = self._harvest(report)
                if dirty.size <= self.stop_threshold_pages:
                    # Stop-and-copy: guest paused for the final transfer.
                    dirty = self._final_pages(report, dirty, vmexit_mark)
                    report.downtime_us = self._send(int(dirty.size))
                    report.pages_per_round.append(int(dirty.size))
                    report.total_pages_sent += int(dirty.size)
                    report.converged = True
                    break
                reason = self._precopy_policy(report, dirty)
                if reason is not None:
                    # Policy abandon (e.g. post-copy fallback): this
                    # round's harvest cleared the dirty bits, so the set
                    # rides out through the report instead of a send.
                    report.aborted_reason = reason
                    report.remaining_pages = self._final_pages(
                        report, dirty, vmexit_mark
                    )
                    break
                # No-progress bailout: a dirty set that refuses to shrink
                # for several consecutive rounds will never converge, so
                # stop burning rounds and go straight to stop-and-copy.
                if prev_dirty is not None and int(dirty.size) >= prev_dirty:
                    stalled += 1
                    if stalled >= self.no_progress_limit:
                        report.aborted_reason = "no_progress"
                        # This round's harvest cleared the dirty bits, so
                        # its pages must ride along to stop-and-copy.
                        pending = dirty
                        forced = True
                        break
                else:
                    stalled = 0
                prev_dirty = int(dirty.size)
                workload_round()
                report.pages_per_round.append(int(dirty.size))
                report.total_pages_sent += int(dirty.size)
                self._send(int(dirty.size))
                report.rounds += 1
                yield report
            else:
                forced = True
            if forced:
                # Convergence failure: forced stop-and-copy of what's left.
                dirty = self._harvest(report)
                if pending is not None:
                    dirty = np.union1d(pending, dirty)
                dirty = self._final_pages(report, dirty, vmexit_mark)
                report.downtime_us = self._send(int(dirty.size))
                report.pages_per_round.append(int(dirty.size))
                report.total_pages_sent += int(dirty.size)
        finally:
            self.hypervisor.disable_vm_dirty_logging(self.vm)
        report.total_us = clock.now_us - start
        yield report

    def migrate(
        self,
        workload_round: Callable[[], None],
        initial_pages: np.ndarray | None = None,
    ) -> MigrationReport:
        """Run a migration while ``workload_round`` mutates guest memory.

        ``workload_round`` is invoked once per pre-copy round to model the
        guest continuing to run; ``initial_pages`` defaults to every
        currently-EPT-mapped guest page.
        """
        report: MigrationReport | None = None
        for report in self.steps(workload_round, initial_pages):
            pass
        assert report is not None
        return report
