"""Pre-copy live migration driven by hypervisor-level PML.

This is PML's *original* purpose (paper §II-B) and exists here for two
reasons: (1) it exercises the hypervisor's own PML consumer so the
guest/hypervisor coordination flags (``enabled_by_guest`` /
``enabled_by_hyp``) are tested against a real second user, and (2) it
gives the examples a realistic "hypervisor side" scenario.

The algorithm is the standard iterative pre-copy: send all pages, then
repeatedly send the pages dirtied during the previous send round (harvested
from PML), until the dirty set is small enough for a brief stop-and-copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.clock import World
from repro.errors import ConfigurationError
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.vm import Vm
from repro.obs import trace as otr
from repro.obs.events import EventKind
from repro.retry import is_transient

__all__ = ["MigrationReport", "LiveMigration"]

EV_MIGRATION_SEND = "migration_page_send"


@dataclass
class MigrationReport:
    """Outcome of one live migration."""

    rounds: int = 0
    pages_per_round: list[int] = field(default_factory=list)
    total_pages_sent: int = 0
    downtime_us: float = 0.0
    total_us: float = 0.0
    converged: bool = False
    #: Why pre-copy was abandoned early (``None`` when it ran to
    #: convergence or the plain round budget).
    aborted_reason: str | None = None
    #: Transient harvest failures retried within the round budget.
    round_retries: int = 0
    #: PML-full vmexits that were never delivered during this migration;
    #: non-zero forces a conservative full resend at stop-and-copy.
    lost_pml_vmexits: int = 0


class LiveMigration:
    """Iterative pre-copy migration of one VM."""

    def __init__(
        self,
        hypervisor: Hypervisor,
        vm: Vm,
        page_send_us: float = 3.3,  # ~4 KiB at 10 Gb/s
        max_rounds: int = 30,
        stop_threshold_pages: int = 512,
        round_retry_limit: int = 2,
        no_progress_limit: int = 3,
    ) -> None:
        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        if no_progress_limit < 1:
            raise ConfigurationError("no_progress_limit must be >= 1")
        self.hypervisor = hypervisor
        self.vm = vm
        self.page_send_us = page_send_us
        self.max_rounds = max_rounds
        self.stop_threshold_pages = stop_threshold_pages
        self.round_retry_limit = round_retry_limit
        self.no_progress_limit = no_progress_limit

    def _send(self, n_pages: int) -> float:
        us = n_pages * self.page_send_us
        if otr.ACTIVE is not None:
            otr.ACTIVE.emit(EventKind.MIGRATION_ROUND, n_pages=int(n_pages))
            otr.ACTIVE.metrics.inc("migration.rounds")
            otr.ACTIVE.metrics.inc("migration.pages_sent", int(n_pages))
        self.hypervisor.clock.charge(
            us, World.HYPERVISOR, EV_MIGRATION_SEND, n_pages
        )
        return us

    def _harvest(self, report: MigrationReport) -> np.ndarray:
        """Harvest with a bounded retry budget for transient failures."""
        attempt = 0
        while True:
            try:
                return self.hypervisor.harvest_vm_dirty(self.vm)
            except Exception as exc:
                if not is_transient(exc) or attempt >= self.round_retry_limit:
                    report.aborted_reason = "harvest_failed"
                    raise
                attempt += 1
                report.round_retries += 1

    def _final_pages(
        self, report: MigrationReport, dirty: np.ndarray, vmexit_mark: int
    ) -> np.ndarray:
        """Stop-and-copy page set, widened to *all* mapped pages if any
        PML-full vmexit was swallowed (the lost batch could hold anything)."""
        lost = sum(vc.n_dropped_vmexits for vc in self.vm.vcpus) - vmexit_mark
        if lost > 0:
            report.lost_pml_vmexits = lost
            return np.nonzero(self.vm.ept.hpfn >= 0)[0]
        return dirty

    def migrate(
        self,
        workload_round: Callable[[], None],
        initial_pages: np.ndarray | None = None,
    ) -> MigrationReport:
        """Run a migration while ``workload_round`` mutates guest memory.

        ``workload_round`` is invoked once per pre-copy round to model the
        guest continuing to run; ``initial_pages`` defaults to every
        currently-EPT-mapped guest page.
        """
        report = MigrationReport()
        clock = self.hypervisor.clock
        start = clock.now_us
        vmexit_mark = sum(vc.n_dropped_vmexits for vc in self.vm.vcpus)

        self.hypervisor.enable_vm_dirty_logging(self.vm)
        try:
            if initial_pages is None:
                initial_pages = np.nonzero(self.vm.ept.hpfn >= 0)[0]
            # Round 0: bulk copy of all pages while the guest keeps running.
            self.vm.ept.clear_dirty()
            workload_round()
            report.pages_per_round.append(int(initial_pages.size))
            report.total_pages_sent += int(initial_pages.size)
            self._send(int(initial_pages.size))
            report.rounds = 1

            prev_dirty: int | None = None
            stalled = 0
            forced = False
            pending: np.ndarray | None = None
            while report.rounds < self.max_rounds:
                dirty = self._harvest(report)
                if dirty.size <= self.stop_threshold_pages:
                    # Stop-and-copy: guest paused for the final transfer.
                    dirty = self._final_pages(report, dirty, vmexit_mark)
                    report.downtime_us = self._send(int(dirty.size))
                    report.pages_per_round.append(int(dirty.size))
                    report.total_pages_sent += int(dirty.size)
                    report.converged = True
                    break
                # No-progress bailout: a dirty set that refuses to shrink
                # for several consecutive rounds will never converge, so
                # stop burning rounds and go straight to stop-and-copy.
                if prev_dirty is not None and int(dirty.size) >= prev_dirty:
                    stalled += 1
                    if stalled >= self.no_progress_limit:
                        report.aborted_reason = "no_progress"
                        # This round's harvest cleared the dirty bits, so
                        # its pages must ride along to stop-and-copy.
                        pending = dirty
                        forced = True
                        break
                else:
                    stalled = 0
                prev_dirty = int(dirty.size)
                workload_round()
                report.pages_per_round.append(int(dirty.size))
                report.total_pages_sent += int(dirty.size)
                self._send(int(dirty.size))
                report.rounds += 1
            else:
                forced = True
            if forced:
                # Convergence failure: forced stop-and-copy of what's left.
                dirty = self._harvest(report)
                if pending is not None:
                    dirty = np.union1d(pending, dirty)
                dirty = self._final_pages(report, dirty, vmexit_mark)
                report.downtime_us = self._send(int(dirty.size))
                report.pages_per_round.append(int(dirty.size))
                report.total_pages_sent += int(dirty.size)
        finally:
            self.hypervisor.disable_vm_dirty_logging(self.vm)
        report.total_us = clock.now_us - start
        return report
