"""A virtual machine (domain): guest memory, EPT, vCPUs, MMU.

The evaluation setup gives each VM one dedicated vCPU (paper §VI-A); the
simulator additionally supports SMP guests (``n_vcpus > 1``) where each
:class:`~repro.hw.cpu.Vcpu` owns its own VMCS, PML circuit, and interrupt
controller, exactly as PML is architected per logical processor.  The
single-vCPU configuration remains the default and is bit-identical to the
pre-SMP simulator (``vm.vcpu`` aliases ``vm.vcpus[0]``).  The hypervisor
populates guest physical memory eagerly at creation (host frames are
allocated and EPT-mapped up front), which matches the experiments: the VM's
RAM is fixed and the interesting dynamics are all *inside* the guest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.calibration import PAGES_PER_MB
from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.core.ringbuffer import RingBuffer
from repro.errors import ConfigurationError
from repro.hw.cpu import Vcpu
from repro.hw.ept import Ept
from repro.hw.memory import FrameAllocator, PhysicalMemory
from repro.hw.mmu import Mmu

__all__ = ["Vm"]


@dataclass
class Vm:
    """One guest domain."""

    name: str
    mem_pages: int
    host_mem: PhysicalMemory
    clock: SimClock
    costs: CostModel
    pml_buffer_entries: int = 512
    n_vcpus: int = 1
    vcpus: list[Vcpu] = field(init=False)
    ept: Ept = field(init=False)
    mmu: Mmu = field(init=False)
    #: GPFN allocator handed to the guest kernel.
    guest_frames: FrameAllocator = field(init=False)
    #: SPML: ring buffer shared hypervisor <-> guest (GPAs).  Allocated by
    #: the HC_OOH_INIT_PML hypercall.
    spml_ring: RingBuffer | None = None
    #: Coordination flags (paper §IV-C item 3).
    enabled_by_guest: bool = False
    enabled_by_hyp: bool = False
    #: Hypervisor-side dirty log for its own PML use (live migration).
    hyp_dirty_log: list[np.ndarray] = field(default_factory=list)
    #: Sub-page permission table (OoH-SPP); created by HC_OOH_SPP_INIT.
    spp: object | None = None
    #: Most recent SPP violation record: (pid, vpn, subpage).
    last_spp_violation: tuple | None = None

    def __post_init__(self) -> None:
        if self.mem_pages <= 0:
            raise ConfigurationError(f"mem_pages must be > 0: {self.mem_pages}")
        if self.n_vcpus <= 0:
            raise ConfigurationError(f"n_vcpus must be > 0: {self.n_vcpus}")
        hpfns = self.host_mem.alloc(self.mem_pages)
        self.ept = Ept(self.mem_pages)
        self.ept.map(np.arange(self.mem_pages), hpfns)
        self.vcpus = [
            Vcpu(i, self.clock, self.costs, pml_capacity=self.pml_buffer_entries)
            for i in range(self.n_vcpus)
        ]
        for vc in self.vcpus:
            vc.ept = self.ept
        self.mmu = Mmu(self.ept, self.host_mem, self.vcpus[0].pml)
        self.guest_frames = FrameAllocator(self.mem_pages)

    @property
    def vcpu(self) -> Vcpu:
        """The bootstrap processor (vCPU 0) — single-vCPU compatibility."""
        return self.vcpus[0]

    @classmethod
    def mb(cls, mem_mb: float) -> int:
        """Helper: memory size in MiB to pages."""
        return int(round(mem_mb * PAGES_PER_MB))

    def drain_hyp_dirty_log(self) -> np.ndarray:
        """Collect and clear the hypervisor-side dirty GPA log."""
        if not self.hyp_dirty_log:
            return np.empty(0, dtype=np.uint64)
        out = np.concatenate(self.hyp_dirty_log)
        self.hyp_dirty_log.clear()
        return out
