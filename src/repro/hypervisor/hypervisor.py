"""Xen-like hypervisor: VM lifecycle, PML management, OoH hypercalls.

Responsibilities reproduced from the paper's Xen patch (§IV, Table II):

* owns host physical memory and creates VMs (EPT pre-populated);
* handles the PML-full vmexit: drains the vCPU's PML buffer into the
  SPML ring buffer (if ``enabled_by_guest``) and/or its own dirty log
  (if ``enabled_by_hyp`` — live migration), charging the per-entry copy;
* implements the OoH hypercalls (SPML setup/logging toggles, EPML VMCS-
  shadowing setup, dirty-bit re-arm);
* coordinates guest and hypervisor uses of PML through the
  ``enabled_by_guest`` / ``enabled_by_hyp`` flags: deactivation by one
  side leaves PML running if the other side still needs it.
"""

from __future__ import annotations

import numpy as np

from repro.core.clock import SimClock, World
from repro.core.costs import (
    EV_BALLOON_PAGE,
    EV_PML_FULL_VMEXIT,
    EV_RB_COPY,
    CostModel,
)
from repro.core.ringbuffer import RingBuffer
from repro.errors import ConfigurationError, HypercallError
from repro.hw import vmcs as vmcsf
from repro.hw.cpu import ExitReason, Vcpu
from repro.hw.memory import PhysicalMemory
from repro.hypervisor import hypercalls as hc
from repro.hypervisor.vm import Vm

__all__ = ["Hypervisor"]

#: Default SPML/EPML shared ring-buffer capacity (entries).
DEFAULT_RING_CAPACITY = 1 << 20


class Hypervisor:
    """The VMX-root-mode software layer."""

    def __init__(
        self,
        clock: SimClock,
        costs: CostModel | None = None,
        host_mem_mb: float = 16 * 1024,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        self.clock = clock
        self.costs = costs if costs is not None else CostModel()
        self.host_mem = PhysicalMemory(Vm.mb(host_mem_mb))
        self.ring_capacity = ring_capacity
        self.vms: dict[str, Vm] = {}
        self.hypercall_table = hc.HypercallTable()
        self._register_hypercalls()

    # ------------------------------------------------------------------
    # VM lifecycle
    # ------------------------------------------------------------------
    def create_vm(
        self,
        name: str,
        mem_mb: float,
        pml_buffer_entries: int = 512,
        n_vcpus: int = 1,
    ) -> Vm:
        if name in self.vms:
            raise ConfigurationError(f"VM {name!r} already exists")
        vm = Vm(
            name=name,
            mem_pages=Vm.mb(mem_mb),
            host_mem=self.host_mem,
            clock=self.clock,
            costs=self.costs,
            pml_buffer_entries=pml_buffer_entries,
            n_vcpus=n_vcpus,
        )
        for vc in vm.vcpus:
            vc.install_exit_handler(ExitReason.PML_FULL, self._on_pml_full)
            vc.install_exit_handler(ExitReason.HYPERCALL, self._on_hypercall)
            vc.install_exit_handler(
                ExitReason.SPP_VIOLATION, self._on_spp_violation
            )
            vc.pml.on_hyp_full = self._make_pml_full_trampoline(vc)
        self.vms[name] = vm
        return vm

    def destroy_vm(self, name: str) -> None:
        vm = self.vms.pop(name)
        # Return the VM's host frames.
        self.host_mem.free(vm.ept.hpfn[vm.ept.hpfn >= 0])

    def _vm_of(self, vcpu: Vcpu) -> Vm:
        for vm in self.vms.values():
            if any(vc is vcpu for vc in vm.vcpus):
                return vm
        raise ConfigurationError("vCPU does not belong to any VM")

    # ------------------------------------------------------------------
    # PML-full vmexit path
    # ------------------------------------------------------------------
    def _make_pml_full_trampoline(self, vcpu: Vcpu):
        def trampoline(entries: np.ndarray) -> None:
            # The CPU raises the vmexit *on the vCPU whose buffer filled*;
            # the handler receives the drained buffer as payload.
            vcpu.vmexit(ExitReason.PML_FULL, entries)

        return trampoline

    def _on_pml_full(self, vcpu: Vcpu, payload: object) -> None:
        vm = self._vm_of(vcpu)
        entries = np.asarray(payload, dtype=np.uint64)
        self.clock.count_only(EV_PML_FULL_VMEXIT)
        self._deliver_gpas(vm, entries, source=vcpu.vcpu_id)

    def _deliver_gpas(
        self, vm: Vm, entries: np.ndarray, source: int | None = None
    ) -> None:
        """Copy harvested GPAs to their consumer(s), charging the copy.

        ``source`` is the vCPU id whose PML buffer produced the entries
        (ring-buffer per-source accounting for SMP merge assertions).
        """
        if entries.size == 0:
            return
        if vm.enabled_by_guest and vm.spml_ring is not None:
            us = self.costs.rb_copy_us(int(entries.size), vm.mem_pages)
            self.clock.charge(us, World.HYPERVISOR, EV_RB_COPY, int(entries.size))
            vm.spml_ring.push(entries, source=source)
        if vm.enabled_by_hyp:
            vm.hyp_dirty_log.append(entries.copy())

    # ------------------------------------------------------------------
    # hypervisor's own use of PML (live migration)
    # ------------------------------------------------------------------
    def enable_vm_dirty_logging(self, vm: Vm) -> None:
        """Start whole-VM dirty logging (pre-copy rounds)."""
        vm.enabled_by_hyp = True
        for vc in vm.vcpus:
            if vc.pml.hyp_buffer is None:
                vc.pml.configure_hyp_buffer()
            vc.vmcs.write(vmcsf.F_CTRL_ENABLE_PML, 1)

    def disable_vm_dirty_logging(self, vm: Vm) -> None:
        """Stop the hypervisor's use; PML stays on if the guest needs it
        (coordination rule, paper §IV-C item 3)."""
        vm.enabled_by_hyp = False
        if not vm.enabled_by_guest:
            for vc in vm.vcpus:
                vc.vmcs.write(vmcsf.F_CTRL_ENABLE_PML, 0)

    def harvest_vm_dirty(self, vm: Vm) -> np.ndarray:
        """Drain residual PML buffers + accumulated log; re-arm dirty bits.

        SMP: residual buffers drain in ascending vCPU id — a fixed merge
        order, so harvests are deterministic for a given write history.
        """
        for vc in vm.vcpus:
            residual = vc.pml.drain_hyp()
            self._deliver_gpas(vm, residual, source=vc.vcpu_id)
        dirty = np.unique(vm.drain_hyp_dirty_log())
        if dirty.size:
            vm.ept.clear_dirty(dirty.astype(np.int64))
        return dirty

    # ------------------------------------------------------------------
    # OoH hypercalls
    # ------------------------------------------------------------------
    def _on_hypercall(self, vcpu: Vcpu, payload: object) -> object:
        nr, args = payload  # type: ignore[misc]
        return self.hypercall_table.dispatch(int(nr), (vcpu, *args))

    def _register_hypercalls(self) -> None:
        t = self.hypercall_table
        t.register(hc.HC_OOH_INIT_PML, self._hc_init_pml)
        t.register(hc.HC_OOH_DEACT_PML, self._hc_deact_pml)
        t.register(hc.HC_OOH_ENABLE_LOGGING, self._hc_enable_logging)
        t.register(hc.HC_OOH_DISABLE_LOGGING, self._hc_disable_logging)
        t.register(hc.HC_OOH_INIT_PML_SHADOW, self._hc_init_pml_shadow)
        t.register(hc.HC_OOH_DEACT_PML_SHADOW, self._hc_deact_pml_shadow)
        t.register(hc.HC_OOH_RESET_DIRTY, self._hc_reset_dirty)
        t.register(hc.HC_OOH_SPP_INIT, self._hc_spp_init)
        t.register(hc.HC_OOH_SPP_PROTECT, self._hc_spp_protect)
        t.register(hc.HC_OOH_SPP_UNPROTECT, self._hc_spp_unprotect)
        t.register(hc.HC_OOH_BALLOON_INFLATE, self._hc_balloon_inflate)
        t.register(hc.HC_OOH_BALLOON_DEFLATE, self._hc_balloon_deflate)

    # -- SPML ---------------------------------------------------------
    def _hc_init_pml(self, vcpu: Vcpu, ring_capacity: int | None = None) -> RingBuffer:
        """SPML init: PML buffer + shared ring buffer; guest flag set.

        Returns the ring buffer, which in real OoH lives in guest memory
        and is mapped into the tracker's address space by the OoH module
        (paper §V: allocated in the guest's address space, not the
        hypervisor's) — hence the guest chooses its capacity.
        """
        vm = self._vm_of(vcpu)
        if vm.enabled_by_guest:
            raise HypercallError("SPML already initialised for this VM")
        for vc in vm.vcpus:
            if vc.pml.hyp_buffer is None:
                vc.pml.configure_hyp_buffer()
        vm.spml_ring = RingBuffer(
            int(ring_capacity) if ring_capacity else self.ring_capacity
        )
        vm.enabled_by_guest = True
        # Arm logging: PML only records dirty-bit 0 -> 1 transitions, so
        # init clears the EPT dirty bits (as Xen does between migration
        # rounds).
        vm.ept.clear_dirty()
        # Logging itself starts at the first enable_logging (schedule-in).
        return vm.spml_ring

    def _hc_deact_pml(self, vcpu: Vcpu) -> None:
        vm = self._vm_of(vcpu)
        vm.enabled_by_guest = False
        if not vm.enabled_by_hyp:
            for vc in vm.vcpus:
                vc.vmcs.write(vmcsf.F_CTRL_ENABLE_PML, 0)
        vm.spml_ring = None

    def _hc_enable_logging(self, vcpu: Vcpu) -> None:
        """Tracked process scheduled in: resume logging.

        Acts on the *issuing* vCPU — the one the tracked process was just
        scheduled in on; the other vCPUs run untracked work and need no
        logging (paper §IV-C: logging follows the tracked process).
        """
        vm = self._vm_of(vcpu)
        if not vm.enabled_by_guest:
            raise HypercallError("enable_logging without SPML init")
        vcpu.vmcs.write(vmcsf.F_CTRL_ENABLE_PML, 1)

    def _hc_disable_logging(self, vcpu: Vcpu) -> None:
        """Tracked process scheduled out: drain the issuing vCPU's buffer,
        pause its logging."""
        vm = self._vm_of(vcpu)
        if not vm.enabled_by_guest:
            raise HypercallError("disable_logging without SPML init")
        entries = vcpu.pml.drain_hyp()
        self._deliver_gpas(vm, entries, source=vcpu.vcpu_id)
        if not vm.enabled_by_hyp:
            vcpu.vmcs.write(vmcsf.F_CTRL_ENABLE_PML, 0)

    # -- EPML -----------------------------------------------------------
    def _hc_init_pml_shadow(self, vcpu: Vcpu) -> None:
        """EPML init: VMCS shadowing + guest-PML field exposure.

        This is EPML's only hypercall (paper §IV-D); afterwards the guest
        drives logging itself with vmwrite on the shadow VMCS.  SMP: one
        hypercall configures shadowing on every vCPU of the VM (the OoH
        module needs a guest-level buffer wherever the tracked process may
        run), mirroring a for_each_vcpu loop in the real Xen patch.
        """
        vm = self._vm_of(vcpu)
        for vc in vm.vcpus:
            if vc.vmcs.link is None:
                shadow = vmcsf.Vmcs(name=f"{vc.vmcs.name}-shadow", is_shadow=True)
                vc.vmcs.link_shadow(shadow)
            vc.vmcs.write(vmcsf.F_CTRL_ENABLE_VMCS_SHADOWING, 1)
            vc.vmcs.expose_to_guest(
                {
                    vmcsf.F_CTRL_ENABLE_GUEST_PML,
                    vmcsf.F_GUEST_PML_ADDRESS,
                    vmcsf.F_GUEST_PML_INDEX,
                }
            )

    def _hc_deact_pml_shadow(self, vcpu: Vcpu) -> None:
        vm = self._vm_of(vcpu)
        for vc in vm.vcpus:
            if vc.vmcs.link is not None:
                vc.vmcs.link.write(vmcsf.F_CTRL_ENABLE_GUEST_PML, 0)
            vc.vmcs.write(vmcsf.F_CTRL_ENABLE_VMCS_SHADOWING, 0)

    # -- shared ----------------------------------------------------------
    def _hc_reset_dirty(self, vcpu: Vcpu, gpfns: np.ndarray) -> int:
        """Clear EPT dirty bits so a new tracking interval re-logs them."""
        vm = self._vm_of(vcpu)
        g = np.asarray(gpfns, dtype=np.int64)
        return vm.ept.clear_dirty(g)

    # -- balloon (fleet memory economics) ---------------------------------
    def _hc_balloon_inflate(self, vcpu: Vcpu, gpfns: np.ndarray) -> int:
        """Guest hands cold frames to the host: EPT-unmap the GPFNs and
        return their host frames to the pool.  Unmapped entries lose all
        flags, so a later deflate re-maps with clean A/D bits and PML
        re-logs the first post-refault write."""
        vm = self._vm_of(vcpu)
        g = np.asarray(gpfns, dtype=np.int64).ravel()
        if g.size == 0:
            return 0
        hpfns = vm.ept.unmap(g)
        self.host_mem.free(hpfns)
        self.clock.charge(
            g.size * self.costs.params.balloon_page_us,
            World.HYPERVISOR,
            EV_BALLOON_PAGE,
            int(g.size),
        )
        return int(g.size)

    def _hc_balloon_deflate(self, vcpu: Vcpu, gpfns: np.ndarray) -> int:
        """Re-back ballooned GPFNs with fresh host frames (refault path).

        Raises :class:`~repro.errors.OutOfFramesError` when the host pool
        is genuinely exhausted — the caller's reclaim controller must free
        frames elsewhere first — and the injectable ``FRAME_EXHAUSTION``
        fault site makes the allocation transiently fail under chaos.
        """
        vm = self._vm_of(vcpu)
        g = np.asarray(gpfns, dtype=np.int64).ravel()
        if g.size == 0:
            return 0
        if np.any(vm.ept.hpfn[g] >= 0):
            raise HypercallError("balloon deflate of a mapped GPFN")
        hpfns = self.host_mem.alloc(int(g.size))
        vm.ept.map(g, hpfns)
        self.clock.charge(
            g.size * self.costs.params.balloon_page_us,
            World.HYPERVISOR,
            EV_BALLOON_PAGE,
            int(g.size),
        )
        return int(g.size)

    def _on_spp_violation(self, vcpu: Vcpu, payload: object) -> None:
        """SPP-induced vmexit: notify the guest with a virtual interrupt
        (the guest's OoH-SPP handler reads the violation record)."""
        from repro.hw.interrupts import VECTOR_OOH_SPP_VIOLATION

        vm = self._vm_of(vcpu)
        vm.last_spp_violation = payload  # (pid, vpn, subpage)
        vcpu.interrupts.inject_virtual(VECTOR_OOH_SPP_VIOLATION)

    # -- OoH-SPP (paper §III-D extension) ---------------------------------
    def _hc_spp_init(self, vcpu: Vcpu):
        """Enable sub-page write permissions for this VM."""
        from repro.hw.spp import SppTable

        vm = self._vm_of(vcpu)
        if vm.spp is None:
            vm.spp = SppTable(vm.mem_pages)
        return vm.spp

    def _hc_spp_protect(self, vcpu: Vcpu, gpfn: int, write_vector: int) -> None:
        vm = self._vm_of(vcpu)
        if vm.spp is None:
            raise HypercallError("SPP protect before SPP init")
        vm.spp.protect(int(gpfn), int(write_vector))

    def _hc_spp_unprotect(self, vcpu: Vcpu, gpfn: int) -> None:
        vm = self._vm_of(vcpu)
        if vm.spp is None:
            raise HypercallError("SPP unprotect before SPP init")
        vm.spp.unprotect(int(gpfn))
