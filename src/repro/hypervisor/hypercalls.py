"""Hypercall numbers and dispatch table.

The OoH prototype adds a handful of hypercalls to Xen (§IV-C/D):

* ``HC_OOH_INIT_PML`` / ``HC_OOH_DEACT_PML`` — SPML setup/teardown: the
  hypervisor configures the vCPU's PML buffer, allocates the shared ring
  buffer, and sets the ``enabled_by_guest`` coordination flag.
* ``HC_OOH_ENABLE_LOGGING`` / ``HC_OOH_DISABLE_LOGGING`` — issued by the
  OoH module at every schedule-in/out of a tracked process; disable also
  copies the residual PML-buffer contents to the ring buffer.
* ``HC_OOH_INIT_PML_SHADOW`` / ``HC_OOH_DEACT_PML_SHADOW`` — EPML's *only*
  runtime hypercalls: configure VMCS shadowing and expose the guest-PML
  fields; everything afterwards is vmwrite on the shadow VMCS.
* ``HC_OOH_RESET_DIRTY`` — clears EPT dirty bits for given GPFNs so a new
  tracking interval re-logs them (harvest re-arm; inferred detail,
  DESIGN.md).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import HypercallError
from repro.faults import injector as finj
from repro.faults.plan import FaultSite
from repro.obs import trace as otr
from repro.obs.events import EventKind

__all__ = [
    "HC_OOH_INIT_PML",
    "HC_OOH_DEACT_PML",
    "HC_OOH_ENABLE_LOGGING",
    "HC_OOH_DISABLE_LOGGING",
    "HC_OOH_INIT_PML_SHADOW",
    "HC_OOH_DEACT_PML_SHADOW",
    "HC_OOH_RESET_DIRTY",
    "HC_OOH_SPP_INIT",
    "HC_OOH_SPP_PROTECT",
    "HC_OOH_SPP_UNPROTECT",
    "HC_OOH_BALLOON_INFLATE",
    "HC_OOH_BALLOON_DEFLATE",
    "HypercallTable",
]

HC_OOH_INIT_PML = 0x4F01
HC_OOH_DEACT_PML = 0x4F02
HC_OOH_ENABLE_LOGGING = 0x4F03
HC_OOH_DISABLE_LOGGING = 0x4F04
HC_OOH_INIT_PML_SHADOW = 0x4F05
HC_OOH_DEACT_PML_SHADOW = 0x4F06
HC_OOH_RESET_DIRTY = 0x4F07
# OoH for Intel SPP (the paper's §III-D extension).
HC_OOH_SPP_INIT = 0x4F10
HC_OOH_SPP_PROTECT = 0x4F11
HC_OOH_SPP_UNPROTECT = 0x4F12
# Memory economics (fleet overcommit): the guest balloon driver hands
# cold guest frames back to the host (inflate) and asks for them to be
# re-backed on refault (deflate), virtio-balloon style.
HC_OOH_BALLOON_INFLATE = 0x4F20
HC_OOH_BALLOON_DEFLATE = 0x4F21

HypercallHandler = Callable[..., object]


class HypercallTable:
    """Number -> handler registry with dispatch."""

    def __init__(self) -> None:
        self._handlers: dict[int, HypercallHandler] = {}

    def register(self, nr: int, handler: HypercallHandler) -> None:
        if nr in self._handlers:
            raise HypercallError(f"hypercall {nr:#x} already registered")
        self._handlers[nr] = handler

    def dispatch(self, nr: int, args: tuple) -> object:
        # args[0] is the issuing vCPU by convention (hypervisor handlers
        # all take it first); traced so SMP runs show which vCPU called.
        vcpu_id = getattr(args[0], "vcpu_id", 0) if args else 0
        if finj.ACTIVE is not None and finj.ACTIVE.should_fire(
            FaultSite.HYPERCALL_TRANSIENT
        ):
            if otr.ACTIVE is not None:
                otr.ACTIVE.emit(
                    EventKind.HYPERCALL,
                    nr=f"{nr:#x}",
                    outcome="eagain",
                    vcpu_id=vcpu_id,
                )
                otr.ACTIVE.metrics.inc(f"hypercall.{nr:#x}.eagain")
            # The guest already paid the hypercall entry cost; the call
            # bounces with a retryable errno, exactly like Xen's -EAGAIN.
            raise HypercallError(
                f"transient failure dispatching hypercall {nr:#x} (injected)",
                code="EAGAIN",
            )
        handler = self._handlers.get(nr)
        if otr.ACTIVE is not None:
            outcome = "dispatched" if handler is not None else "unknown"
            otr.ACTIVE.emit(
                EventKind.HYPERCALL,
                nr=f"{nr:#x}",
                outcome=outcome,
                vcpu_id=vcpu_id,
            )
            otr.ACTIVE.metrics.inc(f"hypercall.{nr:#x}.{outcome}")
        if handler is None:
            raise HypercallError(f"unknown hypercall {nr:#x}")
        return handler(*args)

    def __contains__(self, nr: int) -> bool:
        return nr in self._handlers
