"""Working-set-size estimation from EPT accessed bits.

The paper's related work (§VII) cites the authors' earlier result that
PML, extended to also log *read* pages, lets the hypervisor estimate a
VM's working set efficiently.  We implement the classic sampling form on
the same substrate: clear the EPT accessed bits, let the VM run an
interval, and count the pages whose accessed bit came back — no guest
cooperation, no page faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.ept import EPT_ACCESSED
from repro.hypervisor.vm import Vm

__all__ = ["WssSample", "WssEstimator"]


@dataclass
class WssSample:
    interval_index: int
    accessed_pages: int
    accessed_mb: float


@dataclass
class WssEstimator:
    """Periodic accessed-bit sampling over one VM."""

    vm: Vm
    samples: list[WssSample] = field(default_factory=list)

    def _clear_accessed(self) -> None:
        # Must go through the invalidating mutator: clearing A bits by
        # poking ``ept.flags`` directly would leave ``Ept.generation``
        # unchanged, so a warm walk-cache batch could replay without
        # re-setting accessed bits and the sample would under-count.
        self.vm.ept.clear_accessed()

    def _count_accessed(self) -> int:
        return int(((self.vm.ept.flags & EPT_ACCESSED) != 0).sum())

    def sample(self, run_interval: Callable[[], None]) -> WssSample:
        """Clear, run one interval, count."""
        self._clear_accessed()
        run_interval()
        n = self._count_accessed()
        s = WssSample(
            interval_index=len(self.samples),
            accessed_pages=n,
            accessed_mb=n * 4096 / (1024 * 1024),
        )
        self.samples.append(s)
        return s

    def estimate(self, run_interval: Callable[[], None], intervals: int) -> float:
        """Average working set (pages) over ``intervals`` samples."""
        if intervals < 1:
            raise ConfigurationError("intervals must be >= 1")
        for _ in range(intervals):
            self.sample(run_interval)
        recent = self.samples[-intervals:]
        return float(np.mean([s.accessed_pages for s in recent]))

    def estimate_pages(
        self, run_interval: Callable[[], None], intervals: int
    ) -> int:
        """:meth:`estimate` rounded up to whole pages — the form the fleet
        placement path consumes (a fractional page still occupies one)."""
        return int(np.ceil(self.estimate(run_interval, intervals)))
