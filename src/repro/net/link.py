"""Simulated network links with fair-share contention.

A :class:`Link` is a named pipe with a per-page transfer cost and a
propagation latency.  Contention is modelled fair-share: every flow
attached to a link sees the link's per-page cost multiplied by the number
of concurrently open flows (``share_factor``), so two simultaneous
migrations over one backbone each move pages at half speed.  Both
parameters default to the :class:`~repro.core.costs.CostParams` network
fields so a bare ``Link("backbone")`` reproduces the historical
``LiveMigration`` constant; ``0.0`` is a valid override (an infinitely
fast or zero-latency link — the degenerate case the differential tests
pin against the pre-fleet code path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.costs import CostParams
from repro.errors import ConfigurationError

__all__ = ["Link"]


@dataclass
class Link:
    """One contended network segment between hosts."""

    name: str
    #: Microseconds to move one page; ``None`` defers to
    #: ``CostParams.net_send_us_per_page``.
    us_per_page: float | None = None
    #: Per-transfer propagation latency; ``None`` defers to
    #: ``CostParams.net_latency_us``.
    latency_us: float | None = None
    _flows: set[str] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        if self.us_per_page is not None and self.us_per_page < 0:
            raise ConfigurationError(
                f"us_per_page must be >= 0: {self.us_per_page}"
            )
        if self.latency_us is not None and self.latency_us < 0:
            raise ConfigurationError(
                f"latency_us must be >= 0: {self.latency_us}"
            )

    def resolve(self, params: CostParams) -> tuple[float, float]:
        """(us_per_page, latency_us) with cost-model defaults applied."""
        us_pp = (
            params.net_send_us_per_page
            if self.us_per_page is None
            else self.us_per_page
        )
        latency = (
            params.net_latency_us if self.latency_us is None else self.latency_us
        )
        return us_pp, latency

    @property
    def n_flows(self) -> int:
        return len(self._flows)

    @property
    def share_factor(self) -> int:
        """Fair-share multiplier on per-page cost: one open flow is the
        uncontended baseline, n flows each run n times slower."""
        return max(1, len(self._flows))

    def attach(self, flow_id: str) -> None:
        if flow_id in self._flows:
            raise ConfigurationError(f"flow already attached: {flow_id}")
        self._flows.add(flow_id)

    def detach(self, flow_id: str) -> None:
        self._flows.discard(flow_id)
