"""Deterministic simulated network: links, flows, and a cost-charging
transport for the fleet layer (DESIGN.md §11)."""

from repro.net.link import Link
from repro.net.transport import Flow, Transport, TransportSender

__all__ = ["Link", "Flow", "Transport", "TransportSender"]
