"""Cost-charging transport over simulated links.

A :class:`Transport` owns flows and converts "send n pages over this
flow" into a single :class:`~repro.core.clock.SimClock` charge:

    ``us = latency + (n_pages + retransmits) * us_per_page * share_factor``

where ``share_factor`` is the link's concurrent-flow count at send time —
contention changes the cost of *this* transfer, not a queueing model.
Three fault sites perturb a send when a
:class:`~repro.faults.injector.FaultInjector` is active:

* ``NET_DROP`` — per-page loss; lost pages are retransmitted inside the
  same send (they cost time, not correctness);
* ``NET_LATENCY_SPIKE`` — multiplies this transfer's latency by
  ``CostParams.net_spike_factor``;
* ``NET_PARTITION`` — the link is unreachable: the transfer backs off
  (charging ``net_backoff_us * attempt``) and retries, raising
  :class:`~repro.errors.TransientError` once the retry budget is spent.

:class:`TransportSender` adapts a flow to the
:class:`~repro.hypervisor.migration.PageSender` protocol so
``LiveMigration`` transfers ride the shared network unmodified.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clock import SimClock, World
from repro.core.costs import (
    EV_MIGRATION_SEND,
    EV_NET_BACKOFF,
    CostModel,
)
from repro.errors import ConfigurationError, TransientError
from repro.faults import injector as finj
from repro.faults.plan import FaultSite
from repro.net.link import Link
from repro.obs import trace as otr
from repro.obs.events import EventKind

__all__ = ["Flow", "Transport", "TransportSender"]


@dataclass
class Flow:
    """One open connection over a link, with transfer accounting."""

    flow_id: str
    link: Link
    closed: bool = False
    pages_sent: int = 0
    n_sends: int = 0
    retransmitted_pages: int = 0
    latency_spikes: int = 0
    partition_retries: int = 0


@dataclass
class Transport:
    """Flow factory + the one place network time is charged."""

    clock: SimClock
    costs: CostModel
    #: Backoff-and-retry attempts before a partitioned send gives up.
    partition_retry_limit: int = 8
    _flows: dict[str, Flow] = field(default_factory=dict, repr=False)

    def open_flow(self, link: Link, flow_id: str) -> Flow:
        if flow_id in self._flows:
            raise ConfigurationError(f"duplicate flow id: {flow_id}")
        link.attach(flow_id)
        flow = Flow(flow_id=flow_id, link=link)
        self._flows[flow_id] = flow
        if otr.ACTIVE is not None:
            otr.ACTIVE.metrics.inc("net.flows_opened")
            otr.ACTIVE.metrics.inc(f"net.link.{link.name}.flows")
        return flow

    def close_flow(self, flow: Flow) -> None:
        if flow.closed:
            return
        flow.closed = True
        flow.link.detach(flow.flow_id)
        self._flows.pop(flow.flow_id, None)

    def send(
        self,
        flow: Flow,
        n_pages: int,
        world: World = World.HYPERVISOR,
        event: str = EV_MIGRATION_SEND,
    ) -> float:
        """Move ``n_pages`` over ``flow``; charge and return elapsed us."""
        if flow.closed:
            raise ConfigurationError(f"send on closed flow: {flow.flow_id}")
        n_pages = int(n_pages)
        params = self.costs.params
        us_pp, latency = flow.link.resolve(params)

        attempts = 0
        while finj.ACTIVE is not None and finj.ACTIVE.should_fire(
            FaultSite.NET_PARTITION
        ):
            attempts += 1
            flow.partition_retries += 1
            if otr.ACTIVE is not None:
                otr.ACTIVE.emit(
                    EventKind.NET_FAULT,
                    site=FaultSite.NET_PARTITION.value,
                    link=flow.link.name,
                    flow=flow.flow_id,
                    attempt=attempts,
                )
            if attempts >= self.partition_retry_limit:
                raise TransientError(
                    f"link {flow.link.name} partitioned: "
                    f"{attempts} retries exhausted"
                )
            self.clock.charge(
                params.net_backoff_us * attempts, world, EV_NET_BACKOFF
            )

        retrans = 0
        if finj.ACTIVE is not None and n_pages > 0:
            retrans = finj.ACTIVE.drop_count(FaultSite.NET_DROP, n_pages)
            if retrans and otr.ACTIVE is not None:
                otr.ACTIVE.emit(
                    EventKind.NET_FAULT,
                    site=FaultSite.NET_DROP.value,
                    link=flow.link.name,
                    flow=flow.flow_id,
                    n_pages=retrans,
                )
        spiked = finj.ACTIVE is not None and finj.ACTIVE.should_fire(
            FaultSite.NET_LATENCY_SPIKE
        )
        if spiked:
            latency *= params.net_spike_factor
            flow.latency_spikes += 1
            if otr.ACTIVE is not None:
                otr.ACTIVE.emit(
                    EventKind.NET_FAULT,
                    site=FaultSite.NET_LATENCY_SPIKE.value,
                    link=flow.link.name,
                    flow=flow.flow_id,
                )

        share = flow.link.share_factor
        us = latency + (n_pages + retrans) * us_pp * share
        self.clock.charge(us, world, event, n_pages)
        flow.pages_sent += n_pages
        flow.n_sends += 1
        flow.retransmitted_pages += retrans
        if otr.ACTIVE is not None:
            otr.ACTIVE.emit(
                EventKind.NET_SEND,
                link=flow.link.name,
                flow=flow.flow_id,
                n_pages=n_pages,
                n_flows=flow.link.n_flows,
                retransmitted=retrans,
                spiked=bool(spiked),
            )
            otr.ACTIVE.metrics.inc("net.sends")
            otr.ACTIVE.metrics.inc(f"net.flow.{flow.flow_id}.pages", n_pages)
            otr.ACTIVE.metrics.inc(f"net.link.{flow.link.name}.pages", n_pages)
            if retrans:
                otr.ACTIVE.metrics.inc("net.retransmitted_pages", retrans)
        return us


class TransportSender:
    """:class:`PageSender` adapter: LiveMigration transfers over a flow."""

    def __init__(
        self,
        transport: Transport,
        flow: Flow,
        world: World = World.HYPERVISOR,
        event: str = EV_MIGRATION_SEND,
    ) -> None:
        self.transport = transport
        self.flow = flow
        self.world = world
        self.event = event

    @property
    def us_per_page(self) -> float:
        """Uncontended per-page cost (contention applies at send time)."""
        return self.flow.link.resolve(self.transport.costs.params)[0]

    def send(self, n_pages: int) -> float:
        return self.transport.send(
            self.flow, n_pages, world=self.world, event=self.event
        )
