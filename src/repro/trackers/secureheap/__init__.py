"""Secure heap allocator demonstrating the OoH-SPP extension (§III-D)."""

from repro.trackers.secureheap.allocator import (
    Allocation,
    GuardMode,
    OverflowDetected,
    SecureHeap,
)

__all__ = ["Allocation", "GuardMode", "OverflowDetected", "SecureHeap"]
