"""Secure heap allocator with overflow guards: pages vs SPP sub-pages.

The paper's §III-D motivation for OoH-SPP: allocators like guard-page
hardened heaps detect overflows *synchronously* by placing an
inaccessible guard after each object.  With page-granular protection the
guard costs 4 KiB per allocation; with SPP it costs one 128-byte
sub-page — a factor-of-32 waste reduction, which this module demonstrates
(``bench_spp_extension.py``).

Two modes:

* ``GuardMode.PAGE`` — classic: each allocation gets its own page(s)
  followed by a full guard page (unmapped-equivalent: write-protected at
  page granularity through SPP with an all-clear vector, so detection
  flows through the same machinery).
* ``GuardMode.SUBPAGE`` — OoH-SPP: allocations pack into pages at
  128-byte granularity with a single guarded sub-page after each object.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.calibration import PAGE_SIZE
from repro.core.oohspp import OohSpp
from repro.errors import GcError
from repro.guest.kernel import GuestKernel
from repro.guest.process import Process
from repro.hw.spp import SUBPAGE_BYTES, SUBPAGES_PER_PAGE

__all__ = ["GuardMode", "OverflowDetected", "Allocation", "SecureHeap"]


class GuardMode(enum.Enum):
    PAGE = "page"
    SUBPAGE = "subpage"


class OverflowDetected(Exception):
    """Raised synchronously when a write hits a guard (the paper's
    'synchronous overflow detection')."""

    def __init__(self, alloc_id: int, vpn: int, subpage: int) -> None:
        super().__init__(
            f"overflow into guard: allocation {alloc_id}, page {vpn}, "
            f"sub-page {subpage}"
        )
        self.alloc_id = alloc_id
        self.vpn = vpn
        self.subpage = subpage


@dataclass(frozen=True)
class Allocation:
    alloc_id: int
    vpn: int  # first page
    start_subpage: int  # within the first page
    size_bytes: int
    usable_subpages: int


class SecureHeap:
    """Guarded allocator for one process."""

    def __init__(
        self,
        kernel: GuestKernel,
        process: Process,
        spp: OohSpp,
        mode: GuardMode = GuardMode.SUBPAGE,
        heap_pages: int = 4096,
    ) -> None:
        self.kernel = kernel
        self.process = process
        self.spp = spp
        self.mode = mode
        self.vma = process.space.add_vma(heap_pages, f"secure-heap-{mode.value}")
        self._next_page = self.vma.start_vpn
        self._cur_page: int | None = None
        self._cur_subpage = 0
        self._allocs: dict[int, Allocation] = {}
        self._guard_owner: dict[tuple[int, int], int] = {}
        self._next_id = 1
        #: Bytes consumed by guards (the §III-D waste metric).
        self.guard_waste_bytes = 0
        self.payload_bytes = 0
        self.overflows_detected = 0
        spp.add_violation_handler(self._on_violation)

    # ------------------------------------------------------------------
    def _take_page(self) -> int:
        if self._next_page >= self.vma.end_vpn:
            raise GcError("secure heap exhausted")
        page = self._next_page
        self._next_page += 1
        return page

    def alloc(self, size_bytes: int) -> Allocation:
        """Allocate ``size_bytes`` with a trailing guard."""
        if size_bytes <= 0:
            raise GcError(f"allocation size must be > 0: {size_bytes}")
        if size_bytes > PAGE_SIZE - SUBPAGE_BYTES:
            raise GcError("large allocations not supported by this demo heap")
        n_sub = -(-size_bytes // SUBPAGE_BYTES)
        alloc_id = self._next_id
        self._next_id += 1

        if self.mode is GuardMode.PAGE:
            # Object page(s) + one fully-guarded page.
            page = self._take_page()
            guard_page = self._take_page()
            self.spp.protect_page(self.process, guard_page, 0)  # no writes
            self._guard_owner[(guard_page, -1)] = alloc_id
            alloc = Allocation(alloc_id, page, 0, size_bytes, n_sub)
            self.guard_waste_bytes += PAGE_SIZE
            # Page-granular placement also wastes the object page's tail.
            self.guard_waste_bytes += PAGE_SIZE - size_bytes
        else:
            # Pack at sub-page granularity: object + 1 guard sub-page.
            need = n_sub + 1
            if (
                self._cur_page is None
                or self._cur_subpage + need > SUBPAGES_PER_PAGE
            ):
                self._cur_page = self._take_page()
                self._cur_subpage = 0
                # New page starts fully writable.
                self.spp.protect_page(
                    self.process, self._cur_page, (1 << SUBPAGES_PER_PAGE) - 1
                )
            start = self._cur_subpage
            guard_sub = start + n_sub
            self._guard_subpage(self._cur_page, guard_sub, alloc_id)
            alloc = Allocation(alloc_id, self._cur_page, start, size_bytes, n_sub)
            self._cur_subpage += need
            self.guard_waste_bytes += SUBPAGE_BYTES
            self.guard_waste_bytes += n_sub * SUBPAGE_BYTES - size_bytes

        self.payload_bytes += size_bytes
        self._allocs[alloc_id] = alloc
        return alloc

    def _guard_subpage(self, vpn: int, subpage: int, alloc_id: int) -> None:
        spp_table = self.spp._require_init()
        gpfn = int(self.process.space.pt.translate([vpn])[0]) if (
            self.process.space.pt.present_mask([vpn]).any()
        ) else None
        if gpfn is None:
            self.kernel.access(self.process, [vpn], True)
            gpfn = int(self.process.space.pt.translate([vpn])[0])
        vec = spp_table.vector(gpfn)
        vec = (1 << SUBPAGES_PER_PAGE) - 1 if vec is None else int(vec)
        vec &= ~(1 << subpage)
        self.spp.protect_page(self.process, vpn, vec)
        self._guard_owner[(vpn, subpage)] = alloc_id

    # ------------------------------------------------------------------
    def write(self, alloc: Allocation, offset: int, length: int = 1) -> None:
        """Write ``[offset, offset+length)`` within the allocation.

        Writing past ``size_bytes`` runs into the guard and raises
        :class:`OverflowDetected` *synchronously*.
        """
        if offset < 0 or length < 1:
            raise GcError("bad write range")
        first_sub = alloc.start_subpage + offset // SUBPAGE_BYTES
        last_sub = alloc.start_subpage + (offset + length - 1) // SUBPAGE_BYTES
        for sub in range(first_sub, last_sub + 1):
            vpn = alloc.vpn + sub // SUBPAGES_PER_PAGE
            sub_in_page = sub % SUBPAGES_PER_PAGE
            ok = self.kernel.access_subpage(self.process, vpn, sub_in_page, True)
            if not ok:
                self.overflows_detected += 1
                owner = self._guard_owner.get((vpn, sub_in_page), alloc.alloc_id)
                raise OverflowDetected(owner, vpn, sub_in_page)
        # PAGE mode: a write past the object page lands on the guard page.
        if self.mode is GuardMode.PAGE and offset + length > PAGE_SIZE:
            guard_page = alloc.vpn + 1
            ok = self.kernel.access_subpage(self.process, guard_page, 0, True)
            if not ok:
                self.overflows_detected += 1
                raise OverflowDetected(alloc.alloc_id, guard_page, 0)

    # ------------------------------------------------------------------
    def _on_violation(self, pid: int, vpn: int, subpage: int) -> None:
        # The module delivered the violation; bookkeeping only (write()
        # raises synchronously at the access site).
        pass

    @property
    def waste_ratio(self) -> float:
        """Guard + fragmentation bytes per payload byte."""
        if self.payload_bytes == 0:
            return 0.0
        return self.guard_waste_bytes / self.payload_bytes
