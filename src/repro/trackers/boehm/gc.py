"""Boehm-style mark-sweep collector with dirty-page-driven minor cycles.

The first collection is a full stop-the-world mark-sweep; survivors are
promoted to the old generation and the tracking technique is reset.
Subsequent cycles are *minor*: the technique supplies the dirty pages, the
collector re-scans only roots and old objects on those pages, and sweeps
unreachable young objects (``incremental.minor_mark``).  Periodic full
collections (``full_every``) reclaim old garbage.

Per-cycle pause times are what the paper's Fig. 5 plots; the SPML
first-cycle spike falls out naturally because the first collection's
technique reset drains the largest dirty set through the reverse mapper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.clock import World
from repro.core.tracking import DirtyPageTracker, Technique, make_tracker
from repro.errors import GcError
from repro.guest.kernel import GuestKernel
from repro.trackers.boehm.heap import GEN_OLD, GEN_YOUNG, GcHeap
from repro.trackers.boehm.incremental import full_mark, minor_mark

__all__ = ["GcParams", "GcCycleReport", "BoehmGc"]

EV_GC_SCAN = "gc_scan"
EV_GC_SWEEP = "gc_sweep"


@dataclass(frozen=True)
class GcParams:
    """Collector tuning knobs."""

    threshold_bytes: int = 4 * 1024 * 1024  # allocation between cycles
    scan_us_per_page: float = 2.0  # pointer-scanning a 4 KiB page
    scan_us_per_obj: float = 0.02
    sweep_us_per_obj: float = 0.01
    full_every: int = 0  # 0 = only the first cycle is full


@dataclass
class GcCycleReport:
    index: int
    kind: str  # "full" | "minor"
    pause_us: float
    n_visited: int
    n_scanned_pages: int
    n_freed: int
    n_dirty_pages: int
    live_after: int


class BoehmGc:
    """One collector instance per heap."""

    def __init__(
        self,
        kernel: GuestKernel,
        heap: GcHeap,
        technique: Technique | str = Technique.PROC,
        params: GcParams | None = None,
        technique_kwargs: dict | None = None,
    ) -> None:
        self.kernel = kernel
        self.heap = heap
        self.technique = (
            Technique(technique) if isinstance(technique, str) else technique
        )
        self.params = params if params is not None else GcParams()
        #: Extra tracker-constructor arguments (ablation hook).
        self.technique_kwargs = technique_kwargs
        self._tracker: DirtyPageTracker | None = None
        self.cycles: list[GcCycleReport] = []
        self._did_full = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin incremental collection (starts the tracking technique)."""
        if self._tracker is not None:
            raise GcError("collector already started")
        kwargs = {}
        if self.technique is Technique.SPML:
            # Paper §VI-E: Boehm reuses the reverse-mapped addresses
            # collected during the first cycle.
            kwargs["reverse_map_cache"] = True
        if self.technique_kwargs:
            kwargs.update(self.technique_kwargs)
        self._tracker = make_tracker(
            self.technique, self.kernel, self.heap.process, **kwargs
        )
        self._tracker.start()

    def stop(self) -> None:
        if self._tracker is not None:
            self._tracker.stop()
            self._tracker = None

    def __enter__(self) -> "BoehmGc":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def maybe_collect(self) -> GcCycleReport | None:
        """Collect if the allocation threshold has been crossed."""
        if self.heap.allocated_bytes_since_gc >= self.params.threshold_bytes:
            return self.collect()
        return None

    def collect(self) -> GcCycleReport:
        if self._tracker is None:
            raise GcError("collect before start")
        idx = len(self.cycles)
        full = not self._did_full or (
            self.params.full_every > 0 and idx % self.params.full_every == 0
        )
        t0 = self.kernel.clock.now_us
        if full:
            report = self._full_collect(idx)
        else:
            report = self._minor_collect(idx)
        report.pause_us = self.kernel.clock.now_us - t0
        self.heap.allocated_bytes_since_gc = 0
        self.cycles.append(report)
        return report

    # ------------------------------------------------------------------
    def _charge_scan(self, n_objs: int, n_pages: int) -> None:
        us = (
            n_objs * self.params.scan_us_per_obj
            + n_pages * self.params.scan_us_per_page
        )
        self.kernel.clock.charge(us, World.TRACKER, EV_GC_SCAN, n_objs)

    def _charge_sweep(self, n_objs: int) -> None:
        self.kernel.clock.charge(
            n_objs * self.params.sweep_us_per_obj,
            World.TRACKER,
            EV_GC_SWEEP,
            n_objs,
        )

    def _full_collect(self, idx: int) -> GcCycleReport:
        heap = self.heap
        assert self._tracker is not None
        # Reset the tracking interval; with SPML this is where the big
        # first-cycle reverse mapping lands (Fig. 5).
        dirty = self._tracker.collect()
        result = full_mark(heap)
        if result.scanned_pages.size:
            self.kernel.access(heap.process, result.scanned_pages, False)
        self._charge_scan(result.n_visited, int(result.scanned_pages.size))
        live = heap.live_ids()
        dead = live[~result.marked[live]]
        n_freed = heap.free_objects(dead)
        self._charge_sweep(int(live.size))
        survivors = live[result.marked[live]]
        heap.gen[survivors] = GEN_OLD
        heap.compact_edges()
        self._did_full = True
        return GcCycleReport(
            index=idx,
            kind="full",
            pause_us=0.0,
            n_visited=result.n_visited,
            n_scanned_pages=int(result.scanned_pages.size),
            n_freed=n_freed,
            n_dirty_pages=int(np.asarray(dirty).size),
            live_after=heap.n_live,
        )

    def _minor_collect(self, idx: int) -> GcCycleReport:
        heap = self.heap
        assert self._tracker is not None
        dirty = self._tracker.collect()
        # Restrict to heap pages still mapped.
        dirty = dirty[
            (dirty >= heap.vma.start_vpn) & (dirty < heap.vma.end_vpn)
        ]
        result = minor_mark(heap, dirty)
        scan_pages = np.unique(
            np.concatenate([result.scanned_pages, dirty])
        ) if dirty.size or result.scanned_pages.size else result.scanned_pages
        present = heap.process.space.pt.present_mask(scan_pages)
        scan_present = scan_pages[present]
        if scan_present.size:
            self.kernel.access(heap.process, scan_present, False)
        self._charge_scan(result.n_visited, int(scan_pages.size))
        live = heap.live_ids()
        young = live[heap.gen[live] == GEN_YOUNG]
        dead = young[~result.marked[young]]
        n_freed = heap.free_objects(dead)
        self._charge_sweep(int(young.size))
        survivors = young[result.marked[young]]
        heap.gen[survivors] = GEN_OLD
        return GcCycleReport(
            index=idx,
            kind="minor",
            pause_us=0.0,
            n_visited=result.n_visited,
            n_scanned_pages=int(scan_pages.size),
            n_freed=n_freed,
            n_dirty_pages=int(dirty.size),
            live_after=heap.n_live,
        )

    # ------------------------------------------------------------------
    @property
    def total_gc_us(self) -> float:
        return sum(c.pause_us for c in self.cycles)
