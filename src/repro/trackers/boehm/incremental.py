"""Dirty-page-driven marking (the paper's patched Boehm *mark phase*).

Boehm's incremental/generational mode avoids re-scanning the whole heap at
every cycle: objects that survived a full collection are *old* and assumed
stable; a minor cycle only re-scans (1) the roots and (2) old objects on
pages reported dirty by the tracking technique — the write-barrier
invariant being that any reference from an old object to a young one must
have dirtied the old object's page.  Everything young and unreached is
garbage.

These are pure graph routines over :class:`~repro.trackers.boehm.heap.GcHeap`;
cost charging stays in :mod:`repro.trackers.boehm.gc`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trackers.boehm.heap import GEN_OLD, GEN_YOUNG, GcHeap

__all__ = ["MarkResult", "full_mark", "minor_mark"]


@dataclass
class MarkResult:
    """Outcome of one mark pass."""

    marked: np.ndarray  # bool over ids (ids < heap._n_ids)
    n_visited: int  # objects whose fields were scanned
    scanned_pages: np.ndarray  # unique heap pages read during the scan


def _scan_pages(heap: GcHeap, ids: np.ndarray) -> np.ndarray:
    if ids.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.unique(heap.obj_page[ids])


def full_mark(heap: GcHeap) -> MarkResult:
    """Stop-the-world mark: BFS over every live reachable object."""
    n = heap._n_ids
    marked = np.zeros(n, dtype=bool)
    roots = np.array(sorted(heap.roots), dtype=np.int64)
    roots = roots[heap.alive[roots]] if roots.size else roots
    marked[roots] = True
    frontier = roots
    visited = [roots]
    while frontier.size:
        nbrs = heap.out_neighbors(frontier)
        nbrs = nbrs[heap.alive[nbrs] & ~marked[nbrs]]
        nbrs = np.unique(nbrs)
        marked[nbrs] = True
        visited.append(nbrs)
        frontier = nbrs
    all_visited = np.concatenate(visited) if visited else np.empty(0, np.int64)
    return MarkResult(
        marked=marked,
        n_visited=int(all_visited.size),
        scanned_pages=_scan_pages(heap, all_visited),
    )


def minor_mark(heap: GcHeap, dirty_vpns: np.ndarray) -> MarkResult:
    """Generational mark: roots + old objects on dirty pages.

    Marks every *young* object reachable from the scan set; old objects
    are stable by the write-barrier invariant and are never traversed
    unless their page is dirty.
    """
    n = heap._n_ids
    marked = np.zeros(n, dtype=bool)
    roots = np.array(sorted(heap.roots), dtype=np.int64)
    roots = roots[heap.alive[roots]] if roots.size else roots
    on_dirty = heap.objects_on_pages(np.asarray(dirty_vpns, dtype=np.int64))
    old_dirty = on_dirty[heap.gen[on_dirty] == GEN_OLD]
    scan_set = np.unique(np.concatenate([roots, old_dirty]))
    # Young scan-set members are themselves live young objects.
    young_in_scan = scan_set[heap.gen[scan_set] == GEN_YOUNG]
    marked[young_in_scan] = True
    frontier = scan_set
    visited = [scan_set]
    while frontier.size:
        nbrs = heap.out_neighbors(frontier)
        keep = (
            heap.alive[nbrs]
            & (heap.gen[nbrs] == GEN_YOUNG)
            & ~marked[nbrs]
        )
        nbrs = np.unique(nbrs[keep])
        marked[nbrs] = True
        visited.append(nbrs)
        frontier = nbrs
    all_visited = np.concatenate(visited) if visited else np.empty(0, np.int64)
    return MarkResult(
        marked=marked,
        n_visited=int(all_visited.size),
        scanned_pages=_scan_pages(heap, all_visited),
    )
