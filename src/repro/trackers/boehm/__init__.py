"""Boehm-style garbage collector with dirty-page-driven minor cycles."""

from repro.trackers.boehm.gc import BoehmGc, GcCycleReport, GcParams
from repro.trackers.boehm.heap import GcHeap
from repro.trackers.boehm.incremental import MarkResult, full_mark, minor_mark

__all__ = [
    "BoehmGc",
    "GcCycleReport",
    "GcParams",
    "GcHeap",
    "MarkResult",
    "full_mark",
    "minor_mark",
]
