"""GC heap: object allocation on the simulated address space.

A Boehm-style conservative collector manages a heap VMA inside the tracked
process.  Objects live in an id-indexed numpy store (page, size,
liveness, generation); references are an append-only edge list compacted
at full collections.  Allocation bump-packs objects into pages per size
class and *writes* those pages through the guest kernel — which is what
the dirty-page-tracking techniques observe.

Ids are reused through a free list so long allocation-heavy runs
(GCBench's tree torture) stay bounded by the live set, not the allocation
count.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import PAGE_SIZE
from repro.errors import GcError
from repro.guest.kernel import GuestKernel
from repro.guest.process import Process, Vma

__all__ = ["GcHeap"]

GEN_YOUNG = 0
GEN_OLD = 1


class GcHeap:
    """Object heap on one process."""

    def __init__(
        self,
        kernel: GuestKernel,
        process: Process,
        heap_pages: int,
        alloc_us_per_obj: float = 0.05,
    ) -> None:
        if heap_pages <= 0:
            raise GcError(f"heap_pages must be > 0: {heap_pages}")
        self.kernel = kernel
        self.process = process
        self.vma: Vma = process.space.add_vma(heap_pages, "gc-heap")
        self.alloc_us_per_obj = alloc_us_per_obj

        cap = 1024
        self.obj_page = np.full(cap, -1, dtype=np.int64)  # absolute VPN
        self.obj_size = np.zeros(cap, dtype=np.int32)
        self.obj_span = np.zeros(cap, dtype=np.int32)  # pages per object
        self.alive = np.zeros(cap, dtype=bool)
        self.gen = np.zeros(cap, dtype=np.uint8)
        self._n_ids = 0
        self._free_ids: list[np.ndarray] = []

        # Edges: append-only chunks, compacted at full collections.
        self._edge_src: list[np.ndarray] = []
        self._edge_dst: list[np.ndarray] = []
        self.n_edges = 0
        self._csr: tuple[np.ndarray, np.ndarray] | None = None
        self._csr_edges = -1
        self._csr_n_ids = -1

        # Per-size-class bump state: size -> (vpn, slots_used).
        self._bump: dict[int, tuple[int, int]] = {}
        self._next_heap_vpn = self.vma.start_vpn
        self._free_pages: list[int] = []
        self.page_live = np.zeros(process.space.n_pages, dtype=np.int32)

        self.roots: set[int] = set()
        self.allocated_bytes_since_gc = 0
        self.total_allocated_objects = 0

        # Page -> objects index, rebuilt lazily.
        self._page_index: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # id management
    # ------------------------------------------------------------------
    def _grow(self, need: int) -> None:
        cap = len(self.obj_page)
        if self._n_ids + need <= cap:
            return
        new_cap = max(cap * 2, self._n_ids + need)
        for name in ("obj_page", "obj_size", "obj_span", "alive", "gen"):
            old = getattr(self, name)
            new = np.zeros(new_cap, dtype=old.dtype)
            if name == "obj_page":
                new[:] = -1
            new[: len(old)] = old
            setattr(self, name, new)

    def _take_ids(self, n: int) -> np.ndarray:
        ids = np.empty(n, dtype=np.int64)
        got = 0
        while got < n and self._free_ids:
            chunk = self._free_ids[-1]
            take = min(len(chunk), n - got)
            ids[got:got + take] = chunk[-take:]
            if take == len(chunk):
                self._free_ids.pop()
            else:
                self._free_ids[-1] = chunk[:-take]
            got += take
        fresh = n - got
        if fresh:
            self._grow(fresh)
            ids[got:] = np.arange(self._n_ids, self._n_ids + fresh)
            self._n_ids += fresh
        return ids

    # ------------------------------------------------------------------
    # page management
    # ------------------------------------------------------------------
    def _take_pages(self, n: int) -> np.ndarray:
        pages = np.empty(n, dtype=np.int64)
        got = 0
        while got < n and self._free_pages:
            pages[got] = self._free_pages.pop()
            got += 1
        fresh = n - got
        if fresh:
            if self._next_heap_vpn + fresh > self.vma.end_vpn:
                raise GcError(
                    f"GC heap exhausted: need {fresh} pages, "
                    f"{self.vma.end_vpn - self._next_heap_vpn} left"
                )
            pages[got:] = np.arange(
                self._next_heap_vpn, self._next_heap_vpn + fresh
            )
            self._next_heap_vpn += fresh
        return pages

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, n: int, size_bytes: int) -> np.ndarray:
        """Allocate ``n`` objects of ``size_bytes`` each; returns ids.

        Touches (writes) the backing pages through the guest kernel and
        charges the application's allocation work as tracked compute.
        """
        if n <= 0:
            raise GcError(f"alloc count must be > 0: {n}")
        if size_bytes <= 0:
            raise GcError(f"object size must be > 0: {size_bytes}")
        per_page = max(1, PAGE_SIZE // size_bytes)
        span = max(1, -(-size_bytes // PAGE_SIZE))  # pages per big object

        ids = self._take_ids(n)
        if span > 1:
            # Large objects: span whole pages; record the first page.
            pages = self._take_pages(n * span)
            first = pages[::span] if span > 1 else pages
            self.obj_page[ids] = first
            touched = pages
            np.add.at(self.page_live, pages, 1)
        else:
            # Small objects: bump-pack into per-class pages.
            vpn, used = self._bump.get(size_bytes, (-1, per_page))
            slots_in_cur = per_page - used if vpn >= 0 else 0
            take_cur = min(n, slots_in_cur)
            n_rest = n - take_cur
            fresh_pages = self._take_pages(-(-n_rest // per_page)) if n_rest else \
                np.empty(0, dtype=np.int64)
            pages_assign = np.empty(n, dtype=np.int64)
            if take_cur:
                pages_assign[:take_cur] = vpn
            if n_rest:
                pages_assign[take_cur:] = fresh_pages[
                    np.arange(n_rest) // per_page
                ]
            self.obj_page[ids] = pages_assign
            np.add.at(self.page_live, pages_assign, 1)
            # Update bump state.
            if n_rest:
                used_last = n_rest - (len(fresh_pages) - 1) * per_page
                self._bump[size_bytes] = (int(fresh_pages[-1]), used_last)
            else:
                self._bump[size_bytes] = (vpn, used + take_cur)
            touched = np.unique(pages_assign)

        self.obj_size[ids] = size_bytes
        self.obj_span[ids] = span
        self.alive[ids] = True
        self.gen[ids] = GEN_YOUNG
        self.allocated_bytes_since_gc += n * size_bytes
        self.total_allocated_objects += n
        self._page_index = None

        # The allocator writes headers/contents: dirty pages.
        self.kernel.access(self.process, touched, True)
        self.kernel.compute(self.process, n * self.alloc_us_per_obj)
        return ids

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_refs(self, src: np.ndarray | list[int], dst: np.ndarray | list[int]) -> None:
        """Store references src[i] -> dst[i]; writes the source pages."""
        s = np.asarray(src, dtype=np.int64).ravel()
        d = np.asarray(dst, dtype=np.int64).ravel()
        if s.size != d.size:
            raise GcError("set_refs length mismatch")
        if s.size == 0:
            return
        if not (self.alive[s].all() and self.alive[d].all()):
            raise GcError("set_refs on a dead object")
        self._edge_src.append(s.copy())
        self._edge_dst.append(d.copy())
        self.n_edges += int(s.size)
        self._csr = None if self._csr_edges != self.n_edges else self._csr
        self.kernel.access(self.process, np.unique(self.obj_page[s]), True)

    def replace_ref(self, src: int, old_dst: int, new_dst: int | None) -> None:
        """Overwrite a pointer cell: drop src -> old_dst, optionally add
        src -> new_dst.  Writes the source page (pointers are data)."""
        src, old_dst = int(src), int(old_dst)
        if not self.alive[src]:
            raise GcError("replace_ref on a dead source")
        found = False
        for k in range(len(self._edge_src)):
            s, d = self._edge_src[k], self._edge_dst[k]
            hit = np.nonzero((s == src) & (d == old_dst))[0]
            if hit.size:
                keep = np.ones(s.shape, dtype=bool)
                keep[hit[0]] = False
                self._edge_src[k] = s[keep]
                self._edge_dst[k] = d[keep]
                self.n_edges -= 1
                self._csr = None
                self._csr_edges = -1
                found = True
                break
        if not found:
            raise GcError(f"no edge {src} -> {old_dst} to replace")
        if new_dst is not None:
            self.set_refs([src], [int(new_dst)])
        else:
            self.kernel.access(self.process, self.obj_page[src:src + 1], True)

    def write_objs(self, ids: np.ndarray | list[int]) -> None:
        """Mutate object payloads (no reference change)."""
        i = np.asarray(ids, dtype=np.int64).ravel()
        if i.size == 0:
            return
        if not self.alive[i].all():
            raise GcError("write to a dead object")
        self.kernel.access(self.process, np.unique(self.obj_page[i]), True)

    def read_objs(self, ids: np.ndarray | list[int]) -> None:
        i = np.asarray(ids, dtype=np.int64).ravel()
        if i.size == 0:
            return
        self.kernel.access(self.process, np.unique(self.obj_page[i]), False)

    # ------------------------------------------------------------------
    # roots
    # ------------------------------------------------------------------
    def add_roots(self, ids: np.ndarray | list[int]) -> None:
        for i in np.asarray(ids, dtype=np.int64).ravel():
            if not self.alive[i]:
                raise GcError(f"root {i} is dead")
            self.roots.add(int(i))

    def remove_roots(self, ids: np.ndarray | list[int]) -> None:
        for i in np.asarray(ids, dtype=np.int64).ravel():
            self.roots.discard(int(i))

    # ------------------------------------------------------------------
    # queries used by the collector
    # ------------------------------------------------------------------
    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """(indptr, dst) adjacency over all live edges."""
        # Keyed on the id count too: allocation grows the id space
        # without adding edges, and a stale (shorter) indptr would make
        # out_neighbors index past the end for the new ids.
        if (
            self._csr is not None
            and self._csr_edges == self.n_edges
            and self._csr_n_ids == self._n_ids
        ):
            return self._csr
        if self.n_edges == 0:
            indptr = np.zeros(self._n_ids + 1, dtype=np.int64)
            self._csr = (indptr, np.empty(0, dtype=np.int64))
        else:
            src = np.concatenate(self._edge_src)
            dst = np.concatenate(self._edge_dst)
            order = np.argsort(src, kind="stable")
            counts = np.bincount(src, minlength=self._n_ids)
            indptr = np.zeros(self._n_ids + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._csr = (indptr, dst[order])
        self._csr_edges = self.n_edges
        self._csr_n_ids = self._n_ids
        return self._csr

    def out_neighbors(self, ids: np.ndarray) -> np.ndarray:
        indptr, dst = self.csr()
        if ids.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = indptr[ids]
        ends = indptr[ids + 1]
        lens = ends - starts
        total = int(lens.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Gather ranges [starts[i], ends[i]) vectorised.
        offsets = np.repeat(starts + lens - lens.cumsum(), lens) + np.arange(total)
        return dst[offsets]

    def objects_on_pages(self, vpns: np.ndarray) -> np.ndarray:
        """Live object ids residing on the given pages."""
        if vpns.size == 0:
            return np.empty(0, dtype=np.int64)
        if self._page_index is None:
            live = np.nonzero(self.alive[: self._n_ids])[0]
            order = np.argsort(self.obj_page[live], kind="stable")
            self._page_index = (self.obj_page[live][order], live[order])
        sorted_pages, sorted_ids = self._page_index
        lo = np.searchsorted(sorted_pages, vpns, "left")
        hi = np.searchsorted(sorted_pages, vpns, "right")
        lens = hi - lo
        total = int(lens.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        offsets = np.repeat(lo + lens - lens.cumsum(), lens) + np.arange(total)
        return sorted_ids[offsets]

    def live_ids(self) -> np.ndarray:
        return np.nonzero(self.alive[: self._n_ids])[0]

    @property
    def n_live(self) -> int:
        return int(self.alive[: self._n_ids].sum())

    # ------------------------------------------------------------------
    # reclamation (called by the collector)
    # ------------------------------------------------------------------
    def free_objects(self, ids: np.ndarray) -> int:
        """Free objects; release fully-dead pages back to the heap."""
        ids = np.asarray(ids, dtype=np.int64).ravel()
        if ids.size == 0:
            return 0
        if not self.alive[ids].all():
            raise GcError("double free of GC object")
        spans = self.obj_span[ids]
        first = self.obj_page[ids]
        total = int(spans.sum())
        # Expand [first_i, first_i + span_i) ranges (span is 1 for small
        # objects, so this is usually the identity).
        pages = np.repeat(first + spans - spans.cumsum(), spans) + np.arange(total)
        self.alive[ids] = False
        self.obj_page[ids] = -1
        np.add.at(self.page_live, pages, -1)
        self._free_ids.append(ids.copy())
        self._page_index = None
        # Pages with no live objects: unmap + reuse.
        candidates = np.unique(pages)
        empty = candidates[self.page_live[candidates] == 0]
        if empty.size:
            # Drop bump pointers into freed pages.
            self._bump = {
                s: (v, u) for s, (v, u) in self._bump.items() if v not in set(
                    int(p) for p in empty
                )
            }
            present = self.process.space.pt.present_mask(empty)
            to_unmap = empty[present]
            if to_unmap.size:
                freed_gpfns = self.process.space.pt.unmap(to_unmap)
                # Unmapped translations must leave every vCPU's TLB.
                self.kernel.tlb_shootdown(self.process, to_unmap)
                self.kernel.vm.guest_frames.free(freed_gpfns)
            self._free_pages.extend(int(p) for p in empty)
        return int(ids.size)

    def compact_edges(self) -> None:
        """Drop edges whose source is dead (run at full collections)."""
        if self.n_edges == 0:
            return
        src = np.concatenate(self._edge_src)
        dst = np.concatenate(self._edge_dst)
        keep = self.alive[src] & self.alive[dst]
        self._edge_src = [src[keep]]
        self._edge_dst = [dst[keep]]
        self.n_edges = int(keep.sum())
        self._csr = None
        self._csr_edges = -1
