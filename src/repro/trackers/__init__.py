"""Tracker systems built on dirty-page tracking: CRIU and Boehm GC."""
