"""CRIU-style checkpoint/restore built on dirty-page tracking."""

from repro.trackers.criu.checkpoint import Criu, CriuPhaseTimes, CriuReport, CriuSession
from repro.trackers.criu.images import CheckpointImage, MemoryImage, VmaRecord
from repro.trackers.criu.predump import PredumpReport, iterative_predump
from repro.trackers.criu.restore import restore

__all__ = [
    "Criu",
    "CriuPhaseTimes",
    "CriuReport",
    "CriuSession",
    "CheckpointImage",
    "MemoryImage",
    "VmaRecord",
    "PredumpReport",
    "iterative_predump",
    "restore",
]

from repro.trackers.criu.lazy import LazyRestoredProcess, LazyRestoreStats, lazy_restore

__all__ += ["LazyRestoredProcess", "LazyRestoreStats", "lazy_restore"]
