"""Iterative pre-dump: converge the dirty set before the final freeze.

CRIU's ``pre-dump`` repeats dump rounds while the application runs until
the per-round dirty set stops shrinking (or a round budget is exhausted),
minimising final-freeze downtime — same loop shape as live-migration
pre-copy, but driven by a userspace dirty-tracking technique instead of
hypervisor PML.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.clock import World
from repro.core.costs import EV_DISK_WRITE
from repro.core.tracking import Technique, make_tracker
from repro.errors import CheckpointError
from repro.guest.kernel import GuestKernel
from repro.guest.process import Process
from repro.retry import Retrier
from repro.trackers.criu.images import CheckpointImage

__all__ = ["PredumpReport", "iterative_predump"]


@dataclass
class PredumpReport:
    technique: Technique
    rounds: int = 0
    pages_per_round: list[int] = field(default_factory=list)
    downtime_us: float = 0.0
    total_us: float = 0.0
    converged: bool = False
    #: Transient collect failures retried with backoff.
    retries: int = 0


def iterative_predump(
    kernel: GuestKernel,
    process: Process,
    technique: Technique | str,
    run_round: Callable[[], None],
    max_rounds: int = 10,
    threshold_pages: int = 128,
    disk_write_us_per_page: float | None = None,
) -> tuple[CheckpointImage, PredumpReport]:
    """Pre-dump until the dirty set is below ``threshold_pages``."""
    if max_rounds < 1:
        raise CheckpointError("max_rounds must be >= 1")
    technique = Technique(technique) if isinstance(technique, str) else technique
    per_page = (
        disk_write_us_per_page
        if disk_write_us_per_page is not None
        else kernel.costs.params.disk_write_us_per_page
    )
    clock = kernel.clock
    report = PredumpReport(technique=technique)
    image = CheckpointImage.for_process(process)
    t_start = clock.now_us

    def write(vpns: np.ndarray) -> None:
        tokens = kernel.vm.mmu.read_page_contents(process.space.pt, vpns)
        clock.charge(
            float(vpns.size) * per_page, World.TRACKER, EV_DISK_WRITE,
            int(vpns.size),
        )
        image.add_round(vpns, tokens)

    tracker = make_tracker(technique, kernel, process)
    # A pre-dump round that hits a transient tracking failure retries the
    # collection (CRIU restarts the page scan) rather than losing a round.
    retrier = Retrier(clock, World.TRACKER)

    def collect() -> np.ndarray:
        return retrier.call(tracker.collect)

    tracker.start()
    try:
        mapped = process.space.mapped_vpns()
        write(mapped)
        report.pages_per_round.append(int(mapped.size))
        report.rounds = 1
        dirty = np.empty(0, dtype=np.int64)
        while report.rounds < max_rounds:
            run_round()
            dirty = collect()
            dirty = dirty[process.space.pt.present_mask(dirty)]
            if dirty.size <= threshold_pages:
                report.converged = True
                break
            write(dirty)
            report.pages_per_round.append(int(dirty.size))
            report.rounds += 1
        # Final freeze: dump the residue with the process stopped.
        t0 = clock.now_us
        kernel.stop_process(process)
        if not report.converged:
            dirty = collect()
            dirty = dirty[process.space.pt.present_mask(dirty)]
        if dirty.size:
            write(dirty)
            report.pages_per_round.append(int(dirty.size))
        kernel.resume_process(process)
        report.downtime_us = clock.now_us - t0
    finally:
        tracker.stop()
    report.retries = retrier.n_retries
    report.total_us = clock.now_us - t_start
    return image, report
