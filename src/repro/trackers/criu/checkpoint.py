"""CRIU-style checkpointing with pluggable dirty-page tracking.

Reproduces the structure the paper measures (§VI-F):

* **MD (memory dump) phase** — find the pages to dump.  With */proc* this
  is interleaved with writing: CRIU "walks the process page table to get
  dirty pages and writes them to the disk as it finds them", so the MD
  timer is ~empty and the walk cost lands in MW.  With SPML/EPML the MD
  phase is the OoH collection (ring drain, plus — for SPML — the reverse
  mapping that makes its MD dominate, Fig. 8).
* **MW (memory write) phase** — write the pages to the image.  With the
  ring-buffer techniques this is one batch of exactly the dirty pages,
  nearly constant time; with /proc it includes the pagemap walk, which is
  why the paper sees up to 26x MW improvement (Fig. 7).

The OoH patch also skips /proc's initialization pause: PML activation is
immediate and does not interfere with the tracked process (§IV-E item 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clock import World
from repro.core.costs import EV_DISK_WRITE, EV_TRACKING_ROUTINE
from repro.core.tracking import DirtyPageTracker, Technique, make_tracker
from repro.errors import CheckpointError
from repro.guest.kernel import GuestKernel
from repro.guest.process import Process
from repro.trackers.criu.images import CheckpointImage

__all__ = ["CriuPhaseTimes", "CriuReport", "Criu", "CriuSession"]


@dataclass
class CriuPhaseTimes:
    """Wall-clock (simulated) time spent in each checkpoint stage, us."""

    init_us: float = 0.0
    md_us: float = 0.0
    mw_us: float = 0.0
    freeze_us: float = 0.0
    total_us: float = 0.0


@dataclass
class CriuReport:
    technique: Technique
    phases: CriuPhaseTimes = field(default_factory=CriuPhaseTimes)
    rounds: int = 0
    pages_dumped: int = 0
    final_round_pages: int = 0
    #: Ring-buffer overflow losses observed by the tracking technique.
    #: A non-zero value means the image may miss dirtied pages and MUST
    #: be discarded by the caller.
    tracking_drops: int = 0


class Criu:
    """Checkpoint/restore for one guest kernel."""

    def __init__(
        self,
        kernel: GuestKernel,
        technique: Technique | str = Technique.PROC,
        disk_write_us_per_page: float | None = None,
    ) -> None:
        self.kernel = kernel
        self.technique = (
            Technique(technique) if isinstance(technique, str) else technique
        )
        params = kernel.costs.params
        self.disk_write_us_per_page = (
            disk_write_us_per_page
            if disk_write_us_per_page is not None
            else params.disk_write_us_per_page
        )

    # ------------------------------------------------------------------
    def _write_pages(self, process: Process, vpns: np.ndarray) -> np.ndarray:
        """Read page contents and charge the image write (C_p work)."""
        tokens = self.kernel.vm.mmu.read_page_contents(process.space.pt, vpns)
        us = float(vpns.size) * self.disk_write_us_per_page
        self.kernel.clock.charge(us, World.TRACKER, EV_DISK_WRITE, int(vpns.size))
        self.kernel.clock.count_only(EV_TRACKING_ROUTINE)
        return tokens

    def _collect(
        self,
        tracker: DirtyPageTracker,
        process: Process,
        report: CriuReport | None = None,
    ) -> np.ndarray:
        """Dirty VPNs restricted to currently-present pages."""
        dirty = tracker.collect()
        if report is not None:
            stats = getattr(tracker, "last_stats", None)
            if stats is not None:
                report.tracking_drops = int(stats.dropped)
        if dirty.size == 0:
            return dirty
        present = process.space.pt.present_mask(dirty)
        return dirty[present]

    # ------------------------------------------------------------------
    # monitored-dump API (what the paper's Fig. 7-9 experiments measure):
    # begin tracking early, let the application run, then dump the pages
    # dirtied since — MD/MW phase attribution per technique.
    # ------------------------------------------------------------------
    def begin(self, process: Process) -> "CriuSession":
        """Start dirty tracking on ``process`` for later dumps."""
        clock = self.kernel.clock
        t0 = clock.now_us
        tracker = make_tracker(self.technique, self.kernel, process)
        tracker.start()
        return CriuSession(
            criu=self, process=process, tracker=tracker,
            init_us=clock.now_us - t0,
        )

    # ------------------------------------------------------------------
    def checkpoint(
        self,
        process: Process,
        predump_rounds: int = 0,
        run_between_rounds=None,
    ) -> tuple[CheckpointImage, CriuReport]:
        """Checkpoint ``process``; optionally with iterative pre-dump.

        ``run_between_rounds()`` (if given) models the application running
        between pre-dump rounds; the final round freezes the process.
        """
        if predump_rounds < 0:
            raise CheckpointError("predump_rounds must be >= 0")
        if predump_rounds > 0 and run_between_rounds is None:
            raise CheckpointError("pre-dump requires run_between_rounds")
        clock = self.kernel.clock
        report = CriuReport(technique=self.technique)
        image = CheckpointImage.for_process(process)
        t_start = clock.now_us

        # ---- initialization: start tracking --------------------------
        t0 = clock.now_us
        tracker = make_tracker(self.technique, self.kernel, process)
        tracker.start()
        report.phases.init_us = clock.now_us - t0

        try:
            # ---- round 0: full dump of present pages ------------------
            mapped = process.space.mapped_vpns()
            t0 = clock.now_us
            tokens = self._write_pages(process, mapped)
            image.add_round(mapped, tokens)
            report.phases.mw_us += clock.now_us - t0
            report.pages_dumped += int(mapped.size)
            report.rounds += 1

            # ---- pre-dump rounds: dump while running ------------------
            for _ in range(predump_rounds):
                run_between_rounds()
                dirty = self._checkpoint_round(process, tracker, image, report)
                report.rounds += 1
                report.pages_dumped += int(dirty.size)

            # ---- final round: freeze, dump residue, thaw --------------
            t0 = clock.now_us
            self.kernel.stop_process(process)
            dirty = self._checkpoint_round(process, tracker, image, report)
            report.final_round_pages = int(dirty.size)
            report.pages_dumped += int(dirty.size)
            report.rounds += 1
            self.kernel.resume_process(process)
            report.phases.freeze_us = clock.now_us - t0
        finally:
            tracker.stop()

        report.phases.total_us = clock.now_us - t_start
        return image, report

    def _checkpoint_round(
        self,
        process: Process,
        tracker: DirtyPageTracker,
        image: CheckpointImage,
        report: CriuReport,
    ) -> np.ndarray:
        """One dump round; phase attribution depends on the technique."""
        clock = self.kernel.clock
        if self.technique in (Technique.SPML, Technique.EPML):
            # MD = OoH collection (SPML pays reverse mapping here).
            t0 = clock.now_us
            dirty = self._collect(tracker, process, report)
            report.phases.md_us += clock.now_us - t0
            t0 = clock.now_us
            tokens = self._write_pages(process, dirty)
            report.phases.mw_us += clock.now_us - t0
        else:
            # /proc (and ufd): write pages as the walk finds them — the
            # collection cost is part of the write phase (paper §VI-F.a).
            t0 = clock.now_us
            dirty = self._collect(tracker, process, report)
            tokens = self._write_pages(process, dirty)
            report.phases.mw_us += clock.now_us - t0
        image.add_round(dirty, tokens)
        return dirty


@dataclass
class CriuSession:
    """A monitored process awaiting incremental dumps."""

    criu: Criu
    process: Process
    tracker: DirtyPageTracker
    init_us: float
    image: CheckpointImage = field(init=False)
    dumps: list[CriuReport] = field(default_factory=list)
    _closed: bool = False

    def __post_init__(self) -> None:
        self.image = CheckpointImage.for_process(self.process)

    def dump(self, full: bool = False) -> CriuReport:
        """Freeze, dump (dirty pages, or everything if ``full``), thaw."""
        if self._closed:
            raise CheckpointError("dump on a finished CRIU session")
        kernel = self.criu.kernel
        clock = kernel.clock
        report = CriuReport(technique=self.criu.technique)
        report.phases.init_us = self.init_us if not self.dumps else 0.0
        t_start = clock.now_us
        kernel.stop_process(self.process)
        if full:
            t0 = clock.now_us
            vpns = self.process.space.mapped_vpns()
            tokens = self.criu._write_pages(self.process, vpns)
            self.image.add_round(vpns, tokens)
            report.phases.mw_us += clock.now_us - t0
            report.pages_dumped += int(vpns.size)
            # Reset the tracking interval so the next dump is incremental.
            self.tracker.collect()
        else:
            dirty = self.criu._checkpoint_round(
                self.process, self.tracker, self.image, report
            )
            report.pages_dumped += int(dirty.size)
        kernel.resume_process(self.process)
        report.rounds = 1
        report.phases.freeze_us = clock.now_us - t_start
        report.phases.total_us = clock.now_us - t_start + report.phases.init_us
        self.dumps.append(report)
        return report

    def finish(self) -> CheckpointImage:
        if not self._closed:
            self.tracker.stop()
            self._closed = True
        return self.image
