"""Checkpoint image format.

A simplified CRIU image set: process metadata, VMA records, and memory
images holding (VPN, content-token) pairs.  Iterative pre-dump produces a
*stack* of memory images; restore applies them oldest-first so later dumps
overwrite earlier page versions, exactly like CRIU's page-server images.

Images serialise to a single ``.npz`` file (:meth:`CheckpointImage.save` /
:meth:`CheckpointImage.load`), so checkpoints survive the process that
took them and can be restored into a different VM.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError
from repro.guest.process import Process

__all__ = ["VmaRecord", "MemoryImage", "CheckpointImage"]


@dataclass(frozen=True)
class VmaRecord:
    start_vpn: int
    n_pages: int
    name: str


@dataclass
class MemoryImage:
    """Pages captured by one dump round."""

    vpns: np.ndarray  # int64
    tokens: np.ndarray  # uint64 content tokens

    def __post_init__(self) -> None:
        self.vpns = np.asarray(self.vpns, dtype=np.int64)
        self.tokens = np.asarray(self.tokens, dtype=np.uint64)
        if self.vpns.shape != self.tokens.shape:
            raise CheckpointError("memory image vpns/tokens length mismatch")

    @property
    def n_pages(self) -> int:
        return int(self.vpns.size)


@dataclass
class CheckpointImage:
    """A complete checkpoint of one process."""

    pid: int
    name: str
    space_pages: int
    vmas: list[VmaRecord] = field(default_factory=list)
    #: Dump rounds in capture order (pre-dump rounds then the final dump).
    memory: list[MemoryImage] = field(default_factory=list)

    @classmethod
    def for_process(cls, process: Process) -> "CheckpointImage":
        return cls(
            pid=process.pid,
            name=process.name,
            space_pages=process.space.n_pages,
            vmas=[
                VmaRecord(v.start_vpn, v.n_pages, v.name)
                for v in process.space.vmas
            ],
        )

    def add_round(self, vpns: np.ndarray, tokens: np.ndarray) -> MemoryImage:
        img = MemoryImage(vpns, tokens)
        self.memory.append(img)
        return img

    def flatten(self) -> MemoryImage:
        """Latest version of every captured page (restore view)."""
        latest: dict[int, int] = {}
        toks: dict[int, np.uint64] = {}
        for img in self.memory:
            for v, t in zip(img.vpns, img.tokens):
                latest[int(v)] = 1
                toks[int(v)] = t
        vpns = np.array(sorted(latest), dtype=np.int64)
        tokens = np.array([toks[int(v)] for v in vpns], dtype=np.uint64)
        return MemoryImage(vpns, tokens)

    @property
    def total_pages_dumped(self) -> int:
        return sum(img.n_pages for img in self.memory)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Serialise to a single .npz image file."""
        meta = {
            "pid": self.pid,
            "name": self.name,
            "space_pages": self.space_pages,
            "vmas": [
                {"start_vpn": v.start_vpn, "n_pages": v.n_pages, "name": v.name}
                for v in self.vmas
            ],
            "n_rounds": len(self.memory),
        }
        arrays: dict[str, np.ndarray] = {
            "meta": np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            ).copy()
        }
        for i, img in enumerate(self.memory):
            arrays[f"round{i}_vpns"] = img.vpns
            arrays[f"round{i}_tokens"] = img.tokens
        np.savez_compressed(Path(path), **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "CheckpointImage":
        """Deserialise a .npz image file."""
        with np.load(Path(path)) as data:
            try:
                meta = json.loads(bytes(data["meta"]).decode("utf-8"))
            except (KeyError, ValueError) as exc:
                raise CheckpointError(f"corrupt checkpoint image: {exc}") from exc
            image = cls(
                pid=int(meta["pid"]),
                name=str(meta["name"]),
                space_pages=int(meta["space_pages"]),
                vmas=[
                    VmaRecord(int(v["start_vpn"]), int(v["n_pages"]),
                              str(v["name"]))
                    for v in meta["vmas"]
                ],
            )
            for i in range(int(meta["n_rounds"])):
                image.add_round(
                    data[f"round{i}_vpns"], data[f"round{i}_tokens"]
                )
        return image
