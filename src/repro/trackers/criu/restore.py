"""Checkpoint restore: rebuild a process from an image."""

from __future__ import annotations

from repro.errors import CheckpointError
from repro.guest.kernel import GuestKernel
from repro.guest.process import Process
from repro.trackers.criu.images import CheckpointImage

__all__ = ["restore"]


def restore(kernel: GuestKernel, image: CheckpointImage) -> Process:
    """Create a new process whose memory matches the checkpoint.

    Pages are demand-mapped by touching them, then their content tokens are
    written back from the flattened image (latest version of each page).
    """
    if not image.memory:
        raise CheckpointError("image has no memory rounds")
    proc = kernel.spawn(f"{image.name}:restored", n_pages=image.space_pages)
    for vma in image.vmas:
        new = proc.space.add_vma(vma.n_pages, vma.name)
        if new.start_vpn != vma.start_vpn:
            raise CheckpointError(
                f"VMA layout mismatch on restore: {new.start_vpn} != "
                f"{vma.start_vpn}"
            )
    flat = image.flatten()
    if flat.n_pages:
        kernel.access(proc, flat.vpns, True)  # populate mappings
        kernel.vm.mmu.write_page_contents(proc.space.pt, flat.vpns, flat.tokens)
    return proc
