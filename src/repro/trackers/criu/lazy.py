"""Lazy restore: CRIU's ``lazy-pages`` mode on userfaultfd MISSING.

The flip side of dirty tracking: instead of copying every image page up
front, the restored process starts immediately with an *empty* address
space registered with a userfaultfd in ``missing`` mode; a lazy-pages
daemon resolves each first touch by fetching that one page from the
checkpoint image.  Pages the process never touches are never copied —
restore latency becomes O(working set), not O(image).

This exercises the ufd miss path end-to-end and gives the examples a
second realistic userfaultfd consumer beyond write-protect tracking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clock import World
from repro.core.costs import EV_DISK_WRITE
from repro.errors import CheckpointError
from repro.guest.kernel import GuestKernel
from repro.guest.process import Process
from repro.guest.uffd import UfdMode, UserFaultFd
from repro.trackers.criu.images import CheckpointImage

__all__ = ["LazyRestoreStats", "LazyRestoredProcess", "lazy_restore"]


@dataclass
class LazyRestoreStats:
    image_pages: int = 0
    pages_fetched: int = 0

    @property
    def fetch_fraction(self) -> float:
        return self.pages_fetched / self.image_pages if self.image_pages else 0.0


@dataclass
class LazyRestoredProcess:
    process: Process
    uffd: UserFaultFd
    stats: LazyRestoreStats = field(default_factory=LazyRestoreStats)

    def finish(self) -> None:
        """Detach the lazy-pages daemon (remaining pages stay demand-zero)."""
        self.uffd.close()


class _LazyPagesDaemon:
    """Resolves MISSING faults from the image (a page-server stand-in)."""

    def __init__(
        self,
        kernel: GuestKernel,
        process: Process,
        page_tokens: dict[int, int],
        stats: LazyRestoreStats,
        fetch_us_per_page: float,
    ) -> None:
        self.kernel = kernel
        self.process = process
        self.page_tokens = page_tokens
        self.stats = stats
        self.fetch_us_per_page = fetch_us_per_page

    def on_dirty(self, vpns: np.ndarray) -> None:
        """Install image contents for freshly-resolved pages."""
        have = np.array(
            [v for v in vpns if int(v) in self.page_tokens], dtype=np.int64
        )
        if have.size == 0:
            return
        tokens = np.array(
            [self.page_tokens[int(v)] for v in have], dtype=np.uint64
        )
        self.kernel.vm.mmu.write_page_contents(
            self.process.space.pt, have, tokens
        )
        self.stats.pages_fetched += int(have.size)
        self.kernel.clock.charge(
            float(have.size) * self.fetch_us_per_page,
            World.TRACKER,
            EV_DISK_WRITE,
            int(have.size),
        )


def lazy_restore(
    kernel: GuestKernel,
    image: CheckpointImage,
    fetch_us_per_page: float | None = None,
) -> LazyRestoredProcess:
    """Restore ``image`` lazily; returns the runnable process.

    The process's pages materialise on first touch; consult ``stats`` for
    how much of the image was actually fetched.
    """
    if not image.memory:
        raise CheckpointError("image has no memory rounds")
    per_page = (
        fetch_us_per_page
        if fetch_us_per_page is not None
        else kernel.costs.params.disk_write_us_per_page
    )
    proc = kernel.spawn(f"{image.name}:lazy", n_pages=image.space_pages)
    for vma in image.vmas:
        new = proc.space.add_vma(vma.n_pages, vma.name)
        if new.start_vpn != vma.start_vpn:
            raise CheckpointError("VMA layout mismatch on lazy restore")
    flat = image.flatten()
    page_tokens = {int(v): int(t) for v, t in zip(flat.vpns, flat.tokens)}

    stats = LazyRestoreStats(image_pages=len(page_tokens))
    uffd = kernel.create_uffd(proc)
    for vma in proc.space.vmas:
        uffd.register(vma, UfdMode.MISSING)
    daemon = _LazyPagesDaemon(kernel, proc, page_tokens, stats, per_page)

    # Hook the daemon behind the ufd: whenever the kernel resolves a miss
    # through the uffd, the daemon overlays the image contents.
    original_deliver = uffd.deliver_miss_faults

    def deliver(vpns: np.ndarray, write_mask=None) -> None:
        original_deliver(vpns, write_mask)
        daemon.on_dirty(np.asarray(vpns, dtype=np.int64))

    uffd.deliver_miss_faults = deliver  # type: ignore[method-assign]
    return LazyRestoredProcess(process=proc, uffd=uffd, stats=stats)
