"""Use-after-free mitigation driven by dirty-page tracking.

The paper's introduction names "use-after-free vulnerability mitigation
systems" among the userspace dirty-tracking consumers (§I).  This module
implements the MarkUs-style scheme: ``free()`` *quarantines* an object
instead of recycling it, and memory is only released once a scan proves
no live object still points to it — turning dangling-pointer dereferences
into accesses to still-valid (never-recycled) memory.

The expensive part is the pointer scan.  The first reclamation cycle
scans every live object; afterwards, pointers can only have changed on
pages written since the previous scan, so each cycle re-scans exactly the
dirty pages the tracking technique reports (plus the known referrers) —
the same incremental structure as the Boehm mark phase, with the same
technique-dependent cost profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.clock import World
from repro.core.tracking import DirtyPageTracker, Technique, make_tracker
from repro.errors import GcError
from repro.guest.kernel import GuestKernel
from repro.trackers.boehm.heap import GcHeap

__all__ = ["UafCycleReport", "UafMitigator"]

EV_UAF_SCAN = "uaf_scan"


@dataclass
class UafCycleReport:
    index: int
    kind: str  # "full" | "incremental"
    pause_us: float
    n_scanned: int
    n_dirty_pages: int
    n_released: int
    quarantine_after: int


class UafMitigator:
    """Quarantine + incremental pointer scan over one GC heap."""

    def __init__(
        self,
        kernel: GuestKernel,
        heap: GcHeap,
        technique: Technique | str = Technique.PROC,
        scan_us_per_page: float = 2.0,
        scan_us_per_obj: float = 0.02,
    ) -> None:
        self.kernel = kernel
        self.heap = heap
        self.technique = (
            Technique(technique) if isinstance(technique, str) else technique
        )
        self.scan_us_per_page = scan_us_per_page
        self.scan_us_per_obj = scan_us_per_obj
        self._tracker: DirtyPageTracker | None = None
        self._quarantine: set[int] = set()
        #: src object -> quarantined targets found at its last scan.
        self._last_refs: dict[int, set[int]] = {}
        #: quarantined id -> number of known referrers.
        self._refcount: dict[int, int] = {}
        self._did_full = False
        self.cycles: list[UafCycleReport] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._tracker is not None:
            raise GcError("mitigator already started")
        kwargs = {}
        if self.technique is Technique.SPML:
            kwargs["reverse_map_cache"] = True
        self._tracker = make_tracker(
            self.technique, self.kernel, self.heap.process, **kwargs
        )
        self._tracker.start()

    def stop(self) -> None:
        if self._tracker is not None:
            self._tracker.stop()
            self._tracker = None

    def __enter__(self) -> "UafMitigator":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def qfree(self, ids: np.ndarray | list[int]) -> None:
        """free(): quarantine instead of recycling."""
        arr = np.asarray(ids, dtype=np.int64).ravel()
        if not self.heap.alive[arr].all():
            raise GcError("qfree of a dead object")
        for i in arr:
            i = int(i)
            if i in self._quarantine:
                raise GcError(f"double qfree of object {i}")
            self._quarantine.add(i)
        # Quarantined objects hold no outgoing references of interest.
        for i in arr:
            self._purge_referrer(int(i))

    @property
    def quarantine_size(self) -> int:
        return len(self._quarantine)

    def is_quarantined(self, obj_id: int) -> bool:
        return int(obj_id) in self._quarantine

    # ------------------------------------------------------------------
    def _purge_referrer(self, src: int) -> None:
        old = self._last_refs.pop(src, set())
        for t in old:
            self._refcount[t] = self._refcount.get(t, 1) - 1

    def _scan_objects(self, ids: np.ndarray) -> None:
        """Re-derive each object's quarantined targets from its edges."""
        for src in (int(i) for i in ids):
            if src in self._quarantine or not self.heap.alive[src]:
                continue
            targets = {
                int(t)
                for t in self.heap.out_neighbors(np.array([src]))
                if int(t) in self._quarantine
            }
            old = self._last_refs.get(src, set())
            for t in old - targets:
                self._refcount[t] = self._refcount.get(t, 1) - 1
            for t in targets - old:
                self._refcount[t] = self._refcount.get(t, 0) + 1
            if targets:
                self._last_refs[src] = targets
            else:
                self._last_refs.pop(src, None)

    def collect(self) -> UafCycleReport:
        """One reclamation cycle: scan, then release unreferenced memory."""
        if self._tracker is None:
            raise GcError("collect before start")
        clock = self.kernel.clock
        t0 = clock.now_us
        idx = len(self.cycles)
        dirty = self._tracker.collect()
        dirty = dirty[
            (dirty >= self.heap.vma.start_vpn) & (dirty < self.heap.vma.end_vpn)
        ]
        if not self._did_full:
            kind = "full"
            scan_ids = self.heap.live_ids()
            scan_pages = np.unique(self.heap.obj_page[scan_ids]) if (
                scan_ids.size
            ) else np.empty(0, dtype=np.int64)
            self._did_full = True
        else:
            kind = "incremental"
            scan_pages = dirty
            scan_ids = self.heap.objects_on_pages(scan_pages)
        present = self.heap.process.space.pt.present_mask(scan_pages) if (
            scan_pages.size
        ) else np.empty(0, dtype=bool)
        readable = scan_pages[present] if scan_pages.size else scan_pages
        if readable.size:
            self.kernel.access(self.heap.process, readable, False)
        clock.charge(
            scan_ids.size * self.scan_us_per_obj
            + scan_pages.size * self.scan_us_per_page,
            World.TRACKER,
            EV_UAF_SCAN,
            int(scan_ids.size),
        )
        self._scan_objects(scan_ids)

        # Release quarantined objects nobody references any more.
        releasable = [
            q for q in self._quarantine if self._refcount.get(q, 0) <= 0
        ]
        if releasable:
            self.heap.free_objects(np.asarray(releasable, dtype=np.int64))
            self._quarantine.difference_update(releasable)
            for q in releasable:
                self._refcount.pop(q, None)
        report = UafCycleReport(
            index=idx,
            kind=kind,
            pause_us=clock.now_us - t0,
            n_scanned=int(scan_ids.size),
            n_dirty_pages=int(dirty.size),
            n_released=len(releasable),
            quarantine_after=len(self._quarantine),
        )
        self.cycles.append(report)
        return report
