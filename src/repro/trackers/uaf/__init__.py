"""Use-after-free mitigation on dirty-page tracking (paper §I consumer)."""

from repro.trackers.uaf.mitigator import UafCycleReport, UafMitigator

__all__ = ["UafCycleReport", "UafMitigator"]
