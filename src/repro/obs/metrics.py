"""Counters and histograms aggregated alongside the trace.

The registry answers the questions the raw event stream makes expensive
(vmexit counts by reason, PML occupancy at flush, retry attempts) in O(1)
space regardless of run length.  Snapshots are deterministic: plain dicts
with sorted keys and integer/float values derived only from simulated
state, so ``--metrics`` output is as diffable as the trace itself.

Counter/histogram names are dot-paths (``vmexit.pml_full``,
``pml.occupancy_at_flush``); seams own their names the way they own
their ``EV_*`` clock event labels.
"""

from __future__ import annotations

import bisect

__all__ = ["Histogram", "MetricsRegistry", "DEFAULT_BOUNDS"]

#: Power-of-two bucket upper bounds, sized for PML/ring occupancies
#: (a 512-entry buffer lands in the first ten buckets).
DEFAULT_BOUNDS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
)


class Histogram:
    """Fixed-bound histogram: counts per bucket plus sum and count."""

    __slots__ = ("bounds", "bucket_counts", "count", "total")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.bounds = tuple(bounds)
        # One count per bound, plus the +inf overflow bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": {
                ("+inf" if i == len(self.bounds) else str(self.bounds[i])): n
                for i, n in enumerate(self.bucket_counts)
                if n
            },
        }


class MetricsRegistry:
    """Name -> counter/histogram store shared by every seam in a session."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + n

    def observe(
        self, name: str, value: float, bounds: tuple[float, ...] = DEFAULT_BOUNDS
    ) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(bounds)
        hist.observe(value)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        return {
            name: v
            for name, v in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def snapshot(self) -> dict:
        """Deterministic copy: sorted names, plain values."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }

    def render(self, title: str = "Metrics") -> str:
        """Human-readable summary table for ``--metrics`` output."""
        lines = [title, "-" * len(title)]
        for name, v in sorted(self._counters.items()):
            lines.append(f"  {name:<40} {v}")
        for name, h in sorted(self._histograms.items()):
            lines.append(
                f"  {name:<40} n={h.count} mean={h.mean:.1f} sum={h.total:.0f}"
            )
        if len(lines) == 2:
            lines.append("  (empty)")
        return "\n".join(lines)
