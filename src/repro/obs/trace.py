"""The trace session the instrumented seams consult.

Zero overhead when disabled: hooked modules guard every seam with
``if tracing.ACTIVE is not None`` — a module-attribute load plus an
identity check — and build event fields only inside the guard, so the
observability subsystem costs nothing (and changes no simulated result
bit) unless a session is activated.  Tests and the runner activate one
with::

    with TraceSession().active() as session:
        ...                      # seams emit into session
    session.trace.to_jsonl()     # deterministic, diffable artifact
    session.metrics.snapshot()   # counters + histograms

Setting ``REPRO_TRACE=1`` in the environment activates a process-wide
default session at import time (bounded buffer), which is how the CI
matrix leg keeps every seam exercised by the full test suite.  Only one
session is active per process at a time; nesting restores the previous
one on exit — exactly the :mod:`repro.faults.injector` discipline.

Emission is pure observation: a session never touches the simulated
clock, page tables, or buffers, which
``tests/obs/test_disabled_overhead.py`` proves differentially.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.obs.events import EventKind, TraceEvent
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "ACTIVE",
    "TraceBuffer",
    "TraceSession",
    "activate",
    "deactivate",
    "trace_enabled_by_env",
]

#: Buffer cap for the env-activated default session: large enough to hold
#: any single test's stream, bounded so a full suite cannot exhaust RAM.
ENV_SESSION_CAPACITY = 1 << 16


def trace_enabled_by_env() -> bool:
    """Process-wide default (``REPRO_TRACE=1`` opts in; default off)."""
    return os.environ.get("REPRO_TRACE", "0") not in ("0", "false", "no", "")


class TraceBuffer:
    """Ordered store of :class:`TraceEvent`, optionally capacity-bounded.

    When full, *new* events are counted in ``n_dropped`` instead of
    stored — keeping the retained prefix stable (a golden trace's head
    never silently shifts) and the overflow visible, mirroring the
    drop-and-count contract of :class:`~repro.core.ringbuffer.RingBuffer`.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"trace capacity must be > 0: {capacity}")
        self.capacity = capacity
        self._events: list[TraceEvent] = []
        self.n_dropped = 0

    def append(self, event: TraceEvent) -> None:
        if self.capacity is not None and len(self._events) >= self.capacity:
            self.n_dropped += 1
            return
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def by_kind(self, kind: EventKind) -> list[TraceEvent]:
        return [e for e in self._events if e.kind is kind]

    def kind_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self._events:
            out[e.kind.value] = out.get(e.kind.value, 0) + 1
        return dict(sorted(out.items()))

    # ------------------------------------------------------------------
    # export / import
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One canonical JSON object per line, trailing newline included."""
        return "".join(e.to_json() + "\n" for e in self._events)

    def write_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path

    @staticmethod
    def read_jsonl(path: str | Path) -> "TraceBuffer":
        buf = TraceBuffer()
        for line in Path(path).read_text().splitlines():
            if line:
                buf.append(TraceEvent.from_json(line))
        return buf


class TraceSession:
    """One trace buffer plus one metrics registry, emitted into together.

    ``detail=False`` suppresses the per-page payloads (the WRITE/COLLECT
    VPN lists), keeping long ``--metrics`` runs cheap while counters and
    histograms stay exact; tests use the default ``detail=True``.
    """

    def __init__(
        self, capacity: int | None = None, detail: bool = True
    ) -> None:
        self.trace = TraceBuffer(capacity)
        self.metrics = MetricsRegistry()
        self.detail = detail
        self._next_seq = 0

    def emit(self, kind: EventKind, **fields: object) -> TraceEvent:
        """Record one event; seq numbers are global to the session."""
        event = TraceEvent(seq=self._next_seq, kind=kind, fields=fields)
        self._next_seq += 1
        self.trace.append(event)
        return event

    @property
    def n_emitted(self) -> int:
        return self._next_seq

    def active(self) -> "_Activation":
        return _Activation(self)


#: The process-wide active session; ``None`` means tracing is off and
#: every instrumented seam behaves exactly as a build without it.
ACTIVE: TraceSession | None = None


def activate(session: TraceSession | None) -> TraceSession | None:
    """Install ``session`` as the active one; returns the previous one."""
    global ACTIVE
    prev = ACTIVE
    ACTIVE = session
    return prev


def deactivate() -> None:
    global ACTIVE
    ACTIVE = None


class _Activation:
    """Context manager installing one session, restoring the previous."""

    def __init__(self, session: TraceSession) -> None:
        self.session = session
        self._prev: TraceSession | None = None

    def __enter__(self) -> TraceSession:
        self._prev = activate(self.session)
        return self.session

    def __exit__(self, *exc: object) -> None:
        activate(self._prev)


# REPRO_TRACE=1 arms a default session at interpreter start so the whole
# test suite exercises the seams (CI matrix leg); the buffer is bounded
# and per-test sessions shadow it via the activation stack.
if trace_enabled_by_env():  # pragma: no cover - exercised by the CI leg
    ACTIVE = TraceSession(capacity=ENV_SESSION_CAPACITY)
