"""Trace/metrics observability: a zero-overhead-when-disabled instrument.

The subsystem has three parts, modeled on :mod:`repro.faults`:

* :mod:`repro.obs.events` — the typed event taxonomy (vmexit, pml_full,
  self_ipi, hypercall, retry, fallback_transition, tlb_flush, ring_drop,
  migration_round, write, collect, resync);
* :mod:`repro.obs.trace` — the session registry the instrumented seams
  consult (``tracing.ACTIVE is None`` when disabled, so the hooks are
  free) plus deterministic JSONL export;
* :mod:`repro.obs.metrics` — counters and histograms aggregated
  alongside the trace (vmexit counts by reason, PML occupancy at flush,
  retry attempts), surfaced by ``experiments/runner.py --metrics``.

Because the simulator is deterministic, a run's trace is a correctness
oracle: the golden-trace tests replay canonical runs byte-identically
and the property tests assert sequence invariants over randomized ones
(DESIGN.md §8).
"""

from repro.obs.events import EventKind, TraceEvent
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import (
    ACTIVE,
    TraceBuffer,
    TraceSession,
    activate,
    deactivate,
    trace_enabled_by_env,
)

__all__ = [
    "ACTIVE",
    "EventKind",
    "Histogram",
    "MetricsRegistry",
    "TraceBuffer",
    "TraceEvent",
    "TraceSession",
    "activate",
    "deactivate",
    "trace_enabled_by_env",
]
