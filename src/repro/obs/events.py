"""Typed trace events: the observability layer's vocabulary.

Every instrumented seam emits one of these kinds.  The taxonomy mirrors
the simulator's architectural boundaries (DESIGN.md §8): hardware
transitions (vmexit, pml_full, self_ipi, tlb_flush), software datapaths
(hypercall, ring_drop, retry), and tracker-level lifecycle (collect,
resync, fallback_transition, migration_round).

Events are deterministic by construction: fields carry only simulated
state (page numbers, counters, reasons), never host time or object
identities, so a run's event stream is a stable, diffable artifact —
the property the golden-trace tests rely on.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass

__all__ = ["EventKind", "TraceEvent", "emit_collect_stats"]


class EventKind(enum.Enum):
    """What happened at an instrumented seam (source in brackets)."""

    #: A vmexit was delivered to a root-mode handler [hw/cpu].
    VMEXIT = "vmexit"
    #: A PML buffer filled and was force-drained [hw/pml].
    PML_FULL = "pml_full"
    #: PML entries were discarded (no handler, or injected race) [hw/pml].
    PML_DROP = "pml_drop"
    #: A posted self-IPI was delivered / lost / delayed [hw/interrupts].
    SELF_IPI = "self_ipi"
    #: A hypercall reached the dispatch table [hypervisor/hypercalls].
    HYPERCALL = "hypercall"
    #: A transient failure triggered a backoff retry [retry].
    RETRY = "retry"
    #: The fallback chain degraded one step [core/techniques/fallback].
    FALLBACK_TRANSITION = "fallback_transition"
    #: A TLB was flushed whole [hw/tlb].
    TLB_FLUSH = "tlb_flush"
    #: A cross-vCPU TLB shootdown IPI was sent (SMP) [guest/kernel].
    TLB_SHOOTDOWN = "tlb_shootdown"
    #: A shared ring buffer lost its oldest entries [core/ringbuffer].
    RING_DROP = "ring_drop"
    #: One pre-copy round (or stop-and-copy) sent pages [hypervisor/migration].
    MIGRATION_ROUND = "migration_round"
    #: A batch of pages was charged to the transfer path [hypervisor/migration].
    MIGRATION_PAGE_SEND = "migration_page_send"
    #: A migration switched mode (pre-copy -> post-copy) [fleet/orchestrator].
    MIGRATION_MODE = "migration_mode"
    #: A flow moved pages across a simulated link [net/transport].
    NET_SEND = "net_send"
    #: A network fault site fired (drop / spike / partition) [net/transport].
    NET_FAULT = "net_fault"
    #: Post-copy destination pulled missing pages on fault [fleet/postcopy].
    POSTCOPY_PULL = "postcopy_pull"
    #: The orchestrator selected a destination host [fleet/orchestrator].
    FLEET_PLACEMENT = "fleet_placement"
    #: A page-access batch wrote these VPNs [hw/mmu].
    WRITE = "write"
    #: A tracker reported dirty VPNs [core/tracking].
    COLLECT = "collect"
    #: Per-collect OoH diagnostics [core/techniques/{spml,epml}].
    COLLECT_STATS = "collect_stats"
    #: Detected loss forced a conservative resync [core/ooh].
    RESYNC = "resync"
    #: The balloon reclaimed cold frames from a guest [fleet/economics].
    BALLOON_INFLATE = "balloon_inflate"
    #: The balloon re-backed guest frames on refault [fleet/economics].
    BALLOON_DEFLATE = "balloon_deflate"
    #: A guest touched a reclaimed page; contents refaulted in [fleet/economics].
    BALLOON_REFAULT = "balloon_refault"
    #: A host's reclaim controller ran to restore free-frame slack [fleet/economics].
    RECLAIM_PRESSURE = "reclaim_pressure"
    #: A snapshot's contents were CoW-mapped over a region [serverless].
    SNAPSHOT_MAP = "snapshot_map"
    #: An instance extracted its byte-exact dirty diff [serverless].
    SNAPSHOT_DIFF = "snapshot_diff"
    #: A batch of diffs was merged into a snapshot [serverless].
    SNAPSHOT_MERGE = "snapshot_merge"


@dataclass(frozen=True)
class TraceEvent:
    """One emitted event: a global sequence number, a kind, and fields.

    Ordering is by ``seq`` alone — the trace has no timestamps, because
    time attribution already lives in :class:`~repro.core.clock.SimClock`
    and duplicating it would couple trace identity to float formatting.
    """

    seq: int
    kind: EventKind
    fields: dict

    def to_json(self) -> str:
        """Canonical single-line JSON: sorted keys, no whitespace."""
        obj = {"seq": self.seq, "kind": self.kind.value, **self.fields}
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_json(line: str) -> "TraceEvent":
        obj = json.loads(line)
        seq = obj.pop("seq")
        kind = EventKind(obj.pop("kind"))
        return TraceEvent(seq=int(seq), kind=kind, fields=obj)


#: CollectStats fields mirrored into COLLECT_STATS events.  Declared here
#: (duck-typed) rather than importing the dataclass: ``core.ooh`` imports
#: the obs package, so the dependency must stay one-directional.
_COLLECT_STAT_FIELDS = (
    "n_entries",
    "n_vpns",
    "n_unresolved",
    "dropped",
    "n_resyncs",
    "n_retries",
    "n_recovered_ipis",
    "n_lost_vmexits",
)


def emit_collect_stats(session, technique: str, stats) -> None:
    """Emit one COLLECT_STATS event mirroring an OoH ``CollectStats``."""
    fields = {name: int(getattr(stats, name)) for name in _COLLECT_STAT_FIELDS}
    fields["resynced"] = bool(stats.resynced)
    session.emit(EventKind.COLLECT_STATS, technique=technique, **fields)
    session.metrics.inc(f"collect_stats.{technique}.entries", fields["n_entries"])
    session.metrics.observe(
        f"collect_stats.{technique}.n_entries_dist", fields["n_entries"]
    )
