"""Typed fault sites and seed-driven fault plans.

A :class:`FaultPlan` names which hardware/hypervisor seams misbehave and
at what rate; building it yields a :class:`~repro.faults.injector.FaultInjector`
whose per-site RNG streams are derived from ``seed`` alone, so a plan
replays the exact same fault sequence on every run regardless of which
other sites are enabled (each site owns an independent stream).
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass

__all__ = ["FaultSite", "FaultSpec", "FaultPlan"]


class FaultSite(enum.Enum):
    """The seams the injector can perturb (paper components in brackets)."""

    #: A PML entry is lost in the buffer-full race window (§II-B circuit).
    PML_ENTRY_DROP = "pml_entry_drop"
    #: The EPML buffer-full posted self-IPI is never delivered (§IV-D).
    LOST_SELF_IPI = "lost_self_ipi"
    #: The self-IPI is deferred until the next interrupt/flush.
    DELAYED_SELF_IPI = "delayed_self_ipi"
    #: A hypercall fails with a transient errno (EAGAIN) before dispatch.
    HYPERCALL_TRANSIENT = "hypercall_transient"
    #: The shared ring buffer loses its oldest entries (consumer lag).
    RING_OVERFLOW = "ring_overflow"
    #: A PML-full vmexit is not delivered; the drained batch vanishes.
    VMEXIT_DROP = "vmexit_drop"
    #: The frame allocator transiently refuses an allocation.
    FRAME_EXHAUSTION = "frame_exhaustion"
    #: The simulated network drops pages in flight (retransmitted).
    NET_DROP = "net_drop"
    #: One transfer sees a multiplied propagation latency.
    NET_LATENCY_SPIKE = "net_latency_spike"
    #: The link is partitioned; the transfer backs off and retries.
    NET_PARTITION = "net_partition"


@dataclass(frozen=True)
class FaultSpec:
    """One site's firing behaviour inside a plan.

    ``rate`` is the per-opportunity (or, for entry-drop sites, per-entry)
    firing probability; ``skip_first`` opportunities never fire (lets a
    plan spare setup phases); ``max_fires`` caps total fires (None =
    unlimited).
    """

    site: FaultSite
    rate: float
    max_fires: int | None = None
    skip_first: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1]: {self.rate}")
        if self.skip_first < 0:
            raise ValueError(f"skip_first must be >= 0: {self.skip_first}")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError(f"max_fires must be >= 0: {self.max_fires}")


def site_seed(seed: int, site: FaultSite) -> int:
    """Stable per-site RNG seed (crc32, not hash(): PYTHONHASHSEED-proof)."""
    return (seed & 0xFFFFFFFF) ^ zlib.crc32(site.value.encode())


class FaultPlan:
    """An immutable set of :class:`FaultSpec` plus the master seed."""

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...],
                 seed: int = 0) -> None:
        sites = [s.site for s in specs]
        if len(set(sites)) != len(sites):
            raise ValueError("duplicate fault site in plan")
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)

    def build(self):
        """Fresh injector with rewound RNG streams."""
        from repro.faults.injector import FaultInjector

        return FaultInjector(self)

    def active(self):
        """Context manager: build and activate a fresh injector."""
        return self.build().active()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{s.site.value}@{s.rate}" for s in self.specs)
        return f"FaultPlan(seed={self.seed}, [{body}])"
