"""Dirty-page completeness auditing against the oracle.

The paper's evaluation question 3 asks to what extent each technique
captures *all* dirty pages.  Under fault injection the answer is allowed
to be "not all" — but only **loudly**: every lost page must either be
recovered (resync, retry, fallback, lost-IPI sweep) or show up in a
surfaced counter the consumer can act on (ring ``total_dropped``, PML
circuit drop counters, swallowed-vmexit count, lost-IPI count).  A page
that is missing with every counter at zero is a *silent* loss — the one
failure mode a checkpoint/GC consumer cannot defend against — and the
auditor raises :class:`CompletenessViolation` on it.

Usage::

    auditor = CompletenessAuditor(kernel, process, tracker)
    auditor.start()
    ... workload ... auditor.collect() ...
    report = auditor.stop()       # raises on silent loss
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tracking import DirtyPageTracker, Technique, make_tracker
from repro.errors import ReproError
from repro.guest.kernel import GuestKernel
from repro.guest.process import Process

__all__ = ["AuditReport", "CompletenessAuditor", "CompletenessViolation"]


class CompletenessViolation(ReproError):
    """A dirty page was lost with no surfaced counter explaining it."""


@dataclass
class AuditReport:
    """Outcome of one audited tracker run."""

    technique: str
    n_truth: int = 0
    n_captured: int = 0
    n_missed: int = 0
    capture_rate: float = 1.0
    #: Loss-surfacing counters (name -> count since :meth:`start`); any
    #: positive entry legitimises a miss.
    surfaced: dict[str, int] = field(default_factory=dict)
    #: Recovery activity (resyncs, retries, recovered IPIs, fallbacks) —
    #: diagnostic only, not loss surfacing.
    recovery: dict[str, int] = field(default_factory=dict)
    silent_loss: bool = False
    missed_vpns: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    @property
    def total_surfaced(self) -> int:
        return sum(self.surfaced.values())


class CompletenessAuditor:
    """Cross-check one tracker run against the oracle's ground truth.

    Runs the tracker and an :class:`~repro.core.techniques.oracle.OracleTracker`
    side by side over the same process; on :meth:`stop` the union of
    tracker collections must cover the union of oracle collections unless
    a loss-surfacing counter moved.
    """

    def __init__(
        self,
        kernel: GuestKernel,
        process: Process,
        tracker: DirtyPageTracker,
        raise_on_silent_loss: bool = True,
    ) -> None:
        self.kernel = kernel
        self.process = process
        self.tracker = tracker
        self.raise_on_silent_loss = raise_on_silent_loss
        self._oracle = make_tracker(Technique.ORACLE, kernel, process)
        self._truth: set[int] = set()
        self._captured: set[int] = set()
        self._marks: dict[str, int] = {}
        self._running = False

    # ------------------------------------------------------------------
    def _counters(self) -> dict[str, int]:
        # SMP: loss can surface on any vCPU, so sum across all of them.
        vcpus = self.kernel.vm.vcpus
        return {
            "pml_hyp_dropped": sum(vc.pml.n_hyp_dropped for vc in vcpus),
            "pml_guest_dropped": sum(vc.pml.n_guest_dropped for vc in vcpus),
            "pml_hyp_injected_drops": sum(
                vc.pml.n_hyp_injected_drops for vc in vcpus
            ),
            "pml_guest_injected_drops": sum(
                vc.pml.n_guest_injected_drops for vc in vcpus
            ),
            "vmexits_dropped": sum(vc.n_dropped_vmexits for vc in vcpus),
            "self_ipis_lost": sum(vc.interrupts.n_lost for vc in vcpus),
        }

    def _surfaced_since_start(self) -> dict[str, int]:
        now = self._counters()
        out = {k: now[k] - self._marks[k] for k in now}
        stats = getattr(self.tracker, "last_stats", None)
        out["tracker_dropped"] = int(getattr(stats, "dropped", 0) or 0)
        return out

    def _recovery_stats(self) -> dict[str, int]:
        stats = getattr(self.tracker, "last_stats", None)
        return {
            "n_resyncs": int(getattr(stats, "n_resyncs", 0) or 0),
            "n_retries": int(getattr(stats, "n_retries", 0) or 0),
            "n_recovered_ipis": int(getattr(stats, "n_recovered_ipis", 0) or 0),
            "n_fallbacks": int(getattr(self.tracker, "n_fallbacks", 0) or 0),
        }

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._marks = self._counters()
        self._oracle.start()
        self.tracker.start()
        # Flush anything the tracker's own start dirtied so both sides
        # observe the same interval from here on.
        self._oracle.collect()
        self._running = True

    def collect(self) -> np.ndarray:
        """One audited collection; returns the tracker's answer."""
        got = self.tracker.collect()
        truth = self._oracle.collect()
        self._captured.update(int(v) for v in got)
        self._truth.update(int(v) for v in truth)
        return got

    def stop(self) -> AuditReport:
        """Final collection + verdict; raises on silent loss."""
        if not self._running:
            raise ReproError("auditor stop() before start()")
        self.collect()
        # Tracker stats become unreadable after stop (attachment gone):
        # take the verdict inputs first.
        surfaced = self._surfaced_since_start()
        recovery = self._recovery_stats()
        self.tracker.stop()
        self._oracle.stop()
        self._running = False

        missed = np.array(
            sorted(self._truth - self._captured), dtype=np.int64
        )
        n_truth = len(self._truth)
        silent = bool(missed.size) and not any(
            v > 0 for v in surfaced.values()
        )
        report = AuditReport(
            technique=self.tracker.technique.value,
            n_truth=n_truth,
            n_captured=len(self._captured & self._truth),
            n_missed=int(missed.size),
            capture_rate=(
                len(self._captured & self._truth) / n_truth if n_truth else 1.0
            ),
            surfaced=surfaced,
            recovery=recovery,
            silent_loss=silent,
            missed_vpns=missed,
        )
        if silent and self.raise_on_silent_loss:
            raise CompletenessViolation(
                f"{report.technique}: {report.n_missed} dirty pages lost "
                f"with every loss counter at zero (first few: "
                f"{missed[:8].tolist()})"
            )
        return report
