"""Deterministic fault injection and the dirty-page completeness auditor.

The subsystem has three parts:

* :mod:`repro.faults.plan` — typed fault sites and seed-driven plans;
* :mod:`repro.faults.injector` — the registry the hooked seams consult
  (``injector.ACTIVE is None`` when disabled, so the hooks are free);
* :mod:`repro.faults.auditor` — cross-checks a tracker run against the
  oracle and raises if any dirty page was lost *silently* (neither
  recovered by resync/retry/fallback nor surfaced in a counter).

The auditor is imported lazily (module ``__getattr__``): the hooked
hardware modules import this package at interpreter start, and the
auditor pulls in the tracking stack, which would cycle back into them.
"""

from repro.faults.injector import ACTIVE, FaultInjector, activate, deactivate
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec

__all__ = [
    "ACTIVE",
    "FaultInjector",
    "FaultPlan",
    "FaultSite",
    "FaultSpec",
    "activate",
    "deactivate",
    "CompletenessAuditor",
    "CompletenessViolation",
    "AuditReport",
]

_LAZY = {"CompletenessAuditor", "CompletenessViolation", "AuditReport"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.faults import auditor as _auditor

        return getattr(_auditor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
