"""The fault-injector registry the hardware/hypervisor seams consult.

Zero overhead when disabled: hooked modules guard every site with
``if injector.ACTIVE is not None`` — a module-attribute load plus an
identity check — so the fault subsystem costs nothing (and changes no
simulated result bit) unless a plan is activated.  Tests and experiments
activate a plan with::

    with plan.active() as inj:
        ...            # faults fire deterministically from the plan seed
    inj.stats()        # opportunities/fires per site

Only one injector is active per process at a time (experiments drive one
stack per run); nesting restores the previous one on exit.
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import FaultPlan, FaultSite, FaultSpec, site_seed

__all__ = ["ACTIVE", "FaultInjector", "activate", "deactivate"]

#: The process-wide active injector; ``None`` means fault injection is off
#: and every hooked seam behaves exactly as on main.
ACTIVE: "FaultInjector | None" = None


def activate(inj: "FaultInjector | None") -> "FaultInjector | None":
    """Install ``inj`` as the active injector; returns the previous one."""
    global ACTIVE
    prev = ACTIVE
    ACTIVE = inj
    return prev


def deactivate() -> None:
    global ACTIVE
    ACTIVE = None


class _SiteState:
    __slots__ = ("spec", "rng", "opportunities", "fires")

    def __init__(self, spec: FaultSpec, seed: int) -> None:
        self.spec = spec
        self.rng = np.random.default_rng(site_seed(seed, spec.site))
        self.opportunities = 0
        self.fires = 0


class FaultInjector:
    """Deterministic per-site firing decisions for one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._sites: dict[FaultSite, _SiteState] = {
            spec.site: _SiteState(spec, plan.seed) for spec in plan.specs
        }

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def should_fire(self, site: FaultSite) -> bool:
        """One opportunity at ``site``; True if the fault fires."""
        st = self._sites.get(site)
        if st is None:
            return False
        st.opportunities += 1
        spec = st.spec
        if st.opportunities <= spec.skip_first:
            return False
        if spec.max_fires is not None and st.fires >= spec.max_fires:
            return False
        if spec.rate <= 0.0:
            return False
        fire = spec.rate >= 1.0 or st.rng.random() < spec.rate
        if fire:
            st.fires += 1
        return fire

    def drop_count(self, site: FaultSite, n: int) -> int:
        """How many of ``n`` entries to drop (per-entry probability)."""
        st = self._sites.get(site)
        if st is None or n <= 0:
            return 0
        st.opportunities += 1
        spec = st.spec
        if st.opportunities <= spec.skip_first or spec.rate <= 0.0:
            return 0
        k = int(st.rng.binomial(n, spec.rate))
        if spec.max_fires is not None:
            k = min(k, spec.max_fires - st.fires)
            k = max(k, 0)
        st.fires += k
        return k

    def drop_entries(self, site: FaultSite, values: np.ndarray) -> np.ndarray:
        """Return ``values`` with a deterministic subset dropped."""
        k = self.drop_count(site, int(values.size))
        if k == 0:
            return values
        st = self._sites[site]
        keep = np.ones(values.size, dtype=bool)
        keep[st.rng.choice(values.size, size=k, replace=False)] = False
        return values[keep]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def fires(self, site: FaultSite) -> int:
        st = self._sites.get(site)
        return st.fires if st is not None else 0

    def total_fires(self) -> int:
        return sum(st.fires for st in self._sites.values())

    def stats(self) -> dict[str, dict[str, int]]:
        return {
            site.value: {"opportunities": st.opportunities, "fires": st.fires}
            for site, st in self._sites.items()
        }

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    def active(self) -> "_Activation":
        return _Activation(self)


class _Activation:
    """Context manager installing one injector, restoring the previous."""

    def __init__(self, inj: FaultInjector) -> None:
        self.injector = inj
        self._prev: FaultInjector | None = None

    def __enter__(self) -> FaultInjector:
        self._prev = activate(self.injector)
        return self.injector

    def __exit__(self, *exc: object) -> None:
        activate(self._prev)
