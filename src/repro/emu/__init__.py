"""Reference emulator for differential validation (the BOCHS role).

The paper could not run EPML on real hardware, so it implemented the
extension in the BOCHS instruction-level emulator and cross-validated
measurements between the real-machine SPML prototype and the emulated
environment (§IV-E, §VI-B: N collected with a 2% difference).

This package plays the same role for the simulator: a deliberately
simple, one-write-at-a-time reference implementation of the PML/EPML
datapath, written independently of the vectorised fast path.  The
differential tests feed identical access streams to both and require
identical logs, buffer-full events, and dirty-bit outcomes.
"""

from repro.emu.refpml import RefMachine

__all__ = ["RefMachine"]
