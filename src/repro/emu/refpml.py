"""Instruction-level reference model of the PML/EPML datapath.

Processes one access at a time with plain Python data structures — no
numpy batching, no shared code with :mod:`repro.hw` — so that the
differential tests in ``tests/integration/test_differential_emulator.py``
exercise genuinely independent logic, the way the paper's BOCHS build is
independent of their Xen build.

Semantics modelled (and nothing else):

* guest PTE present/writable/dirty bits; EPT dirty bits;
* PML: while hypervisor logging is enabled, a write that flips an EPT
  dirty bit 0 -> 1 appends the GPFN to a ``capacity``-entry buffer whose
  index counts down from ``capacity - 1``; buffer full => one full event
  and a drain;
* EPML: while guest logging is enabled, a write that flips a *PTE* dirty
  bit 0 -> 1 appends the VPN to the guest-level buffer; full => one
  self-IPI-style event and a drain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RefMachine"]


@dataclass
class _RefBuffer:
    capacity: int
    entries: list[int] = field(default_factory=list)
    drained: list[list[int]] = field(default_factory=list)
    full_events: int = 0

    @property
    def index(self) -> int:
        return self.capacity - 1 - len(self.entries)

    def log(self, value: int) -> None:
        self.entries.append(value)
        if len(self.entries) == self.capacity:
            self.full_events += 1
            self.drained.append(self.entries)
            self.entries = []

    def all_logged(self) -> list[int]:
        out: list[int] = []
        for chunk in self.drained:
            out.extend(chunk)
        out.extend(self.entries)
        return out


class RefMachine:
    """One process, one vCPU, one EPT — scalar reference semantics."""

    def __init__(self, n_pages: int, capacity: int = 512) -> None:
        self.n_pages = n_pages
        self.capacity = capacity
        # Guest PTE state per VPN.
        self.present: dict[int, bool] = {}
        self.writable: dict[int, bool] = {}
        self.pte_dirty: dict[int, bool] = {}
        # Identity GVA->GPA mapping (differential tests configure the fast
        # simulator the same way via allocation order).
        self.gpfn_of: dict[int, int] = {}
        self._next_gpfn = 0
        # EPT dirty bits per GPFN.
        self.ept_dirty: dict[int, bool] = {}
        # Logging state.
        self.hyp_enabled = False
        self.guest_enabled = False
        self.hyp_buffer = _RefBuffer(capacity)
        self.guest_buffer = _RefBuffer(capacity)
        self.n_minor_faults = 0

    # ------------------------------------------------------------------
    def _ensure_mapped(self, vpn: int, write: bool) -> None:
        if not self.present.get(vpn, False):
            self.present[vpn] = True
            self.writable[vpn] = write
            self.pte_dirty[vpn] = False
            self.gpfn_of[vpn] = self._next_gpfn
            self._next_gpfn += 1
            self.n_minor_faults += 1
        elif write and not self.writable.get(vpn, False):
            self.writable[vpn] = True  # COW-equivalent resolution

    def access(self, vpn: int, write: bool) -> None:
        """One load or store to one page."""
        if not 0 <= vpn < self.n_pages:
            raise ValueError(f"vpn out of range: {vpn}")
        self._ensure_mapped(vpn, write)
        if not write:
            return
        # Guest PTE dirty transition -> EPML guest-level log.  A missing
        # key means clean, same as ept_dirty: clear_pte_dirty resets the
        # whole dict rather than writing False per key.
        if not self.pte_dirty.get(vpn, False):
            self.pte_dirty[vpn] = True
            if self.guest_enabled:
                self.guest_buffer.log(vpn)
        # EPT dirty transition -> hypervisor-level log.
        gpfn = self.gpfn_of[vpn]
        if not self.ept_dirty.get(gpfn, False):
            self.ept_dirty[gpfn] = True
            if self.hyp_enabled:
                self.hyp_buffer.log(gpfn)

    # ------------------------------------------------------------------
    def clear_ept_dirty(self) -> None:
        self.ept_dirty.clear()

    def clear_pte_dirty(self) -> None:
        # Reset, don't rewrite: looping every mapped VPN to store False
        # kept the dict at full footprint and made each re-arm O(mapped);
        # an empty dict means "all clean" (access treats a missing key as
        # a clean bit) and costs O(1) no matter how large the footprint.
        self.pte_dirty.clear()

    def drain_guest(self) -> list[int]:
        out = self.guest_buffer.all_logged()
        self.guest_buffer.drained.clear()
        self.guest_buffer.entries.clear()
        return out

    def drain_hyp(self) -> list[int]:
        out = self.hyp_buffer.all_logged()
        self.hyp_buffer.drained.clear()
        self.hyp_buffer.entries.clear()
        return out
