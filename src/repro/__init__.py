"""Out of Hypervisor (OoH) — reproduction of Bitchebe & Tchana, SC 2022.

Efficient dirty-page tracking in userspace using (simulated) hardware
virtualization features: Intel PML exposed to guest processes via two OoH
designs, Shadow PML (SPML) and Extended PML (EPML), compared against the
Linux ``/proc`` soft-dirty and ``userfaultfd`` baselines, integrated into
a CRIU-style checkpointer and a Boehm-style garbage collector.

Typical use::

    from repro import build_stack, make_tracker, Technique

    stack = build_stack(vm_mb=256)
    proc = stack.kernel.spawn("app", mem_mb=32)
    proc.space.add_vma(1024)
    with make_tracker(Technique.EPML, stack.kernel, proc) as tracker:
        stack.kernel.access(proc, [1, 2, 3], True)
        dirty = tracker.collect()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results of every table and figure.
"""

from repro.core.clock import SimClock, World
from repro.core.costs import CostModel, CostParams
from repro.core.formulas import FormulaEstimate, accuracy_pct, estimate
from repro.core.ooh import OohAttachment, OohKind, OohLib, OohModule
from repro.core.ringbuffer import RingBuffer
from repro.core.tracking import DirtyPageTracker, Technique, make_tracker
from repro.experiments.harness import (
    build_stack,
    run_boehm,
    run_criu,
    run_microbench,
)
from repro.guest.kernel import GuestKernel
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.migration import LiveMigration, MigrationReport
from repro.trackers.boehm import BoehmGc, GcHeap, GcParams
from repro.trackers.criu import Criu, CriuSession, iterative_predump, restore
from repro.workloads import (
    ArrayParser,
    FlatContext,
    GcContext,
    MemoryContext,
    Workload,
    make_workload,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # core
    "SimClock",
    "World",
    "CostModel",
    "CostParams",
    "RingBuffer",
    "Technique",
    "DirtyPageTracker",
    "make_tracker",
    "OohKind",
    "OohLib",
    "OohModule",
    "OohAttachment",
    "FormulaEstimate",
    "estimate",
    "accuracy_pct",
    # stack
    "Hypervisor",
    "GuestKernel",
    "LiveMigration",
    "MigrationReport",
    "build_stack",
    # trackers
    "Criu",
    "CriuSession",
    "iterative_predump",
    "restore",
    "BoehmGc",
    "GcHeap",
    "GcParams",
    # workloads
    "Workload",
    "MemoryContext",
    "FlatContext",
    "GcContext",
    "ArrayParser",
    "make_workload",
    # experiment runners
    "run_microbench",
    "run_criu",
    "run_boehm",
]
