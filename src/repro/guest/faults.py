"""Guest kernel page-fault handling.

Implements :class:`repro.hw.mmu.FaultHandlers` for one process:

* **minor faults** — demand paging: allocate a guest frame, map the PTE.
  Same cost for every tracking technique (they all page in the same way),
  so it cancels out of overhead comparisons but keeps runs honest.
* **soft-dirty write-protect faults** — the /proc mechanism: re-set
  soft-dirty + writable, charge the M5 per-fault kernel cost plus a
  context switch (Formula 4's ``I(C_/proc, C_tked)``).
* **ufd faults** — routed to the process's registered
  :class:`~repro.guest.uffd.UserFaultFd`.
"""

from __future__ import annotations

import numpy as np

from repro.core.clock import SimClock, World
from repro.core.costs import (
    EV_CONTEXT_SWITCH,
    EV_PF_KERNEL,
    EV_PF_MINOR,
    CostModel,
)
from repro.errors import GuestError
from repro.guest.process import Process
from repro.guest.uffd import UfdMode, UserFaultFd
from repro.hw.memory import FrameAllocator
from repro.hw.pagetable import PTE_SOFT_DIRTY, PTE_WRITABLE, PTE_ZERO
from repro.retry import Retrier

__all__ = ["ProcessFaultHandler"]


class ProcessFaultHandler:
    """FaultHandlers implementation bound to one process."""

    def __init__(
        self,
        clock: SimClock,
        costs: CostModel,
        process: Process,
        guest_frames: FrameAllocator,
    ) -> None:
        self.clock = clock
        self.costs = costs
        self.process = process
        self.guest_frames = guest_frames
        self.n_minor = 0
        self.n_soft_dirty = 0
        # Transient allocator exhaustion behaves like direct reclaim:
        # back off (charged to kernel time) and retry the allocation.
        self._retrier = Retrier(clock, World.KERNEL)

    @property
    def n_alloc_retries(self) -> int:
        return self._retrier.n_retries

    # -- FaultHandlers protocol ----------------------------------------
    def handle_minor_fault(
        self, vpns: np.ndarray, write_mask: np.ndarray | None = None
    ) -> None:
        n = int(len(vpns))
        if n == 0:
            return
        vpns = np.asarray(vpns, dtype=np.int64)
        if write_mask is None:
            write_mask = np.ones(n, dtype=bool)
        write_mask = np.asarray(write_mask, dtype=bool)
        gpfns = self._retrier.call(lambda: self.guest_frames.alloc(n))
        pt = self.process.space.pt
        # Write faults install writable, soft-dirty mappings; read faults
        # install clean read-only zero-page mappings (Linux semantics —
        # the page only becomes dirty when actually written).
        wv, rv = vpns[write_mask], vpns[~write_mask]
        if wv.size:
            pt.map(wv, gpfns[write_mask], writable=True, soft_dirty=True)
        if rv.size:
            pt.map(rv, gpfns[~write_mask], writable=False, soft_dirty=False)
            pt.set_flags(rv, PTE_ZERO)
        self.n_minor += n
        self.clock.charge(
            n * self.costs.params.pf_minor_us, World.KERNEL, EV_PF_MINOR, n
        )

    def handle_ufd_miss_fault(
        self, vpns: np.ndarray, write_mask: np.ndarray | None = None
    ) -> np.ndarray:
        uffd = self.process.uffd
        if not isinstance(uffd, UserFaultFd) or not (uffd.mode & UfdMode.MISSING):
            return np.empty(0, dtype=np.int64)
        vpns = np.asarray(vpns, dtype=np.int64)
        if write_mask is None:
            write_mask = np.ones(vpns.shape, dtype=bool)
        write_mask = np.asarray(write_mask, dtype=bool)
        mask = uffd.miss_registered_mask(vpns)
        handled = vpns[mask]
        if handled.size:
            # The tracker resolves the miss (UFFDIO_COPY for writes,
            # UFFDIO_ZEROPAGE for reads): page becomes present; we
            # install the mapping on its behalf.
            self.handle_minor_fault(handled, write_mask[mask])
            self.n_minor -= int(handled.size)  # counted as ufd, not minor
            uffd.deliver_miss_faults(handled, write_mask[mask])
        return handled

    def handle_wp_fault(self, vpns: np.ndarray, ufd_mask: np.ndarray) -> None:
        vpns = np.asarray(vpns, dtype=np.int64)
        ufd_mask = np.asarray(ufd_mask, dtype=bool)
        ufd_vpns = vpns[ufd_mask]
        rest = vpns[~ufd_mask]
        if ufd_vpns.size:
            uffd = self.process.uffd
            if not isinstance(uffd, UserFaultFd):
                raise GuestError(
                    f"UFD-protected pages but no userfaultfd on pid "
                    f"{self.process.pid}"
                )
            uffd.deliver_write_faults(ufd_vpns)
        if rest.size:
            pt = self.process.space.pt
            # COW break of a zero-page mapping: the normal anonymous-write
            # path, identical under every technique.
            zero = pt.flag_mask(rest, PTE_ZERO)
            cow_vpns = rest[zero]
            if cow_vpns.size:
                self._handle_cow(cow_vpns)
            sd_vpns = rest[~zero]
            if sd_vpns.size:
                self._handle_soft_dirty(sd_vpns)

    # -- internals -------------------------------------------------------
    def _handle_cow(self, vpns: np.ndarray) -> None:
        n = int(vpns.size)
        pt = self.process.space.pt
        pt.set_flags(vpns, PTE_SOFT_DIRTY | PTE_WRITABLE)
        pt.clear_flags(vpns, PTE_ZERO)
        self.clock.charge(
            n * self.costs.params.pf_minor_us, World.KERNEL, EV_PF_MINOR, n
        )

    def _handle_soft_dirty(self, vpns: np.ndarray) -> None:
        n = int(vpns.size)
        pt = self.process.space.pt
        pt.set_flags(vpns, PTE_SOFT_DIRTY | PTE_WRITABLE)
        self.n_soft_dirty += n
        unit = self.costs.pf_kernel_unit_us(self.process.space.n_pages)
        self.clock.charge(unit * n, World.KERNEL, EV_PF_KERNEL, n)
        self.clock.charge(
            n * self.costs.params.context_switch_us,
            World.KERNEL,
            EV_CONTEXT_SWITCH,
            n,
        )
