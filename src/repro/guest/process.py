"""Guest processes and address spaces.

A process owns one :class:`AddressSpace`: a dense, VMA-partitioned virtual
range backed by a guest page table and a TLB.  The tracked workloads of the
paper allocate one big anonymous region (Listing 1's array, a GC heap, a KV
store's arena), so address spaces are sized at creation and grown by
mapping further VMAs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, InvalidAddressError
from repro.hw.pagetable import PageTable
from repro.hw.tlb import Tlb

__all__ = ["Vma", "AddressSpace", "ProcessState", "Process"]


@dataclass(frozen=True)
class Vma:
    """One virtual memory area: [start_vpn, start_vpn + n_pages)."""

    start_vpn: int
    n_pages: int
    name: str = "anon"

    def __post_init__(self) -> None:
        if self.n_pages <= 0 or self.start_vpn < 0:
            raise ConfigurationError(f"bad VMA: {self}")

    @property
    def end_vpn(self) -> int:
        return self.start_vpn + self.n_pages

    def vpns(self) -> np.ndarray:
        return np.arange(self.start_vpn, self.end_vpn, dtype=np.int64)


class AddressSpace:
    """Virtual address space with VMA bookkeeping.

    SMP: translations for the same address space may be cached by every
    vCPU's TLB, so the space owns one :class:`~repro.hw.tlb.Tlb` per vCPU
    (``tlbs[k]`` belongs to vCPU ``k``).  ``tlb`` aliases ``tlbs[0]`` for
    the single-vCPU configuration.
    """

    def __init__(self, n_pages: int, n_vcpus: int = 1) -> None:
        self.pt = PageTable(n_pages)
        self.tlbs = [Tlb(n_pages, vcpu_id=i) for i in range(n_vcpus)]
        self.vmas: list[Vma] = []

    @property
    def tlb(self) -> Tlb:
        """vCPU 0's TLB — single-vCPU compatibility alias."""
        return self.tlbs[0]

    def invalidate_all(self, vpns) -> None:
        """Invalidate ``vpns`` in every vCPU's TLB, without IPI costs.

        This is the zero-cost variant used by the oracle tracker; real
        trackers go through the guest kernel's TLB-shootdown path, which
        charges cross-vCPU IPIs.
        """
        for tlb in self.tlbs:
            tlb.invalidate(vpns)

    @property
    def n_pages(self) -> int:
        return self.pt.n_pages

    def add_vma(self, n_pages: int, name: str = "anon") -> Vma:
        """Reserve the next free virtual range (like mmap with addr=NULL)."""
        start = self.vmas[-1].end_vpn if self.vmas else 0
        if start + n_pages > self.n_pages:
            raise InvalidAddressError(
                f"address space exhausted: need {n_pages} pages at vpn {start}, "
                f"space has {self.n_pages}"
            )
        vma = Vma(start, n_pages, name)
        self.vmas.append(vma)
        return vma

    def vma_containing(self, vpn: int) -> Vma:
        for vma in self.vmas:
            if vma.start_vpn <= vpn < vma.end_vpn:
                return vma
        raise InvalidAddressError(f"VPN {vpn} not in any VMA")

    def mapped_vpns(self) -> np.ndarray:
        return self.pt.mapped_vpns()

    @property
    def rss_pages(self) -> int:
        """Resident pages (present mappings)."""
        return int(self.mapped_vpns().size)


class ProcessState(enum.Enum):
    RUNNABLE = "runnable"
    RUNNING = "running"
    STOPPED = "stopped"  # paused (e.g. by CRIU during dump)
    DEAD = "dead"


@dataclass
class Process:
    """One guest process."""

    pid: int
    name: str
    space: AddressSpace
    state: ProcessState = ProcessState.RUNNABLE
    #: Set while a userfaultfd object is registered on this process.
    uffd: object | None = None
    #: Monotonic count of schedule-in events (context-switch accounting).
    n_scheduled_in: int = 0
    n_scheduled_out: int = 0
    metadata: dict = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash(self.pid)
