"""userfaultfd emulation (the paper's *ufd* baseline).

Semantics follow Linux's userfaultfd(2) as the paper uses it (§III-A):

* a tracker creates a :class:`UserFaultFd` and registers a VMA range in
  ``missing`` and/or ``write_protect`` mode;
* ``write_protect`` arms UFD write protection on the range's PTEs
  (UFFDIO_WRITEPROTECT) — a subsequent write faults, *suspends the
  faulting thread*, and delivers the fault to the tracker, which resolves
  it by write-unprotecting the page (and waking the thread);
* ``missing`` mode delivers first-touch faults the same way (UFFDIO_COPY
  resolves them).

Cost accounting reproduces the paper's split of M6 (page-fault handling in
userspace): a kernel share equal to the kernel-space fault path (M5 curve)
charged to the kernel world, and the dominant remainder charged to the
tracker world — §III-A measures ~33.6 ms kernel vs ~3,383 ms tracker for
1 GB.  Two extra user/kernel transitions (M1) model the world switches.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.clock import SimClock, World
from repro.core.costs import (
    EV_CONTEXT_SWITCH,
    EV_PF_USER,
    EV_UFD_REGISTER,
    EV_UFD_WAKE,
    EV_UFD_WRITE_PROTECT,
    CostModel,
)
from repro.errors import TrackingError
from repro.guest.process import Process, Vma
from repro.hw.pagetable import PTE_UFD_WP, PTE_WRITABLE, PTE_ZERO

__all__ = ["UfdMode", "UserFaultFd"]


class UfdMode(enum.Flag):
    MISSING = enum.auto()
    WRITE_PROTECT = enum.auto()


class UserFaultFd:
    """One userfaultfd object bound to a process."""

    def __init__(
        self,
        clock: SimClock,
        costs: CostModel,
        process: Process,
        kernel=None,
    ) -> None:
        if process.uffd is not None:
            raise TrackingError(f"process {process.pid} already has a userfaultfd")
        self.clock = clock
        self.costs = costs
        self.process = process
        #: Owning guest kernel; when set, arming write protection uses the
        #: SMP-correct TLB-shootdown path (every vCPU may cache a stale
        #: writable translation).
        self.kernel = kernel
        self.mode = UfdMode(0)
        self._registered = np.zeros(process.space.n_pages, dtype=bool)
        self._dirty: list[np.ndarray] = []
        #: Userspace miss handlers run after each resolved MISSING batch,
        #: in registration order — the seam demand-paging consumers
        #: (post-copy pull, balloon refault) hang their content install
        #: on.  They run before the MMU completes the triggering access,
        #: so a write access still lands on top of the installed content
        #: (UFFDIO_COPY ordering).
        self.miss_resolvers: list = []
        self.n_faults = 0
        process.uffd = self

    # ------------------------------------------------------------------
    # ioctl-style API used by the tracker
    # ------------------------------------------------------------------
    def register(self, vma: Vma, mode: UfdMode) -> None:
        """UFFDIO_REGISTER on a VMA range."""
        self.mode |= mode
        self._registered[vma.start_vpn:vma.end_vpn] = True
        self.clock.charge(
            self.costs.params.ufd_register_us, World.TRACKER, EV_UFD_REGISTER
        )

    def write_protect(self, vpns: np.ndarray | None = None) -> None:
        """UFFDIO_WRITEPROTECT: arm WP on registered pages (M2)."""
        if not self.mode & UfdMode.WRITE_PROTECT:
            raise TrackingError("write_protect requires WRITE_PROTECT mode")
        pt = self.process.space.pt
        if vpns is None:
            vpns = np.nonzero(self._registered)[0].astype(np.int64)
        else:
            vpns = np.asarray(vpns, dtype=np.int64)
            if not self._registered[vpns].all():
                raise TrackingError("write_protect outside registered range")
        present = pt.present_mask(vpns)
        armed = vpns[present]
        pt.set_flags(armed, PTE_UFD_WP)
        pt.clear_flags(armed, PTE_WRITABLE)
        if self.kernel is not None:
            self.kernel.tlb_shootdown(self.process, armed)
        else:
            self.process.space.tlb.invalidate(armed)
        self.clock.charge(
            self.costs.ufd_write_protect_us(max(int(vpns.size), 1)),
            World.TRACKER,
            EV_UFD_WRITE_PROTECT,
        )

    def read_dirty(self) -> np.ndarray:
        """Drain VPNs whose write faults the tracker has resolved."""
        if not self._dirty:
            return np.empty(0, dtype=np.int64)
        out = np.unique(np.concatenate(self._dirty))
        self._dirty.clear()
        return out

    def close(self) -> None:
        pt = self.process.space.pt
        armed = pt.vpns_with_flag(PTE_UFD_WP)
        pt.clear_flags(armed, PTE_UFD_WP)
        pt.set_flags(armed, PTE_WRITABLE)
        self.process.uffd = None

    # ------------------------------------------------------------------
    # fault delivery (called by the guest kernel's fault path)
    # ------------------------------------------------------------------
    def miss_registered_mask(self, vpns: np.ndarray) -> np.ndarray:
        if not self.mode & UfdMode.MISSING:
            return np.zeros(len(vpns), dtype=bool)
        return self._registered[np.asarray(vpns, dtype=np.int64)]

    def deliver_write_faults(self, vpns: np.ndarray) -> None:
        """Faulting thread suspended; tracker resolves and wakes it."""
        self._handle_faults(vpns)
        pt = self.process.space.pt
        pt.clear_flags(vpns, PTE_UFD_WP | PTE_ZERO)
        pt.set_flags(vpns, PTE_WRITABLE)
        self._dirty.append(np.asarray(vpns, dtype=np.int64).copy())

    def deliver_miss_faults(
        self, vpns: np.ndarray, write_mask: np.ndarray | None = None
    ) -> None:
        """Tracker resolves missing pages: UFFDIO_COPY for write faults
        (page counts dirty), UFFDIO_ZEROPAGE for read faults (clean; if
        the region is also write-protect-registered, the zero page stays
        armed so the eventual first write is still caught)."""
        vpns = np.asarray(vpns, dtype=np.int64)
        if write_mask is None:
            write_mask = np.ones(vpns.shape, dtype=bool)
        write_mask = np.asarray(write_mask, dtype=bool)
        self._handle_faults(vpns)
        written = vpns[write_mask]
        if written.size:
            self._dirty.append(written.copy())
        zeroed = vpns[~write_mask]
        if zeroed.size and (self.mode & UfdMode.WRITE_PROTECT):
            pt = self.process.space.pt
            pt.set_flags(zeroed, PTE_UFD_WP)
            pt.clear_flags(zeroed, PTE_WRITABLE | PTE_ZERO)
        for resolver in list(self.miss_resolvers):
            resolver(vpns, write_mask)

    def add_miss_resolver(self, resolver) -> None:
        """Register a userspace miss handler: ``resolver(vpns, write_mask)``
        runs after each MISSING batch is mapped (see ``miss_resolvers``)."""
        self.miss_resolvers.append(resolver)

    def remove_miss_resolver(self, resolver) -> None:
        if resolver in self.miss_resolvers:
            self.miss_resolvers.remove(resolver)

    def _handle_faults(self, vpns: np.ndarray) -> None:
        n = int(len(vpns))
        if n == 0:
            return
        self.n_faults += n
        mem_pages = self.process.space.n_pages
        total_unit = self.costs.pf_user_unit_us(mem_pages)
        kernel_unit = min(self.costs.pf_kernel_unit_us(mem_pages), total_unit)
        # Kernel share of the fault path.
        self.clock.charge(kernel_unit * n, World.KERNEL, EV_PF_USER, n)
        # Userspace (tracker) share: the dominant term of M6.
        self.clock.charge(
            (total_unit - kernel_unit) * n, World.TRACKER, EV_PF_USER, 0
        )
        # kernel -> tracker -> kernel world transitions per fault.
        self.clock.charge(
            2 * n * self.costs.params.context_switch_us,
            World.KERNEL,
            EV_CONTEXT_SWITCH,
            2 * n,
        )
        # Wake of the suspended faulting thread.
        self.clock.charge(
            n * self.costs.params.ufd_wake_us, World.TRACKER, EV_UFD_WAKE, n
        )
