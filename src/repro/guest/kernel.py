"""The guest kernel: processes, memory management, fault plumbing.

One :class:`GuestKernel` runs inside each :class:`~repro.hypervisor.vm.Vm`.
It exposes the two entry points workloads drive:

* :meth:`access` — run a page-access batch through the MMU with this
  process's page table and fault handlers;
* :meth:`compute` — account CPU time the workload spends *not* touching
  new pages (its own arithmetic), which also advances the scheduler and
  thereby generates the context switches that SPML/EPML hook.

It also owns the /proc interface, the IDT, and userfaultfd creation, and
offers a zero-cost access-listener hook used by the oracle technique.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.calibration import PAGES_PER_MB
from repro.core.clock import SimClock, World
from repro.core.costs import EV_COMPUTE, CostModel
from repro.errors import GuestError
from repro.guest.faults import ProcessFaultHandler
from repro.guest.idt import Idt
from repro.guest.process import AddressSpace, Process, ProcessState
from repro.guest.procfs import ProcFs
from repro.guest.scheduler import DEFAULT_SWITCH_INTERVAL_US, Scheduler
from repro.guest.uffd import UserFaultFd
from repro.hw.mmu import MmuResult
from repro.hypervisor.vm import Vm

__all__ = ["GuestKernel"]

AccessListener = Callable[[Process, MmuResult], None]


class GuestKernel:
    """Linux-like kernel for one VM."""

    def __init__(
        self,
        vm: Vm,
        switch_interval_us: float = DEFAULT_SWITCH_INTERVAL_US,
    ) -> None:
        self.vm = vm
        self.clock: SimClock = vm.clock
        self.costs: CostModel = vm.costs
        self.procfs = ProcFs(self.clock, self.costs)
        self.idt = Idt(vm.vcpu)
        self.scheduler = Scheduler(self.clock, self.costs, switch_interval_us)
        self.processes: dict[int, Process] = {}
        self._fault_handlers: dict[int, ProcessFaultHandler] = {}
        self._access_listeners: list[AccessListener] = []
        self._next_pid = 1

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------
    def spawn(
        self,
        name: str,
        mem_mb: float | None = None,
        n_pages: int | None = None,
    ) -> Process:
        """Create a process with an address space of the given size."""
        if (mem_mb is None) == (n_pages is None):
            raise GuestError("specify exactly one of mem_mb / n_pages")
        pages = n_pages if n_pages is not None else int(round(mem_mb * PAGES_PER_MB))
        pid = self._next_pid
        self._next_pid += 1
        proc = Process(pid=pid, name=name, space=AddressSpace(pages))
        self.processes[pid] = proc
        self._fault_handlers[pid] = ProcessFaultHandler(
            self.clock, self.costs, proc, self.vm.guest_frames
        )
        return proc

    def exit_process(self, process: Process) -> None:
        process.state = ProcessState.DEAD
        process.space.tlb.flush()
        freed = process.space.pt.unmap(process.space.mapped_vpns())
        if freed.size:
            self.vm.guest_frames.free(freed)
        self.processes.pop(process.pid, None)
        self._fault_handlers.pop(process.pid, None)
        self.scheduler.reset(process)

    def process_by_pid(self, pid: int) -> Process:
        try:
            return self.processes[pid]
        except KeyError:
            raise GuestError(f"no such pid: {pid}") from None

    def fault_handler(self, process: Process) -> ProcessFaultHandler:
        return self._fault_handlers[process.pid]

    # ------------------------------------------------------------------
    # execution entry points
    # ------------------------------------------------------------------
    def access(
        self,
        process: Process,
        vpns: np.ndarray | list[int],
        write: np.ndarray | bool,
    ) -> MmuResult:
        """Run a page-access batch for ``process``."""
        if process.state is ProcessState.DEAD:
            raise GuestError(f"access by dead process {process.pid}")
        if process.state is ProcessState.STOPPED:
            raise GuestError(f"access by stopped process {process.pid}")
        handler = self._fault_handlers[process.pid]
        result = self.vm.mmu.access(
            process.space.pt, process.space.tlb, vpns, write, handler
        )
        for listener in self._access_listeners:
            listener(process, result)
        return result

    def access_subpage(
        self, process: Process, vpn: int, subpage: int, write: bool = True
    ) -> bool:
        """Access one 128-byte sub-page; returns False on an SPP block.

        The page-level walk (faults, dirty bits, PML) happens first; if
        the VM has sub-page permissions enabled and the write hits a
        write-protected sub-page, the CPU raises an SPP-induced vmexit
        and the access does not complete (OoH-SPP, paper §III-D).
        """
        from repro.hw.cpu import ExitReason

        spp = self.vm.spp
        if write and spp is not None:
            gpfn_arr = process.space.pt.gpfn[vpn:vpn + 1]
            gpfn = int(gpfn_arr[0]) if gpfn_arr.size and gpfn_arr[0] >= 0 else None
            if gpfn is None:
                # Demand-page first so the sub-page check sees a mapping.
                self.access(process, [vpn], False)
                gpfn = int(process.space.pt.gpfn[vpn])
            if not spp.check_write(gpfn, subpage):
                self.vm.vcpu.vmexit(
                    ExitReason.SPP_VIOLATION, (process.pid, vpn, subpage)
                )
                return False
        self.access(process, [vpn], write)
        return True

    def compute(
        self, process: Process, us: float, world: World = World.TRACKED
    ) -> None:
        """Account workload CPU time and drive the scheduler."""
        if us < 0:
            raise GuestError(f"negative compute time: {us}")
        if process.state is ProcessState.DEAD:
            raise GuestError(f"compute by dead process {process.pid}")
        self.clock.charge(us, world, EV_COMPUTE)
        self.scheduler.notify_runtime(process, us)

    # ------------------------------------------------------------------
    # services
    # ------------------------------------------------------------------
    def create_uffd(self, process: Process) -> UserFaultFd:
        return UserFaultFd(self.clock, self.costs, process)

    def add_access_listener(self, listener: AccessListener) -> None:
        self._access_listeners.append(listener)

    def remove_access_listener(self, listener: AccessListener) -> None:
        if listener in self._access_listeners:
            self._access_listeners.remove(listener)

    # ------------------------------------------------------------------
    # process control (used by CRIU)
    # ------------------------------------------------------------------
    def stop_process(self, process: Process) -> None:
        if process.state is ProcessState.DEAD:
            raise GuestError("cannot stop a dead process")
        process.state = ProcessState.STOPPED

    def resume_process(self, process: Process) -> None:
        if process.state is not ProcessState.STOPPED:
            raise GuestError("resume of a process that is not stopped")
        process.state = ProcessState.RUNNABLE
