"""The guest kernel: processes, memory management, fault plumbing.

One :class:`GuestKernel` runs inside each :class:`~repro.hypervisor.vm.Vm`.
It exposes the two entry points workloads drive:

* :meth:`access` — run a page-access batch through the MMU with this
  process's page table and fault handlers;
* :meth:`compute` — account CPU time the workload spends *not* touching
  new pages (its own arithmetic), which also advances the scheduler and
  thereby generates the context switches that SPML/EPML hook.

It also owns the /proc interface, the per-vCPU IDTs, and userfaultfd
creation, and offers a zero-cost access-listener hook used by the oracle
technique.

SMP: every access batch executes on the vCPU the scheduler currently
assigns the process to — faults, PML logging, and TLB fills all happen on
that vCPU.  Permission changes (clear_refs, ufd write-protect, PTE
dirty-bit clears) must invalidate *every* vCPU's cached translations, so
the kernel implements the classic TLB-shootdown protocol: invalidate
locally, then IPI each remote vCPU that may hold a stale entry
(:meth:`tlb_shootdown` / :meth:`tlb_flush_all`).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.calibration import PAGES_PER_MB
from repro.core.clock import SimClock, World
from repro.core.costs import EV_COMPUTE, CostModel
from repro.errors import GuestError
from repro.guest.faults import ProcessFaultHandler
from repro.guest.idt import Idt
from repro.guest.plan import AccessPlan, PlanSegment
from repro.guest.process import AddressSpace, Process, ProcessState
from repro.guest.procfs import ProcFs
from repro.guest.scheduler import DEFAULT_SWITCH_INTERVAL_US, Scheduler
from repro.guest.uffd import UserFaultFd
from repro.hw.interrupts import VECTOR_TLB_SHOOTDOWN
from repro.hw.mmu import MmuResult
from repro.hypervisor.vm import Vm
from repro.obs import trace as otr
from repro.obs.events import EventKind

__all__ = ["GuestKernel"]

AccessListener = Callable[[Process, MmuResult], None]


class GuestKernel:
    """Linux-like kernel for one VM."""

    def __init__(
        self,
        vm: Vm,
        switch_interval_us: float = DEFAULT_SWITCH_INTERVAL_US,
    ) -> None:
        self.vm = vm
        self.clock: SimClock = vm.clock
        self.costs: CostModel = vm.costs
        self.procfs = ProcFs(self.clock, self.costs, kernel=self)
        self.idts = [Idt(vc) for vc in vm.vcpus]
        self.scheduler = Scheduler(
            self.clock, self.costs, switch_interval_us, n_vcpus=vm.n_vcpus
        )
        self.processes: dict[int, Process] = {}
        self._fault_handlers: dict[int, ProcessFaultHandler] = {}
        self._access_listeners: list[AccessListener] = []
        #: pid -> vpns of the access batch currently inside the MMU.
        #: Consumers that unmap pages from *inside* a fault resolution
        #: (the balloon's refault-triggered reclaim) must not touch the
        #: batch the fused access will still complete.
        self._active_access: dict[int, np.ndarray] = {}
        self._next_pid = 1
        #: Per-vCPU queues of (tlb, vpns-or-None) shootdown work; drained
        #: by the VECTOR_TLB_SHOOTDOWN handler on the target vCPU (None
        #: means full flush).  Delivery is synchronous, so a queue never
        #: outlives the tlb_shootdown/tlb_flush_all call that filled it.
        self._pending_shootdowns: list[list] = [[] for _ in vm.vcpus]
        for k, idt in enumerate(self.idts):
            idt.register(VECTOR_TLB_SHOOTDOWN, self._make_shootdown_handler(k))

    @property
    def idt(self) -> Idt:
        """vCPU 0's IDT — single-vCPU compatibility alias."""
        return self.idts[0]

    def _make_shootdown_handler(self, vcpu_id: int) -> Callable[[int], None]:
        def handle(_vector: int) -> None:
            pending = self._pending_shootdowns[vcpu_id]
            while pending:
                tlb, vpns = pending.pop(0)
                if vpns is None:
                    tlb.flush()
                else:
                    tlb.invalidate(vpns)

        return handle

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------
    def spawn(
        self,
        name: str,
        mem_mb: float | None = None,
        n_pages: int | None = None,
    ) -> Process:
        """Create a process with an address space of the given size."""
        if (mem_mb is None) == (n_pages is None):
            raise GuestError("specify exactly one of mem_mb / n_pages")
        pages = n_pages if n_pages is not None else int(round(mem_mb * PAGES_PER_MB))
        pid = self._next_pid
        self._next_pid += 1
        proc = Process(
            pid=pid, name=name, space=AddressSpace(pages, n_vcpus=self.vm.n_vcpus)
        )
        self.processes[pid] = proc
        self._fault_handlers[pid] = ProcessFaultHandler(
            self.clock, self.costs, proc, self.vm.guest_frames
        )
        return proc

    def exit_process(self, process: Process) -> None:
        process.state = ProcessState.DEAD
        self.tlb_flush_all(process)
        freed = process.space.pt.unmap(process.space.mapped_vpns())
        if freed.size:
            self.vm.guest_frames.free(freed)
        self.processes.pop(process.pid, None)
        self._fault_handlers.pop(process.pid, None)
        self.scheduler.reset(process)

    def process_by_pid(self, pid: int) -> Process:
        try:
            return self.processes[pid]
        except KeyError:
            raise GuestError(f"no such pid: {pid}") from None

    def fault_handler(self, process: Process) -> ProcessFaultHandler:
        return self._fault_handlers[process.pid]

    # ------------------------------------------------------------------
    # execution entry points
    # ------------------------------------------------------------------
    def access(
        self,
        process: Process,
        vpns: np.ndarray | list[int],
        write: np.ndarray | bool,
    ) -> MmuResult:
        """Run a page-access batch for ``process``.

        The batch executes on the vCPU the scheduler currently assigns the
        process to: faults, PML logging, and the TLB refill all land on
        that vCPU's structures.
        """
        if process.state is ProcessState.DEAD:
            raise GuestError(f"access by dead process {process.pid}")
        if process.state is ProcessState.STOPPED:
            raise GuestError(f"access by stopped process {process.pid}")
        handler = self._fault_handlers[process.pid]
        k = self.scheduler.vcpu_of(process)
        self._active_access[process.pid] = np.asarray(vpns, dtype=np.int64)
        try:
            result = self.vm.mmu.access(
                process.space.pt,
                process.space.tlbs[k],
                vpns,
                write,
                handler,
                pml=self.vm.vcpus[k].pml,
            )
        finally:
            self._active_access.pop(process.pid, None)
        for listener in self._access_listeners:
            listener(process, result)
        return result

    def active_access_vpns(self, process: Process) -> np.ndarray:
        """VPNs of ``process``'s access batch currently inside the MMU
        (empty outside an access) — pages a mid-fault reclaimer must
        leave mapped."""
        got = self._active_access.get(process.pid)
        if got is None:
            return np.empty(0, dtype=np.int64)
        return got

    def access_plan(
        self,
        process: Process,
        plan: AccessPlan | list,
    ) -> list[MmuResult]:
        """Execute a compiled :class:`~repro.guest.plan.AccessPlan`.

        Semantically identical to issuing the plan's ops one by one
        through :meth:`access` / :meth:`compute` — same op order, same
        scheduler driving, same per-batch listener notifications — but
        with the per-call overhead (state checks, vCPU lookup, handler
        resolution) paid once per plan instead of once per batch, and
        with segment-level walk-cache replay in the MMU
        (:meth:`repro.hw.mmu.Mmu.access_segment`).

        ``plan`` may also be a plain list of ``(vpns, write)`` batches,
        which is wrapped as a transient single-segment plan.

        The executing vCPU is re-resolved after any compute charge that
        fired context switches, since quantum expiry rotates the process
        to the next vCPU on SMP configurations.
        """
        if isinstance(plan, list):
            plan = AccessPlan.from_batches(plan)
        if process.state is ProcessState.DEAD:
            raise GuestError(f"access by dead process {process.pid}")
        if process.state is ProcessState.STOPPED:
            raise GuestError(f"access by stopped process {process.pid}")
        handler = self._fault_handlers[process.pid]
        mmu = self.vm.mmu
        scheduler = self.scheduler
        listeners = self._access_listeners
        clock = self.clock
        pt = process.space.pt
        tlbs = process.space.tlbs
        vcpus = self.vm.vcpus
        k = scheduler.vcpu_of(process)
        results: list[MmuResult] = []
        for item in plan.items:
            if isinstance(item, PlanSegment):
                rs = mmu.access_segment(
                    pt, tlbs[k], item, handler, pml=vcpus[k].pml
                )
                if listeners:
                    for r in rs:
                        for listener in listeners:
                            listener(process, r)
                results.extend(rs)
            else:
                clock.charge(item, World.TRACKED, EV_COMPUTE)
                if scheduler.notify_runtime(process, item):
                    k = scheduler.vcpu_of(process)
        return results

    def access_subpage(
        self, process: Process, vpn: int, subpage: int, write: bool = True
    ) -> bool:
        """Access one 128-byte sub-page; returns False on an SPP block.

        The page-level walk (faults, dirty bits, PML) happens first; if
        the VM has sub-page permissions enabled and the write hits a
        write-protected sub-page, the CPU raises an SPP-induced vmexit
        and the access does not complete (OoH-SPP, paper §III-D).
        """
        from repro.hw.cpu import ExitReason

        spp = self.vm.spp
        if write and spp is not None:
            gpfn_arr = process.space.pt.gpfn[vpn:vpn + 1]
            gpfn = int(gpfn_arr[0]) if gpfn_arr.size and gpfn_arr[0] >= 0 else None
            if gpfn is None:
                # Demand-page first so the sub-page check sees a mapping.
                self.access(process, [vpn], False)
                gpfn = int(process.space.pt.gpfn[vpn])
            if not spp.check_write(gpfn, subpage):
                cur = self.vm.vcpus[self.scheduler.vcpu_of(process)]
                cur.vmexit(
                    ExitReason.SPP_VIOLATION, (process.pid, vpn, subpage)
                )
                return False
        self.access(process, [vpn], write)
        return True

    def compute(
        self, process: Process, us: float, world: World = World.TRACKED
    ) -> None:
        """Account workload CPU time and drive the scheduler."""
        if us < 0:
            raise GuestError(f"negative compute time: {us}")
        if process.state is ProcessState.DEAD:
            raise GuestError(f"compute by dead process {process.pid}")
        self.clock.charge(us, world, EV_COMPUTE)
        self.scheduler.notify_runtime(process, us)

    # ------------------------------------------------------------------
    # TLB shootdowns (SMP)
    # ------------------------------------------------------------------
    def tlb_shootdown(self, process: Process, vpns: np.ndarray | list[int]) -> int:
        """Invalidate ``vpns`` on every vCPU caching them; returns the
        number of remote vCPUs IPI'd.

        Classic protocol: invalidate the initiating vCPU's TLB directly,
        then send a shootdown IPI to each *remote* vCPU that may hold one
        of the translations (filtered on its TLB state, as Linux filters
        on ``mm_cpumask``).  Shootdown IPIs are reliable — the initiator
        spins until acked — so they use the non-droppable delivery path.
        """
        vpns = np.asarray(vpns, dtype=np.int64).ravel()
        initiator = self.scheduler.vcpu_of(process)
        tlbs = process.space.tlbs
        tlbs[initiator].invalidate(vpns)
        targets = [
            k
            for k in range(len(tlbs))
            if k != initiator and vpns.size and tlbs[k].cached_any(vpns)
        ]
        for k in targets:
            self._pending_shootdowns[k].append((tlbs[k], vpns))
            self.vm.vcpus[k].interrupts.ipi(VECTOR_TLB_SHOOTDOWN)
        if otr.ACTIVE is not None and targets:
            otr.ACTIVE.emit(
                EventKind.TLB_SHOOTDOWN,
                initiator=initiator,
                targets=targets,
                n_vpns=int(vpns.size),
            )
            otr.ACTIVE.metrics.inc("tlb.shootdowns")
            otr.ACTIVE.metrics.inc("tlb.shootdown_ipis", len(targets))
        return len(targets)

    def tlb_flush_all(self, process: Process) -> int:
        """Flush the process's translations from every vCPU's TLB;
        returns the number of remote vCPUs IPI'd."""
        initiator = self.scheduler.vcpu_of(process)
        tlbs = process.space.tlbs
        tlbs[initiator].flush()
        targets = [
            k
            for k in range(len(tlbs))
            if k != initiator and tlbs[k].n_cached > 0
        ]
        for k in targets:
            self._pending_shootdowns[k].append((tlbs[k], None))
            self.vm.vcpus[k].interrupts.ipi(VECTOR_TLB_SHOOTDOWN)
        if otr.ACTIVE is not None and targets:
            otr.ACTIVE.emit(
                EventKind.TLB_SHOOTDOWN,
                initiator=initiator,
                targets=targets,
                n_vpns=-1,
            )
            otr.ACTIVE.metrics.inc("tlb.shootdowns")
            otr.ACTIVE.metrics.inc("tlb.shootdown_ipis", len(targets))
        return len(targets)

    # ------------------------------------------------------------------
    # services
    # ------------------------------------------------------------------
    def create_uffd(self, process: Process) -> UserFaultFd:
        return UserFaultFd(self.clock, self.costs, process, kernel=self)

    def add_access_listener(self, listener: AccessListener) -> None:
        self._access_listeners.append(listener)

    def remove_access_listener(self, listener: AccessListener) -> None:
        if listener in self._access_listeners:
            self._access_listeners.remove(listener)

    # ------------------------------------------------------------------
    # process control (used by CRIU)
    # ------------------------------------------------------------------
    def stop_process(self, process: Process) -> None:
        if process.state is ProcessState.DEAD:
            raise GuestError("cannot stop a dead process")
        process.state = ProcessState.STOPPED

    def resume_process(self, process: Process) -> None:
        if process.state is not ProcessState.STOPPED:
            raise GuestError("resume of a process that is not stopped")
        process.state = ProcessState.RUNNABLE
