"""/proc/PID emulation: the soft-dirty tracking interface.

Reproduces the two operations the paper's /proc baseline uses (§III-B):

* ``clear_refs(4)`` — ``echo 4 > /proc/PID/clear_refs``: clears every
  PTE's soft-dirty bit, write-protects the PTEs, and flushes the TLB.
  Cost: the M15 curve, charged to the tracker (it is part of
  ``E(C_/proc)``, Formula 2).
* ``pagemap_soft_dirty`` — parse ``/proc/PID/pagemap`` and return the
  VPNs whose soft-dirty bit (bit 55) is set.  Cost: the M16 curve
  (userspace page-table walk), also tracker-side.

The write faults that re-set soft-dirty bits during monitoring are handled
by :mod:`repro.guest.faults` and charged per-fault (M5, kernel world) —
those belong to ``I(C_/proc, C_tked)``, not to the tracker.
"""

from __future__ import annotations

import numpy as np

from repro.core.clock import SimClock, World
from repro.core.costs import (
    EV_CLEAR_REFS,
    EV_PT_WALK_USER,
    EV_TLB_FLUSH,
    CostModel,
)
from repro.guest.process import Process
from repro.hw.pagetable import PTE_SOFT_DIRTY, PTE_UFD_WP, PTE_WRITABLE

__all__ = ["ProcFs"]


class ProcFs:
    """The /proc view over a set of guest processes."""

    def __init__(self, clock: SimClock, costs: CostModel, kernel=None) -> None:
        self.clock = clock
        self.costs = costs
        #: Owning guest kernel; when set, TLB invalidations use its
        #: SMP-correct shootdown path instead of touching only one TLB.
        self.kernel = kernel

    def clear_refs(self, process: Process) -> int:
        """``echo 4 > /proc/PID/clear_refs``; returns pages affected."""
        pt = process.space.pt
        mapped = pt.mapped_vpns()
        pt.clear_flags(mapped, PTE_SOFT_DIRTY)
        # Write-protect so the next write faults; ufd-armed pages keep
        # their (stricter) protection.
        not_ufd = mapped[~pt.flag_mask(mapped, PTE_UFD_WP)]
        pt.clear_flags(not_ufd, PTE_WRITABLE)
        if self.kernel is not None:
            self.kernel.tlb_flush_all(process)
        else:
            process.space.tlb.flush()
        n = max(int(process.space.n_pages), 1)
        self.clock.charge(self.costs.clear_refs_us(n), World.TRACKER, EV_CLEAR_REFS)
        self.clock.count_only(EV_TLB_FLUSH)
        return int(mapped.size)

    def pagemap_soft_dirty(self, process: Process) -> np.ndarray:
        """Parse pagemap; return VPNs with the soft-dirty bit set."""
        pt = process.space.pt
        n = max(int(process.space.n_pages), 1)
        self.clock.charge(
            self.costs.pt_walk_user_us(n), World.TRACKER, EV_PT_WALK_USER
        )
        return pt.vpns_with_flag(PTE_SOFT_DIRTY)

    def pagemap_pfns(self, process: Process, vpns: np.ndarray) -> np.ndarray:
        """GPFNs for given VPNs (pagemap's PFN field; used by SPML's
        reverse mapping which scans this file).  Cost charged by callers
        per their access pattern (M16/M17)."""
        return process.space.pt.translate(vpns)
