"""Access plans: compiled page-access phases for batch submission.

Workloads traditionally drive the kernel one batch at a time
(:meth:`~repro.guest.kernel.GuestKernel.access` then
:meth:`~repro.guest.kernel.GuestKernel.compute`), paying the per-call
overhead — state checks, scheduler affinity lookup, listener dispatch —
on every batch.  An :class:`AccessPlan` compiles a whole phase (the
access batches *and* the interleaved compute charges, in their original
order) into one object the kernel executes with a single entry
(:meth:`~repro.guest.kernel.GuestKernel.access_plan`), amortizing that
overhead across the phase.

Execution is *semantically identical* to issuing the same calls one by
one: ops run in plan order, compute charges drive the scheduler exactly
as :meth:`GuestKernel.compute` does (including vCPU rotation on quantum
expiry — the executor re-resolves the process's vCPU after any switch),
and access listeners observe every per-batch :class:`MmuResult` in
order.  What changes is purely host-side bookkeeping.

Plans come in two flavours:

* **frozen** (:meth:`PlanBuilder.build`) — batch arrays are defensively
  copied and each run of consecutive access batches becomes a
  :class:`PlanSegment` with a process-wide unique ``uid``.  Immutability
  plus the uid let the MMU memoize a whole segment's steady-state
  outcome (:meth:`repro.hw.mmu.Mmu.access_segment`) and replay it with
  one bulk content write.  Use for phases executed repeatedly (a
  sequential pass the workload re-runs every iteration).
* **transient** (:meth:`PlanBuilder.build_transient` /
  :meth:`AccessPlan.from_batches`) — no copies, ``uid`` is ``None``, no
  segment memoization (per-batch walk caching still applies).  Use for
  one-shot phases built from freshly generated offsets.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import GuestError

__all__ = ["PlanSegment", "AccessPlan", "PlanBuilder"]

#: Process-wide unique segment ids for the MMU plan cache (never reused,
#: so a dead plan's memoized outcomes cannot alias onto a new plan).
_uid_counter = itertools.count(1)


class PlanSegment:
    """A run of consecutive access batches with no compute in between.

    ``batches`` holds ``(vpns, write)`` pairs exactly as
    :meth:`GuestKernel.access` accepts them (``write`` is a scalar bool
    or a per-access mask).  ``uid`` is ``None`` for transient segments.
    """

    __slots__ = ("uid", "batches", "n_accesses", "n_writes")

    def __init__(
        self,
        batches: list[tuple[np.ndarray, np.ndarray | bool]],
        frozen: bool,
    ) -> None:
        self.uid = next(_uid_counter) if frozen else None
        self.batches = batches
        self.n_accesses = sum(int(v.size) for v, _ in batches)
        self.n_writes = sum(
            int(v.size if w is True else 0 if w is False else np.sum(w))
            for v, w in batches
        )


class AccessPlan:
    """A compiled phase: plan items executed in order by the kernel.

    ``items`` alternates :class:`PlanSegment` objects (access runs) and
    floats (compute charges in microseconds).
    """

    __slots__ = ("items", "n_batches", "n_accesses", "n_writes", "compute_us")

    def __init__(self, items: list) -> None:
        self.items = items
        self.n_batches = 0
        self.n_accesses = 0
        self.n_writes = 0
        self.compute_us = 0.0
        for item in items:
            if isinstance(item, PlanSegment):
                self.n_batches += len(item.batches)
                self.n_accesses += item.n_accesses
                self.n_writes += item.n_writes
            else:
                self.compute_us += item

    @classmethod
    def from_batches(
        cls, batches: list[tuple[np.ndarray, np.ndarray | bool]]
    ) -> AccessPlan:
        """Transient plan over pre-built ``(vpns, write)`` batches."""
        b = PlanBuilder()
        for vpns, write in batches:
            b.access(vpns, write)
        return b.build_transient()


class PlanBuilder:
    """Accumulates access/compute ops and compiles them into a plan."""

    def __init__(self) -> None:
        self._ops: list = []

    # -- ops, in execution order --------------------------------------
    def access(
        self, vpns: np.ndarray | list[int], write: np.ndarray | bool
    ) -> PlanBuilder:
        v = np.asarray(vpns, dtype=np.int64).ravel()
        if v.size == 0:
            # Mirror FlatContext.write/read: empty batches are dropped
            # before reaching the kernel.
            return self
        if not (np.isscalar(write) or np.ndim(write) == 0):
            w = np.asarray(write, dtype=bool).ravel()
            if w.size != v.size:
                raise GuestError("vpns and write mask length mismatch")
            write = w
        else:
            write = bool(write)
        self._ops.append(("a", v, write))
        return self

    def write(self, vpns: np.ndarray | list[int]) -> PlanBuilder:
        return self.access(vpns, True)

    def read(self, vpns: np.ndarray | list[int]) -> PlanBuilder:
        return self.access(vpns, False)

    def compute(self, us: float) -> PlanBuilder:
        if us < 0:
            raise GuestError(f"negative compute time: {us}")
        # Zero-cost charges are kept: SimClock.charge(0) still counts an
        # event, which differential tests compare.
        self._ops.append(("c", float(us)))
        return self

    # -- compilation ---------------------------------------------------
    def _compile(self, frozen: bool) -> AccessPlan:
        items: list = []
        run: list = []
        for op in self._ops:
            if op[0] == "a":
                v, w = op[1], op[2]
                if frozen:
                    v = v.copy()
                    if not isinstance(w, bool):
                        w = w.copy()
                run.append((v, w))
            else:
                if run:
                    items.append(PlanSegment(run, frozen))
                    run = []
                items.append(op[1])
        if run:
            items.append(PlanSegment(run, frozen))
        return AccessPlan(items)

    def build(self) -> AccessPlan:
        """Frozen plan: arrays copied, segments memoizable by uid."""
        return self._compile(frozen=True)

    def build_transient(self) -> AccessPlan:
        """Transient plan: no copies, no segment memoization."""
        return self._compile(frozen=False)
