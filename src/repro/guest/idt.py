"""Guest interrupt descriptor table.

The paper's only Linux-core change for EPML is an interrupt-table entry
handling the virtual self-IPI the processor raises when the guest-level
PML buffer fills (§IV-E, "Linux Core").  This module is that entry: a thin
registration layer between the guest kernel and the vCPU's interrupt
controller, kept separate so the OoH module (a loadable module) does not
touch the controller directly.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import GuestError
from repro.hw.cpu import Vcpu

__all__ = ["Idt"]


class Idt:
    """Vector registration for one guest kernel."""

    def __init__(self, vcpu: Vcpu) -> None:
        self._vcpu = vcpu
        self._registered: set[int] = set()

    def register(self, vector: int, handler: Callable[[int], None]) -> None:
        if vector in self._registered:
            raise GuestError(f"IDT vector {vector:#x} already registered")
        self._vcpu.interrupts.register(vector, handler)
        self._registered.add(vector)

    def unregister(self, vector: int) -> None:
        if vector not in self._registered:
            raise GuestError(f"IDT vector {vector:#x} not registered")
        self._vcpu.interrupts.unregister(vector)
        self._registered.discard(vector)
