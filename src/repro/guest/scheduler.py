"""Guest CPU scheduler: the source of the paper's N (context switches).

The evaluation VM has one dedicated vCPU running essentially one busy
process, so context switches are infrequent — the paper measures N = 39
schedule-out/in pairs over a ~135 s run of tkrzw-baby (Table IVa), i.e.
one every few seconds (timer ticks, kernel threads).  We model this with a
*switch interval*: after every ``switch_interval_us`` of process runtime
the scheduler performs a schedule-out / schedule-in pair.

The OoH module hooks these events: under SPML each pair costs two
hypercalls (disable_logging / enable_logging); under EPML two vmwrites on
the shadow VMCS.  That difference is the core of the paper's
``I(C_SPML)`` vs ``I(C_EPML)`` formulas (§VI-B, Formula 4).
"""

from __future__ import annotations

from typing import Callable

from repro.core.clock import SimClock, World
from repro.core.costs import EV_CONTEXT_SWITCH, EV_SCHED_SWITCH, CostModel
from repro.errors import ConfigurationError
from repro.guest.process import Process

__all__ = ["Scheduler", "DEFAULT_SWITCH_INTERVAL_US"]

#: One switch every ~3.5 s of runtime reproduces the paper's N ~= 39 over
#: the ~135 s tkrzw-baby run (Table IVa).
DEFAULT_SWITCH_INTERVAL_US = 3_500_000.0

SchedHook = Callable[[Process], None]


class Scheduler:
    """Interval-based context-switch generator with hook points."""

    def __init__(
        self,
        clock: SimClock,
        costs: CostModel,
        switch_interval_us: float = DEFAULT_SWITCH_INTERVAL_US,
        n_vcpus: int = 1,
    ) -> None:
        if switch_interval_us <= 0:
            raise ConfigurationError("switch_interval_us must be > 0")
        if n_vcpus <= 0:
            raise ConfigurationError("n_vcpus must be > 0")
        self.clock = clock
        self.costs = costs
        self.switch_interval_us = switch_interval_us
        self.n_vcpus = n_vcpus
        self._accumulated: dict[int, float] = {}
        self._on_sched_out: list[SchedHook] = []
        self._on_sched_in: list[SchedHook] = []
        self.n_switches = 0
        #: pid -> vCPU the process currently runs on.  First touch assigns
        #: round-robin (deterministic in spawn order); each quantum expiry
        #: then rotates the process to the next vCPU, giving a fixed,
        #: reproducible interleaving across vCPUs.
        self._affinity: dict[int, int] = {}
        self._next_vcpu = 0
        self.n_migrations = 0

    # ------------------------------------------------------------------
    # vCPU affinity (SMP)
    # ------------------------------------------------------------------
    def vcpu_of(self, process: Process) -> int:
        """The vCPU ``process`` currently runs on (first touch assigns)."""
        vcpu_id = self._affinity.get(process.pid)
        if vcpu_id is None:
            vcpu_id = self._next_vcpu
            self._next_vcpu = (self._next_vcpu + 1) % self.n_vcpus
            self._affinity[process.pid] = vcpu_id
        return vcpu_id

    def set_affinity(self, process: Process, vcpu_id: int) -> None:
        """Pin ``process`` to ``vcpu_id`` (no context-switch cost)."""
        if not 0 <= vcpu_id < self.n_vcpus:
            raise ConfigurationError(
                f"vcpu_id {vcpu_id} out of range (n_vcpus={self.n_vcpus})"
            )
        self._affinity[process.pid] = vcpu_id

    def migrate(self, process: Process, vcpu_id: int) -> None:
        """Move ``process`` to ``vcpu_id`` via a full deschedule/schedule
        pair, so tracker sched hooks observe the migration."""
        if not 0 <= vcpu_id < self.n_vcpus:
            raise ConfigurationError(
                f"vcpu_id {vcpu_id} out of range (n_vcpus={self.n_vcpus})"
            )
        self.n_migrations += 1
        self.deschedule(process)
        self._affinity[process.pid] = vcpu_id
        self.schedule(process)

    # ------------------------------------------------------------------
    def add_sched_out_hook(self, hook: SchedHook) -> None:
        self._on_sched_out.append(hook)

    def add_sched_in_hook(self, hook: SchedHook) -> None:
        self._on_sched_in.append(hook)

    def remove_hooks(self, *hooks: SchedHook) -> None:
        for h in hooks:
            if h in self._on_sched_out:
                self._on_sched_out.remove(h)
            if h in self._on_sched_in:
                self._on_sched_in.remove(h)

    # ------------------------------------------------------------------
    def notify_runtime(self, process: Process, us: float) -> int:
        """Account ``us`` of runtime; fire due context switches.

        Returns the number of switch pairs performed.  A long charge may
        span several intervals; each fires one switch pair, matching a
        timer-driven scheduler.
        """
        acc = self._accumulated.get(process.pid, 0.0) + us
        switches = int(acc // self.switch_interval_us)
        self._accumulated[process.pid] = acc - switches * self.switch_interval_us
        for _ in range(switches):
            self.switch(process)
        return switches

    def switch(self, process: Process) -> None:
        """One schedule-out / schedule-in pair for ``process``.

        SMP: the quantum expiry also rotates the process to the next vCPU
        (deterministic round-robin interleaving).  The rotation happens
        *between* the out and in halves, so sched-out hooks observe the
        departing vCPU and sched-in hooks the arriving one — exactly the
        window in which the OoH module must move its logging state.
        """
        self.n_switches += 1
        self.clock.count_only(EV_SCHED_SWITCH)
        self.deschedule(process)
        if self.n_vcpus > 1:
            cur = self.vcpu_of(process)
            self._affinity[process.pid] = (cur + 1) % self.n_vcpus
        self.schedule(process)

    def deschedule(self, process: Process) -> None:
        """Schedule ``process`` out (another task takes the CPU)."""
        process.n_scheduled_out += 1
        self.clock.charge(
            self.costs.params.context_switch_us,
            World.KERNEL,
            EV_CONTEXT_SWITCH,
        )
        for hook in self._on_sched_out:
            hook(process)

    def schedule(self, process: Process) -> None:
        """Schedule ``process`` back in."""
        process.n_scheduled_in += 1
        self.clock.charge(
            self.costs.params.context_switch_us,
            World.KERNEL,
            EV_CONTEXT_SWITCH,
        )
        for hook in self._on_sched_in:
            hook(process)

    def reset(self, process: Process) -> None:
        self._accumulated.pop(process.pid, None)
        self._affinity.pop(process.pid, None)
