"""The paper's cost-estimation formulas (§VI-B, Formulas 1-4).

The paper cannot measure EPML on real hardware, so it builds per-technique
formulas that estimate the tracker's execution time ``E(C_tker)`` and the
tracked application's time ``E(C_tked_tker)`` from *event counts* times
*unit costs*, then validates the formulas for /proc, ufd and SPML against
real measurements (96%+ accuracy, Table IV) — which validates the EPML
formula by construction.

We reproduce that methodology: :func:`estimate` reconstructs both times
from the clock's event ledger (counts only) and the calibrated unit costs;
the Table IV benchmark compares the estimates against the simulator's
measured per-world times.  Because the simulator also charges per event,
high accuracy is expected — the comparison is a consistency check of the
whole accounting pipeline (it catches double-charged or missing events),
exactly as the paper's comparison checks its instrumentation.

Formula recap (x = technique, C_p = tracking routine, C_tked = workload):

    (1) E(C_tker)      = E(C_x) + E(C_p) + I(C_x, C_p)   with I ~ 0
    (2) E(C_x)          developed per technique
    (3) E(C_tked_tker) = E(C_tked) + E(C_tker) + I(C_x, C_tked)
    (4) I(C_x, C_tked)  developed per technique
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import costs as ev
from repro.core.clock import ClockSnapshot
from repro.core.costs import CostModel
from repro.core.tracking import Technique
from repro.errors import TrackingError

__all__ = ["FormulaEstimate", "estimate", "accuracy_pct"]


@dataclass(frozen=True)
class FormulaEstimate:
    """Estimated times (us) for one run of Tracker over Tracked."""

    technique: Technique
    technique_us: float  # E(C_x)        (Formula 2)
    routine_us: float  # E(C_p)
    tracker_us: float  # E(C_tker)     (Formula 1)
    interference_us: float  # I(C_x, C_tked) (Formula 4)
    tracked_ideal_us: float  # E(C_tked)
    tracked_us: float  # E(C_tked_tker) (Formula 3)


def _count(snap: ClockSnapshot, event: str) -> int:
    return int(snap.event_count.get(event, 0))


def _technique_us(
    technique: Technique, snap: ClockSnapshot, cm: CostModel, mem_pages: int
) -> float:
    """Formula 2: develop E(C_x) from event counts x unit costs."""
    p = cm.params
    n = mem_pages
    if technique is Technique.PROC:
        return _count(snap, ev.EV_CLEAR_REFS) * cm.clear_refs_us(n) + _count(
            snap, ev.EV_PT_WALK_USER
        ) * cm.pt_walk_user_us(n)
    if technique is Technique.UFD:
        # The "ioctl write_unprotect" term of Formula 2 is the tracker's
        # per-fault resolution work: M6's userspace share.
        n_faults = _count(snap, ev.EV_PF_USER)
        user_share = max(cm.pf_user_unit_us(n) - cm.pf_kernel_unit_us(n), 0.0)
        return (
            _count(snap, ev.EV_UFD_REGISTER) * p.ufd_register_us
            + _count(snap, ev.EV_UFD_WRITE_PROTECT) * cm.ufd_write_protect_us(n)
            + _count(snap, ev.EV_UFD_WAKE) * p.ufd_wake_us
            + n_faults * user_share
        )
    if technique is Technique.SPML:
        tracker_rb = _count(snap, ev.EV_REVERSE_MAP)  # entries fetched by lib
        return (
            _count(snap, ev.EV_IOCTL_INIT_PML) * p.ioctl_init_pml_us
            + _count(snap, ev.EV_IOCTL_DEACT_PML) * p.ioctl_deact_pml_us
            + _count(snap, ev.EV_HC_INIT_PML) * p.hc_init_pml_us
            + _count(snap, ev.EV_HC_DEACT_PML) * p.hc_deact_pml_us
            + _count(snap, ev.EV_PT_WALK_USER) * cm.pt_walk_user_us(n)
            + cm.rb_copy_us(tracker_rb, n)
            + cm.reverse_map_us(tracker_rb, n)
        )
    if technique is Technique.EPML:
        tracker_rb = _count(snap, "pte_dirty_clear")  # entries drained by lib
        return (
            _count(snap, ev.EV_IOCTL_INIT_PML) * p.ioctl_init_pml_us
            + _count(snap, ev.EV_IOCTL_DEACT_PML) * p.ioctl_deact_pml_us
            + _count(snap, ev.EV_HC_INIT_PML_SHADOW) * p.hc_init_pml_shadow_us
            + _count(snap, ev.EV_HC_DEACT_PML_SHADOW) * p.hc_deact_pml_shadow_us
            + cm.rb_copy_us(tracker_rb, n)
            + tracker_rb * p.pte_dirty_clear_us
        )
    if technique is Technique.ORACLE:
        return 0.0
    raise TrackingError(f"no formula for {technique}")


def _interference_us(
    technique: Technique, snap: ClockSnapshot, cm: CostModel, mem_pages: int
) -> float:
    """Formula 4: develop I(C_x, C_tked) from event counts x unit costs."""
    p = cm.params
    n = mem_pages
    ctx = _count(snap, ev.EV_CONTEXT_SWITCH) * p.context_switch_us
    if technique is Technique.PROC:
        return _count(snap, ev.EV_PF_KERNEL) * cm.pf_kernel_unit_us(n) + ctx
    if technique is Technique.UFD:
        # The kernel share of the fault path (the userspace share is the
        # tracker's write_unprotect work, counted in Formula 2).
        kernel_share = min(cm.pf_kernel_unit_us(n), cm.pf_user_unit_us(n))
        return _count(snap, ev.EV_PF_USER) * kernel_share + ctx
    if technique is Technique.SPML:
        vmexits = _count(snap, ev.EV_VMEXIT) * p.vmexit_roundtrip_us + _count(
            snap, ev.EV_HYPERCALL
        ) * p.hypercall_entry_us
        hyp_rb = cm.rb_copy_us(
            _count(snap, ev.EV_RB_COPY) - _count(snap, ev.EV_REVERSE_MAP), n
        )
        sched = _count(snap, ev.EV_SCHED_SWITCH)
        toggles = sched * (p.enable_logging_us + p.disable_logging_call_us)
        return vmexits + max(hyp_rb, 0.0) + toggles + ctx
    if technique is Technique.EPML:
        vmrw = (
            _count(snap, ev.EV_VMREAD) * p.vmread_us
            + _count(snap, ev.EV_VMWRITE) * p.vmwrite_us
        )
        ipis = _count(snap, ev.EV_SELF_IPI) * p.self_ipi_us
        kernel_rb = cm.rb_copy_us(
            _count(snap, ev.EV_RB_COPY) - _count(snap, "pte_dirty_clear"), n
        )
        return vmrw + ipis + max(kernel_rb, 0.0) + ctx
    if technique is Technique.ORACLE:
        return 0.0
    raise TrackingError(f"no formula for {technique}")


def estimate(
    technique: Technique | str,
    snap: ClockSnapshot,
    cm: CostModel,
    mem_pages: int,
    tracked_ideal_us: float,
    routine_us: float = 0.0,
) -> FormulaEstimate:
    """Apply Formulas 1-4 to one run's event ledger.

    ``snap`` is the clock delta over the run (see
    :meth:`repro.core.clock.SimClock.since`); ``tracked_ideal_us`` is the
    workload's ideal (untracked) execution time; ``routine_us`` is
    ``E(C_p)``, the technique-agnostic tracking routine (e.g. CRIU's disk
    writes).
    """
    if isinstance(technique, str):
        technique = Technique(technique)
    technique_us = _technique_us(technique, snap, cm, mem_pages)
    interference_us = _interference_us(technique, snap, cm, mem_pages)
    tracker_us = technique_us + routine_us  # I(C_x, C_p) ~ 0 (paper §VI-B)
    tracked_us = tracked_ideal_us + tracker_us + interference_us
    return FormulaEstimate(
        technique=technique,
        technique_us=technique_us,
        routine_us=routine_us,
        tracker_us=tracker_us,
        interference_us=interference_us,
        tracked_ideal_us=tracked_ideal_us,
        tracked_us=tracked_us,
    )


def accuracy_pct(estimated: float, measured: float) -> float:
    """The paper's accuracy metric: 100 - |error| as % of measured."""
    if measured == 0:
        return 100.0 if estimated == 0 else 0.0
    return 100.0 - abs(estimated - measured) / measured * 100.0
