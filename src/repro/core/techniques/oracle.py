"""The oracle technique: perfect dirty information at zero cost.

The paper's estimation methodology (§VI-B) defines *oracle* as "a
hypothetical technique able to provide all dirty pages with no additional
cost" (``E(C_oracle) = 0``).  We implement it with the guest kernel's
zero-cost access-listener hook: every batch's newly-PTE-dirty VPNs are
recorded without charging the clock.  Runs under the oracle measure a
workload's *ideal* execution time, the baseline of every overhead figure.
"""

from __future__ import annotations

import numpy as np

from repro.core.tracking import DirtyPageTracker, Technique, register_technique
from repro.guest.process import Process
from repro.hw.mmu import MmuResult
from repro.hw.pagetable import PTE_DIRTY

__all__ = ["OracleTracker"]


@register_technique
class OracleTracker(DirtyPageTracker):
    technique = Technique.ORACLE

    def __init__(self, kernel, process) -> None:
        super().__init__(kernel, process)
        self._dirty: set[int] = set()
        self._listener = self._on_access

    def _on_access(self, process: Process, result: MmuResult) -> None:
        if process.pid == self.process.pid and result.newly_pte_dirty.size:
            self._dirty.update(int(v) for v in result.newly_pte_dirty)

    def _do_start(self) -> None:
        # Arm: the listener sees PTE dirty 0 -> 1 transitions, so clear
        # the bits (free: the oracle is costless by definition).
        mapped = self.process.space.pt.mapped_vpns()
        if mapped.size:
            self.process.space.pt.clear_flags(mapped, PTE_DIRTY)
            # SMP: every vCPU may cache the downgraded translations; the
            # oracle invalidates them all directly (costless — no charged
            # shootdown IPIs).
            self.process.space.invalidate_all(mapped)
        self.kernel.add_access_listener(self._listener)

    def _do_collect(self) -> np.ndarray:
        out = np.array(sorted(self._dirty), dtype=np.int64)
        self._dirty.clear()
        # Re-arm PTE dirty transitions (free: the oracle is costless).
        if out.size:
            self.process.space.pt.clear_flags(out, PTE_DIRTY)
            self.process.space.invalidate_all(out)
        return out

    def _do_stop(self) -> None:
        self.kernel.remove_access_listener(self._listener)
        self._dirty.clear()
