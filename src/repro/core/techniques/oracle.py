"""The oracle technique: perfect dirty information at zero cost.

The paper's estimation methodology (§VI-B) defines *oracle* as "a
hypothetical technique able to provide all dirty pages with no additional
cost" (``E(C_oracle) = 0``).  We implement it with the guest kernel's
zero-cost access-listener hook: every batch's newly-PTE-dirty VPNs are
recorded without charging the clock.  Runs under the oracle measure a
workload's *ideal* execution time, the baseline of every overhead figure.
"""

from __future__ import annotations

import numpy as np

from repro.core.tracking import DirtyPageTracker, Technique, register_technique
from repro.guest.process import Process
from repro.hw.mmu import MmuResult
from repro.hw.pagetable import PTE_DIRTY

__all__ = ["OracleTracker"]


@register_technique
class OracleTracker(DirtyPageTracker):
    technique = Technique.ORACLE

    def __init__(self, kernel, process) -> None:
        super().__init__(kernel, process)
        # Dirty set as a dense bool bitmap: recording a batch is one
        # vectorised scatter and collection one flatnonzero, instead of
        # per-page Python set churn (the oracle listener runs on every
        # access batch of every baseline measurement).
        self._dirty = np.zeros(process.space.pt.n_pages, dtype=bool)
        self._listener = self._on_access

    def _on_access(self, process: Process, result: MmuResult) -> None:
        if process.pid == self.process.pid and result.newly_pte_dirty.size:
            self._dirty[result.newly_pte_dirty] = True

    def _do_start(self) -> None:
        # Arm: the listener sees PTE dirty 0 -> 1 transitions, so clear
        # the bits (free: the oracle is costless by definition).
        mapped = self.process.space.pt.mapped_vpns()
        if mapped.size:
            self.process.space.pt.clear_flags(mapped, PTE_DIRTY)
            # SMP: every vCPU may cache the downgraded translations; the
            # oracle invalidates them all directly (costless — no charged
            # shootdown IPIs).
            self.process.space.invalidate_all(mapped)
        self.kernel.add_access_listener(self._listener)

    def _do_collect(self) -> np.ndarray:
        # flatnonzero yields ascending VPNs — same order the sorted set
        # produced.
        out = np.flatnonzero(self._dirty).astype(np.int64)
        self._dirty[:] = False
        # Re-arm PTE dirty transitions (free: the oracle is costless).
        if out.size:
            self.process.space.pt.clear_flags(out, PTE_DIRTY)
            self.process.space.invalidate_all(out)
        return out

    def _do_stop(self) -> None:
        self.kernel.remove_access_listener(self._listener)
        self._dirty[:] = False
