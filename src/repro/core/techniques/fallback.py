"""Graceful degradation: a tracker that falls forward through techniques.

The paper's techniques form a natural preference order — EPML (fastest,
needs the ISA extension), SPML (hypervisor-assisted), /proc soft-dirty
(always available).  A deployment cannot assume the fancy mechanisms keep
working: hypercalls bounce, self-IPIs get lost, buffers race.  The
:class:`FallbackTracker` wraps the chain and degrades after
``failure_threshold`` *consecutive* recoverable failures, so a single
transient blip never causes a switch but a persistently broken mechanism
is abandoned.

Completeness contract: a failed collection interval has no reliable log,
so the tracker returns the conservative answer — every mapped page —
exactly like the OoH module's resync path; inner OoH trackers also run
with ``resync_on_loss`` enabled.  The chain therefore never *silently*
loses a dirty page, which the :class:`~repro.faults.auditor.CompletenessAuditor`
verifies under chaos plans.
"""

from __future__ import annotations

import numpy as np

from repro.core.clock import World
from repro.core.ooh import OohModule
from repro.core.tracking import (
    DirtyPageTracker,
    Technique,
    make_tracker,
    register_technique,
)
from repro.errors import (
    FaultInjectedError,
    ResyncRequired,
    TrackingError,
    TransientError,
)
from repro.obs import trace as otr
from repro.obs.events import EventKind
from repro.retry import is_transient

__all__ = ["FallbackTracker"]

DEFAULT_CHAIN = (Technique.EPML, Technique.SPML, Technique.PROC)


def _recoverable(exc: BaseException) -> bool:
    return is_transient(exc) or isinstance(
        exc, (TransientError, FaultInjectedError, ResyncRequired)
    )


@register_technique
class FallbackTracker(DirtyPageTracker):
    technique = Technique.FALLBACK

    def __init__(
        self,
        kernel,
        process,
        chain: tuple[Technique, ...] = DEFAULT_CHAIN,
        failure_threshold: int = 3,
    ) -> None:
        super().__init__(kernel, process)
        if not chain:
            raise TrackingError("fallback chain must not be empty")
        if failure_threshold < 1:
            raise TrackingError(
                f"failure_threshold must be >= 1: {failure_threshold}"
            )
        self.chain = tuple(chain)
        self.failure_threshold = failure_threshold
        self._chain_pos = 0
        self._inner: DirtyPageTracker | None = None
        self._consecutive_failures = 0
        self.n_fallbacks = 0
        #: ``(from, to, reason)`` triples, oldest first.
        self.fallback_history: list[tuple[str, str, str]] = []

    # ------------------------------------------------------------------
    @property
    def current_technique(self) -> Technique:
        return self.chain[self._chain_pos]

    @property
    def last_stats(self):
        return getattr(self._inner, "last_stats", None)

    def _make_inner(self) -> DirtyPageTracker:
        tech = self.chain[self._chain_pos]
        kwargs = {}
        if tech in (Technique.EPML, Technique.SPML):
            kwargs["resync_on_loss"] = True
        return make_tracker(tech, self.kernel, self.process, **kwargs)

    # ------------------------------------------------------------------
    def _do_start(self) -> None:
        self._start_inner("start failed")

    def _start_inner(self, context: str) -> None:
        """Start the current chain entry, falling forward on failure."""
        while True:
            try:
                inner = self._make_inner()
                inner.start()
                self._inner = inner
                return
            except Exception as exc:
                if not _recoverable(exc):
                    raise
                OohModule.shared(self.kernel).force_detach()
                if not self._advance(f"{context}: {exc}"):
                    raise

    def _advance(self, reason: str) -> bool:
        """Move to the next chain entry; False when the chain is spent."""
        if self._chain_pos + 1 >= len(self.chain):
            return False
        old = self.chain[self._chain_pos]
        self._chain_pos += 1
        self.n_fallbacks += 1
        new = self.chain[self._chain_pos]
        self.fallback_history.append((old.value, new.value, reason))
        if otr.ACTIVE is not None:
            otr.ACTIVE.emit(
                EventKind.FALLBACK_TRANSITION,
                **{"from": old.value, "to": new.value, "reason": reason},
            )
            otr.ACTIVE.metrics.inc("fallback.transitions")
        self._consecutive_failures = 0
        return True

    # ------------------------------------------------------------------
    def _do_collect(self) -> np.ndarray:
        assert self._inner is not None
        try:
            out = self._inner.collect()
            self._consecutive_failures = 0
            return out
        except Exception as exc:
            if not _recoverable(exc):
                raise
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._fall_forward(str(exc))
            return self._conservative_interval()

    def _conservative_interval(self) -> np.ndarray:
        """A failed interval has no reliable log: report every mapped page.

        Charged like the /proc pagemap walk the tracker would need to
        enumerate the VMA.
        """
        self.kernel.clock.charge(
            self.kernel.costs.pt_walk_user_us(self.process.space.n_pages),
            World.TRACKER,
            "conservative_resync",
        )
        return self.process.space.pt.mapped_vpns()

    def _fall_forward(self, reason: str) -> None:
        assert self._inner is not None
        try:
            self._inner.stop()
        except Exception:
            # The orderly teardown path is broken too: crash-only detach.
            OohModule.shared(self.kernel).force_detach()
            self._inner.abort()
        self._inner = None
        if self._advance(f"collect failures: {reason}"):
            self._start_inner("fallback start failed")
        else:
            # Chain exhausted: restart the last entry and keep limping.
            self._consecutive_failures = 0
            self._start_inner("restart failed")

    # ------------------------------------------------------------------
    def _do_stop(self) -> None:
        if self._inner is None:
            return
        try:
            self._inner.stop()
        except Exception as exc:
            if not _recoverable(exc):
                raise
            OohModule.shared(self.kernel).force_detach()
            self._inner.abort()
        self._inner = None
