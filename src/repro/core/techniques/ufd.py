"""The userfaultfd technique.

Initialization: register the process's VMAs with a userfaultfd in
``write_protect`` mode and arm protection (M2).  Monitoring: every write
suspends the tracked thread, traps to the tracker in userspace (M6), which
write-unprotects and wakes it — the dirty set accrues *during* monitoring
(paper Fig. 1.b).  Collection: drain the accrued set and re-protect the
collected pages for the next interval.
"""

from __future__ import annotations

import numpy as np

from repro.core.tracking import DirtyPageTracker, Technique, register_technique
from repro.guest.uffd import UfdMode, UserFaultFd

__all__ = ["UfdTracker"]


@register_technique
class UfdTracker(DirtyPageTracker):
    technique = Technique.UFD

    def __init__(self, kernel, process, track_missing: bool = True) -> None:
        super().__init__(kernel, process)
        self._uffd: UserFaultFd | None = None
        #: Also register MISSING mode so first touches are captured as
        #: dirty (matches ufd-based checkpoint usage).
        self.track_missing = track_missing

    def _do_start(self) -> None:
        from repro.guest.process import Vma

        self._uffd = self.kernel.create_uffd(self.process)
        mode = UfdMode.WRITE_PROTECT
        if self.track_missing:
            mode |= UfdMode.MISSING
        vmas = self.process.space.vmas
        if not vmas:
            # No VMAs yet: register the whole address-space range so
            # later mmaps are covered (tracker started before the
            # workload allocated).
            vmas = [Vma(0, self.process.space.n_pages, "all")]
        for vma in vmas:
            self._uffd.register(vma, mode)
        self._uffd.write_protect()

    def _do_collect(self) -> np.ndarray:
        assert self._uffd is not None
        dirty = self._uffd.read_dirty()
        if dirty.size:
            # Re-arm the collected pages for the next interval.
            self._uffd.write_protect(dirty)
        return dirty

    def _do_stop(self) -> None:
        assert self._uffd is not None
        self._uffd.close()
        self._uffd = None
