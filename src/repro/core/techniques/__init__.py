"""Tracking-technique implementations.

Importing this package populates the registry used by
:func:`repro.core.tracking.make_tracker`.
"""

from repro.core.techniques.epml import EpmlTracker
from repro.core.techniques.fallback import FallbackTracker
from repro.core.techniques.oracle import OracleTracker
from repro.core.techniques.proc import ProcTracker
from repro.core.techniques.spml import SpmlTracker
from repro.core.techniques.ufd import UfdTracker

__all__ = [
    "ProcTracker",
    "UfdTracker",
    "SpmlTracker",
    "EpmlTracker",
    "OracleTracker",
    "FallbackTracker",
]
