"""Extended PML: OoH with the small hardware extension (paper §IV-D).

One hypercall at start (VMCS-shadowing setup, M10); afterwards the guest
toggles logging with vmwrite on the shadow VMCS (no vmexits), the processor
logs **GVAs** into a guest-managed buffer, buffer-full raises a posted
self-IPI, and collection is a plain ring-buffer drain — no reverse
mapping.  This is the paper's best-performing technique.
"""

from __future__ import annotations

import numpy as np

from repro.core.ooh import OohAttachment, OohKind, OohLib, OohModule
from repro.core.tracking import DirtyPageTracker, Technique, register_technique
from repro.obs import trace as otr
from repro.obs.events import emit_collect_stats

__all__ = ["EpmlTracker"]


@register_technique
class EpmlTracker(DirtyPageTracker):
    technique = Technique.EPML

    def __init__(
        self,
        kernel,
        process,
        ooh_lib: OohLib | None = None,
        resync_on_loss: bool = False,
    ) -> None:
        super().__init__(kernel, process)
        self._lib = ooh_lib if ooh_lib is not None else OohLib(OohModule.shared(kernel))
        self._att: OohAttachment | None = None
        self.resync_on_loss = resync_on_loss

    def _do_start(self) -> None:
        self._att = self._lib.attach(
            self.process, OohKind.EPML, resync_on_loss=self.resync_on_loss
        )

    def _do_collect(self) -> np.ndarray:
        assert self._att is not None
        out = self._lib.fetch(self._att)
        if otr.ACTIVE is not None:
            emit_collect_stats(
                otr.ACTIVE, self.technique.value, self._att.last_stats
            )
        return out

    def _do_stop(self) -> None:
        assert self._att is not None
        self._lib.detach(self._att)
        self._att = None

    @property
    def last_stats(self):
        """Collection diagnostics (entries, drops)."""
        assert self._att is not None
        return self._att.last_stats
