"""The /proc soft-dirty technique (CRIU's and Boehm's stock mechanism).

Initialization: ``echo 4 > /proc/PID/clear_refs`` (M15) — clears soft-dirty
bits and write-protects PTEs, so every subsequent first write faults into
the kernel (M5, charged on the fault path).  Collection: parse
``/proc/PID/pagemap`` (M16) for bit-55 pages, then ``clear_refs`` again to
re-arm the next interval.
"""

from __future__ import annotations

import numpy as np

from repro.core.tracking import DirtyPageTracker, Technique, register_technique

__all__ = ["ProcTracker"]


@register_technique
class ProcTracker(DirtyPageTracker):
    technique = Technique.PROC

    def _do_start(self) -> None:
        self.kernel.procfs.clear_refs(self.process)

    def _do_collect(self) -> np.ndarray:
        dirty = self.kernel.procfs.pagemap_soft_dirty(self.process)
        self.kernel.procfs.clear_refs(self.process)
        return dirty

    def _do_stop(self) -> None:
        # Nothing to tear down: soft-dirty bits simply stop being read.
        # Leave the PTEs writable again so the process runs untracked.
        pt = self.process.space.pt
        mapped = pt.mapped_vpns()
        from repro.hw.pagetable import PTE_UFD_WP, PTE_WRITABLE

        not_ufd = mapped[~pt.flag_mask(mapped, PTE_UFD_WP)]
        pt.set_flags(not_ufd, PTE_WRITABLE)
