"""Shadow PML: OoH without hardware changes (paper §IV-C).

The hypervisor emulates per-process PML: hypercalls toggle logging at every
schedule-in/out, PML-full vmexits copy GPAs into a ring buffer shared with
the guest, and the OoH Lib reverse-maps GPA -> GVA in userspace — the
measured bottleneck (M17, Fig. 3).
"""

from __future__ import annotations

import numpy as np

from repro.core.ooh import OohAttachment, OohKind, OohLib, OohModule
from repro.core.tracking import DirtyPageTracker, Technique, register_technique
from repro.obs import trace as otr
from repro.obs.events import emit_collect_stats

__all__ = ["SpmlTracker"]


@register_technique
class SpmlTracker(DirtyPageTracker):
    technique = Technique.SPML

    def __init__(
        self,
        kernel,
        process,
        ooh_lib: OohLib | None = None,
        reverse_map_cache: bool = False,
        resync_on_loss: bool = False,
    ) -> None:
        super().__init__(kernel, process)
        self._lib = ooh_lib if ooh_lib is not None else OohLib(OohModule.shared(kernel))
        self._att: OohAttachment | None = None
        #: Cache GPA -> GVA translations across collections (how the
        #: paper's Boehm integration amortises reverse mapping after the
        #: first GC cycle; CRIU collects once, so it never benefits).
        self.reverse_map_cache = reverse_map_cache
        self.resync_on_loss = resync_on_loss

    def _do_start(self) -> None:
        self._att = self._lib.attach(
            self.process,
            OohKind.SPML,
            reverse_map_cache=self.reverse_map_cache,
            resync_on_loss=self.resync_on_loss,
        )

    def _do_collect(self) -> np.ndarray:
        assert self._att is not None
        out = self._lib.fetch(self._att)
        if otr.ACTIVE is not None:
            emit_collect_stats(
                otr.ACTIVE, self.technique.value, self._att.last_stats
            )
        return out

    def _do_stop(self) -> None:
        assert self._att is not None
        self._lib.detach(self._att)
        self._att = None

    @property
    def last_stats(self):
        """Collection diagnostics (entries, unresolved GPAs, drops)."""
        assert self._att is not None
        return self._att.last_stats
