"""Calibration data: the paper's measured micro-costs (Table Va / Vb).

The simulator is execution-driven — page tables are walked, PML buffers
fill, vmexits fire — but converting those micro-events into simulated time
requires unit costs.  We take them from the paper's own measurements on the
DELL i7-8565U testbed (§VI-C, Table Va and Table Vb), so the reproduced
tables and figures inherit their shape from *mechanism counts × published
unit costs*.

Two kinds of calibration values exist:

* **Size-agnostic constants** (Table Va): context switch, vmread/vmwrite,
  hypercall and ioctl costs.  Exposed as module constants and bundled into
  :class:`~repro.core.costs.CostParams`.

* **Size-dependent curves** (Table Vb): total cost of an operation as a
  function of the tracked process's memory size (1 MB .. 1 GB), for metrics
  M5, M6, M14, M15, M16, M17, M18.  Exposed as :class:`SizeCurve`, which
  interpolates within the published range and extrapolates linearly with
  the last segment's slope beyond it.

The quadratic behaviour of reverse mapping (M17) — each logged GPA requires
scanning ``/proc/PID/pagemap``, so cost grows with (dirty pages ×
address-space pages) — is captured directly by the published curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "PAGE_SIZE",
    "PAGES_PER_MB",
    "PML_BUFFER_ENTRIES",
    "TABLE_VA_US",
    "TABLE_VB_SIZES_MB",
    "TABLE_VB_MS",
    "SizeCurve",
    "size_curves",
    "mb_to_pages",
]

#: Bytes per page; the paper (and x86) use 4 KiB pages throughout.
PAGE_SIZE = 4096

#: 4 KiB pages per MiB of memory.
PAGES_PER_MB = (1024 * 1024) // PAGE_SIZE  # 256

#: A PML buffer is one 4 KiB page of 64-bit entries => 512 logged addresses
#: (paper §II-B).
PML_BUFFER_ENTRIES = 512

# ---------------------------------------------------------------------------
# Table Va — size-agnostic costs, microseconds
# ---------------------------------------------------------------------------
TABLE_VA_US: dict[str, float] = {
    # M1: user <-> kernel context switch
    "m1_context_switch": 0.315,
    # M3: ioctl initialising PML through the OoH module (SPML & EPML)
    "m3_ioctl_init_pml": 5651.0,
    # M4: ioctl deactivating PML through the OoH module (SPML & EPML)
    "m4_ioctl_deact_pml": 2816.0,
    # M7/M8: vmread / vmwrite on the shadow VMCS (EPML)
    "m7_vmread": 0.936,
    "m8_vmwrite": 0.801,
    # M9: hypercall initialising PML (SPML)
    "m9_hc_init_pml": 5495.0,
    # M10: hypercall initialising PML + VMCS shadowing (EPML)
    "m10_hc_init_pml_shadow": 5878.0,
    # M11: hypercall deactivating PML (SPML)
    "m11_hc_deact_pml": 2060.0,
    # M12: hypercall deactivating PML + VMCS shadowing (EPML)
    "m12_hc_deact_pml_shadow": 2755.0,
    # M13: enable-PML-logging hypercall issued at every schedule-in (SPML)
    "m13_enable_logging": 0.3,
}

# ---------------------------------------------------------------------------
# Table Vb — size-dependent totals, milliseconds, at these memory sizes
# ---------------------------------------------------------------------------
TABLE_VB_SIZES_MB: tuple[int, ...] = (1, 10, 50, 100, 250, 500, 1024)

TABLE_VB_MS: dict[str, tuple[float, ...]] = {
    # M5: page-fault handling in kernel space (/proc soft-dirty faults)
    "m5_pf_kernel": (0.003, 0.3, 1.68, 3.34, 8.39, 16.79, 33.58),
    # M6: page-fault handling in userspace (ufd write-protect faults)
    "m6_pf_user": (2.5, 27.3, 152.3, 347.1, 882.8, 1585.0, 3483.0),
    # M14: disable-PML-logging hypercall (SPML schedule-out path)
    "m14_disable_logging": (0.042, 0.047, 0.138, 0.156, 0.189, 0.203, 0.208),
    # M15: echo 4 > /proc/PID/clear_refs (PTE walk + TLB flush)
    "m15_clear_refs": (0.032, 0.0912, 0.174, 0.288, 0.613, 1.153, 2.234),
    # M16: userspace page-table walk (parsing /proc/PID/pagemap)
    "m16_pt_walk_user": (1.912, 14.479, 41.832, 82.289, 161.973, 307.109, 594.187),
    # M17: GPA -> GVA reverse mapping (SPML collection phase)
    "m17_reverse_map": (6.183, 24.653, 85.117, 255.437, 1211.0, 4123.0, 15738.0),
    # M18: PML-buffer -> ring-buffer copy
    "m18_rb_copy": (0.003, 0.01, 0.03, 0.048, 0.109, 0.383, 0.671),
}


def mb_to_pages(mb: float) -> int:
    """Convert a memory size in MiB to a page count."""
    return int(round(mb * PAGES_PER_MB))


@dataclass(frozen=True)
class SizeCurve:
    """Total operation cost (us) as a function of touched page count.

    Interpolates the published measurements; extrapolates with the final
    segment's slope above the measured range and proportionally below it.
    """

    name: str
    pages: np.ndarray  # ascending page counts
    total_us: np.ndarray  # total cost at each page count, microseconds

    def __post_init__(self) -> None:
        if len(self.pages) != len(self.total_us) or len(self.pages) < 2:
            raise ConfigurationError(f"curve {self.name!r}: need >= 2 points")
        if not np.all(np.diff(self.pages) > 0):
            raise ConfigurationError(f"curve {self.name!r}: pages must ascend")

    def total(self, n_pages: int | np.ndarray) -> float | np.ndarray:
        """Total cost in us for an operation spanning ``n_pages`` pages."""
        n = np.asarray(n_pages, dtype=np.float64)
        lo_p, hi_p = self.pages[0], self.pages[-1]
        out = np.interp(n, self.pages, self.total_us)
        # Below range: scale the first point proportionally (cost -> 0 with
        # size, matching every metric's behaviour).
        below = n < lo_p
        if np.any(below):
            out = np.where(below, self.total_us[0] * n / lo_p, out)
        # Above range: extend the last segment's slope.
        above = n > hi_p
        if np.any(above):
            slope = (self.total_us[-1] - self.total_us[-2]) / (
                self.pages[-1] - self.pages[-2]
            )
            out = np.where(above, self.total_us[-1] + slope * (n - hi_p), out)
        if np.ndim(n_pages) == 0:
            return float(out)
        return out

    def unit(self, n_pages: int) -> float:
        """Average per-page cost in us when the operation spans ``n_pages``."""
        if n_pages <= 0:
            return 0.0
        return float(self.total(n_pages)) / float(n_pages)


def size_curves() -> dict[str, SizeCurve]:
    """Build :class:`SizeCurve` objects for every Table Vb metric."""
    pages = np.array([mb_to_pages(mb) for mb in TABLE_VB_SIZES_MB], dtype=np.float64)
    curves: dict[str, SizeCurve] = {}
    for name, totals_ms in TABLE_VB_MS.items():
        totals_us = np.asarray(totals_ms, dtype=np.float64) * 1000.0
        curves[name] = SizeCurve(name=name, pages=pages, total_us=totals_us)
    return curves
