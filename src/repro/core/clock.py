"""Simulated clock and per-world time accounting.

The paper measures how a dirty-page-tracking technique splits time between
four "worlds": the tracked application, the tracker (technique code ``C_x``
plus tracking routine ``C_p``), the guest kernel, and the hypervisor.  The
VM under test has a single dedicated vCPU and the tracker runs in the same
thread as the tracked application (paper §VI-B), so simulated wall-clock
time is simply the sum of every charge: whenever the tracker, kernel or
hypervisor runs, the tracked application is *not* running.

:class:`SimClock` is that single timeline.  Every charge names a
:class:`World` and an event label; the clock keeps

* ``now_us``           — total elapsed simulated time,
* per-world totals     — e.g. time spent in the hypervisor,
* per-event totals     — e.g. total time spent in ``pf_user`` events,
* per-event counts     — e.g. how many page faults occurred.

The event ledger is what the paper's Formulas 1-4 consume (§VI-B): they
estimate tracker/tracked execution time from event counts times unit costs,
and we validate those estimates against the clock's measured totals exactly
as the paper validates against real hardware.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field

__all__ = ["World", "SimClock", "ClockSnapshot"]


class World(enum.Enum):
    """Who is consuming CPU time for a given charge."""

    TRACKED = "tracked"
    TRACKER = "tracker"
    KERNEL = "kernel"
    HYPERVISOR = "hypervisor"
    OTHER = "other"


@dataclass(frozen=True)
class ClockSnapshot:
    """Immutable copy of a clock's counters, used to measure intervals."""

    now_us: float
    world_us: dict[str, float]
    event_us: dict[str, float]
    event_count: dict[str, int]


class SimClock:
    """Single-timeline simulated clock with event attribution.

    All durations are in microseconds (the unit of the paper's Table Va).
    """

    def __init__(self) -> None:
        self.now_us: float = 0.0
        self._world_us: Counter[World] = Counter()
        self._event_us: Counter[str] = Counter()
        self._event_count: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def charge(self, us: float, world: World, event: str, count: int = 1) -> None:
        """Advance time by ``us`` microseconds attributed to ``world``.

        ``count`` records how many occurrences of ``event`` this charge
        covers (batch charging: one call may account for, say, 512 logged
        pages).  ``us`` is the *total* time for all ``count`` occurrences.
        """
        if us < 0:
            raise ValueError(f"negative charge: {us} us for event {event!r}")
        if count < 0:
            raise ValueError(f"negative count: {count} for event {event!r}")
        self.now_us += us
        self._world_us[world] += us
        self._event_us[event] += us
        self._event_count[event] += count

    def count_only(self, event: str, count: int = 1) -> None:
        """Record occurrences of ``event`` with no time cost."""
        if count < 0:
            raise ValueError(f"negative count: {count} for event {event!r}")
        self._event_count[event] += count

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def world_us(self, world: World) -> float:
        return float(self._world_us[world])

    def event_us(self, event: str) -> float:
        return float(self._event_us[event])

    def event_count(self, event: str) -> int:
        return int(self._event_count[event])

    def events(self) -> dict[str, int]:
        """All event counts seen so far."""
        return dict(self._event_count)

    def snapshot(self) -> ClockSnapshot:
        return ClockSnapshot(
            now_us=self.now_us,
            world_us={w.value: float(v) for w, v in self._world_us.items()},
            event_us=dict(self._event_us),
            event_count=dict(self._event_count),
        )

    # ------------------------------------------------------------------
    # interval measurement
    # ------------------------------------------------------------------
    def since(self, snap: ClockSnapshot) -> ClockSnapshot:
        """Delta between now and an earlier :meth:`snapshot`."""
        world_us = {
            w.value: float(self._world_us[w]) - snap.world_us.get(w.value, 0.0)
            for w in World
        }
        event_us = {
            e: float(v) - snap.event_us.get(e, 0.0) for e, v in self._event_us.items()
        }
        event_count = {
            e: int(v) - snap.event_count.get(e, 0)
            for e, v in self._event_count.items()
        }
        return ClockSnapshot(
            now_us=self.now_us - snap.now_us,
            world_us=world_us,
            event_us=event_us,
            event_count=event_count,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now_us={self.now_us:.3f})"


@dataclass
class StopWatch:
    """Convenience pairing of a clock and a start snapshot."""

    clock: SimClock
    start: ClockSnapshot = field(init=False)

    def __post_init__(self) -> None:
        self.start = self.clock.snapshot()

    def elapsed(self) -> ClockSnapshot:
        return self.clock.since(self.start)
