"""The dirty-page-tracking API: one interface, five techniques.

Trackers (CRIU, Boehm GC, user code) program against
:class:`DirtyPageTracker`:

* :meth:`~DirtyPageTracker.start` — the paper's *initialization* phase;
* the *monitoring* phase is implicit (the tracked workload runs);
* :meth:`~DirtyPageTracker.collect` — the *collection* phase: VPNs
  dirtied since the previous collect (or since start);
* :meth:`~DirtyPageTracker.stop` — teardown.

Technique selection is by :class:`Technique` enum or name via
:func:`make_tracker`, which is what the benchmark harness sweeps.
"""

from __future__ import annotations

import abc
import enum

import numpy as np

from repro.errors import TrackingError
from repro.guest.kernel import GuestKernel
from repro.guest.process import Process
from repro.obs import trace as otr
from repro.obs.events import EventKind

__all__ = [
    "Technique",
    "DirtyPageTracker",
    "available_modes",
    "make_tracker",
    "register_technique",
]


class Technique(enum.Enum):
    """The tracking techniques the paper compares (§VI)."""

    PROC = "proc"
    UFD = "ufd"
    SPML = "spml"
    EPML = "epml"
    ORACLE = "oracle"
    #: Graceful-degradation chain: EPML -> SPML -> /proc, falling forward
    #: after consecutive failures (robustness layer, DESIGN.md §7).
    FALLBACK = "fallback"


class DirtyPageTracker(abc.ABC):
    """Track which pages of one process get written."""

    technique: Technique

    def __init__(self, kernel: GuestKernel, process: Process) -> None:
        self.kernel = kernel
        self.process = process
        self._started = False
        self.n_collections = 0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Initialization phase (paper Fig. 1)."""
        if self._started:
            raise TrackingError(f"{self.technique.value} tracker already started")
        self._do_start()
        self._started = True

    def collect(self) -> np.ndarray:
        """Dirty VPNs since the previous collect; re-arms tracking."""
        if not self._started:
            raise TrackingError("collect before start")
        self.n_collections += 1
        out = self._do_collect()
        out = np.asarray(out, dtype=np.int64)
        if otr.ACTIVE is not None:
            s = otr.ACTIVE
            fields = {"technique": self.technique.value, "n_vpns": int(out.size)}
            if s.detail:
                # The reported set itself, so trace invariants can check
                # it against the WRITE events that preceded this collect.
                fields["vpns"] = [int(x) for x in np.sort(out)]
            s.emit(EventKind.COLLECT, **fields)
            s.metrics.inc(f"collect.{self.technique.value}")
            s.metrics.observe("collect.n_vpns", int(out.size))
        return out

    def stop(self) -> None:
        if not self._started:
            return
        self._do_stop()
        self._started = False

    def abort(self) -> None:
        """Crash-only stop: mark not-started without running teardown.

        Used by recovery paths when the orderly ``_do_stop`` is itself
        failing; the caller is responsible for whatever force-cleanup the
        backing mechanism needs (e.g. ``OohModule.force_detach``).
        """
        self._started = False

    def __enter__(self) -> "DirtyPageTracker":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- hooks ---------------------------------------------------------------
    @abc.abstractmethod
    def _do_start(self) -> None: ...

    @abc.abstractmethod
    def _do_collect(self) -> np.ndarray: ...

    @abc.abstractmethod
    def _do_stop(self) -> None: ...


_REGISTRY: dict[Technique, type[DirtyPageTracker]] = {}


def register_technique(cls: type[DirtyPageTracker]) -> type[DirtyPageTracker]:
    """Class decorator adding a tracker implementation to the registry."""
    technique = getattr(cls, "technique", None)
    if not isinstance(technique, Technique):
        raise TrackingError(f"{cls.__name__} lacks a technique attribute")
    _REGISTRY[technique] = cls
    return cls


def available_modes() -> tuple[str, ...]:
    """Mode strings with a registered implementation, in enum order.

    The serverless facade (and anything else selecting a technique by
    string) sweeps this instead of hard-coding the technique list, so a
    newly registered technique is picked up everywhere at once.
    """
    from repro.core import techniques as _impls  # noqa: F401

    return tuple(t.value for t in Technique if t in _REGISTRY)


def make_tracker(
    technique: Technique | str,
    kernel: GuestKernel,
    process: Process,
    **kwargs: object,
) -> DirtyPageTracker:
    """Instantiate a tracker for ``technique`` over ``process``."""
    # Importing the implementations lazily avoids an import cycle and
    # ensures the registry is populated.
    from repro.core import techniques as _impls  # noqa: F401

    if isinstance(technique, str):
        technique = Technique(technique)
    cls = _REGISTRY.get(technique)
    if cls is None:
        raise TrackingError(f"no implementation for {technique}")
    return cls(kernel, process, **kwargs)
