"""Cost model: converts simulator micro-events into simulated time.

Every architectural mechanism in the simulator (page fault, vmexit,
hypercall, vmread/vmwrite, PML-buffer copy, reverse mapping, ...) charges
the :class:`~repro.core.clock.SimClock` through a :class:`CostModel`.  Unit
costs come from the paper's Table Va/Vb via
:mod:`repro.core.calibration`; a handful of costs the paper does not
itemise (raw vmexit round trip, posted-interrupt delivery, hypercall entry)
use conventional microarchitecture values and are exposed as
:class:`CostParams` fields so ablation benchmarks can sweep them.

Event-name constants (the ``EV_*`` strings) are the vocabulary shared by
the whole simulator: the clock ledgers them, and
:mod:`repro.core.formulas` reconstructs the paper's estimation formulas
from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core import calibration
from repro.core.calibration import SizeCurve

__all__ = [
    "CostParams",
    "CostModel",
    # event vocabulary
    "EV_CONTEXT_SWITCH",
    "EV_PF_KERNEL",
    "EV_PF_USER",
    "EV_PF_MINOR",
    "EV_VMREAD",
    "EV_VMWRITE",
    "EV_VMEXIT",
    "EV_HYPERCALL",
    "EV_PML_FULL_VMEXIT",
    "EV_PML_LOG",
    "EV_SELF_IPI",
    "EV_CLEAR_REFS",
    "EV_PT_WALK_USER",
    "EV_REVERSE_MAP",
    "EV_RB_COPY",
    "EV_ENABLE_LOGGING",
    "EV_DISABLE_LOGGING",
    "EV_IOCTL_INIT_PML",
    "EV_IOCTL_DEACT_PML",
    "EV_HC_INIT_PML",
    "EV_HC_INIT_PML_SHADOW",
    "EV_HC_DEACT_PML",
    "EV_HC_DEACT_PML_SHADOW",
    "EV_UFD_REGISTER",
    "EV_UFD_WRITE_PROTECT",
    "EV_UFD_WAKE",
    "EV_TLB_FLUSH",
    "EV_SCHED_SWITCH",
    "EV_COMPUTE",
    "EV_TRACKING_ROUTINE",
    "EV_DISK_WRITE",
    "EV_MIGRATION_SEND",
    "EV_NET_PAGE_PULL",
    "EV_NET_BACKOFF",
    "EV_POSTCOPY_SWITCH",
    "EV_BALLOON_PAGE",
    "EV_RECLAIM_COPY",
    "EV_REFAULT_COPY",
]

# ---------------------------------------------------------------------------
# Event vocabulary
# ---------------------------------------------------------------------------
EV_CONTEXT_SWITCH = "context_switch"  # M1
EV_PF_KERNEL = "pf_kernel"  # M5: soft-dirty write-protect fault
EV_PF_USER = "pf_user"  # M6: ufd fault resolved in userspace
EV_PF_MINOR = "pf_minor"  # first-touch demand paging
EV_VMREAD = "vmread"  # M7
EV_VMWRITE = "vmwrite"  # M8
EV_VMEXIT = "vmexit"  # generic guest->hypervisor trap
EV_HYPERCALL = "hypercall"  # generic hypercall entry/exit
EV_PML_FULL_VMEXIT = "pml_full_vmexit"  # PML buffer full trap
EV_PML_LOG = "pml_log"  # one address logged by the PML circuit
EV_SELF_IPI = "self_ipi"  # EPML posted-interrupt delivery
EV_CLEAR_REFS = "clear_refs"  # M15
EV_PT_WALK_USER = "pt_walk_user"  # M16: pagemap parse
EV_REVERSE_MAP = "reverse_map"  # M17: GPA->GVA
EV_RB_COPY = "rb_copy"  # M18: PML buffer -> ring buffer
EV_ENABLE_LOGGING = "enable_logging"  # M13 (SPML schedule-in hypercall)
EV_DISABLE_LOGGING = "disable_logging"  # M14 (SPML schedule-out hypercall)
EV_IOCTL_INIT_PML = "ioctl_init_pml"  # M3
EV_IOCTL_DEACT_PML = "ioctl_deact_pml"  # M4
EV_HC_INIT_PML = "hc_init_pml"  # M9
EV_HC_INIT_PML_SHADOW = "hc_init_pml_shadow"  # M10
EV_HC_DEACT_PML = "hc_deact_pml"  # M11
EV_HC_DEACT_PML_SHADOW = "hc_deact_pml_shadow"  # M12
EV_UFD_REGISTER = "ufd_register"
EV_UFD_WRITE_PROTECT = "ufd_write_protect"  # M2
EV_UFD_WAKE = "ufd_wake"
EV_TLB_FLUSH = "tlb_flush"
EV_SCHED_SWITCH = "sched_switch"
EV_COMPUTE = "compute"  # workload's own work
EV_TRACKING_ROUTINE = "tracking_routine"  # the paper's C_p
EV_DISK_WRITE = "disk_write"  # CRIU image writes
EV_MIGRATION_SEND = "migration_page_send"  # pre-copy page transfer
EV_NET_PAGE_PULL = "net_page_pull"  # post-copy demand fetch over the link
EV_NET_BACKOFF = "net_backoff"  # partition retry wait
EV_POSTCOPY_SWITCH = "postcopy_switchover"  # pre->post-copy state handoff
EV_SNAPSHOT_MAP = "snapshot_map"  # serverless CoW restore mapping
EV_SNAPSHOT_COPY = "snapshot_copy"  # serverless diff read / merge write
EV_BALLOON_PAGE = "balloon_page"  # hypervisor EPT map/unmap per ballooned page
EV_RECLAIM_COPY = "reclaim_copy"  # reclaimed page content saved to swap store
EV_REFAULT_COPY = "refault_copy"  # swap-store content reinstalled on refault


@dataclass(frozen=True)
class CostParams:
    """All scalar unit costs, microseconds.

    Table Va values default from :data:`repro.core.calibration.TABLE_VA_US`;
    the remaining fields are microarchitectural conventions documented in
    DESIGN.md §5 and swept by the ablation benchmarks.
    """

    context_switch_us: float = calibration.TABLE_VA_US["m1_context_switch"]
    ioctl_init_pml_us: float = calibration.TABLE_VA_US["m3_ioctl_init_pml"]
    ioctl_deact_pml_us: float = calibration.TABLE_VA_US["m4_ioctl_deact_pml"]
    vmread_us: float = calibration.TABLE_VA_US["m7_vmread"]
    vmwrite_us: float = calibration.TABLE_VA_US["m8_vmwrite"]
    hc_init_pml_us: float = calibration.TABLE_VA_US["m9_hc_init_pml"]
    hc_init_pml_shadow_us: float = calibration.TABLE_VA_US["m10_hc_init_pml_shadow"]
    hc_deact_pml_us: float = calibration.TABLE_VA_US["m11_hc_deact_pml"]
    hc_deact_pml_shadow_us: float = calibration.TABLE_VA_US["m12_hc_deact_pml_shadow"]
    enable_logging_us: float = calibration.TABLE_VA_US["m13_enable_logging"]

    # Not itemised by the paper; conventional values.
    vmexit_roundtrip_us: float = 2.0  # raw trap + resume
    hypercall_entry_us: float = 1.2  # hypercall dispatch on top of the trap
    self_ipi_us: float = 0.5  # posted-interrupt delivery, no vmexit
    tlb_flush_us: float = 3.0
    pf_minor_us: float = 1.0  # demand-paging fault (all techniques alike)
    ufd_register_us: float = 4.0  # UFFDIO_REGISTER on a range
    ufd_wake_us: float = 0.6  # UFFDIO_WAKE / write-unprotect wakeup
    disk_write_us_per_page: float = 1.5  # CRIU image write bandwidth proxy
    pml_log_us: float = 0.0  # the circuit logs for free (paper §II-B)
    pte_dirty_clear_us: float = 0.01  # per-page PTE dirty-bit clear (EPML re-arm)
    disable_logging_call_us: float = 4.0  # SPML schedule-out flush bookkeeping
    # OoH-SPP (paper §III-D extension): init assumed comparable to PML
    # init; per-page protect is a table write behind one hypercall.
    hc_spp_init_us: float = 5495.0
    spp_protect_us: float = 0.9  # table-entry write inside the hypercall
    subpage_check_us: float = 0.0  # the permission check is in the walk
    # Simulated network (fleet layer).  ``net_send_us_per_page`` keeps the
    # historical LiveMigration per-page constant; links may override it.
    net_send_us_per_page: float = 3.3  # ~10 GbE for a 4 KiB page + headers
    net_latency_us: float = 50.0  # per-transfer propagation + stack traversal
    net_spike_factor: float = 10.0  # latency multiplier under a spike fault
    net_backoff_us: float = 200.0  # wait per partition-retry attempt
    postcopy_state_us: float = 300.0  # pre->post-copy switchover bookkeeping
    # Serverless snapshot layer.  Mapping is a CoW remap (page-table play,
    # no copy); diff extraction and merge move page contents, so they pay
    # a memcpy-rate per-page cost.
    snapshot_map_us_per_page: float = 0.12  # CoW mapping bookkeeping
    snapshot_copy_us_per_page: float = 0.45  # diff read / merge write memcpy
    # Memory economics (fleet overcommit).  Balloon inflate/deflate is an
    # EPT map/unmap plus free-list play per page inside one hypercall;
    # reclaim/refault move page contents at memcpy rate (same order as the
    # snapshot copy path, which models the identical operation).
    balloon_page_us: float = 0.25  # per-page EPT map/unmap in the hypercall
    reclaim_copy_us_per_page: float = 0.45  # victim content -> swap store
    refault_copy_us_per_page: float = 0.45  # swap store -> fresh frame

    def with_overrides(self, **kwargs: float) -> "CostParams":
        """Return a copy with some fields replaced (ablation support)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class CostModel:
    """Scalar params plus the Table Vb size-dependent curves."""

    params: CostParams = field(default_factory=CostParams)
    curves: dict[str, SizeCurve] = field(default_factory=calibration.size_curves)

    # -- size-dependent helpers -------------------------------------------
    def curve(self, name: str) -> SizeCurve:
        return self.curves[name]

    def pf_kernel_unit_us(self, mem_pages: int) -> float:
        """Per-fault cost of a soft-dirty write-protect fault (M5)."""
        return self.curves["m5_pf_kernel"].unit(mem_pages)

    def pf_user_unit_us(self, mem_pages: int) -> float:
        """Per-fault cost of a ufd fault incl. userspace handling (M6)."""
        return self.curves["m6_pf_user"].unit(mem_pages)

    def clear_refs_us(self, mem_pages: int) -> float:
        """One ``echo 4 > clear_refs`` over an address space (M15)."""
        return float(self.curves["m15_clear_refs"].total(mem_pages))

    def pt_walk_user_us(self, mem_pages: int) -> float:
        """One userspace pagemap parse over an address space (M16)."""
        return float(self.curves["m16_pt_walk_user"].total(mem_pages))

    def reverse_map_us(self, n_addresses: int, mem_pages: int) -> float:
        """Reverse-map ``n_addresses`` GPAs in a ``mem_pages`` space (M17).

        The published curve measures reverse mapping every page of an
        n-page space; per-address cost is that total divided by n, which
        preserves the super-linear growth (each lookup scans the pagemap).
        """
        if n_addresses <= 0:
            return 0.0
        return self.curves["m17_reverse_map"].unit(mem_pages) * n_addresses

    def rb_copy_us(self, n_entries: int, mem_pages: int) -> float:
        """Copy ``n_entries`` logged addresses into a ring buffer (M18)."""
        if n_entries <= 0:
            return 0.0
        return self.curves["m18_rb_copy"].unit(mem_pages) * n_entries

    def disable_logging_us(self, mem_pages: int, n_calls: int) -> float:
        """Per-call cost of the SPML ``disable_logging`` hypercall (M14).

        Table Vb reports the summed cost over a run; we spread it over the
        run's schedule-out count.
        """
        if n_calls <= 0:
            return 0.0
        return float(self.curves["m14_disable_logging"].total(mem_pages)) / n_calls

    def ufd_write_protect_us(self, mem_pages: int) -> float:
        """UFFDIO_WRITEPROTECT over an address space (M2).

        The paper marks M2 size-dependent but does not tabulate it; like
        ``clear_refs`` it is a kernel PTE walk plus TLB flush, so we reuse
        the M15 curve (documented substitution, DESIGN.md §5).
        """
        return float(self.curves["m15_clear_refs"].total(mem_pages))
