"""OoH for Intel SPP: sub-page write permissions for guest userspace.

The paper announces this as the next OoH application (§III-D): secure
heap allocators mitigate buffer overflows with guard pages, paying 4 KiB
of waste per allocation; exposing SPP to the guest lets them guard
128-byte *sub-pages* instead — a 32x waste reduction.

Following the OoH methodology (§IV-A): a guest kernel module mediates the
feature (hypercalls configure the SPP table; the hypervisor keeps sole
custody of HPAs), and violations come back to the guest as a virtual
interrupt the module routes to the registered userspace handler.
"""

from __future__ import annotations

from typing import Callable

from repro.core.clock import World
from repro.errors import TrackingError
from repro.guest.kernel import GuestKernel
from repro.guest.process import Process
from repro.hw.interrupts import VECTOR_OOH_SPP_VIOLATION
from repro.hw.spp import SUBPAGES_PER_PAGE, SppTable
from repro.hypervisor import hypercalls as hc

__all__ = ["OohSpp"]

EV_HC_SPP_INIT = "hc_spp_init"
EV_SPP_PROTECT = "spp_protect"
EV_SPP_VIOLATION_DELIVERED = "spp_violation_delivered"

ViolationHandler = Callable[[int, int, int], None]  # (pid, vpn, subpage)


class OohSpp:
    """Guest-side OoH-SPP module + library."""

    def __init__(self, kernel: GuestKernel) -> None:
        self.kernel = kernel
        self.clock = kernel.clock
        self.costs = kernel.costs
        self._spp: SppTable | None = None
        self._handlers: list[ViolationHandler] = []
        self.n_violations_delivered = 0

    # ------------------------------------------------------------------
    def init(self) -> None:
        """Enable SPP for this VM (one hypercall, like EPML's init)."""
        if self._spp is not None:
            raise TrackingError("OoH-SPP already initialised")
        self.clock.charge(
            self.costs.params.hc_spp_init_us, World.TRACKER, EV_HC_SPP_INIT
        )
        self._spp = self.kernel.vm.vcpu.hypercall(hc.HC_OOH_SPP_INIT)
        # SMP: the violation interrupt is injected on the vCPU that took
        # the SPP vmexit, so the handler registers in every vCPU's IDT.
        for idt in self.kernel.idts:
            idt.register(VECTOR_OOH_SPP_VIOLATION, self._on_violation_interrupt)

    def close(self) -> None:
        if self._spp is not None:
            for idt in self.kernel.idts:
                idt.unregister(VECTOR_OOH_SPP_VIOLATION)
            self._spp = None
            self._handlers.clear()

    def _require_init(self) -> SppTable:
        if self._spp is None:
            raise TrackingError("OoH-SPP not initialised")
        return self._spp

    # ------------------------------------------------------------------
    def protect_page(self, process: Process, vpn: int, write_vector: int) -> None:
        """Install a sub-page write vector on one of the process's pages.

        The page is demand-mapped if needed (the allocator protects pages
        it is about to hand out).
        """
        self._require_init()
        if not process.space.pt.present_mask([vpn]).any():
            self.kernel.access(process, [vpn], True)
        gpfn = int(process.space.pt.translate([vpn])[0])
        self.clock.charge(
            self.costs.params.spp_protect_us, World.TRACKED, EV_SPP_PROTECT
        )
        self.kernel.vm.vcpu.hypercall(hc.HC_OOH_SPP_PROTECT, gpfn, write_vector)

    def unprotect_page(self, process: Process, vpn: int) -> None:
        self._require_init()
        gpfn = int(process.space.pt.translate([vpn])[0])
        self.kernel.vm.vcpu.hypercall(hc.HC_OOH_SPP_UNPROTECT, gpfn)

    def guard_subpages(
        self, process: Process, vpn: int, guarded: list[int]
    ) -> None:
        """Write-protect exactly the given sub-pages of one page."""
        vector = (1 << SUBPAGES_PER_PAGE) - 1
        for s in guarded:
            vector &= ~(1 << int(s))
        self.protect_page(process, vpn, vector)

    # ------------------------------------------------------------------
    def add_violation_handler(self, handler: ViolationHandler) -> None:
        self._handlers.append(handler)

    def _on_violation_interrupt(self, vector: int) -> None:
        record = self.kernel.vm.last_spp_violation
        if record is None:
            return
        self.n_violations_delivered += 1
        self.clock.count_only(EV_SPP_VIOLATION_DELIVERED)
        pid, vpn, subpage = record
        for handler in self._handlers:
            handler(pid, vpn, subpage)
