"""The OoH library: userspace lib + guest kernel module (UIO style).

The paper ships OoH as a UIO-like driver pair (§IV-B): a kernel module
(*OoH Module*) that owns the privileged plumbing, and a userspace library
(*OoH Lib*) that trackers link against.  The tracker registers the PID of
the tracked process; from then on the processor logs dirty-page addresses,
which the tracker periodically fetches from a ring buffer.

* **SPML attachment** — the module issues the ``HC_OOH_INIT_PML``
  hypercall (M9); every schedule-in/out of the tracked process costs an
  ``enable_logging``/``disable_logging`` hypercall pair (M13/M14); the
  hypervisor fills a shared ring buffer with **GPAs** at PML-full vmexits;
  collection drains the ring and *reverse-maps* GPA -> GVA (M17, the
  paper's measured SPML bottleneck, Fig. 3).

* **EPML attachment** — the module issues the single
  ``HC_OOH_INIT_PML_SHADOW`` hypercall (M10), then configures the
  guest-level PML buffer itself with vmwrite on the shadow VMCS
  (``GUEST_PML_ADDRESS`` is EPT-translated by the extended ISA);
  schedule-in/out costs one vmwrite (M8) each; the processor logs **GVAs**
  and raises a posted self-IPI on buffer-full, handled by the module,
  which copies into a per-process ring buffer; collection is a plain ring
  drain — no reverse mapping, no hypercalls.
"""

from __future__ import annotations

import enum
import weakref
from dataclasses import dataclass

import numpy as np

from repro.core.clock import SimClock, World
from repro.core.costs import (
    EV_DISABLE_LOGGING,
    EV_ENABLE_LOGGING,
    EV_HC_DEACT_PML,
    EV_HC_DEACT_PML_SHADOW,
    EV_HC_INIT_PML,
    EV_HC_INIT_PML_SHADOW,
    EV_IOCTL_DEACT_PML,
    EV_IOCTL_INIT_PML,
    EV_PT_WALK_USER,
    EV_RB_COPY,
    EV_REVERSE_MAP,
    CostModel,
)
from repro.core.ringbuffer import RingBuffer
from repro.errors import TrackerDetachedError, TrackingError
from repro.guest.kernel import GuestKernel
from repro.guest.process import Process
from repro.hw import vmcs as vmcsf
from repro.hw.interrupts import VECTOR_OOH_PML_FULL
from repro.hw.pagetable import PTE_DIRTY
from repro.hypervisor import hypercalls as hc
from repro.obs import trace as otr
from repro.obs.events import EventKind
from repro.retry import Retrier

__all__ = ["OohKind", "OohModule", "OohLib", "OohAttachment"]

#: Default per-process ring buffer capacity (entries).
DEFAULT_RING_CAPACITY = 1 << 20


class OohKind(enum.Enum):
    SPML = "spml"
    EPML = "epml"


@dataclass
class CollectStats:
    """Diagnostics for one collection."""

    n_entries: int = 0
    n_vpns: int = 0
    n_unresolved: int = 0  # SPML GPAs with no current mapping
    dropped: int = 0  # ring-buffer overflow losses since attach
    n_resyncs: int = 0  # conservative resyncs performed this collect
    n_retries: int = 0  # transient-failure retries this collect
    n_recovered_ipis: int = 0  # lost-self-IPI batches drained at collect
    n_lost_vmexits: int = 0  # PML-full vmexits dropped since attach
    resynced: bool = False  # result includes the whole mapped set


class OohAttachment:
    """One tracked process; created via :meth:`OohModule.attach`."""

    def __init__(
        self,
        module: "OohModule",
        process: Process,
        kind: OohKind,
        ring: RingBuffer,
        reverse_map_cache: bool = False,
        resync_on_loss: bool = False,
    ) -> None:
        self.module = module
        self.process = process
        self.kind = kind
        self.ring = ring
        self.active = True
        #: Set by :meth:`OohModule.force_detach` (crash-only teardown):
        #: distinguishes a racing collect (lost entries, recoverable)
        #: from plain use-after-detach misuse.
        self.force_detached = False
        self.last_stats = CollectStats()
        #: When True, any detected entry loss (ring overflow, circuit
        #: drop, swallowed vmexit) triggers a conservative resync: the
        #: collect returns every mapped page, so no dirty page can be
        #: missed at the price of over-reporting.  Off by default — the
        #: completeness experiments measure raw loss behaviour.
        self.resync_on_loss = resync_on_loss
        #: Loss-counter baseline; updated by each collect (see
        #: :meth:`OohModule._loss_counter`).
        self._loss_mark = 0
        #: SPML only: cache resolved GPA -> GVA translations so repeated
        #: collections skip the expensive reverse mapping (the paper's
        #: Boehm integration "reuses the addresses collected during the
        #: first cycle", §VI-E footnote).
        self._rmap_cache: np.ndarray | None = (
            np.full(module.kernel.vm.mem_pages, -1, dtype=np.int64)
            if (reverse_map_cache and kind is OohKind.SPML)
            else None
        )

    def collect(self) -> np.ndarray:
        """Fetch dirty VPNs logged since the previous collect."""
        if not self.active:
            if self.force_detached:
                # Force-detach can race a collect (crash-only teardown);
                # the entries logged since the last collect are gone, so
                # this is a loss condition, not misuse — recovery layers
                # (the fallback chain) conservatively resync.
                raise TrackerDetachedError(
                    "collect on a force-detached OoH attachment: "
                    "logged entries lost"
                )
            raise TrackingError("fetch on a detached OoH attachment")
        if self.kind is OohKind.SPML:
            return self.module._collect_spml(self)
        return self.module._collect_epml(self)

    def detach(self) -> None:
        if self.active:
            self.module._detach(self)
            self.active = False


class OohModule:
    """The guest kernel module half of the OoH driver.

    A kernel module loads once per kernel: use :meth:`shared` (what the
    tracker techniques do) unless a test needs an isolated instance.
    """

    _instances: "weakref.WeakKeyDictionary[GuestKernel, OohModule]"

    def __init__(
        self, kernel: GuestKernel, ring_capacity: int = DEFAULT_RING_CAPACITY
    ) -> None:
        self.kernel = kernel
        self.ring_capacity = ring_capacity
        self.clock: SimClock = kernel.clock
        self.costs: CostModel = kernel.costs
        self._attachment: OohAttachment | None = None
        #: EPML batches awaiting the self-IPI handler: (vcpu_id, entries).
        self._pending_guest_entries: list[tuple[int, np.ndarray]] = []
        self._idt_registered = False
        #: EPML: one guest-level buffer frame per vCPU (index = vcpu_id).
        self._guest_buf_gpfns: list[int] = []
        self.n_self_ipis_handled = 0
        #: Transient hypercall / allocation failures back off and retry
        #: (kernel context: the module issues the calls).
        self.retrier = Retrier(self.clock, World.KERNEL)

    def _hc(self, nr: int, *args: object, vcpu=None) -> object:
        """Issue a hypercall (on ``vcpu``, default BSP), retrying
        transient (EAGAIN-class) failures."""
        vc = self.vcpu if vcpu is None else vcpu
        return self.retrier.call(lambda: vc.hypercall(nr, *args))

    @classmethod
    def shared(
        cls, kernel: GuestKernel, ring_capacity: int = DEFAULT_RING_CAPACITY
    ) -> "OohModule":
        """The per-kernel module instance (insmod once)."""
        module = cls._instances.get(kernel)
        if module is None:
            module = cls(kernel, ring_capacity)
            cls._instances[kernel] = module
        return module

    @property
    def vcpu(self):
        return self.kernel.vm.vcpu

    def _cur_vcpu(self, process: Process):
        """The vCPU ``process`` currently runs on — module code executes
        in that process's kernel context (SMP)."""
        return self.kernel.vm.vcpus[self.kernel.scheduler.vcpu_of(process)]

    # ------------------------------------------------------------------
    # attach / detach
    # ------------------------------------------------------------------
    def attach(
        self,
        process: Process,
        kind: OohKind,
        reverse_map_cache: bool = False,
        resync_on_loss: bool = False,
    ) -> OohAttachment:
        """Register a tracked PID (one at a time, like a UIO device)."""
        if self._attachment is not None and self._attachment.active:
            raise TrackingError("OoH module already tracking a process")
        if process.pid not in self.kernel.processes:
            raise TrackingError(f"unknown pid {process.pid}")
        if kind is OohKind.SPML:
            att = self._attach_spml(process, reverse_map_cache)
        else:
            att = self._attach_epml(process)
        att.resync_on_loss = resync_on_loss
        att._loss_mark = self._loss_counter(att)
        self._attachment = att
        return att

    def _loss_counter(self, att: OohAttachment) -> int:
        """Monotonic count of entries lost on ``att``'s datapath.

        A collect compares this against the attachment's baseline: any
        increase means dirty addresses vanished before the tracker saw
        them, and (with ``resync_on_loss``) triggers a conservative
        resync.  All components are *surfaced* counters, so losses are
        never silent even when resync is off.
        """
        # SMP: loss can occur on any vCPU the tracked process visited,
        # so counters sum across vCPUs.
        vcpus = self.kernel.vm.vcpus
        if att.kind is OohKind.EPML:
            return att.ring.total_dropped + sum(
                vc.pml.n_guest_dropped + vc.pml.n_guest_injected_drops
                for vc in vcpus
            )
        return att.ring.total_dropped + sum(
            vc.pml.n_hyp_dropped
            + vc.pml.n_hyp_injected_drops
            + vc.n_dropped_vmexits
            for vc in vcpus
        )

    # -- SPML -------------------------------------------------------------
    def _attach_spml(
        self, process: Process, reverse_map_cache: bool
    ) -> OohAttachment:
        self.clock.charge(
            self.costs.params.hc_init_pml_us, World.TRACKER, EV_HC_INIT_PML
        )
        ring = self._hc(hc.HC_OOH_INIT_PML, self.ring_capacity)
        att = OohAttachment(
            self, process, OohKind.SPML, ring, reverse_map_cache=reverse_map_cache
        )
        self._install_sched_hooks(att)
        # The tracked process is currently on-CPU: start logging now.
        self._spml_enable(process)
        return att

    def _spml_enable(self, process: Process) -> None:
        self.clock.charge(
            self.costs.params.enable_logging_us, World.KERNEL, EV_ENABLE_LOGGING
        )
        # Issued on the vCPU the process runs on: logging follows the
        # tracked process across vCPUs (sched-out drains the old vCPU's
        # buffer, sched-in arms the new one's).
        self._hc(hc.HC_OOH_ENABLE_LOGGING, vcpu=self._cur_vcpu(process))

    def _spml_disable(self, process: Process) -> None:
        self.clock.charge(
            self.costs.params.disable_logging_call_us,
            World.KERNEL,
            EV_DISABLE_LOGGING,
        )
        self._hc(hc.HC_OOH_DISABLE_LOGGING, vcpu=self._cur_vcpu(process))

    def _collect_spml(self, att: OohAttachment) -> np.ndarray:
        """Flush + drain + reverse-map + re-arm (tracker context)."""
        retries_before = self.retrier.n_retries
        # Flush residual PML-buffer entries into the ring and pause.
        self._spml_disable(att.process)
        gpas = att.ring.pop_all()
        stats = CollectStats(
            n_entries=int(gpas.size),
            dropped=att.ring.total_dropped,
            n_lost_vmexits=sum(
                vc.n_dropped_vmexits for vc in self.kernel.vm.vcpus
            ),
        )
        mem_pages = att.process.space.n_pages
        self.clock.charge(
            self.costs.rb_copy_us(int(gpas.size), mem_pages),
            World.TRACKER,
            EV_RB_COPY,
            int(gpas.size),
        )
        gpas = np.unique(gpas).astype(np.int64)
        # Reverse mapping parses /proc/PID/pagemap: one userspace page-
        # table walk (M16, Fig. 3's "PT walk" slice) whenever addresses
        # must actually be resolved (cache hits skip the parse) ...
        needs_walk = gpas.size > 0 and (
            att._rmap_cache is None or bool((att._rmap_cache[gpas] < 0).any())
        )
        if needs_walk:
            self.clock.charge(
                self.costs.pt_walk_user_us(mem_pages),
                World.TRACKER,
                EV_PT_WALK_USER,
            )
        # ... plus the per-address search: the SPML bottleneck (M17).
        if att._rmap_cache is not None:
            cached = att._rmap_cache[gpas]
            miss = gpas[cached < 0]
            # Cache hits cost a table lookup (~ring-copy rate); misses pay
            # the full pagemap-scan reverse mapping.
            n_hits = int(gpas.size - miss.size)
            self.clock.charge(
                self.costs.rb_copy_us(n_hits, mem_pages),
                World.TRACKER,
                "reverse_map_cached",
                n_hits,
            )
            self.clock.charge(
                self.costs.reverse_map_us(int(miss.size), mem_pages),
                World.TRACKER,
                EV_REVERSE_MAP,
                int(miss.size),
            )
            if miss.size:
                att._rmap_cache[miss] = att.process.space.pt.reverse_lookup(miss)
            vpns = att._rmap_cache[gpas]
        else:
            self.clock.charge(
                self.costs.reverse_map_us(int(gpas.size), mem_pages),
                World.TRACKER,
                EV_REVERSE_MAP,
                int(gpas.size),
            )
            vpns = att.process.space.pt.reverse_lookup(gpas)
        stats.n_unresolved = int((vpns < 0).sum())
        vpns = vpns[vpns >= 0]
        # Re-arm the EPT dirty bits so the next interval re-logs.
        if gpas.size:
            self._hc(
                hc.HC_OOH_RESET_DIRTY,
                gpas.astype(np.int64),
                vcpu=self._cur_vcpu(att.process),
            )
        vpns = np.asarray(vpns, dtype=np.int64)
        vpns = self._maybe_resync(att, stats, vpns)
        self._spml_enable(att.process)
        stats.n_retries = self.retrier.n_retries - retries_before
        stats.n_vpns = int(vpns.size)
        att.last_stats = stats
        return vpns

    # -- EPML -------------------------------------------------------------
    def _attach_epml(self, process: Process) -> OohAttachment:
        self.clock.charge(
            self.costs.params.hc_init_pml_shadow_us,
            World.TRACKER,
            EV_HC_INIT_PML_SHADOW,
        )
        self._hc(hc.HC_OOH_INIT_PML_SHADOW)
        # Allocate one guest-level PML buffer (one guest page) *per vCPU*
        # and point each (shadow) VMCS at its own; the extended vmwrite
        # translates the GPA through the EPT.  Per-vCPU buffers mirror
        # PML's per-logical-processor architecture — two vCPUs must never
        # race on one buffer's index.
        for vc in self.kernel.vm.vcpus:
            buf_gpfn = int(
                self.retrier.call(lambda: self.kernel.vm.guest_frames.alloc(1))[0]
            )
            self._guest_buf_gpfns.append(buf_gpfn)
            vc.vmwrite(vmcsf.F_GUEST_PML_ADDRESS, buf_gpfn)
            vc.pml.configure_guest_buffer()
            vc.pml.on_guest_full = self._make_guest_full_handler(vc)
        if not self._idt_registered:
            # The self-IPI arrives on whichever vCPU's buffer filled, so
            # the handler registers in every vCPU's IDT.
            for idt in self.kernel.idts:
                idt.register(VECTOR_OOH_PML_FULL, self._self_ipi_handler)
            self._idt_registered = True
        ring = RingBuffer(self.ring_capacity)
        att = OohAttachment(self, process, OohKind.EPML, ring)
        self._install_sched_hooks(att)
        # Arm logging: the guest-level buffer records PTE dirty-bit 0 -> 1
        # transitions, so init clears the tracked process's dirty bits
        # (module-owned, no hypervisor involvement; part of the M3/M10
        # init cost).
        mapped = process.space.pt.mapped_vpns()
        if mapped.size:
            process.space.pt.clear_flags(mapped, PTE_DIRTY)
            # Downgraded translations must leave *every* vCPU's TLB or
            # cached dirty entries would let writes skip the 0 -> 1
            # logging circuit.
            self.kernel.tlb_shootdown(process, mapped)
        # Logging is armed on the vCPU the process currently runs on (the
        # sched hooks move it on migration).
        self._cur_vcpu(process).vmwrite(vmcsf.F_CTRL_ENABLE_GUEST_PML, 1)
        return att

    def _make_guest_full_handler(self, vc):
        """Hardware path: ``vc``'s buffer full -> posted self-IPI on ``vc``."""

        def on_full(entries: np.ndarray) -> None:
            self._pending_guest_entries.append((vc.vcpu_id, entries))
            vc.interrupts.post(VECTOR_OOH_PML_FULL)

        return on_full

    def _self_ipi_handler(self, vector: int) -> None:
        """Guest-side handler: copy logged GVAs to the process ring."""
        att = self._attachment
        if att is None or not att.active:
            self._pending_guest_entries.clear()
            return
        self.n_self_ipis_handled += 1
        while self._pending_guest_entries:
            src, entries = self._pending_guest_entries.pop(0)
            self.clock.charge(
                self.costs.rb_copy_us(int(entries.size), att.process.space.n_pages),
                World.KERNEL,
                EV_RB_COPY,
                int(entries.size),
            )
            att.ring.push(entries, source=src)

    def _collect_epml(self, att: OohAttachment) -> np.ndarray:
        """Plain ring drain; re-arm by clearing PTE dirty bits."""
        retries_before = self.retrier.n_retries
        stats = CollectStats()
        # Recover notification failures before draining: deliver any
        # injection-delayed self-IPIs, then sweep batches whose IPI was
        # lost outright (they sit in the pending list; the module finds
        # them when the tracker enters the collect path).
        for vc in self.kernel.vm.vcpus:
            vc.interrupts.flush_delayed()
        if self._pending_guest_entries:
            stats.n_recovered_ipis = len(self._pending_guest_entries)
            self._self_ipi_handler(VECTOR_OOH_PML_FULL)
        # Pull residual entries still in the guest-level PML buffers —
        # every vCPU the process visited may hold some; drained in
        # ascending vCPU id (deterministic merge order).
        for vc in self.kernel.vm.vcpus:
            residual = vc.pml.drain_guest()
            if residual.size:
                self.clock.charge(
                    self.costs.rb_copy_us(
                        int(residual.size), att.process.space.n_pages
                    ),
                    World.KERNEL,
                    EV_RB_COPY,
                    int(residual.size),
                )
                att.ring.push(residual, source=vc.vcpu_id)
        gvas = att.ring.pop_all()
        stats.n_entries = int(gvas.size)
        stats.dropped = att.ring.total_dropped
        self.clock.charge(
            self.costs.rb_copy_us(int(gvas.size), att.process.space.n_pages),
            World.TRACKER,
            EV_RB_COPY,
            int(gvas.size),
        )
        vpns = np.unique(gvas).astype(np.int64)
        # Re-arm: the module owns guest PTE dirty bits — no hypervisor.
        # Invalidate alongside (invlpg semantics): a TLB-cached dirty
        # translation would let the next write dodge the re-armed log.
        if vpns.size:
            att.process.space.pt.clear_flags(vpns, PTE_DIRTY)
            self.kernel.tlb_shootdown(att.process, vpns)
            self.clock.charge(
                self.costs.params.pte_dirty_clear_us * vpns.size,
                World.TRACKER,
                "pte_dirty_clear",
                int(vpns.size),
            )
        vpns = self._maybe_resync(att, stats, vpns)
        stats.n_retries = self.retrier.n_retries - retries_before
        stats.n_vpns = int(vpns.size)
        att.last_stats = stats
        return vpns

    # -- shared -------------------------------------------------------------
    def _install_sched_hooks(self, att: OohAttachment) -> None:
        # The vCPU is resolved *at hook time*: sched-out fires before the
        # scheduler's round-robin rotation (old vCPU), sched-in after it
        # (new vCPU) — so logging disarms where the process left and arms
        # where it landed.
        def on_out(proc: Process) -> None:
            if att.active and proc.pid == att.process.pid:
                if att.kind is OohKind.SPML:
                    self._spml_disable(proc)
                else:
                    self._cur_vcpu(proc).vmwrite(vmcsf.F_CTRL_ENABLE_GUEST_PML, 0)

        def on_in(proc: Process) -> None:
            if att.active and proc.pid == att.process.pid:
                if att.kind is OohKind.SPML:
                    self._spml_enable(proc)
                else:
                    self._cur_vcpu(proc).vmwrite(vmcsf.F_CTRL_ENABLE_GUEST_PML, 1)

        self.kernel.scheduler.add_sched_out_hook(on_out)
        self.kernel.scheduler.add_sched_in_hook(on_in)
        att._hooks = (on_out, on_in)  # type: ignore[attr-defined]

    def _detach(self, att: OohAttachment) -> None:
        self.kernel.scheduler.remove_hooks(*att._hooks)  # type: ignore[attr-defined]
        if att.kind is OohKind.SPML:
            self.clock.charge(
                self.costs.params.hc_deact_pml_us, World.TRACKER, EV_HC_DEACT_PML
            )
            self._hc(hc.HC_OOH_DEACT_PML)
        else:
            # Disarm logging on the vCPU currently running the process
            # (the only one armed); the deact hypercall then tears down
            # shadowing on every vCPU hypervisor-side.
            self._cur_vcpu(att.process).vmwrite(vmcsf.F_CTRL_ENABLE_GUEST_PML, 0)
            self.clock.charge(
                self.costs.params.hc_deact_pml_shadow_us,
                World.TRACKER,
                EV_HC_DEACT_PML_SHADOW,
            )
            self._hc(hc.HC_OOH_DEACT_PML_SHADOW)
            if self._guest_buf_gpfns:
                self.kernel.vm.guest_frames.free(self._guest_buf_gpfns)
                self._guest_buf_gpfns = []
        self._attachment = None

    # -- recovery ---------------------------------------------------------
    def _maybe_resync(
        self, att: OohAttachment, stats: CollectStats, vpns: np.ndarray
    ) -> np.ndarray:
        """Fold a conservative resync into the result if entries were lost."""
        loss_now = self._loss_counter(att)
        lost = loss_now - att._loss_mark
        att._loss_mark = loss_now
        if lost <= 0 or not att.resync_on_loss:
            return vpns
        mapped = self._conservative_resync(att)
        stats.n_resyncs += 1
        stats.resynced = True
        if otr.ACTIVE is not None:
            otr.ACTIVE.emit(
                EventKind.RESYNC,
                technique=att.kind.value,
                lost=int(lost),
                n_mapped=int(mapped.size),
            )
            otr.ACTIVE.metrics.inc("resync.conservative")
        return np.union1d(vpns, mapped).astype(np.int64)

    def _conservative_resync(self, att: OohAttachment) -> np.ndarray:
        """Mark the whole tracked VMA dirty after a detected loss.

        Entries vanished somewhere between the logging circuit and the
        ring, so the only safe answer is *every mapped page*; the walk is
        charged like a /proc pagemap scan and the dirty state is re-armed
        so the next interval starts clean.
        """
        mapped = att.process.space.pt.mapped_vpns()
        self.clock.charge(
            self.costs.pt_walk_user_us(att.process.space.n_pages),
            World.TRACKER,
            "conservative_resync",
        )
        if mapped.size == 0:
            return mapped
        if att.kind is OohKind.EPML:
            att.process.space.pt.clear_flags(mapped, PTE_DIRTY)
            self.kernel.tlb_shootdown(att.process, mapped)
        else:
            gpas = att.process.space.pt.translate(mapped)
            self._hc(hc.HC_OOH_RESET_DIRTY, gpas.astype(np.int64))
        return mapped.astype(np.int64)

    def force_detach(self) -> None:
        """Crash-only teardown: release module state without hypercalls.

        Used by the fallback chain when the orderly detach path itself is
        failing (e.g. exhausted hypercall retries): drop scheduler hooks,
        clear the coordination flags object-side, and free the guest
        buffer so another technique can attach immediately.
        """
        att = self._attachment
        if att is None:
            return
        att.active = False
        att.force_detached = True
        hooks = getattr(att, "_hooks", None)
        if hooks is not None:
            self.kernel.scheduler.remove_hooks(*hooks)
        self._pending_guest_entries.clear()
        vm = self.kernel.vm
        if att.kind is OohKind.SPML:
            vm.enabled_by_guest = False
            vm.spml_ring = None
            if not vm.enabled_by_hyp:
                for vc in vm.vcpus:
                    vc.vmcs.write(vmcsf.F_CTRL_ENABLE_PML, 0)
        else:
            # Object-level VMCS writes (no vmwrite cost/mode checks): the
            # "crashed" module cannot run the normal teardown path.
            for vc in vm.vcpus:
                vc.pml._guest_vmcs().write(vmcsf.F_CTRL_ENABLE_GUEST_PML, 0)
                vc.pml.on_guest_full = None
            if self._guest_buf_gpfns:
                self.kernel.vm.guest_frames.free(self._guest_buf_gpfns)
                self._guest_buf_gpfns = []
        self._attachment = None


class OohLib:
    """The userspace half: what trackers actually call.

    Mirrors the template-code API of the paper's UIO-style library: open
    the device, register the tracked PID, fetch addresses, close.
    """

    def __init__(self, module: OohModule) -> None:
        self.module = module
        self.clock = module.clock
        self.costs = module.costs

    def attach(
        self,
        process: Process,
        kind: OohKind,
        reverse_map_cache: bool = False,
        resync_on_loss: bool = False,
    ) -> OohAttachment:
        """ioctl(OOH_INIT) into the module (M3), then module setup."""
        self.clock.charge(
            self.costs.params.ioctl_init_pml_us, World.TRACKER, EV_IOCTL_INIT_PML
        )
        return self.module.attach(
            process, kind, reverse_map_cache, resync_on_loss=resync_on_loss
        )

    def fetch(self, attachment: OohAttachment) -> np.ndarray:
        """Fetch dirty VPNs collected since the last fetch."""
        return attachment.collect()

    def detach(self, attachment: OohAttachment) -> None:
        """ioctl(OOH_DEACT) (M4), then module teardown."""
        self.clock.charge(
            self.costs.params.ioctl_deact_pml_us, World.TRACKER, EV_IOCTL_DEACT_PML
        )
        attachment.detach()


OohModule._instances = weakref.WeakKeyDictionary()
