"""Shared ring buffer for logged page addresses.

In SPML the hypervisor copies PML-buffer contents into a ring buffer shared
with the guest OS; in EPML the OoH module copies the guest-level PML buffer
into a per-process ring buffer shared with the tracker (paper §IV-B).  Both
are the same structure: a fixed-capacity single-producer / single-consumer
queue of 64-bit page addresses.

The buffer stores page-frame numbers (not byte addresses) as ``uint64``.
On overflow it *drops the oldest* entries and counts them, mirroring how a
real shared ring would lose data if the consumer lags; trackers surface the
drop count so experiments can verify no loss occurred (evaluation question
3 in §VI: "to what extent [are they] able to efficiently capture all dirty
pages?").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.faults import injector as finj
from repro.faults.plan import FaultSite
from repro.obs import trace as otr
from repro.obs.events import EventKind

__all__ = ["RingBuffer"]


class RingBuffer:
    """Fixed-capacity FIFO of uint64 page-frame numbers."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"ring buffer capacity must be > 0: {capacity}")
        self._buf = np.zeros(capacity, dtype=np.uint64)
        self._capacity = capacity
        self._head = 0  # next read position
        self._size = 0
        self.total_pushed = 0
        self.total_dropped = 0
        #: SMP diagnostics: entries pushed per source (e.g. vCPU id).
        #: Only populated when producers pass ``source=`` to :meth:`push`;
        #: the differential tests use it to assert deterministic merge
        #: order across per-vCPU logs.
        self.pushed_by_source: dict = {}

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return self._size

    @property
    def free(self) -> int:
        return self._capacity - self._size

    # ------------------------------------------------------------------
    def push(self, pfns: np.ndarray | list[int], source=None) -> int:
        """Append page-frame numbers; drop oldest entries on overflow.

        ``source`` optionally tags the producer (e.g. the vCPU id whose
        PML buffer these entries came from) for per-source accounting.
        Returns the number of entries dropped to make room.
        """
        arr = np.asarray(pfns, dtype=np.uint64).ravel()
        n = len(arr)
        self.total_pushed += n
        if source is not None:
            self.pushed_by_source[source] = self.pushed_by_source.get(source, 0) + n
        if n == 0:
            return 0
        if n >= self._capacity:
            # Only the newest `capacity` entries survive.
            dropped = self._size + (n - self._capacity)
            self._buf[:] = arr[-self._capacity:]
            self._head = 0
            self._size = self._capacity
            self.total_dropped += dropped
            self._trace_drop(dropped, "organic")
            return dropped + self._injected_overflow()
        dropped = max(0, n - self.free)
        if dropped:
            self._head = (self._head + dropped) % self._capacity
            self._size -= dropped
            self.total_dropped += dropped
            self._trace_drop(dropped, "organic")
        tail = (self._head + self._size) % self._capacity
        first = min(n, self._capacity - tail)
        self._buf[tail:tail + first] = arr[:first]
        if first < n:
            self._buf[:n - first] = arr[first:]
        self._size += n
        return dropped + self._injected_overflow()

    def _injected_overflow(self) -> int:
        """Fault injection: a lagging consumer loses the oldest entries.

        Surfaced through the same ``total_dropped`` counter as organic
        overflow, so every existing drop-accounting path sees it.
        """
        if finj.ACTIVE is None:
            return 0
        k = finj.ACTIVE.drop_count(FaultSite.RING_OVERFLOW, self._size)
        if k:
            self._head = (self._head + k) % self._capacity
            self._size -= k
            self.total_dropped += k
            self._trace_drop(k, "injected")
        return k

    @staticmethod
    def _trace_drop(n: int, cause: str) -> None:
        if otr.ACTIVE is not None:
            otr.ACTIVE.emit(EventKind.RING_DROP, n=int(n), cause=cause)
            otr.ACTIVE.metrics.inc(f"ring.dropped.{cause}", int(n))

    def pop_all(self) -> np.ndarray:
        """Drain the buffer, returning entries in FIFO order."""
        out = self.peek_all()
        self._head = (self._head + self._size) % self._capacity
        self._size = 0
        return out

    def peek_all(self) -> np.ndarray:
        """Return entries in FIFO order without consuming them."""
        if self._size == 0:
            return np.empty(0, dtype=np.uint64)
        end = self._head + self._size
        if end <= self._capacity:
            return self._buf[self._head:end].copy()
        first = self._buf[self._head:].copy()
        second = self._buf[:end - self._capacity].copy()
        return np.concatenate([first, second])

    def clear(self) -> None:
        self._head = 0
        self._size = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RingBuffer(capacity={self._capacity}, size={self._size}, "
            f"pushed={self.total_pushed}, dropped={self.total_dropped})"
        )
