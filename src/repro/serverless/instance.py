"""One serverless function instance: restore → execute → diff → exit.

The lifecycle mirrors a faabric/Firecracker-style invocation:

1. **spawn** a short-lived process sized to the snapshot;
2. **prefault** the region with reads (demand paging maps the pages
   without dirtying them);
3. **map** the snapshot's contents over the region (CoW restore);
4. **track** — start the facade, execute the tenant's (frozen, reused)
   access plan, stamp the function's deterministic output tokens;
5. **diff** — extract the byte-exact delta with the commit sequence the
   driver assigned;
6. **exit** — stop tracking, tear the process down, frames return to the
   guest allocator for the next instance.

Output stamping is what keeps merged snapshots schedule-independent: a
real function's output bytes depend on its input, not on host scheduling,
but the simulator's organic write tokens are global-sequence numbers.
After the plan runs (organically, through the MMU — that is what the
trackers observe), the instance overwrites its written pages with
:func:`~repro.serverless.snapshot.output_tokens` derived from
(tenant, request), via the store path (no dirty-bit side effects).
"""

from __future__ import annotations

import numpy as np

from repro.guest.kernel import GuestKernel
from repro.guest.plan import AccessPlan, PlanSegment
from repro.serverless.snapshot import Snapshot, SnapshotDiff, output_tokens
from repro.serverless.tracker import UnifiedDirtyTracker

__all__ = ["FunctionInstance", "plan_write_vpns"]

#: Modes whose loss paths must resync for the merged diff to be complete.
_RESYNC_MODES = frozenset({"spml", "epml"})


def plan_write_vpns(plan: AccessPlan) -> np.ndarray:
    """The distinct VPNs a plan writes, ascending (its output footprint)."""
    written: list[np.ndarray] = []
    for item in plan.items:
        if not isinstance(item, PlanSegment):
            continue
        for vpns, write in item.batches:
            if write is True:
                written.append(vpns)
            elif write is not False:
                written.append(vpns[write])
    if not written:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(written)).astype(np.int64)


class FunctionInstance:
    """One invocation of a tenant's function against its snapshot."""

    def __init__(
        self,
        kernel: GuestKernel,
        mode: str,
        snapshot: Snapshot,
        tenant: str,
        request_id: int,
        plan: AccessPlan,
        write_vpns: np.ndarray | None = None,
        tracker_kwargs: dict | None = None,
    ) -> None:
        self.kernel = kernel
        self.mode = mode
        self.snapshot = snapshot
        self.tenant = tenant
        self.request_id = request_id
        self.plan = plan
        #: Precomputed per-plan by the driver (plans are reused across
        #: thousands of instances; the scan is per-plan, not per-instance).
        self.write_vpns = (
            write_vpns if write_vpns is not None else plan_write_vpns(plan)
        )
        kwargs = dict(tracker_kwargs or {})
        if mode in _RESYNC_MODES:
            # Short-lived instances get exactly one collect; a lost batch
            # would silently drop merged pages, so loss must resync.
            kwargs.setdefault("resync_on_loss", True)
        self.tracker_kwargs = kwargs

    @property
    def instance_id(self) -> str:
        return f"{self.tenant}/{self.request_id}"

    def run(self, commit_seq: int) -> SnapshotDiff:
        """Execute the full lifecycle; return the byte-exact diff."""
        kernel = self.kernel
        n_pages = self.snapshot.n_pages
        proc = kernel.spawn(self.instance_id, n_pages=n_pages)
        proc.space.add_vma(n_pages, name="snapshot")
        # Read-prefault: maps every page (minor faults) without setting
        # dirty bits, so the restore image lands on present, clean pages.
        kernel.access(proc, np.arange(n_pages, dtype=np.int64), False)
        facade = UnifiedDirtyTracker(kernel, proc, self.mode, **self.tracker_kwargs)
        region = facade.map_regions(self.snapshot)
        facade.start_tracking()
        try:
            kernel.access_plan(proc, self.plan)
            if self.write_vpns.size:
                kernel.vm.mmu.write_page_contents(
                    proc.space.pt,
                    self.write_vpns,
                    output_tokens(self.instance_id, self.write_vpns),
                )
            diff = facade.extract_diff(region, self.instance_id, commit_seq)
        finally:
            facade.stop_tracking()
            kernel.exit_process(proc)
        return diff
