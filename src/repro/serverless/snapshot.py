"""Serverless snapshots: shared base images, byte-exact diffs, merges.

A :class:`Snapshot` is the host-side master copy of one function's memory
region, modelled — like :class:`repro.hw.memory.PhysicalMemory` — as one
uint64 content token per page.  Instances restore from it
(:meth:`~repro.serverless.tracker.UnifiedDirtyTracker.map_regions`),
run, and return a :class:`SnapshotDiff`: the byte-exact set of pages
whose content actually changed, not merely the pages a tracker reported
dirty (trackers legitimately over-report after a conservative resync).

Merging applies diffs **last-writer-wins by commit sequence**: the
driver assigns each instance a commit_seq when it finishes, and
:meth:`Snapshot.merge` sorts on it before applying, so the merged image
depends only on commit order — never on SMP scheduling, tracker choice,
or host dict ordering.  All token derivation is crc32/splitmix-based
(:func:`stable_token`), so it is reproducible across processes and
``PYTHONHASHSEED`` values.

This module is deliberately pure (no clock, no kernel): the hypothesis
merge battery drives it with thousands of generated schedules without
building simulator stacks.  Time costs for map/diff/merge are charged by
the facade and driver, which own a clock.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.obs import trace as otr
from repro.obs.events import EventKind

__all__ = [
    "Snapshot",
    "SnapshotDiff",
    "output_tokens",
    "stable_token",
]

_MIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer: a bijective uint64 avalanche (vectorised)."""
    x = (x + _MIX_GAMMA).astype(np.uint64)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


def _seed64(*parts: object) -> np.uint64:
    """A 64-bit seed from the crc32 of the joined key (hash()-free:
    stable across processes and PYTHONHASHSEED)."""
    key = "\x1f".join(str(p) for p in parts).encode()
    lo = zlib.crc32(key)
    hi = zlib.crc32(key, 0x9E37)
    return np.uint64((hi << 32) | lo)


def stable_token(*parts: object) -> np.uint64:
    """One deterministic nonzero content token for a namespaced key."""
    tok = _mix64(np.asarray([_seed64(*parts)], dtype=np.uint64))[0]
    return tok if tok else np.uint64(1)


def output_tokens(namespace: str, offsets: np.ndarray) -> np.ndarray:
    """Deterministic tokens for ``offsets`` within ``namespace``.

    Vectorised equivalent of ``[stable_token(namespace, o) for o in
    offsets]`` in spirit (not value): one crc seed per namespace, mixed
    with each offset.  Used to stamp a function instance's output bytes,
    which in a real system depend on the request, not on host scheduling.
    """
    offs = np.asarray(offsets, dtype=np.int64)
    toks = _mix64(_seed64(namespace) + offs.astype(np.uint64))
    toks[toks == 0] = 1  # token 0 means "never written"
    return toks


@dataclass(frozen=True)
class SnapshotDiff:
    """One instance's byte-exact dirty delta against its restore image.

    ``offsets`` are page offsets within the snapshot region, strictly
    ascending; ``tokens`` are the new contents at those offsets.
    ``commit_seq`` is the driver-assigned completion order — the *only*
    input to merge ordering.
    """

    instance_id: str
    commit_seq: int
    offsets: np.ndarray
    tokens: np.ndarray

    def __post_init__(self) -> None:
        offs = np.asarray(self.offsets, dtype=np.int64).ravel()
        toks = np.asarray(self.tokens, dtype=np.uint64).ravel()
        if offs.size != toks.size:
            raise WorkloadError("diff offsets and tokens length mismatch")
        if offs.size and (np.any(np.diff(offs) <= 0) or offs[0] < 0):
            raise WorkloadError("diff offsets must be strictly ascending, >= 0")
        object.__setattr__(self, "offsets", offs)
        object.__setattr__(self, "tokens", toks)

    @property
    def n_pages(self) -> int:
        return int(self.offsets.size)


@dataclass
class MergeStats:
    """What one :meth:`Snapshot.merge` call applied."""

    n_diffs: int = 0
    n_pages_applied: int = 0  # sum over diffs (overwrites counted twice)
    n_pages_unique: int = 0  # distinct offsets touched
    version: int = 0  # snapshot version after the merge
    applied_ids: list[str] = field(default_factory=list)  # in commit order


class Snapshot:
    """The master copy of one function's memory region.

    Lifecycle: a deterministic base image (:meth:`base`), a burst of
    instances mapped from it, their diffs merged back (:meth:`merge`),
    then :meth:`freeze` to produce the next burst's restore image — the
    diff → merge → re-snapshot cycle.
    """

    def __init__(self, name: str, n_pages: int, tokens: np.ndarray | None = None,
                 version: int = 0) -> None:
        if n_pages <= 0:
            raise WorkloadError(f"snapshot needs n_pages > 0: {n_pages}")
        self.name = name
        self.n_pages = n_pages
        if tokens is None:
            tokens = output_tokens(f"snapshot-base/{name}", np.arange(n_pages))
        tokens = np.asarray(tokens, dtype=np.uint64).ravel()
        if tokens.size != n_pages:
            raise WorkloadError("snapshot tokens length != n_pages")
        self.tokens = tokens.copy()
        self.version = version
        self.n_merged_diffs = 0

    @classmethod
    def base(cls, name: str, n_pages: int) -> "Snapshot":
        """A fresh deterministic base image (version 0)."""
        return cls(name, n_pages)

    def merge(self, diffs: list[SnapshotDiff]) -> MergeStats:
        """Apply ``diffs`` last-writer-wins in ascending commit order.

        Commit sequences must be unique: ties would make the result
        depend on the caller's list ordering, the exact nondeterminism
        this layer exists to exclude.
        """
        ordered = sorted(diffs, key=lambda d: d.commit_seq)
        seqs = [d.commit_seq for d in ordered]
        if len(set(seqs)) != len(seqs):
            raise WorkloadError(f"duplicate commit_seq in merge: {seqs}")
        stats = MergeStats(n_diffs=len(ordered))
        touched = np.zeros(self.n_pages, dtype=bool)
        for d in ordered:
            if d.offsets.size and int(d.offsets[-1]) >= self.n_pages:
                raise WorkloadError(
                    f"diff {d.instance_id} exceeds snapshot ({self.n_pages} pages)"
                )
            self.tokens[d.offsets] = d.tokens
            touched[d.offsets] = True
            stats.n_pages_applied += d.n_pages
            stats.applied_ids.append(d.instance_id)
        stats.n_pages_unique = int(touched.sum())
        self.version += 1
        self.n_merged_diffs += len(ordered)
        stats.version = self.version
        if otr.ACTIVE is not None:
            fields = {
                "snapshot": self.name,
                "version": self.version,
                "n_diffs": stats.n_diffs,
                "n_pages_applied": stats.n_pages_applied,
                "n_pages_unique": stats.n_pages_unique,
            }
            if otr.ACTIVE.detail:
                # The distinct offsets this merge touched: trace
                # invariants check each was first claimed by a diff.
                fields["offsets"] = [int(x) for x in np.flatnonzero(touched)]
            otr.ACTIVE.emit(EventKind.SNAPSHOT_MERGE, **fields)
            otr.ACTIVE.metrics.inc("snapshot.merges")
            otr.ACTIVE.metrics.inc("snapshot.pages_merged", stats.n_pages_applied)
        return stats

    def freeze(self) -> "Snapshot":
        """An independent copy at the current version (the next restore
        image; later merges into ``self`` cannot leak into it)."""
        return Snapshot(self.name, self.n_pages, self.tokens, version=self.version)

    def digest(self) -> str:
        """crc32 hex of the full token image — byte-identity fingerprint."""
        return f"{zlib.crc32(self.tokens.tobytes()):08x}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Snapshot({self.name!r}, n_pages={self.n_pages}, "
                f"version={self.version}, digest={self.digest()})")
