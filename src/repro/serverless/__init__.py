"""Serverless snapshot/restore workload family (DESIGN.md §13).

The highest-churn consumer of OoH-style dirty tracking is serverless
snapshotting: thousands of short-lived function instances restore from a
shared snapshot, run, and merge their dirty diffs back.  This package
provides the faabric-style facade and workload driver:

* :mod:`~repro.serverless.snapshot` — :class:`Snapshot` /
  :class:`SnapshotDiff`: shared base images, byte-exact diffs,
  last-writer-wins merge, re-snapshot lifecycle;
* :mod:`~repro.serverless.tracker` — :class:`UnifiedDirtyTracker`: one
  mode-selected facade over every registered tracking technique, with
  per-vCPU thread-local contexts and copy-on-write region mapping;
* :mod:`~repro.serverless.instance` — :class:`FunctionInstance`: the
  restore → execute → diff → exit lifecycle of one invocation;
* :mod:`~repro.serverless.driver` — seeded bursty multi-tenant traffic
  and the :func:`~repro.serverless.driver.run_serverless` loop.
"""

from repro.serverless.driver import (
    Invocation,
    ServerlessConfig,
    ServerlessRunResult,
    TrafficGenerator,
    run_serverless,
)
from repro.serverless.instance import FunctionInstance, plan_write_vpns
from repro.serverless.snapshot import (
    Snapshot,
    SnapshotDiff,
    output_tokens,
    stable_token,
)
from repro.serverless.tracker import MappedRegion, UnifiedDirtyTracker

__all__ = [
    "FunctionInstance",
    "Invocation",
    "MappedRegion",
    "ServerlessConfig",
    "ServerlessRunResult",
    "Snapshot",
    "SnapshotDiff",
    "TrafficGenerator",
    "UnifiedDirtyTracker",
    "output_tokens",
    "plan_write_vpns",
    "run_serverless",
    "stable_token",
]
