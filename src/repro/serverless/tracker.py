"""faabric-style unified dirty tracker: one facade, every technique.

Faabric's ``DirtyTracker`` selects an implementation by a mode string and
exposes one API to the scheduler: global start/stop/get, per-thread
tracking contexts, copy-on-write snapshot mapping, and dirty-region
extraction.  :class:`UnifiedDirtyTracker` is that facade over this
repo's :class:`~repro.core.tracking.DirtyPageTracker` registry:

* **mode selection** — any string from
  :func:`repro.core.tracking.available_modes` (oracle/spml/epml/proc/
  ufd/fallback); the facade is a *pure passthrough* to the technique for
  start/collect/stop, so its dirty sets are bit-identical to driving the
  technique directly (the differential tests pin this);
* **thread-local contexts** — per-vCPU dirty bitmaps fed by the guest
  kernel's zero-cost access-listener seam (the oracle's mechanism):
  faabric's ``startThreadLocalTracking`` maps to a vCPU here because the
  simulator's unit of concurrent execution is the vCPU;
* **snapshot mapping** — :meth:`map_regions` lays a
  :class:`~repro.serverless.snapshot.Snapshot`'s contents over a mapped
  VMA as a CoW restore: page-table bookkeeping cost, no copy, and —
  critically — no dirty-bit side effects, so tracking starts clean;
* **diff extraction** — :meth:`extract_diff` turns a tracker's (possibly
  over-reported) dirty set into a byte-exact
  :class:`~repro.serverless.snapshot.SnapshotDiff` by comparing page
  contents against the restore image.
"""

from __future__ import annotations

import numpy as np

from repro.core.clock import World
from repro.core.costs import EV_SNAPSHOT_COPY, EV_SNAPSHOT_MAP
from repro.core.tracking import available_modes, make_tracker
from repro.errors import TrackingError
from repro.guest.kernel import GuestKernel
from repro.guest.process import Process
from repro.hw.mmu import MmuResult
from repro.hw.pagetable import PTE_DIRTY
from repro.obs import trace as otr
from repro.obs.events import EventKind
from repro.serverless.snapshot import Snapshot, SnapshotDiff

__all__ = ["MappedRegion", "UnifiedDirtyTracker", "DEFAULT_MODE"]

DEFAULT_MODE = "epml"


class MappedRegion:
    """Where a snapshot was mapped, plus the restore-time base image.

    ``base_tokens`` is a copy of the snapshot's tokens *at map time*: the
    master snapshot may be merged concurrently with this instance's run,
    and the byte-exact diff must compare against what this instance
    actually restored from.
    """

    __slots__ = (
        "snapshot_name",
        "snapshot_version",
        "start_vpn",
        "n_pages",
        "base_tokens",
    )

    def __init__(
        self,
        snapshot_name: str,
        snapshot_version: int,
        start_vpn: int,
        n_pages: int,
        base_tokens: np.ndarray,
    ) -> None:
        self.snapshot_name = snapshot_name
        self.snapshot_version = snapshot_version
        self.start_vpn = start_vpn
        self.n_pages = n_pages
        self.base_tokens = base_tokens

    @property
    def end_vpn(self) -> int:
        return self.start_vpn + self.n_pages


class UnifiedDirtyTracker:
    """One tracking facade over every registered technique."""

    def __init__(
        self,
        kernel: GuestKernel,
        process: Process,
        mode: str = DEFAULT_MODE,
        **tracker_kwargs: object,
    ) -> None:
        if mode not in available_modes():
            raise TrackingError(
                f"unknown tracking mode {mode!r}; "
                f"available: {', '.join(available_modes())}"
            )
        self.kernel = kernel
        self.process = process
        self.mode = mode
        #: The wrapped technique — exposed so audit layers
        #: (:class:`repro.faults.auditor.CompletenessAuditor`) can see
        #: through the facade.
        self.tracker = make_tracker(mode, kernel, process, **tracker_kwargs)
        #: Per-vCPU thread-local dirty bitmaps (vcpu_id -> bool[n_pages]).
        self._tl: dict[int, np.ndarray] = {}
        self._tl_listener_installed = False

    # -- faabric surface ----------------------------------------------
    def get_type(self) -> str:
        """The selected mode string (faabric ``getType``)."""
        return self.mode

    # Duck-typed DirtyPageTracker surface: audit layers
    # (CompletenessAuditor) and generic harness code drive the facade
    # exactly like the technique it wraps.
    @property
    def technique(self):
        return self.tracker.technique

    @property
    def last_stats(self):
        return getattr(self.tracker, "last_stats", None)

    @property
    def n_fallbacks(self) -> int:
        return int(getattr(self.tracker, "n_fallbacks", 0))

    def start(self) -> None:
        self.start_tracking()

    def collect(self) -> np.ndarray:
        return self.collect_vpns()

    def stop(self) -> None:
        self.stop_tracking()

    def start_tracking(self) -> None:
        self.tracker.start()

    def stop_tracking(self) -> None:
        self._drop_listener()
        self._tl.clear()
        self.tracker.stop()

    def collect_vpns(self) -> np.ndarray:
        """Dirty VPNs since the last collect — the technique's own answer,
        bit-identical to driving it without the facade."""
        return self.tracker.collect()

    def get_dirty_offsets(self, region: MappedRegion) -> np.ndarray:
        """Region-relative page offsets the technique reports dirty."""
        vpns = self.collect_vpns()
        return self._to_offsets(vpns, region)

    def clear_all(self) -> None:
        """Discard pending dirty state and re-arm (faabric ``clearAll``)."""
        self.tracker.collect()
        for bitmap in self._tl.values():
            bitmap[:] = False

    # -- thread-local contexts ----------------------------------------
    def start_thread_local_tracking(self, vcpu_id: int) -> None:
        """Open a per-vCPU tracking context.

        Implemented on the guest kernel's zero-cost access-listener seam
        (the oracle technique's mechanism): arming clears PTE dirty bits
        so the listener sees 0 -> 1 transitions.  Costless and advisory —
        the authoritative dirty set is always the wrapped technique's.
        """
        if not 0 <= vcpu_id < self.kernel.vm.n_vcpus:
            raise TrackingError(f"no such vCPU: {vcpu_id}")
        self._tl[vcpu_id] = np.zeros(self.process.space.n_pages, dtype=bool)
        mapped = self.process.space.pt.mapped_vpns()
        if mapped.size:
            self.process.space.pt.clear_flags(mapped, PTE_DIRTY)
            self.process.space.invalidate_all(mapped)
        if not self._tl_listener_installed:
            self.kernel.add_access_listener(self._on_access)
            self._tl_listener_installed = True

    def stop_thread_local_tracking(self, vcpu_id: int) -> None:
        self._tl.pop(vcpu_id, None)
        if not self._tl:
            self._drop_listener()

    def get_thread_local_dirty_offsets(
        self, vcpu_id: int, region: MappedRegion
    ) -> np.ndarray:
        """Offsets dirtied while the process ran on ``vcpu_id``."""
        bitmap = self._tl.get(vcpu_id)
        if bitmap is None:
            raise TrackingError(f"no thread-local context for vCPU {vcpu_id}")
        return self._to_offsets(np.flatnonzero(bitmap).astype(np.int64), region)

    def get_both_dirty_offsets(self, region: MappedRegion) -> np.ndarray:
        """Union of the technique's dirty set and every thread-local
        context (faabric ``getBothDirtyPages``).  Collects — re-arms —
        the wrapped technique."""
        offsets = self.get_dirty_offsets(region)
        for bitmap in self._tl.values():
            tl = self._to_offsets(np.flatnonzero(bitmap).astype(np.int64), region)
            offsets = np.union1d(offsets, tl)
        return offsets.astype(np.int64)

    def _on_access(self, process: Process, result: MmuResult) -> None:
        if process.pid != self.process.pid or not result.newly_pte_dirty.size:
            return
        bitmap = self._tl.get(self.kernel.scheduler.vcpu_of(process))
        if bitmap is not None:
            bitmap[result.newly_pte_dirty] = True

    def _drop_listener(self) -> None:
        if self._tl_listener_installed:
            self.kernel.remove_access_listener(self._on_access)
            self._tl_listener_installed = False

    # -- snapshot mapping / diff extraction ---------------------------
    def map_regions(self, snapshot: Snapshot, start_vpn: int = 0) -> MappedRegion:
        """CoW-map ``snapshot``'s contents over the process's pages.

        The target range must already be demand-paged in (the instance
        prefaults with reads); mapping is a store, so no PTE dirty bits
        are set and tracking starts from a clean image — the CoW model:
        the restore shares the master copy until the function writes.
        """
        vpns = start_vpn + np.arange(snapshot.n_pages, dtype=np.int64)
        self.kernel.clock.charge(
            self.kernel.costs.params.snapshot_map_us_per_page * snapshot.n_pages,
            World.TRACKER,
            EV_SNAPSHOT_MAP,
            snapshot.n_pages,
        )
        self.kernel.vm.mmu.map_page_contents(
            self.process.space.pt, vpns, snapshot.tokens
        )
        if otr.ACTIVE is not None:
            otr.ACTIVE.emit(
                EventKind.SNAPSHOT_MAP,
                snapshot=snapshot.name,
                version=snapshot.version,
                start_vpn=int(start_vpn),
                n_pages=snapshot.n_pages,
                mode=self.mode,
            )
            otr.ACTIVE.metrics.inc("snapshot.maps")
        return MappedRegion(
            snapshot.name,
            snapshot.version,
            int(start_vpn),
            snapshot.n_pages,
            snapshot.tokens.copy(),
        )

    def extract_diff(
        self, region: MappedRegion, instance_id: str, commit_seq: int
    ) -> SnapshotDiff:
        """Collect, then reduce to the byte-exact changed set.

        Trackers may over-report (a conservative resync returns every
        mapped page); comparing contents against the restore image trims
        the report to pages that actually changed, so the merged snapshot
        is identical whichever technique tracked the instance.
        """
        dirty = self.get_dirty_offsets(region)
        vpns = region.start_vpn + dirty
        tokens = self.kernel.vm.mmu.read_page_contents(self.process.space.pt, vpns)
        self.kernel.clock.charge(
            self.kernel.costs.params.snapshot_copy_us_per_page * dirty.size,
            World.TRACKER,
            EV_SNAPSHOT_COPY,
            int(dirty.size),
        )
        changed = tokens != region.base_tokens[dirty]
        diff = SnapshotDiff(
            instance_id=instance_id,
            commit_seq=commit_seq,
            offsets=dirty[changed],
            tokens=tokens[changed],
        )
        if otr.ACTIVE is not None:
            fields = {
                "snapshot": region.snapshot_name,
                "instance": instance_id,
                "commit_seq": int(commit_seq),
                "n_dirty": int(dirty.size),
                "n_changed": diff.n_pages,
                "mode": self.mode,
            }
            if otr.ACTIVE.detail:
                # Region-relative offsets, so trace invariants can check
                # each one was logged dirty (COLLECT) and written (WRITE)
                # before the diff claimed it.
                fields["offsets"] = [int(x) for x in diff.offsets]
            otr.ACTIVE.emit(EventKind.SNAPSHOT_DIFF, **fields)
            otr.ACTIVE.metrics.inc("snapshot.diffs")
            otr.ACTIVE.metrics.observe("snapshot.diff_pages", diff.n_pages)
        return diff

    # -- helpers ------------------------------------------------------
    @staticmethod
    def _to_offsets(vpns: np.ndarray, region: MappedRegion) -> np.ndarray:
        """Restrict ``vpns`` to the region, as ascending relative offsets."""
        vpns = np.sort(vpns)
        lo = np.searchsorted(vpns, region.start_vpn, side="left")
        hi = np.searchsorted(vpns, region.end_vpn, side="left")
        return (vpns[lo:hi] - region.start_vpn).astype(np.int64)
