"""The ``serverless`` experiment: technique survival under churn.

Runs the same seeded bursty multi-tenant schedule under several tracking
modes and tabulates what the churn profile costs each of them: thousands
of short-lived instances mean per-instance attach/detach overhead that
migration-style workloads amortize away.  The merged snapshot digest is
asserted identical across modes — the byte-exact diff filter makes the
merged image a pure function of the schedule, so a digest mismatch means
a tracker dropped dirty pages.

Configured via the environment (CLI: ``--instances``):
``REPRO_SERVERLESS_INSTANCES`` / ``REPRO_SERVERLESS_TENANTS`` /
``REPRO_SERVERLESS_PAGES`` / ``REPRO_SERVERLESS_SEED`` /
``REPRO_SERVERLESS_MODES`` (comma-separated).
"""

from __future__ import annotations

import os

from repro.errors import WorkloadError
from repro.experiments.cache import EXPERIMENT_CACHE
from repro.serverless.driver import (
    ServerlessConfig,
    ServerlessRunResult,
    run_serverless,
)

__all__ = ["exp_serverless", "serverless_result"]

DEFAULT_MODES = "oracle,epml,spml,proc"


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def serverless_result(
    mode: str, cfg: ServerlessConfig, n_vcpus: int | None = None
) -> ServerlessRunResult:
    """One memo-cached serverless run (fresh stack per run)."""
    from repro.experiments.harness import _default_n_vcpus, build_stack

    vcpus = n_vcpus if n_vcpus is not None else _default_n_vcpus()
    key = (
        "serverless",
        mode,
        cfg.n_instances,
        cfg.n_tenants,
        cfg.region_pages,
        cfg.seed,
        cfg.mean_burst,
        cfg.plan_variants,
        vcpus,
    )

    def _run() -> ServerlessRunResult:
        # Host sized with headroom: instances are sequential, so the
        # footprint is one region + kernel structures, not the sum.
        stack = build_stack(vm_mb=64, n_vcpus=vcpus)
        return run_serverless(stack.kernel, mode, cfg)

    return EXPERIMENT_CACHE.get_or_run(key, _run)


def exp_serverless(quick: bool = False):
    """Registry entry: the churn comparison rendered as a table."""
    from repro.experiments.runner import ExperimentOutput
    from repro.experiments.tables import fmt_ms, render_table

    modes = [
        m.strip()
        for m in os.environ.get("REPRO_SERVERLESS_MODES", DEFAULT_MODES).split(",")
        if m.strip()
    ]
    cfg = ServerlessConfig(
        n_instances=_env_int(
            "REPRO_SERVERLESS_INSTANCES", 80 if quick else 400
        ),
        n_tenants=_env_int("REPRO_SERVERLESS_TENANTS", 4),
        region_pages=_env_int("REPRO_SERVERLESS_PAGES", 64),
        seed=_env_int("REPRO_SERVERLESS_SEED", 1234),
    )
    results = {m: serverless_result(m, cfg) for m in modes}
    digests = {r.combined_digest for r in results.values()}
    if len(digests) != 1:
        raise WorkloadError(
            "merged snapshots diverged across modes: "
            + ", ".join(f"{m}={r.combined_digest}" for m, r in results.items())
        )
    headers = [
        "mode", "instances", "bursts", "diff pages", "merged pages",
        "tracker ms", "total ms", "digest",
    ]
    rows = [
        [
            m,
            r.n_instances,
            r.n_bursts,
            r.n_pages_diffed,
            r.n_pages_merged,
            fmt_ms(r.tracker_us),
            fmt_ms(r.total_us),
            r.combined_digest.split("|")[0].split(":")[1],
        ]
        for m, r in results.items()
    ]
    text = render_table(
        headers, rows,
        f"Serverless churn: {cfg.n_instances} instances, "
        f"{cfg.n_tenants} tenants, {cfg.region_pages}-page regions "
        f"(seed {cfg.seed})",
    )
    return ExperimentOutput(
        "serverless", headers, rows, text,
        extra={
            "config": cfg,
            "digest": next(iter(digests)),
            "tracker_us": {m: r.tracker_us for m, r in results.items()},
            "versions": {m: r.versions for m, r in results.items()},
        },
    )
