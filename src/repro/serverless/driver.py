"""Serverless workload driver: seeded bursty multi-tenant traffic.

:class:`TrafficGenerator` produces a deterministic invocation schedule —
bursts of short-lived function calls, each burst skewed toward one "hot"
tenant (the production serverless arrival pattern: cold bases with
correlated spikes).  :func:`run_serverless` executes the schedule on one
guest kernel:

* every invocation runs a :class:`~repro.serverless.instance.
  FunctionInstance` lifecycle against its tenant's current snapshot;
* the commit sequence is the sequential completion order (the simulator
  runs one instance at a time per kernel; SMP affects *where* an
  instance's accesses land, not the commit order);
* at each burst boundary the tenant's diffs are merged last-writer-wins
  and the snapshot re-frozen — the next burst restores from the merged
  image.

Everything derives from ``seed`` through ``np.random.default_rng`` and
:func:`~repro.serverless.snapshot.stable_token`-style crc mixing, so the
same seed yields a byte-identical merged snapshot per tenant, across
runs, techniques, and ``PYTHONHASHSEED`` values — the determinism claim
``bench_serverless.py`` pins.

Arrival gaps shape burst structure and are reported as statistics; they
are *not* charged to the simulated clock (the clock measures execution
cost, and idle gap time would drown the tracker signal the benchmark
compares).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clock import World
from repro.core.costs import EV_SNAPSHOT_COPY
from repro.errors import WorkloadError
from repro.guest.kernel import GuestKernel
from repro.guest.plan import AccessPlan, PlanBuilder
from repro.serverless.instance import FunctionInstance, plan_write_vpns
from repro.serverless.snapshot import Snapshot

__all__ = [
    "Invocation",
    "ServerlessConfig",
    "ServerlessRunResult",
    "TrafficGenerator",
    "run_serverless",
]


@dataclass(frozen=True)
class Invocation:
    """One scheduled function call."""

    tenant: str
    tenant_idx: int
    request_id: int
    plan_idx: int
    arrival_us: float


@dataclass(frozen=True)
class ServerlessConfig:
    """Knobs for one serverless run (all deterministic given ``seed``)."""

    n_instances: int = 200
    n_tenants: int = 4
    region_pages: int = 64
    seed: int = 1234
    mean_burst: int = 16
    hot_tenant_bias: float = 0.7
    plan_variants: int = 3
    touch_frac: float = 0.5  # fraction of the region a plan touches
    write_frac: float = 0.5  # fraction of touched pages written
    compute_us: float = 50.0  # per-phase compute between access batches
    mean_gap_us: float = 2_000.0  # inter-burst arrival gap (stats only)

    def __post_init__(self) -> None:
        if self.n_instances <= 0 or self.n_tenants <= 0:
            raise WorkloadError("n_instances and n_tenants must be > 0")
        if self.region_pages <= 0 or self.plan_variants <= 0:
            raise WorkloadError("region_pages and plan_variants must be > 0")
        if not 0.0 <= self.hot_tenant_bias <= 1.0:
            raise WorkloadError("hot_tenant_bias must be in [0, 1]")


class TrafficGenerator:
    """Deterministic bursty multi-tenant invocation schedule."""

    def __init__(self, cfg: ServerlessConfig) -> None:
        self.cfg = cfg
        self.tenants = [f"t{i}" for i in range(cfg.n_tenants)]

    def bursts(self) -> list[list[Invocation]]:
        """The full schedule as a list of bursts, in arrival order."""
        cfg = self.cfg
        rng = np.random.default_rng([cfg.seed, 0xB17B])
        bursts: list[list[Invocation]] = []
        request_id = 0
        now_us = 0.0
        while request_id < cfg.n_instances:
            now_us += float(rng.exponential(cfg.mean_gap_us))
            size = min(
                1 + int(rng.poisson(max(cfg.mean_burst - 1, 0))),
                cfg.n_instances - request_id,
            )
            hot = int(rng.integers(cfg.n_tenants))
            burst: list[Invocation] = []
            for _ in range(size):
                if cfg.n_tenants > 1 and rng.random() >= cfg.hot_tenant_bias:
                    tenant_idx = int(rng.integers(cfg.n_tenants))
                else:
                    tenant_idx = hot
                now_us += float(rng.exponential(cfg.mean_gap_us / 50.0))
                burst.append(
                    Invocation(
                        tenant=self.tenants[tenant_idx],
                        tenant_idx=tenant_idx,
                        request_id=request_id,
                        plan_idx=int(rng.integers(cfg.plan_variants)),
                        arrival_us=now_us,
                    )
                )
                request_id += 1
            bursts.append(burst)
        return bursts


def tenant_plans(cfg: ServerlessConfig, tenant_idx: int) -> list[AccessPlan]:
    """The tenant's frozen plan variants (built once, reused by every
    instance — frozen segments let the MMU memoize steady-state replay)."""
    plans: list[AccessPlan] = []
    n_touch = max(1, int(cfg.region_pages * cfg.touch_frac))
    n_write = max(1, int(n_touch * cfg.write_frac))
    for variant in range(cfg.plan_variants):
        rng = np.random.default_rng([cfg.seed, 0x9A75, tenant_idx, variant])
        touched = np.sort(
            rng.choice(cfg.region_pages, size=n_touch, replace=False)
        ).astype(np.int64)
        written = np.sort(
            rng.choice(touched, size=n_write, replace=False)
        ).astype(np.int64)
        plans.append(
            PlanBuilder()
            .read(touched)
            .compute(cfg.compute_us)
            .write(written)
            .compute(cfg.compute_us)
            .build()
        )
    return plans


@dataclass
class ServerlessRunResult:
    """What one :func:`run_serverless` call did and cost."""

    mode: str
    cfg: ServerlessConfig
    n_instances: int
    n_bursts: int
    digests: dict[str, str]  # tenant -> final frozen-snapshot digest
    versions: dict[str, int]  # tenant -> final snapshot version
    instances_per_tenant: dict[str, int]
    n_pages_diffed: int  # pages across all extracted diffs
    n_pages_merged: int  # pages applied across all merges
    total_us: float
    tracker_us: float
    tracked_us: float
    mean_gap_us: float  # observed mean inter-arrival gap (schedule stat)
    events: dict[str, int] = field(default_factory=dict)

    @property
    def combined_digest(self) -> str:
        """One fingerprint over every tenant's final image (sorted)."""
        return "|".join(f"{t}:{d}" for t, d in sorted(self.digests.items()))


def run_serverless(
    kernel: GuestKernel,
    mode: str,
    cfg: ServerlessConfig,
    tracker_kwargs: dict | None = None,
) -> ServerlessRunResult:
    """Run the full schedule on ``kernel`` under tracking ``mode``."""
    gen = TrafficGenerator(cfg)
    bursts = gen.bursts()
    snapshots = {t: Snapshot.base(f"fn-{t}", cfg.region_pages) for t in gen.tenants}
    plans = {i: tenant_plans(cfg, i) for i in range(cfg.n_tenants)}
    write_sets = {
        (i, v): plan_write_vpns(p)
        for i, variants in plans.items()
        for v, p in enumerate(variants)
    }
    per_tenant = dict.fromkeys(gen.tenants, 0)
    n_pages_diffed = 0
    n_pages_merged = 0
    commit_seq = 0
    start = kernel.clock.snapshot()
    for burst in bursts:
        by_tenant: dict[str, list] = {}
        for inv in burst:
            instance = FunctionInstance(
                kernel,
                mode,
                snapshots[inv.tenant],
                inv.tenant,
                inv.request_id,
                plans[inv.tenant_idx][inv.plan_idx],
                write_vpns=write_sets[(inv.tenant_idx, inv.plan_idx)],
                tracker_kwargs=tracker_kwargs,
            )
            diff = instance.run(commit_seq)
            commit_seq += 1
            n_pages_diffed += diff.n_pages
            per_tenant[inv.tenant] += 1
            by_tenant.setdefault(inv.tenant, []).append(diff)
        # Merge at the burst boundary, tenants in name order (the diffs
        # themselves carry the commit order; tenant iteration order only
        # affects clock attribution, and sorting makes that deterministic
        # too).
        for tenant in sorted(by_tenant):
            diffs = by_tenant[tenant]
            n_apply = sum(d.n_pages for d in diffs)
            kernel.clock.charge(
                kernel.costs.params.snapshot_copy_us_per_page * n_apply,
                World.TRACKER,
                EV_SNAPSHOT_COPY,
                n_apply,
            )
            snapshots[tenant].merge(diffs)
            n_pages_merged += n_apply
            snapshots[tenant] = snapshots[tenant].freeze()
    elapsed = kernel.clock.since(start)
    arrivals = [inv.arrival_us for burst in bursts for inv in burst]
    gaps = np.diff(np.asarray(arrivals)) if len(arrivals) > 1 else np.asarray([0.0])
    return ServerlessRunResult(
        mode=mode,
        cfg=cfg,
        n_instances=commit_seq,
        n_bursts=len(bursts),
        digests={t: s.digest() for t, s in snapshots.items()},
        versions={t: s.version for t, s in snapshots.items()},
        instances_per_tenant=per_tenant,
        n_pages_diffed=n_pages_diffed,
        n_pages_merged=n_pages_merged,
        total_us=elapsed.now_us,
        tracker_us=elapsed.world_us[World.TRACKER.value],
        tracked_us=elapsed.world_us[World.TRACKED.value],
        mean_gap_us=float(gaps.mean()),
        events=elapsed.event_count,
    )
