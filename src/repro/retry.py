"""Shared retry policy: exponential backoff for transient failures.

Real PML deployments treat hypercall and allocation failures as transient
until proven otherwise — Xen returns ``-EAGAIN`` for hypercalls racing a
scheduler or grant operation, and the guest retries with backoff.  Every
recovery path in this repo (OoH module hypercalls, guest demand-paging
under allocator pressure, CRIU pre-dump collection, migration rounds)
shares the one policy object defined here, so chaos experiments sweep a
single knob.

Backoff time is *simulated*: each retry charges the wait to the
:class:`~repro.core.clock.SimClock`, so recovery shows up honestly in
tracker/tracked overheads instead of being free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.clock import SimClock, World
from repro.errors import HypercallError, TransientError
from repro.obs import trace as otr
from repro.obs.events import EventKind

__all__ = [
    "EV_RETRY_BACKOFF",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "Retrier",
    "is_transient",
]

EV_RETRY_BACKOFF = "retry_backoff"


def is_transient(exc: BaseException) -> bool:
    """Default classifier: retry :class:`TransientError` and transient
    hypercall codes; everything else is permanent."""
    if isinstance(exc, TransientError):
        return True
    if isinstance(exc, HypercallError):
        return exc.transient
    return False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff (attempt 1 waits ``base_backoff_us``)."""

    max_attempts: int = 5
    base_backoff_us: float = 5.0
    multiplier: float = 2.0
    max_backoff_us: float = 10_000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_backoff_us < 0 or self.multiplier < 1:
            raise ValueError("backoff parameters must be non-negative/>=1")

    def backoff_us(self, retry: int) -> float:
        """Simulated wait before retry number ``retry`` (1-based)."""
        return min(
            self.base_backoff_us * self.multiplier ** (retry - 1),
            self.max_backoff_us,
        )


DEFAULT_RETRY_POLICY = RetryPolicy()


class Retrier:
    """Applies one :class:`RetryPolicy`, charging backoff to the clock.

    ``n_retries`` / ``n_exhausted`` accumulate across calls so callers can
    surface recovery activity in their stats (delta between two reads).
    """

    def __init__(
        self,
        clock: SimClock,
        world: World = World.KERNEL,
        policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        classify: Callable[[BaseException], bool] = is_transient,
    ) -> None:
        self.clock = clock
        self.world = world
        self.policy = policy
        self.classify = classify
        self.n_retries = 0
        self.n_exhausted = 0

    def call(self, fn: Callable[[], object]) -> object:
        attempt = 1
        while True:
            try:
                return fn()
            except Exception as exc:
                if not self.classify(exc):
                    raise
                if attempt >= self.policy.max_attempts:
                    self.n_exhausted += 1
                    if otr.ACTIVE is not None:
                        otr.ACTIVE.metrics.inc("retry.exhausted")
                    raise
                self.n_retries += 1
                backoff_us = self.policy.backoff_us(attempt)
                if otr.ACTIVE is not None:
                    otr.ACTIVE.emit(
                        EventKind.RETRY, attempt=attempt, backoff_us=backoff_us
                    )
                    otr.ACTIVE.metrics.inc("retry.attempts")
                self.clock.charge(backoff_us, self.world, EV_RETRY_BACKOFF)
                attempt += 1
