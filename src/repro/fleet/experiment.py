"""The ``fleet`` experiment: drain one overloaded host across a fleet.

Scenario: ``n_vms`` VMs all land on host ``h0`` (the incast after a rack
failure); the orchestrator then drains ``h0`` by migrating every VM off
over one shared backbone link, placing each by WSS pressure.  Every third
VM is "hot" (dirty rate near the link's capacity) so some migrations
auto-converge under throttling while the hottest trip the downtime SLO
and fall back to post-copy — the experiment's table shows both modes,
their page budgets, and per-VM downtime under contention.

Deterministic by construction: one seed derives every workload stream,
placement is pressure-ranked with stable tie-breaks, and concurrent
pre-copy loops interleave round-robin in submission order — same seed and
config ⇒ byte-identical report.  Configured via ``--hosts`` / ``--vms``
(environment: ``REPRO_FLEET_HOSTS`` / ``REPRO_FLEET_VMS`` /
``REPRO_FLEET_SEED``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.experiments.cache import EXPERIMENT_CACHE
from repro.fleet.host import Host, VmSpec
from repro.fleet.orchestrator import (
    FleetMigrationReport,
    MigrationOrchestrator,
    MigrationPolicy,
)
from repro.hypervisor.vm import Vm
from repro.net.link import Link
from repro.net.transport import Transport

__all__ = ["FleetScenarioResult", "run_fleet_scenario", "exp_fleet"]


@dataclass
class FleetScenarioResult:
    """Cache-friendly scalars + per-migration reports (no live objects)."""

    n_hosts: int
    n_vms: int
    seed: int
    total_us: float = 0.0
    reports: list[FleetMigrationReport] = field(default_factory=list)
    #: host_id -> committed pages after the drain.
    committed_pages: dict[str, int] = field(default_factory=dict)


def _specs(n_vms: int, vm_mb: float, seed: int) -> list[VmSpec]:
    rng = np.random.default_rng(seed)
    specs = []
    for i in range(n_vms):
        pages = Vm.mb(vm_mb)  # workload spans the whole footprint
        if i % 3 == 0:
            # Hot tenant: dirty rate beyond what the contended link can
            # carry — trips the SLO and falls back to post-copy.
            writes, frac, compute = int(rng.integers(1500, 2600)), 1.0, 200.0
        else:
            # Moderate tenant: auto-converge throttling can beat the
            # dirty rate even under contention.
            writes, frac, compute = int(rng.integers(40, 120)), 0.7, 500.0
        specs.append(
            VmSpec(
                name=f"vm{i}",
                mem_mb=vm_mb,
                workload_pages=pages,
                writes_per_round=writes,
                write_fraction=frac,
                compute_us_per_round=compute,
                seed=seed + i,
            )
        )
    return specs


def run_fleet_scenario(
    n_hosts: int = 3,
    n_vms: int = 6,
    seed: int = 7,
    quick: bool = False,
) -> FleetScenarioResult:
    """Build the fleet, overload ``h0``, drain it; return the outcome."""
    clock = SimClock()
    costs = CostModel()
    vm_mb = 8.0 if quick else 16.0
    base_mb = 96.0 if quick else 256.0
    host_mb = max(base_mb, vm_mb * n_vms + 32.0)
    hosts = [
        Host(f"h{i}", clock, costs, mem_mb=host_mb) for i in range(n_hosts)
    ]
    link = Link("backbone")
    transport = Transport(clock, costs)
    policy = MigrationPolicy(downtime_slo_us=2500.0)
    orch = MigrationOrchestrator(hosts, transport, link, policy)

    fvms = [hosts[0].place(spec) for spec in _specs(n_vms, vm_mb, seed)]
    start = clock.now_us
    reports = orch.migrate_many([(fvm, None) for fvm in fvms])

    return FleetScenarioResult(
        n_hosts=n_hosts,
        n_vms=n_vms,
        seed=seed,
        total_us=clock.now_us - start,
        reports=reports,
        committed_pages={h.host_id: h.committed_pages for h in hosts},
    )


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def exp_fleet(quick: bool = False):
    """Registry entry: the drain scenario rendered as a table."""
    from repro.experiments.runner import ExperimentOutput
    from repro.experiments.tables import fmt_ms, render_table

    n_hosts = _env_int("REPRO_FLEET_HOSTS", 3)
    n_vms = _env_int("REPRO_FLEET_VMS", 6)
    seed = _env_int("REPRO_FLEET_SEED", 7)
    result: FleetScenarioResult = EXPERIMENT_CACHE.get_or_run(
        ("fleet", n_hosts, n_vms, seed, quick),
        lambda: run_fleet_scenario(n_hosts, n_vms, seed, quick=quick),
    )
    headers = ["vm", "route", "mode", "rounds", "pages", "retrans",
               "throttle", "wss", "downtime ms", "total ms", "ok"]
    rows = []
    for r in result.reports:
        rows.append([
            r.vm_name,
            f"{r.src_host}->{r.dst_host}",
            r.mode,
            r.rounds,
            r.total_pages_sent,
            r.retransmitted_pages,
            f"{r.throttle_peak:.1f}",
            r.wss_pages,
            fmt_ms(r.downtime_us),
            fmt_ms(r.total_us),
            "yes" if r.integrity_ok else "NO",
        ])
    text = render_table(
        headers, rows,
        f"Fleet drain: {n_vms} VMs off h0 over one backbone "
        f"({n_hosts} hosts, seed {seed})",
    )
    return ExperimentOutput(
        "fleet", headers, rows, text,
        extra={
            "total_us": result.total_us,
            "committed_pages": result.committed_pages,
            "modes": {r.vm_name: r.mode for r in result.reports},
        },
    )
