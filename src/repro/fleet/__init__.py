"""Fleet layer: multi-host orchestration of VMs over a simulated network
(DESIGN.md §11) — capacity-accounted hosts, adaptive pre-copy migration
with auto-converge throttling, and post-copy fallback under a downtime
SLO."""

from repro.fleet.host import FleetVm, Host, VmSpec
from repro.fleet.orchestrator import (
    FleetMigrationReport,
    MigrationOrchestrator,
    MigrationPolicy,
)

__all__ = [
    "FleetVm",
    "Host",
    "VmSpec",
    "FleetMigrationReport",
    "MigrationOrchestrator",
    "MigrationPolicy",
]
