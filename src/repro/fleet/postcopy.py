"""Post-copy destination: pull-on-fault over userfaultfd + background push.

When pre-copy cannot converge under the downtime SLO, the orchestrator
pauses the source, ships only the VM's *non-dirty* state, and resumes the
guest on the destination immediately.  Pages still dirty at switchover
("on the wire") materialise two ways, exactly the CRIU lazy-pages shape
(:mod:`repro.trackers.criu.lazy`):

* **pull** — the destination guest touches a missing page; the uffd
  MISSING fault is resolved by fetching that batch over the network
  (charged to the guest's world: post-copy faults are downtime the
  application feels);
* **push** — a background daemon streams the remaining pages in batches
  so the tail does not fault forever.

Content tokens are installed during fault resolution, *before* the MMU
completes the triggering access — a destination write lands on top of the
transferred content (UFFDIO_COPY ordering), so source tokens never
clobber destination progress.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.clock import World
from repro.core.costs import EV_MIGRATION_SEND, EV_NET_PAGE_PULL
from repro.guest.kernel import GuestKernel
from repro.guest.process import Process
from repro.guest.uffd import UfdMode, UserFaultFd
from repro.hw.pagetable import PTE_DIRTY
from repro.net.transport import Flow, Transport
from repro.obs import trace as otr
from repro.obs.events import EventKind

__all__ = ["PostCopyReport", "PostCopyDestination"]


@dataclass
class PostCopyReport:
    """Accounting for one post-copy phase."""

    missing_pages: int = 0
    pulled_pages: int = 0
    pushed_pages: int = 0
    pull_faults: int = 0


class PostCopyDestination:
    """The destination protocol half after a post-copy switchover."""

    def __init__(
        self,
        kernel: GuestKernel,
        proc: Process,
        transport: Transport,
        flow: Flow,
        missing_vpns: np.ndarray,
        final_tokens: dict[int, int],
        push_batch_pages: int = 256,
    ) -> None:
        self.kernel = kernel
        self.proc = proc
        self.transport = transport
        self.flow = flow
        self.final_tokens = final_tokens
        self.push_batch_pages = push_batch_pages
        self.on_wire: set[int] = {int(v) for v in missing_vpns}
        self.report = PostCopyReport(missing_pages=len(self.on_wire))

        # Pages pre-copy already transferred are resident before the guest
        # resumes: materialise them and overlay the source's tokens (their
        # transfer time was charged round by round during pre-copy).
        resident = np.array(
            sorted(v for v in final_tokens if v not in self.on_wire),
            dtype=np.int64,
        )
        if resident.size:
            kernel.access(proc, resident, True)
            tokens = np.array(
                [final_tokens[int(v)] for v in resident], dtype=np.uint64
            )
            kernel.vm.mmu.write_page_contents(proc.space.pt, resident, tokens)
            # The materialisation pass is not guest progress: clear the PTE
            # dirty bits so the first *real* destination write to each page
            # surfaces in ``newly_pte_dirty`` (the integrity exclusion set).
            proc.space.pt.clear_flags(resident, PTE_DIRTY)

        # Missing pages trap to userspace on first touch, lazy-pages style.
        self.uffd: UserFaultFd = kernel.create_uffd(proc)
        for vma in proc.space.vmas:
            self.uffd.register(vma, UfdMode.MISSING)
        self.uffd.add_miss_resolver(self._on_miss)

    def _on_miss(self, vpns: np.ndarray, write_mask: np.ndarray) -> None:
        self._resolve(np.asarray(vpns, dtype=np.int64))

    def _resolve(self, vpns: np.ndarray) -> None:
        """Install transferred contents for freshly-resolved pages; pages
        still on the wire are pulled over the network first."""
        pulls = [int(v) for v in vpns if int(v) in self.on_wire]
        if pulls:
            self.on_wire.difference_update(pulls)
            self.report.pull_faults += 1
            self.report.pulled_pages += len(pulls)
            self.transport.send(
                self.flow, len(pulls), world=World.TRACKED,
                event=EV_NET_PAGE_PULL,
            )
            if otr.ACTIVE is not None:
                otr.ACTIVE.emit(
                    EventKind.POSTCOPY_PULL,
                    flow=self.flow.flow_id,
                    n_pages=len(pulls),
                )
                otr.ACTIVE.metrics.inc("postcopy.pulled_pages", len(pulls))
        have = [int(v) for v in vpns if int(v) in self.final_tokens]
        if have:
            arr = np.array(have, dtype=np.int64)
            tokens = np.array(
                [self.final_tokens[v] for v in have], dtype=np.uint64
            )
            self.kernel.vm.mmu.write_page_contents(
                self.proc.space.pt, arr, tokens
            )

    def push_step(self) -> int:
        """Background-push one batch of still-missing pages; returns how
        many pages moved."""
        if not self.on_wire:
            return 0
        batch = np.array(
            sorted(self.on_wire)[: self.push_batch_pages], dtype=np.int64
        )
        # Leave the wire *before* the access: the push pays the transfer,
        # and the miss-fault hook must not double-charge it as a pull.
        self.on_wire.difference_update(int(v) for v in batch)
        self.transport.send(
            self.flow, int(batch.size), world=World.HYPERVISOR,
            event=EV_MIGRATION_SEND,
        )
        self.kernel.access(self.proc, batch, False)
        self.report.pushed_pages += int(batch.size)
        if otr.ACTIVE is not None:
            otr.ACTIVE.metrics.inc("postcopy.pushed_pages", int(batch.size))
        return int(batch.size)

    def drain(self) -> None:
        """Push everything left, then detach the uffd."""
        while self.push_step():
            pass
        self.uffd.close()
