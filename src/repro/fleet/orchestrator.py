"""Multi-host migration orchestration: adaptive pre-copy, post-copy fallback.

The :class:`MigrationOrchestrator` runs both protocol halves of each
migration over a shared :class:`~repro.net.transport.Transport`:

* **placement** — destination hosts are ranked by headroom *minus* the
  resident VMs' working-set pressure, with the candidate VM's own WSS
  freshly sampled through :class:`~repro.hypervisor.wss.WssEstimator`
  (accessed-bit sampling, no guest cooperation);
* **pre-copy** — a :class:`_AdaptiveMigration` subclasses the stock
  :class:`~repro.hypervisor.migration.LiveMigration` loop, scaling guest
  quanta to the round's transfer time (dirty-rate-adaptive round sizing),
  throttling the guest when the dirty set stops shrinking (QEMU
  auto-converge), and shrinking the stop-and-copy threshold to what the
  downtime SLO can afford at the link's *current* contention;
* **post-copy fallback** — when throttling maxes out and the projected
  downtime still exceeds the SLO, pre-copy is abandoned mid-flight: the
  source pauses, the destination resumes immediately, and the residual
  dirty set moves by demand pull (uffd MISSING faults) plus background
  push (:mod:`repro.fleet.postcopy`).

Concurrent migrations interleave deterministically: each pre-copy loop is
a generator (:meth:`LiveMigration.steps`), and the orchestrator
round-robins them in submission order, so contention on shared links —
and therefore every simulated timestamp — is a pure function of the
submitted moves and the workload seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clock import World
from repro.core.costs import EV_POSTCOPY_SWITCH
from repro.errors import ConfigurationError
from repro.fleet.host import FleetVm, Host
from repro.fleet.postcopy import PostCopyDestination, PostCopyReport
from repro.hypervisor.migration import LiveMigration, MigrationReport
from repro.hypervisor.wss import WssEstimator
from repro.net.link import Link
from repro.net.transport import Transport, TransportSender
from repro.obs import trace as otr
from repro.obs.events import EventKind

__all__ = ["MigrationPolicy", "FleetMigrationReport", "MigrationOrchestrator"]


@dataclass(frozen=True)
class MigrationPolicy:
    """Knobs for one orchestrated migration (defaults: DESIGN.md §11)."""

    max_rounds: int = 30
    stop_threshold_pages: int = 512
    #: Downtime budget; ``None`` disables the SLO (pre-copy runs to the
    #: stock round budget and never falls back to post-copy).
    downtime_slo_us: float | None = None
    #: Auto-converge: throttle added per non-shrinking round.
    throttle_step: float = 0.4
    throttle_max: float = 0.8
    #: Non-shrinking rounds tolerated *at max throttle* before fallback.
    patience: int = 1
    #: Accessed-bit sampling intervals for placement WSS (0 = skip).
    wss_intervals: int = 2
    post_copy_push_batch: int = 256
    #: Destination workload rounds interleaved with pushes before drain
    #: (0 = pure push drain, used by the differential tests).
    postcopy_dest_rounds: int = 2
    #: Cap on guest quanta per pre-copy round (adaptive round sizing).
    max_round_quanta: int = 8


@dataclass
class FleetMigrationReport:
    """Outcome of one orchestrated migration."""

    vm_name: str
    src_host: str
    dst_host: str
    mode: str = "precopy"  # "precopy" | "postcopy"
    wss_pages: int = 0
    throttle_peak: float = 0.0
    downtime_us: float = 0.0
    total_us: float = 0.0
    retransmitted_pages: int = 0
    integrity_ok: bool = False
    precopy: MigrationReport = field(default_factory=MigrationReport)
    postcopy: PostCopyReport | None = None

    @property
    def rounds(self) -> int:
        return self.precopy.rounds

    @property
    def total_pages_sent(self) -> int:
        sent = self.precopy.total_pages_sent
        if self.postcopy is not None:
            sent += self.postcopy.pulled_pages + self.postcopy.pushed_pages
        return sent


class _AdaptiveController:
    """Per-migration brain: round sizing, auto-converge, SLO watchdog."""

    def __init__(
        self, fvm: FleetVm, policy: MigrationPolicy, sender: TransportSender
    ) -> None:
        self.fvm = fvm
        self.policy = policy
        self.sender = sender
        self.quanta = 1
        self.stall = 0
        self.throttle_peak = 0.0
        self._prev: int | None = None

    def workload_round(self) -> None:
        """The guest runs for the (adaptively sized) round quantum."""
        for _ in range(self.quanta):
            self.fvm.run_round()

    def _effective_us_per_page(self) -> float:
        return self.sender.us_per_page * self.sender.flow.link.share_factor

    def clamp_threshold(self, base: int) -> int:
        """Stop-and-copy only when the final send fits the downtime SLO
        at the link's *current* contention."""
        slo = self.policy.downtime_slo_us
        us_pp = self._effective_us_per_page()
        if slo is None or us_pp <= 0.0:
            return base
        _, latency = self.sender.flow.link.resolve(
            self.sender.transport.costs.params
        )
        return max(1, min(base, int((slo - latency) / us_pp)))

    def observe(
        self, mig: LiveMigration, report: MigrationReport, dirty: np.ndarray
    ) -> str | None:
        """Per-round policy decision; non-None abandons to post-copy."""
        us_pp = self._effective_us_per_page()
        if us_pp <= 0.0:
            # Infinitely fast link: nothing to adapt to — behave exactly
            # like the stock LiveMigration loop (differential identity).
            return None
        policy = self.policy
        n = int(dirty.size)
        slo = policy.downtime_slo_us
        eta_downtime = n * us_pp
        # Adaptive round sizing: the guest runs as long as this round's
        # transfer takes, so dirty harvests reflect real overlap.
        compute_us = max(self.fvm.spec.compute_us_per_round, 1e-9)
        self.quanta = min(
            policy.max_round_quanta, max(1, int(n * us_pp / compute_us))
        )
        if self._prev is None:
            # First sight of the dirty rate: adapt, don't judge.
            self._prev = n
            return None
        shrinking = n < self._prev
        self._prev = n
        if shrinking:
            self.stall = 0
            # Relax the throttle only once convergence is in sight —
            # relaxing on every shrink oscillates forever.
            in_sight = (
                eta_downtime <= slo
                if slo is not None
                else n <= mig.stop_threshold_pages * 2
            )
            if in_sight and self.fvm.throttle > 0.0:
                self.fvm.throttle = max(
                    0.0, self.fvm.throttle - policy.throttle_step
                )
            return None
        if self.fvm.throttle < policy.throttle_max:
            self.fvm.throttle = min(
                policy.throttle_max, self.fvm.throttle + policy.throttle_step
            )
            self.throttle_peak = max(self.throttle_peak, self.fvm.throttle)
            return None
        self.stall += 1
        if slo is not None and eta_downtime > slo and self.stall >= policy.patience:
            return "postcopy_slo"
        return None


class _AdaptiveMigration(LiveMigration):
    """LiveMigration whose per-round policy defers to the controller."""

    def __init__(self, controller: _AdaptiveController, **kwargs) -> None:
        self.controller: _AdaptiveController | None = None
        super().__init__(**kwargs)
        self.controller = controller

    @property
    def stop_threshold_pages(self) -> int:
        """SLO-clamped dynamically: the base budget, shrunk to what the
        downtime SLO affords at the link's current contention (so even a
        first-harvest convergence respects the SLO)."""
        if self.controller is None:
            return self._stop_threshold_base
        return self.controller.clamp_threshold(self._stop_threshold_base)

    @stop_threshold_pages.setter
    def stop_threshold_pages(self, value: int) -> None:
        self._stop_threshold_base = value

    def _precopy_policy(
        self, report: MigrationReport, dirty: np.ndarray
    ) -> str | None:
        return self.controller.observe(self, report, dirty)


class _MigrationState:
    """Bookkeeping for one in-flight migration."""

    def __init__(self, fvm: FleetVm, src: Host, dst: Host, flow) -> None:
        self.fvm = fvm
        self.src = src
        self.dst = dst
        self.flow = flow
        self.src_kernel = fvm.kernel
        self.src_proc = fvm.proc
        self.src_vm = fvm.vm
        self.controller: _AdaptiveController | None = None
        self.gen = None
        self.report: FleetMigrationReport | None = None
        self.start_us = 0.0
        self.final_tokens: dict[int, int] = {}
        self.dest: PostCopyDestination | None = None
        self.dest_written: set[int] = set()
        self._listener = None


class MigrationOrchestrator:
    """Runs migrations between hosts over one shared transport."""

    def __init__(
        self,
        hosts: list[Host],
        transport: Transport,
        link: Link,
        policy: MigrationPolicy | None = None,
    ) -> None:
        if not hosts:
            raise ConfigurationError("orchestrator needs at least one host")
        ids = [h.host_id for h in hosts]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate host_id in fleet")
        self.hosts = list(hosts)
        self.transport = transport
        self.link = link
        self.policy = policy or MigrationPolicy()
        self._mig_counter = 0

    # -- placement -----------------------------------------------------
    def estimate_wss(self, fvm: FleetVm) -> int:
        """Refresh ``fvm.last_wss_pages`` by accessed-bit sampling.

        Each interval's sample lands in the VM's :class:`WssHistory`
        (feeding the EWMA and the reclaim target) before the planning
        estimate is refreshed; the published value is arithmetically
        identical to the old ``WssEstimator.estimate_pages`` call.
        """
        if self.policy.wss_intervals < 1:
            return fvm.last_wss_pages
        est = WssEstimator(fvm.vm)
        for _ in range(self.policy.wss_intervals):
            s = est.sample(fvm.run_round)
            fvm.wss.record(s.accessed_pages)
        return fvm.wss.refresh_planning(self.policy.wss_intervals)

    def select_destination(
        self, fvm: FleetVm, exclude: tuple[str, ...] = ()
    ) -> Host:
        """Most-headroom host that admits the VM: free frames minus
        resident WSS pressure, first-in-fleet-order winning ties.
        Feasibility is :meth:`Host.admit` — the plain footprint check on
        stock hosts, the WSS-with-headroom check on overcommitted ones."""
        src_id = fvm.host.host_id if fvm.host is not None else None
        feasible = [
            h
            for h in self.hosts
            if h.host_id != src_id
            and h.host_id not in exclude
            and h.admit(fvm.spec, fvm.last_wss_pages)
        ]
        if not feasible:
            raise ConfigurationError(
                f"no host fits {fvm.name} ({fvm.spec.mem_pages} pages)"
            )
        best = max(feasible, key=lambda h: h.available_pages - h.hot_pages)
        if otr.ACTIVE is not None:
            otr.ACTIVE.emit(
                EventKind.FLEET_PLACEMENT,
                vm=fvm.name,
                host_id=best.host_id,
                wss_pages=int(fvm.last_wss_pages),
                free_pages=int(best.free_pages),
            )
            otr.ACTIVE.metrics.inc(f"fleet.host.{best.host_id}.placements")
        return best

    # -- migration -----------------------------------------------------
    def migrate(
        self, fvm: FleetVm, dst: Host | None = None, destroy_source: bool = True
    ) -> FleetMigrationReport:
        return self.migrate_many([(fvm, dst)], destroy_source=destroy_source)[0]

    def migrate_many(
        self,
        moves: list[tuple[FleetVm, Host | None]],
        destroy_source: bool = True,
    ) -> list[FleetMigrationReport]:
        """Run several migrations concurrently over the shared link.

        Pre-copy loops are interleaved round-robin in submission order;
        each blocked/finished loop falls out of the rotation, so link
        contention rises and falls exactly as flows open and close.
        """
        states = [self._begin(fvm, dst) for fvm, dst in moves]

        active = list(states)
        while active:
            for st in list(active):
                try:
                    st.report.precopy = next(st.gen)
                except StopIteration:
                    active.remove(st)
                    self._finish_precopy(st)

        post = [st for st in states if st.report.mode == "postcopy"]
        for _ in range(self.policy.postcopy_dest_rounds):
            for st in post:
                st.fvm.run_round()
                st.dest.push_step()
        for st in post:
            st.dest.drain()
            self.transport.close_flow(st.flow)

        return [self._complete(st, destroy_source) for st in states]

    def _begin(self, fvm: FleetVm, dst: Host | None) -> _MigrationState:
        if fvm.host is None:
            raise ConfigurationError(f"FleetVm {fvm.name} is not placed")
        src = fvm.host
        if src.economics is not None:
            # The source image must be whole before it is read: re-back
            # and reinstall any ballooned pages, else their swapped
            # tokens would never reach the destination.
            driver = src.economics.drivers.get(fvm.name)
            if driver is not None:
                driver.deflate_all()
        if dst is None:
            self.estimate_wss(fvm)
            dst = self.select_destination(fvm)
        elif not dst.admit(fvm.spec, fvm.last_wss_pages):
            raise ConfigurationError(
                f"host {dst.host_id} cannot fit {fvm.name}"
            )
        dst.reserved_pages += fvm.spec.mem_pages
        self._mig_counter += 1
        flow_id = f"mig{self._mig_counter}:{fvm.name}:{src.host_id}->{dst.host_id}"
        flow = self.transport.open_flow(self.link, flow_id)
        st = _MigrationState(fvm, src, dst, flow)
        st.start_us = self.transport.clock.now_us
        st.report = FleetMigrationReport(
            vm_name=fvm.name,
            src_host=src.host_id,
            dst_host=dst.host_id,
            wss_pages=int(fvm.last_wss_pages),
        )
        sender = TransportSender(self.transport, flow)
        st.controller = _AdaptiveController(fvm, self.policy, sender)
        mig = _AdaptiveMigration(
            st.controller,
            hypervisor=src.hypervisor,
            vm=st.src_vm,
            max_rounds=self.policy.max_rounds,
            stop_threshold_pages=self.policy.stop_threshold_pages,
            sender=sender,
        )
        st.gen = mig.steps(st.controller.workload_round)
        return st

    def _dest_shell(self, st: _MigrationState):
        """Create the destination VM, converting the reservation into the
        real frame allocation.  An overcommitted destination may have
        admitted on WSS alone; balloon residents down for the eager
        footprint first."""
        if st.dst.economics is not None:
            st.dst.economics.ensure_free(st.fvm.spec.mem_pages)
        shell = st.dst.create_shell(st.fvm.spec)
        st.dst.reserved_pages -= st.fvm.spec.mem_pages
        return shell

    def _source_contents(self, st: _MigrationState) -> tuple[np.ndarray, np.ndarray]:
        """(vpns, tokens) of the paused source's present workload pages."""
        vpns = st.src_proc.space.mapped_vpns()
        vpns = vpns[st.src_proc.space.pt.present_mask(vpns)]
        tokens = st.src_vm.mmu.read_page_contents(st.src_proc.space.pt, vpns)
        return vpns, tokens

    def _finish_precopy(self, st: _MigrationState) -> None:
        """Source half is done (converged, budget-forced, or abandoned):
        bring up the destination in the right mode."""
        report = st.report
        report.throttle_peak = st.controller.throttle_peak
        precopy = report.precopy
        if precopy.aborted_reason == "postcopy_slo":
            self._switch_to_postcopy(st)
            return
        # Pre-copy completed (stop-and-copy already charged): materialise
        # the destination from the paused source's state.
        st.src_kernel.stop_process(st.src_proc)
        vpns, tokens = self._source_contents(st)
        st.final_tokens = {int(v): int(t) for v, t in zip(vpns, tokens)}
        _vm, kernel, proc = self._dest_shell(st)
        kernel.access(proc, vpns, True)
        kernel.vm.mmu.write_page_contents(proc.space.pt, vpns, tokens)
        st.fvm.bind(st.dst, kernel.vm, kernel, proc)
        report.downtime_us = precopy.downtime_us
        self.transport.close_flow(st.flow)

    def _switch_to_postcopy(self, st: _MigrationState) -> None:
        """Pause the source, resume on the destination, leave the residual
        dirty set on the wire."""
        clock = self.transport.clock
        params = self.transport.costs.params
        clock.charge(params.postcopy_state_us, World.HYPERVISOR, EV_POSTCOPY_SWITCH)
        st.src_kernel.stop_process(st.src_proc)
        vpns, tokens = self._source_contents(st)
        st.final_tokens = {int(v): int(t) for v, t in zip(vpns, tokens)}
        remaining = np.asarray(
            st.report.precopy.remaining_pages, dtype=np.int64
        )
        gpfns = st.src_proc.space.pt.translate(vpns)
        missing = vpns[np.isin(gpfns.astype(np.int64), remaining)]
        _vm, kernel, proc = self._dest_shell(st)
        st.dest = PostCopyDestination(
            kernel,
            proc,
            self.transport,
            st.flow,
            missing,
            st.final_tokens,
            push_batch_pages=self.policy.post_copy_push_batch,
        )

        def listener(process, result) -> None:
            if process is proc and result.newly_pte_dirty.size:
                st.dest_written.update(int(v) for v in result.newly_pte_dirty)

        st._listener = listener
        kernel.add_access_listener(listener)
        st.fvm.bind(st.dst, kernel.vm, kernel, proc)
        st.fvm.throttle = 0.0  # post-copy guests run unthrottled
        st.report.mode = "postcopy"
        st.report.downtime_us = params.postcopy_state_us
        if otr.ACTIVE is not None:
            otr.ACTIVE.emit(
                EventKind.MIGRATION_MODE,
                vm=st.fvm.name,
                mode="postcopy",
                missing_pages=int(missing.size),
                flow=st.flow.flow_id,
            )
            otr.ACTIVE.metrics.inc("fleet.postcopy_fallbacks")

    def _verify_integrity(self, st: _MigrationState) -> bool:
        """Destination memory equals the paused source, except pages the
        destination guest wrote after switchover (its own progress)."""
        vpns = np.array(sorted(st.final_tokens), dtype=np.int64)
        if vpns.size == 0:
            return True
        fvm = st.fvm
        got = fvm.kernel.vm.mmu.read_page_contents(fvm.proc.space.pt, vpns)
        want = np.array(
            [st.final_tokens[int(v)] for v in vpns], dtype=np.uint64
        )
        if st.dest_written:
            keep = ~np.isin(vpns, np.array(sorted(st.dest_written)))
            got, want = got[keep], want[keep]
        return bool(np.array_equal(got, want))

    def _complete(
        self, st: _MigrationState, destroy_source: bool
    ) -> FleetMigrationReport:
        report = st.report
        if st._listener is not None:
            st.fvm.kernel.remove_access_listener(st._listener)
        report.retransmitted_pages = st.flow.retransmitted_pages
        if st.dest is not None:
            report.postcopy = st.dest.report
        report.integrity_ok = self._verify_integrity(st)
        st.src.vms.pop(st.fvm.name, None)
        if st.src.economics is not None:
            st.src.economics.detach(st.fvm.name)
        st.dst.adopt(st.fvm)
        if st.dst.economics is not None and st.dst.economics.can_manage(st.fvm):
            st.dst.economics.attach(st.fvm)
        if destroy_source:
            st.src.hypervisor.destroy_vm(st.fvm.spec.name)
        st.fvm.throttle = 0.0
        report.total_us = self.transport.clock.now_us - st.start_us
        if otr.ACTIVE is not None:
            otr.ACTIVE.metrics.inc(f"fleet.host.{st.src.host_id}.migrations_out")
            otr.ACTIVE.metrics.inc(f"fleet.host.{st.dst.host_id}.migrations_in")
        return report
