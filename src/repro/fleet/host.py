"""Hosts and fleet VMs: capacity-accounted nodes running guest workloads.

A :class:`Host` wraps one :class:`~repro.hypervisor.hypervisor.Hypervisor`
sharing the fleet's single :class:`~repro.core.clock.SimClock` and
:class:`~repro.core.costs.CostModel` — simulated time is global, so
events on different hosts serialize deterministically.  Capacity is frame
accounting: a VM fits iff the host's physical frame pool can hold its
whole footprint (VMs map their EPT eagerly at creation).

A :class:`FleetVm` is the unit the orchestrator moves: a workload spec,
a seeded RNG that *persists across re-binding* (the workload keeps its
random stream when the VM lands on a new host — same writes, new home),
and the current (host, vm, kernel, process) binding.  ``throttle`` is the
auto-converge knob: a throttled guest performs proportionally fewer
writes per round, exactly QEMU's cpu-throttle trick.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.errors import ConfigurationError
from repro.fleet.economics.wss_history import WssHistory
from repro.guest.kernel import GuestKernel
from repro.guest.process import Process
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.vm import Vm

__all__ = ["VmSpec", "FleetVm", "Host"]


@dataclass(frozen=True)
class VmSpec:
    """Immutable description of one fleet VM and its write workload."""

    name: str
    mem_mb: float
    #: Pages the workload touches (the VMA size), <= the VM's footprint.
    workload_pages: int
    #: Page accesses issued per unthrottled round.
    writes_per_round: int
    #: Fraction of accesses that are writes (the rest are reads).
    write_fraction: float = 1.0
    #: Guest compute charged per round (the workload's own work).
    compute_us_per_round: float = 200.0
    #: Access locality: the first ``hot_fraction`` of the workload is the
    #: hot region; each access lands there with probability
    #: ``hot_weight``, else anywhere in the workload.  1.0 (the default)
    #: is the original uniform stream, bit-identically (no extra RNG
    #: draws) — the skew exists so WSS estimators have a cold tail to
    #: find, which is what makes overcommit pay.
    hot_fraction: float = 1.0
    hot_weight: float = 0.9
    seed: int = 7

    def __post_init__(self) -> None:
        if self.workload_pages < 1:
            raise ConfigurationError(
                f"workload_pages must be >= 1: {self.workload_pages}"
            )
        if self.workload_pages > Vm.mb(self.mem_mb):
            raise ConfigurationError(
                f"workload_pages {self.workload_pages} exceeds the "
                f"{self.mem_mb} MiB footprint ({Vm.mb(self.mem_mb)} pages)"
            )
        if self.writes_per_round < 1:
            raise ConfigurationError(
                f"writes_per_round must be >= 1: {self.writes_per_round}"
            )
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError(
                f"write_fraction must be in [0, 1]: {self.write_fraction}"
            )
        if self.compute_us_per_round < 0:
            raise ConfigurationError(
                f"compute_us_per_round must be >= 0: {self.compute_us_per_round}"
            )
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_fraction must be in (0, 1]: {self.hot_fraction}"
            )
        if not 0.0 <= self.hot_weight <= 1.0:
            raise ConfigurationError(
                f"hot_weight must be in [0, 1]: {self.hot_weight}"
            )

    @property
    def mem_pages(self) -> int:
        return Vm.mb(self.mem_mb)


class FleetVm:
    """One migratable VM: spec + persistent workload RNG + binding."""

    def __init__(self, spec: VmSpec) -> None:
        self.spec = spec
        # crc32 of the name decorrelates same-seed VMs; the stream is
        # owned here (not per-host) so migration never rewinds it.
        self._rng = np.random.default_rng(
            (spec.seed & 0xFFFFFFFF) ^ zlib.crc32(spec.name.encode())
        )
        #: Auto-converge throttle in [0, 1): fraction of the round's
        #: accesses suppressed.
        self.throttle = 0.0
        #: Working-set sample history; starts pessimistic at the whole
        #: workload.  ``last_wss_pages`` remains the scalar view the
        #: placement path (and older tests) reads and writes.
        self.wss = WssHistory(initial_pages=spec.workload_pages)
        self.n_rounds = 0
        self.host: Host | None = None
        self.vm: Vm | None = None
        self.kernel: GuestKernel | None = None
        self.proc: Process | None = None
        self._round_hooks: list[Callable[[], None]] = []

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def last_wss_pages(self) -> int:
        """Most recent WSS planning estimate (pages)."""
        return self.wss.planning_pages

    @last_wss_pages.setter
    def last_wss_pages(self, pages: int) -> None:
        self.wss.record_estimate(int(pages))

    def bind(
        self, host: "Host", vm: Vm, kernel: GuestKernel, proc: Process
    ) -> None:
        self.host = host
        self.vm = vm
        self.kernel = kernel
        self.proc = proc

    def add_round_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` after every workload round (e.g. tracker collect)."""
        self._round_hooks.append(hook)

    def run_round(self) -> None:
        """One workload quantum: randomized accesses + guest compute."""
        if self.kernel is None or self.proc is None:
            raise ConfigurationError(f"FleetVm {self.name} is not bound")
        spec = self.spec
        n = max(1, int(round(spec.writes_per_round * (1.0 - self.throttle))))
        vpns = self._rng.integers(0, spec.workload_pages, n)
        if spec.hot_fraction < 1.0:
            # Fold hot draws into the leading hot region; the uniform
            # draw above is reused so hot_fraction == 1.0 specs keep the
            # exact pre-skew random stream.
            hot_span = max(1, int(spec.workload_pages * spec.hot_fraction))
            in_hot = self._rng.random(n) < spec.hot_weight
            vpns = np.where(in_hot, vpns % hot_span, vpns)
        if spec.write_fraction >= 1.0:
            writes: bool | np.ndarray = True
        else:
            writes = self._rng.random(n) < spec.write_fraction
        self.kernel.access(self.proc, vpns, writes)
        if spec.compute_us_per_round > 0:
            self.kernel.compute(self.proc, spec.compute_us_per_round)
        self.n_rounds += 1
        for hook in self._round_hooks:
            hook()


@dataclass
class Host:
    """One physical node: a hypervisor plus resident fleet VMs."""

    host_id: str
    clock: SimClock
    costs: CostModel
    mem_mb: float
    pml_buffer_entries: int = 512
    #: Nominal footprint the host may promise, as a multiple of physical
    #: capacity.  1.0 (the default) disables the economics layer entirely:
    #: admission is the plain physical-frames check and no balloon is ever
    #: installed, so the host is bit-identical to the pre-economics fleet.
    overcommit_ratio: float = 1.0
    hypervisor: Hypervisor = field(init=False)
    vms: dict[str, FleetVm] = field(init=False, default_factory=dict)
    #: Frames promised to in-flight incoming migrations (the destination
    #: VM is not created until pre-copy finishes, but concurrent placement
    #: decisions must see the claim).
    reserved_pages: int = field(init=False, default=0)
    #: Reclaim controller + balloon registry; present iff overcommitting.
    economics: object | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.overcommit_ratio < 1.0:
            raise ConfigurationError(
                f"overcommit_ratio must be >= 1.0: {self.overcommit_ratio}"
            )
        self.hypervisor = Hypervisor(
            self.clock, self.costs, host_mem_mb=self.mem_mb
        )
        if self.overcommit_ratio > 1.0:
            from repro.fleet.economics.reclaim import HostEconomics

            self.economics = HostEconomics(self)

    # -- capacity accounting ------------------------------------------
    @property
    def capacity_pages(self) -> int:
        return self.hypervisor.host_mem.n_frames

    @property
    def free_pages(self) -> int:
        return self.hypervisor.host_mem.allocator.n_free

    @property
    def committed_pages(self) -> int:
        return self.capacity_pages - self.free_pages

    @property
    def hot_pages(self) -> int:
        """Sum of resident VMs' WSS estimates — the placement pressure."""
        return sum(fvm.last_wss_pages for fvm in self.vms.values())

    @property
    def available_pages(self) -> int:
        """Free frames minus in-flight reservations."""
        return self.free_pages - self.reserved_pages

    def fits(self, mem_pages: int) -> bool:
        return self.available_pages >= mem_pages

    # -- overcommit accounting ----------------------------------------
    @property
    def nominal_pages(self) -> int:
        """Sum of resident VMs' nominal footprints (what a no-overcommit
        host would have to hold physically)."""
        return sum(fvm.spec.mem_pages for fvm in self.vms.values())

    @property
    def commit_limit_pages(self) -> int:
        """Nominal footprint ceiling: capacity times the overcommit ratio."""
        return int(self.capacity_pages * self.overcommit_ratio)

    @property
    def pressure(self) -> float:
        """Demand-over-capacity signal: resident working sets plus
        in-flight reservations against physical frames.  Above ~1.0 the
        hot sets alone exceed the machine — the thrash regime."""
        return (self.hot_pages + self.reserved_pages) / float(
            self.capacity_pages
        )

    def admit(self, spec: VmSpec, wss_pages: int | None = None) -> bool:
        """Would this host accept ``spec``?

        Without overcommit this is exactly :meth:`fits` on the footprint.
        Overcommitting hosts admit against *estimated demand*: the
        nominal footprint must stay under the commit limit, and the
        resident working sets plus the candidate's (with the policy
        headroom) must fit in physical frames — the balloon can always
        squeeze cold pages out, but hot demand has nowhere to go.
        """
        if self.economics is None:
            return self.fits(spec.mem_pages)
        policy = self.economics.policy
        wss = spec.workload_pages if wss_pages is None else int(wss_pages)
        need = int(np.ceil(wss * (1.0 + policy.headroom)))
        if self.nominal_pages + spec.mem_pages > self.commit_limit_pages:
            return False
        return (
            self.hot_pages + self.reserved_pages + need
            <= self.capacity_pages
        )

    # -- VM lifecycle -------------------------------------------------
    def create_shell(self, spec: VmSpec) -> tuple[Vm, GuestKernel, Process]:
        """VM + kernel + an *unpopulated* process with the workload VMA
        laid out — the destination half of a migration."""
        vm = self.hypervisor.create_vm(
            spec.name, mem_mb=spec.mem_mb,
            pml_buffer_entries=self.pml_buffer_entries,
        )
        kernel = GuestKernel(vm)
        proc = kernel.spawn(spec.name, n_pages=spec.workload_pages)
        proc.space.add_vma(spec.workload_pages)
        return vm, kernel, proc

    def place(self, spec: VmSpec) -> FleetVm:
        """Boot a fresh fleet VM here, workload memory fully faulted in.

        On an overcommitting host the eager footprint may exceed the free
        frames; resident guests are ballooned down first, and the new
        guest gets its own balloon so it can be a reclaim victim later.
        """
        if self.economics is not None:
            self.economics.prepare_admission(spec.mem_pages)
        fvm = FleetVm(spec)
        vm, kernel, proc = self.create_shell(spec)
        kernel.access(
            proc, np.arange(spec.workload_pages, dtype=np.int64), True
        )
        fvm.bind(self, vm, kernel, proc)
        self.vms[spec.name] = fvm
        if self.economics is not None:
            self.economics.attach(fvm)
        return fvm

    def adopt(self, fvm: FleetVm) -> None:
        """Register an incoming (already bound) migrated VM."""
        self.vms[fvm.name] = fvm

    def evict(self, fvm: FleetVm) -> None:
        """Tear down a migrated-away VM's source half."""
        self.vms.pop(fvm.name, None)
        if self.economics is not None:
            self.economics.detach(fvm.name)
        self.hypervisor.destroy_vm(fvm.spec.name)
