"""Host-side memory-economics controller: pressure-driven reclaim.

One :class:`HostEconomics` per overcommitted :class:`~repro.fleet.host.Host`
(``overcommit_ratio > 1.0``).  It owns the resident guests' balloon
drivers and frees host frames on demand:

* **admission** — a new VM's eager EPT allocation needs its whole
  footprint in physical frames; :meth:`prepare_admission` balloons
  resident guests down to make room ("boot big, balloon down");
* **refault** — a deflate needs host frames; :meth:`ensure_free` reclaims
  them from the guests with the most excess over their WSS targets;
* **rebalance** — an epoch-end sweep restoring the free-frame slack the
  next refault burst will draw from.

Victim selection is deterministic: guests ranked by reclaimable excess
(resident pages minus the hysteresis-gated WSS target), name-ordered
tie-breaks, voluntary pass before the forced pass (which shrinks below
target but never below ``min_resident_pages`` — the thrash regime the
overcommit frontier measures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, OutOfFramesError
from repro.fleet.economics.balloon import BalloonDriver
from repro.fleet.economics.wss_history import WssConfig
from repro.obs import trace as otr
from repro.obs.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.host import FleetVm, Host

__all__ = ["OvercommitPolicy", "HostEconomics"]


@dataclass(frozen=True)
class OvercommitPolicy:
    """Knobs of one host's memory economics (defaults: DESIGN.md §14)."""

    #: Admission headroom over the estimated WSS (fractional).
    headroom: float = 0.10
    #: Free-frame float the controller keeps for refault bursts.
    slack_pages: int = 64
    #: Forced reclaim never shrinks a guest below this many resident pages.
    min_resident_pages: int = 16
    #: Reclaim batch cap per victim visit (bounds per-fault latency).
    max_batch_pages: int = 512
    #: WSS estimator configuration shared by resident guests.
    wss: WssConfig = field(default_factory=WssConfig)

    def __post_init__(self) -> None:
        if self.headroom < 0.0:
            raise ConfigurationError(f"headroom must be >= 0: {self.headroom}")
        if self.slack_pages < 0:
            raise ConfigurationError(
                f"slack_pages must be >= 0: {self.slack_pages}"
            )
        if self.min_resident_pages < 1:
            raise ConfigurationError(
                f"min_resident_pages must be >= 1: {self.min_resident_pages}"
            )
        if self.max_batch_pages < 1:
            raise ConfigurationError(
                f"max_batch_pages must be >= 1: {self.max_batch_pages}"
            )


class HostEconomics:
    """Reclaim controller + balloon registry for one overcommitted host."""

    def __init__(self, host: "Host", policy: OvercommitPolicy | None = None) -> None:
        self.host = host
        self.policy = policy or OvercommitPolicy()
        self.drivers: dict[str, BalloonDriver] = {}
        self.n_pressure_events = 0

    # -- lifecycle -----------------------------------------------------
    def attach(self, fvm: "FleetVm") -> BalloonDriver:
        """Install the balloon driver on a freshly-placed guest.

        The guest must keep a frame float: refault batches allocate guest
        frames *before* the driver's deflate restores them, so the
        footprint must exceed the workload by at least one access batch.
        """
        spec = fvm.spec
        if spec.mem_pages - spec.workload_pages < spec.writes_per_round:
            raise ConfigurationError(
                f"{fvm.name}: overcommit needs a guest-frame float of at "
                f"least writes_per_round ({spec.writes_per_round}) pages; "
                f"footprint {spec.mem_pages} - workload "
                f"{spec.workload_pages} is too tight"
            )
        driver = BalloonDriver(fvm, self)
        self.drivers[fvm.name] = driver
        return driver

    def can_manage(self, fvm: "FleetVm") -> bool:
        """Can a balloon be installed on this (bound) guest?  False when
        the process already owns a userfaultfd (e.g. a post-copy arrival
        mid-drain) or the footprint leaves no guest-frame float — such a
        guest simply cannot be a reclaim victim."""
        spec = fvm.spec
        return (
            fvm.proc is not None
            and fvm.proc.uffd is None
            and spec.mem_pages - spec.workload_pages >= spec.writes_per_round
        )

    def detach(self, name: str) -> None:
        driver = self.drivers.pop(name, None)
        if driver is not None:
            driver.close()

    # -- aggregate stats -----------------------------------------------
    @property
    def reclaimed_pages(self) -> int:
        return sum(d.reclaimed_pages for d in self.drivers.values())

    @property
    def refault_pages(self) -> int:
        return sum(d.refault_pages for d in self.drivers.values())

    @property
    def refault_faults(self) -> int:
        return sum(d.refault_faults for d in self.drivers.values())

    @property
    def ballooned_pages(self) -> int:
        return sum(d.ballooned_pages for d in self.drivers.values())

    # -- reclaim -------------------------------------------------------
    def _reclaimable(self, driver: BalloonDriver, forced: bool) -> int:
        floor = self.policy.min_resident_pages
        if not forced:
            floor = max(floor, driver.fvm.wss.target_pages)
        return max(0, driver.resident_pages - floor)

    def _pick_victim(
        self,
        requester: BalloonDriver | None,
        forced: bool,
        exclude: set[str] | None = None,
    ) -> BalloonDriver | None:
        """Deterministic ranking: most reclaimable excess wins, names
        break ties; the requester is only eligible when no other guest
        has anything to give (its in-flight and active-batch pages are
        excluded by the driver itself); ``exclude`` skips victims that
        already proved dry this pass."""
        exclude = exclude or set()
        best: BalloonDriver | None = None
        best_key: tuple[int, str] | None = None
        for name in sorted(self.drivers):
            driver = self.drivers[name]
            if driver is requester or name in exclude:
                continue
            excess = self._reclaimable(driver, forced)
            if excess <= 0:
                continue
            key = (-excess, name)
            if best_key is None or key < best_key:
                best, best_key = driver, key
        if best is not None:
            return best
        if (
            requester is not None
            and requester.fvm.name not in exclude
            and self._reclaimable(requester, forced) > 0
        ):
            return requester
        return None

    def ensure_free(
        self, n_pages: int, requester: BalloonDriver | None = None
    ) -> int:
        """Reclaim until the host has ``n_pages`` free frames; returns the
        number of pages reclaimed.  A victim whose accountable excess is
        shadowed (in-flight refaults, the active access batch) yields
        zero and is set aside for the pass rather than aborting it.
        Raises :class:`~repro.errors.OutOfFramesError` when even forced
        reclaim cannot reach the goal (hot demand genuinely exceeds the
        host)."""
        freed = 0
        dry: set[str] = set()
        while self.host.free_pages < n_pages:
            deficit = n_pages - self.host.free_pages
            victim = self._pick_victim(requester, forced=False, exclude=dry)
            forced = False
            if victim is None:
                victim = self._pick_victim(requester, forced=True, exclude=dry)
                forced = True
            if victim is None:
                raise OutOfFramesError(
                    f"host {self.host.host_id}: reclaim exhausted with "
                    f"{deficit} pages still needed ({n_pages} requested, "
                    f"{self.host.free_pages} free)"
                )
            take = min(
                deficit,
                self._reclaimable(victim, forced),
                self.policy.max_batch_pages,
            )
            got = victim.inflate(take)
            if got == 0:
                dry.add(victim.fvm.name)
                continue
            dry.clear()  # progress: earlier dry victims may have thawed
            freed += got
        if freed and otr.ACTIVE is not None:
            otr.ACTIVE.emit(
                EventKind.RECLAIM_PRESSURE,
                host_id=self.host.host_id,
                n_pages=freed,
                free_pages=int(self.host.free_pages),
            )
            otr.ACTIVE.metrics.inc("economics.pressure_reclaims")
        if freed:
            self.n_pressure_events += 1
        return freed

    def prepare_admission(self, mem_pages: int) -> int:
        """Make room for a new VM's eager footprint plus the slack."""
        return self.ensure_free(mem_pages + self.policy.slack_pages)

    def rebalance(self) -> int:
        """Epoch-end sweep: restore the free-frame slack."""
        if self.host.free_pages >= self.policy.slack_pages:
            return 0
        return self.ensure_free(self.policy.slack_pages)
