"""WSS-aware bin packing: place VMs by estimated demand, not footprint.

Admission goes through :meth:`~repro.fleet.host.Host.admit` — nominal
footprints against the overcommit commit limit, estimated working sets
(plus headroom) against physical capacity.  Ranking is best-fit by WSS:
the feasible host left with the *least* WSS headroom after placement
wins, which packs guests tightly and preserves the emptier hosts for the
demand spikes the estimators have not seen yet.  Ties break on
``host_id`` so packing is deterministic.

:func:`pack` is the batch form — first-fit-decreasing over estimated
working sets, the classic bin-packing heuristic — used by the overcommit
experiment's admission waves; rejected specs stay pending and retry once
sampling has shrunk the resident estimates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs import trace as otr
from repro.obs.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.host import FleetVm, Host, VmSpec

__all__ = ["wss_headroom_pages", "choose_host", "pack"]


def wss_headroom_pages(host: "Host") -> int:
    """Physical pages not claimed by resident working sets or in-flight
    reservations — the packing currency."""
    return host.capacity_pages - host.hot_pages - host.reserved_pages


def choose_host(
    hosts: list["Host"], spec: "VmSpec", wss_pages: int | None = None
) -> "Host | None":
    """Best-fit feasible host for ``spec`` (``None`` when nobody admits)."""
    wss = spec.workload_pages if wss_pages is None else int(wss_pages)
    feasible = [h for h in hosts if h.admit(spec, wss)]
    if not feasible:
        return None
    best = min(feasible, key=lambda h: (wss_headroom_pages(h) - wss, h.host_id))
    if otr.ACTIVE is not None:
        otr.ACTIVE.emit(
            EventKind.FLEET_PLACEMENT,
            vm=spec.name,
            host_id=best.host_id,
            wss_pages=wss,
            free_pages=int(best.free_pages),
        )
        otr.ACTIVE.metrics.inc(f"fleet.host.{best.host_id}.placements")
    return best


def pack(
    hosts: list["Host"],
    specs: list["VmSpec"],
    wss_of: dict[str, int] | None = None,
) -> tuple[list["FleetVm"], list["VmSpec"]]:
    """First-fit-decreasing admission wave: place what fits, return
    ``(placed fleet VMs, rejected specs)``.  Specs are visited in
    descending estimated WSS (stable, so equal estimates keep submission
    order) and *placed immediately* — later candidates see the earlier
    admissions' pressure."""
    wss_of = wss_of or {}

    def est(spec: "VmSpec") -> int:
        return int(wss_of.get(spec.name, spec.workload_pages))

    placed: list["FleetVm"] = []
    rejected: list["VmSpec"] = []
    for spec in sorted(specs, key=est, reverse=True):
        host = choose_host(hosts, spec, est(spec))
        if host is None:
            rejected.append(spec)
        else:
            placed.append(host.place(spec))
    return placed, rejected
