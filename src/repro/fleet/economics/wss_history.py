"""Per-VM working-set time series: the economics layer's demand signal.

PR 5's orchestrator kept a single ``last_wss_pages`` scalar per fleet VM.
Overcommit decisions need more: admission wants a *stable* demand
estimate that does not chase one quiet interval, and reclaim needs a
floor it must never shrink a VM below.  :class:`WssHistory` keeps a
bounded window of accessed-bit samples and derives three estimators:

* **planning** — the placement value the orchestrator publishes (ceil of
  the mean over the most recent sampling batch; arithmetic identical to
  :meth:`~repro.hypervisor.wss.WssEstimator.estimate_pages`, so the PR 5
  fleet path is bit-identical);
* **EWMA** — exponentially-smoothed demand, the "typical" working set;
* **target** — the reclaim floor: max(EWMA, high percentile) gated by
  hysteresis, so one noisy sample cannot flap the balloon.

Histories start pessimistic at the VM's whole workload footprint — an
unsampled VM is assumed to need everything it could touch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["WssConfig", "WssHistory"]


@dataclass(frozen=True)
class WssConfig:
    """Estimator knobs (defaults: DESIGN.md §14)."""

    #: EWMA smoothing factor (weight of the newest sample).
    alpha: float = 0.3
    #: Percentile backing the reclaim target (robust peak).
    percentile: float = 90.0
    #: Relative change the target must see before it moves.
    hysteresis: float = 0.15
    #: Samples retained.
    window: int = 32

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1]: {self.alpha}")
        if not 0.0 <= self.percentile <= 100.0:
            raise ConfigurationError(
                f"percentile must be in [0, 100]: {self.percentile}"
            )
        if self.hysteresis < 0.0:
            raise ConfigurationError(
                f"hysteresis must be >= 0: {self.hysteresis}"
            )
        if self.window < 1:
            raise ConfigurationError(f"window must be >= 1: {self.window}")


class WssHistory:
    """Bounded accessed-bit sample series with smoothed estimators."""

    def __init__(
        self, initial_pages: int, config: WssConfig | None = None
    ) -> None:
        if initial_pages < 1:
            raise ConfigurationError(
                f"initial_pages must be >= 1: {initial_pages}"
            )
        self.config = config or WssConfig()
        self.initial_pages = initial_pages
        self.samples: deque[int] = deque(maxlen=self.config.window)
        self._ewma: float | None = None
        self._planning = initial_pages
        self._target = initial_pages
        self.n_recorded = 0

    # -- recording -----------------------------------------------------
    def record(self, accessed_pages: int) -> None:
        """Append one accessed-bit sample; updates EWMA and the target."""
        n = int(accessed_pages)
        if n < 0:
            raise ConfigurationError(f"accessed_pages must be >= 0: {n}")
        self.samples.append(n)
        self.n_recorded += 1
        a = self.config.alpha
        self._ewma = float(n) if self._ewma is None else (
            a * n + (1.0 - a) * self._ewma
        )
        self._update_target()

    def record_estimate(self, pages: int) -> None:
        """Publish an externally-computed planning estimate (the PR 5
        ``last_wss_pages = ...`` assignment path, kept for compatibility);
        it also counts as one sample so the smoothed estimators see it."""
        self.record(int(pages))
        self._planning = int(pages)

    def refresh_planning(self, intervals: int) -> int:
        """Set planning to ceil(mean of the last ``intervals`` samples) —
        bit-for-bit the arithmetic of ``WssEstimator.estimate_pages``."""
        if intervals < 1:
            raise ConfigurationError(f"intervals must be >= 1: {intervals}")
        if not self.samples:
            return self._planning
        recent = list(self.samples)[-intervals:]
        self._planning = int(np.ceil(float(np.mean(recent))))
        return self._planning

    # -- estimators ----------------------------------------------------
    @property
    def planning_pages(self) -> int:
        """The placement/admission estimate (PR 5's ``last_wss_pages``)."""
        return self._planning

    @property
    def ewma_pages(self) -> int:
        if self._ewma is None:
            return self._planning
        return int(np.ceil(self._ewma))

    @property
    def peak_pages(self) -> int:
        if not self.samples:
            return self._planning
        return int(max(self.samples))

    def percentile_pages(self, p: float | None = None) -> int:
        if not self.samples:
            return self._planning
        q = self.config.percentile if p is None else p
        return int(np.ceil(float(np.percentile(list(self.samples), q))))

    @property
    def target_pages(self) -> int:
        """Hysteresis-gated reclaim floor: the balloon must leave the VM
        at least this many resident pages."""
        return self._target

    def _update_target(self) -> None:
        candidate = max(self.ewma_pages, self.percentile_pages())
        if self._target <= 0:
            self._target = max(1, candidate)
            return
        rel = abs(candidate - self._target) / float(self._target)
        if rel > self.config.hysteresis:
            self._target = max(1, candidate)
