"""Memory economics: WSS-driven overcommit, ballooning, and reclaim.

The fleet layer's answer to "millions of users on finite hosts": admit
VMs against their *estimated working sets* instead of nominal footprints
(:mod:`~repro.fleet.economics.wss_history`,
:meth:`repro.fleet.host.Host.admit`), reclaim cold frames through a
hypercall-driven guest balloon with uffd refault-on-access
(:mod:`~repro.fleet.economics.balloon`), keep hosts solvent with a
pressure-driven reclaim controller
(:mod:`~repro.fleet.economics.reclaim`), and pack placements by demand
(:mod:`~repro.fleet.economics.placement`).  The ``overcommit``
experiment (:mod:`~repro.fleet.economics.experiment`) sweeps the
overcommit ratio against refault rate and latency — the frontier table.
"""

from repro.fleet.economics.balloon import BalloonDriver
from repro.fleet.economics.placement import choose_host, pack, wss_headroom_pages
from repro.fleet.economics.reclaim import HostEconomics, OvercommitPolicy
from repro.fleet.economics.wss_history import WssConfig, WssHistory

__all__ = [
    "BalloonDriver",
    "HostEconomics",
    "OvercommitPolicy",
    "WssConfig",
    "WssHistory",
    "choose_host",
    "pack",
    "wss_headroom_pages",
]
