"""Guest balloon driver: hypercall-driven frame reclaim + uffd refault.

The reclaim datapath, virtio-balloon shaped but driven by the *host's*
WSS signal (accessed-bit sampling needs no guest cooperation; the balloon
driver is the one guest-side seam, exactly like the OoH module):

* **inflate** — the driver picks cold victim pages (EPT accessed bit
  still clear since the last WSS sample), saves their content tokens to
  a swap store, unmaps the PTEs (with a TLB shootdown — every vCPU may
  cache the dying translations) and hands the guest frames to the
  hypervisor via ``HC_OOH_BALLOON_INFLATE``, which EPT-unmaps them and
  returns the host frames to the pool.  Ballooned guest frames are held
  by the driver — *not* returned to the guest allocator — so the guest
  can never re-allocate an EPT-unbacked frame.
* **refault** — the workload touches a reclaimed page: a uffd MISSING
  fault fires (the driver registered the workload VMAs at attach), the
  kernel maps a fresh guest frame, and the driver's miss resolver
  re-backs held frames via ``HC_OOH_BALLOON_DEFLATE`` (restoring the
  guest-frame float) and reinstalls the saved tokens before the MMU
  completes the triggering access — UFFDIO_COPY ordering, so no dirty
  page is ever lost across a reclaim/refault cycle.

Both hypercalls go through the shared :class:`~repro.retry.Retrier`: an
injected ``HYPERCALL_TRANSIENT`` EAGAIN or ``FRAME_EXHAUSTION`` inside
the deflate allocation retries with charged backoff, like every other
recovery path in the simulator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.clock import World
from repro.core.costs import EV_RECLAIM_COPY, EV_REFAULT_COPY
from repro.errors import ConfigurationError, TrackingError
from repro.guest.uffd import UfdMode, UserFaultFd
from repro.hypervisor.hypercalls import (
    HC_OOH_BALLOON_DEFLATE,
    HC_OOH_BALLOON_INFLATE,
)
from repro.obs import trace as otr
from repro.obs.events import EventKind
from repro.retry import Retrier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.economics.reclaim import HostEconomics
    from repro.fleet.host import FleetVm

__all__ = ["BalloonDriver"]


class BalloonDriver:
    """One guest's balloon: swap store, held frames, refault resolver."""

    def __init__(self, fvm: "FleetVm", economics: "HostEconomics") -> None:
        if fvm.kernel is None or fvm.proc is None or fvm.vm is None:
            raise ConfigurationError(
                f"FleetVm {fvm.name} must be bound before ballooning"
            )
        if fvm.proc.uffd is not None:
            raise TrackingError(
                f"process of {fvm.name} already has a userfaultfd; the "
                "balloon's refault path cannot share it"
            )
        self.fvm = fvm
        self.economics = economics
        self.kernel = fvm.kernel
        self.proc = fvm.proc
        self.vm = fvm.vm
        #: vpn -> content token saved at reclaim (the swap store).
        self._swap: dict[int, int] = {}
        #: Guest frames held while their host backing is returned (LIFO).
        self._held_gpfns: list[int] = []
        self._retrier = Retrier(self.vm.clock, World.KERNEL)
        self.reclaimed_pages = 0
        self.refault_pages = 0
        self.refault_faults = 0
        #: Refaults currently being resolved (reentrancy guard: reclaim
        #: triggered from inside a refault must not unmap batch pages).
        self._inflight: set[int] = set()
        # Refaults trap to userspace, lazy-pages style.
        self.uffd: UserFaultFd = self.kernel.create_uffd(self.proc)
        for vma in self.proc.space.vmas:
            self.uffd.register(vma, UfdMode.MISSING)
        self.uffd.add_miss_resolver(self._on_miss)

    # -- introspection -------------------------------------------------
    @property
    def ballooned_pages(self) -> int:
        return len(self._held_gpfns)

    @property
    def resident_pages(self) -> int:
        """Present workload pages (what reclaim can still take from)."""
        pt = self.proc.space.pt
        total = 0
        for vma in self.proc.space.vmas:
            vpns = np.arange(vma.start_vpn, vma.end_vpn, dtype=np.int64)
            total += int(pt.present_mask(vpns).sum())
        return total

    # -- inflate (reclaim) ---------------------------------------------
    def _victims(self, n: int) -> np.ndarray:
        """Up to ``n`` present workload VPNs, coldest first (EPT accessed
        bit clear since the last WSS sample), ascending VPN within each
        class.  Pages of an access batch currently inside the MMU are
        never victims: the fused access will still complete on them, and
        unmapping one mid-fault would leave the resolved batch unmapped."""
        pt = self.proc.space.pt
        pools = []
        for vma in self.proc.space.vmas:
            vpns = np.arange(vma.start_vpn, vma.end_vpn, dtype=np.int64)
            pools.append(vpns[pt.present_mask(vpns)])
        if not pools:
            return np.empty(0, dtype=np.int64)
        cand = np.unique(np.concatenate(pools))
        active = self.kernel.active_access_vpns(self.proc)
        if active.size:
            cand = cand[~np.isin(cand, active)]
        if self._inflight:
            cand = cand[~np.isin(cand, np.fromiter(
                self._inflight, dtype=np.int64
            ))]
        if cand.size == 0:
            return cand
        gpfns = pt.translate(cand)
        hot = self.vm.ept.accessed_mask(gpfns)
        ordered = np.concatenate([cand[~hot], cand[hot]])
        return ordered[:n]

    def inflate(self, n_pages: int) -> int:
        """Reclaim up to ``n_pages`` cold frames; returns how many host
        frames were actually freed."""
        if n_pages <= 0:
            return 0
        victims = self._victims(n_pages)
        if victims.size == 0:
            return 0
        pt = self.proc.space.pt
        tokens = self.vm.mmu.read_page_contents(pt, victims)
        for v, t in zip(victims, tokens):
            self._swap[int(v)] = int(t)
        # Dying translations may be cached on any vCPU.
        self.kernel.tlb_shootdown(self.proc, victims)
        gpfns = pt.unmap(victims)
        self.vm.clock.charge(
            victims.size * self.vm.costs.params.reclaim_copy_us_per_page,
            World.KERNEL,
            EV_RECLAIM_COPY,
            int(victims.size),
        )
        self._retrier.call(
            lambda: self.vm.vcpu.hypercall(HC_OOH_BALLOON_INFLATE, gpfns)
        )
        self._held_gpfns.extend(int(g) for g in gpfns)
        self.reclaimed_pages += int(victims.size)
        if otr.ACTIVE is not None:
            otr.ACTIVE.emit(
                EventKind.BALLOON_INFLATE,
                vm=self.fvm.name,
                n_pages=int(victims.size),
                ballooned=len(self._held_gpfns),
            )
            otr.ACTIVE.metrics.inc("economics.reclaimed_pages", int(victims.size))
        return int(victims.size)

    # -- refault (deflate) ---------------------------------------------
    def _on_miss(self, vpns: np.ndarray, write_mask: np.ndarray) -> None:
        vpns = np.asarray(vpns, dtype=np.int64)
        if vpns.size == 0:
            return
        self._inflight.update(int(v) for v in vpns)
        try:
            # Every miss consumed one fresh guest frame; release the same
            # number of held frames so the guest allocator float is
            # restored.  Host frames must exist for the deflate — under
            # pressure the controller reclaims them from other guests.
            k = min(int(vpns.size), len(self._held_gpfns))
            if k > 0:
                self.economics.ensure_free(k, requester=self)
                batch = np.array(self._held_gpfns[-k:], dtype=np.int64)
                del self._held_gpfns[-k:]
                self._retrier.call(
                    lambda: self.vm.vcpu.hypercall(
                        HC_OOH_BALLOON_DEFLATE, batch
                    )
                )
                self.vm.guest_frames.free(batch)
                if otr.ACTIVE is not None:
                    otr.ACTIVE.emit(
                        EventKind.BALLOON_DEFLATE,
                        vm=self.fvm.name,
                        n_pages=k,
                        ballooned=len(self._held_gpfns),
                    )
            # Reinstall saved contents for the reclaimed pages in the
            # batch, before the MMU completes the triggering access.
            refaults = [int(v) for v in vpns if int(v) in self._swap]
            if refaults:
                arr = np.array(refaults, dtype=np.int64)
                tokens = np.array(
                    [self._swap.pop(v) for v in refaults], dtype=np.uint64
                )
                self.vm.mmu.write_page_contents(self.proc.space.pt, arr, tokens)
                self.vm.clock.charge(
                    arr.size * self.vm.costs.params.refault_copy_us_per_page,
                    World.KERNEL,
                    EV_REFAULT_COPY,
                    int(arr.size),
                )
                self.refault_pages += int(arr.size)
                self.refault_faults += 1
                if otr.ACTIVE is not None:
                    otr.ACTIVE.emit(
                        EventKind.BALLOON_REFAULT,
                        vm=self.fvm.name,
                        n_pages=int(arr.size),
                    )
                    otr.ACTIVE.metrics.inc(
                        "economics.refault_pages", int(arr.size)
                    )
        finally:
            self._inflight.difference_update(int(v) for v in vpns)

    def deflate_all(self) -> int:
        """Drain the balloon: re-back every held frame and reinstall
        every swapped token, making the guest image whole again.  The
        orchestrator calls this before a migration reads the source —
        ``_source_contents`` only sees present pages, so a swapped token
        left behind would be silently lost in transit."""
        pt = self.proc.space.pt
        vpns = np.array(sorted(self._swap), dtype=np.int64)
        if self._held_gpfns:
            self.economics.ensure_free(len(self._held_gpfns), requester=self)
            batch = np.array(self._held_gpfns, dtype=np.int64)
            self._held_gpfns.clear()
            self._retrier.call(
                lambda: self.vm.vcpu.hypercall(HC_OOH_BALLOON_DEFLATE, batch)
            )
            self.vm.guest_frames.free(batch)
            if otr.ACTIVE is not None:
                otr.ACTIVE.emit(
                    EventKind.BALLOON_DEFLATE,
                    vm=self.fvm.name,
                    n_pages=int(batch.size),
                    ballooned=0,
                )
        if vpns.size == 0:
            return 0
        gpfns = self._retrier.call(
            lambda: self.vm.guest_frames.alloc(int(vpns.size))
        )
        pt.map(vpns, gpfns, writable=True, soft_dirty=True)
        tokens = np.array(
            [self._swap.pop(int(v)) for v in vpns], dtype=np.uint64
        )
        self.vm.mmu.write_page_contents(pt, vpns, tokens)
        self.vm.clock.charge(
            vpns.size * self.vm.costs.params.refault_copy_us_per_page,
            World.KERNEL,
            EV_REFAULT_COPY,
            int(vpns.size),
        )
        self.refault_pages += int(vpns.size)
        if otr.ACTIVE is not None:
            otr.ACTIVE.emit(
                EventKind.BALLOON_REFAULT,
                vm=self.fvm.name,
                n_pages=int(vpns.size),
            )
            otr.ACTIVE.metrics.inc("economics.refault_pages", int(vpns.size))
        return int(vpns.size)

    def close(self) -> None:
        """Detach the refault path.  A live balloon is allowed here only
        when the VM is being destroyed (eviction); migration must call
        :meth:`deflate_all` first."""
        self.uffd.remove_miss_resolver(self._on_miss)
        self.uffd.close()
