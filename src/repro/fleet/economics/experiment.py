"""The ``overcommit`` experiment: the ratio-vs-refault frontier.

Scenario: more tenants than the rack can nominally hold.  A pool of VMs
is offered to a small fleet in *admission waves*: each epoch the
first-fit-decreasing packer (:func:`~repro.fleet.economics.placement.pack`)
places whatever the hosts admit, the residents run their workloads while
the accessed-bit sampler refreshes their WSS histories, and the reclaim
controller rebalances.  Early epochs see pessimistic (whole-workload)
estimates; as sampling firms up, estimates shrink, admission opens, and
hosts fill past their physical capacity — the balloon squeezing cold
pages out, uffd refaults pulling them back in.

The sweep runs the identical offered load at several overcommit ratios.
Ratio 1.0 is the control: the economics layer is never constructed, so
the machine state is bit-identical to the plain fleet path.  Higher
ratios admit more tenants and pay for it in refaults — the frontier
table reports both sides (admitted count vs refaults per 1k accesses and
mean round latency), which is the paper's economics argument in one
screen: dirty-page-tracking-grade visibility into guest memory makes
overcommit a measured trade, not a gamble.

Deterministic by construction: one seed derives every workload stream,
packing and victim selection use stable orderings, and there is no
wall-clock anywhere.  Configured via ``--overcommit-ratio`` (environment:
``REPRO_OVERCOMMIT_RATIOS`` / ``REPRO_OVERCOMMIT_HOSTS`` /
``REPRO_OVERCOMMIT_VMS`` / ``REPRO_OVERCOMMIT_SEED``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.clock import SimClock
from repro.core.costs import CostModel
from repro.errors import ConfigurationError
from repro.experiments.cache import EXPERIMENT_CACHE
from repro.fleet.economics.placement import pack
from repro.fleet.host import FleetVm, Host, VmSpec
from repro.hypervisor.wss import WssEstimator

__all__ = [
    "OvercommitRunResult",
    "overcommit_specs",
    "run_overcommit_scenario",
    "exp_overcommit",
]

#: Accessed-bit sampling intervals per epoch per resident VM.
WSS_INTERVALS = 2


@dataclass
class OvercommitRunResult:
    """Cache-friendly scalars for one ratio point of the sweep."""

    ratio: float
    n_hosts: int
    n_vms: int
    seed: int
    epochs: int
    rounds_per_epoch: int
    admitted: int = 0
    rejected: int = 0
    #: host_id -> nominal footprint / physical capacity at the end.
    nominal_pages: dict[str, int] = field(default_factory=dict)
    capacity_pages: int = 0
    reclaimed_pages: int = 0
    refault_pages: int = 0
    refault_faults: int = 0
    pressure_events: int = 0
    total_accesses: int = 0
    total_rounds: int = 0
    total_us: float = 0.0
    peak_pressure: float = 0.0
    #: epoch index -> VMs resident after that epoch's admission wave.
    admitted_by_epoch: list[int] = field(default_factory=list)

    @property
    def refaults_per_1k_accesses(self) -> float:
        if self.total_accesses == 0:
            return 0.0
        return 1000.0 * self.refault_pages / self.total_accesses

    @property
    def mean_round_us(self) -> float:
        if self.total_rounds == 0:
            return 0.0
        return self.total_us / self.total_rounds


def overcommit_specs(n_vms: int, seed: int, quick: bool) -> list[VmSpec]:
    """The offered tenant pool.  Every footprint leaves a guest-frame
    float (footprint - workload >= writes_per_round) so the refault path
    always has frames to consume before the balloon deflates, and every
    workload is hot/cold skewed — the cold tail is what the balloon
    harvests and what the sampler must not confuse with demand."""
    specs = []
    for i in range(n_vms):
        if quick:
            mem_mb, workload, writes = 4.0, 768, 64
        else:
            mem_mb, workload, writes = 8.0, 1536, 96
        specs.append(
            VmSpec(
                name=f"ten{i:02d}",
                mem_mb=mem_mb,
                workload_pages=workload,
                writes_per_round=writes,
                write_fraction=0.8,
                compute_us_per_round=150.0,
                hot_fraction=0.25,
                hot_weight=0.9,
                seed=seed + i,
            )
        )
    return specs


def _sample_wss(fvm: FleetVm, intervals: int) -> int:
    """Refresh one resident's WSS history by accessed-bit sampling —
    the same arithmetic as ``MigrationOrchestrator.estimate_wss``."""
    est = WssEstimator(fvm.vm)
    for _ in range(intervals):
        s = est.sample(fvm.run_round)
        fvm.wss.record(s.accessed_pages)
    return fvm.wss.refresh_planning(intervals)


def run_overcommit_scenario(
    ratio: float,
    n_hosts: int = 2,
    n_vms: int = 14,
    seed: int = 11,
    quick: bool = False,
    epochs: int | None = None,
    rounds_per_epoch: int | None = None,
) -> OvercommitRunResult:
    """Offer ``n_vms`` tenants to ``n_hosts`` hosts at one overcommit
    ratio; run the admission-wave loop; return the frontier point."""
    if n_hosts < 1:
        raise ConfigurationError(f"n_hosts must be >= 1: {n_hosts}")
    clock = SimClock()
    costs = CostModel()
    host_mb = 12.0 if quick else 24.0
    epochs = (3 if quick else 6) if epochs is None else epochs
    rounds_per_epoch = (
        (4 if quick else 8) if rounds_per_epoch is None else rounds_per_epoch
    )
    hosts = [
        Host(f"h{i}", clock, costs, mem_mb=host_mb, overcommit_ratio=ratio)
        for i in range(n_hosts)
    ]
    if quick:
        n_vms = min(n_vms, 8)
    pending = overcommit_specs(n_vms, seed, quick)
    residents: list[FleetVm] = []

    result = OvercommitRunResult(
        ratio=ratio,
        n_hosts=n_hosts,
        n_vms=n_vms,
        seed=seed,
        epochs=epochs,
        rounds_per_epoch=rounds_per_epoch,
        capacity_pages=sum(h.capacity_pages for h in hosts),
    )
    start_us = clock.now_us

    for _epoch in range(epochs):
        # Admission wave: pessimistic estimates for never-sampled specs,
        # the residents' (shrinking) histories for the pressure they add.
        placed, pending = pack(hosts, pending)
        residents.extend(placed)
        result.admitted_by_epoch.append(len(residents))
        # Workload epoch: everyone runs; sampling rounds count as load.
        for fvm in residents:
            _sample_wss(fvm, WSS_INTERVALS)
            for _ in range(rounds_per_epoch):
                fvm.run_round()
        for h in hosts:
            result.peak_pressure = max(result.peak_pressure, h.pressure)
            if h.economics is not None:
                h.economics.rebalance()

    result.admitted = len(residents)
    result.rejected = len(pending)
    result.nominal_pages = {h.host_id: h.nominal_pages for h in hosts}
    for h in hosts:
        if h.economics is not None:
            result.reclaimed_pages += h.economics.reclaimed_pages
            result.refault_pages += h.economics.refault_pages
            result.refault_faults += h.economics.refault_faults
            result.pressure_events += h.economics.n_pressure_events
    result.total_rounds = sum(fvm.n_rounds for fvm in residents)
    result.total_accesses = sum(
        fvm.n_rounds * fvm.spec.writes_per_round for fvm in residents
    )
    result.total_us = clock.now_us - start_us
    return result


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def _env_ratios(default: str = "1.0,1.5,2.0,3.0") -> list[float]:
    raw = os.environ.get("REPRO_OVERCOMMIT_RATIOS", default)
    ratios = [float(tok) for tok in raw.split(",") if tok.strip()]
    if not ratios:
        raise ConfigurationError(f"no overcommit ratios in {raw!r}")
    return ratios


def exp_overcommit(quick: bool = False):
    """Registry entry: sweep the overcommit ratio, render the frontier."""
    from repro.experiments.runner import ExperimentOutput
    from repro.experiments.tables import render_table

    ratios = _env_ratios()
    n_hosts = _env_int("REPRO_OVERCOMMIT_HOSTS", 2)
    n_vms = _env_int("REPRO_OVERCOMMIT_VMS", 14)
    seed = _env_int("REPRO_OVERCOMMIT_SEED", 11)
    results: list[OvercommitRunResult] = []
    for ratio in ratios:
        results.append(
            EXPERIMENT_CACHE.get_or_run(
                ("overcommit", ratio, n_hosts, n_vms, seed, quick),
                lambda r=ratio: run_overcommit_scenario(
                    r, n_hosts, n_vms, seed, quick=quick
                ),
            )
        )
    headers = ["ratio", "admitted", "rejected", "nominal/cap", "reclaimed",
               "refaults", "refault/1k", "round us", "peak press"]
    rows = []
    for r in results:
        nominal = sum(r.nominal_pages.values())
        rows.append([
            f"{r.ratio:.1f}",
            r.admitted,
            r.rejected,
            f"{nominal}/{r.capacity_pages}",
            r.reclaimed_pages,
            r.refault_pages,
            f"{r.refaults_per_1k_accesses:.1f}",
            f"{r.mean_round_us:.1f}",
            f"{r.peak_pressure:.2f}",
        ])
    text = render_table(
        headers, rows,
        f"Overcommit frontier: {results[0].n_vms} tenants offered to "
        f"{n_hosts} hosts (seed {seed}) — admission vs refault cost",
    )
    return ExperimentOutput(
        "overcommit", headers, rows, text,
        extra={
            "ratios": ratios,
            "refaults_per_1k": {
                f"{r.ratio:.1f}": r.refaults_per_1k_accesses for r in results
            },
            "admitted": {f"{r.ratio:.1f}": r.admitted for r in results},
            "admitted_by_epoch": {
                f"{r.ratio:.1f}": r.admitted_by_epoch for r in results
            },
        },
    )
