"""Virtual Machine Control Structure (VMCS) with shadowing.

Fields modelled are the ones the paper's mechanisms need (§II, §IV-D):

* ``PML_ADDRESS`` / ``PML_INDEX`` — hypervisor-level PML buffer (original
  Intel PML; index starts at 511 and counts down).
* ``GUEST_PML_ADDRESS`` / ``GUEST_PML_INDEX`` — the EPML hardware
  extension: a second, guest-managed PML buffer.
* Execution controls enabling PML, VMCS shadowing, and (EPML) guest-level
  PML.
* ``VMCS_LINK_POINTER`` — an ordinary VMCS pointing at its shadow VMCS.

VMCS shadowing: when the ``ENABLE_VMCS_SHADOWING`` control is set and a
field is present in the vmread/vmwrite shadow bitmaps, a guest in VMX
non-root mode may vmread/vmwrite that field *without a vmexit*, operating
on the linked shadow VMCS.  The mode/permission enforcement lives in
:class:`repro.hw.cpu.Vcpu`; this module is the data structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.errors import VmcsError

__all__ = [
    "F_PML_ADDRESS",
    "F_PML_INDEX",
    "F_GUEST_PML_ADDRESS",
    "F_GUEST_PML_INDEX",
    "F_CTRL_ENABLE_PML",
    "F_CTRL_ENABLE_VMCS_SHADOWING",
    "F_CTRL_ENABLE_GUEST_PML",
    "F_VMCS_LINK_POINTER",
    "PML_INDEX_START",
    "Vmcs",
]

F_PML_ADDRESS = "pml_address"
F_PML_INDEX = "pml_index"
F_GUEST_PML_ADDRESS = "guest_pml_address"  # EPML hardware extension
F_GUEST_PML_INDEX = "guest_pml_index"  # EPML hardware extension
F_CTRL_ENABLE_PML = "ctrl_enable_pml"
F_CTRL_ENABLE_VMCS_SHADOWING = "ctrl_enable_vmcs_shadowing"
F_CTRL_ENABLE_GUEST_PML = "ctrl_enable_guest_pml"  # EPML hardware extension
F_VMCS_LINK_POINTER = "vmcs_link_pointer"

_ALL_FIELDS = frozenset(
    {
        F_PML_ADDRESS,
        F_PML_INDEX,
        F_GUEST_PML_ADDRESS,
        F_GUEST_PML_INDEX,
        F_CTRL_ENABLE_PML,
        F_CTRL_ENABLE_VMCS_SHADOWING,
        F_CTRL_ENABLE_GUEST_PML,
        F_VMCS_LINK_POINTER,
    }
)

#: PML index starts at 511 and decrements (paper §II-B).
PML_INDEX_START = 511


@dataclass
class Vmcs:
    """One VMCS: a field store, optionally linked to a shadow VMCS."""

    name: str = "vmcs"
    is_shadow: bool = False
    _fields: dict[str, int] = dc_field(default_factory=dict)
    #: Fields the guest may vmread in non-root mode (shadow bitmaps).
    shadow_read_fields: set[str] = dc_field(default_factory=set)
    #: Fields the guest may vmwrite in non-root mode (shadow bitmaps).
    shadow_write_fields: set[str] = dc_field(default_factory=set)
    #: The shadow VMCS this ordinary VMCS links to (None if unlinked).
    link: "Vmcs | None" = None

    def __post_init__(self) -> None:
        self._fields.setdefault(F_PML_INDEX, PML_INDEX_START)
        self._fields.setdefault(F_GUEST_PML_INDEX, PML_INDEX_START)
        self._fields.setdefault(F_CTRL_ENABLE_PML, 0)
        self._fields.setdefault(F_CTRL_ENABLE_VMCS_SHADOWING, 0)
        self._fields.setdefault(F_CTRL_ENABLE_GUEST_PML, 0)

    # ------------------------------------------------------------------
    @staticmethod
    def _check_field(field_name: str) -> None:
        if field_name not in _ALL_FIELDS:
            raise VmcsError(f"unknown VMCS field: {field_name!r}")

    def read(self, field_name: str) -> int:
        self._check_field(field_name)
        return int(self._fields.get(field_name, 0))

    def write(self, field_name: str, value: int) -> None:
        self._check_field(field_name)
        self._fields[field_name] = int(value)

    # ------------------------------------------------------------------
    def link_shadow(self, shadow: "Vmcs") -> None:
        """Make this (ordinary) VMCS point at a shadow VMCS."""
        if self.is_shadow:
            raise VmcsError("a shadow VMCS cannot itself link a shadow")
        if not shadow.is_shadow:
            raise VmcsError("link target must be a shadow VMCS")
        self.link = shadow
        self._fields[F_VMCS_LINK_POINTER] = id(shadow)

    def shadowing_enabled(self) -> bool:
        return bool(self._fields.get(F_CTRL_ENABLE_VMCS_SHADOWING, 0)) and (
            self.link is not None
        )

    def expose_to_guest(
        self, fields: set[str], *, readable: bool = True, writable: bool = True
    ) -> None:
        """Configure the shadow vmread/vmwrite bitmaps for these fields."""
        for f in fields:
            self._check_field(f)
        if readable:
            self.shadow_read_fields |= fields
        if writable:
            self.shadow_write_fields |= fields
