"""Extended Page Table: GPA -> HPA second-level translation.

One :class:`Ept` per VM, owned by the hypervisor.  PML hooks off the EPT
dirty bit: the CPU logs a GPA exactly when a write causes the EPT dirty
bit to transition 0 -> 1 (paper §II-B).  The hypervisor clears EPT dirty
bits when it harvests the PML log (as Xen/KVM do between live-migration
rounds), which re-arms logging for those pages.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, InvalidAddressError

__all__ = ["EPT_PRESENT", "EPT_WRITABLE", "EPT_ACCESSED", "EPT_DIRTY", "Ept"]

EPT_PRESENT = np.uint16(1 << 0)
EPT_WRITABLE = np.uint16(1 << 1)
EPT_ACCESSED = np.uint16(1 << 2)
EPT_DIRTY = np.uint16(1 << 3)


class Ept:
    """Dense GPFN -> (HPFN, flags) table for one VM."""

    def __init__(self, n_guest_frames: int) -> None:
        if n_guest_frames <= 0:
            raise ConfigurationError(f"n_guest_frames must be > 0: {n_guest_frames}")
        self.n_guest_frames = n_guest_frames
        self.hpfn = np.full(n_guest_frames, -1, dtype=np.int64)
        self.flags = np.zeros(n_guest_frames, dtype=np.uint16)
        #: Mutation generation for the MMU walk cache: bumped by every
        #: mapping or flag mutation — map, A/D updates (:meth:`touch`) and
        #: the harvest re-arm (:meth:`clear_dirty`).  Clearing EPT dirty
        #: bits therefore always invalidates memoized batch replay, which
        #: is what guarantees a replayed batch can never swallow a 0->1
        #: dirty transition the PML circuit should have logged.
        self.generation = 0

    def _check(self, gpfns: np.ndarray | list[int]) -> np.ndarray:
        arr = np.asarray(gpfns, dtype=np.int64).ravel()
        if arr.size and (arr.min() < 0 or arr.max() >= self.n_guest_frames):
            raise InvalidAddressError("GPFN out of guest physical range")
        return arr

    def map(
        self,
        gpfns: np.ndarray | list[int],
        hpfns: np.ndarray | list[int],
        writable: bool = True,
    ) -> None:
        g = self._check(gpfns)
        h = np.asarray(hpfns, dtype=np.int64).ravel()
        if g.size != h.size:
            raise ValueError("gpfns and hpfns length mismatch")
        self.hpfn[g] = h
        f = EPT_PRESENT
        if writable:
            f |= EPT_WRITABLE
        self.flags[g] = f
        self.generation += 1

    def translate(self, gpfns: np.ndarray | list[int]) -> np.ndarray:
        g = self._check(gpfns)
        h = self.hpfn[g]
        if np.any(h < 0):
            raise InvalidAddressError("EPT violation: unmapped GPFN")
        return h.copy()

    # ------------------------------------------------------------------
    # access/dirty bookkeeping (called by the MMU on each access batch)
    # ------------------------------------------------------------------
    def touch(self, gpfns: np.ndarray, write_mask: np.ndarray) -> np.ndarray:
        """Set A (all) / D (writes) bits; return GPFNs whose D bit went 0->1.

        The returned array is exactly what the PML circuit must log.
        """
        g = self._check(gpfns)
        w = np.asarray(write_mask, dtype=bool).ravel()
        if g.size != w.size:
            raise ValueError("gpfns and write_mask length mismatch")
        self.flags[g] |= EPT_ACCESSED
        self.generation += 1
        written = g[w]
        if written.size == 0:
            return np.empty(0, dtype=np.int64)
        was_clean = (self.flags[written] & EPT_DIRTY) == 0
        newly_dirty = written[was_clean]
        # A page may appear several times in one batch; keep first instance.
        newly_dirty = np.unique(newly_dirty)
        self.flags[written] |= EPT_DIRTY
        return newly_dirty.astype(np.int64)

    def unmap(self, gpfns: np.ndarray | list[int]) -> np.ndarray:
        """Remove GPA->HPA mappings (balloon inflate); returns the HPFNs
        that were mapped so the hypervisor can return them to the host
        pool.  Unmapped entries lose all flags — a later re-map starts
        with clean A/D bits, so the first post-deflate write is a fresh
        0->1 dirty transition and PML logs it again."""
        g = self._check(gpfns)
        h = self.hpfn[g]
        if np.any(h < 0):
            raise InvalidAddressError("EPT unmap of an unmapped GPFN")
        out = h.copy()
        self.hpfn[g] = -1
        self.flags[g] = 0
        self.generation += 1
        return out

    def clear_accessed(self, gpfns: np.ndarray | list[int] | None = None) -> int:
        """Clear A bits (WSS sample re-arm); returns how many were set.

        Like :meth:`clear_dirty`, this must bump :attr:`generation`: the
        walk cache replays memoized batches without re-setting accessed
        bits, so a sampler that cleared A bits behind the cache's back
        would under-count every page whose accesses replay from the cache.
        """
        self.generation += 1
        if gpfns is None:
            acc = (self.flags & EPT_ACCESSED) != 0
            n = int(acc.sum())
            self.flags &= ~EPT_ACCESSED
            return n
        g = self._check(gpfns)
        n = int(((self.flags[g] & EPT_ACCESSED) != 0).sum())
        self.flags[g] &= ~EPT_ACCESSED
        return n

    def clear_dirty(self, gpfns: np.ndarray | list[int] | None = None) -> int:
        """Clear D bits (harvest re-arm); returns how many were set."""
        self.generation += 1
        if gpfns is None:
            dirty = (self.flags & EPT_DIRTY) != 0
            n = int(dirty.sum())
            self.flags &= ~EPT_DIRTY
            return n
        g = self._check(gpfns)
        n = int(((self.flags[g] & EPT_DIRTY) != 0).sum())
        self.flags[g] &= ~EPT_DIRTY
        return n

    def dirty_gpfns(self) -> np.ndarray:
        return np.nonzero((self.flags & EPT_DIRTY) != 0)[0].astype(np.int64)

    def accessed_mask(self, gpfns: np.ndarray | list[int]) -> np.ndarray:
        """A-bit state per given GPFN (reclaim cold/hot classification)."""
        g = self._check(gpfns)
        return (self.flags[g] & EPT_ACCESSED) != 0
